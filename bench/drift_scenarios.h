#ifndef QSE_BENCH_DRIFT_SCENARIOS_H_
#define QSE_BENCH_DRIFT_SCENARIOS_H_

#include <cstddef>

#include "src/data/drift_generator.h"

namespace qse {
namespace bench {

/// The three canonical drift scenarios the server_load SL_Drift section
/// and the unit suites share, so a schedule tuned in one place stays
/// tuned everywhere.  `onset` is in workload steps (one step per issued
/// query); magnitudes are in point-coordinate units over [0,1]^d —
/// 0.35 scrambles the neighborhood structure enough to cost a frozen
/// embedding a large recall fraction without making the task trivial.

/// Step change at `onset`: the alarm-latency scenario (how many audited
/// queries until qse_quality_drift_alarm flips).
inline DriftSchedule AbruptDrift(size_t onset, double magnitude = 0.35) {
  DriftSchedule s;
  s.kind = DriftKind::kAbrupt;
  s.onset = onset;
  s.magnitude = magnitude;
  return s;
}

/// Linear ramp over `ramp` steps starting at `onset`: the slow-burn
/// scenario — detection happens mid-ramp, later than abrupt.
inline DriftSchedule GradualDrift(size_t onset, size_t ramp,
                                  double magnitude = 0.35) {
  DriftSchedule s;
  s.kind = DriftKind::kGradual;
  s.onset = onset;
  s.ramp = ramp;
  s.magnitude = magnitude;
  return s;
}

/// Alternating drifted/clean blocks of `period` steps from `onset`: the
/// re-baselining scenario — the detector must clear after each regime
/// stabilizes and re-alarm on the next flip.
inline DriftSchedule RecurrentDrift(size_t onset, size_t period,
                                    double magnitude = 0.35) {
  DriftSchedule s;
  s.kind = DriftKind::kRecurrent;
  s.onset = onset;
  s.period = period;
  s.magnitude = magnitude;
  return s;
}

}  // namespace bench
}  // namespace qse

#endif  // QSE_BENCH_DRIFT_SCENARIOS_H_
