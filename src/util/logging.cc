#include "src/util/logging.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace qse {
namespace {

/// Serializes line emission: one writer formats and writes at a time,
/// so a line is never interleaved with another thread's even when the
/// underlying write is split by the kernel.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

/// Writes the whole buffer to stderr, bypassing stdio so each line is
/// (almost always) a single write syscall; loops only on short writes.
void WriteAll(const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(STDERR_FILENO, data, len);
    if (n <= 0) return;  // Logging must never fail the caller.
    data += static_cast<size_t>(n);
    len -= static_cast<size_t>(n);
  }
}

void EmitLine(std::string line) {
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(LogMutex());
  WriteAll(line.data(), line.size());
}

std::atomic<int>& MinLevelSlot() {
  static std::atomic<int> level{-1};  // -1: QSE_LOG_LEVEL not read yet.
  return level;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "invalid";
}

LogLevel ParseLogLevel(const char* value, LogLevel def) {
  if (value == nullptr || value[0] == '\0') return def;
  if (std::strcmp(value, "debug") == 0 || std::strcmp(value, "0") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(value, "info") == 0 || std::strcmp(value, "1") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(value, "warn") == 0 || std::strcmp(value, "2") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(value, "error") == 0 || std::strcmp(value, "3") == 0) {
    return LogLevel::kError;
  }
  return def;
}

LogLevel MinLogLevel() {
  int level = MinLevelSlot().load(std::memory_order_relaxed);
  if (level < 0) {
    // Two racing first calls both parse the same environment value, so
    // the idempotent double-store is benign.
    LogLevel parsed =
        ParseLogLevel(std::getenv("QSE_LOG_LEVEL"), LogLevel::kInfo);
    MinLevelSlot().store(static_cast<int>(parsed), std::memory_order_relaxed);
    return parsed;
  }
  return static_cast<LogLevel>(level);
}

void SetMinLogLevel(LogLevel level) {
  MinLevelSlot().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  char prefix[256];
  std::snprintf(prefix, sizeof(prefix), "[FATAL] %s:%d: check failed: ",
                file, line);
  std::string out = std::string(prefix) + expr +
                    (msg.empty() ? "" : " — " + msg);
  EmitLine(std::move(out));
  std::abort();
}

void LogLine(LogLevel level, const std::string& msg) {
  if (level < MinLogLevel()) return;
  auto now = std::chrono::system_clock::now().time_since_epoch();
  double secs = std::chrono::duration<double>(now).count();
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%s %.3f] ",
                LogLevelName(level), secs);
  EmitLine(std::string(prefix) + msg);
}

}  // namespace internal
}  // namespace qse
