#include "src/persist/durable_backend.h"

#include <utility>

namespace qse {
namespace persist {

DurableBackend::DurableBackend(RetrievalBackend* inner,
                               const Embedder* embedder,
                               DurabilityManager* manager,
                               std::vector<const EmbeddedDatabase*> snapshot_dbs)
    : inner_(inner),
      embedder_(embedder),
      manager_(manager),
      snapshot_dbs_(std::move(snapshot_dbs)) {}

Status DurableBackend::Insert(size_t db_id, const DxToDatabaseFn& dx) {
  // Embed outside the mutex (it costs up to 2d exact distances), then
  // take the embedded path so the logged row is the applied row.
  Vector embedded = embedder_->Embed(dx);
  return InsertEmbedded(db_id, embedded);
}

Status DurableBackend::InsertEmbedded(size_t db_id,
                                      const Vector& embedded_row) {
  std::lock_guard<std::mutex> lock(mu_);
  QSE_RETURN_IF_ERROR(inner_->InsertEmbedded(db_id, embedded_row));
  return LogAppliedLocked(/*is_insert=*/true, db_id, &embedded_row);
}

Status DurableBackend::Remove(size_t db_id) {
  std::lock_guard<std::mutex> lock(mu_);
  QSE_RETURN_IF_ERROR(inner_->Remove(db_id));
  return LogAppliedLocked(/*is_insert=*/false, db_id, nullptr);
}

Status DurableBackend::WriteSnapshotNow() {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

Status DurableBackend::LogAppliedLocked(bool is_insert, size_t db_id,
                                        const Vector* row) {
  if (is_insert) {
    QSE_RETURN_IF_ERROR(manager_->LogInsert(db_id, *row));
  } else {
    QSE_RETURN_IF_ERROR(manager_->LogRemove(db_id));
  }
  if (manager_->WantsSnapshot()) return SnapshotLocked();
  return Status::OK();
}

Status DurableBackend::SnapshotLocked() {
  // Pin every database at the current (mutation-quiet — we hold mu_)
  // version; the pins keep the views alive while encode runs.
  std::vector<EmbeddedDatabase::Snapshot> pins;
  std::vector<EmbeddedDatabase::View> views;
  pins.reserve(snapshot_dbs_.size());
  views.reserve(snapshot_dbs_.size());
  for (const EmbeddedDatabase* db : snapshot_dbs_) {
    pins.push_back(db->snapshot());
    views.push_back(pins.back().view());
  }
  return manager_->WriteSnapshot(manager_->last_seq(), views);
}

}  // namespace persist
}  // namespace qse
