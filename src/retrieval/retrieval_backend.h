#ifndef QSE_RETRIEVAL_RETRIEVAL_BACKEND_H_
#define QSE_RETRIEVAL_RETRIEVAL_BACKEND_H_

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/obs/trace.h"
#include "src/retrieval/filter_precision.h"
#include "src/util/status.h"
#include "src/util/statusor.h"
#include "src/util/timer.h"
#include "src/util/top_k.h"

namespace qse {

namespace obs {
class QualityMonitor;
}  // namespace obs

/// Clock used for request deadlines and trace timestamps.  MonotonicClock
/// is steady_clock-backed (immune to wall-clock jumps) and overridable
/// with a FakeClock in tests, so deadline tests advance time instead of
/// sleeping.
using RetrievalClock = MonotonicClock;

/// Admission priority of one request.  Lanes are strict: the serving
/// layer dequeues kHigh before kNormal before kLow, and sheds kLow first
/// under overflow.  The backends themselves ignore priority (it does not
/// change results), but validate it so a mis-cast enum fails loudly at
/// every layer.
enum class RequestPriority {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

/// Number of admission lanes (one per RequestPriority enumerator).
inline constexpr size_t kNumPriorityLanes = 3;

/// Stable lower-case lane name ("high", "normal", "low") for stats and
/// bench output; "invalid" for out-of-range values.
const char* RequestPriorityName(RequestPriority priority);

/// Per-request options: the one envelope every query surface consumes —
/// direct engine calls, batched calls, and the async server.
struct RetrievalOptions {
  /// Neighbors to return.
  size_t k = 1;
  /// Filter candidates to refine with exact distances; the paper's p.
  size_t p = 1;
  /// Threads for RetrieveBatch's across-query fan-out; 0 means hardware
  /// concurrency.  Ignored by single-query Retrieve.  The async server
  /// substitutes its own retrieve_threads policy: a request does not get
  /// to choose the server's parallelism.
  size_t num_threads = 0;
  /// When true the response's shard_stats is filled: per-shard scan and
  /// candidate counters from the sharded engine, or the whole database
  /// reported as a single pseudo-shard by the monolithic engine.
  bool want_stats = false;
  /// Admission lane in the async server; ignored by direct engine calls.
  RequestPriority priority = RequestPriority::kNormal;
  /// Tenant for per-tenant admission quotas in the async server; ""
  /// means anonymous.  Ignored by direct engine calls.
  std::string tenant_id;
  /// Absolute completion deadline, enforced by the async server: a
  /// request past it is answered with kDeadlineExceeded — checked when
  /// it leaves the admission queue and again just before the backend
  /// spends exact distances on it — never silently dropped or served
  /// late.  Direct engine calls do not check it.  Default: no deadline.
  RetrievalClock::time_point deadline = RetrievalClock::time_point::max();
  /// What the filter scan streams: the exact float64 matrix (default,
  /// bit-identical to the pre-dispatch engine) or a reduced-precision
  /// shadow (2x / 8x fewer bytes; the backend's database must carry the
  /// matching shadow — EnableFilterShadows — or the request fails with
  /// FailedPrecondition).  Refine always re-scores with exact distances,
  /// so this shifts top-p candidate recall, never final distances.
  FilterPrecision filter_precision = FilterPrecision::kExact64;
  /// When non-null, the backend offers 1-in-N completed responses to
  /// this monitor for background exact-kNN auditing (quality_monitor.h).
  /// Does not change results — the audit runs off the hot path against
  /// the same pinned snapshot the response was served from.  The async
  /// server attaches its configured monitor here; direct engine callers
  /// may set it themselves.  Borrowed: must outlive the request.
  obs::QualityMonitor* audit_monitor = nullptr;

  RetrievalOptions() = default;
  /// The common case: everything default except k and p.
  RetrievalOptions(size_t k_in, size_t p_in) : k(k_in), p(p_in) {}

  /// Convenience: an absolute deadline `budget` from now.
  template <typename Rep, typename Period>
  static RetrievalClock::time_point DeadlineIn(
      std::chrono::duration<Rep, Period> budget) {
    return RetrievalClock::now() +
           std::chrono::duration_cast<RetrievalClock::duration>(budget);
  }

  /// True when two requests are guaranteed identical backend results for
  /// the same dx, so a batcher may run them as one RetrieveBatch call.
  /// priority/tenant/deadline shape admission, num_threads shapes
  /// execution, audit_monitor only observes; none of them change
  /// results.  filter_precision does — different precisions rank the
  /// filter scan differently.
  bool SameResultKey(const RetrievalOptions& other) const {
    return k == other.k && p == other.p && want_stats == other.want_stats &&
           filter_precision == other.filter_precision;
  }
};

/// The option checks shared verbatim by both engines and the async
/// server, so validation behavior cannot drift between surfaces:
///  * k == 0 or p == 0 is InvalidArgument (a filter that keeps nothing
///    is a caller bug, not a degenerate retrieval);
///  * an out-of-range priority enumerator is InvalidArgument.
/// Database emptiness is a backend-state concern checked by the engines
/// (FailedPrecondition), not here.
Status ValidateRetrievalOptions(const RetrievalOptions& options);

/// One retrieval: the exact-distance resolver for the query plus its
/// options.  `dx` resolves DX(query, o) for database ids `o`; it may be
/// invoked from whichever thread executes the request.
struct RetrievalRequest {
  DxToDatabaseFn dx;
  RetrievalOptions options;
  /// When non-null, the backend records per-stage spans (embed, filter
  /// scan, merge, refine) into this trace.  Null (the default) costs one
  /// pointer check per stage.  Shared with the response so the serving
  /// layer and the caller read the same object.
  std::shared_ptr<obs::RequestTrace> trace;
};

/// Per-shard counters from one retrieval (want_stats); the raw material
/// for load balancing — a shard that keeps contributing most of the
/// merged top-p is either oversized or holds a hot region of the
/// embedded space.
struct ShardScanStats {
  /// Shard size (rows scanned by the filter step) at query time.
  size_t rows = 0;
  /// Entries this shard placed in the globally merged top-p.
  size_t candidates = 0;
};

/// Result of one filter-and-refine retrieval.
struct RetrievalResponse {
  /// Top-k neighbors by exact distance among the refined candidates.
  /// `index` is backend-specific — db rows for RetrievalEngine, database
  /// ids for ShardedRetrievalEngine — and always resolves to a database
  /// id through the owning backend's db_id_of().
  std::vector<ScoredIndex> neighbors;
  /// Exact DX evaluations spent: embedding step + refine step.  This is
  /// the paper's per-query cost measure.
  size_t exact_distances = 0;
  /// Of which, spent embedding the query.
  size_t embedding_distances = 0;
  /// Filled iff the request set want_stats: shard_stats[s] covers shard
  /// s of the sharded engine; the monolithic engine reports its whole
  /// database as shard_stats[0].  Empty otherwise.
  std::vector<ShardScanStats> shard_stats;
  /// The request's trace, passed through when the request carried one
  /// (sampled requests in the async server); null otherwise.  By the
  /// time the caller holds the response, every backend span is closed.
  std::shared_ptr<obs::RequestTrace> trace;
};

/// Result of a filter-only candidate scan (ScanCandidates): the
/// backend's local top-p under the filter metric, before any exact
/// refine.  Candidate `index` fields are DATABASE IDS, not rows, and the
/// list is sorted by (score, id) — exactly the per-shard lists the
/// sharded engine's k-way merge consumes, so a remote shard's scan can
/// be merged interchangeably with local ones.
struct ScanCandidatesResult {
  std::vector<ScoredIndex> candidates;
  /// Rows the backend held at scan time (the shard size a want_stats
  /// response reports for this backend).
  size_t rows = 0;
  /// Rows whose scan the early-abandon filter cut short.
  size_t rows_pruned = 0;
};

/// The serving-facing face of a retrieval engine: the filter-and-refine
/// query API plus incremental mutation, shared by the monolithic
/// RetrievalEngine and the sharded scatter/gather engine so examples,
/// evaluation drivers and the serving layer can swap one for the other
/// behind a single interface.
///
/// Contract, identical across implementations:
///  * Retrieve validates options via ValidateRetrievalOptions and
///    returns FailedPrecondition on an empty database; p is clamped to
///    size().
///  * RetrieveBatch(queries, options)[i] is bit-identical to
///    Retrieve({queries[i], options}), whatever options.num_threads is.
///  * Insert fails with InvalidArgument on a duplicate id, Remove with
///    NotFound on an unknown one.
///  * Retrieve/RetrieveBatch are const and safe to call concurrently.
///    Insert/Remove are serialized internally and may run concurrently
///    with retrievals: every retrieval serves one epoch-pinned snapshot
///    of the database, consistent with some serializable prefix of the
///    applied mutations — it reflects every mutation that completed
///    before it started, no mutation that started after it finished,
///    and any subset of the ones in flight while it ran.
class RetrievalBackend {
 public:
  virtual ~RetrievalBackend() = default;

  /// Retrieves the k best matches among the top-p filter candidates.
  virtual StatusOr<RetrievalResponse> Retrieve(
      const RetrievalRequest& request) const = 0;

  /// Retrieves a batch of queries sharing one options envelope, in
  /// parallel across options.num_threads workers; results[i] corresponds
  /// to queries[i].
  virtual StatusOr<std::vector<RetrievalResponse>> RetrieveBatch(
      const std::vector<DxToDatabaseFn>& queries,
      const RetrievalOptions& options) const = 0;

  /// Embeds a new object via `dx` and adds it under `db_id`.
  virtual Status Insert(size_t db_id, const DxToDatabaseFn& dx) = 0;

  /// Removes the object with id `db_id`.
  virtual Status Remove(size_t db_id) = 0;

  /// Filter-only scan: the backend's top-min(p, size()) candidates for
  /// an already-embedded query, as (database id, filter score) sorted by
  /// (score, id) — the distributable half of the pipeline.  The exact
  /// refine (which needs the caller's `dx` closure and so cannot cross a
  /// process boundary) stays with the caller: embed once, scatter scans,
  /// merge, refine the merged top-p — byte-identical to what the sharded
  /// engine does in-process.  Honors k/p/filter_precision/want_stats
  /// semantics of Retrieve; `options.k` is ignored (no refine here).
  /// Default: Unimplemented, for backends that only serve full
  /// retrievals.
  virtual StatusOr<ScanCandidatesResult> ScanCandidates(
      const Vector& embedded_query, const RetrievalOptions& options) const {
    (void)embedded_query;
    (void)options;
    return Status::Unimplemented(
        "this backend does not serve filter-only candidate scans");
  }

  /// Adds an object whose embedding was already computed (the remote
  /// path: the client embeds with its own `dx`, the row crosses the wire
  /// pre-embedded).  Same duplicate-id contract as Insert; the row must
  /// have the backend's dimensionality.  Default: Unimplemented.
  virtual Status InsertEmbedded(size_t db_id, const Vector& embedded_row) {
    (void)db_id;
    (void)embedded_row;
    return Status::Unimplemented(
        "this backend does not accept pre-embedded rows");
  }

  /// Number of database objects currently live.
  virtual size_t size() const = 0;

  /// Database id behind a RetrievalResponse neighbor index.
  virtual size_t db_id_of(size_t neighbor_index) const = 0;
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_RETRIEVAL_BACKEND_H_
