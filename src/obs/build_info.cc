#include "src/obs/build_info.h"

#include "src/distance/simd/dispatch.h"
#include "src/obs/exposition.h"

#ifndef QSE_BUILD_VERSION
#define QSE_BUILD_VERSION "unknown"
#endif
#ifndef QSE_BUILD_COMMIT
#define QSE_BUILD_COMMIT "unknown"
#endif

namespace qse {
namespace obs {

std::string BuildInfoMetricName() {
#ifdef QSE_DISABLE_TRACING
  const char* tracing = "off";
#else
  const char* tracing = "on";
#endif
  return "qse_build_info{" + PromLabel("version", QSE_BUILD_VERSION) + "," +
         PromLabel("commit", QSE_BUILD_COMMIT) + "," +
         PromLabel("simd",
                   simd::SimdLevelName(simd::ActiveSimdLevel())) +
         "," + PromLabel("tracing", tracing) + "}";
}

Gauge* RegisterBuildInfo(MetricRegistry* registry) {
  Gauge* gauge = registry->GetGauge(BuildInfoMetricName());
  gauge->Set(1);
  return gauge;
}

}  // namespace obs
}  // namespace qse
