#include "src/retrieval/evaluation.h"

#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "src/embedding/fastmap.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/exact_knn.h"
#include "tests/test_util.h"

namespace qse {
namespace {

TEST(GroundTruthTest, MatchesExactKnn) {
  auto oracle = test::MakePlaneOracle(40, 1);
  std::vector<size_t> db_ids = test::Iota(30);
  std::vector<size_t> query_ids = test::Iota(10, 30);
  GroundTruth gt = ComputeGroundTruth(oracle, db_ids, query_ids, 5);
  ASSERT_EQ(gt.knn.size(), 10u);
  for (size_t qi = 0; qi < query_ids.size(); ++qi) {
    auto exact = ExactKnn(oracle, query_ids[qi], db_ids, 5);
    ASSERT_EQ(gt.knn[qi].size(), 5u);
    for (size_t k = 0; k < 5; ++k) {
      EXPECT_EQ(gt.knn[qi][k], exact[k].index);
    }
  }
}

/// A "perfect" embedder for testing: embeds plane points by their true
/// coordinates via distances to two fixed anchor objects — placeholder
/// that exercises the LadderPoint plumbing with a known-good filter.
class IdentityEmbedder : public Embedder {
 public:
  explicit IdentityEmbedder(const ObjectOracle<Vector>* oracle)
      : oracle_(oracle) {}
  size_t dims() const override { return 2; }
  size_t EmbeddingCost() const override { return 0; }
  Vector Embed(const DxToDatabaseFn& dx, size_t* num_exact) const override {
    // Identify the object by matching its distance profile to anchors 0, 1
    // — cheaper: reconstruct from exact distances dx(0), dx(1) via
    // trilateration on the two anchor points.
    double d0 = dx(0), d1 = dx(1);
    const Vector& a0 = oracle_->object(0);
    const Vector& a1 = oracle_->object(1);
    if (num_exact != nullptr) *num_exact = 2;
    // Solve |x - a0| = d0, |x - a1| = d1 in the plane; pick either
    // intersection deterministically (good enough as a filter signal).
    double ex = a1[0] - a0[0], ey = a1[1] - a0[1];
    double dist = std::sqrt(ex * ex + ey * ey);
    double along = (d0 * d0 - d1 * d1 + dist * dist) / (2 * dist);
    double h2 = std::max(0.0, d0 * d0 - along * along);
    double h = std::sqrt(h2);
    double ux = ex / dist, uy = ey / dist;
    return {a0[0] + along * ux - h * uy, a0[1] + along * uy + h * ux};
  }

 private:
  const ObjectOracle<Vector>* oracle_;
};

TEST(LadderPointTest, RequiredPIsMonotoneInK) {
  auto oracle = test::MakePlaneOracle(50, 2);
  std::vector<size_t> db_ids = test::Iota(40);
  std::vector<size_t> query_ids = test::Iota(10, 40);
  GroundTruth gt = ComputeGroundTruth(oracle, db_ids, query_ids, 8);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel fm = BuildFastMap(oracle, db_ids, options);
  EmbeddedDatabase db = EmbedDatabase(fm, oracle, db_ids);
  L2Scorer scorer;
  LadderPoint point = EvaluateLadderPoint(fm, scorer, db, oracle, db_ids,
                                          query_ids, gt, 2);
  ASSERT_EQ(point.required_p.size(), query_ids.size());
  for (const auto& req : point.required_p) {
    ASSERT_EQ(req.size(), 8u);
    for (size_t k = 1; k < req.size(); ++k) {
      EXPECT_GE(req[k], req[k - 1]);  // Monotone by construction.
    }
    EXPECT_GE(req[0], 1u);
    EXPECT_LE(req[7], db_ids.size());
  }
}

TEST(LadderPointTest, PerfectFilterNeedsExactlyK) {
  // With a perfect embedding + scorer, the filter ranking equals the
  // exact ranking, so required_p(q, k) == k for every query.  All
  // non-anchor points live strictly above the anchor baseline so the
  // trilateration in IdentityEmbedder is unambiguous.
  Rng rng(3);
  std::vector<Vector> pts = {{0.0, 0.0}, {1.0, 0.0}};  // Anchors.
  for (size_t i = 0; i < 38; ++i) {
    pts.push_back({rng.Uniform(0, 1), rng.Uniform(0.05, 1)});
  }
  ObjectOracle<Vector> oracle(std::move(pts), L2Distance);
  std::vector<size_t> db_ids = test::Iota(30);
  std::vector<size_t> query_ids = test::Iota(8, 30);
  GroundTruth gt = ComputeGroundTruth(oracle, db_ids, query_ids, 5);
  IdentityEmbedder embedder(&oracle);
  L2Scorer scorer;
  EmbeddedDatabase db = EmbedDatabase(embedder, oracle, db_ids);
  LadderPoint point = EvaluateLadderPoint(embedder, scorer, db, oracle,
                                          db_ids, query_ids, gt, 0);
  for (const auto& req : point.required_p) {
    for (size_t k = 0; k < req.size(); ++k) {
      EXPECT_EQ(req[k], k + 1);
    }
  }
}

TEST(OptimalCostTest, HandComputedExample) {
  // Two ladder points; 4 queries; k = 1.
  LadderPoint cheap;
  cheap.param = 1;
  cheap.dims = 1;
  cheap.query_cost = 2;
  cheap.required_p = {{10}, {20}, {30}, {100}};
  LadderPoint rich;
  rich.param = 2;
  rich.dims = 8;
  rich.query_cost = 50;
  rich.required_p = {{1}, {1}, {2}, {2}};
  std::vector<LadderPoint> ladder = {cheap, rich};
  // 100% accuracy: cheap needs 2+100=102, rich needs 50+2=52.
  EXPECT_EQ(OptimalCost(ladder, 1, 1.0, 1000), 52u);
  // 75% accuracy: cheap needs 2+30=32, rich needs 50+2=52.
  EXPECT_EQ(OptimalCost(ladder, 1, 0.75, 1000), 32u);
  OptimalSetting setting = OptimalCostSetting(ladder, 1, 0.75, 1000);
  EXPECT_EQ(setting.param, 1u);
  EXPECT_EQ(setting.p, 30u);
  EXPECT_FALSE(setting.brute_force);
}

TEST(OptimalCostTest, FallsBackToBruteForce) {
  LadderPoint bad;
  bad.param = 1;
  bad.dims = 4;
  bad.query_cost = 90;
  bad.required_p = {{50}, {60}};
  // 90 + 60 = 150 > db size 100: brute force wins.
  OptimalSetting setting = OptimalCostSetting({bad}, 1, 1.0, 100);
  EXPECT_TRUE(setting.brute_force);
  EXPECT_EQ(setting.total_cost, 100u);
}

TEST(OptimalCostTest, HigherAccuracyNeverCheaper) {
  auto oracle = test::MakePlaneOracle(60, 4);
  std::vector<size_t> db_ids = test::Iota(45);
  std::vector<size_t> query_ids = test::Iota(15, 45);
  GroundTruth gt = ComputeGroundTruth(oracle, db_ids, query_ids, 5);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel fm = BuildFastMap(oracle, db_ids, options);
  EmbeddedDatabase db = EmbedDatabase(fm, oracle, db_ids);
  L2Scorer scorer;
  std::vector<LadderPoint> ladder;
  for (size_t d : {1u, 2u}) {
    FastMapModel prefix = fm.Prefix(d);
    EmbeddedDatabase pdb = EmbedDatabase(prefix, oracle, db_ids);
    ladder.push_back(EvaluateLadderPoint(prefix, scorer, pdb, oracle,
                                         db_ids, query_ids, gt, d));
  }
  for (size_t k : {1u, 3u, 5u}) {
    size_t c90 = OptimalCost(ladder, k, 0.90, db_ids.size());
    size_t c99 = OptimalCost(ladder, k, 0.99, db_ids.size());
    EXPECT_LE(c90, c99) << "k=" << k;
  }
}

TEST(OptimalCostTest, LargerKNeverCheaper) {
  LadderPoint point;
  point.param = 1;
  point.dims = 2;
  point.query_cost = 3;
  point.required_p = {{2, 5, 9}, {1, 4, 8}};
  for (size_t k = 2; k <= 3; ++k) {
    EXPECT_GE(OptimalCost({point}, k, 1.0, 100),
              OptimalCost({point}, k - 1, 1.0, 100));
  }
}

}  // namespace
}  // namespace qse
