// Unit and integration tests for the durability subsystem: WAL framing
// and sequence discipline, DurabilityManager recovery cycles (WAL-only,
// snapshot + tail, compaction), and the DurableBackend decorator's
// apply-then-log contract.  The crash-kill half lives in
// crash_recover_test.cc; byte-level corruption in wal_fuzz_test.cc.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/persist/durability.h"
#include "src/persist/durable_backend.h"
#include "src/persist/snapshot.h"
#include "src/persist/wal.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_precision.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "tests/line_universe.h"

namespace qse {
namespace persist {
namespace {

using test::DxOfObject;
using test::kLineDims;
using test::LineEmbedder;
using test::MakeDx;
using test::XOf;

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/wal.qse").c_str());
  std::remove((dir + "/snapshot.qse").c_str());
  std::remove((dir + "/snapshot.qse.tmp").c_str());
  return dir;
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

std::vector<double> LineRow(size_t id) {
  return std::vector<double>(kLineDims, XOf(id));
}

void ExpectRecordsEqual(const WalRecord& want, const WalRecord& got) {
  EXPECT_EQ(static_cast<int>(want.op), static_cast<int>(got.op));
  EXPECT_EQ(want.seq, got.seq);
  EXPECT_EQ(want.db_id, got.db_id);
  ASSERT_EQ(want.row.size(), got.row.size());
  if (!want.row.empty()) {
    EXPECT_EQ(0, std::memcmp(want.row.data(), got.row.data(),
                             want.row.size() * sizeof(double)));
  }
}

/// Full bit-identity between two databases: float64 matrix, id column,
/// and — when present — both shadow matrices and the int8 scales.
void ExpectDbsIdentical(const EmbeddedDatabase& a, const EmbeddedDatabase& b,
                        const std::string& what) {
  SCOPED_TRACE(what);
  EmbeddedDatabase::Snapshot sa = a.snapshot();
  EmbeddedDatabase::Snapshot sb = b.snapshot();
  const EmbeddedDatabase::View& va = sa.view();
  const EmbeddedDatabase::View& vb = sb.view();
  ASSERT_EQ(va.size(), vb.size());
  ASSERT_EQ(va.dims(), vb.dims());
  const size_t cells = va.size() * va.dims();
  EXPECT_EQ(0, std::memcmp(va.data(), vb.data(), cells * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(va.ids(), vb.ids(), va.size() * sizeof(size_t)));
  ASSERT_EQ(va.shadows(), vb.shadows());
  if (va.has_f32()) {
    EXPECT_EQ(0, std::memcmp(va.data_f32(), vb.data_f32(),
                             cells * sizeof(float)));
  }
  if (va.has_i8()) {
    EXPECT_EQ(0, std::memcmp(va.data_i8(), vb.data_i8(), cells));
    EXPECT_EQ(0, std::memcmp(va.i8_scales(), vb.i8_scales(),
                             va.dims() * sizeof(float)));
  }
}

struct MonoStack {
  LineEmbedder embedder;
  L2Scorer scorer;
  EmbeddedDatabase db{kLineDims};
  RetrievalEngine engine{&embedder, &scorer, &db, {}};
};

// --- WAL framing and sequence discipline ---------------------------------

TEST(Wal, MissingFileReadsEmpty) {
  const std::string dir = FreshDir("persist_wal_missing");
  StatusOr<WalReadResult> result = ReadWal(dir + "/wal.qse");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->records.empty());
  EXPECT_EQ(0u, result->base_seq);
  EXPECT_EQ(0u, result->valid_bytes);
  EXPECT_EQ(0u, result->dropped_bytes);
}

TEST(Wal, AppendReadBackRoundTrip) {
  const std::string dir = FreshDir("persist_wal_roundtrip");
  const std::string path = dir + "/wal.qse";
  std::vector<WalRecord> written;
  {
    StatusOr<std::unique_ptr<WalWriter>> writer = WalWriter::Open(
        path, FsyncPolicy::kEveryRecord, 1, /*offset=*/0, /*base_seq=*/0,
        /*next_seq=*/1);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (size_t i = 0; i < 7; ++i) {
      WalRecord record;
      if (i % 3 == 2) {
        record.op = WalOp::kRemove;
        record.db_id = i - 2;
      } else {
        record.op = WalOp::kInsert;
        record.db_id = i;
        record.row = LineRow(i);
      }
      ASSERT_TRUE(writer.value()->Append(&record).ok());
      EXPECT_EQ(i + 1, record.seq);  // Writer assigns contiguously.
      written.push_back(record);
    }
    EXPECT_EQ(7u, writer.value()->last_seq());
  }
  StatusOr<WalReadResult> result = ReadWal(path);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(0u, result->base_seq);
  EXPECT_EQ(0u, result->dropped_bytes);
  EXPECT_EQ(FileSize(path), result->valid_bytes);
  ASSERT_EQ(written.size(), result->records.size());
  for (size_t i = 0; i < written.size(); ++i) {
    ExpectRecordsEqual(written[i], result->records[i]);
  }
}

TEST(Wal, SequenceContinuesAcrossReopen) {
  const std::string dir = FreshDir("persist_wal_reopen");
  const std::string path = dir + "/wal.qse";
  {
    StatusOr<std::unique_ptr<WalWriter>> writer =
        WalWriter::Open(path, FsyncPolicy::kOff, 0, 0, 0, 1);
    ASSERT_TRUE(writer.ok());
    for (size_t i = 0; i < 3; ++i) {
      WalRecord record;
      record.db_id = i;
      record.row = LineRow(i);
      ASSERT_TRUE(writer.value()->Append(&record).ok());
    }
  }
  StatusOr<WalReadResult> scan = ReadWal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(3u, scan->records.size());
  {
    StatusOr<std::unique_ptr<WalWriter>> writer = WalWriter::Open(
        path, FsyncPolicy::kOff, 0, scan->valid_bytes, scan->base_seq,
        scan->records.back().seq + 1);
    ASSERT_TRUE(writer.ok());
    for (size_t i = 3; i < 5; ++i) {
      WalRecord record;
      record.db_id = i;
      record.row = LineRow(i);
      ASSERT_TRUE(writer.value()->Append(&record).ok());
      EXPECT_EQ(i + 1, record.seq);
    }
  }
  StatusOr<WalReadResult> result = ReadWal(path);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(5u, result->records.size());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(i + 1, result->records[i].seq);
    EXPECT_EQ(i, result->records[i].db_id);
  }
}

TEST(Wal, ResetToBaseCompacts) {
  const std::string dir = FreshDir("persist_wal_reset");
  const std::string path = dir + "/wal.qse";
  StatusOr<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(path, FsyncPolicy::kEveryRecord, 1, 0, 0, 1);
  ASSERT_TRUE(writer.ok());
  for (size_t i = 0; i < 4; ++i) {
    WalRecord record;
    record.db_id = i;
    record.row = LineRow(i);
    ASSERT_TRUE(writer.value()->Append(&record).ok());
  }
  ASSERT_TRUE(writer.value()->ResetToBase(4).ok());
  EXPECT_EQ(4u, writer.value()->last_seq());
  EXPECT_EQ(static_cast<uint64_t>(kWalFileHeaderBytes), FileSize(path));

  WalRecord record;
  record.op = WalOp::kRemove;
  record.db_id = 0;
  ASSERT_TRUE(writer.value()->Append(&record).ok());
  EXPECT_EQ(5u, record.seq);  // Continues past the compacted base.

  StatusOr<WalReadResult> result = ReadWal(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(4u, result->base_seq);
  ASSERT_EQ(1u, result->records.size());
  EXPECT_EQ(5u, result->records[0].seq);
}

TEST(Wal, AllFsyncPoliciesRoundTrip) {
  const FsyncPolicy policies[] = {FsyncPolicy::kEveryRecord,
                                  FsyncPolicy::kEveryN, FsyncPolicy::kOff};
  for (FsyncPolicy policy : policies) {
    const std::string dir = FreshDir(
        "persist_wal_policy_" +
        std::to_string(static_cast<int>(policy)));
    const std::string path = dir + "/wal.qse";
    {
      StatusOr<std::unique_ptr<WalWriter>> writer =
          WalWriter::Open(path, policy, 3, 0, 0, 1);
      ASSERT_TRUE(writer.ok());
      for (size_t i = 0; i < 10; ++i) {
        WalRecord record;
        record.db_id = i;
        record.row = LineRow(i);
        ASSERT_TRUE(writer.value()->Append(&record).ok());
      }
      ASSERT_TRUE(writer.value()->Sync().ok());
    }
    StatusOr<WalReadResult> result = ReadWal(path);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(10u, result->records.size());
  }
}

TEST(Wal, EncodedFrameLayout) {
  WalRecord record;
  record.op = WalOp::kInsert;
  record.seq = 42;
  record.db_id = 7;
  record.row = LineRow(7);
  const std::string bytes = EncodeWalRecord(record);
  ASSERT_GE(bytes.size(), kWalRecordHeaderBytes);
  uint32_t magic, payload_len;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&payload_len, bytes.data() + 4, sizeof(payload_len));
  EXPECT_EQ(kWalRecordMagic, magic);
  EXPECT_EQ(bytes.size() - kWalRecordHeaderBytes, payload_len);
}

// --- DurabilityManager recovery cycles -----------------------------------

DurabilityOptions Opts(const std::string& dir) {
  DurabilityOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;  // Unit tests never lose page cache.
  return options;
}

/// Recovery steps 1-4 into a fresh mono stack.
std::unique_ptr<DurabilityManager> RecoverMono(const DurabilityOptions& opts,
                                               MonoStack* stack,
                                               uint64_t* replayed = nullptr) {
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  EXPECT_TRUE(manager.ok()) << manager.status();
  if (!manager.ok()) return nullptr;
  Status installed = manager.value()->InstallSnapshot({&stack->db});
  EXPECT_TRUE(installed.ok()) << installed;
  if (!installed.ok()) return nullptr;
  stack->engine.RebuildIdIndex();
  StatusOr<uint64_t> applied = manager.value()->Replay(&stack->engine);
  EXPECT_TRUE(applied.ok()) << applied.status();
  if (!applied.ok()) return nullptr;
  if (replayed != nullptr) *replayed = applied.value();
  return std::move(manager.value());
}

TEST(Persist, FreshDirectoryOpensEmpty) {
  const DurabilityOptions opts = Opts(FreshDir("persist_fresh"));
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok()) << manager.status();
  EXPECT_FALSE(manager.value()->recovery().loaded_snapshot);
  EXPECT_EQ(0u, manager.value()->recovery().wal_records);
  EXPECT_EQ(0u, manager.value()->recovery().repaired_bytes);
  EXPECT_EQ(0u, manager.value()->last_seq());
}

TEST(Persist, WalOnlyRecoveryMatchesLiveState) {
  const DurabilityOptions opts = Opts(FreshDir("persist_wal_only"));
  MonoStack live;
  {
    StatusOr<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(opts);
    ASSERT_TRUE(manager.ok());
    DurableBackend durable(&live.engine, &live.embedder,
                           manager.value().get(), {&live.db});
    for (size_t id = 0; id < 40; ++id) {
      ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
    }
    for (size_t id = 0; id < 40; id += 5) {
      ASSERT_TRUE(durable.Remove(id).ok());
    }
    EXPECT_EQ(48u, manager.value()->last_seq());
  }
  MonoStack recovered;
  uint64_t replayed = 0;
  auto manager = RecoverMono(opts, &recovered, &replayed);
  ASSERT_NE(nullptr, manager);
  EXPECT_FALSE(manager->recovery().loaded_snapshot);
  EXPECT_EQ(48u, replayed);
  EXPECT_EQ(48u, manager->last_seq());  // Sequence continues, not restarts.
  ExpectDbsIdentical(live.db, recovered.db, "wal-only recovery");
}

TEST(Persist, AutoSnapshotCompactsWalAndRecovers) {
  DurabilityOptions opts = Opts(FreshDir("persist_auto_snapshot"));
  opts.snapshot_every_records = 10;
  MonoStack live;
  live.db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
  {
    StatusOr<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(opts);
    ASSERT_TRUE(manager.ok());
    DurableBackend durable(&live.engine, &live.embedder,
                           manager.value().get(), {&live.db});
    for (size_t id = 0; id < 37; ++id) {
      ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
    }
    ASSERT_TRUE(durable.Remove(3).ok());
  }
  // 38 records at a 10-record cadence: the WAL holds only the tail past
  // the last cut.
  StatusOr<WalReadResult> tail = ReadWal(opts.dir + "/wal.qse");
  ASSERT_TRUE(tail.ok());
  EXPECT_LT(tail->records.size(), 10u);
  EXPECT_GT(tail->base_seq, 0u);

  MonoStack recovered;
  // Shadow bits come from the snapshot image, but a WAL-tail insert must
  // land in a database that maintains them, so recovery enables them
  // before install (matching what the crashed process had).
  recovered.db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
  uint64_t replayed = 0;
  auto manager = RecoverMono(opts, &recovered, &replayed);
  ASSERT_NE(nullptr, manager);
  EXPECT_TRUE(manager->recovery().loaded_snapshot);
  EXPECT_GT(manager->recovery().snapshot_cut_seq, 0u);
  EXPECT_EQ(tail->records.size(), replayed);
  EXPECT_EQ(38u, manager->last_seq());
  ExpectDbsIdentical(live.db, recovered.db, "snapshot + tail recovery");
}

TEST(Persist, ExplicitSnapshotThenTailRecovers) {
  const DurabilityOptions opts = Opts(FreshDir("persist_explicit_snapshot"));
  MonoStack live;
  {
    StatusOr<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(opts);
    ASSERT_TRUE(manager.ok());
    DurableBackend durable(&live.engine, &live.embedder,
                           manager.value().get(), {&live.db});
    for (size_t id = 0; id < 20; ++id) {
      ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
    }
    ASSERT_TRUE(durable.WriteSnapshotNow().ok());
    for (size_t id = 20; id < 29; ++id) {
      ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
    }
    ASSERT_TRUE(durable.Remove(0).ok());
  }
  MonoStack recovered;
  uint64_t replayed = 0;
  auto manager = RecoverMono(opts, &recovered, &replayed);
  ASSERT_NE(nullptr, manager);
  EXPECT_EQ(20u, manager->recovery().snapshot_cut_seq);
  EXPECT_EQ(10u, replayed);  // 9 inserts + 1 remove past the cut.
  ExpectDbsIdentical(live.db, recovered.db, "explicit snapshot + tail");
}

TEST(Persist, RecoveryIsRepeatable) {
  const DurabilityOptions opts = Opts(FreshDir("persist_repeatable"));
  {
    MonoStack live;
    StatusOr<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(opts);
    ASSERT_TRUE(manager.ok());
    DurableBackend durable(&live.engine, &live.embedder,
                           manager.value().get(), {&live.db});
    for (size_t id = 0; id < 15; ++id) {
      ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
    }
  }
  // Recovery must not consume the log: two independent recoveries agree.
  MonoStack first, second;
  ASSERT_NE(nullptr, RecoverMono(opts, &first));
  ASSERT_NE(nullptr, RecoverMono(opts, &second));
  ExpectDbsIdentical(first.db, second.db, "repeated recovery");
  EXPECT_EQ(15u, first.db.size());
}

TEST(Persist, RepairOffRejectsCorruptTail) {
  const DurabilityOptions base = Opts(FreshDir("persist_strict"));
  {
    MonoStack live;
    StatusOr<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(base);
    ASSERT_TRUE(manager.ok());
    DurableBackend durable(&live.engine, &live.embedder,
                           manager.value().get(), {&live.db});
    for (size_t id = 0; id < 5; ++id) {
      ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
    }
  }
  {
    std::ofstream out(base.dir + "/wal.qse",
                      std::ios::binary | std::ios::app);
    out << "torn garbage tail";
  }
  DurabilityOptions strict = base;
  strict.repair_wal = false;
  StatusOr<std::unique_ptr<DurabilityManager>> rejected =
      DurabilityManager::Open(strict);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(StatusCode::kDataLoss, rejected.status().code());

  // Repair mode recovers the clean prefix and reports what it dropped.
  MonoStack recovered;
  uint64_t replayed = 0;
  auto manager = RecoverMono(base, &recovered, &replayed);
  ASSERT_NE(nullptr, manager);
  EXPECT_GT(manager->recovery().repaired_bytes, 0u);
  EXPECT_EQ(5u, replayed);
  EXPECT_EQ(5u, recovered.db.size());
}

TEST(Persist, ModelBlobRoundTripsThroughSnapshot) {
  DurabilityOptions opts = Opts(FreshDir("persist_model_blob"));
  opts.model_blob = std::string("fastmap-model\x00v1", 16);
  {
    MonoStack live;
    StatusOr<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(opts);
    ASSERT_TRUE(manager.ok());
    DurableBackend durable(&live.engine, &live.embedder,
                           manager.value().get(), {&live.db});
    for (size_t id = 0; id < 8; ++id) {
      ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
    }
    ASSERT_TRUE(durable.WriteSnapshotNow().ok());
  }
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok());
  EXPECT_TRUE(manager.value()->recovery().loaded_snapshot);
  EXPECT_EQ(opts.model_blob, manager.value()->recovery().model_blob);
}

TEST(Persist, ShardedRecoveryRoundTrip) {
  const DurabilityOptions opts = Opts(FreshDir("persist_sharded"));
  constexpr size_t kShards = 3;
  LineEmbedder embedder;
  L2Scorer scorer;
  ShardedEngineOptions shard_opts;
  shard_opts.num_shards = kShards;

  ShardedRetrievalEngine live(&embedder, &scorer, shard_opts);
  {
    StatusOr<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(opts);
    ASSERT_TRUE(manager.ok());
    std::vector<const EmbeddedDatabase*> dbs;
    for (size_t s = 0; s < kShards; ++s) {
      dbs.push_back(live.mutable_shard_db(s));
    }
    DurableBackend durable(&live, &embedder, manager.value().get(), dbs);
    for (size_t id = 0; id < 30; ++id) {
      ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
    }
    for (size_t id = 0; id < 30; id += 7) {
      ASSERT_TRUE(durable.Remove(id).ok());
    }
    ASSERT_TRUE(durable.WriteSnapshotNow().ok());
    ASSERT_TRUE(durable.Insert(100, DxOfObject(100)).ok());
  }

  ShardedRetrievalEngine recovered(&embedder, &scorer, shard_opts);
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok());
  std::vector<EmbeddedDatabase*> dbs;
  for (size_t s = 0; s < kShards; ++s) {
    dbs.push_back(recovered.mutable_shard_db(s));
  }
  ASSERT_TRUE(manager.value()->InstallSnapshot(dbs).ok());
  recovered.RebuildAfterRestore();
  StatusOr<uint64_t> replayed = manager.value()->Replay(&recovered);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(1u, replayed.value());
  for (size_t s = 0; s < kShards; ++s) {
    ExpectDbsIdentical(live.shard(s).db(), recovered.shard(s).db(),
                       "shard " + std::to_string(s));
  }
}

TEST(Persist, InstallSnapshotRejectsShardCountMismatch) {
  const DurabilityOptions opts = Opts(FreshDir("persist_shard_mismatch"));
  {
    MonoStack live;
    StatusOr<std::unique_ptr<DurabilityManager>> manager =
        DurabilityManager::Open(opts);
    ASSERT_TRUE(manager.ok());
    DurableBackend durable(&live.engine, &live.embedder,
                           manager.value().get(), {&live.db});
    ASSERT_TRUE(durable.Insert(0, DxOfObject(0)).ok());
    ASSERT_TRUE(durable.WriteSnapshotNow().ok());
  }
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok());
  EmbeddedDatabase a(kLineDims), b(kLineDims);
  Status installed = manager.value()->InstallSnapshot({&a, &b});
  ASSERT_FALSE(installed.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, installed.code());
}

// --- DurableBackend contract ---------------------------------------------

TEST(DurableBackendTest, FailedMutationIsNotLogged) {
  const DurabilityOptions opts = Opts(FreshDir("persist_failed_mutation"));
  MonoStack live;
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok());
  DurableBackend durable(&live.engine, &live.embedder, manager.value().get(),
                         {&live.db});
  ASSERT_TRUE(durable.Insert(1, DxOfObject(1)).ok());
  const uint64_t seq_before = manager.value()->last_seq();
  EXPECT_FALSE(durable.Remove(999).ok());  // Unknown id: apply fails.
  EXPECT_EQ(seq_before, manager.value()->last_seq());  // Nothing logged.
}

TEST(DurableBackendTest, RetrievalsPassThrough) {
  const DurabilityOptions opts = Opts(FreshDir("persist_passthrough"));
  MonoStack live;
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok());
  DurableBackend durable(&live.engine, &live.embedder, manager.value().get(),
                         {&live.db});
  for (size_t id = 0; id < 16; ++id) {
    ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
  }
  RetrievalOptions options(3, 16);
  StatusOr<RetrievalResponse> through =
      durable.Retrieve({MakeDx(XOf(5)), options});
  StatusOr<RetrievalResponse> direct =
      live.engine.Retrieve({MakeDx(XOf(5)), options});
  ASSERT_TRUE(through.ok());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->neighbors.size(), through->neighbors.size());
  for (size_t i = 0; i < direct->neighbors.size(); ++i) {
    EXPECT_EQ(direct->neighbors[i].index, through->neighbors[i].index);
    EXPECT_EQ(direct->neighbors[i].score, through->neighbors[i].score);
  }
}

}  // namespace
}  // namespace persist
}  // namespace qse
