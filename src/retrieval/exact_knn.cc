#include "src/retrieval/exact_knn.h"

namespace qse {

std::vector<ScoredIndex> ExactKnn(const DistanceOracle& oracle,
                                  size_t query_id,
                                  const std::vector<size_t>& db_ids,
                                  size_t k) {
  std::vector<double> scores(db_ids.size());
  for (size_t i = 0; i < db_ids.size(); ++i) {
    scores[i] = oracle.Distance(query_id, db_ids[i]);
  }
  return SmallestK(scores, k);
}

std::vector<ScoredIndex> ExactKnnExternal(const DxToDatabaseFn& dx,
                                          const std::vector<size_t>& db_ids,
                                          size_t k) {
  std::vector<double> scores(db_ids.size());
  for (size_t i = 0; i < db_ids.size(); ++i) {
    scores[i] = dx(db_ids[i]);
  }
  return SmallestK(scores, k);
}

}  // namespace qse
