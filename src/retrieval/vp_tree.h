#ifndef QSE_RETRIEVAL_VP_TREE_H_
#define QSE_RETRIEVAL_VP_TREE_H_

#include <memory>
#include <vector>

#include "src/data/dataset.h"
#include "src/embedding/embedder.h"
#include "src/util/random.h"
#include "src/util/top_k.h"

namespace qse {

/// A vantage-point tree [38] for exact k-NN search in *metric* spaces.
///
/// The paper (Secs. 1, 2, 10) argues that general metric-space indices
/// like vp-trees "cannot be applied" to its workloads because Shape
/// Context and cDTW violate the triangle inequality — the pruning rule
/// |D(q,v) - mu| > tau is only sound under that inequality.  This
/// implementation exists to make that argument concrete and testable:
///
///  * on metric data it returns exact k-NN while pruning a large fraction
///    of distance evaluations (see vp_tree_test.cc);
///  * on non-metric data its pruned search MISSES true neighbors — the
///    bench/ablation demonstrates the recall loss that motivates
///    embedding-based methods.
///
/// Construction cost: O(n log n) distance evaluations; queries count their
/// evaluations for comparison against the embedding pipeline.
class VpTree {
 public:
  /// Builds the tree over db_ids (positions are indices into db_ids, as
  /// elsewhere in retrieval/).  `leaf_size` controls when recursion stops.
  VpTree(const DistanceOracle* oracle, std::vector<size_t> db_ids,
         size_t leaf_size = 8, uint64_t seed = 17);

  struct Result {
    /// k best neighbors found (positions into db_ids), ascending by
    /// (distance, position).  Exact iff the distance is metric.
    std::vector<ScoredIndex> neighbors;
    /// Number of exact distance evaluations spent.
    size_t distance_evaluations = 0;
  };

  /// k-NN search for an external query given its distance function to
  /// database ids.
  Result Search(const DxToDatabaseFn& dx, size_t k) const;

  /// Distance evaluations spent building the tree.
  size_t build_distance_evaluations() const { return build_evaluations_; }

  size_t size() const { return db_ids_.size(); }

 private:
  struct Node {
    size_t vantage_position = 0;  // Position into db_ids_.
    double radius = 0.0;          // Median distance to the vantage point.
    std::unique_ptr<Node> inside;
    std::unique_ptr<Node> outside;
    std::vector<size_t> leaf_positions;  // Non-empty only for leaves.
    bool is_leaf = false;
  };

  std::unique_ptr<Node> Build(std::vector<size_t> positions, Rng* rng);
  void SearchNode(const Node* node, const DxToDatabaseFn& dx, size_t k,
                  std::vector<ScoredIndex>* best, size_t* evaluations) const;

  const DistanceOracle* oracle_;
  std::vector<size_t> db_ids_;
  std::unique_ptr<Node> root_;
  size_t leaf_size_;
  size_t build_evaluations_ = 0;
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_VP_TREE_H_
