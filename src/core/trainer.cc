#include "src/core/trainer.h"

#include "src/core/triple_sampler.h"
#include "src/util/logging.h"

namespace qse {

StatusOr<BoostMapArtifacts> TrainBoostMap(
    const DistanceOracle& oracle, const std::vector<size_t>& candidate_ids,
    const std::vector<size_t>& train_ids, const BoostMapConfig& config) {
  if (candidate_ids.empty()) {
    return Status::InvalidArgument("candidate set C must not be empty");
  }
  if (train_ids.size() < 4) {
    return Status::InvalidArgument(
        "training set Xtr needs at least 4 objects");
  }
  for (size_t id : candidate_ids) {
    if (id >= oracle.size()) {
      return Status::OutOfRange("candidate id exceeds oracle universe");
    }
  }
  for (size_t id : train_ids) {
    if (id >= oracle.size()) {
      return Status::OutOfRange("train id exceeds oracle universe");
    }
  }
  if (config.num_triples < 2) {
    return Status::InvalidArgument("need at least 2 training triples");
  }
  if (config.sampling == TripleSampling::kSelective) {
    if (config.k1 < 1 || config.k1 + 1 > train_ids.size() - 1) {
      return Status::InvalidArgument(
          "selective sampling requires 1 <= k1 <= |Xtr| - 2");
    }
  }
  if (config.boost.rounds == 0) {
    return Status::InvalidArgument("boosting needs at least 1 round");
  }

  CountingOracle counting(&oracle);
  TrainingContext ctx =
      TrainingContext::Build(counting, candidate_ids, train_ids);

  Rng rng(config.sampling_seed);
  std::vector<Triple> triples =
      config.sampling == TripleSampling::kRandom
          ? SampleRandomTriples(ctx.train_train_matrix(), config.num_triples,
                                &rng)
          : SampleSelectiveTriples(ctx.train_train_matrix(),
                                   config.num_triples, config.k1, &rng);

  AdaBoostResult boosted = TrainAdaBoost(ctx, triples, config.boost);
  if (boosted.rounds.empty()) {
    return Status::Internal(
        "boosting selected no classifiers; the distance measure may be "
        "degenerate (all-equal distances?)");
  }

  BoostMapArtifacts artifacts;
  artifacts.model = QuerySensitiveEmbedding::FromTraining(
      ctx, boosted.rounds, config.boost.query_sensitive);
  artifacts.history = std::move(boosted.history);
  artifacts.final_training_error = boosted.final_training_error;
  artifacts.preprocessing_distances = static_cast<size_t>(counting.count());
  return artifacts;
}

}  // namespace qse
