// Randomized stress suite for epoch-based concurrent mutation: mutator
// threads Insert/Remove while retriever threads query — over both
// engines, batched and single-query, and through the async server — and
// every response is checked for consistency with *some* serializable
// snapshot of the applied mutations.  A golden-parity half additionally
// verifies that a quiescent post-mutation database is bit-identical to
// one built by replaying the same operations serially.
//
// How responses are made checkable: the test universe is a line.  Object
// `id` sits at the deterministic coordinate XOf(id) in [0, 1), the exact
// distance is |x_q - XOf(id)|, and LineEmbedder embeds every object as
// its own coordinate (it reads the query's coordinate out of the dx
// callback through the reserved kProbe pseudo-id).  The L2 filter score
// (x_q - x)^2 is monotone in the exact distance, so with p >= n the
// filter keeps everything and every retrieval is the EXACT top-k of the
// snapshot it served.  Each response is then checked against an
// interval-stamped mutation history:
//
//   * every returned score must be the distance to some object that was
//     possibly visible during the query window (insert began before the
//     window closed, removal had not completed before it opened);
//   * every object surely visible for the whole window (insert completed
//     before it opened, removal began after it closed) whose distance is
//     strictly below the k-th returned score must appear in the result.
//
// Those two conditions hold iff the result is the exact top-k of some
// set S with surely-visible ⊆ S ⊆ possibly-visible — i.e. of a
// serializable snapshot.
//
// Scale knobs (the CI stress jobs turn them up):
//   QSE_STRESS_ITERS  multiplies op/query counts (default 1)
//   QSE_STRESS_SEED   pins the master seed (logged on every run so any
//                     failure is reproducible)
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/persist/durability.h"
#include "src/persist/durable_backend.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/server/async_retrieval_server.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/random.h"
#include "tests/line_universe.h"

namespace qse {
namespace {

// Deterministic line geometry — shared with the durability and
// crash-recovery suites.
using test::Dist;
using test::DxOfObject;
using test::kLineDims;
using test::LineEmbedder;
using test::MakeDx;
using test::Mix64;
using test::XOf;

// --- scale / seed knobs --------------------------------------------------

size_t StressScale() {
  if (const char* env = std::getenv("QSE_STRESS_ITERS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 1;
}

uint64_t StressSeed() {
  if (const char* env = std::getenv("QSE_STRESS_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) | rd();
}

/// Every stress test logs its seed up front (stdout survives even a
/// crash) and scopes it into any gtest failure message.
#define QSE_LOG_STRESS_SEED(seed)                                       \
  std::printf("[ stress ] rerun with QSE_STRESS_SEED=%llu\n",           \
              static_cast<unsigned long long>(seed));                   \
  SCOPED_TRACE(::testing::Message() << "QSE_STRESS_SEED=" << (seed))

// --- mutation history ----------------------------------------------------

constexpr uint64_t kNever = std::numeric_limits<uint64_t>::max();

/// Interval stamps of one object's lifecycle.  Each id is inserted at
/// most once and removed at most once (retired ids are never reused), so
/// four stamps fully describe it.
struct IdTimeline {
  std::atomic<uint64_t> insert_begin{kNever};
  std::atomic<uint64_t> insert_end{kNever};
  std::atomic<uint64_t> remove_begin{kNever};
  std::atomic<uint64_t> remove_end{kNever};
};

/// Global event clock plus per-id timelines.  All stamp accesses are
/// seq_cst: the checker's visibility reasoning happens in the single
/// total order over clock increments and stamp stores.
struct History {
  explicit History(size_t universe) : timelines(universe) {}
  uint64_t Stamp() { return clock.fetch_add(1, std::memory_order_seq_cst); }

  std::atomic<uint64_t> clock{0};
  std::vector<IdTimeline> timelines;
};

struct QueryWindow {
  uint64_t begin = 0;
  uint64_t end = 0;
};

/// Insert completed before the window opened and removal (if any) began
/// after it closed: the object was in EVERY state the query could serve.
bool SurelyVisible(const IdTimeline& t, const QueryWindow& w) {
  uint64_t insert_end = t.insert_end.load(std::memory_order_seq_cst);
  uint64_t remove_begin = t.remove_begin.load(std::memory_order_seq_cst);
  return insert_end != kNever && insert_end < w.begin &&
         (remove_begin == kNever || remove_begin > w.end);
}

/// Insert began before the window closed and removal had not completed
/// before it opened: the object was in SOME state the query could serve.
bool PossiblyVisible(const IdTimeline& t, const QueryWindow& w) {
  uint64_t insert_begin = t.insert_begin.load(std::memory_order_seq_cst);
  uint64_t remove_end = t.remove_end.load(std::memory_order_seq_cst);
  return insert_begin != kNever && insert_begin < w.end &&
         (remove_end == kNever || remove_end > w.begin);
}

/// Thread-safe failure collector: gtest assertions are not safe from
/// worker threads, so threads record and the main thread reports.
class FailureLog {
 public:
  void Add(const std::string& message) {
    std::lock_guard<std::mutex> lock(mu_);
    if (messages_.size() < 25) messages_.push_back(message);
    ++total_;
  }
  void ReportAll() const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& m : messages_) ADD_FAILURE() << m;
    if (total_ > messages_.size()) {
      ADD_FAILURE() << (total_ - messages_.size()) << " further failures "
                    << "suppressed";
    }
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> messages_;
  size_t total_ = 0;
};

/// The snapshot-consistency oracle described in the file comment.
/// `indices_are_ids` distinguishes the sharded engine (neighbor index =
/// database id, checked directly) from the monolithic one (neighbor
/// index = snapshot row, checked through the returned exact score).
void CheckSnapshotConsistent(const History& h, const QueryWindow& w,
                             double xq, const RetrievalResponse& r, size_t k,
                             bool indices_are_ids, FailureLog* log) {
  if (r.neighbors.size() != k) {
    std::ostringstream os;
    os << "expected " << k << " neighbors, got " << r.neighbors.size();
    log->Add(os.str());
    return;
  }
  for (size_t i = 1; i < r.neighbors.size(); ++i) {
    if (r.neighbors[i].score < r.neighbors[i - 1].score) {
      log->Add("neighbors not sorted by ascending exact distance");
      return;
    }
  }
  const double kth = r.neighbors.back().score;

  // (a) Every returned entry must correspond to a possibly-visible
  // object at exactly the claimed distance.
  for (const ScoredIndex& nb : r.neighbors) {
    if (indices_are_ids) {
      if (nb.index >= h.timelines.size() ||
          !PossiblyVisible(h.timelines[nb.index], w) ||
          nb.score != Dist(xq, nb.index)) {
        std::ostringstream os;
        os << "returned id " << nb.index << " (score " << nb.score
           << ") was not visible in any state of window [" << w.begin
           << ", " << w.end << "] at that distance";
        log->Add(os.str());
      }
    } else {
      bool matched = false;
      for (size_t id = 0; id < h.timelines.size() && !matched; ++id) {
        matched = Dist(xq, id) == nb.score &&
                  PossiblyVisible(h.timelines[id], w);
      }
      if (!matched) {
        std::ostringstream os;
        os << "returned score " << nb.score << " matches no object "
           << "possibly visible in window [" << w.begin << ", " << w.end
           << "]";
        log->Add(os.str());
      }
    }
  }

  // (b) Every object surely visible for the whole window and strictly
  // closer than the k-th returned neighbor must have been returned.
  for (size_t id = 0; id < h.timelines.size(); ++id) {
    if (!SurelyVisible(h.timelines[id], w)) continue;
    double d = Dist(xq, id);
    if (d >= kth) continue;
    bool found = false;
    for (const ScoredIndex& nb : r.neighbors) {
      if (indices_are_ids ? nb.index == id : nb.score == d) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::ostringstream os;
      os << "object " << id << " (distance " << d
         << ") was visible for the whole window [" << w.begin << ", "
         << w.end << "] and beats the k-th score " << kth
         << " but is missing from the result";
      log->Add(os.str());
    }
  }
}

// --- workload threads ----------------------------------------------------

constexpr size_t kNeighbors = 8;
constexpr size_t kAllCandidates = std::numeric_limits<size_t>::max();

RetrievalOptions StressOptions() {
  // p = n: the filter keeps everything, so retrieval is exact k-NN of
  // the served snapshot and the oracle above is airtight.
  return RetrievalOptions(kNeighbors, kAllCandidates);
}

/// Serially inserts `ids` (stamping the history) — initial population.
void Populate(RetrievalBackend* backend, History* h,
              const std::vector<size_t>& ids) {
  for (size_t id : ids) {
    IdTimeline& t = h->timelines[id];
    t.insert_begin.store(h->Stamp(), std::memory_order_seq_cst);
    Status s = backend->Insert(id, DxOfObject(id));
    ASSERT_TRUE(s.ok()) << s;
    t.insert_end.store(h->Stamp(), std::memory_order_seq_cst);
  }
}

struct MutatorPlan {
  size_t id_begin = 0;   ///< Private id range [id_begin, id_end):
  size_t id_end = 0;     ///< no cross-thread conflicts, ids never reused.
  size_t initial_live = 0;  ///< Pre-populated prefix of the range.
  size_t ops = 0;
  size_t min_live = 0;   ///< Never remove below this (keeps size >= k).
  uint64_t seed = 0;
};

/// Cross-thread progress counters: mutators keep mutating until the
/// retrievers hit their query quota (so queries and mutations genuinely
/// overlap in time), and retrievers count how many of their windows saw
/// a mutation land mid-query.
struct StressProgress {
  std::atomic<size_t> queries_done{0};
  size_t query_goal = 0;
  std::atomic<size_t> mutation_ops{0};
  std::atomic<size_t> overlapped_queries{0};
};

/// Applies random Insert/Remove through `insert`/`remove` (a backend or
/// server surface), stamping every operation into the history.  Runs at
/// least plan.ops operations and then keeps going — while ids last —
/// until the retrievers reach their goal.
template <typename InsertFn, typename RemoveFn>
void RunMutator(const MutatorPlan& plan, History* h, StressProgress* progress,
                FailureLog* log, const InsertFn& insert,
                const RemoveFn& remove) {
  Rng rng(plan.seed);
  std::vector<size_t> live;
  for (size_t i = 0; i < plan.initial_live; ++i) {
    live.push_back(plan.id_begin + i);
  }
  size_t next_fresh = plan.id_begin + plan.initial_live;
  for (size_t op = 0;
       op < plan.ops ||
       progress->queries_done.load(std::memory_order_acquire) <
           progress->query_goal;
       ++op) {
    bool can_insert = next_fresh < plan.id_end;
    bool must_insert = live.size() <= plan.min_live;
    if (!can_insert && live.size() <= plan.min_live) break;  // Ids spent.
    bool do_insert = can_insert && (must_insert || rng.Bernoulli(0.5));
    if (!do_insert && live.empty()) break;
    progress->mutation_ops.fetch_add(1, std::memory_order_acq_rel);
    if (do_insert) {
      size_t id = next_fresh++;
      IdTimeline& t = h->timelines[id];
      t.insert_begin.store(h->Stamp(), std::memory_order_seq_cst);
      Status s = insert(id);
      t.insert_end.store(h->Stamp(), std::memory_order_seq_cst);
      if (!s.ok()) {
        log->Add("Insert(" + std::to_string(id) + ") failed: " + s.ToString());
        return;
      }
      live.push_back(id);
    } else {
      size_t pick = rng.Index(live.size());
      size_t id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      IdTimeline& t = h->timelines[id];
      t.remove_begin.store(h->Stamp(), std::memory_order_seq_cst);
      Status s = remove(id);
      t.remove_end.store(h->Stamp(), std::memory_order_seq_cst);
      if (!s.ok()) {
        log->Add("Remove(" + std::to_string(id) + ") failed: " + s.ToString());
        return;
      }
    }
  }
}

// --- the consistency stress core -----------------------------------------

enum class QueryMode { kSingle, kBatch };

struct StressConfig {
  size_t mutators = 2;
  size_t retrievers = 3;
  size_t ids_per_mutator = 4096;
  size_t initial_live = 256;
  size_t min_live = 128;
  size_t ops_per_mutator = 0;      // Filled from StressScale().
  size_t min_queries_per_thread = 0;
  size_t batch_size = 8;
};

StressConfig ScaledConfig() {
  StressConfig c;
  c.ops_per_mutator = 350 * StressScale();
  c.min_queries_per_thread = 120 * StressScale();
  return c;
}

/// Mutators × retrievers against one backend; every response checked
/// against the history oracle.
void RunConsistencyStress(RetrievalBackend* backend, bool indices_are_ids,
                          QueryMode mode, uint64_t seed,
                          const StressConfig& config) {
  History history(config.mutators * config.ids_per_mutator);
  FailureLog log;

  for (size_t m = 0; m < config.mutators; ++m) {
    std::vector<size_t> initial;
    for (size_t i = 0; i < config.initial_live; ++i) {
      initial.push_back(m * config.ids_per_mutator + i);
    }
    Populate(backend, &history, initial);
  }
  if (::testing::Test::HasFatalFailure()) return;

  StressProgress progress;
  progress.query_goal = config.retrievers * config.min_queries_per_thread;
  std::atomic<size_t> mutators_running{config.mutators};
  std::vector<std::thread> threads;
  for (size_t m = 0; m < config.mutators; ++m) {
    MutatorPlan plan;
    plan.id_begin = m * config.ids_per_mutator;
    plan.id_end = plan.id_begin + config.ids_per_mutator;
    plan.initial_live = config.initial_live;
    plan.ops = config.ops_per_mutator;
    plan.min_live = config.min_live;
    plan.seed = Mix64(seed + m);
    threads.emplace_back([backend, plan, &history, &log, &progress,
                          &mutators_running] {
      RunMutator(
          plan, &history, &progress, &log,
          [backend](size_t id) { return backend->Insert(id, DxOfObject(id)); },
          [backend](size_t id) { return backend->Remove(id); });
      mutators_running.fetch_sub(1, std::memory_order_release);
    });
  }

  for (size_t r = 0; r < config.retrievers; ++r) {
    threads.emplace_back([backend, r, seed, mode, indices_are_ids, &history,
                          &log, &progress, &mutators_running, &config] {
      Rng rng(Mix64(seed + 1000 + r));
      size_t done = 0;
      // Keep querying while mutations are in flight (that is the whole
      // point), with a floor so quiet schedules still get coverage and
      // a generous cap so the test always terminates.
      while ((done < config.min_queries_per_thread ||
              mutators_running.load(std::memory_order_acquire) > 0) &&
             done < config.min_queries_per_thread * 50) {
        size_t ops_before =
            progress.mutation_ops.load(std::memory_order_acquire);
        if (mode == QueryMode::kSingle) {
          double xq = rng.Uniform(0, 1);
          QueryWindow w;
          w.begin = history.Stamp();
          StatusOr<RetrievalResponse> resp =
              backend->Retrieve({MakeDx(xq), StressOptions()});
          w.end = history.Stamp();
          if (!resp.ok()) {
            log.Add("Retrieve failed: " + resp.status().ToString());
            return;
          }
          CheckSnapshotConsistent(history, w, xq, *resp, kNeighbors,
                                  indices_are_ids, &log);
          ++done;
          progress.queries_done.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::vector<double> xs;
          std::vector<DxToDatabaseFn> queries;
          for (size_t b = 0; b < config.batch_size; ++b) {
            xs.push_back(rng.Uniform(0, 1));
            queries.push_back(MakeDx(xs.back()));
          }
          QueryWindow w;
          w.begin = history.Stamp();
          StatusOr<std::vector<RetrievalResponse>> resp =
              backend->RetrieveBatch(queries, StressOptions());
          w.end = history.Stamp();
          if (!resp.ok()) {
            log.Add("RetrieveBatch failed: " + resp.status().ToString());
            return;
          }
          for (size_t b = 0; b < resp->size(); ++b) {
            CheckSnapshotConsistent(history, w, xs[b], (*resp)[b],
                                    kNeighbors, indices_are_ids, &log);
          }
          done += config.batch_size;
          progress.queries_done.fetch_add(config.batch_size,
                                          std::memory_order_acq_rel);
        }
        if (progress.mutation_ops.load(std::memory_order_acquire) !=
            ops_before) {
          progress.overlapped_queries.fetch_add(
              1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  log.ReportAll();

  // The suite only means something if queries actually raced mutations.
  std::printf("[ stress ] %zu mutation ops, %zu queries, %zu query windows "
              "overlapped a mutation\n",
              progress.mutation_ops.load(), progress.queries_done.load(),
              progress.overlapped_queries.load());
  if (std::thread::hardware_concurrency() >= 2) {
    EXPECT_GT(progress.overlapped_queries.load(), 0u)
        << "no query window overlapped a mutation — the stress schedule "
           "degenerated to quiescent checks";
  }
}

struct MonoStack {
  LineEmbedder embedder;
  L2Scorer scorer;
  EmbeddedDatabase db{kLineDims};
  RetrievalEngine engine{&embedder, &scorer, &db, {}};
};

struct ShardedStack {
  explicit ShardedStack(size_t num_shards) {
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    engine = std::make_unique<ShardedRetrievalEngine>(&embedder, &scorer,
                                                      options);
  }
  LineEmbedder embedder;
  L2Scorer scorer;
  std::unique_ptr<ShardedRetrievalEngine> engine;
};

TEST(ConcurrentMutationStress, MonoEngineSingleQueries) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  MonoStack stack;
  RunConsistencyStress(&stack.engine, /*indices_are_ids=*/false,
                       QueryMode::kSingle, seed, ScaledConfig());
}

TEST(ConcurrentMutationStress, MonoEngineBatchedQueries) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  MonoStack stack;
  RunConsistencyStress(&stack.engine, /*indices_are_ids=*/false,
                       QueryMode::kBatch, seed, ScaledConfig());
}

TEST(ConcurrentMutationStress, ShardedEngineSingleQueries) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  ShardedStack stack(3);
  RunConsistencyStress(stack.engine.get(), /*indices_are_ids=*/true,
                       QueryMode::kSingle, seed, ScaledConfig());
}

TEST(ConcurrentMutationStress, ShardedEngineBatchedQueries) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  ShardedStack stack(3);
  RunConsistencyStress(stack.engine.get(), /*indices_are_ids=*/true,
                       QueryMode::kBatch, seed, ScaledConfig());
}

// --- mutation through the async server -----------------------------------

/// Submitters drive the server while mutators mutate THROUGH the server's
/// Insert/Remove surface; every future must resolve OK and every response
/// must pass the same snapshot oracle.
void RunServerStress(RetrievalBackend* backend, bool indices_are_ids,
                     uint64_t seed) {
  StressConfig config = ScaledConfig();
  config.retrievers = 2;
  History history(config.mutators * config.ids_per_mutator);
  FailureLog log;

  for (size_t m = 0; m < config.mutators; ++m) {
    std::vector<size_t> initial;
    for (size_t i = 0; i < config.initial_live; ++i) {
      initial.push_back(m * config.ids_per_mutator + i);
    }
    Populate(backend, &history, initial);
  }
  if (::testing::Test::HasFatalFailure()) return;

  AsyncServerOptions options;
  options.queue_capacity = 1024;
  options.max_batch = 16;
  options.num_workers = 2;
  options.retrieve_threads = 2;
  AsyncRetrievalServer server(backend, options);

  StressProgress progress;
  progress.query_goal = config.retrievers * config.min_queries_per_thread;
  std::atomic<size_t> mutators_running{config.mutators};
  std::vector<std::thread> threads;
  for (size_t m = 0; m < config.mutators; ++m) {
    MutatorPlan plan;
    plan.id_begin = m * config.ids_per_mutator;
    plan.id_end = plan.id_begin + config.ids_per_mutator;
    plan.initial_live = config.initial_live;
    plan.ops = config.ops_per_mutator;
    plan.min_live = config.min_live;
    plan.seed = Mix64(seed + m);
    threads.emplace_back([&server, plan, &history, &log, &progress,
                          &mutators_running] {
      RunMutator(
          plan, &history, &progress, &log,
          [&server](size_t id) { return server.Insert(id, DxOfObject(id)); },
          [&server](size_t id) { return server.Remove(id); });
      mutators_running.fetch_sub(1, std::memory_order_release);
    });
  }
  for (size_t r = 0; r < config.retrievers; ++r) {
    threads.emplace_back([&server, r, seed, indices_are_ids, &history, &log,
                          &progress, &mutators_running, &config] {
      Rng rng(Mix64(seed + 2000 + r));
      size_t done = 0;
      while ((done < config.min_queries_per_thread ||
              mutators_running.load(std::memory_order_acquire) > 0) &&
             done < config.min_queries_per_thread * 50) {
        size_t ops_before =
            progress.mutation_ops.load(std::memory_order_acquire);
        double xq = rng.Uniform(0, 1);
        QueryWindow w;
        w.begin = history.Stamp();
        Future<StatusOr<RetrievalResponse>> future =
            server.Submit({MakeDx(xq), StressOptions()});
        const StatusOr<RetrievalResponse>& resp = future.Get();
        w.end = history.Stamp();
        if (!resp.ok()) {
          // Two blocking submitters can never overflow a 1024-entry
          // queue and no deadline is set: any failure is a real bug.
          log.Add("Submit resolved with error: " + resp.status().ToString());
          return;
        }
        CheckSnapshotConsistent(history, w, xq, *resp, kNeighbors,
                                indices_are_ids, &log);
        ++done;
        progress.queries_done.fetch_add(1, std::memory_order_acq_rel);
        if (progress.mutation_ops.load(std::memory_order_acquire) !=
            ops_before) {
          progress.overlapped_queries.fetch_add(
              1, std::memory_order_acq_rel);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  log.ReportAll();

  std::printf("[ stress ] %zu mutation ops through the server, %zu "
              "submits, %zu windows overlapped a mutation\n",
              progress.mutation_ops.load(), progress.queries_done.load(),
              progress.overlapped_queries.load());
  if (std::thread::hardware_concurrency() >= 2) {
    EXPECT_GT(progress.overlapped_queries.load(), 0u)
        << "no submit window overlapped a mutation — the stress schedule "
           "degenerated to quiescent checks";
  }

  ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_EQ(stats.admitted, stats.completed + stats.expired +
                                stats.cancelled + stats.shed);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ConcurrentMutationStress, AsyncServerOverMonoEngine) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  MonoStack stack;
  RunServerStress(&stack.engine, /*indices_are_ids=*/false, seed);
}

TEST(ConcurrentMutationStress, AsyncServerOverShardedEngine) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  ShardedStack stack(3);
  RunServerStress(stack.engine.get(), /*indices_are_ids=*/true, seed);
}

TEST(ConcurrentMutationStress, ReadOnlyServerRefusesMutation) {
  MonoStack stack;
  ASSERT_TRUE(stack.engine.Insert(0, DxOfObject(0)).ok());
  const RetrievalBackend* read_only = &stack.engine;
  AsyncRetrievalServer server(read_only, AsyncServerOptions{});
  Status insert = server.Insert(1, DxOfObject(1));
  EXPECT_EQ(insert.code(), StatusCode::kFailedPrecondition);
  Status remove = server.Remove(0);
  EXPECT_EQ(remove.code(), StatusCode::kFailedPrecondition);
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
}

// --- golden parity: concurrent == serial, bit for bit --------------------

struct MutationOp {
  enum Kind { kInsert, kRemove } kind;
  size_t id;
};

constexpr size_t kParityInitial = 128;

/// The randomized op sequence, generated up front: a single mutator
/// thread applies it in program order, so "the ops as applied
/// concurrently" and "the ops as replayed serially" are the same
/// sequence by construction.
std::vector<MutationOp> MakeOpSequence(uint64_t seed, size_t num_ops) {
  Rng rng(Mix64(seed ^ 0x60146011));
  std::vector<MutationOp> ops;
  std::vector<size_t> live;
  for (size_t i = 0; i < kParityInitial; ++i) live.push_back(i);
  size_t next_fresh = kParityInitial;
  for (size_t i = 0; i < num_ops; ++i) {
    bool do_insert = live.size() <= kNeighbors + 8 || rng.Bernoulli(0.5);
    if (do_insert) {
      ops.push_back({MutationOp::kInsert, next_fresh});
      live.push_back(next_fresh++);
    } else {
      size_t pick = rng.Index(live.size());
      ops.push_back({MutationOp::kRemove, live[pick]});
      live[pick] = live.back();
      live.pop_back();
    }
  }
  return ops;
}

Status ApplyOp(RetrievalBackend* backend, const MutationOp& op) {
  return op.kind == MutationOp::kInsert
             ? backend->Insert(op.id, DxOfObject(op.id))
             : backend->Remove(op.id);
}

void PopulateInitial(RetrievalBackend* backend) {
  for (size_t i = 0; i < kParityInitial; ++i) {
    ASSERT_TRUE(backend->Insert(i, DxOfObject(i)).ok());
  }
}

/// Applies `ops` from one mutator thread while retriever threads hammer
/// the backend — the concurrent half of the parity experiment.
void ApplyOpsUnderLoad(RetrievalBackend* backend,
                       const std::vector<MutationOp>& ops, uint64_t seed) {
  FailureLog log;
  std::atomic<bool> mutating{true};
  std::thread mutator([&] {
    for (const MutationOp& op : ops) {
      Status s = ApplyOp(backend, op);
      if (!s.ok()) {
        log.Add("concurrent op failed: " + s.ToString());
        break;
      }
    }
    mutating.store(false, std::memory_order_release);
  });
  std::vector<std::thread> retrievers;
  for (size_t r = 0; r < 2; ++r) {
    retrievers.emplace_back([&, r] {
      Rng rng(Mix64(seed + 3000 + r));
      while (mutating.load(std::memory_order_acquire)) {
        StatusOr<RetrievalResponse> resp = backend->Retrieve(
            {MakeDx(rng.Uniform(0, 1)), StressOptions()});
        if (!resp.ok()) {
          log.Add("retrieve during parity run failed: " +
                  resp.status().ToString());
          return;
        }
      }
    });
  }
  mutator.join();
  for (std::thread& t : retrievers) t.join();
  log.ReportAll();
}

/// Bit-identity of two databases: same ids in the same rows, same bytes
/// in the flat buffer.
void ExpectBitIdentical(const EmbeddedDatabase& a, const EmbeddedDatabase& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.dims(), b.dims()) << what;
  EXPECT_EQ(a.ids(), b.ids()) << what;
  ASSERT_EQ(a.data().size(), b.data().size()) << what;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.data().size() * sizeof(double)),
            0)
      << what << ": quiescent buffers differ bitwise";
}

/// Quiescent retrieval parity between the concurrently mutated backend
/// and its serial replay.
void ExpectSameAnswers(const RetrievalBackend& a, const RetrievalBackend& b,
                       uint64_t seed) {
  Rng rng(Mix64(seed + 4000));
  for (size_t q = 0; q < 20; ++q) {
    DxToDatabaseFn dx = MakeDx(rng.Uniform(0, 1));
    StatusOr<RetrievalResponse> ra = a.Retrieve({dx, StressOptions()});
    StatusOr<RetrievalResponse> rb = b.Retrieve({dx, StressOptions()});
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    ASSERT_EQ(ra->neighbors.size(), rb->neighbors.size());
    for (size_t i = 0; i < ra->neighbors.size(); ++i) {
      EXPECT_EQ(ra->neighbors[i].index, rb->neighbors[i].index) << q;
      EXPECT_EQ(ra->neighbors[i].score, rb->neighbors[i].score) << q;
    }
  }
}

TEST(GoldenParity, MonoQuiescentStateMatchesSerialReplay) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  std::vector<MutationOp> ops = MakeOpSequence(seed, 500 * StressScale());

  MonoStack concurrent;
  PopulateInitial(&concurrent.engine);
  if (::testing::Test::HasFatalFailure()) return;
  ApplyOpsUnderLoad(&concurrent.engine, ops, seed);

  MonoStack serial;
  PopulateInitial(&serial.engine);
  for (const MutationOp& op : ops) {
    ASSERT_TRUE(ApplyOp(&serial.engine, op).ok());
  }

  ExpectBitIdentical(concurrent.db, serial.db, "mono database");
  ExpectSameAnswers(concurrent.engine, serial.engine, seed);
}

// --- WAL-on stress: durability under live retrieval, then recovery -------

/// Fresh durability directory under gtest's temp dir (stale files from a
/// previous run removed).
std::string FreshDurabilityDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/wal.qse").c_str());
  std::remove((dir + "/snapshot.qse").c_str());
  std::remove((dir + "/snapshot.qse.tmp").c_str());
  return dir;
}

persist::DurabilityOptions StressDurabilityOptions(const std::string& dir) {
  persist::DurabilityOptions options;
  options.dir = dir;
  // kEveryN keeps the stress fast while still exercising the fsync
  // batching path; the test harness never loses the page cache.
  options.fsync = persist::FsyncPolicy::kEveryN;
  options.fsync_every_n = 64;
  // Low enough that the stress run compacts the WAL several times, so
  // recovery genuinely exercises snapshot + tail replay.
  options.snapshot_every_records = 300;
  return options;
}

/// The serializable-snapshot oracle, re-run against a QUIESCENT
/// (recovered) backend: every id the database holds has been visible
/// since before any query, nothing else ever existed, so each retrieval
/// must be the exact top-k of exactly that set.
void RerunOracleQuiescent(RetrievalBackend* backend,
                          const std::vector<size_t>& live_ids,
                          size_t universe, bool indices_are_ids,
                          uint64_t seed) {
  History history(universe);
  for (size_t id : live_ids) {
    ASSERT_LT(id, universe);
    history.timelines[id].insert_begin.store(0, std::memory_order_seq_cst);
    history.timelines[id].insert_end.store(0, std::memory_order_seq_cst);
  }
  // Start the clock at 1 so "inserted at stamp 0" precedes every window.
  history.clock.store(1, std::memory_order_seq_cst);
  FailureLog log;
  Rng rng(Mix64(seed + 5000));
  for (size_t q = 0; q < 50; ++q) {
    double xq = rng.Uniform(0, 1);
    QueryWindow w;
    w.begin = history.Stamp();
    StatusOr<RetrievalResponse> resp =
        backend->Retrieve({MakeDx(xq), StressOptions()});
    w.end = history.Stamp();
    ASSERT_TRUE(resp.ok()) << resp.status();
    CheckSnapshotConsistent(history, w, xq, *resp, kNeighbors,
                            indices_are_ids, &log);
  }
  log.ReportAll();
}

TEST(DurableConcurrentMutationStress, MonoWalOnStressThenRecover) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  const std::string dir = FreshDurabilityDir("qse_stress_durability_mono");
  const persist::DurabilityOptions dopts = StressDurabilityOptions(dir);

  MonoStack live;
  StatusOr<std::unique_ptr<persist::DurabilityManager>> manager =
      persist::DurabilityManager::Open(dopts);
  ASSERT_TRUE(manager.ok()) << manager.status();
  persist::DurableBackend durable(&live.engine, &live.embedder,
                                  manager.value().get(), {&live.db});

  const StressConfig config = ScaledConfig();
  RunConsistencyStress(&durable, /*indices_are_ids=*/false,
                       QueryMode::kSingle, seed, config);
  if (::testing::Test::HasFatalFailure() || HasFailure()) return;

  // Recover into a fresh stack: snapshot + WAL tail must reproduce the
  // live quiescent database bit for bit.
  MonoStack recovered;
  StatusOr<std::unique_ptr<persist::DurabilityManager>> rec =
      persist::DurabilityManager::Open(dopts);
  ASSERT_TRUE(rec.ok()) << rec.status();
  Status installed = rec.value()->InstallSnapshot({&recovered.db});
  ASSERT_TRUE(installed.ok()) << installed;
  recovered.engine.RebuildIdIndex();
  StatusOr<uint64_t> replayed = rec.value()->Replay(&recovered.engine);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  std::printf("[ stress ] recovery replayed %llu WAL records\n",
              static_cast<unsigned long long>(replayed.value()));

  ExpectBitIdentical(live.db, recovered.db, "recovered mono database");
  ExpectSameAnswers(live.engine, recovered.engine, seed);
  RerunOracleQuiescent(&recovered.engine, recovered.db.ids(),
                       config.mutators * config.ids_per_mutator,
                       /*indices_are_ids=*/false, seed);
}

TEST(DurableConcurrentMutationStress, ShardedWalOnStressThenRecover) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  const std::string dir = FreshDurabilityDir("qse_stress_durability_sharded");
  const persist::DurabilityOptions dopts = StressDurabilityOptions(dir);
  constexpr size_t kShards = 3;

  ShardedStack live(kShards);
  StatusOr<std::unique_ptr<persist::DurabilityManager>> manager =
      persist::DurabilityManager::Open(dopts);
  ASSERT_TRUE(manager.ok()) << manager.status();
  std::vector<const EmbeddedDatabase*> snapshot_dbs;
  for (size_t s = 0; s < kShards; ++s) {
    snapshot_dbs.push_back(live.engine->mutable_shard_db(s));
  }
  persist::DurableBackend durable(live.engine.get(), &live.embedder,
                                  manager.value().get(), snapshot_dbs);

  const StressConfig config = ScaledConfig();
  RunConsistencyStress(&durable, /*indices_are_ids=*/true,
                       QueryMode::kSingle, seed, config);
  if (::testing::Test::HasFatalFailure() || HasFailure()) return;

  ShardedStack recovered(kShards);
  StatusOr<std::unique_ptr<persist::DurabilityManager>> rec =
      persist::DurabilityManager::Open(dopts);
  ASSERT_TRUE(rec.ok()) << rec.status();
  std::vector<EmbeddedDatabase*> restore_dbs;
  for (size_t s = 0; s < kShards; ++s) {
    restore_dbs.push_back(recovered.engine->mutable_shard_db(s));
  }
  Status installed = rec.value()->InstallSnapshot(restore_dbs);
  ASSERT_TRUE(installed.ok()) << installed;
  recovered.engine->RebuildAfterRestore();
  StatusOr<uint64_t> replayed = rec.value()->Replay(recovered.engine.get());
  ASSERT_TRUE(replayed.ok()) << replayed.status();

  std::vector<size_t> live_ids;
  for (size_t s = 0; s < kShards; ++s) {
    ExpectBitIdentical(live.engine->shard(s).db(),
                       recovered.engine->shard(s).db(),
                       "recovered shard " + std::to_string(s));
    for (size_t id : recovered.engine->shard(s).db().ids()) {
      live_ids.push_back(id);
    }
  }
  ExpectSameAnswers(*live.engine, *recovered.engine, seed);
  RerunOracleQuiescent(recovered.engine.get(), live_ids,
                       config.mutators * config.ids_per_mutator,
                       /*indices_are_ids=*/true, seed);
}

TEST(GoldenParity, ShardedQuiescentStateMatchesSerialReplay) {
  const uint64_t seed = StressSeed();
  QSE_LOG_STRESS_SEED(seed);
  std::vector<MutationOp> ops = MakeOpSequence(seed, 500 * StressScale());

  ShardedStack concurrent(3);
  PopulateInitial(concurrent.engine.get());
  if (::testing::Test::HasFatalFailure()) return;
  ApplyOpsUnderLoad(concurrent.engine.get(), ops, seed);

  ShardedStack serial(3);
  PopulateInitial(serial.engine.get());
  for (const MutationOp& op : ops) {
    ASSERT_TRUE(ApplyOp(serial.engine.get(), op).ok());
  }

  ASSERT_EQ(concurrent.engine->num_shards(), serial.engine->num_shards());
  for (size_t s = 0; s < concurrent.engine->num_shards(); ++s) {
    ExpectBitIdentical(concurrent.engine->shard(s).db(),
                       serial.engine->shard(s).db(),
                       "shard " + std::to_string(s));
  }
  ExpectSameAnswers(*concurrent.engine, *serial.engine, seed);
}

}  // namespace
}  // namespace qse
