#ifndef QSE_RETRIEVAL_EXACT_KNN_H_
#define QSE_RETRIEVAL_EXACT_KNN_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/embedding/embedder.h"
#include "src/util/top_k.h"

namespace qse {

/// Brute-force exact k-nearest-neighbor search: evaluates DX from the
/// query to every database object.  Returned indices are *positions* in
/// `db_ids` (not database ids), ascending by (distance, position) — the
/// deterministic ordering used as ground truth throughout the repo.
std::vector<ScoredIndex> ExactKnn(const DistanceOracle& oracle,
                                  size_t query_id,
                                  const std::vector<size_t>& db_ids,
                                  size_t k);

/// Same for an external query given its distance function to database
/// objects (keyed by database id).
std::vector<ScoredIndex> ExactKnnExternal(const DxToDatabaseFn& dx,
                                          const std::vector<size_t>& db_ids,
                                          size_t k);

}  // namespace qse

#endif  // QSE_RETRIEVAL_EXACT_KNN_H_
