#include "src/matching/hungarian.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace qse {
namespace {

Matrix MakeMatrix(size_t r, size_t c, std::vector<double> values) {
  Matrix m(r, c);
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) m(i, j) = values[i * c + j];
  }
  return m;
}

TEST(HungarianTest, TrivialSingleCell) {
  Matrix cost = MakeMatrix(1, 1, {3.5});
  AssignmentResult r = SolveAssignment(cost);
  EXPECT_EQ(r.row_to_col, (std::vector<size_t>{0}));
  EXPECT_DOUBLE_EQ(r.total_cost, 3.5);
}

TEST(HungarianTest, IdentityIsOptimalOnDiagonalZeroMatrix) {
  Matrix cost = MakeMatrix(3, 3, {0, 1, 1, 1, 0, 1, 1, 1, 0});
  AssignmentResult r = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
  EXPECT_EQ(r.row_to_col, (std::vector<size_t>{0, 1, 2}));
}

TEST(HungarianTest, ClassicTextbookExample) {
  // Known optimum 140 + 40 + 45 = ... use a standard 3x3 with optimum 69:
  //   [ 108 125 150 ]
  //   [ 150 135 175 ]
  //   [ 122 148 250 ]
  // Optimal: (0,2)+(1,1)+(2,0) = 150+135+122 = 407.
  Matrix cost =
      MakeMatrix(3, 3, {108, 125, 150, 150, 135, 175, 122, 148, 250});
  AssignmentResult r = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(r.total_cost, 407.0);
}

TEST(HungarianTest, RectangularMatchesEveryRow) {
  Matrix cost = MakeMatrix(2, 4, {9, 1, 9, 9,
                                  9, 9, 9, 2});
  AssignmentResult r = SolveAssignment(cost);
  EXPECT_EQ(r.row_to_col[0], 1u);
  EXPECT_EQ(r.row_to_col[1], 3u);
  EXPECT_DOUBLE_EQ(r.total_cost, 3.0);
}

TEST(HungarianTest, AssignmentIsPermutation) {
  Rng rng(21);
  Matrix cost(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) cost(i, j) = rng.Uniform(0, 10);
  }
  AssignmentResult r = SolveAssignment(cost);
  std::set<size_t> cols(r.row_to_col.begin(), r.row_to_col.end());
  EXPECT_EQ(cols.size(), 6u);
}

class HungarianOptimality : public testing::TestWithParam<size_t> {};

TEST_P(HungarianOptimality, BeatsExhaustiveSearchExactly) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix cost(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) cost(i, j) = rng.Uniform(0, 100);
    }
    AssignmentResult r = SolveAssignment(cost);
    // Exhaustive check over all n! permutations.
    std::vector<size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    double best = 1e300;
    do {
      double total = 0.0;
      for (size_t i = 0; i < n; ++i) total += cost(i, perm[i]);
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_NEAR(r.total_cost, best, 1e-9) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HungarianOptimality,
                         testing::Values(2u, 3u, 4u, 5u, 6u));

TEST(HungarianTest, NeverWorseThanRandomPermutations) {
  Rng rng(55);
  const size_t n = 20;
  Matrix cost(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) cost(i, j) = rng.Uniform(0, 1);
  }
  AssignmentResult r = SolveAssignment(cost);
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<size_t> p = perm;
    Rng shuffler(trial);
    shuffler.Shuffle(&p);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += cost(i, p[i]);
    EXPECT_LE(r.total_cost, total + 1e-9);
  }
}

TEST(HungarianTest, NegativeCostsSupported) {
  Matrix cost = MakeMatrix(2, 2, {-5, 1, 1, -5});
  AssignmentResult r = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(r.total_cost, -10.0);
}

TEST(HungarianTest, TotalCostConsistentWithAssignment) {
  Rng rng(77);
  Matrix cost(8, 10);
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 10; ++j) cost(i, j) = rng.Uniform(0, 9);
  }
  AssignmentResult r = SolveAssignment(cost);
  double recomputed = 0.0;
  for (size_t i = 0; i < 8; ++i) recomputed += cost(i, r.row_to_col[i]);
  EXPECT_DOUBLE_EQ(r.total_cost, recomputed);
}

}  // namespace
}  // namespace qse
