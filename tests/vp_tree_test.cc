#include "src/retrieval/vp_tree.h"

#include <gtest/gtest.h>

#include "src/data/timeseries_generator.h"
#include "src/distance/dtw.h"
#include "src/distance/lp.h"
#include "src/retrieval/exact_knn.h"
#include "tests/test_util.h"

namespace qse {
namespace {

TEST(VpTreeTest, ExactOnMetricData) {
  auto oracle = test::MakePlaneOracle(220, 1);
  std::vector<size_t> db_ids = test::Iota(200);
  VpTree tree(&oracle, db_ids);
  for (size_t query_id = 200; query_id < 220; ++query_id) {
    auto dx = [&](size_t id) { return oracle.Distance(query_id, id); };
    for (size_t k : {1u, 5u}) {
      VpTree::Result result = tree.Search(dx, k);
      auto truth = ExactKnn(oracle, query_id, db_ids, k);
      ASSERT_EQ(result.neighbors.size(), k);
      for (size_t i = 0; i < k; ++i) {
        EXPECT_EQ(result.neighbors[i].index, truth[i].index);
        EXPECT_DOUBLE_EQ(result.neighbors[i].score, truth[i].score);
      }
    }
  }
}

TEST(VpTreeTest, PrunesOnMetricData) {
  auto oracle = test::MakePlaneOracle(520, 2);
  std::vector<size_t> db_ids = test::Iota(500);
  VpTree tree(&oracle, db_ids);
  size_t total = 0;
  for (size_t query_id = 500; query_id < 520; ++query_id) {
    auto dx = [&](size_t id) { return oracle.Distance(query_id, id); };
    total += tree.Search(dx, 1).distance_evaluations;
  }
  // Should evaluate well under the full database per query on 2D data.
  EXPECT_LT(total / 20, 350u);
}

TEST(VpTreeTest, BuildCostIsLoglinear) {
  auto oracle = test::MakePlaneOracle(400, 3);
  VpTree tree(&oracle, test::Iota(400));
  // ~n log2 n = 400 * 8.6 ~ 3460; allow generous slack over levels.
  EXPECT_LT(tree.build_distance_evaluations(), 6000u);
  EXPECT_GT(tree.build_distance_evaluations(), 400u);
}

TEST(VpTreeTest, KClampedToDatabase) {
  auto oracle = test::MakePlaneOracle(12, 4);
  VpTree tree(&oracle, test::Iota(10));
  auto dx = [&](size_t id) { return oracle.Distance(11, id); };
  VpTree::Result r = tree.Search(dx, 50);
  EXPECT_EQ(r.neighbors.size(), 10u);
}

TEST(VpTreeTest, SingleObjectTree) {
  auto oracle = test::MakePlaneOracle(3, 5);
  VpTree tree(&oracle, {0});
  auto dx = [&](size_t id) { return oracle.Distance(2, id); };
  VpTree::Result r = tree.Search(dx, 1);
  ASSERT_EQ(r.neighbors.size(), 1u);
  EXPECT_EQ(r.neighbors[0].index, 0u);
}

TEST(VpTreeTest, LeafSizeVariantsAllExact) {
  auto oracle = test::MakePlaneOracle(130, 6);
  std::vector<size_t> db_ids = test::Iota(120);
  for (size_t leaf : {1u, 4u, 32u}) {
    VpTree tree(&oracle, db_ids, leaf);
    for (size_t query_id = 120; query_id < 130; ++query_id) {
      auto dx = [&](size_t id) { return oracle.Distance(query_id, id); };
      auto truth = ExactKnn(oracle, query_id, db_ids, 3);
      VpTree::Result r = tree.Search(dx, 3);
      for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(r.neighbors[i].index, truth[i].index)
            << "leaf_size " << leaf;
      }
    }
  }
}

TEST(VpTreeTest, NonMetricDistanceLosesRecall) {
  // The paper's core argument (Secs. 1, 10): vp-tree pruning relies on
  // the triangle inequality, so under a non-metric DX the pruned search
  // misses true nearest neighbors for some queries, while it never does
  // under a metric DX (ExactOnMetricData above).  This is why
  // embedding-based methods are needed at all.  Squared Euclidean
  // distance is the cleanest triangle-violating DX; aggregated over a few
  // seeds the recall loss is systematic (probing showed 2-8 misses of 20
  // per seed).
  size_t total_misses = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    std::vector<Vector> pts;
    for (int i = 0; i < 420; ++i) {
      pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    }
    ObjectOracle<Vector> oracle(std::move(pts), SquaredL2Distance);
    std::vector<size_t> db_ids = test::Iota(400);
    VpTree tree(&oracle, db_ids, 8, seed);
    for (size_t query_id = 400; query_id < 420; ++query_id) {
      auto dx = [&](size_t id) { return oracle.Distance(query_id, id); };
      auto truth = ExactKnn(oracle, query_id, db_ids, 1);
      VpTree::Result r = tree.Search(dx, 1);
      if (r.neighbors[0].index != truth[0].index) ++total_misses;
    }
  }
  EXPECT_GT(total_misses, 0u);
}

TEST(VpTreeTest, DeterministicBySeed) {
  auto oracle = test::MakePlaneOracle(60, 8);
  VpTree a(&oracle, test::Iota(50), 8, 99);
  VpTree b(&oracle, test::Iota(50), 8, 99);
  auto dx = [&](size_t id) { return oracle.Distance(55, id); };
  auto ra = a.Search(dx, 3), rb = b.Search(dx, 3);
  EXPECT_EQ(ra.distance_evaluations, rb.distance_evaluations);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ra.neighbors[i].index, rb.neighbors[i].index);
  }
}

}  // namespace
}  // namespace qse
