#ifndef QSE_NET_RETRIEVAL_SERVER_H_
#define QSE_NET_RETRIEVAL_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/net/socket_transport.h"
#include "src/net/wire_codec.h"
#include "src/obs/metric_registry.h"
#include "src/retrieval/retrieval_backend.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace qse {
namespace net {

/// Builds a DxToDatabaseFn from a raw query vector that arrived over the
/// wire — the server-side counterpart of the dx closure that cannot
/// cross a process boundary.  Only needed for WireOp::kRetrieve; kScan
/// (the path the distributed engine uses) ships pre-embedded queries and
/// needs no resolver.
using RawQueryResolver =
    std::function<DxToDatabaseFn(const std::vector<double>& raw_query)>;

struct RetrievalServerOptions {
  TransportOptions transport;
  /// Resolves kRetrieve raw queries; kRetrieve fails with
  /// FailedPrecondition when unset.
  RawQueryResolver raw_query_resolver;
  /// Fault injection for tests and the bench harness: every Nth kScan
  /// (per server, 0 = never) sleeps debug_delay before scanning —
  /// deterministic tail latency that hedged reads must win against.
  size_t debug_delay_every_n = 0;
  std::chrono::milliseconds debug_delay{0};
};

/// Serves any RetrievalBackend over TCP: one acceptor thread plus one
/// thread per connection, blocking reads, one frame in -> one frame out.
/// The thread-per-connection model matches the deployment shape (a few
/// long-lived peer stubs per shard server, each issuing one RPC at a
/// time), and keeps every kernel wait bounded by the transport timeouts.
///
/// Request handling:
///  * kScan     -> backend->ScanCandidates (candidates already carry
///                 database ids).
///  * kRetrieve -> options.raw_query_resolver + backend->Retrieve;
///                 neighbor indices are translated to database ids via
///                 backend->db_id_of before encoding.
///  * kInsert   -> backend->InsertEmbedded (the row was embedded
///                 client-side).
///  * kRemove   -> backend->Remove.
///  * kInfo     -> backend->size().
///
/// Deadlines: a request carrying deadline_budget_ns is re-anchored to
/// arrival time; a budget already spent in flight is rejected with
/// kDeadlineExceeded before the backend does any work.
///
/// Decode errors answer with the error status, then: kInvalidArgument
/// (intact frame, bad content) keeps the connection; kDataLoss (the
/// stream itself is broken) closes it — after corruption, frame
/// boundaries can no longer be trusted.
class RetrievalServer {
 public:
  /// Does not own `backend`, which must outlive the server.
  RetrievalServer(RetrievalBackend* backend, RetrievalServerOptions options);
  ~RetrievalServer();
  RetrievalServer(const RetrievalServer&) = delete;
  RetrievalServer& operator=(const RetrievalServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// acceptor thread.
  Status Start(uint16_t port);

  /// Port actually bound; valid after a successful Start.
  uint16_t port() const { return port_; }

  /// Stops accepting, unblocks every in-flight connection read, joins
  /// all threads.  Idempotent; also runs at destruction.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Socket> conn);
  /// Executes one decoded request against the backend.
  WireResponse Handle(const WireRequest& request);

  RetrievalBackend* backend_;
  RetrievalServerOptions options_;
  ServerSocket listener_;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> scan_count_{0};

  /// Live connections, so Stop can ShutdownBoth each socket and wake
  /// threads blocked in RecvFrame; handler threads themselves are
  /// collected under the same mutex and joined by Stop.
  std::mutex conn_mu_;
  std::unordered_set<std::shared_ptr<Socket>> live_conns_;
  std::vector<std::thread> conn_threads_;

  obs::Counter* requests_total_;
  obs::Counter* errors_total_;
  obs::Counter* expired_total_;
  obs::Histogram* handle_ns_;
};

}  // namespace net
}  // namespace qse

#endif  // QSE_NET_RETRIEVAL_SERVER_H_
