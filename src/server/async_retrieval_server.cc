#include "src/server/async_retrieval_server.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "src/obs/exposition.h"
#include "src/obs/quality_monitor.h"
#include "src/util/logging.h"

namespace qse {

namespace {

AsyncServerOptions Sanitize(AsyncServerOptions o) {
  if (o.max_batch == 0) o.max_batch = 1;
  if (o.num_workers == 0) o.num_workers = 1;
  return o;
}

/// Occupancy slots one quota buys: its share of the capacity, at least
/// one slot so a configured tenant is never locked out entirely.
size_t QuotaSlots(double share, size_t capacity) {
  double slots = std::floor(share * static_cast<double>(capacity));
  if (slots < 1.0) return 1;
  if (slots > static_cast<double>(capacity)) return capacity;
  return static_cast<size_t>(slots);
}

std::vector<size_t> TenantLimits(const AsyncServerOptions& options) {
  std::vector<size_t> limits;
  limits.reserve(options.tenant_quotas.size());
  for (const TenantQuota& q : options.tenant_quotas) {
    limits.push_back(QuotaSlots(q.share, options.queue_capacity));
  }
  return limits;
}

/// Integer boundaries 1..max_batch: every batch size gets its own
/// bucket, so the exported histogram is exact, not interpolated.
std::vector<double> BatchSizeBoundaries(size_t max_batch) {
  std::vector<double> boundaries;
  boundaries.reserve(max_batch);
  for (size_t b = 1; b <= max_batch; ++b) {
    boundaries.push_back(static_cast<double>(b));
  }
  return boundaries;
}

}  // namespace

bool CheckServerStatsInvariant(const ServerStats& stats) {
  if (stats.submitted != stats.admitted + stats.rejected) return false;
  if (stats.admitted !=
      stats.completed + stats.expired + stats.cancelled + stats.shed) {
    return false;
  }
  for (const LaneStats& lane : stats.lanes) {
    if (lane.admitted !=
        lane.completed + lane.expired + lane.cancelled + lane.shed) {
      return false;
    }
  }
  return true;
}

AsyncRetrievalServer::AsyncRetrievalServer(const RetrievalBackend* backend,
                                           AsyncServerOptions options)
    : backend_(backend),
      options_(Sanitize(options)),
      tenant_limits_(TenantLimits(options_)),
      queue_(options_.queue_capacity, tenant_limits_),
      // One pending batch per worker: backlog accumulates in the bounded
      // admission queue (where overflow is observable), not in an elastic
      // dispatch buffer.
      dispatch_(options_.num_workers),
      owned_registry_(options_.registry == nullptr
                          ? std::make_unique<obs::MetricRegistry>()
                          : nullptr),
      registry_(options_.registry != nullptr ? options_.registry
                                             : owned_registry_.get()),
      submitted_(registry_->GetCounter("qse_server_submitted_total")),
      admitted_(registry_->GetCounter("qse_server_admitted_total")),
      rejected_(registry_->GetCounter("qse_server_rejected_total")),
      shed_(registry_->GetCounter("qse_server_shed_total")),
      expired_(registry_->GetCounter("qse_server_expired_total")),
      cancelled_(registry_->GetCounter("qse_server_cancelled_total")),
      completed_(registry_->GetCounter("qse_server_completed_total")),
      unknown_tenant_rejected_(
          registry_->GetCounter("qse_server_unknown_tenant_rejected_total")),
      queue_depth_(registry_->GetGauge("qse_server_queue_depth")),
      batch_size_hist_(registry_->GetHistogram(
          "qse_server_batch_size", BatchSizeBoundaries(options_.max_batch))) {
  for (size_t l = 0; l < kNumPriorityLanes; ++l) {
    const std::string label =
        "{" +
        obs::PromLabel("lane",
                       RequestPriorityName(static_cast<RequestPriority>(l))) +
        "}";
    lane_counters_[l] = LaneCounters{
        registry_->GetCounter("qse_server_lane_submitted_total" + label),
        registry_->GetCounter("qse_server_lane_admitted_total" + label),
        registry_->GetCounter("qse_server_lane_shed_total" + label),
        registry_->GetCounter("qse_server_lane_expired_total" + label),
        registry_->GetCounter("qse_server_lane_cancelled_total" + label),
        registry_->GetCounter("qse_server_lane_completed_total" + label),
        registry_->GetGauge("qse_server_lane_queue_depth" + label)};
  }
  tenant_counters_.reserve(options_.tenant_quotas.size());
  for (size_t slot = 0; slot < options_.tenant_quotas.size(); ++slot) {
    const TenantQuota& q = options_.tenant_quotas[slot];
    bool inserted = tenant_slots_.emplace(q.tenant_id, slot).second;
    QSE_CHECK_MSG(inserted, "duplicate tenant quota: '" << q.tenant_id
                                                        << "'");
    // Tenant ids are caller-supplied: escape them so a quote or newline
    // in an id cannot corrupt the exposition.
    const std::string label = "{" + obs::PromLabel("tenant", q.tenant_id) + "}";
    tenant_counters_.push_back(TenantCounters{
        registry_->GetCounter("qse_server_tenant_submitted_total" + label),
        registry_->GetCounter("qse_server_tenant_admitted_total" + label),
        registry_->GetCounter("qse_server_tenant_rejected_total" + label),
        registry_->GetCounter("qse_server_tenant_shed_total" + label)});
  }
  batcher_ = std::thread(&AsyncRetrievalServer::BatcherLoop, this);
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back(&AsyncRetrievalServer::WorkerLoop, this);
  }
}

AsyncRetrievalServer::AsyncRetrievalServer(RetrievalBackend* backend,
                                           AsyncServerOptions options)
    : AsyncRetrievalServer(static_cast<const RetrievalBackend*>(backend),
                           std::move(options)) {
  mutable_backend_ = backend;
}

AsyncRetrievalServer::~AsyncRetrievalServer() { Shutdown(DrainMode::kDrain); }

Status AsyncRetrievalServer::Insert(size_t db_id, const DxToDatabaseFn& dx) {
  if (mutable_backend_ == nullptr) {
    return Status::FailedPrecondition(
        "server was built over a read-only backend");
  }
  return mutable_backend_->Insert(db_id, dx);
}

Status AsyncRetrievalServer::Remove(size_t db_id) {
  if (mutable_backend_ == nullptr) {
    return Status::FailedPrecondition(
        "server was built over a read-only backend");
  }
  return mutable_backend_->Remove(db_id);
}

Future<StatusOr<RetrievalResponse>> AsyncRetrievalServer::Submit(
    RetrievalRequest request) {
  active_submits_.fetch_add(1, std::memory_order_acq_rel);
  struct ActiveSubmitGuard {
    std::atomic<size_t>* count;
    ~ActiveSubmitGuard() { count->fetch_sub(1, std::memory_order_release); }
  } guard{&active_submits_};
  submitted_->Increment();
  Promise<StatusOr<RetrievalResponse>> promise;
  Future<StatusOr<RetrievalResponse>> future = promise.future();
  Status valid = ValidateRetrievalOptions(request.options);
  if (!valid.ok()) {
    rejected_->Increment();
    promise.Set(std::move(valid));
    return future;
  }
#ifndef QSE_DISABLE_TRACING
  if (options_.trace_every_n > 0 && request.trace == nullptr &&
      trace_tick_.fetch_add(1, std::memory_order_relaxed) %
              options_.trace_every_n ==
          0) {
    request.trace = std::make_shared<obs::RequestTrace>();
  }
#endif
  // Offer the server's quality monitor to the backend; the 1-in-N
  // sampling decision itself happens inside the backend, once per
  // completed response.  A caller-provided monitor wins.
  if (options_.quality_monitor != nullptr &&
      request.options.audit_monitor == nullptr) {
    request.options.audit_monitor = options_.quality_monitor;
  }
  const size_t lane = static_cast<size_t>(request.options.priority);
  size_t tenant_slot = kNoTenantSlot;
  if (!tenant_slots_.empty()) {
    auto it = tenant_slots_.find(request.options.tenant_id);
    if (it == tenant_slots_.end()) {
      rejected_->Increment();
      unknown_tenant_rejected_->Increment();
      promise.Set(Status::InvalidArgument("unknown tenant: '" +
                                          request.options.tenant_id + "'"));
      return future;
    }
    tenant_slot = it->second;
  }
  lane_counters_[lane].submitted->Increment();
  if (tenant_slot != kNoTenantSlot) {
    tenant_counters_[tenant_slot].submitted->Increment();
  }

  Request r{std::move(request), lane, tenant_slot, promise};
  // Stamp the admit span before the push moves `r` into the queue.  The
  // span stays on a rejected request's trace too; nobody reads it — a
  // rejection never returns a response.
  if (r.req.trace != nullptr) {
    r.queue_start_ns = obs::TraceNowNs(r.req.trace.get());
    obs::TraceMark(r.req.trace.get(), "admit", 0);
  }
  // The refusal reason comes from under the queue lock: a full-queue
  // rejection racing Shutdown still reports load shedding (retryable),
  // not shutdown (terminal).
  auto outcome = queue_.TryPush(std::move(r), lane, tenant_slot);
  switch (outcome.result) {
    case AdmitResult::kAdmitted:
    case AdmitResult::kAdmittedEvicting:
      break;
    case AdmitResult::kQueueFull:
      rejected_->Increment();
      promise.Set(Status::ResourceExhausted("admission queue full"));
      return future;
    case AdmitResult::kTenantOverQuota:
      rejected_->Increment();
      tenant_counters_[tenant_slot].rejected->Increment();
      promise.Set(Status::ResourceExhausted(
          "tenant '" + options_.tenant_quotas[tenant_slot].tenant_id +
          "' over admission quota"));
      return future;
    case AdmitResult::kClosed:
      rejected_->Increment();
      promise.Set(Status::FailedPrecondition("server is shut down"));
      return future;
  }
  admitted_->Increment();
  lane_counters_[lane].admitted->Increment();
  if (tenant_slot != kNoTenantSlot) {
    tenant_counters_[tenant_slot].admitted->Increment();
  }
  if (outcome.evicted.has_value()) CompleteShed(&*outcome.evicted);
  return future;
}

StatusOr<RetrievalResponse> AsyncRetrievalServer::Retrieve(
    RetrievalRequest request) {
  return Submit(std::move(request)).Get();
}

void AsyncRetrievalServer::Shutdown(DrainMode mode) {
  if (shutdown_.exchange(true)) return;
  if (mode == DrainMode::kCancel) {
    cancel_.store(true, std::memory_order_relaxed);
  }
  queue_.Close();  // New submits fail; the batcher drains what is queued.
  if (batcher_.joinable()) batcher_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // A Submit racing this shutdown may still hold an unset promise (its
  // own rejection, or a victim its push evicted between TryPush and
  // CompleteShed); wait it out so every future is ready on return.
  while (active_submits_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  // Every future is ready and all threads are joined: the admission
  // accounting must balance exactly now, and a debug build refuses to
  // let a miscounted server exit quietly.
  QSE_DCHECK_MSG(CheckServerStatsInvariant(stats()),
                 "server admission accounting out of balance at shutdown");
}

void AsyncRetrievalServer::CompleteCancelled(Request* r) {
  cancelled_->Increment();
  lane_counters_[r->lane].cancelled->Increment();
  r->promise.Set(Status::FailedPrecondition("server shut down before the "
                                            "request was executed"));
}

void AsyncRetrievalServer::CompleteShed(Request* r) {
  shed_->Increment();
  lane_counters_[r->lane].shed->Increment();
  if (r->tenant_slot != kNoTenantSlot) {
    tenant_counters_[r->tenant_slot].shed->Increment();
  }
  r->promise.Set(Status::ResourceExhausted(
      "shed from the admission queue by a higher-priority arrival"));
}

bool AsyncRetrievalServer::AdmitToBatch(Request r, Batch* batch,
                                        RetrievalClock::time_point now) {
  if (r.req.trace != nullptr) {
    r.dequeue_ns = obs::TraceNowNs(r.req.trace.get());
    obs::TraceMark(r.req.trace.get(), "queue", r.queue_start_ns);
  }
  if (cancel_.load(std::memory_order_relaxed)) {
    CompleteCancelled(&r);
    return false;
  }
  // Deadline check #1, at dequeue: a request that died waiting in the
  // admission queue must not take a batch slot.
  if (now > r.req.options.deadline) {
    expired_->Increment();
    lane_counters_[r.lane].expired->Increment();
    r.promise.Set(
        Status::DeadlineExceeded("deadline expired in the admission queue"));
    return false;
  }
  batch->push_back(std::move(r));
  return true;
}

void AsyncRetrievalServer::BatcherLoop() {
  for (;;) {
    std::optional<Request> first = queue_.Pop();
    if (!first.has_value()) break;  // Closed and fully drained.

    Batch batch;
    // The batching window opens when the batch's first request is
    // dequeued, so the first arrival bounds its own extra latency.
    RetrievalClock::time_point window_end =
        RetrievalClock::now() + options_.max_batch_delay;
    AdmitToBatch(std::move(*first), &batch, RetrievalClock::now());

    // Adaptive growth: keep coalescing while requests are available.
    // With no window this stops the moment the queue is empty (idle =>
    // singleton batches at single-query latency; backlog => full
    // batches); with a window it also waits out the remaining time for
    // stragglers.
    while (!batch.empty() && batch.size() < options_.max_batch) {
      std::optional<Request> next;
      if (options_.max_batch_delay.count() == 0) {
        next = queue_.TryPop();
      } else {
        auto remaining = window_end - RetrievalClock::now();
        if (remaining.count() <= 0) {
          next = queue_.TryPop();
          if (!next.has_value()) break;
        } else {
          next = queue_.PopFor(remaining);
        }
      }
      if (!next.has_value()) break;
      AdmitToBatch(std::move(*next), &batch, RetrievalClock::now());
    }
    if (batch.empty()) continue;  // Everything expired or cancelled.

    batch_size_hist_->Record(
        static_cast<double>(std::min(batch.size(), options_.max_batch)));
    for (Request& r : batch) {
      if (r.req.trace != nullptr) {
        r.dispatch_ns = obs::TraceNowNs(r.req.trace.get());
        obs::TraceMark(r.req.trace.get(), "batch_form", r.dequeue_ns,
                       {obs::TraceArg{"batch_size",
                                      static_cast<int64_t>(batch.size()),
                                      nullptr}});
      }
    }
    if (!dispatch_.Push(std::move(batch))) {
      // Only possible after the dispatch queue is closed, which this
      // thread does below — defensive: never drop promises.
      for (Request& r : batch) CompleteCancelled(&r);
    }
  }
  dispatch_.Close();  // Workers drain remaining batches, then exit.
}

void AsyncRetrievalServer::WorkerLoop() {
  for (;;) {
    std::optional<Batch> batch = dispatch_.Pop();
    if (!batch.has_value()) break;
    ExecuteBatch(std::move(*batch));
  }
}

void AsyncRetrievalServer::ExecuteBatch(Batch batch) {
  // Deadline check #2, before refine: the last gate before the backend
  // spends exact distances.  A request that expired while its batch sat
  // in the dispatch queue is answered late-but-honestly, not served.
  RetrievalClock::time_point now = RetrievalClock::now();
  Batch live;
  live.reserve(batch.size());
  for (Request& r : batch) {
    if (r.req.trace != nullptr) {
      obs::TraceMark(r.req.trace.get(), "dispatch_wait", r.dispatch_ns);
    }
    if (cancel_.load(std::memory_order_relaxed)) {
      CompleteCancelled(&r);
    } else if (now > r.req.options.deadline) {
      expired_->Increment();
      lane_counters_[r.lane].expired->Increment();
      r.promise.Set(Status::DeadlineExceeded(
          "deadline expired before the refine step"));
    } else {
      live.push_back(std::move(r));
    }
  }

  // All requests sharing a result key — adjacent or not — execute as one
  // RetrieveBatch call; results[i] is bit-identical to
  // Retrieve(requests[i]) by the backend contract.  Group count is tiny
  // (bounded by max_batch), so a linear group scan beats hashing.
  // Traced requests get singleton groups: they go through the backend's
  // single-request path, the only one that records per-stage spans —
  // with identical results, again by the backend contract.
  std::vector<std::vector<size_t>> groups;
  for (size_t t = 0; t < live.size(); ++t) {
    std::vector<size_t>* group = nullptr;
    if (live[t].req.trace == nullptr) {
      for (std::vector<size_t>& g : groups) {
        if (live[g[0]].req.trace == nullptr &&
            live[g[0]].req.options.SameResultKey(live[t].req.options)) {
          group = &g;
          break;
        }
      }
    }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
    }
    group->push_back(t);
  }
  for (const std::vector<size_t>& group : groups) {
    if (group.size() == 1 && live[group[0]].req.trace != nullptr) {
      Request& r = live[group[0]];
      obs::RequestTrace* trace = r.req.trace.get();
      uint64_t exec_start = obs::TraceNowNs(trace);
      RetrievalRequest req = std::move(r.req);
      req.options.num_threads = options_.retrieve_threads;
      StatusOr<RetrievalResponse> result = backend_->Retrieve(req);
      completed_->Increment();
      lane_counters_[r.lane].completed->Increment();
      obs::TraceMark(trace, "execute", exec_start);
      // The whole request, Submit to completion: the denominator the
      // span-coverage acceptance gate divides by.
      obs::TraceMark(trace, "request", 0);
      r.promise.Set(std::move(result));
      continue;
    }
    std::vector<DxToDatabaseFn> queries;
    queries.reserve(group.size());
    for (size_t t : group) queries.push_back(std::move(live[t].req.dx));
    // The server's worker policy, not the request, decides execution
    // parallelism; num_threads does not affect results.
    RetrievalOptions exec = live[group[0]].req.options;
    exec.num_threads = options_.retrieve_threads;
    StatusOr<std::vector<RetrievalResponse>> results =
        backend_->RetrieveBatch(queries, exec);
    for (size_t i = 0; i < group.size(); ++i) {
      completed_->Increment();
      lane_counters_[live[group[i]].lane].completed->Increment();
      if (results.ok()) {
        live[group[i]].promise.Set(std::move((*results)[i]));
      } else {
        live[group[i]].promise.Set(results.status());
      }
    }
  }
}

ServerStats AsyncRetrievalServer::stats() const {
  ServerStats s;
  s.submitted = submitted_->Value();
  s.admitted = admitted_->Value();
  s.rejected = rejected_->Value();
  s.shed = shed_->Value();
  s.expired = expired_->Value();
  s.cancelled = cancelled_->Value();
  s.completed = completed_->Value();
  s.queue_depth = queue_.size();
  s.unknown_tenant_rejected = unknown_tenant_rejected_->Value();
  std::array<size_t, kNumPriorityLanes> depths = queue_.lane_sizes();
  for (size_t l = 0; l < kNumPriorityLanes; ++l) {
    const LaneCounters& c = lane_counters_[l];
    s.lanes[l].submitted = c.submitted->Value();
    s.lanes[l].admitted = c.admitted->Value();
    s.lanes[l].shed = c.shed->Value();
    s.lanes[l].expired = c.expired->Value();
    s.lanes[l].cancelled = c.cancelled->Value();
    s.lanes[l].completed = c.completed->Value();
    s.lanes[l].queue_depth = depths[l];
  }
  s.tenants.reserve(tenant_counters_.size());
  for (size_t slot = 0; slot < tenant_counters_.size(); ++slot) {
    const TenantCounters& c = tenant_counters_[slot];
    TenantStats t;
    t.tenant_id = options_.tenant_quotas[slot].tenant_id;
    t.limit = tenant_limits_[slot];
    t.submitted = c.submitted->Value();
    t.admitted = c.admitted->Value();
    t.rejected = c.rejected->Value();
    t.shed = c.shed->Value();
    s.tenants.push_back(std::move(t));
  }
  // The batch-size histogram has one exact bucket per size 1..max_batch.
  obs::HistogramSnapshot batches = batch_size_hist_->Snapshot();
  s.batch_size_histogram.assign(options_.max_batch, 0);
  for (size_t b = 0; b < options_.max_batch && b < batches.bucket_counts.size();
       ++b) {
    s.batch_size_histogram[b] = batches.bucket_counts[b];
  }
  return s;
}

obs::MetricRegistry& AsyncRetrievalServer::metrics() const {
  queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  std::array<size_t, kNumPriorityLanes> depths = queue_.lane_sizes();
  for (size_t l = 0; l < kNumPriorityLanes; ++l) {
    lane_counters_[l].queue_depth->Set(static_cast<int64_t>(depths[l]));
  }
  return *registry_;
}

}  // namespace qse
