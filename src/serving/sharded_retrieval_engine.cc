#include "src/serving/sharded_retrieval_engine.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_set>

#include "src/distance/simd/dispatch.h"
#include "src/obs/quality_monitor.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"
#include "src/util/top_k.h"

namespace qse {
namespace {

/// Nanoseconds elapsed since `start` (histogram-record helper).
double NsSince(MonotonicClock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now() - start)
          .count());
}

/// splitmix64 finalizer: full avalanche, so the sequential ids most
/// callers use spread evenly instead of striping shards modulo S.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t ResolveNumShards(size_t requested) {
  return requested == 0 ? DefaultParallelism() : requested;
}

}  // namespace

size_t HashShardOf(size_t db_id, size_t num_shards) {
  return static_cast<size_t>(Mix64(db_id) % num_shards);
}

ShardedRetrievalEngine::ShardedRetrievalEngine(const Embedder* embedder,
                                               const FilterScorer* scorer,
                                               ShardedEngineOptions options)
    : embedder_(embedder), scorer_(scorer), options_(options) {
  options_.num_shards = ResolveNumShards(options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    Shard shard;
    shard.db = std::make_unique<EmbeddedDatabase>(embedder_->dims());
    if (options_.filter_shadows != 0) {
      shard.db->EnableFilterShadows(options_.filter_shadows);
    }
    shard.engine = std::make_unique<RetrievalEngine>(
        embedder_, scorer_, shard.db.get(), std::vector<size_t>{});
    shards_.push_back(std::move(shard));
  }
}

ShardedRetrievalEngine::ShardedRetrievalEngine(
    const Embedder* embedder, const FilterScorer* scorer,
    const EmbeddedDatabase& db, const std::vector<size_t>& db_ids,
    ShardedEngineOptions options)
    : embedder_(embedder), scorer_(scorer), options_(options) {
  QSE_CHECK_MSG(db.size() == db_ids.size(),
                "db has " << db.size() << " rows but " << db_ids.size()
                          << " ids");
  options_.num_shards = ResolveNumShards(options_.num_shards);
  const size_t num_shards = options_.num_shards;
  const size_t dims = db.empty() ? embedder_->dims() : db.dims();
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    Shard shard;
    shard.db = std::make_unique<EmbeddedDatabase>(dims);
    shard.db->Reserve(db.size() / num_shards + 1);
    shards_.push_back(std::move(shard));
  }
  std::vector<std::vector<size_t>> ids_per_shard(num_shards);
  shard_of_.reserve(db.size());
  for (size_t row = 0; row < db.size(); ++row) {
    size_t id = db_ids[row];
    // kLeastLoaded reads the running shard sizes, so assigning while
    // filling keeps the stream balanced exactly like online Inserts would.
    size_t s = AssignShard(id);
    bool inserted = shard_of_.emplace(id, s).second;
    QSE_CHECK_MSG(inserted, "duplicate database id " << id);
    shards_[s].db->Append(db.row(row));  // Borrowed view: no temporary.
    ids_per_shard[s].push_back(id);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    // Shadows build after the bulk fill: one pass per shard instead of
    // per-Append maintenance during partitioning.
    if (options_.filter_shadows != 0) {
      shards_[s].db->EnableFilterShadows(options_.filter_shadows);
    }
    shards_[s].engine = std::make_unique<RetrievalEngine>(
        embedder_, scorer_, shards_[s].db.get(),
        std::move(ids_per_shard[s]));
  }
  total_size_.store(db.size(), std::memory_order_relaxed);
}

ShardedRetrievalEngine::ShardedRetrievalEngine(
    const Embedder* embedder,
    std::vector<std::shared_ptr<RetrievalBackend>> shard_backends,
    ShardedEngineOptions options)
    : embedder_(embedder),
      scorer_(nullptr),
      options_(options),
      composed_(true) {
  QSE_CHECK_MSG(!shard_backends.empty(),
                "composed sharded engine needs at least one shard backend");
  options_.num_shards = shard_backends.size();
  shards_.reserve(shard_backends.size());
  size_t total = 0;
  for (std::shared_ptr<RetrievalBackend>& backend : shard_backends) {
    QSE_CHECK_MSG(backend != nullptr, "null shard backend");
    total += backend->size();
    Shard shard;
    shard.backend = std::move(backend);
    shards_.push_back(std::move(shard));
  }
  total_size_.store(total, std::memory_order_relaxed);
}

size_t ShardedRetrievalEngine::ShardSize(size_t s) const {
  return shards_[s].backend != nullptr ? shards_[s].backend->size()
                                       : shards_[s].db->size();
}

size_t ShardedRetrievalEngine::AssignShard(size_t db_id) const {
  switch (options_.assignment) {
    case ShardAssignment::kHashId:
      return HashShardOf(db_id, shards_.size());
    case ShardAssignment::kLeastLoaded: {
      size_t best = 0;
      for (size_t s = 1; s < shards_.size(); ++s) {
        if (ShardSize(s) < ShardSize(best)) best = s;
      }
      return best;
    }
  }
  QSE_CHECK_MSG(false, "unknown shard assignment policy");
  return 0;
}

StatusOr<RetrievalResponse> ShardedRetrievalEngine::ScatterGather(
    const DxToDatabaseFn& dx, const RetrievalOptions& options,
    size_t scatter_threads,
    const std::shared_ptr<obs::RequestTrace>& trace_ptr) const {
  obs::RequestTrace* trace = trace_ptr.get();
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  if (size() == 0) {
    return Status::FailedPrecondition("embedded database is empty");
  }
  const size_t k = options.k;
  const size_t p = std::min(options.p, size());

  // Quality audit: decide before the scatter so each shard scan can
  // retain (move out) the snapshot it pinned — the audit must score the
  // exact views this response was served from, not the live shards.
  // Composed shards hold their snapshots in other processes, so audits
  // are disabled for them.
  const bool audit_this = !composed_ && options.audit_monitor != nullptr &&
                          options.audit_monitor->ShouldSample();
  std::vector<std::optional<EmbeddedDatabase::Snapshot>> audit_snaps(
      audit_this ? shards_.size() : 0);

  RetrievalResponse response;
  // Embedding step: once per query, shared by every shard's scan.
  size_t embed_cost = 0;
  uint64_t span_start = obs::TraceNowNs(trace);
  MonotonicClock::time_point stage_start = MonotonicClock::now();
  Vector fq = embedder_->Embed(dx, &embed_cost);
  embed_ns_->Record(NsSince(stage_start));
  obs::TraceMark(trace, "embed", span_start);
  response.embedding_distances = embed_cost;

  // Scatter: each shard's filter step keeps its local top p (the global
  // top p could in the worst case live entirely in one shard).
  const size_t num_shards = shards_.size();
  std::vector<std::vector<ScoredIndex>> per_shard(num_shards);
  std::vector<size_t> rows_scanned(num_shards, 0);
  size_t rows_pruned_all = 0;
  MonotonicClock::time_point scatter_start = MonotonicClock::now();
  Status scatter_status =
      ScatterScan(fq, options, p, scatter_threads, trace, &per_shard,
                  &rows_scanned, &rows_pruned_all,
                  audit_this ? &audit_snaps : nullptr);
  scatter_ns_->Record(NsSince(scatter_start));
  QSE_RETURN_IF_ERROR(scatter_status);

  // The size() pre-check above is a momentary peek: concurrent removals
  // can empty every shard before the snapshots pin.  The pinned views
  // are authoritative — match the monolithic engine's contract.
  size_t total_rows = 0;
  for (size_t rows : rows_scanned) total_rows += rows;
  if (total_rows == 0) {
    return Status::FailedPrecondition("embedded database is empty");
  }

  // Gather: k-way heap merge down to the global top p.
  span_start = obs::TraceNowNs(trace);
  stage_start = MonotonicClock::now();
  std::vector<ScoredIndex> candidates = MergeSortedTopK(per_shard, p);
  merge_ns_->Record(NsSince(stage_start));
  obs::TraceMark(trace, "merge", span_start,
                 {obs::TraceArg{"candidates",
                                static_cast<int64_t>(candidates.size()),
                                nullptr}});

  if (options.want_stats) {
    // Attribute merged candidates to shards from the per-shard lists
    // themselves (ids are disjoint across shards), not from the routing
    // table — the table is mutator state this read path must not touch.
    std::unordered_set<size_t> merged;
    merged.reserve(candidates.size());
    for (const ScoredIndex& c : candidates) merged.insert(c.index);
    response.shard_stats.assign(num_shards, ShardScanStats{});
    for (size_t s = 0; s < num_shards; ++s) {
      response.shard_stats[s].rows = rows_scanned[s];
      for (const ScoredIndex& c : per_shard[s]) {
        if (merged.count(c.index) != 0) {
          ++response.shard_stats[s].candidates;
        }
      }
    }
  }

  // Single global refine: exact distances on the merged p only, exactly
  // like the unsharded engine's refine step.
  span_start = obs::TraceNowNs(trace);
  stage_start = MonotonicClock::now();
  std::vector<ScoredIndex> refined;
  refined.reserve(candidates.size());
  for (const ScoredIndex& c : candidates) {
    refined.push_back({c.index, dx(c.index)});
  }
  std::sort(refined.begin(), refined.end());
  if (refined.size() > k) refined.resize(k);
  refine_ns_->Record(NsSince(stage_start));
  obs::TraceMark(trace, "refine", span_start,
                 {obs::TraceArg{"candidates",
                                static_cast<int64_t>(candidates.size()),
                                nullptr}});
  response.neighbors = std::move(refined);
  response.exact_distances = embed_cost + candidates.size();
  retrievals_total_->Increment();
  exact_distances_total_->Add(response.exact_distances);
  filter_rows_visited_total_->Add(total_rows);
  filter_rows_pruned_total_->Add(rows_pruned_all);

  if (audit_this) {
    obs::AuditTask audit;
    audit.dx = dx;
    audit.k = k;
    audit.served.reserve(response.neighbors.size());
    // Sharded neighbor indices already are database ids.
    for (const ScoredIndex& nb : response.neighbors) {
      audit.served.push_back({nb.index, nb.score});
    }
    audit.snapshots.reserve(audit_snaps.size());
    for (auto& snap : audit_snaps) {
      if (snap.has_value()) audit.snapshots.push_back(std::move(*snap));
    }
    audit.trace = trace_ptr;
    options.audit_monitor->SubmitAudit(std::move(audit));
  }
  return response;
}

Status ShardedRetrievalEngine::ScatterScan(
    const Vector& fq, const RetrievalOptions& options, size_t p,
    size_t scatter_threads, obs::RequestTrace* trace,
    std::vector<std::vector<ScoredIndex>>* per_shard,
    std::vector<size_t>* rows_scanned, size_t* rows_pruned_out,
    std::vector<std::optional<EmbeddedDatabase::Snapshot>>* audit_snaps)
    const {
  const size_t num_shards = shards_.size();
  const uint32_t needed_shadows = ShadowMaskFor(options.filter_precision);
  std::atomic<bool> missing_shadow{false};
  std::atomic<size_t> rows_pruned_all{0};
  // Composed shard scans can fail outright (a remote peer down mid
  // fan-out); collect the first failure and fail the query honestly.
  std::mutex error_mu;
  Status first_error = Status::OK();
  // Grain 2: one item is a whole shard scan; a single shard stays
  // serial.
  ParallelForGrain(
      0, num_shards, 2,
      [&](size_t s) {
        uint64_t shard_span_start = obs::TraceNowNs(trace);
        if (shards_[s].backend != nullptr) {
          StatusOr<ScanCandidatesResult> scan =
              shards_[s].backend->ScanCandidates(fq, options);
          if (!scan.ok()) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (first_error.ok()) first_error = scan.status();
            return;
          }
          (*rows_scanned)[s] = scan->rows;
          rows_pruned_all.fetch_add(scan->rows_pruned,
                                    std::memory_order_relaxed);
          obs::TraceMark(
              trace, "shard_scan", shard_span_start,
              {obs::TraceArg{"shard", static_cast<int64_t>(s), nullptr},
               obs::TraceArg{"rows", static_cast<int64_t>(scan->rows),
                             nullptr},
               obs::TraceArg{"rows_pruned",
                             static_cast<int64_t>(scan->rows_pruned),
                             nullptr},
               obs::TraceArg{"composed", 1, nullptr}});
          (*per_shard)[s] = std::move(scan.value().candidates);
          return;
        }
        // Local shard: scan one pinned epoch snapshot so a concurrent
        // mutation of the shard never tears the scan.
        EmbeddedDatabase::Snapshot snap = shards_[s].db->snapshot();
        const EmbeddedDatabase::View& view = snap.view();
        if ((view.shadows() & needed_shadows) != needed_shadows) {
          missing_shadow.store(true, std::memory_order_relaxed);
          return;
        }
        if (view.empty()) return;
        (*rows_scanned)[s] = view.size();
        FilterScanStats scan_stats;
        std::vector<ScoredIndex> local = scorer_->ScoreTopP(
            fq, view, p, options.filter_precision, &scan_stats);
        rows_pruned_all.fetch_add(scan_stats.rows_pruned,
                                  std::memory_order_relaxed);
        // Translate shard-local rows to database ids through the same
        // snapshot, then re-sort: the shard's (score, row) tie order
        // need not survive the translation, and the k-way merge
        // requires every list in (score, id) order.
        for (ScoredIndex& c : local) c.index = view.id_of(c.index);
        std::sort(local.begin(), local.end());
        (*per_shard)[s] = std::move(local);
        // `view` stays valid: moving a Snapshot moves its pin, not the
        // View it exposes.
        if (audit_snaps != nullptr) (*audit_snaps)[s].emplace(std::move(snap));
        obs::TraceMark(
            trace, "shard_scan", shard_span_start,
            {obs::TraceArg{"shard", static_cast<int64_t>(s), nullptr},
             obs::TraceArg{"rows",
                           static_cast<int64_t>(scan_stats.rows_visited),
                           nullptr},
             obs::TraceArg{"rows_pruned",
                           static_cast<int64_t>(scan_stats.rows_pruned),
                           nullptr},
             obs::TraceArg{"simd", 0,
                           simd::SimdLevelName(simd::ActiveSimdLevel())},
             obs::TraceArg{"precision", 0,
                           FilterPrecisionName(options.filter_precision)}});
      },
      scatter_threads);

  if (missing_shadow.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition(
        std::string("filter precision ") +
        FilterPrecisionName(options.filter_precision) +
        " needs a shadow matrix the shards do not carry; construct the "
        "engine with ShardedEngineOptions::filter_shadows");
  }
  QSE_RETURN_IF_ERROR(first_error);
  *rows_pruned_out = rows_pruned_all.load(std::memory_order_relaxed);
  return Status::OK();
}

StatusOr<ScanCandidatesResult> ShardedRetrievalEngine::ScanCandidates(
    const Vector& embedded_query, const RetrievalOptions& options) const {
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  if (embedded_query.size() != embedder_->dims()) {
    return Status::InvalidArgument(
        "embedded query has " + std::to_string(embedded_query.size()) +
        " dims, engine embeds to " + std::to_string(embedder_->dims()));
  }
  // Composed shard sizes are only tracked through this engine's own
  // mutations, so do not let a stale total clamp the merge; the
  // per-shard lists bound it anyway.
  const size_t total = size();
  const size_t p = composed_ ? options.p : std::min(options.p, total);

  const size_t num_shards = shards_.size();
  std::vector<std::vector<ScoredIndex>> per_shard(num_shards);
  std::vector<size_t> rows_scanned(num_shards, 0);
  size_t rows_pruned_all = 0;
  MonotonicClock::time_point scatter_start = MonotonicClock::now();
  QSE_RETURN_IF_ERROR(ScatterScan(embedded_query, options, p,
                                  options_.scatter_threads, /*trace=*/nullptr,
                                  &per_shard, &rows_scanned, &rows_pruned_all,
                                  /*audit_snaps=*/nullptr));
  scatter_ns_->Record(NsSince(scatter_start));

  ScanCandidatesResult result;
  result.candidates = MergeSortedTopK(per_shard, p);
  for (size_t rows : rows_scanned) result.rows += rows;
  result.rows_pruned = rows_pruned_all;
  filter_rows_visited_total_->Add(result.rows);
  filter_rows_pruned_total_->Add(result.rows_pruned);
  return result;
}

StatusOr<RetrievalResponse> ShardedRetrievalEngine::Retrieve(
    const RetrievalRequest& request) const {
  StatusOr<RetrievalResponse> result =
      ScatterGather(request.dx, request.options, options_.scatter_threads,
                    request.trace);
  if (result.ok()) result.value().trace = request.trace;
  return result;
}

StatusOr<std::vector<RetrievalResponse>> ShardedRetrievalEngine::RetrieveBatch(
    const std::vector<DxToDatabaseFn>& queries,
    const RetrievalOptions& options) const {
  // Validate once up front, matching RetrievalEngine::RetrieveBatch.
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  if (size() == 0) {
    return Status::FailedPrecondition("embedded database is empty");
  }

  std::vector<RetrievalResponse> results(queries.size());
  // Concurrent mutation can still empty the engine mid-batch; collect
  // the first such failure and fail the batch honestly.
  std::mutex error_mu;
  Status first_error = Status::OK();
  // Parallelize across queries and scan each query's shards serially
  // (scatter_threads = 1): one level of parallelism, no nested thread
  // fan-out, and per-query results identical to Retrieve's.
  ParallelForGrain(
      0, queries.size(), 2,
      [&](size_t i) {
        StatusOr<RetrievalResponse> r = ScatterGather(
            queries[i], options, /*scatter_threads=*/1, /*trace=*/{});
        if (!r.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = r.status();
          return;
        }
        results[i] = std::move(r).value();
      },
      options.num_threads);
  QSE_RETURN_IF_ERROR(first_error);
  return results;
}

Status ShardedRetrievalEngine::Insert(size_t db_id, const DxToDatabaseFn& dx) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (shard_of_.count(db_id) != 0) {
    return Status::InvalidArgument("database id already present: " +
                                   std::to_string(db_id));
  }
  size_t s = AssignShard(db_id);
  Status status = shards_[s].backend != nullptr
                      ? shards_[s].backend->Insert(db_id, dx)
                      : shards_[s].engine->Insert(db_id, dx);
  if (!status.ok()) return status;
  shard_of_.emplace(db_id, s);
  total_size_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status ShardedRetrievalEngine::InsertEmbedded(size_t db_id,
                                              const Vector& embedded_row) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  if (shard_of_.count(db_id) != 0) {
    return Status::InvalidArgument("database id already present: " +
                                   std::to_string(db_id));
  }
  size_t s = AssignShard(db_id);
  Status status = shards_[s].backend != nullptr
                      ? shards_[s].backend->InsertEmbedded(db_id, embedded_row)
                      : shards_[s].engine->InsertEmbedded(db_id, embedded_row);
  if (!status.ok()) return status;
  shard_of_.emplace(db_id, s);
  total_size_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status ShardedRetrievalEngine::Remove(size_t db_id) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  auto it = shard_of_.find(db_id);
  if (it == shard_of_.end()) {
    return Status::NotFound("database id not present: " +
                            std::to_string(db_id));
  }
  Shard& shard = shards_[it->second];
  Status status = shard.backend != nullptr ? shard.backend->Remove(db_id)
                                           : shard.engine->Remove(db_id);
  if (!status.ok()) return status;
  shard_of_.erase(it);
  total_size_.fetch_sub(1, std::memory_order_acq_rel);
  return Status::OK();
}

void ShardedRetrievalEngine::RebuildAfterRestore() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  shard_of_.clear();
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    QSE_CHECK_MSG(shards_[s].engine != nullptr,
                  "RebuildAfterRestore needs locally-owned shards");
    shards_[s].engine->RebuildIdIndex();
    std::vector<size_t> ids = shards_[s].db->ids();
    for (size_t id : ids) {
      bool inserted = shard_of_.emplace(id, s).second;
      QSE_CHECK_MSG(inserted, "duplicate database id " << id
                                                       << " across shards");
    }
    total += ids.size();
  }
  total_size_.store(total, std::memory_order_release);
}

std::vector<size_t> ShardedRetrievalEngine::shard_sizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) sizes.push_back(ShardSize(s));
  return sizes;
}

StatusOr<size_t> ShardedRetrievalEngine::ShardOf(size_t db_id) const {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  auto it = shard_of_.find(db_id);
  if (it != shard_of_.end()) return it->second;
  if (options_.assignment == ShardAssignment::kHashId) {
    return AssignShard(db_id);  // Pure function of the id.
  }
  return Status::NotFound("database id not present: " +
                          std::to_string(db_id));
}

}  // namespace qse
