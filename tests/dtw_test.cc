#include "src/distance/dtw.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/data/timeseries_generator.h"
#include "src/util/random.h"

namespace qse {
namespace {

Series S(std::vector<double> v) { return Series::FromValues(std::move(v)); }

TEST(SeriesTest, LayoutAndAccess) {
  Series s(2, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(s.dims(), 2u);
  EXPECT_EQ(s.length(), 3u);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(2, 1), 6.0);
}

TEST(SeriesTest, SubtractMeanCentersEachDimension) {
  Series s(2, {1, 10, 3, 30, 5, 50});
  s.SubtractMean();
  double m0 = (s.at(0, 0) + s.at(1, 0) + s.at(2, 0)) / 3.0;
  double m1 = (s.at(0, 1) + s.at(1, 1) + s.at(2, 1)) / 3.0;
  EXPECT_NEAR(m0, 0.0, 1e-12);
  EXPECT_NEAR(m1, 0.0, 1e-12);
}

TEST(SeriesTest, ResampledPreservesEndpointsAndLength) {
  Series s = S({0, 1, 2, 3, 4});
  Series r = s.Resampled(9);
  EXPECT_EQ(r.length(), 9u);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.at(8, 0), 4.0);
  // Midpoint interpolates linearly.
  EXPECT_NEAR(r.at(4, 0), 2.0, 1e-12);
}

TEST(DtwTest, IdenticalSeriesHaveZeroDistance) {
  Series a = S({1, 2, 3, 2, 1});
  EXPECT_DOUBLE_EQ(ConstrainedDtw(a, a, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(Dtw(a, a), 0.0);
}

TEST(DtwTest, KnownSmallExample) {
  // With a wide band, DTW({0,0,1},{0,1}) aligns 0-0, 0-0, 1-1 => cost 0.
  EXPECT_DOUBLE_EQ(Dtw(S({0, 0, 1}), S({0, 1})), 0.0);
  // DTW({0,3},{0,0}) must pay |3| at the end point.
  EXPECT_DOUBLE_EQ(Dtw(S({0, 3}), S({0, 0})), 3.0);
}

TEST(DtwTest, SymmetricForEqualLengths) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> av(30), bv(30);
    for (size_t i = 0; i < 30; ++i) {
      av[i] = rng.Uniform(-1, 1);
      bv[i] = rng.Uniform(-1, 1);
    }
    Series a = S(av), b = S(bv);
    EXPECT_NEAR(ConstrainedDtw(a, b, 0.1), ConstrainedDtw(b, a, 0.1), 1e-9);
  }
}

TEST(DtwTest, EmptySeriesGivesInfinity) {
  EXPECT_TRUE(std::isinf(Dtw(Series(), S({1, 2}))));
}

TEST(DtwTest, ShiftedSpikeCheaperThanL1) {
  // The classic DTW motivation: a time-shifted pattern matches cheaply.
  Series a = S({0, 0, 5, 0, 0, 0});
  Series b = S({0, 0, 0, 5, 0, 0});
  double dtw = ConstrainedDtw(a, b, 0.34);
  double l1 = 0.0;
  for (size_t i = 0; i < a.length(); ++i) {
    l1 += std::fabs(a.at(i, 0) - b.at(i, 0));
  }
  EXPECT_LT(dtw, l1);
  EXPECT_NEAR(dtw, 0.0, 1e-12);
}

TEST(DtwTest, BandMonotonicity) {
  // Widening the warping window can only lower (or keep) the cost.
  Rng rng(7);
  std::vector<double> av(50), bv(50);
  for (size_t i = 0; i < 50; ++i) {
    av[i] = std::sin(0.3 * static_cast<double>(i));
    bv[i] = std::sin(0.3 * static_cast<double>(i) + 0.7) +
            rng.Gaussian(0, 0.05);
  }
  Series a = S(av), b = S(bv);
  double prev = ConstrainedDtwWindow(a, b, 0);
  for (long w : {1, 2, 4, 8, 16, 32, 50}) {
    double cur = ConstrainedDtwWindow(a, b, w);
    EXPECT_LE(cur, prev + 1e-9) << "window " << w;
    prev = cur;
  }
}

TEST(DtwTest, ZeroWindowDegeneratesTowardsL1) {
  // Window 0 (with the connectivity slack of 1) is close to pointwise
  // alignment for equal lengths; for a series pair with identical shape
  // it still finds cost 0.
  Series a = S({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(ConstrainedDtwWindow(a, a, 0), 0.0);
}

TEST(DtwTest, MultiDimensionalUsesL1GroundCost) {
  Series a(2, {0, 0, 0, 0});
  Series b(2, {1, 2, 1, 2});
  // Both points differ by |1| + |2| = 3; best alignment is diagonal.
  EXPECT_DOUBLE_EQ(Dtw(a, b), 6.0);
}

TEST(DtwTest, VariableLengthsSupported) {
  Series a = S({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  Series b = a.Resampled(7);
  double d = ConstrainedDtw(a, b, 0.3);
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_LE(d, 4.0);  // Same shape, only resampled.
}

TEST(DtwTest, TriangleInequalityViolationExists) {
  // cDTW is non-metric (paper Sec. 10); exhibit a violation: the short
  // middle series b lets both sides absorb the level change cheaply
  // (DTW(a,b) = DTW(b,c) = 2) while DTW(a,c) pays it at every sample.
  Series a = S({0, 0, 0, 0});
  Series b = S({0, 2});
  Series c = S({2, 2, 2, 2});
  double ab = Dtw(a, b), bc = Dtw(b, c), ac = Dtw(a, c);
  EXPECT_GT(ac, ab + bc);
}

TEST(EnvelopeTest, ContainsTheSeries) {
  Rng rng(11);
  std::vector<double> v(40);
  for (double& x : v) x = rng.Uniform(-3, 3);
  Series s = S(v);
  DtwEnvelope env = BuildEnvelope(s, 5);
  ASSERT_EQ(env.length(), s.length());
  for (size_t t = 0; t < s.length(); ++t) {
    EXPECT_LE(env.lower[t], s.at(t, 0));
    EXPECT_GE(env.upper[t], s.at(t, 0));
  }
}

TEST(EnvelopeTest, WiderWindowWidensEnvelope) {
  Series s = S({0, 5, 0, -5, 0, 5, 0});
  DtwEnvelope narrow = BuildEnvelope(s, 0);
  DtwEnvelope wide = BuildEnvelope(s, 3);
  for (size_t t = 0; t < s.length(); ++t) {
    EXPECT_LE(wide.lower[t], narrow.lower[t]);
    EXPECT_GE(wide.upper[t], narrow.upper[t]);
  }
}

TEST(LbKeoghTest, ZeroWhenInsideEnvelope) {
  Series q = S({0, 1, 2, 1, 0});
  DtwEnvelope env = BuildEnvelope(q, 2);
  EXPECT_DOUBLE_EQ(LbKeogh(env, q), 0.0);
}

class LbKeoghLowerBound : public testing::TestWithParam<long> {};

TEST_P(LbKeoghLowerBound, HoldsOnRandomSeries) {
  // The fundamental LB property: LbKeogh(env(q,w), c) <= cDTW_w(q, c).
  const long window = GetParam();
  Rng rng(101 + static_cast<uint64_t>(window));
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> qv(32), cv(32);
    for (size_t i = 0; i < 32; ++i) {
      qv[i] = rng.Uniform(-2, 2);
      cv[i] = rng.Uniform(-2, 2);
    }
    Series q = S(qv), c = S(cv);
    DtwEnvelope env = BuildEnvelope(q, window);
    double lb = LbKeogh(env, c);
    double exact = ConstrainedDtwWindow(q, c, window);
    EXPECT_LE(lb, exact + 1e-9) << "window " << window;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, LbKeoghLowerBound,
                         testing::Values(0L, 1L, 2L, 4L, 8L, 16L));

TEST(LbKeoghTest, MultiDimensionalLowerBound) {
  TimeSeriesGeneratorParams params;
  params.dims = 3;
  params.base_length = 40;
  params.fixed_length = true;
  TimeSeriesGenerator gen(params, 77);
  Series q = gen.MakeVariant(0);
  DtwEnvelope env = BuildEnvelope(q, 4);
  for (size_t i = 1; i < 8; ++i) {
    Series c = gen.MakeVariant(i);
    EXPECT_LE(LbKeogh(env, c), ConstrainedDtwWindow(q, c, 4) + 1e-9);
  }
}

}  // namespace
}  // namespace qse
