// Reduced-precision filter scans end to end: requests carrying
// FilterPrecision::kFilter32 / kFilter8 against databases that carry the
// matching shadow matrices.  The structural invariants under test:
//
//  * Refine is always exact — whatever precision filtered, every
//    reported neighbor score is the true distance dx(query, id).
//  * At p = n the filter step cannot drop anything, so EVERY precision
//    returns results identical to exact64 (reduced precision only
//    perturbs which top-p candidates survive a p < n cut).
//  * kFilter32 is deterministic across engines: the monolithic and
//    sharded engines see identical float32 shadows and bit-identical
//    kernels, so their responses match at any p.  (kFilter8 has
//    per-shard quantization scales, so its cross-engine guarantee is
//    the p = n one above.)
//  * Shadow maintenance is live: inserts after construction keep serving
//    reduced-precision requests correctly on both engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/embedding/fastmap.h"
#include "src/retrieval/filter_refine.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "tests/test_util.h"

namespace qse {
namespace {

constexpr size_t kDb = 60;
constexpr size_t kQueries = 6;

struct PrecisionStack {
  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  RetrievalEngine mono;
  ShardedRetrievalEngine sharded;

  static ShardedEngineOptions ShardOptions() {
    ShardedEngineOptions o;
    o.num_shards = 3;
    o.scatter_threads = 1;
    o.filter_shadows = kShadowFloat32 | kShadowInt8;
    return o;
  }

  PrecisionStack()
      : oracle(test::MakePlaneOracle(kDb + kQueries, 7)),
        db_ids([] {
          std::vector<size_t> ids = test::Iota(kDb);
          return ids;
        }()),
        model([this] {
          FastMapOptions o;
          o.dims = 4;
          return BuildFastMap(oracle, db_ids, o);
        }()),
        db(EmbedDatabase(model, oracle, db_ids)),
        mono([this] {
          db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
          return RetrievalEngine(&model, &scorer, &db, db_ids);
        }()),
        sharded(&model, &scorer, db, db_ids, ShardOptions()) {}

  DxToDatabaseFn QueryDx(size_t query_id) const {
    return [this, query_id](size_t id) {
      return oracle.Distance(query_id, id);
    };
  }
};

void ExpectSameResponses(const RetrievalResponse& a,
                         const RetrievalResponse& b,
                         const std::string& context) {
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size()) << context;
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].index, b.neighbors[i].index)
        << context << " i=" << i;
    EXPECT_EQ(a.neighbors[i].score, b.neighbors[i].score)
        << context << " i=" << i;
  }
}

TEST(ReducedPrecisionTest, NeighborScoresAreExactWhateverThePrecision) {
  PrecisionStack s;
  for (FilterPrecision precision :
       {FilterPrecision::kExact64, FilterPrecision::kFilter32,
        FilterPrecision::kFilter8}) {
    for (size_t q = kDb; q < kDb + kQueries; ++q) {
      RetrievalOptions ro(3, 20);
      ro.filter_precision = precision;
      auto r = s.mono.Retrieve({s.QueryDx(q), ro});
      ASSERT_TRUE(r.ok()) << r.status();
      ASSERT_FALSE(r->neighbors.empty());
      for (const ScoredIndex& n : r->neighbors) {
        size_t id = s.mono.db_id_of(n.index);
        EXPECT_EQ(n.score, s.oracle.Distance(q, id))
            << FilterPrecisionName(precision) << " q=" << q;
      }
    }
  }
}

TEST(ReducedPrecisionTest, FullScanPEqualsNMatchesExactOnBothEngines) {
  PrecisionStack s;
  for (size_t q = kDb; q < kDb + kQueries; ++q) {
    RetrievalOptions exact(3, kDb);
    exact.filter_precision = FilterPrecision::kExact64;
    auto want_mono = s.mono.Retrieve({s.QueryDx(q), exact});
    auto want_sharded = s.sharded.Retrieve({s.QueryDx(q), exact});
    ASSERT_TRUE(want_mono.ok() && want_sharded.ok());
    for (FilterPrecision precision :
         {FilterPrecision::kFilter32, FilterPrecision::kFilter8}) {
      RetrievalOptions ro(3, kDb);
      ro.filter_precision = precision;
      std::string context = std::string(FilterPrecisionName(precision)) +
                            " q=" + std::to_string(q);
      auto mono = s.mono.Retrieve({s.QueryDx(q), ro});
      ASSERT_TRUE(mono.ok()) << mono.status();
      ExpectSameResponses(*mono, *want_mono, "mono " + context);
      auto sharded = s.sharded.Retrieve({s.QueryDx(q), ro});
      ASSERT_TRUE(sharded.ok()) << sharded.status();
      ExpectSameResponses(*sharded, *want_sharded, "sharded " + context);
    }
  }
}

TEST(ReducedPrecisionTest, Filter32AgreesAcrossEnginesAtAnyP) {
  PrecisionStack s;
  for (size_t p : {size_t{5}, size_t{17}, size_t{40}}) {
    for (size_t q = kDb; q < kDb + kQueries; ++q) {
      RetrievalOptions ro(3, p);
      ro.filter_precision = FilterPrecision::kFilter32;
      auto mono = s.mono.Retrieve({s.QueryDx(q), ro});
      auto sharded = s.sharded.Retrieve({s.QueryDx(q), ro});
      ASSERT_TRUE(mono.ok() && sharded.ok());
      // Neighbor indices are already database ids on the sharded engine;
      // translate the mono ones before comparing.
      ASSERT_EQ(mono->neighbors.size(), sharded->neighbors.size());
      for (size_t i = 0; i < mono->neighbors.size(); ++i) {
        EXPECT_EQ(s.mono.db_id_of(mono->neighbors[i].index),
                  sharded->neighbors[i].index)
            << "p=" << p << " q=" << q << " i=" << i;
        EXPECT_EQ(mono->neighbors[i].score, sharded->neighbors[i].score)
            << "p=" << p << " q=" << q << " i=" << i;
      }
    }
  }
}

TEST(ReducedPrecisionTest, InsertsKeepShadowsServingOnBothEngines) {
  PrecisionStack s;
  // Half the database again, inserted online after construction — the
  // shadow matrices must follow every append (including forced
  // re-quantizations) on the mono engine and on whichever shard each
  // insert lands in.
  for (size_t id = kDb; id < kDb + kQueries; ++id) {
    ASSERT_TRUE(s.mono.Insert(id, s.QueryDx(id)).ok());
    ASSERT_TRUE(s.sharded.Insert(id, s.QueryDx(id)).ok());
  }
  const size_t n = kDb + kQueries;
  for (FilterPrecision precision :
       {FilterPrecision::kFilter32, FilterPrecision::kFilter8}) {
    RetrievalOptions ro(1, n);
    ro.filter_precision = precision;
    // Query each inserted object for itself: distance 0 is unbeatable,
    // so the top neighbor must be the fresh row — through the shadows.
    for (size_t id = kDb; id < n; ++id) {
      auto mono = s.mono.Retrieve({s.QueryDx(id), ro});
      ASSERT_TRUE(mono.ok()) << mono.status();
      EXPECT_EQ(s.mono.db_id_of(mono->neighbors[0].index), id)
          << FilterPrecisionName(precision);
      EXPECT_EQ(mono->neighbors[0].score, 0.0);
      auto sharded = s.sharded.Retrieve({s.QueryDx(id), ro});
      ASSERT_TRUE(sharded.ok()) << sharded.status();
      EXPECT_EQ(sharded->neighbors[0].index, id)
          << FilterPrecisionName(precision);
      EXPECT_EQ(sharded->neighbors[0].score, 0.0);
    }
  }
}

TEST(ReducedPrecisionTest, SameResultKeySeparatesPrecisions) {
  RetrievalOptions a(3, 20), b(3, 20);
  EXPECT_TRUE(a.SameResultKey(b));
  b.filter_precision = FilterPrecision::kFilter32;
  EXPECT_FALSE(a.SameResultKey(b));
  a.filter_precision = FilterPrecision::kFilter32;
  EXPECT_TRUE(a.SameResultKey(b));
}

TEST(ReducedPrecisionTest, ShardedConstructionWithoutShadowsRejectsReduced) {
  PrecisionStack s;
  ShardedEngineOptions no_shadows;
  no_shadows.num_shards = 2;
  no_shadows.scatter_threads = 1;
  ShardedRetrievalEngine bare(&s.model, &s.scorer, s.db, s.db_ids,
                              no_shadows);
  RetrievalOptions ro(1, 5);
  ro.filter_precision = FilterPrecision::kFilter8;
  auto r = bare.Retrieve({s.QueryDx(kDb), ro});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("filter_shadows"), std::string::npos)
      << r.status();
}

}  // namespace
}  // namespace qse
