#include "src/distance/weighted_l1.h"

#include <cassert>
#include <cmath>

namespace qse {

// Four-lane accumulation, mirrored exactly by the early-abandon scan in
// filter_scorer.cc — see the lane-discipline note in lp.cc.
double WeightedL1DistanceSpan(const double* a, const double* b,
                              const double* w, size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += w[i] * std::fabs(a[i] - b[i]);
    l1 += w[i + 1] * std::fabs(a[i + 1] - b[i + 1]);
    l2 += w[i + 2] * std::fabs(a[i + 2] - b[i + 2]);
    l3 += w[i + 3] * std::fabs(a[i + 3] - b[i + 3]);
  }
  for (; i < n; ++i) l0 += w[i] * std::fabs(a[i] - b[i]);
  return (l0 + l1) + (l2 + l3);
}

double WeightedL1Distance(const Vector& a, const Vector& b, const Vector& w) {
  assert(a.size() == b.size());
  assert(a.size() == w.size());
  return WeightedL1DistanceSpan(a.data(), b.data(), w.data(), a.size());
}

}  // namespace qse
