#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qse {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double QuantileNearestRank(std::vector<double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (q <= 0.0) return xs.front();
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  if (rank == 0) rank = 1;
  if (rank > xs.size()) rank = xs.size();
  return xs[rank - 1];
}

double Median(std::vector<double> xs) {
  return QuantileNearestRank(std::move(xs), 0.5);
}

double Min(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = Mean(xs);
  s.stddev = StdDev(xs);
  s.min = Min(xs);
  s.max = Max(xs);
  s.median = Median(xs);
  return s;
}

}  // namespace qse
