#ifndef QSE_RETRIEVAL_FILTER_SCORER_H_
#define QSE_RETRIEVAL_FILTER_SCORER_H_

#include <vector>

#include "src/core/qs_embedding.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_precision.h"
#include "src/util/top_k.h"

namespace qse {

/// Counters from one ScoreTopP scan, for trace spans and engine metrics.
struct FilterScanStats {
  /// Rows the scan streamed over (the view's size).
  size_t rows_visited = 0;
  /// Rows that never entered the running top-p: early-abandoned by the
  /// pruning threshold or completed with a worse score.  The complement
  /// (rows_visited - rows_pruned) is how many times the top-p heap
  /// accepted a row.
  size_t rows_pruned = 0;
};

/// Scores an embedded query against every database row; the filter step's
/// ranking function.  Implementations: the query-sensitive D_out for
/// BoostMap models, plain L2 for FastMap, plain L1 for Lipschitz.
///
/// Scorers consume an EmbeddedDatabase::View — an immutable (rows, count)
/// view of one published database version.  The engines pass their
/// epoch-pinned snapshot's view so scans stay consistent under concurrent
/// mutation; quiescent callers (tests, evaluation drivers, benches) can
/// pass an EmbeddedDatabase directly via its implicit View conversion.
class FilterScorer {
 public:
  virtual ~FilterScorer() = default;

  /// Fills scores->at(i) with the filter distance of row i; lower = more
  /// similar.  `scores` is resized by the callee.  Used where the full
  /// ranking is needed (the evaluation protocol's required-p statistics).
  virtual void Score(const Vector& embedded_query,
                     const EmbeddedDatabase::View& db,
                     std::vector<double>* scores) const = 0;

  /// The p best rows, ascending by (score, row) — under kExact64 exactly
  /// SmallestK(Score(...), p), but computed as one blocked streaming pass
  /// over the flat buffer with early-abandon pruning: a row is dropped as
  /// soon as its partial sum exceeds the running p-th-best threshold.
  /// Valid for kernels with non-negative per-dimension terms (all three
  /// here; the query-sensitive scorer verifies its weights and falls back
  /// to a full scan if any are negative).
  ///
  /// Reduced precisions scan the view's shadow matrix instead (the view
  /// must carry it — the engines verify availability and fail the
  /// request cleanly first): the returned scores are the shadow scores,
  /// and the result equals an unpruned shadow scan's top p because the
  /// abandon threshold is widened by the computable quantization error
  /// envelope (filter_precision.h) — a row whose EXACT score is within
  /// the current threshold is never abandoned, so pruning cannot lose
  /// candidates beyond what quantized RANKING itself loses (which the
  /// benches measure as recall@k).  Refine re-scores candidates from the
  /// float64 rows of the same snapshot either way.
  ///
  /// The base implementation is the unpruned exact fallback (full Score
  /// + SmallestK, kExact64 only); subclasses override with the fused
  /// dispatched kernels.
  ///
  /// A non-null `scan_stats` is filled with the scan's row counters
  /// (overwritten, not accumulated); null skips the bookkeeping.
  virtual std::vector<ScoredIndex> ScoreTopP(
      const Vector& embedded_query, const EmbeddedDatabase::View& db,
      size_t p, FilterPrecision precision = FilterPrecision::kExact64,
      FilterScanStats* scan_stats = nullptr) const;
};

/// Weighted-L1 scorer with query-sensitive weights A_i(q) from a model
/// (Eq. 11).  Also serves query-insensitive models (constant weights).
class QuerySensitiveScorer : public FilterScorer {
 public:
  explicit QuerySensitiveScorer(const QuerySensitiveEmbedding* model)
      : model_(model) {}
  void Score(const Vector& embedded_query, const EmbeddedDatabase::View& db,
             std::vector<double>* scores) const override;
  std::vector<ScoredIndex> ScoreTopP(
      const Vector& embedded_query, const EmbeddedDatabase::View& db,
      size_t p, FilterPrecision precision = FilterPrecision::kExact64,
      FilterScanStats* scan_stats = nullptr) const override;

 private:
  /// The scan with A_i(q) already evaluated; both public entry points
  /// funnel here so the weights are computed exactly once per query.
  static void ScoreWithWeights(const Vector& weights,
                               const Vector& embedded_query,
                               const EmbeddedDatabase::View& db,
                               std::vector<double>* scores);

  const QuerySensitiveEmbedding* model_;
};

/// Unweighted L2 scorer (FastMap's native metric); scores are squared
/// Euclidean distances (monotone in L2, sqrt-free).
class L2Scorer : public FilterScorer {
 public:
  void Score(const Vector& embedded_query, const EmbeddedDatabase::View& db,
             std::vector<double>* scores) const override;
  std::vector<ScoredIndex> ScoreTopP(
      const Vector& embedded_query, const EmbeddedDatabase::View& db,
      size_t p, FilterPrecision precision = FilterPrecision::kExact64,
      FilterScanStats* scan_stats = nullptr) const override;
};

/// Unweighted L1 scorer (Lipschitz embeddings).
class L1Scorer : public FilterScorer {
 public:
  void Score(const Vector& embedded_query, const EmbeddedDatabase::View& db,
             std::vector<double>* scores) const override;
  std::vector<ScoredIndex> ScoreTopP(
      const Vector& embedded_query, const EmbeddedDatabase::View& db,
      size_t p, FilterPrecision precision = FilterPrecision::kExact64,
      FilterScanStats* scan_stats = nullptr) const override;
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_FILTER_SCORER_H_
