// Wire codec tests: envelope round-trip fidelity (bit-identical doubles,
// empty and want_stats edge cases) plus fuzz-ish robustness — truncation
// at every byte boundary, oversized length prefixes, version/magic
// mismatch, and seeded random garbage must yield kInvalidArgument or
// kDataLoss, never a crash and never an allocation beyond the frame.
#include "src/net/wire_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/random.h"
#include "src/util/serialize.h"

namespace qse {
namespace net {
namespace {

WireRequest MakeRequest() {
  WireRequest request;
  request.op = WireOp::kScan;
  request.deadline_budget_ns = 1234567890123ull;
  request.want_trace = true;
  request.options.k = 7;
  request.options.p = 99;
  request.options.num_threads = 3;
  request.options.want_stats = true;
  request.options.priority = RequestPriority::kLow;
  request.options.tenant_id = "tenant-42";
  request.options.filter_precision = FilterPrecision::kFilter32;
  request.db_id = 0xDEADBEEFull;
  request.query = {0.1, -2.5, 1e300, -0.0,
                   std::numeric_limits<double>::denorm_min()};
  return request;
}

WireResponse MakeResponse() {
  WireResponse response;
  response.code = StatusCode::kOk;
  response.neighbors = {{41, 0.125}, {7, 0.25}, {1ull << 40, 1e-300}};
  response.exact_distances = 123;
  response.embedding_distances = 17;
  response.shard_stats = {{100, 3}, {50, 0}};
  response.rows = 150;
  response.rows_pruned = 31;
  response.db_size = 150;
  response.spans = {{"server_scan", 100, 2000, 1}, {"filter", 150, 800, 2}};
  return response;
}

TEST(WireCodecTest, RequestRoundTripIsExact) {
  WireRequest want = MakeRequest();
  std::string payload = EncodeRequest(want);
  WireRequest got;
  ASSERT_TRUE(DecodeRequest(payload, &got).ok());
  EXPECT_EQ(got.op, want.op);
  EXPECT_EQ(got.deadline_budget_ns, want.deadline_budget_ns);
  EXPECT_EQ(got.want_trace, want.want_trace);
  EXPECT_EQ(got.options.k, want.options.k);
  EXPECT_EQ(got.options.p, want.options.p);
  EXPECT_EQ(got.options.num_threads, want.options.num_threads);
  EXPECT_EQ(got.options.want_stats, want.options.want_stats);
  EXPECT_EQ(got.options.priority, want.options.priority);
  EXPECT_EQ(got.options.filter_precision, want.options.filter_precision);
  EXPECT_EQ(got.options.tenant_id, want.options.tenant_id);
  EXPECT_EQ(got.db_id, want.db_id);
  ASSERT_EQ(got.query.size(), want.query.size());
  for (size_t i = 0; i < want.query.size(); ++i) {
    // Bit patterns, not values: -0.0 and denormals must survive.
    uint64_t want_bits = 0, got_bits = 0;
    std::memcpy(&want_bits, &want.query[i], 8);
    std::memcpy(&got_bits, &got.query[i], 8);
    EXPECT_EQ(got_bits, want_bits) << "dim " << i;
  }
}

TEST(WireCodecTest, ResponseRoundTripIsExact) {
  WireResponse want = MakeResponse();
  std::string payload = EncodeResponse(want);
  WireResponse got;
  ASSERT_TRUE(DecodeResponse(payload, &got).ok());
  EXPECT_EQ(got.code, want.code);
  EXPECT_EQ(got.message, want.message);
  ASSERT_EQ(got.neighbors.size(), want.neighbors.size());
  for (size_t i = 0; i < want.neighbors.size(); ++i) {
    EXPECT_EQ(got.neighbors[i].index, want.neighbors[i].index);
    uint64_t want_bits = 0, got_bits = 0;
    std::memcpy(&want_bits, &want.neighbors[i].score, 8);
    std::memcpy(&got_bits, &got.neighbors[i].score, 8);
    EXPECT_EQ(got_bits, want_bits) << "neighbor " << i;
  }
  EXPECT_EQ(got.exact_distances, want.exact_distances);
  EXPECT_EQ(got.embedding_distances, want.embedding_distances);
  ASSERT_EQ(got.shard_stats.size(), want.shard_stats.size());
  for (size_t i = 0; i < want.shard_stats.size(); ++i) {
    EXPECT_EQ(got.shard_stats[i].rows, want.shard_stats[i].rows);
    EXPECT_EQ(got.shard_stats[i].candidates, want.shard_stats[i].candidates);
  }
  EXPECT_EQ(got.rows, want.rows);
  EXPECT_EQ(got.rows_pruned, want.rows_pruned);
  EXPECT_EQ(got.db_size, want.db_size);
  ASSERT_EQ(got.spans.size(), want.spans.size());
  for (size_t i = 0; i < want.spans.size(); ++i) {
    EXPECT_EQ(got.spans[i].name, want.spans[i].name);
    EXPECT_EQ(got.spans[i].start_ns, want.spans[i].start_ns);
    EXPECT_EQ(got.spans[i].dur_ns, want.spans[i].dur_ns);
    EXPECT_EQ(got.spans[i].tid, want.spans[i].tid);
  }
}

TEST(WireCodecTest, EmptyEnvelopesRoundTrip) {
  // The OK-empty scan result (empty remote shard) and an error response
  // with no payload both matter for the serving contract.
  WireResponse empty;
  WireResponse got;
  ASSERT_TRUE(DecodeResponse(EncodeResponse(empty), &got).ok());
  EXPECT_EQ(got.code, StatusCode::kOk);
  EXPECT_TRUE(got.neighbors.empty());
  EXPECT_TRUE(got.shard_stats.empty());
  EXPECT_TRUE(got.spans.empty());
  EXPECT_EQ(got.rows, 0u);

  WireResponse error;
  error.code = StatusCode::kFailedPrecondition;
  error.message = "embedded database is empty";
  ASSERT_TRUE(DecodeResponse(EncodeResponse(error), &got).ok());
  EXPECT_EQ(got.code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(got.message, "embedded database is empty");

  WireRequest info;
  info.op = WireOp::kInfo;
  WireRequest got_req;
  ASSERT_TRUE(DecodeRequest(EncodeRequest(info), &got_req).ok());
  EXPECT_EQ(got_req.op, WireOp::kInfo);
  EXPECT_TRUE(got_req.query.empty());
}

TEST(WireCodecTest, EveryStatusCodeSurvivesTheWire) {
  for (uint8_t c = 0; c <= static_cast<uint8_t>(StatusCode::kDataLoss); ++c) {
    WireResponse response;
    response.code = static_cast<StatusCode>(c);
    response.message = "m";
    WireResponse got;
    ASSERT_TRUE(DecodeResponse(EncodeResponse(response), &got).ok());
    EXPECT_EQ(got.code, response.code);
  }
}

TEST(WireCodecTest, TruncationAtEveryBoundaryIsAnError) {
  const std::string request = EncodeRequest(MakeRequest());
  for (size_t len = 0; len < request.size(); ++len) {
    WireRequest out;
    Status status = DecodeRequest(request.substr(0, len), &out);
    ASSERT_FALSE(status.ok()) << "prefix length " << len;
    EXPECT_TRUE(status.code() == StatusCode::kDataLoss ||
                status.code() == StatusCode::kInvalidArgument)
        << "prefix length " << len << ": " << status.message();
  }
  const std::string response = EncodeResponse(MakeResponse());
  for (size_t len = 0; len < response.size(); ++len) {
    WireResponse out;
    Status status = DecodeResponse(response.substr(0, len), &out);
    ASSERT_FALSE(status.ok()) << "prefix length " << len;
    EXPECT_TRUE(status.code() == StatusCode::kDataLoss ||
                status.code() == StatusCode::kInvalidArgument)
        << "prefix length " << len << ": " << status.message();
  }
}

TEST(WireCodecTest, TrailingBytesAreDataLoss) {
  std::string payload = EncodeRequest(MakeRequest()) + "x";
  WireRequest out;
  EXPECT_EQ(DecodeRequest(payload, &out).code(), StatusCode::kDataLoss);
  std::string response = EncodeResponse(MakeResponse()) + std::string(3, '\0');
  WireResponse rout;
  EXPECT_EQ(DecodeResponse(response, &rout).code(), StatusCode::kDataLoss);
}

TEST(WireCodecTest, BadMagicAndVersionAreInvalidArgument) {
  std::string payload = EncodeRequest(MakeRequest());
  std::string bad_magic = payload;
  bad_magic[0] ^= 0xFF;
  WireRequest out;
  EXPECT_EQ(DecodeRequest(bad_magic, &out).code(),
            StatusCode::kInvalidArgument);

  std::string bad_version = payload;
  bad_version[4] = 99;  // u16 version follows the u32 magic
  EXPECT_EQ(DecodeRequest(bad_version, &out).code(),
            StatusCode::kInvalidArgument);

  std::string bad_op = payload;
  bad_op[6] = 77;  // u16 tag follows the version
  EXPECT_EQ(DecodeRequest(bad_op, &out).code(), StatusCode::kInvalidArgument);

  // A response frame handed to the request decoder (and vice versa).
  WireResponse rout;
  EXPECT_EQ(DecodeResponse(payload, &rout).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeRequest(EncodeResponse(MakeResponse()), &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, OutOfRangeEnumsAreInvalidArgument) {
  // Patch encoded enum bytes past their ranges; offsets derived by
  // re-encoding with a sentinel is brittle, so rebuild by hand instead:
  // preamble(8) + budget(8) + want_trace(1) + k/p/threads(24) = 41, then
  // want_stats, priority, precision.
  std::string payload = EncodeRequest(MakeRequest());
  WireRequest out;
  std::string bad = payload;
  bad[41] = 2;  // want_stats flag
  EXPECT_EQ(DecodeRequest(bad, &out).code(), StatusCode::kInvalidArgument);
  bad = payload;
  bad[42] = static_cast<char>(kNumPriorityLanes);
  EXPECT_EQ(DecodeRequest(bad, &out).code(), StatusCode::kInvalidArgument);
  bad = payload;
  bad[43] = static_cast<char>(kNumFilterPrecisions);
  EXPECT_EQ(DecodeRequest(bad, &out).code(), StatusCode::kInvalidArgument);

  std::string response = EncodeResponse(MakeResponse());
  WireResponse rout;
  response[8] = 121;  // status code byte right after the preamble
  EXPECT_EQ(DecodeResponse(response, &rout).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, OversizedLengthPrefixesNeverAllocate) {
  // A frame whose vector claims 2^60 doubles: the decoder must refuse
  // from the length prefix alone.  If it tried to allocate first, this
  // test would OOM rather than fail an expectation.
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU32(kWireMagic);
  w.WriteU16(kWireVersion);
  w.WriteU16(static_cast<uint16_t>(WireOp::kScan));
  w.WriteU64(0);  // budget
  w.WriteU8(0);   // want_trace
  w.WriteU64(1);  // k
  w.WriteU64(1);  // p
  w.WriteU64(0);  // num_threads
  w.WriteU8(0);   // want_stats
  w.WriteU8(0);   // priority
  w.WriteU8(0);   // precision
  w.WriteString("");
  w.WriteU64(0);            // db_id
  w.WriteU64(1ull << 60);   // query length prefix, then nothing
  WireRequest req;
  EXPECT_EQ(DecodeRequest(out.str(), &req).code(), StatusCode::kDataLoss);

  // Same for the response's neighbor count.
  std::ostringstream resp;
  BinaryWriter rw(&resp);
  rw.WriteU32(kWireMagic);
  rw.WriteU16(kWireVersion);
  rw.WriteU16(kResponseTag);
  rw.WriteU8(0);  // kOk
  rw.WriteString("");
  for (int i = 0; i < 5; ++i) rw.WriteU64(0);  // counters
  rw.WriteU64(1ull << 59);                     // neighbor count
  WireResponse wr;
  EXPECT_EQ(DecodeResponse(resp.str(), &wr).code(), StatusCode::kDataLoss);
}

TEST(WireCodecTest, FieldCapsAreEnforcedEvenWhenBytesMatch) {
  // A dimension count over kMaxWireDims whose byte length is honest is
  // still refused: plausibility caps bound decoded allocations by
  // policy, not only by frame size.
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU32(kWireMagic);
  w.WriteU16(kWireVersion);
  w.WriteU16(static_cast<uint16_t>(WireOp::kScan));
  w.WriteU64(0);
  w.WriteU8(0);
  w.WriteU64(1);
  w.WriteU64(1);
  w.WriteU64(0);
  w.WriteU8(0);
  w.WriteU8(0);
  w.WriteU8(0);
  std::string big_tenant(kMaxWireTenantId + 1, 't');
  w.WriteString(big_tenant);
  w.WriteU64(0);
  w.WriteDoubleVec({});
  WireRequest req;
  EXPECT_EQ(DecodeRequest(out.str(), &req).code(), StatusCode::kDataLoss);
}

TEST(WireCodecTest, RandomGarbageNeverCrashes) {
  Rng rng(20260808);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 256));
    std::string garbage(len, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    WireRequest req;
    WireResponse resp;
    Status rs = DecodeRequest(garbage, &req);
    Status ps = DecodeResponse(garbage, &resp);
    // Random bytes essentially never form a valid frame (the magic
    // alone is a 2^-32 accident); both failure codes are acceptable.
    if (!rs.ok()) {
      EXPECT_TRUE(rs.code() == StatusCode::kDataLoss ||
                  rs.code() == StatusCode::kInvalidArgument);
    }
    if (!ps.ok()) {
      EXPECT_TRUE(ps.code() == StatusCode::kDataLoss ||
                  ps.code() == StatusCode::kInvalidArgument);
    }
  }
}

TEST(WireCodecTest, MutatedValidFramesNeverCrash) {
  // Flip bytes in valid frames — the adversarial neighborhood of real
  // traffic, where decoders that trust any internal length die.
  Rng rng(77);
  const std::string request = EncodeRequest(MakeRequest());
  const std::string response = EncodeResponse(MakeResponse());
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = (iter % 2 == 0) ? request : response;
    const int flips = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int f = 0; f < flips; ++f) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    WireRequest req;
    WireResponse resp;
    // Decode both ways; outcomes may be OK (the flip hit a don't-care
    // byte) or either error code — anything but a crash or hang.
    (void)DecodeRequest(mutated, &req);
    (void)DecodeResponse(mutated, &resp);
  }
}

TEST(ByteReaderTest, ScalarsAndBounds) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU8(0xAB);
  w.WriteU16(0xCDEF);
  w.WriteU32(0x12345678);
  w.WriteU64(1ull << 50);
  const std::string buf = out.str();
  ByteReader r(buf);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  EXPECT_EQ(r.remaining(), buf.size());
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xCDEF);
  EXPECT_EQ(u32, 0x12345678u);
  EXPECT_EQ(u64, 1ull << 50);
  EXPECT_TRUE(r.exhausted());
  // One more read past the end: kDataLoss, not UB.
  EXPECT_EQ(r.ReadU8(&u8).code(), StatusCode::kDataLoss);
}

TEST(ByteReaderTest, LengthPrefixValidatedBeforeResize) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU64(1ull << 61);  // claims more doubles than bytes exist
  const std::string buf = out.str();
  ByteReader r(buf);
  std::vector<double> v;
  EXPECT_EQ(r.ReadDoubleVec(&v).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(v.empty());
}

TEST(ByteReaderTest, MaxElemsCapApplies) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteString("abcdefgh");
  const std::string buf = out.str();
  ByteReader ok_reader(buf);
  std::string s;
  EXPECT_TRUE(ok_reader.ReadString(&s, 8).ok());
  EXPECT_EQ(s, "abcdefgh");
  ByteReader capped_reader(buf);
  EXPECT_EQ(capped_reader.ReadString(&s, 7).code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace net
}  // namespace qse
