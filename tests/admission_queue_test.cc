// Tests of the multi-lane admission queue: strict-priority pops, FIFO
// within a lane, shed-lowest-first eviction under overflow, per-tenant
// occupancy limits, and BoundedQueue-style drainable close semantics.
#include "src/server/admission_queue.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace qse {
namespace {

using namespace std::chrono_literals;

constexpr size_t kHigh = 0;
constexpr size_t kNormal = 1;
constexpr size_t kLow = 2;

TEST(AdmissionQueueTest, PopsStrictPriorityThenFifoWithinLane) {
  PriorityAdmissionQueue<int> q(8);
  EXPECT_EQ(q.TryPush(20, kLow).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.TryPush(10, kNormal).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.TryPush(0, kHigh).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.TryPush(1, kHigh).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.TryPush(21, kLow).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.size(), 5u);
  std::vector<int> order;
  while (auto v = q.TryPop()) order.push_back(*v);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 20, 21}));
}

TEST(AdmissionQueueTest, OverflowEvictsYoungestOfLowestLane) {
  PriorityAdmissionQueue<int> q(3);
  ASSERT_EQ(q.TryPush(20, kLow).result, AdmitResult::kAdmitted);
  ASSERT_EQ(q.TryPush(21, kLow).result, AdmitResult::kAdmitted);
  ASSERT_EQ(q.TryPush(10, kNormal).result, AdmitResult::kAdmitted);

  // A high push evicts the youngest low (21), not the normal.
  auto outcome = q.TryPush(0, kHigh);
  EXPECT_EQ(outcome.result, AdmitResult::kAdmittedEvicting);
  ASSERT_TRUE(outcome.evicted.has_value());
  EXPECT_EQ(*outcome.evicted, 21);
  EXPECT_EQ(outcome.evicted_lane, kLow);

  // Another high evicts the remaining low; a third evicts the normal; a
  // fourth finds nothing below kHigh and is refused.
  EXPECT_EQ(*q.TryPush(1, kHigh).evicted, 20);
  EXPECT_EQ(*q.TryPush(2, kHigh).evicted, 10);
  EXPECT_EQ(q.TryPush(3, kHigh).result, AdmitResult::kQueueFull);

  // A full queue refuses same-priority and lower-priority pushes too.
  EXPECT_EQ(q.TryPush(30, kLow).result, AdmitResult::kQueueFull);
  std::vector<int> order;
  while (auto v = q.TryPop()) order.push_back(*v);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(AdmissionQueueTest, NormalEvictsOnlyLow) {
  PriorityAdmissionQueue<int> q(2);
  ASSERT_EQ(q.TryPush(0, kHigh).result, AdmitResult::kAdmitted);
  ASSERT_EQ(q.TryPush(20, kLow).result, AdmitResult::kAdmitted);
  auto outcome = q.TryPush(10, kNormal);
  EXPECT_EQ(outcome.result, AdmitResult::kAdmittedEvicting);
  EXPECT_EQ(*outcome.evicted, 20);
  // Now [high, normal]: an incoming normal has nothing strictly below.
  EXPECT_EQ(q.TryPush(11, kNormal).result, AdmitResult::kQueueFull);
}

TEST(AdmissionQueueTest, TenantLimitsCapOccupancyNotThroughput) {
  PriorityAdmissionQueue<int> q(8, {2, 8});
  EXPECT_EQ(q.TryPush(1, kNormal, 0).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.TryPush(2, kNormal, 0).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.TryPush(3, kNormal, 0).result, AdmitResult::kTenantOverQuota);
  // Another tenant, and untracked traffic, still admit.
  EXPECT_EQ(q.TryPush(4, kNormal, 1).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.TryPush(5, kNormal).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.tenant_counts(), (std::vector<size_t>{2, 1}));

  // Popping tenant 0's work frees its slots: occupancy, not lifetime.
  EXPECT_EQ(*q.TryPop(), 1);
  EXPECT_EQ(q.TryPush(6, kNormal, 0).result, AdmitResult::kAdmitted);
  EXPECT_EQ(q.tenant_counts(), (std::vector<size_t>{2, 1}));
}

TEST(AdmissionQueueTest, EvictionReleasesVictimTenantSlot) {
  PriorityAdmissionQueue<int> q(2, {2});
  ASSERT_EQ(q.TryPush(20, kLow, 0).result, AdmitResult::kAdmitted);
  ASSERT_EQ(q.TryPush(21, kLow, 0).result, AdmitResult::kAdmitted);
  auto outcome = q.TryPush(0, kHigh);
  ASSERT_EQ(outcome.result, AdmitResult::kAdmittedEvicting);
  EXPECT_EQ(*outcome.evicted, 21);
  // The shed low freed one of tenant 0's two slots... but the queue is
  // still full, so the next low push is refused for capacity (nothing
  // below kLow to evict), not for quota.
  EXPECT_EQ(q.TryPush(22, kLow, 0).result, AdmitResult::kQueueFull);
  EXPECT_EQ(q.tenant_counts(), (std::vector<size_t>{1}));
  EXPECT_EQ(*q.TryPop(), 0);
  EXPECT_EQ(q.TryPush(22, kLow, 0).result, AdmitResult::kAdmitted);
}

TEST(AdmissionQueueTest, CloseDrainsThenRefuses) {
  PriorityAdmissionQueue<int> q(4);
  ASSERT_EQ(q.TryPush(1, kNormal).result, AdmitResult::kAdmitted);
  ASSERT_EQ(q.TryPush(2, kLow).result, AdmitResult::kAdmitted);
  q.Close();
  EXPECT_EQ(q.TryPush(3, kHigh).result, AdmitResult::kClosed);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // Closed and drained: no block.
}

TEST(AdmissionQueueTest, PopBlocksUntilPushAcrossThreads) {
  PriorityAdmissionQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    q.TryPush(7, kLow);
  });
  auto v = q.Pop();  // Blocks until the producer delivers.
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(AdmissionQueueTest, PopForTimesOutEmptyAndLaneSizesTrack) {
  PriorityAdmissionQueue<int> q(4);
  EXPECT_FALSE(q.PopFor(5ms).has_value());
  q.TryPush(1, kHigh);
  q.TryPush(2, kLow);
  auto sizes = q.lane_sizes();
  EXPECT_EQ(sizes[kHigh], 1u);
  EXPECT_EQ(sizes[kNormal], 0u);
  EXPECT_EQ(sizes[kLow], 1u);
  EXPECT_EQ(*q.PopFor(5ms), 1);
}

}  // namespace
}  // namespace qse
