#include "src/data/digit_generator.h"

#include <cassert>
#include <cmath>

namespace qse {

namespace {

/// A polyline stroke in the unit box.
using Stroke = std::vector<Point2>;

/// Appends a circular arc as a polyline (angles in radians, CCW).
void AppendArc(Stroke* s, Point2 centre, double rx, double ry,
               double theta_start, double theta_end, size_t segments = 24) {
  for (size_t k = 0; k <= segments; ++k) {
    double t = theta_start + (theta_end - theta_start) *
                                 static_cast<double>(k) /
                                 static_cast<double>(segments);
    s->push_back({centre.x + rx * std::cos(t), centre.y + ry * std::sin(t)});
  }
}

/// Hand-designed stroke templates for digits 0-9 in the unit box
/// (x right, y up).  Deliberately simple — intra-class variation comes
/// from the random distortions, as in handwriting.
std::vector<Stroke> DigitStrokes(int digit) {
  std::vector<Stroke> strokes;
  switch (digit) {
    case 0: {
      Stroke s;
      AppendArc(&s, {0.5, 0.5}, 0.28, 0.42, 0.0, 2.0 * M_PI, 40);
      strokes.push_back(std::move(s));
      break;
    }
    case 1: {
      strokes.push_back({{0.35, 0.78}, {0.52, 0.95}});
      strokes.push_back({{0.52, 0.95}, {0.52, 0.05}});
      break;
    }
    case 2: {
      Stroke top;
      AppendArc(&top, {0.5, 0.7}, 0.25, 0.24, M_PI * 0.95, -M_PI * 0.15, 20);
      strokes.push_back(std::move(top));
      strokes.push_back({{0.71, 0.62}, {0.26, 0.08}});
      strokes.push_back({{0.26, 0.08}, {0.76, 0.08}});
      break;
    }
    case 3: {
      Stroke upper, lower;
      AppendArc(&upper, {0.45, 0.72}, 0.24, 0.22, M_PI * 0.8, -M_PI * 0.5, 20);
      AppendArc(&lower, {0.45, 0.3}, 0.27, 0.24, M_PI * 0.5, -M_PI * 0.8, 20);
      strokes.push_back(std::move(upper));
      strokes.push_back(std::move(lower));
      break;
    }
    case 4: {
      strokes.push_back({{0.62, 0.95}, {0.2, 0.42}});
      strokes.push_back({{0.2, 0.42}, {0.8, 0.42}});
      strokes.push_back({{0.64, 0.68}, {0.64, 0.05}});
      break;
    }
    case 5: {
      strokes.push_back({{0.72, 0.92}, {0.3, 0.92}});
      strokes.push_back({{0.3, 0.92}, {0.29, 0.56}});
      Stroke belly;
      AppendArc(&belly, {0.46, 0.33}, 0.26, 0.25, M_PI * 0.55, -M_PI * 0.7,
                24);
      strokes.push_back(std::move(belly));
      break;
    }
    case 6: {
      Stroke sweep;
      AppendArc(&sweep, {0.52, 0.52}, 0.3, 0.42, M_PI * 0.45, M_PI * 1.05,
                20);
      strokes.push_back(std::move(sweep));
      Stroke loop;
      AppendArc(&loop, {0.47, 0.27}, 0.22, 0.2, 0.0, 2.0 * M_PI, 28);
      strokes.push_back(std::move(loop));
      break;
    }
    case 7: {
      strokes.push_back({{0.24, 0.92}, {0.76, 0.92}});
      strokes.push_back({{0.76, 0.92}, {0.4, 0.05}});
      break;
    }
    case 8: {
      Stroke upper, lower;
      AppendArc(&upper, {0.5, 0.7}, 0.2, 0.19, 0.0, 2.0 * M_PI, 28);
      AppendArc(&lower, {0.5, 0.29}, 0.24, 0.23, 0.0, 2.0 * M_PI, 28);
      strokes.push_back(std::move(upper));
      strokes.push_back(std::move(lower));
      break;
    }
    case 9: {
      Stroke loop;
      AppendArc(&loop, {0.5, 0.68}, 0.22, 0.21, 0.0, 2.0 * M_PI, 28);
      strokes.push_back(std::move(loop));
      strokes.push_back({{0.72, 0.62}, {0.6, 0.05}});
      break;
    }
    default:
      assert(false && "digit must be in [0, 9]");
  }
  return strokes;
}

double StrokeLength(const Stroke& s) {
  double len = 0.0;
  for (size_t i = 1; i < s.size(); ++i) {
    len += PointDistance(s[i - 1], s[i]);
  }
  return len;
}

/// Point at arc-length position `target` along the polyline.
Point2 PointAtLength(const Stroke& s, double target) {
  double walked = 0.0;
  for (size_t i = 1; i < s.size(); ++i) {
    double seg = PointDistance(s[i - 1], s[i]);
    if (walked + seg >= target && seg > 0.0) {
      double f = (target - walked) / seg;
      return {(1 - f) * s[i - 1].x + f * s[i].x,
              (1 - f) * s[i - 1].y + f * s[i].y};
    }
    walked += seg;
  }
  return s.back();
}

}  // namespace

PointSet DigitGenerator::Template(int digit, size_t points) {
  assert(digit >= 0 && digit <= 9);
  assert(points >= 2);
  std::vector<Stroke> strokes = DigitStrokes(digit);
  std::vector<double> lengths(strokes.size());
  double total = 0.0;
  for (size_t i = 0; i < strokes.size(); ++i) {
    lengths[i] = StrokeLength(strokes[i]);
    total += lengths[i];
  }
  PointSet out;
  out.points.reserve(points);
  // Distribute sample points across strokes proportionally to length, by
  // walking the concatenated arc length.
  for (size_t k = 0; k < points; ++k) {
    double target = total * (static_cast<double>(k) + 0.5) /
                    static_cast<double>(points);
    size_t idx = 0;
    while (idx + 1 < strokes.size() && target > lengths[idx]) {
      target -= lengths[idx];
      ++idx;
    }
    out.points.push_back(PointAtLength(strokes[idx], target));
  }
  return out;
}

DigitGenerator::DigitGenerator(const DigitGeneratorParams& params,
                               uint64_t seed)
    : params_(params), rng_(seed) {}

LabeledPointSet DigitGenerator::SampleDigit(int digit) {
  LabeledPointSet sample;
  sample.label = digit;
  sample.shape = Template(digit, params_.points_per_digit);

  // Random similarity + shear ("writer slant") around the box centre.
  double theta = rng_.Gaussian(0.0, params_.rotation_stddev_deg * M_PI / 180);
  double shear = rng_.Gaussian(0.0, params_.shear_stddev);
  double sx = 1.0 + rng_.Gaussian(0.0, params_.scale_stddev);
  double sy = 1.0 + rng_.Gaussian(0.0, params_.scale_stddev);
  double ct = std::cos(theta), st = std::sin(theta);

  // Smooth low-frequency warp parameters (stroke curvature variation).
  double ax = rng_.Gaussian(0.0, params_.warp_amplitude);
  double ay = rng_.Gaussian(0.0, params_.warp_amplitude);
  double fx = rng_.Uniform(1.5, 3.5), fy = rng_.Uniform(1.5, 3.5);
  double px = rng_.Uniform(0.0, 2.0 * M_PI), py = rng_.Uniform(0.0, 2.0 * M_PI);

  for (Point2& p : sample.shape.points) {
    double x = p.x - 0.5, y = p.y - 0.5;
    // Shear, anisotropic scale, rotation.
    x += shear * y;
    x *= sx;
    y *= sy;
    double rx = ct * x - st * y;
    double ry = st * x + ct * y;
    // Smooth warp.
    rx += ax * std::sin(fx * ry * 2.0 * M_PI + px);
    ry += ay * std::sin(fy * rx * 2.0 * M_PI + py);
    // Jitter.
    rx += rng_.Gaussian(0.0, params_.jitter_stddev);
    ry += rng_.Gaussian(0.0, params_.jitter_stddev);
    p = {rx + 0.5, ry + 0.5};
  }
  return sample;
}

LabeledPointSet DigitGenerator::Sample() {
  return SampleDigit(static_cast<int>(rng_.Index(10)));
}

std::vector<LabeledPointSet> DigitGenerator::Generate(size_t count) {
  std::vector<LabeledPointSet> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(SampleDigit(static_cast<int>(i % 10)));
  }
  // Shuffle so the database has no class periodicity.
  rng_.Shuffle(&out);
  return out;
}

std::vector<std::string> RenderAscii(const PointSet& ps, size_t width,
                                     size_t height) {
  std::vector<std::string> rows(height, std::string(width, '.'));
  if (ps.empty()) return rows;
  double min_x = ps.points[0].x, max_x = min_x;
  double min_y = ps.points[0].y, max_y = min_y;
  for (const Point2& p : ps.points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  double span_x = max_x - min_x > 1e-12 ? max_x - min_x : 1.0;
  double span_y = max_y - min_y > 1e-12 ? max_y - min_y : 1.0;
  for (const Point2& p : ps.points) {
    size_t cx = static_cast<size_t>((p.x - min_x) / span_x *
                                    static_cast<double>(width - 1));
    // Flip y: row 0 is the top of the glyph.
    size_t cy = static_cast<size_t>((max_y - p.y) / span_y *
                                    static_cast<double>(height - 1));
    rows[cy][cx] = '#';
  }
  return rows;
}

}  // namespace qse
