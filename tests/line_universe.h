#ifndef QSE_TESTS_LINE_UNIVERSE_H_
#define QSE_TESTS_LINE_UNIVERSE_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "src/embedding/embedder.h"

namespace qse {
namespace test {

/// The deterministic line universe shared by the concurrent-mutation,
/// durability and crash-recovery suites: object `id` sits at the
/// deterministic coordinate XOf(id) in [0, 1), the exact distance is
/// |x_q - XOf(id)|, and LineEmbedder embeds every object as its own
/// coordinate (read out of the dx callback through the reserved kProbe
/// pseudo-id).  The L2 filter score is monotone in the exact distance,
/// so with p >= n every retrieval is the EXACT top-k of the snapshot it
/// served — which is what makes randomized concurrent histories and
/// crash-recovered databases checkable against closed-form answers.

/// Reserved pseudo-id through which LineEmbedder reads the query's own
/// coordinate from its dx callback; never a database id.
inline constexpr size_t kProbe = std::numeric_limits<size_t>::max();

inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Coordinate of object `id`: deterministic, effectively collision-free.
inline double XOf(size_t id) {
  return static_cast<double>(Mix64(id + 1) >> 11) * 0x1p-53;
}

inline double Dist(double xq, size_t id) { return std::abs(xq - XOf(id)); }

/// dx callback of an object (or query) at coordinate `x`.
inline DxToDatabaseFn MakeDx(double x) {
  return [x](size_t id) { return id == kProbe ? x : std::abs(x - XOf(id)); };
}

inline DxToDatabaseFn DxOfObject(size_t object_id) {
  return MakeDx(XOf(object_id));
}

/// Embeds every object as its coordinate replicated across kLineDims
/// dimensions: the L2 filter score is kLineDims * (x_q - x)^2, monotone
/// in the exact distance, so embedded-space order equals exact-distance
/// order and retrieval at p = n is exact k-NN.  The replication only
/// lengthens the scan (wider query windows => more retrievals genuinely
/// racing mutations).
inline constexpr size_t kLineDims = 8;

class LineEmbedder : public Embedder {
 public:
  size_t dims() const override { return kLineDims; }
  Vector Embed(const DxToDatabaseFn& dx, size_t* num_exact) const override {
    if (num_exact != nullptr) *num_exact = 0;
    return Vector(kLineDims, dx(kProbe));
  }
  size_t EmbeddingCost() const override { return 0; }
};

}  // namespace test
}  // namespace qse

#endif  // QSE_TESTS_LINE_UNIVERSE_H_
