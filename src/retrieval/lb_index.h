#ifndef QSE_RETRIEVAL_LB_INDEX_H_
#define QSE_RETRIEVAL_LB_INDEX_H_

#include <vector>

#include "src/distance/dtw.h"
#include "src/util/top_k.h"

namespace qse {

/// Exact constrained-DTW k-NN search accelerated by LB_Keogh lower
/// bounding — the repo's stand-in for the comparator index of [32]
/// (DESIGN.md substitution #3), which the paper reports achieving roughly
/// a 5x speed-up over sequential scan while returning exact results.
///
/// Search strategy: compute the cheap LB_Keogh lower bound of every
/// database series against the query's band envelope, visit candidates in
/// ascending-LB order, evaluate exact cDTW, and stop as soon as the next
/// lower bound exceeds the current k-th best exact distance (the standard
/// exactness argument: every unvisited candidate has DTW >= its LB >=
/// the k-th best).
///
/// Requires all series (and queries) to share one fixed length and
/// dimensionality, the standard LB_Keogh setting.
class LbDtwIndex {
 public:
  /// `band_fraction` must match the cDTW band used for exact distances.
  LbDtwIndex(std::vector<Series> database, double band_fraction);

  struct Result {
    /// Exact k nearest neighbors (positions into the database vector),
    /// ascending by (distance, position).
    std::vector<ScoredIndex> neighbors;
    /// Number of exact cDTW evaluations spent (the cost measure; LB
    /// computations are considered free, as in [32]'s filter step).
    size_t exact_evaluations = 0;
  };

  Result Search(const Series& query, size_t k) const;

  /// Batched, thread-parallel variant: results[i] is bit-identical to
  /// Search(queries[i], k).  Queries are independent; the LB scan inside
  /// each Search is itself parallelized only for single-query calls, so
  /// batching parallelizes at the query level instead (one core per
  /// query, no nested thread explosion).  `num_threads` = 0 means
  /// hardware concurrency.
  std::vector<Result> SearchBatch(const std::vector<Series>& queries,
                                  size_t k, size_t num_threads = 0) const;

  size_t size() const { return database_.size(); }
  double band_fraction() const { return band_fraction_; }

 private:
  Result SearchImpl(const Series& query, size_t k, size_t lb_threads) const;

  std::vector<Series> database_;
  double band_fraction_;
  long window_;
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_LB_INDEX_H_
