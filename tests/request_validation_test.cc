// One parameterized option-validation suite for every query surface —
// the monolithic engine, the sharded engine, and the async server over
// both (with and without tenant quotas) — replacing the per-class copies
// that used to drift.  Every surface must agree: k = 0, p = 0 and an
// out-of-range priority are InvalidArgument; an empty database is
// FailedPrecondition; an oversized p is clamped to the database size;
// tenant_id is ignored everywhere except a quota-configured server,
// which rejects unknown tenants.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/embedding/fastmap.h"
#include "src/retrieval/filter_refine.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/server/async_retrieval_server.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "tests/test_util.h"

namespace qse {
namespace {

enum class Surface {
  kMono,
  kSharded,
  kServerMono,
  kServerSharded,
  kServerWithQuotas,
};

std::string SurfaceName(const ::testing::TestParamInfo<Surface>& info) {
  switch (info.param) {
    case Surface::kMono:
      return "Mono";
    case Surface::kSharded:
      return "Sharded";
    case Surface::kServerMono:
      return "ServerMono";
    case Surface::kServerSharded:
      return "ServerSharded";
    case Surface::kServerWithQuotas:
      return "ServerWithQuotas";
  }
  return "Unknown";
}

class RequestValidationTest : public ::testing::TestWithParam<Surface> {
 protected:
  RequestValidationTest()
      : s_(test::MakePlaneOracle(44, 21)),
        db_ids_(test::Iota(40)),
        model_([this] {
          FastMapOptions o;
          o.dims = 2;
          return BuildFastMap(s_, db_ids_, o);
        }()),
        db_(EmbedDatabase(model_, s_, db_ids_)),
        empty_db_(db_.dims()),
        mono_(&model_, &scorer_, &db_, db_ids_),
        empty_mono_(&model_, &scorer_, &empty_db_, {}),
        sharded_(&model_, &scorer_, db_, db_ids_, ShardOptions()),
        empty_sharded_(&model_, &scorer_, ShardOptions()) {
    AsyncServerOptions quota_options;
    quota_options.tenant_quotas = {{"", 0.5}, {"known", 0.5}};
    server_mono_ = std::make_unique<AsyncRetrievalServer>(&mono_);
    server_sharded_ = std::make_unique<AsyncRetrievalServer>(&sharded_);
    server_quotas_ =
        std::make_unique<AsyncRetrievalServer>(&mono_, quota_options);
    server_empty_ = std::make_unique<AsyncRetrievalServer>(&empty_mono_);
  }

  static ShardedEngineOptions ShardOptions() {
    ShardedEngineOptions o;
    o.num_shards = 3;
    o.scatter_threads = 1;
    return o;
  }

  DxToDatabaseFn QueryDx(size_t query_id) const {
    return [this, query_id](size_t id) { return s_.Distance(query_id, id); };
  }

  /// One request through the parameterized surface.
  StatusOr<RetrievalResponse> Call(const RetrievalRequest& request) {
    switch (GetParam()) {
      case Surface::kMono:
        return mono_.Retrieve(request);
      case Surface::kSharded:
        return sharded_.Retrieve(request);
      case Surface::kServerMono:
        return server_mono_->Retrieve(request);
      case Surface::kServerSharded:
        return server_sharded_->Retrieve(request);
      case Surface::kServerWithQuotas:
        return server_quotas_->Retrieve(request);
    }
    return Status::Internal("unreachable");
  }

  /// The same request against an EMPTY database behind the same kind of
  /// surface (quota config is irrelevant to emptiness).
  StatusOr<RetrievalResponse> CallEmpty(const RetrievalRequest& request) {
    switch (GetParam()) {
      case Surface::kMono:
        return empty_mono_.Retrieve(request);
      case Surface::kSharded:
        return empty_sharded_.Retrieve(request);
      case Surface::kServerMono:
      case Surface::kServerSharded:
      case Surface::kServerWithQuotas:
        return server_empty_->Retrieve(request);
    }
    return Status::Internal("unreachable");
  }

  bool IsEngineSurface() const {
    return GetParam() == Surface::kMono || GetParam() == Surface::kSharded;
  }

  /// RetrieveBatch on the engine surfaces (the server has no batch
  /// entry point; its batching is internal).
  StatusOr<std::vector<RetrievalResponse>> CallBatch(
      const std::vector<DxToDatabaseFn>& queries,
      const RetrievalOptions& options) {
    if (GetParam() == Surface::kMono) {
      return mono_.RetrieveBatch(queries, options);
    }
    return sharded_.RetrieveBatch(queries, options);
  }

  ObjectOracle<Vector> s_;
  std::vector<size_t> db_ids_;
  FastMapModel model_;
  L2Scorer scorer_;
  EmbeddedDatabase db_;
  EmbeddedDatabase empty_db_;
  RetrievalEngine mono_;
  RetrievalEngine empty_mono_;
  ShardedRetrievalEngine sharded_;
  ShardedRetrievalEngine empty_sharded_;
  std::unique_ptr<AsyncRetrievalServer> server_mono_;
  std::unique_ptr<AsyncRetrievalServer> server_sharded_;
  std::unique_ptr<AsyncRetrievalServer> server_quotas_;
  std::unique_ptr<AsyncRetrievalServer> server_empty_;
};

TEST_P(RequestValidationTest, KZeroIsInvalidArgument) {
  auto r = Call({QueryDx(40), RetrievalOptions(0, 5)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(RequestValidationTest, PZeroIsInvalidArgument) {
  auto r = Call({QueryDx(40), RetrievalOptions(1, 0)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(RequestValidationTest, OutOfRangePriorityIsInvalidArgument) {
  RetrievalOptions ro(1, 5);
  ro.priority = static_cast<RequestPriority>(7);
  auto r = Call({QueryDx(40), ro});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(RequestValidationTest, EmptyDatabaseIsFailedPrecondition) {
  auto r = CallEmpty({QueryDx(40), RetrievalOptions(1, 5)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_P(RequestValidationTest, OversizedPIsClampedToDatabaseSize) {
  auto huge = Call({QueryDx(41), RetrievalOptions(1, 1000000)});
  auto full = Call({QueryDx(41), RetrievalOptions(1, db_ids_.size())});
  ASSERT_TRUE(huge.ok() && full.ok());
  EXPECT_EQ(huge->exact_distances, full->exact_distances);
  ASSERT_FALSE(huge->neighbors.empty());
  EXPECT_EQ(huge->neighbors[0].index, full->neighbors[0].index);
  EXPECT_EQ(huge->neighbors[0].score, full->neighbors[0].score);
}

TEST_P(RequestValidationTest, UnknownTenantOnlyRejectedUnderQuotas) {
  RetrievalOptions ro(1, 5);
  ro.tenant_id = "nobody-configured-this";
  auto r = Call({QueryDx(40), ro});
  if (GetParam() == Surface::kServerWithQuotas) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("unknown tenant"),
              std::string::npos);
  } else {
    // Engines and quota-less servers ignore tenancy entirely.
    EXPECT_TRUE(r.ok()) << r.status();
  }
}

TEST_P(RequestValidationTest, KnownTenantAdmitsUnderQuotas) {
  RetrievalOptions ro(1, 5);
  ro.tenant_id = "known";
  auto r = Call({QueryDx(40), ro});
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST_P(RequestValidationTest, BatchValidationMatchesSingle) {
  if (!IsEngineSurface()) GTEST_SKIP() << "engines only";
  auto bad_k = CallBatch({QueryDx(40)}, RetrievalOptions(0, 5));
  ASSERT_FALSE(bad_k.ok());
  EXPECT_EQ(bad_k.status().code(), StatusCode::kInvalidArgument);
  auto bad_p = CallBatch({QueryDx(40)}, RetrievalOptions(1, 0));
  ASSERT_FALSE(bad_p.ok());
  EXPECT_EQ(bad_p.status().code(), StatusCode::kInvalidArgument);
  RetrievalOptions bad_priority(1, 5);
  bad_priority.priority = static_cast<RequestPriority>(9);
  auto bad = CallBatch({QueryDx(40)}, bad_priority);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(RequestValidationTest, InvalidFilterPrecisionIsInvalidArgument) {
  RetrievalOptions ro(1, 5);
  ro.filter_precision = static_cast<FilterPrecision>(99);
  auto r = Call({QueryDx(40), ro});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("filter_precision"), std::string::npos);
}

TEST_P(RequestValidationTest, ReducedPrecisionWithoutShadowsFailsCleanly) {
  // The fixture's databases carry no shadow matrices, so a reduced
  // precision request is a precondition failure (the data cannot serve
  // it), not a validation error (the option itself is legal).
  for (FilterPrecision p :
       {FilterPrecision::kFilter32, FilterPrecision::kFilter8}) {
    RetrievalOptions ro(1, 5);
    ro.filter_precision = p;
    auto r = Call({QueryDx(40), ro});
    ASSERT_FALSE(r.ok()) << FilterPrecisionName(p);
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition)
        << FilterPrecisionName(p);
    EXPECT_NE(r.status().message().find("shadow"), std::string::npos)
        << r.status();
  }
}

TEST_P(RequestValidationTest, WantStatsReportsIdenticalTotalsEverywhere) {
  // Satellite of the redesign: stats are a response field with one shape
  // — shard_stats rows sum to the database size and candidates sum to
  // the clamped p on every surface (the monolithic engine is one
  // pseudo-shard).
  RetrievalOptions ro(2, 15);
  ro.want_stats = true;
  auto r = Call({QueryDx(42), ro});
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_FALSE(r->shard_stats.empty());
  size_t rows = 0, candidates = 0;
  for (const ShardScanStats& s : r->shard_stats) {
    rows += s.rows;
    candidates += s.candidates;
  }
  EXPECT_EQ(rows, db_ids_.size());
  EXPECT_EQ(candidates, std::min<size_t>(15, db_ids_.size()));

  // Without want_stats the field stays empty — no silent cost.
  auto quiet = Call({QueryDx(42), RetrievalOptions(2, 15)});
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet->shard_stats.empty());
}

INSTANTIATE_TEST_SUITE_P(AllSurfaces, RequestValidationTest,
                         ::testing::Values(Surface::kMono, Surface::kSharded,
                                           Surface::kServerMono,
                                           Surface::kServerSharded,
                                           Surface::kServerWithQuotas),
                         SurfaceName);

}  // namespace
}  // namespace qse
