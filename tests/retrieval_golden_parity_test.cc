// Golden parity: the RetrievalRequest/RetrievalResponse redesign must
// not move a single bit of any result.  tests/golden_retrieval.inc holds
// results recorded from the PRE-redesign Retrieve(dx, k, p) API over a
// deterministic workload; every post-redesign surface — monolithic
// engine, sharded engine, RetrieveBatch on both, and the async server —
// must reproduce them exactly: same database ids, same IEEE-754 score
// bit patterns, same cost accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/distance/lp.h"
#include "src/embedding/fastmap.h"
#include "src/retrieval/filter_refine.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/server/async_retrieval_server.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/random.h"

namespace qse {
namespace {

struct GoldenNeighbor {
  size_t db_id;
  uint64_t score_bits;
};

struct GoldenCase {
  size_t query_id;
  size_t k;
  size_t p;
  size_t exact_distances;
  size_t embedding_distances;
  size_t num_neighbors;
  GoldenNeighbor neighbors[3];
};

#include "tests/golden_retrieval.inc"

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// The exact workload the goldens were recorded over (same seeds, same
/// construction order — any drift here fails every case loudly).
struct GoldenStack {
  static constexpr size_t kDb = 72;
  static constexpr size_t kQueries = 8;
  static constexpr uint64_t kSeed = 2026;

  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  RetrievalEngine mono;
  ShardedRetrievalEngine sharded;

  static ObjectOracle<Vector> MakeOracle() {
    Rng rng(kSeed);
    std::vector<Vector> pts;
    for (size_t i = 0; i < kDb + kQueries; ++i) {
      pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    }
    return ObjectOracle<Vector>(std::move(pts), L2Distance);
  }

  static std::vector<size_t> Iota(size_t n) {
    std::vector<size_t> ids(n);
    std::iota(ids.begin(), ids.end(), 0);
    return ids;
  }

  static FastMapModel MakeModel(const ObjectOracle<Vector>& oracle,
                                const std::vector<size_t>& db_ids) {
    FastMapOptions fm;
    fm.dims = 3;
    fm.seed = kSeed + 1;
    return BuildFastMap(oracle, db_ids, fm);
  }

  static ShardedEngineOptions ShardOptions() {
    ShardedEngineOptions o;
    o.num_shards = 3;
    o.scatter_threads = 1;
    return o;
  }

  GoldenStack()
      : oracle(MakeOracle()),
        db_ids(Iota(kDb)),
        model(MakeModel(oracle, db_ids)),
        db(EmbedDatabase(model, oracle, db_ids)),
        mono(&model, &scorer, &db, db_ids),
        sharded(&model, &scorer, db, db_ids, ShardOptions()) {}

  DxToDatabaseFn QueryDx(size_t query_id) const {
    return [this, query_id](size_t id) {
      return oracle.Distance(query_id, id);
    };
  }
};

/// Compares one response (with backend-specific neighbor indices) to one
/// golden record, translating indices through db_id_of.
void ExpectMatchesGolden(const RetrievalBackend& backend,
                         const RetrievalResponse& got, const GoldenCase& want,
                         const std::string& context) {
  EXPECT_EQ(got.exact_distances, want.exact_distances) << context;
  EXPECT_EQ(got.embedding_distances, want.embedding_distances) << context;
  ASSERT_EQ(got.neighbors.size(), want.num_neighbors) << context;
  for (size_t i = 0; i < want.num_neighbors; ++i) {
    EXPECT_EQ(backend.db_id_of(got.neighbors[i].index),
              want.neighbors[i].db_id)
        << context << " i=" << i;
    EXPECT_EQ(Bits(got.neighbors[i].score), want.neighbors[i].score_bits)
        << context << " i=" << i;
  }
}

TEST(GoldenParityTest, SingleRetrieveMatchesPreRedesignOnBothEngines) {
  GoldenStack s;
  for (const GoldenCase& c : kGoldenCases) {
    RetrievalRequest request{s.QueryDx(c.query_id),
                             RetrievalOptions(c.k, c.p)};
    std::string context = "q=" + std::to_string(c.query_id) +
                          " k=" + std::to_string(c.k) +
                          " p=" + std::to_string(c.p);
    auto mono = s.mono.Retrieve(request);
    ASSERT_TRUE(mono.ok()) << mono.status();
    ExpectMatchesGolden(s.mono, *mono, c, "mono " + context);
    auto sharded = s.sharded.Retrieve(request);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    ExpectMatchesGolden(s.sharded, *sharded, c, "sharded " + context);
  }
}

TEST(GoldenParityTest, RetrieveBatchMatchesPreRedesignOnBothEngines) {
  GoldenStack s;
  // Group golden cases by (k, p): one RetrieveBatch per group, queries
  // in recorded order.
  for (size_t k : {size_t{1}, size_t{3}}) {
    for (size_t p : {size_t{1}, size_t{7}, GoldenStack::kDb}) {
      std::vector<DxToDatabaseFn> queries;
      std::vector<const GoldenCase*> expected;
      for (const GoldenCase& c : kGoldenCases) {
        if (c.k != k || c.p != p) continue;
        queries.push_back(s.QueryDx(c.query_id));
        expected.push_back(&c);
      }
      ASSERT_EQ(queries.size(), GoldenStack::kQueries);
      for (size_t threads : {1u, 4u}) {
        RetrievalOptions options(k, p);
        options.num_threads = threads;
        auto mono = s.mono.RetrieveBatch(queries, options);
        auto sharded = s.sharded.RetrieveBatch(queries, options);
        ASSERT_TRUE(mono.ok() && sharded.ok());
        for (size_t i = 0; i < expected.size(); ++i) {
          std::string context = "batch threads=" + std::to_string(threads) +
                                " q=" + std::to_string(expected[i]->query_id);
          ExpectMatchesGolden(s.mono, (*mono)[i], *expected[i],
                              "mono " + context);
          ExpectMatchesGolden(s.sharded, (*sharded)[i], *expected[i],
                              "sharded " + context);
        }
      }
    }
  }
}

TEST(GoldenParityTest, ExplicitExact64PrecisionMatchesPreRedesign) {
  // The SIMD-dispatch PR's contract: FilterPrecision::kExact64 (the
  // default, here passed explicitly) is bit-identical to the pre-dispatch
  // engine whatever ISA tier the process resolved — and enabling shadow
  // matrices must not perturb the exact path either.
  GoldenStack s;
  s.db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
  RetrievalEngine mono(&s.model, &s.scorer, &s.db, s.db_ids);
  for (const GoldenCase& c : kGoldenCases) {
    RetrievalOptions options(c.k, c.p);
    options.filter_precision = FilterPrecision::kExact64;
    RetrievalRequest request{s.QueryDx(c.query_id), options};
    std::string context = "exact64 q=" + std::to_string(c.query_id) +
                          " k=" + std::to_string(c.k) +
                          " p=" + std::to_string(c.p);
    auto got = mono.Retrieve(request);
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectMatchesGolden(mono, *got, c, context);
    auto sharded = s.sharded.Retrieve(request);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    ExpectMatchesGolden(s.sharded, *sharded, c, "sharded " + context);
  }
}

TEST(GoldenParityTest, AsyncServerMatchesPreRedesignOnBothEngines) {
  GoldenStack s;
  const RetrievalBackend* backends[] = {&s.mono, &s.sharded};
  for (const RetrievalBackend* backend : backends) {
    AsyncServerOptions options;
    options.max_batch = 8;
    options.retrieve_threads = 2;
    AsyncRetrievalServer server(backend, options);
    std::vector<Future<StatusOr<RetrievalResponse>>> futures;
    for (const GoldenCase& c : kGoldenCases) {
      RetrievalOptions ro(c.k, c.p);
      // Exercise the lanes while at it: priority must never change
      // results.
      ro.priority = static_cast<RequestPriority>(c.query_id % 3);
      futures.push_back(server.Submit({s.QueryDx(c.query_id), ro}));
    }
    server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
    size_t i = 0;
    for (const GoldenCase& c : kGoldenCases) {
      const auto& got = futures[i++].Get();
      ASSERT_TRUE(got.ok()) << got.status();
      ExpectMatchesGolden(*backend, *got, c,
                          "server q=" + std::to_string(c.query_id) +
                              " k=" + std::to_string(c.k) +
                              " p=" + std::to_string(c.p));
    }
  }
}

}  // namespace
}  // namespace qse
