#include "src/server/async_retrieval_server.h"

#include <algorithm>
#include <utility>

namespace qse {

namespace {

AsyncServerOptions Sanitize(AsyncServerOptions o) {
  if (o.max_batch == 0) o.max_batch = 1;
  if (o.num_workers == 0) o.num_workers = 1;
  return o;
}

}  // namespace

AsyncRetrievalServer::AsyncRetrievalServer(const RetrievalBackend* backend,
                                           AsyncServerOptions options)
    : backend_(backend),
      options_(Sanitize(options)),
      queue_(options_.queue_capacity),
      // One pending batch per worker: backlog accumulates in the bounded
      // admission queue (where overflow is observable), not in an elastic
      // dispatch buffer.
      dispatch_(options_.num_workers),
      batch_size_histogram_(options_.max_batch, 0) {
  batcher_ = std::thread(&AsyncRetrievalServer::BatcherLoop, this);
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back(&AsyncRetrievalServer::WorkerLoop, this);
  }
}

AsyncRetrievalServer::~AsyncRetrievalServer() { Shutdown(DrainMode::kDrain); }

Future<StatusOr<RetrievalResult>> AsyncRetrievalServer::Submit(
    DxToDatabaseFn dx, SubmitOptions options) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Promise<StatusOr<RetrievalResult>> promise;
  Future<StatusOr<RetrievalResult>> future = promise.future();
  if (options.k == 0 || options.p == 0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    promise.Set(Status::InvalidArgument("k and p must be positive"));
    return future;
  }
  Request request{std::move(dx), options.k, options.p, options.deadline,
                  promise};
  // The refusal reason comes from under the queue lock: a full-queue
  // rejection racing Shutdown still reports load shedding (retryable),
  // not shutdown (terminal).
  QueuePushResult pushed = queue_.TryPushWithReason(std::move(request));
  if (pushed != QueuePushResult::kAccepted) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    promise.Set(pushed == QueuePushResult::kClosed
                    ? Status::FailedPrecondition("server is shut down")
                    : Status::ResourceExhausted("admission queue full"));
    return future;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return future;
}

StatusOr<RetrievalResult> AsyncRetrievalServer::Retrieve(
    DxToDatabaseFn dx, size_t k, size_t p, ServerClock::time_point deadline) {
  SubmitOptions options;
  options.k = k;
  options.p = p;
  options.deadline = deadline;
  return Submit(std::move(dx), options).Get();
}

void AsyncRetrievalServer::Shutdown(DrainMode mode) {
  if (shutdown_.exchange(true)) return;
  if (mode == DrainMode::kCancel) {
    cancel_.store(true, std::memory_order_relaxed);
  }
  queue_.Close();  // New submits fail; the batcher drains what is queued.
  if (batcher_.joinable()) batcher_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void AsyncRetrievalServer::CompleteCancelled(Request* r) {
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  r->promise.Set(Status::FailedPrecondition("server shut down before the "
                                            "request was executed"));
}

bool AsyncRetrievalServer::AdmitToBatch(Request r, Batch* batch,
                                        ServerClock::time_point now) {
  if (cancel_.load(std::memory_order_relaxed)) {
    CompleteCancelled(&r);
    return false;
  }
  // Deadline check #1, at dequeue: a request that died waiting in the
  // admission queue must not take a batch slot.
  if (now > r.deadline) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    r.promise.Set(
        Status::DeadlineExceeded("deadline expired in the admission queue"));
    return false;
  }
  batch->push_back(std::move(r));
  return true;
}

void AsyncRetrievalServer::BatcherLoop() {
  for (;;) {
    std::optional<Request> first = queue_.Pop();
    if (!first.has_value()) break;  // Closed and fully drained.

    Batch batch;
    // The batching window opens when the batch's first request is
    // dequeued, so the first arrival bounds its own extra latency.
    ServerClock::time_point window_end =
        ServerClock::now() + options_.max_batch_delay;
    AdmitToBatch(std::move(*first), &batch, ServerClock::now());

    // Adaptive growth: keep coalescing while requests are available.
    // With no window this stops the moment the queue is empty (idle =>
    // singleton batches at single-query latency; backlog => full
    // batches); with a window it also waits out the remaining time for
    // stragglers.
    while (!batch.empty() && batch.size() < options_.max_batch) {
      std::optional<Request> next;
      if (options_.max_batch_delay.count() == 0) {
        next = queue_.TryPop();
      } else {
        auto remaining = window_end - ServerClock::now();
        if (remaining.count() <= 0) {
          next = queue_.TryPop();
          if (!next.has_value()) break;
        } else {
          next = queue_.PopFor(remaining);
        }
      }
      if (!next.has_value()) break;
      AdmitToBatch(std::move(*next), &batch, ServerClock::now());
    }
    if (batch.empty()) continue;  // Everything expired or cancelled.

    RecordBatchSize(batch.size());
    if (!dispatch_.Push(std::move(batch))) {
      // Only possible after the dispatch queue is closed, which this
      // thread does below — defensive: never drop promises.
      for (Request& r : batch) CompleteCancelled(&r);
    }
  }
  dispatch_.Close();  // Workers drain remaining batches, then exit.
}

void AsyncRetrievalServer::WorkerLoop() {
  for (;;) {
    std::optional<Batch> batch = dispatch_.Pop();
    if (!batch.has_value()) break;
    ExecuteBatch(std::move(*batch));
  }
}

void AsyncRetrievalServer::ExecuteBatch(Batch batch) {
  // Deadline check #2, before refine: the last gate before the backend
  // spends exact distances.  A request that expired while its batch sat
  // in the dispatch queue is answered late-but-honestly, not served.
  ServerClock::time_point now = ServerClock::now();
  Batch live;
  live.reserve(batch.size());
  for (Request& r : batch) {
    if (cancel_.load(std::memory_order_relaxed)) {
      CompleteCancelled(&r);
    } else if (now > r.deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      r.promise.Set(Status::DeadlineExceeded(
          "deadline expired before the refine step"));
    } else {
      live.push_back(std::move(r));
    }
  }

  // All requests sharing (k, p) — adjacent or not — execute as one
  // RetrieveBatch call; results[i] is bit-identical to
  // Retrieve(queries[i]) by the backend contract.  Group count is tiny
  // (bounded by max_batch), so a linear group scan beats hashing.
  std::vector<std::vector<size_t>> groups;
  for (size_t t = 0; t < live.size(); ++t) {
    std::vector<size_t>* group = nullptr;
    for (std::vector<size_t>& g : groups) {
      if (live[g[0]].k == live[t].k && live[g[0]].p == live[t].p) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
    }
    group->push_back(t);
  }
  for (const std::vector<size_t>& group : groups) {
    std::vector<DxToDatabaseFn> queries;
    queries.reserve(group.size());
    for (size_t t : group) queries.push_back(std::move(live[t].dx));
    StatusOr<std::vector<RetrievalResult>> results = backend_->RetrieveBatch(
        queries, live[group[0]].k, live[group[0]].p,
        options_.retrieve_threads);
    for (size_t i = 0; i < group.size(); ++i) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (results.ok()) {
        live[group[i]].promise.Set(std::move((*results)[i]));
      } else {
        live[group[i]].promise.Set(results.status());
      }
    }
  }
}

void AsyncRetrievalServer::RecordBatchSize(size_t size) {
  std::lock_guard<std::mutex> lock(histogram_mu_);
  batch_size_histogram_[std::min(size, options_.max_batch) - 1] += 1;
}

ServerStats AsyncRetrievalServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  {
    std::lock_guard<std::mutex> lock(histogram_mu_);
    s.batch_size_histogram = batch_size_histogram_;
  }
  return s;
}

}  // namespace qse
