#ifndef QSE_RETRIEVAL_RETRIEVAL_BACKEND_H_
#define QSE_RETRIEVAL_RETRIEVAL_BACKEND_H_

#include <cstddef>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/util/statusor.h"
#include "src/util/top_k.h"

namespace qse {

/// Result of one filter-and-refine retrieval.
struct RetrievalResult {
  /// Top-k neighbors by exact distance among the refined candidates.
  /// `index` is backend-specific — db rows for RetrievalEngine, database
  /// ids for ShardedRetrievalEngine — and always resolves to a database id
  /// through the owning backend's db_id_of().
  std::vector<ScoredIndex> neighbors;
  /// Exact DX evaluations spent: embedding step + refine step.  This is
  /// the paper's per-query cost measure.
  size_t exact_distances = 0;
  /// Of which, spent embedding the query.
  size_t embedding_distances = 0;
};

/// The serving-facing face of a retrieval engine: the filter-and-refine
/// query API plus incremental mutation, shared by the monolithic
/// RetrievalEngine and the sharded scatter/gather engine so examples,
/// evaluation drivers and the serving layer can swap one for the other
/// behind a single interface.
///
/// Contract, identical across implementations:
///  * Retrieve returns InvalidArgument for k == 0 or p == 0 and
///    FailedPrecondition on an empty database; p is clamped to size().
///  * RetrieveBatch(queries, ...)[i] is bit-identical to
///    Retrieve(queries[i], ...), whatever the thread count.
///  * Insert fails with InvalidArgument on a duplicate id, Remove with
///    NotFound on an unknown one.
///  * Retrieve/RetrieveBatch are const and safe to call concurrently;
///    Insert/Remove must not run concurrently with anything else.
class RetrievalBackend {
 public:
  virtual ~RetrievalBackend() = default;

  /// Retrieves the k best matches among the top-p filter candidates.
  /// `dx` resolves exact distances from the query to database ids.
  virtual StatusOr<RetrievalResult> Retrieve(const DxToDatabaseFn& dx,
                                             size_t k, size_t p) const = 0;

  /// Retrieves a batch of queries in parallel; results[i] corresponds to
  /// queries[i].  `num_threads` = 0 means hardware concurrency.
  virtual StatusOr<std::vector<RetrievalResult>> RetrieveBatch(
      const std::vector<DxToDatabaseFn>& queries, size_t k, size_t p,
      size_t num_threads = 0) const = 0;

  /// Embeds a new object via `dx` and adds it under `db_id`.
  virtual Status Insert(size_t db_id, const DxToDatabaseFn& dx) = 0;

  /// Removes the object with id `db_id`.
  virtual Status Remove(size_t db_id) = 0;

  /// Number of database objects currently live.
  virtual size_t size() const = 0;

  /// Database id behind a RetrievalResult neighbor index.
  virtual size_t db_id_of(size_t neighbor_index) const = 0;
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_RETRIEVAL_BACKEND_H_
