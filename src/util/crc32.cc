#include "src/util/crc32.h"

namespace qse {
namespace {

/// The 256-entry lookup table for the reflected IEEE polynomial, built
/// once at first use (byte-at-a-time; ~1 GB/s, far faster than the WAL's
/// fsync cadence, and dependency-free).
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const Crc32Table table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table.entries[(crc ^ p[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace qse
