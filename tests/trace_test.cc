// Tests for per-request trace spans: deterministic span recording under
// a fake clock, span-coverage math, Chrome trace_event JSON structure,
// and the end-to-end acceptance path — one sampled request through the
// async server over a sharded engine must come back with a trace whose
// spans cover >= 95% of the wall-clock between admit and completion.

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/embedding/fastmap.h"
#include "src/retrieval/filter_refine.h"
#include "src/server/async_retrieval_server.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/timer.h"
#include "tests/test_util.h"

namespace qse {
namespace obs {
namespace {

using namespace std::chrono_literals;

bool HasSpan(const std::vector<TraceSpan>& spans, const std::string& name) {
  for (const TraceSpan& s : spans) {
    if (name == s.name) return true;
  }
  return false;
}

// --- RequestTrace under a fake clock (exact timestamps) -----------------

TEST(RequestTraceTest, SpansAreExactUnderFakeClock) {
  ScopedFakeClock fake;
  RequestTrace trace;
  EXPECT_EQ(trace.NowNs(), 0u);

  uint64_t start = trace.NowNs();
  fake.clock().Advance(5ms);
  trace.CloseSpan("work", start,
                  {TraceArg{"rows", 42, nullptr},
                   TraceArg{"kind", 0, "scan"}});

  std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].start_ns, 0u);
  EXPECT_EQ(spans[0].dur_ns, 5000000u);
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].int_value, 42);
  EXPECT_STREQ(spans[0].args[1].str_value, "scan");
}

TEST(RequestTraceTest, ThisThreadIdIsSmallAndStable) {
  uint32_t id = RequestTrace::ThisThreadId();
  EXPECT_EQ(RequestTrace::ThisThreadId(), id);
  EXPECT_GT(id, 0u);
}

#ifndef QSE_DISABLE_TRACING
TEST(RequestTraceTest, ScopedSpanClosesOnDestruction) {
  ScopedFakeClock fake;
  RequestTrace trace;
  {
    ScopedSpan span(&trace, "scoped");
    span.AddArg("n", int64_t{7});
    fake.clock().Advance(2ms);
  }
  std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "scoped");
  EXPECT_EQ(spans[0].dur_ns, 2000000u);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].int_value, 7);
}

TEST(RequestTraceTest, NullTraceIsNoOpEverywhere) {
  // The untraced hot path: every helper must tolerate nullptr.
  EXPECT_EQ(TraceNowNs(nullptr), 0u);
  TraceMark(nullptr, "ignored", 0);
  ScopedSpan span(nullptr, "ignored");
  span.AddArg("k", int64_t{1});
}
#endif  // QSE_DISABLE_TRACING

// --- SpanCoverage -------------------------------------------------------

TraceSpan MakeSpan(const char* name, uint64_t start_ns, uint64_t dur_ns) {
  TraceSpan s;
  s.name = name;
  s.start_ns = start_ns;
  s.dur_ns = dur_ns;
  return s;
}

TEST(SpanCoverageTest, FullCoverageIsOne) {
  std::vector<TraceSpan> spans = {
      MakeSpan("request", 0, 100),
      MakeSpan("a", 0, 60),
      MakeSpan("b", 60, 40),
  };
  EXPECT_DOUBLE_EQ(SpanCoverage(spans), 1.0);
}

TEST(SpanCoverageTest, GapsLowerCoverage) {
  std::vector<TraceSpan> spans = {
      MakeSpan("request", 0, 100),
      MakeSpan("a", 0, 25),
      MakeSpan("b", 75, 25),
  };
  EXPECT_DOUBLE_EQ(SpanCoverage(spans), 0.5);
}

TEST(SpanCoverageTest, OverlapsCountOnce) {
  std::vector<TraceSpan> spans = {
      MakeSpan("request", 0, 100),
      MakeSpan("a", 0, 80),
      MakeSpan("b", 40, 60),   // overlaps a; union is [0, 100)
      MakeSpan("c", 50, 10),   // nested inside both
  };
  EXPECT_DOUBLE_EQ(SpanCoverage(spans), 1.0);
}

TEST(SpanCoverageTest, SpansOutsideDenominatorAreClipped) {
  std::vector<TraceSpan> spans = {
      MakeSpan("request", 100, 100),
      MakeSpan("warmup", 0, 100),     // entirely before: contributes 0
      MakeSpan("a", 50, 100),         // half inside
  };
  EXPECT_DOUBLE_EQ(SpanCoverage(spans), 0.5);
}

TEST(SpanCoverageTest, MissingOrEmptyDenominatorIsZero) {
  EXPECT_DOUBLE_EQ(SpanCoverage({MakeSpan("a", 0, 10)}), 0.0);
  EXPECT_DOUBLE_EQ(
      SpanCoverage({MakeSpan("request", 5, 0), MakeSpan("a", 0, 10)}), 0.0);
}

// --- Chrome trace JSON --------------------------------------------------

TEST(ChromeTraceJsonTest, GoldenStructure) {
  ScopedFakeClock fake;
  RequestTrace trace;
  uint64_t start = trace.NowNs();
  fake.clock().Advance(1500us);
  trace.CloseSpan("embed", start,
                  {TraceArg{"rows", 3, nullptr},
                   TraceArg{"simd", 0, "avx2"}});
  std::string json = trace.ChromeTraceJson();

  // The envelope chrome://tracing and Perfetto expect.
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Complete events with microsecond timestamps: 1.5ms -> dur 1500.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"embed\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"qse\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1500"), std::string::npos);
  // Args carry both integer and string values.
  EXPECT_NE(json.find("\"rows\":3"), std::string::npos);
  EXPECT_NE(json.find("\"simd\":\"avx2\""), std::string::npos);
  // Braces balance (cheap well-formedness check without a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// --- End-to-end: a sampled request through the sharded server -----------

/// Minimal serving stack: plane points under L2, FastMap-embedded,
/// sharded 3 ways (the acceptance path exercises the scatter spans).
struct TraceStack {
  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  std::vector<size_t> query_ids;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  ShardedRetrievalEngine sharded;

  static FastMapModel BuildModel(const ObjectOracle<Vector>& oracle,
                                 const std::vector<size_t>& db_ids) {
    FastMapOptions options;
    options.dims = 3;
    return BuildFastMap(oracle, db_ids, options);
  }

  static ShardedEngineOptions ShardOptions() {
    ShardedEngineOptions options;
    options.num_shards = 3;
    options.scatter_threads = 1;
    return options;
  }

  TraceStack()
      : oracle(test::MakePlaneOracle(70, 29)),
        db_ids(test::Iota(60)),
        query_ids(test::Iota(10, 60)),
        model(BuildModel(oracle, db_ids)),
        db(EmbedDatabase(model, oracle, db_ids)),
        sharded(&model, &scorer, db, db_ids, ShardOptions()) {}

  DxToDatabaseFn QueryDx(size_t query_id) const {
    return [this, query_id](size_t id) {
      return oracle.Distance(query_id, id);
    };
  }
};

TEST(EndToEndTraceTest, SampledShardedServerRequestCoversItsWallClock) {
#ifdef QSE_DISABLE_TRACING
  GTEST_SKIP() << "tracing compiled out (QSE_DISABLE_TRACING)";
#else
  TraceStack s;
  AsyncServerOptions options;
  options.trace_every_n = 1;  // Sample every request.
  AsyncRetrievalServer server(&s.sharded, options);

  auto got = server.Retrieve({s.QueryDx(s.query_ids[0]),
                              RetrievalOptions(3, 10)});
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_NE(got.value().trace, nullptr)
      << "a sampled request must return its trace on the response";

  // The acceptance bar: spans account for >= 95% of the wall-clock
  // between admit and completion — no invisible stage in the pipeline.
  // A sub-millisecond request can lose more than 5% to one unlucky OS
  // preemption between adjacent stamps on a loaded host, so take the
  // best of a few attempts; a systematic coverage hole fails them all.
  double best_coverage = SpanCoverage(got.value().trace->spans());
  for (int attempt = 0; attempt < 4 && best_coverage < 0.95; ++attempt) {
    auto retry = server.Retrieve({s.QueryDx(s.query_ids[0]),
                                  RetrievalOptions(3, 10)});
    ASSERT_TRUE(retry.ok()) << retry.status();
    ASSERT_NE(retry.value().trace, nullptr);
    best_coverage =
        std::max(best_coverage, SpanCoverage(retry.value().trace->spans()));
  }
  EXPECT_GE(best_coverage, 0.95);

  std::vector<TraceSpan> spans = got.value().trace->spans();
  // Server pipeline stages...
  for (const char* name :
       {"admit", "queue", "batch_form", "dispatch_wait", "execute",
        "request"}) {
    EXPECT_TRUE(HasSpan(spans, name)) << "missing span: " << name;
  }
  // ...and engine stages, including one scan span per shard.
  for (const char* name : {"embed", "shard_scan", "merge", "refine"}) {
    EXPECT_TRUE(HasSpan(spans, name)) << "missing span: " << name;
  }
  size_t shard_scans = 0;
  size_t total_rows = 0;
  for (const TraceSpan& span : spans) {
    if (std::string("shard_scan") == span.name) {
      ++shard_scans;
      for (const TraceArg& arg : span.args) {
        if (std::string("rows") == arg.key) {
          total_rows += static_cast<size_t>(arg.int_value);
        }
      }
    }
  }
  EXPECT_EQ(shard_scans, s.sharded.num_shards());
  EXPECT_EQ(total_rows, s.sharded.size())
      << "shard_scan rows args must tile the database";

  // The same trace exports as loadable Chrome JSON naming every stage.
  std::string json = got.value().trace->ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* name : {"request", "shard_scan", "merge", "refine"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""),
              std::string::npos)
        << name;
  }

  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
#endif  // QSE_DISABLE_TRACING
}

TEST(EndToEndTraceTest, UnsampledRequestsCarryNoTrace) {
  TraceStack s;
  AsyncServerOptions options;
  options.trace_every_n = 0;  // Sampling off.
  AsyncRetrievalServer server(&s.sharded, options);
  auto got = server.Retrieve({s.QueryDx(s.query_ids[1]),
                              RetrievalOptions(3, 10)});
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got.value().trace, nullptr);
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
}

TEST(EndToEndTraceTest, EveryNthSamplingTracesOnlyTheNth) {
#ifdef QSE_DISABLE_TRACING
  GTEST_SKIP() << "tracing compiled out (QSE_DISABLE_TRACING)";
#else
  TraceStack s;
  AsyncServerOptions options;
  options.trace_every_n = 3;
  AsyncRetrievalServer server(&s.sharded, options);
  size_t traced = 0;
  for (size_t i = 0; i < 6; ++i) {
    auto got = server.Retrieve({s.QueryDx(s.query_ids[i % 4]),
                                RetrievalOptions(3, 10)});
    ASSERT_TRUE(got.ok()) << got.status();
    traced += got.value().trace != nullptr ? 1 : 0;
  }
  EXPECT_EQ(traced, 2u);  // Ticks 0 and 3 of 0..5.
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
#endif  // QSE_DISABLE_TRACING
}

}  // namespace
}  // namespace obs
}  // namespace qse
