// Property tests for snapshot encode/decode/install at the edges of the
// state space: dimensionless and empty databases, single-row databases
// left over from removes, every filter-shadow combination, and the
// requant-on-overflow state whose int8 scales are mutation-history-
// dependent.  Every roundtrip asserts memcmp identity — a snapshot is a
// bit-exact image, not an approximation.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/persist/snapshot.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_precision.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_engine.h"
#include "tests/line_universe.h"

namespace qse {
namespace persist {
namespace {

using test::DxOfObject;
using test::kLineDims;
using test::LineEmbedder;

void ExpectDbsIdentical(const EmbeddedDatabase& a, const EmbeddedDatabase& b,
                        const std::string& what) {
  SCOPED_TRACE(what);
  EmbeddedDatabase::Snapshot sa = a.snapshot();
  EmbeddedDatabase::Snapshot sb = b.snapshot();
  const EmbeddedDatabase::View& va = sa.view();
  const EmbeddedDatabase::View& vb = sb.view();
  ASSERT_EQ(va.size(), vb.size());
  ASSERT_EQ(va.dims(), vb.dims());
  const size_t cells = va.size() * va.dims();
  EXPECT_EQ(0, std::memcmp(va.data(), vb.data(), cells * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(va.ids(), vb.ids(), va.size() * sizeof(size_t)));
  ASSERT_EQ(va.shadows(), vb.shadows());
  if (va.has_f32()) {
    EXPECT_EQ(0, std::memcmp(va.data_f32(), vb.data_f32(),
                             cells * sizeof(float)));
  }
  if (va.has_i8()) {
    EXPECT_EQ(0, std::memcmp(va.data_i8(), vb.data_i8(), cells));
    EXPECT_EQ(0, std::memcmp(va.i8_scales(), vb.i8_scales(),
                             va.dims() * sizeof(float)));
  }
}

/// Encode -> decode -> install into `out`, asserting the decoded header
/// fields survived too.  `out` must have matching dims (or the image
/// must be empty and shadowless).
void RoundTripInto(const EmbeddedDatabase& source, EmbeddedDatabase* out,
                   const std::string& what) {
  SCOPED_TRACE(what);
  EmbeddedDatabase::Snapshot pin = source.snapshot();
  const std::string bytes = EncodeSnapshot(77, "blob", {pin.view()});
  StatusOr<SnapshotContents> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(77u, decoded->cut_seq);
  EXPECT_EQ("blob", decoded->model_blob);
  ASSERT_EQ(1u, decoded->dbs.size());
  Status installed = InstallSnapshotDb(decoded->dbs[0], out);
  ASSERT_TRUE(installed.ok()) << installed;
  ExpectDbsIdentical(source, *out, what);
}

TEST(SnapshotRoundTrip, DimensionlessEmptyDatabase) {
  EmbeddedDatabase source;  // dims() == 0.
  EmbeddedDatabase restored;
  RoundTripInto(source, &restored, "dims == 0, no rows");
}

TEST(SnapshotRoundTrip, EmptyDatabaseWithDims) {
  EmbeddedDatabase source(kLineDims);
  EmbeddedDatabase restored(kLineDims);
  RoundTripInto(source, &restored, "empty, dims set");
}

TEST(SnapshotRoundTrip, EmptyShadowlessImageClearsPopulatedDatabase) {
  EmbeddedDatabase source(kLineDims);
  EmbeddedDatabase restored(kLineDims);
  restored.Append(Vector(kLineDims, 0.5), 9);
  restored.Append(Vector(kLineDims, 0.25), 10);
  RoundTripInto(source, &restored, "empty image over populated db");
  EXPECT_EQ(0u, restored.size());
}

TEST(SnapshotRoundTrip, SingleRowAfterRemoves) {
  // Drive through the engine so removes exercise the swap path the
  // id column depends on; what must survive is the survivor's row AND
  // its database id.
  LineEmbedder embedder;
  L2Scorer scorer;
  EmbeddedDatabase source(kLineDims);
  RetrievalEngine engine(&embedder, &scorer, &source, {});
  for (size_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(engine.Insert(id, DxOfObject(id)).ok());
  }
  for (size_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(engine.Remove(id).ok());
  }
  ASSERT_EQ(1u, source.size());
  EmbeddedDatabase restored(kLineDims);
  RoundTripInto(source, &restored, "n == 1 after removes");
  EXPECT_EQ(4u, restored.ids()[0]);
}

TEST(SnapshotRoundTrip, EveryShadowCombination) {
  const uint32_t masks[] = {0u, kShadowFloat32, kShadowInt8,
                            kShadowFloat32 | kShadowInt8};
  for (uint32_t mask : masks) {
    EmbeddedDatabase source(kLineDims);
    for (size_t id = 0; id < 10; ++id) {
      source.Append(Vector(kLineDims, test::XOf(id)), id);
    }
    if (mask != 0) source.EnableFilterShadows(mask);
    EmbeddedDatabase restored(kLineDims);
    RoundTripInto(source, &restored,
                  "shadow mask " + std::to_string(mask));
    EXPECT_EQ(mask, restored.snapshot().view().shadows());
  }
}

TEST(SnapshotRoundTrip, RequantOnOverflowScalesRestoredVerbatim) {
  // Build a database whose int8 scales could NOT be reproduced by
  // rebuilding from the rows: an appended outlier forces the 1.25x
  // headroom requant, while a fresh EnableFilterShadows fits at 1.0x.
  constexpr size_t kDims = 4;
  EmbeddedDatabase source(kDims);
  for (size_t id = 0; id < 6; ++id) {
    source.Append(Vector(kDims, 0.25 + 0.05 * static_cast<double>(id)), id);
  }
  source.EnableFilterShadows(kShadowInt8);
  source.Append(Vector(kDims, 100.0), 99);  // Overflow: requant with headroom.
  ASSERT_EQ(7u, source.size());

  EmbeddedDatabase restored(kDims);
  RoundTripInto(source, &restored, "post-requant state");

  // The same rows quantized from scratch get DIFFERENT scales — which is
  // exactly why restore must install the serialized ones, not rebuild.
  EmbeddedDatabase rebuilt(kDims);
  {
    EmbeddedDatabase::Snapshot pin = source.snapshot();
    const EmbeddedDatabase::View& view = pin.view();
    for (size_t i = 0; i < view.size(); ++i) {
      rebuilt.Append(view.row(i), view.id_of(i));
    }
  }
  rebuilt.EnableFilterShadows(kShadowInt8);
  EXPECT_NE(0, std::memcmp(restored.snapshot().view().i8_scales(),
                           rebuilt.snapshot().view().i8_scales(),
                           kDims * sizeof(float)));
}

TEST(SnapshotRoundTrip, MultiDbImagePreservesOrder) {
  EmbeddedDatabase a(kLineDims), b(kLineDims);
  for (size_t id = 0; id < 4; ++id) {
    a.Append(Vector(kLineDims, test::XOf(id)), id);
  }
  b.Append(Vector(kLineDims, test::XOf(100)), 100);
  EmbeddedDatabase::Snapshot pa = a.snapshot();
  EmbeddedDatabase::Snapshot pb = b.snapshot();
  const std::string bytes =
      EncodeSnapshot(5, "", {pa.view(), pb.view()});
  StatusOr<SnapshotContents> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(2u, decoded->dbs.size());
  EmbeddedDatabase ra(kLineDims), rb(kLineDims);
  ASSERT_TRUE(InstallSnapshotDb(decoded->dbs[0], &ra).ok());
  ASSERT_TRUE(InstallSnapshotDb(decoded->dbs[1], &rb).ok());
  ExpectDbsIdentical(a, ra, "db 0");
  ExpectDbsIdentical(b, rb, "db 1");
}

TEST(SnapshotRoundTrip, InstallRejectsDimsMismatchOnNonEmptyImage) {
  EmbeddedDatabase source(kLineDims);
  source.Append(Vector(kLineDims, 0.5), 1);
  EmbeddedDatabase::Snapshot pin = source.snapshot();
  const std::string bytes = EncodeSnapshot(1, "", {pin.view()});
  StatusOr<SnapshotContents> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok());
  EmbeddedDatabase wrong_dims(kLineDims + 1);
  Status installed = InstallSnapshotDb(decoded->dbs[0], &wrong_dims);
  ASSERT_FALSE(installed.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, installed.code());
}

TEST(SnapshotRoundTrip, FileRoundTripAndMissingFile) {
  const std::string dir = ::testing::TempDir() + "/snapshot_roundtrip_file";
  ::mkdir(dir.c_str(), 0755);
  const std::string path = dir + "/snapshot.qse";
  std::remove(path.c_str());

  StatusOr<SnapshotContents> missing = ReadSnapshotFile(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(StatusCode::kNotFound, missing.status().code());

  EmbeddedDatabase source(kLineDims);
  source.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
  for (size_t id = 0; id < 12; ++id) {
    source.Append(Vector(kLineDims, test::XOf(id)), id);
  }
  EmbeddedDatabase::Snapshot pin = source.snapshot();
  const std::string bytes = EncodeSnapshot(12, "model", {pin.view()});
  ASSERT_TRUE(WriteSnapshotFile(path, bytes).ok());

  StatusOr<SnapshotContents> read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(12u, read->cut_seq);
  EXPECT_EQ("model", read->model_blob);
  EmbeddedDatabase restored(kLineDims);
  ASSERT_TRUE(InstallSnapshotDb(read->dbs[0], &restored).ok());
  ExpectDbsIdentical(source, restored, "file roundtrip");
}

}  // namespace
}  // namespace persist
}  // namespace qse
