#ifndef QSE_DISTANCE_SIMD_LANES_H_
#define QSE_DISTANCE_SIMD_LANES_H_

// Internal to the kernel translation units: the two fixed lane-reduction
// trees of the determinism contract (kernels.h).  Every ISA materializes
// its accumulator lanes into a plain array and reduces through exactly
// these expressions, so the final rounding sequence cannot differ
// between scalar, AVX2 and AVX-512 builds.

#include <cstddef>

namespace qse {
namespace simd {

/// Lane counts of the two disciplines.
inline constexpr size_t kF64Lanes = 4;
inline constexpr size_t kF32Lanes = 16;

/// The float64 reduction, verbatim from the pre-dispatch scalar kernels.
inline double ReduceF64Lanes(const double* l) {
  return (l[0] + l[1]) + (l[2] + l[3]);
}

/// The float32 fold-halves tree: 16 -> 8 -> 4 -> 2 -> 1, pairing lane j
/// with lane j + half.  This is the natural shape of a SIMD horizontal
/// reduction (add the extracted upper half, repeat), spelled out so the
/// scalar reference performs the identical rounding sequence.
inline float ReduceF32Lanes(const float* l) {
  float r8[8];
  for (size_t j = 0; j < 8; ++j) r8[j] = l[j] + l[j + 8];
  float r4[4];
  for (size_t j = 0; j < 4; ++j) r4[j] = r8[j] + r8[j + 4];
  float r2[2];
  for (size_t j = 0; j < 2; ++j) r2[j] = r4[j] + r4[j + 2];
  return r2[0] + r2[1];
}

}  // namespace simd
}  // namespace qse

#endif  // QSE_DISTANCE_SIMD_LANES_H_
