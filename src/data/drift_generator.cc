#include "src/data/drift_generator.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"
#include "src/util/random.h"

namespace qse {

const char* DriftKindName(DriftKind kind) {
  switch (kind) {
    case DriftKind::kNone:
      return "none";
    case DriftKind::kAbrupt:
      return "abrupt";
    case DriftKind::kGradual:
      return "gradual";
    case DriftKind::kRecurrent:
      return "recurrent";
  }
  return "invalid";
}

double DriftFactor(const DriftSchedule& schedule, size_t step) {
  if (schedule.kind == DriftKind::kNone || step < schedule.onset) return 0.0;
  const size_t since = step - schedule.onset;
  switch (schedule.kind) {
    case DriftKind::kNone:
      return 0.0;
    case DriftKind::kAbrupt:
      return 1.0;
    case DriftKind::kGradual: {
      const size_t ramp = std::max<size_t>(schedule.ramp, 1);
      return std::min(1.0, static_cast<double>(since + 1) /
                               static_cast<double>(ramp));
    }
    case DriftKind::kRecurrent: {
      const size_t period = std::max<size_t>(schedule.period, 1);
      // Drifted block first (the onset IS the first change), then clean,
      // alternating.
      return (since / period) % 2 == 0 ? 1.0 : 0.0;
    }
  }
  return 0.0;
}

DriftingPointOracle::DriftingPointOracle(size_t n, size_t dims,
                                         DriftSchedule schedule, uint64_t seed)
    : schedule_(schedule) {
  QSE_CHECK_MSG(dims > 0, "DriftingPointOracle needs dims > 0");
  Rng rng(seed);
  base_.reserve(n);
  dir_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vector point(dims);
    for (double& c : point) c = rng.Uniform(0, 1);
    base_.push_back(std::move(point));
    // Isotropic unit direction: normalized Gaussian deviates.
    Vector dir(dims);
    double norm2 = 0;
    do {
      norm2 = 0;
      for (double& c : dir) {
        c = rng.Gaussian();
        norm2 += c * c;
      }
    } while (norm2 == 0);
    const double inv = 1.0 / std::sqrt(norm2);
    for (double& c : dir) c *= inv;
    dir_.push_back(std::move(dir));
  }
}

double DriftingPointOracle::CurrentDisplacement() const {
  return DriftFactor(schedule_, step()) * schedule_.magnitude;
}

double DriftingPointOracle::Distance(size_t i, size_t j) const {
  // One step read per evaluation: every coordinate of this distance is
  // consistent with the same workload time.
  const double disp = CurrentDisplacement();
  const Vector& bi = base_[i];
  const Vector& bj = base_[j];
  const Vector& di = dir_[i];
  const Vector& dj = dir_[j];
  double sum = 0;
  for (size_t c = 0; c < bi.size(); ++c) {
    const double delta = (bi[c] + disp * di[c]) - (bj[c] + disp * dj[c]);
    sum += delta * delta;
  }
  return std::sqrt(sum);
}

Vector DriftingPointOracle::PositionAt(size_t i) const {
  const double disp = CurrentDisplacement();
  Vector pos = base_[i];
  for (size_t c = 0; c < pos.size(); ++c) pos[c] += disp * dir_[i][c];
  return pos;
}

}  // namespace qse
