#include "src/util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace qse {
namespace {

/// Runs the loop and asserts every index in [begin, end) was visited
/// exactly once.
void ExpectCoversExactlyOnce(size_t begin, size_t end, size_t grain,
                             size_t num_threads) {
  std::vector<std::atomic<int>> hits(end);
  for (auto& h : hits) h.store(0);
  ParallelForGrain(begin, end, grain,
                   [&](size_t i) { hits[i].fetch_add(1); }, num_threads);
  for (size_t i = 0; i < end; ++i) {
    EXPECT_EQ(hits[i].load(), i >= begin ? 1 : 0)
        << "i=" << i << " grain=" << grain << " threads=" << num_threads;
  }
}

TEST(ParallelForTest, DefaultParallelismIsPositive) {
  EXPECT_GE(DefaultParallelism(), 1u);
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  std::atomic<size_t> calls{0};
  ParallelFor(0, 0, [&](size_t) { calls.fetch_add(1); });
  ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  // begin > end is treated as empty, not as a huge wrapped range.
  ParallelFor(7, 3, [&](size_t) { calls.fetch_add(1); });
  ParallelForGrain(4, 4, 1, [&](size_t) { calls.fetch_add(1); }, 8);
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ParallelForTest, SingleItemRange) {
  ExpectCoversExactlyOnce(3, 4, 1, 4);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsSerialOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<size_t> calls{0};
  ParallelForGrain(0, 10, 1000,
                   [&](size_t) {
                     EXPECT_EQ(std::this_thread::get_id(), caller);
                     calls.fetch_add(1);
                   },
                   8);
  EXPECT_EQ(calls.load(), 10u);
}

TEST(ParallelForTest, NumThreadsOneRunsSerialInOrder) {
  std::vector<size_t> order;
  ParallelForGrain(2, 20, 1, [&](size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 18u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], 2 + i);
}

TEST(ParallelForTest, ZeroGrainIsSafe) {
  ExpectCoversExactlyOnce(0, 37, 0, 3);
}

TEST(ParallelForTest, NonZeroBeginParallelCoversExactlyOnce) {
  ExpectCoversExactlyOnce(11, 1000, 2, 4);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  ExpectCoversExactlyOnce(0, 3, 1, 16);
}

TEST(ParallelForTest, HardwareConcurrencyDefaultCoversLargeRange) {
  std::vector<std::atomic<int>> hits(5000);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, BodiesRunConcurrentlyAcrossThreadsWhenAsked) {
  // Not a strict requirement on a 1-core host, so only check that the
  // parallel path completes and sums correctly under contention.
  std::atomic<long long> sum{0};
  const size_t n = 10000;
  ParallelForGrain(0, n, 1, [&](size_t i) { sum.fetch_add((long long)i); },
                   4);
  EXPECT_EQ(sum.load(), (long long)n * (n - 1) / 2);
}

}  // namespace
}  // namespace qse
