#include "src/core/trainer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace qse {
namespace {

BoostMapConfig SmallConfig() {
  BoostMapConfig config;
  config.num_triples = 400;
  config.k1 = 3;
  config.boost.rounds = 12;
  config.boost.embeddings_per_round = 10;
  return config;
}

TEST(TrainerTest, TrainsOnPlaneData) {
  auto oracle = test::MakePlaneOracle(60, 1);
  auto result = TrainBoostMap(oracle, test::Iota(20), test::Iota(40, 20),
                              SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->model.dims(), 0u);
  EXPECT_FALSE(result->history.empty());
  EXPECT_LT(result->final_training_error, 0.35);
  EXPECT_GT(result->preprocessing_distances, 0u);
}

TEST(TrainerTest, RejectsEmptyCandidates) {
  auto oracle = test::MakePlaneOracle(20, 2);
  auto result = TrainBoostMap(oracle, {}, test::Iota(10), SmallConfig());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TrainerTest, RejectsTinyTrainingSet) {
  auto oracle = test::MakePlaneOracle(20, 3);
  auto result =
      TrainBoostMap(oracle, test::Iota(5), {5, 6, 7}, SmallConfig());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TrainerTest, RejectsOutOfRangeIds) {
  auto oracle = test::MakePlaneOracle(20, 4);
  auto bad_cand = TrainBoostMap(oracle, {0, 1, 99}, test::Iota(10, 3),
                                SmallConfig());
  EXPECT_EQ(bad_cand.status().code(), StatusCode::kOutOfRange);
  auto bad_train = TrainBoostMap(oracle, test::Iota(3), {4, 5, 6, 99},
                                 SmallConfig());
  EXPECT_EQ(bad_train.status().code(), StatusCode::kOutOfRange);
}

TEST(TrainerTest, RejectsBadK1) {
  auto oracle = test::MakePlaneOracle(20, 5);
  BoostMapConfig config = SmallConfig();
  config.sampling = TripleSampling::kSelective;
  config.k1 = 50;  // Larger than |Xtr| - 2.
  auto result =
      TrainBoostMap(oracle, test::Iota(5), test::Iota(10, 5), config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TrainerTest, RejectsZeroRounds) {
  auto oracle = test::MakePlaneOracle(20, 6);
  BoostMapConfig config = SmallConfig();
  config.boost.rounds = 0;
  auto result =
      TrainBoostMap(oracle, test::Iota(5), test::Iota(10, 5), config);
  ASSERT_FALSE(result.ok());
}

TEST(TrainerTest, RandomSamplingIgnoresK1) {
  auto oracle = test::MakePlaneOracle(30, 7);
  BoostMapConfig config = SmallConfig();
  config.sampling = TripleSampling::kRandom;
  config.k1 = 10000;  // Must be ignored for Ra sampling.
  auto result =
      TrainBoostMap(oracle, test::Iota(10), test::Iota(20, 10), config);
  EXPECT_TRUE(result.ok()) << result.status();
}

TEST(TrainerTest, AllFourPaperVariantsTrain) {
  auto oracle = test::MakePlaneOracle(60, 8);
  for (TripleSampling sampling :
       {TripleSampling::kRandom, TripleSampling::kSelective}) {
    for (bool qs : {false, true}) {
      BoostMapConfig config = SmallConfig();
      config.sampling = sampling;
      config.boost.query_sensitive = qs;
      auto result = TrainBoostMap(oracle, test::Iota(20),
                                  test::Iota(40, 20), config);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->model.query_sensitive(), qs);
      EXPECT_GT(result->model.dims(), 0u);
    }
  }
}

TEST(TrainerTest, PreprocessingCostIsQuadraticScale) {
  // |C| x |C| / 2 + |C| x |Xtr| + |Xtr| x |Xtr| / 2 (diagonals free and
  // shared objects free).
  auto oracle = test::MakePlaneOracle(30, 9);
  auto result = TrainBoostMap(oracle, test::Iota(10), test::Iota(20, 10),
                              SmallConfig());
  ASSERT_TRUE(result.ok());
  size_t expected = 10 * 9 / 2 + 10 * 20 + 20 * 19 / 2;
  EXPECT_EQ(result->preprocessing_distances, expected);
}

}  // namespace
}  // namespace qse
