// Parity suite for the runtime-dispatched filter kernels: every
// (ISA x precision) kernel is run against the scalar reference across
// dimension counts chosen to hit every remainder-loop edge, asserting
// bit-identity for same-precision paths and the documented error
// envelope for reduced-precision paths.  This TU compiles baseline
// x86-64 (no FMA instructions exist there), so the hand-written
// pre-dispatch reference below cannot be contracted away from the
// four-lane discipline it pins.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/distance/simd/dispatch.h"
#include "src/distance/simd/kernels.h"
#include "src/retrieval/filter_precision.h"
#include "src/util/random.h"

namespace qse {
namespace simd {
namespace {

// Every remainder edge: below/at/above one f64 vector step (4), one f32
// step (16 via 63..65), one abandon block (64), and a multi-block scan
// with tails (255..257).
const size_t kDims[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 63, 64, 65, 255, 256, 257};

const double kInf64 = std::numeric_limits<double>::infinity();
const float kInf32 = std::numeric_limits<float>::infinity();

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

uint32_t Bits(float v) {
  uint32_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// Whether this CPU can actually execute a tier's kernels.  KernelsFor
/// answers whether the BUILD has them; both must hold to run one here.
bool CpuSupports(SimdLevel level) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
      return __builtin_cpu_supports("avx2");
    case SimdLevel::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
  }
#endif
  return level == SimdLevel::kScalar;
}

struct Tier {
  SimdLevel level;
  const KernelTable* table;
};

/// All tiers this binary compiled AND this machine can execute.  Always
/// contains at least the scalar tier.
std::vector<Tier> RunnableTiers() {
  std::vector<Tier> tiers;
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    const KernelTable* table = KernelsFor(level);
    if (table != nullptr && CpuSupports(level)) tiers.push_back({level, table});
  }
  return tiers;
}

/// One dimension count's worth of inputs in every precision the kernels
/// consume, derived from the same float64 draw the way the engine does:
/// float32 shadows by narrowing, int8 shadows by symmetric quantization
/// under per-dimension scales with the query quantized under the row
/// scales (and so possibly clamped — the bounds cover that via the exact
/// query residual).
struct KernelInputs {
  std::vector<double> q, x, w;
  std::vector<float> qf, xf, wf;
  std::vector<int8_t> qq, xq;
  std::vector<float> scales;

  explicit KernelInputs(size_t d, uint64_t seed) {
    Rng rng(seed);
    q.resize(d);
    x.resize(d);
    w.resize(d);
    for (size_t j = 0; j < d; ++j) {
      q[j] = rng.Uniform(-2.0, 2.0);  // Wider than rows: exercises clamping.
      x[j] = rng.Uniform(-1.0, 1.0);
      w[j] = rng.Uniform(0.0, 3.0);
    }
    qf.assign(q.begin(), q.end());
    xf.assign(x.begin(), x.end());
    wf.assign(w.begin(), w.end());
    scales.resize(d);
    qq.resize(d);
    xq.resize(d);
    for (size_t j = 0; j < d; ++j) {
      scales[j] = static_cast<float>(std::fabs(x[j]) / 127.0);
      qq[j] = QuantizeToInt8(q[j], scales[j]);
      xq[j] = QuantizeToInt8(x[j], scales[j]);
      EXPECT_TRUE(FitsInt8(x[j], scales[j])) << "dim " << j;
    }
  }

  /// The int8 weighted-L1 coefficients the QuerySensitiveScorer builds:
  /// c_j = w_j * s_j, multiplied in double then narrowed once.
  std::vector<float> WeightedL1Coeffs() const {
    std::vector<float> c(scales.size());
    for (size_t j = 0; j < c.size(); ++j) {
      c[j] = static_cast<float>(w[j] * static_cast<double>(scales[j]));
    }
    return c;
  }

  /// The int8 squared-L2 coefficients the L2 scorer builds: c_j = s_j^2.
  std::vector<float> SquaredL2Coeffs() const {
    std::vector<float> c(scales.size());
    for (size_t j = 0; j < c.size(); ++j) {
      double s = static_cast<double>(scales[j]);
      c[j] = static_cast<float>(s * s);
    }
    return c;
  }
};

void ExpectEnvelope(double exact, double approx,
                    const ReducedPrecisionBound& bound, const char* what,
                    size_t d) {
  EXPECT_LE(std::fabs(approx - exact),
            bound.additive + bound.relative * (exact + approx))
      << what << " d=" << d << " exact=" << exact << " approx=" << approx;
}

// --- Pre-dispatch reference: the original span-kernel discipline -------
//
// Copies of the four-lane loops that lived in lp.cc / weighted_l1.cc
// before the dispatch layer, without blocking (they had no early
// abandon).  The scalar f64 kernels must reproduce them bit for bit at
// abandon = +inf, which is what ties the whole parity chain back to the
// pre-PR golden results.

double RefL1(const double* a, const double* b, size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += std::fabs(a[i] - b[i]);
    l1 += std::fabs(a[i + 1] - b[i + 1]);
    l2 += std::fabs(a[i + 2] - b[i + 2]);
    l3 += std::fabs(a[i + 3] - b[i + 3]);
  }
  for (; i < n; ++i) l0 += std::fabs(a[i] - b[i]);
  return (l0 + l1) + (l2 + l3);
}

double RefL2(const double* a, const double* b, size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double d0 = a[i] - b[i];
    double d1 = a[i + 1] - b[i + 1];
    double d2 = a[i + 2] - b[i + 2];
    double d3 = a[i + 3] - b[i + 3];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  for (; i < n; ++i) {
    double d0 = a[i] - b[i];
    l0 += d0 * d0;
  }
  return (l0 + l1) + (l2 + l3);
}

double RefWl1(const double* a, const double* b, const double* w, size_t n) {
  double l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += w[i] * std::fabs(a[i] - b[i]);
    l1 += w[i + 1] * std::fabs(a[i + 1] - b[i + 1]);
    l2 += w[i + 2] * std::fabs(a[i + 2] - b[i + 2]);
    l3 += w[i + 3] * std::fabs(a[i + 3] - b[i + 3]);
  }
  for (; i < n; ++i) l0 += w[i] * std::fabs(a[i] - b[i]);
  return (l0 + l1) + (l2 + l3);
}

TEST(KernelParityTest, ScalarF64MatchesPreDispatchReference) {
  for (size_t d : kDims) {
    KernelInputs in(d, 0x1000 + d);
    const KernelTable* k = ScalarKernels();
    EXPECT_EQ(Bits(k->l1_f64(in.q.data(), in.x.data(), d, kInf64)),
              Bits(RefL1(in.q.data(), in.x.data(), d)))
        << "l1 d=" << d;
    EXPECT_EQ(Bits(k->l2_f64(in.q.data(), in.x.data(), d, kInf64)),
              Bits(RefL2(in.q.data(), in.x.data(), d)))
        << "l2 d=" << d;
    EXPECT_EQ(
        Bits(k->wl1_f64(in.q.data(), in.x.data(), in.w.data(), d, kInf64)),
        Bits(RefWl1(in.q.data(), in.x.data(), in.w.data(), d)))
        << "wl1 d=" << d;
  }
}

TEST(KernelParityTest, F64KernelsBitIdenticalAcrossIsas) {
  const KernelTable* ref = ScalarKernels();
  for (const Tier& tier : RunnableTiers()) {
    for (size_t d : kDims) {
      KernelInputs in(d, 0x2000 + d);
      EXPECT_EQ(Bits(tier.table->l1_f64(in.q.data(), in.x.data(), d, kInf64)),
                Bits(ref->l1_f64(in.q.data(), in.x.data(), d, kInf64)))
          << SimdLevelName(tier.level) << " l1 d=" << d;
      EXPECT_EQ(Bits(tier.table->l2_f64(in.q.data(), in.x.data(), d, kInf64)),
                Bits(ref->l2_f64(in.q.data(), in.x.data(), d, kInf64)))
          << SimdLevelName(tier.level) << " l2 d=" << d;
      EXPECT_EQ(Bits(tier.table->wl1_f64(in.q.data(), in.x.data(), in.w.data(),
                                         d, kInf64)),
                Bits(ref->wl1_f64(in.q.data(), in.x.data(), in.w.data(), d,
                                  kInf64)))
          << SimdLevelName(tier.level) << " wl1 d=" << d;
    }
  }
}

TEST(KernelParityTest, F32KernelsBitIdenticalAcrossIsas) {
  const KernelTable* ref = ScalarKernels();
  for (const Tier& tier : RunnableTiers()) {
    for (size_t d : kDims) {
      KernelInputs in(d, 0x3000 + d);
      EXPECT_EQ(
          Bits(tier.table->l1_f32(in.qf.data(), in.xf.data(), d, kInf32)),
          Bits(ref->l1_f32(in.qf.data(), in.xf.data(), d, kInf32)))
          << SimdLevelName(tier.level) << " l1 d=" << d;
      EXPECT_EQ(
          Bits(tier.table->l2_f32(in.qf.data(), in.xf.data(), d, kInf32)),
          Bits(ref->l2_f32(in.qf.data(), in.xf.data(), d, kInf32)))
          << SimdLevelName(tier.level) << " l2 d=" << d;
      EXPECT_EQ(Bits(tier.table->wl1_f32(in.qf.data(), in.xf.data(),
                                         in.wf.data(), d, kInf32)),
                Bits(ref->wl1_f32(in.qf.data(), in.xf.data(), in.wf.data(), d,
                                  kInf32)))
          << SimdLevelName(tier.level) << " wl1 d=" << d;
    }
  }
}

TEST(KernelParityTest, I8KernelsBitIdenticalAcrossIsas) {
  const KernelTable* ref = ScalarKernels();
  for (const Tier& tier : RunnableTiers()) {
    for (size_t d : kDims) {
      KernelInputs in(d, 0x4000 + d);
      std::vector<float> c1 = in.WeightedL1Coeffs();
      std::vector<float> c2 = in.SquaredL2Coeffs();
      EXPECT_EQ(Bits(tier.table->wl1_i8(in.qq.data(), in.xq.data(), c1.data(),
                                        d, kInf32)),
                Bits(ref->wl1_i8(in.qq.data(), in.xq.data(), c1.data(), d,
                                 kInf32)))
          << SimdLevelName(tier.level) << " wl1 d=" << d;
      EXPECT_EQ(Bits(tier.table->wl2_i8(in.qq.data(), in.xq.data(), c2.data(),
                                        d, kInf32)),
                Bits(ref->wl2_i8(in.qq.data(), in.xq.data(), c2.data(), d,
                                 kInf32)))
          << SimdLevelName(tier.level) << " wl2 d=" << d;
    }
  }
}

TEST(KernelParityTest, F32KernelsWithinDocumentedEnvelope) {
  const KernelTable* ref = ScalarKernels();
  for (const Tier& tier : RunnableTiers()) {
    for (size_t d : kDims) {
      KernelInputs in(d, 0x5000 + d);
      {
        double exact =
            ref->wl1_f64(in.q.data(), in.x.data(), in.w.data(), d, kInf64);
        double approx = tier.table->wl1_f32(in.qf.data(), in.xf.data(),
                                            in.wf.data(), d, kInf32);
        ExpectEnvelope(exact, approx,
                       F32BoundWeightedL1(in.w.data(), in.q.data(), d),
                       "f32 wl1", d);
      }
      {
        double exact = ref->l1_f64(in.q.data(), in.x.data(), d, kInf64);
        double approx =
            tier.table->l1_f32(in.qf.data(), in.xf.data(), d, kInf32);
        ExpectEnvelope(exact, approx,
                       F32BoundWeightedL1(nullptr, in.q.data(), d), "f32 l1",
                       d);
      }
      {
        double exact = ref->l2_f64(in.q.data(), in.x.data(), d, kInf64);
        double approx =
            tier.table->l2_f32(in.qf.data(), in.xf.data(), d, kInf32);
        ExpectEnvelope(exact, approx, F32BoundSquaredL2(in.q.data(), d),
                       "f32 l2", d);
      }
    }
  }
}

TEST(KernelParityTest, I8KernelsWithinDocumentedEnvelope) {
  const KernelTable* ref = ScalarKernels();
  for (const Tier& tier : RunnableTiers()) {
    for (size_t d : kDims) {
      KernelInputs in(d, 0x6000 + d);
      {
        std::vector<float> c = in.WeightedL1Coeffs();
        double exact =
            ref->wl1_f64(in.q.data(), in.x.data(), in.w.data(), d, kInf64);
        double approx =
            tier.table->wl1_i8(in.qq.data(), in.xq.data(), c.data(), d, kInf32);
        ExpectEnvelope(exact, approx,
                       I8BoundWeightedL1(in.w.data(), in.q.data(), in.qq.data(),
                                         in.scales.data(), d),
                       "i8 wl1", d);
      }
      {
        // Unweighted L1 routes through the same kernel with c = scales.
        double exact = ref->l1_f64(in.q.data(), in.x.data(), d, kInf64);
        double approx = tier.table->wl1_i8(in.qq.data(), in.xq.data(),
                                           in.scales.data(), d, kInf32);
        ExpectEnvelope(exact, approx,
                       I8BoundWeightedL1(nullptr, in.q.data(), in.qq.data(),
                                         in.scales.data(), d),
                       "i8 l1", d);
      }
      {
        std::vector<float> c = in.SquaredL2Coeffs();
        double exact = ref->l2_f64(in.q.data(), in.x.data(), d, kInf64);
        double approx =
            tier.table->wl2_i8(in.qq.data(), in.xq.data(), c.data(), d, kInf32);
        ExpectEnvelope(exact, approx,
                       I8BoundSquaredL2(in.q.data(), in.qq.data(),
                                        in.scales.data(), d),
                       "i8 l2", d);
      }
    }
  }
}

TEST(KernelParityTest, AbandonNeverFiresBelowThresholdAndCompletesExactly) {
  for (const Tier& tier : RunnableTiers()) {
    for (size_t d : kDims) {
      KernelInputs in(d, 0x7000 + d);
      const KernelTable* k = tier.table;

      double full64 =
          k->wl1_f64(in.q.data(), in.x.data(), in.w.data(), d, kInf64);
      ASSERT_GT(full64, 0.0);
      // abandon == the full score: no strict prefix of non-negative terms
      // can exceed it, so the kernel must complete and return it exactly.
      EXPECT_EQ(Bits(k->wl1_f64(in.q.data(), in.x.data(), in.w.data(), d,
                                full64)),
                Bits(full64))
          << SimdLevelName(tier.level) << " d=" << d;
      // A lower threshold may abandon mid-row; whatever partial comes
      // back must still exceed the threshold (that is all callers use).
      double r64 =
          k->wl1_f64(in.q.data(), in.x.data(), in.w.data(), d, full64 * 0.5);
      EXPECT_GT(r64, full64 * 0.5) << SimdLevelName(tier.level) << " d=" << d;

      float full32 =
          k->wl1_f32(in.qf.data(), in.xf.data(), in.wf.data(), d, kInf32);
      ASSERT_GT(full32, 0.0f);
      EXPECT_EQ(Bits(k->wl1_f32(in.qf.data(), in.xf.data(), in.wf.data(), d,
                                full32)),
                Bits(full32))
          << SimdLevelName(tier.level) << " d=" << d;
      float r32 = k->wl1_f32(in.qf.data(), in.xf.data(), in.wf.data(), d,
                             full32 * 0.5f);
      EXPECT_GT(r32, full32 * 0.5f)
          << SimdLevelName(tier.level) << " d=" << d;

      std::vector<float> c = in.WeightedL1Coeffs();
      float full8 = k->wl1_i8(in.qq.data(), in.xq.data(), c.data(), d, kInf32);
      EXPECT_EQ(Bits(k->wl1_i8(in.qq.data(), in.xq.data(), c.data(), d, full8)),
                Bits(full8))
          << SimdLevelName(tier.level) << " d=" << d;
      if (full8 > 0.0f) {
        float r8 =
            k->wl1_i8(in.qq.data(), in.xq.data(), c.data(), d, full8 * 0.5f);
        EXPECT_GT(r8, full8 * 0.5f) << SimdLevelName(tier.level) << " d=" << d;
      }
    }
  }
}

// --- Dispatch resolution ------------------------------------------------

TEST(SimdDispatchTest, ActiveKernelsMatchActiveLevel) {
  const KernelTable* active = ActiveKernels();
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active, KernelsFor(ActiveSimdLevel()));
  // Whatever tier won, this machine must be able to run it.
  EXPECT_TRUE(CpuSupports(ActiveSimdLevel()));
}

TEST(SimdDispatchTest, ForceScalarOverridesEverything) {
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx512, "1", nullptr),
            SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx2, "yes", "avx512"),
            SimdLevel::kScalar);
  // An EMPTY value does not count as set.
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx2, "", nullptr), SimdLevel::kAvx2);
}

TEST(SimdDispatchTest, LevelOverrideClampsDownNeverUp) {
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx512, nullptr, "avx2"),
            SimdLevel::kAvx2);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx512, nullptr, "scalar"),
            SimdLevel::kScalar);
  // Requesting above what the build/CPU supports clamps to best.
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx2, nullptr, "avx512"),
            SimdLevel::kAvx2);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kScalar, nullptr, "avx2"),
            SimdLevel::kScalar);
  // Unknown strings are ignored.
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx2, nullptr, "sse9"),
            SimdLevel::kAvx2);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAvx512, nullptr, nullptr),
            SimdLevel::kAvx512);
}

TEST(SimdDispatchTest, TierNamesAreStable) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx512), "avx512");
}

// --- Widening helpers ---------------------------------------------------

TEST(FilterPrecisionTest, FloatAtLeastNeverRoundsBelow) {
  for (double x : {0.0, 1.0, 1e-30, 3.14159, 1e30, 0.1, 1.0000000001}) {
    float f = FloatAtLeast(x);
    EXPECT_GE(static_cast<double>(f), x) << x;
    // And it is the SMALLEST such float: one step down is below x
    // (unless f == x exactly in float already).
    if (static_cast<double>(f) > x) {
      EXPECT_LT(static_cast<double>(std::nextafterf(
                    f, -std::numeric_limits<float>::infinity())),
                x)
          << x;
    }
  }
}

TEST(FilterPrecisionTest, WidenedThresholdKeepsAbandonmentSound) {
  ReducedPrecisionBound bound{0.125, 1e-3};
  double t = 10.0;
  double w = WidenedAbandonThreshold(t, bound);
  EXPECT_GT(w, t);
  // If approx > w then exact > t: check the algebra at the boundary.
  // exact >= (approx * (1 - rel) - add) / (1 + rel); plug approx = w.
  double exact_min = (w * (1.0 - bound.relative) - bound.additive) /
                     (1.0 + bound.relative);
  EXPECT_GE(exact_min, t - 1e-12);
  // Degenerate envelopes disable abandonment instead of mis-widening.
  EXPECT_TRUE(std::isinf(WidenedAbandonThreshold(t, {0.0, 1.0})));
  EXPECT_TRUE(std::isinf(
      WidenedAbandonThreshold(std::numeric_limits<double>::infinity(), bound)));
}

TEST(FilterPrecisionTest, QuantizeRoundTripsWithinHalfStep) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(-5.0, 5.0);
    float scale = static_cast<float>(rng.Uniform(0.05, 0.1));
    int8_t qx = QuantizeToInt8(x, scale);
    if (FitsInt8(x, scale)) {
      EXPECT_LE(std::fabs(x - static_cast<double>(scale) * qx),
                0.5 * scale + 1e-9)
          << x << " scale " << scale;
    }
    EXPECT_GE(qx, -127);
    EXPECT_LE(qx, 127);
  }
  EXPECT_EQ(QuantizeToInt8(123.0, 0.0f), 0);  // Dead dimension.
  EXPECT_EQ(QuantizeToInt8(1e9, 0.5f), 127);  // Clamped.
  EXPECT_EQ(QuantizeToInt8(-1e9, 0.5f), -127);
}

}  // namespace
}  // namespace simd
}  // namespace qse
