#ifndef QSE_UTIL_STATS_H_
#define QSE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace qse {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Unbiased sample variance (n - 1 denominator); 0 for fewer than 2 samples.
double Variance(const std::vector<double>& xs);

/// Sample standard deviation.
double StdDev(const std::vector<double>& xs);

/// q-quantile (q in [0, 1]) of `xs` using the nearest-rank (ceil) method:
/// the smallest value v such that at least ceil(q * n) samples are <= v.
/// This matches the paper's accuracy criterion: with p set to the
/// B%-quantile of per-query required candidate counts, at least B% of the
/// queries succeed.  Requires a non-empty input; does not modify `xs`.
double QuantileNearestRank(std::vector<double> xs, double q);

/// Median via QuantileNearestRank(xs, 0.5).
double Median(std::vector<double> xs);

/// Min / max of a non-empty vector.
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Pearson correlation of two equal-length vectors (0 if degenerate).
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Five-number style summary used in experiment reports.
struct Summary {
  size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double median = 0;
  double max = 0;
};

Summary Summarize(const std::vector<double>& xs);

}  // namespace qse

#endif  // QSE_UTIL_STATS_H_
