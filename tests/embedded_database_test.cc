#include "src/retrieval/embedded_database.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace qse {
namespace {

TEST(EmbeddedDatabaseTest, StartsEmpty) {
  EmbeddedDatabase db(4);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.dims(), 4u);
  EXPECT_TRUE(db.empty());
}

TEST(EmbeddedDatabaseTest, AppendStoresRowsContiguously) {
  EmbeddedDatabase db(3);
  EXPECT_EQ(db.Append({1, 2, 3}), 0u);
  EXPECT_EQ(db.Append({4, 5, 6}), 1u);
  EXPECT_EQ(db.size(), 2u);
  // One flat buffer, row-major.
  EXPECT_EQ(db.data(), (Aligned64Vector<double>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(db.row(1)[0], 4.0);
  EXPECT_EQ(db.row(1) - db.row(0), 3);  // Adjacent rows, no gaps.
}

TEST(EmbeddedDatabaseTest, FromRowsRoundTripsThroughRowVector) {
  std::vector<Vector> rows = {{0.5, -1}, {2, 3}, {4, 5}};
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(rows);
  ASSERT_EQ(db.size(), 3u);
  ASSERT_EQ(db.dims(), 2u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(db.RowVector(i), rows[i]);
  }
}

TEST(EmbeddedDatabaseTest, SetRowOverwritesInPlace) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{1, 1}, {2, 2}});
  db.SetRow(0, {9, 8});
  EXPECT_EQ(db.RowVector(0), (Vector{9, 8}));
  EXPECT_EQ(db.RowVector(1), (Vector{2, 2}));
}

TEST(EmbeddedDatabaseTest, SwapRemoveMiddleMovesLastRow) {
  EmbeddedDatabase db =
      EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  size_t moved_from = db.SwapRemove(1);
  EXPECT_EQ(moved_from, 3u);  // Former last row now lives at slot 1.
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.RowVector(1), (Vector{3, 3}));
  EXPECT_EQ(db.RowVector(2), (Vector{2, 2}));
}

TEST(EmbeddedDatabaseTest, SwapRemoveLastMovesNothing) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0, 0}, {1, 1}});
  size_t moved_from = db.SwapRemove(1);
  EXPECT_EQ(moved_from, 1u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.RowVector(0), (Vector{0, 0}));
}

TEST(EmbeddedDatabaseTest, ResizeZeroFillsNewRows) {
  EmbeddedDatabase db(2);
  db.Resize(3);
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.RowVector(2), (Vector{0, 0}));
  db.mutable_row(1)[0] = 7;
  EXPECT_EQ(db.RowVector(1), (Vector{7, 0}));
}

TEST(EmbeddedDatabaseTest, AppendBorrowedRowMayAliasOwnBuffer) {
  // Append(const double*) must survive a source pointing into this
  // database's own buffer even when the append forces a reallocation.
  EmbeddedDatabase db(2);
  db.Append({1, 2});
  for (int i = 0; i < 100; ++i) {
    size_t row = db.Append(db.row(db.size() - 1));
    EXPECT_EQ(row, static_cast<size_t>(i) + 1);
  }
  ASSERT_EQ(db.size(), 101u);
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db.RowVector(i), (Vector{1, 2})) << i;
  }
}

TEST(EmbeddedDatabaseTest, ReserveOnDimensionlessDatabaseIsSafeNoOp) {
  // Regression: Reserve on a dims() == 0 database used to reserve zero
  // bytes and still walk the hugepage-advise path.  It must be a true
  // no-op: no allocation, and the database stays fully usable.
  EmbeddedDatabase db;
  ASSERT_EQ(db.dims(), 0u);
  db.Reserve(1u << 20);
  EXPECT_EQ(db.data().capacity(), 0u);
  EXPECT_TRUE(db.empty());
  // FromRows({}) funnels through the same path (dims 0, Reserve(0)).
  EmbeddedDatabase empty = EmbeddedDatabase::FromRows({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.dims(), 0u);
}

TEST(EmbeddedDatabaseTest, ReserveGrowsCapacityOnce) {
  EmbeddedDatabase db(3);
  db.Reserve(100);
  size_t cap = db.data().capacity();
  EXPECT_GE(cap, 300u);
  // A smaller (or equal) reservation must not touch the buffer again.
  db.Reserve(50);
  EXPECT_EQ(db.data().capacity(), cap);
  db.Append({1, 2, 3});
  EXPECT_EQ(db.RowVector(0), (Vector{1, 2, 3}));
}

TEST(EmbeddedDatabaseTest, AppendAfterResizeKeepsData) {
  EmbeddedDatabase db(2);
  db.Resize(1);
  db.SetRow(0, {1, 2});
  EXPECT_EQ(db.Append({3, 4}), 1u);
  EXPECT_EQ(db.data(), (Aligned64Vector<double>{1, 2, 3, 4}));
}

// --- Epoch snapshots: what pinned readers observe under mutation --------

TEST(EmbeddedDatabaseTest, SnapshotIsImmuneToAppend) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{1, 1}, {2, 2}});
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  // Append enough to force a copy-on-write reallocation.
  for (int i = 0; i < 64; ++i) db.Append({9, 9});
  EXPECT_EQ(snap->size(), 2u);
  EXPECT_EQ(snap->row(0)[0], 1.0);
  EXPECT_EQ(snap->row(1)[1], 2.0);
  EXPECT_EQ(db.size(), 66u);
  // A fresh snapshot sees the appended state.
  EXPECT_EQ(db.snapshot()->size(), 66u);
}

TEST(EmbeddedDatabaseTest, SnapshotIsImmuneToInteriorRemove) {
  EmbeddedDatabase db =
      EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  db.SwapRemove(1);  // Interior: swaps {3,3} into slot 1 via CoW.
  // The pinned reader still sees the pre-remove layout, untouched.
  ASSERT_EQ(snap->size(), 4u);
  EXPECT_EQ(snap->row(1)[0], 1.0);
  EXPECT_EQ(snap->row(3)[0], 3.0);
  // The current state has the swapped layout.
  EXPECT_EQ(db.RowVector(1), (Vector{3, 3}));
  EXPECT_EQ(db.size(), 3u);
}

TEST(EmbeddedDatabaseTest, SwapRemoveLastShortCircuitsWithoutCopy) {
  EmbeddedDatabase db =
      EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {2, 2}});
  const double* before = db.snapshot()->data();
  size_t moved_from = db.SwapRemove(2);
  EXPECT_EQ(moved_from, 2u);  // Nothing moved.
  // Same buffer republished with a smaller count: the O(1) fast path,
  // not a copy-on-write (an interior remove would swap buffers).
  EXPECT_EQ(db.snapshot()->data(), before);
  EXPECT_EQ(db.size(), 2u);
  size_t interior = db.SwapRemove(0);
  EXPECT_EQ(interior, 1u);
  EXPECT_NE(db.snapshot()->data(), before);
  EXPECT_EQ(db.RowVector(0), (Vector{1, 1}));
}

TEST(EmbeddedDatabaseTest, VacatedLastSlotIsNotRewrittenUnderAPin) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0, 0}, {1, 1}});
  db.Reserve(8);  // Plenty of capacity: only the pin forces the copy.
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  ASSERT_EQ(snap->size(), 2u);
  db.SwapRemove(1);      // O(1) shrink; slot 1 still pinned by `snap`.
  db.Append({7, 7}, 7);  // Would land in slot 1 — must copy instead.
  // The pinned reader's row 1 is intact...
  EXPECT_EQ(snap->row(1)[0], 1.0);
  EXPECT_EQ(snap->row(1)[1], 1.0);
  // ...and the new state has the fresh row.
  EXPECT_EQ(db.RowVector(1), (Vector{7, 7}));
  EXPECT_EQ(db.id_of(1), 7u);
}

TEST(EmbeddedDatabaseTest, IdColumnFollowsMutations) {
  EmbeddedDatabase db(1);
  db.Append({0.5}, 10);
  db.Append({1.5}, 11);
  db.Append({2.5}, 12);
  EXPECT_EQ(db.id_of(0), 10u);
  EXPECT_EQ(db.id_of(2), 12u);
  db.SwapRemove(0);  // id 12's row swaps into slot 0.
  EXPECT_EQ(db.id_of(0), 12u);
  EXPECT_EQ(db.id_of(1), 11u);
  EXPECT_EQ(db.ids(), (std::vector<size_t>{12, 11}));
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  EXPECT_EQ(snap->id_of(0), 12u);
  db.AssignIds({20, 21});
  EXPECT_EQ(db.id_of(0), 20u);
}

TEST(EmbeddedDatabaseTest, CopyIsDeepAndIndependent) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{1, 2}, {3, 4}});
  db.AssignIds({5, 6});
  EmbeddedDatabase copy = db;
  db.SwapRemove(0);
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.RowVector(0), (Vector{1, 2}));
  EXPECT_EQ(copy.id_of(0), 5u);
  EXPECT_EQ(copy.id_of(1), 6u);
}

// --- 64-byte alignment and mixed-precision filter shadows ---------------

bool Aligned64(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % 64 == 0;
}

/// Every invariant the scorer's error envelope leans on: the float32
/// shadow is the narrowed float64 row, the int8 shadow round-trips
/// within half a quantization step, and every stored value fits its
/// dimension's scale (the re-quantization trigger keeps this true).
void ExpectShadowsConsistent(const EmbeddedDatabase::View& view) {
  for (size_t i = 0; i < view.size(); ++i) {
    const double* row = view.row(i);
    for (size_t j = 0; j < view.dims(); ++j) {
      if (view.has_f32()) {
        EXPECT_EQ(view.row_f32(i)[j], static_cast<float>(row[j]))
            << "row " << i << " dim " << j;
      }
      if (view.has_i8()) {
        float s = view.i8_scales()[j];
        EXPECT_TRUE(FitsInt8(row[j], s))
            << "row " << i << " dim " << j << " value " << row[j]
            << " scale " << s;
        EXPECT_LE(
            std::fabs(row[j] - static_cast<double>(s) * view.row_i8(i)[j]),
            0.5 * static_cast<double>(s) + 1e-12)
            << "row " << i << " dim " << j;
      }
    }
  }
}

TEST(EmbeddedDatabaseTest, RowStorageStays64ByteAlignedAcrossGrowth) {
  // dims = 7: rows are 56 bytes, so alignment of row 1+ would break if
  // anyone "fixed" alignment by padding strides instead of the base —
  // the contract is an aligned BASE pointer with dense rows.
  EmbeddedDatabase db(7);
  db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    Vector row(7);
    for (double& v : row) v = rng.Uniform(-1.0, 1.0);
    db.Append(row);
    // Append-driven growth reallocates through AlignedAllocator every
    // time capacity doubles; the base must stay 64-byte aligned at every
    // size, not just the first allocation.
    EXPECT_TRUE(Aligned64(db.data().data())) << "after append " << i;
    EmbeddedDatabase::Snapshot snap = db.snapshot();
    EXPECT_TRUE(Aligned64(snap->data_f32())) << "after append " << i;
    EXPECT_TRUE(Aligned64(snap->data_i8())) << "after append " << i;
  }
  ExpectShadowsConsistent(db.snapshot().view());
}

TEST(EmbeddedDatabaseTest, ViewsBeforeEnableFilterShadowsCarryNone) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(db.filter_shadows(), 0u);
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  EXPECT_EQ(snap->shadows(), 0u);
  EXPECT_FALSE(snap->has_f32());
  EXPECT_FALSE(snap->has_i8());
}

TEST(EmbeddedDatabaseTest, EnableFilterShadowsBuildsBothCopies) {
  Rng rng(11);
  std::vector<Vector> rows(17, Vector(5));
  for (Vector& r : rows) {
    for (double& v : r) v = rng.Uniform(-3.0, 3.0);
  }
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(rows);
  db.EnableFilterShadows(kShadowFloat32);
  EXPECT_EQ(db.filter_shadows(), kShadowFloat32);
  {
    EmbeddedDatabase::Snapshot snap = db.snapshot();
    EXPECT_TRUE(snap->has_f32());
    EXPECT_FALSE(snap->has_i8());
    ExpectShadowsConsistent(snap.view());
  }
  // Bits accumulate across calls.
  db.EnableFilterShadows(kShadowInt8);
  EXPECT_EQ(db.filter_shadows(), kShadowFloat32 | kShadowInt8);
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  EXPECT_TRUE(snap->has_f32());
  EXPECT_TRUE(snap->has_i8());
  ExpectShadowsConsistent(snap.view());
}

TEST(EmbeddedDatabaseTest, AppendMaintainsShadowsThroughGrowth) {
  EmbeddedDatabase db(3);
  db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    Vector row(3);
    for (double& v : row) v = rng.Uniform(-1.0, 1.0);
    db.Append(row);
  }
  ASSERT_EQ(db.size(), 100u);
  ExpectShadowsConsistent(db.snapshot().view());
}

TEST(EmbeddedDatabaseTest, AppendOutOfRangeRequantizesWholeMatrix) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(
      {{0.5, -0.25}, {0.125, 0.75}, {-0.5, 0.5}});
  db.EnableFilterShadows(kShadowInt8);
  float scale_before;
  {
    EmbeddedDatabase::Snapshot snap = db.snapshot();
    scale_before = snap->i8_scales()[0];
    ASSERT_GT(scale_before, 0.0f);
    ASSERT_FALSE(FitsInt8(100.0, scale_before));
  }
  // 100.0 cannot quantize under the old dimension-0 scale: the append
  // must re-quantize every row under grown scales, not clamp the new
  // one into the envelope-breaking range.
  db.Append({100.0, 0.5});
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  EXPECT_GT(snap->i8_scales()[0], scale_before);
  ASSERT_EQ(snap->size(), 4u);
  ExpectShadowsConsistent(snap.view());
}

TEST(EmbeddedDatabaseTest, SwapRemoveMaintainsShadows) {
  Rng rng(17);
  std::vector<Vector> rows(8, Vector(4));
  for (Vector& r : rows) {
    for (double& v : r) v = rng.Uniform(-2.0, 2.0);
  }
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(rows);
  db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
  db.SwapRemove(2);  // Interior: copy-on-write, shadows follow the swap.
  ASSERT_EQ(db.size(), 7u);
  ExpectShadowsConsistent(db.snapshot().view());
  db.SwapRemove(db.size() - 1);  // Last row: O(1) shrink, shadows shrink.
  ASSERT_EQ(db.size(), 6u);
  ExpectShadowsConsistent(db.snapshot().view());
}

TEST(EmbeddedDatabaseTest, SetRowAndResizeMaintainShadows) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0.5, 0.5}, {0.25, -0.5}});
  db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
  db.SetRow(0, {0.125, 0.0625});
  ExpectShadowsConsistent(db.snapshot().view());
  db.SetRow(1, {50.0, 0.5});  // Out of range: requantization path.
  ExpectShadowsConsistent(db.snapshot().view());
  db.Resize(5);  // Zero-filled rows must land in the shadows too.
  ASSERT_EQ(db.size(), 5u);
  ExpectShadowsConsistent(db.snapshot().view());
}

TEST(EmbeddedDatabaseTest, PinnedShadowsAreImmuneToRequantization) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0.5, -0.5}, {0.25, 0.5}});
  db.EnableFilterShadows(kShadowInt8);
  EmbeddedDatabase::Snapshot snap = db.snapshot();
  float pinned_scale = snap->i8_scales()[0];
  int8_t pinned_q = snap->row_i8(0)[0];
  // Forces a copy-on-write re-quantization with grown scales.
  db.Append({100.0, 0.5});
  // The pinned version's scales and codes are untouched — a reader
  // halfway through a scan keeps consistent (scale, code) pairs.
  EXPECT_EQ(snap->i8_scales()[0], pinned_scale);
  EXPECT_EQ(snap->row_i8(0)[0], pinned_q);
  EXPECT_EQ(snap->size(), 2u);
  ExpectShadowsConsistent(snap.view());
  EXPECT_GT(db.snapshot()->i8_scales()[0], pinned_scale);
}

TEST(EmbeddedDatabaseTest, CopyCarriesShadowsBitForBit) {
  Rng rng(23);
  std::vector<Vector> rows(5, Vector(3));
  for (Vector& r : rows) {
    for (double& v : r) v = rng.Uniform(-1.0, 1.0);
  }
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(rows);
  db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
  EmbeddedDatabase copy = db;
  EXPECT_EQ(copy.filter_shadows(), kShadowFloat32 | kShadowInt8);
  EmbeddedDatabase::Snapshot a = db.snapshot();
  EmbeddedDatabase::Snapshot b = copy.snapshot();
  ASSERT_EQ(a->size(), b->size());
  for (size_t j = 0; j < a->dims(); ++j) {
    EXPECT_EQ(a->i8_scales()[j], b->i8_scales()[j]);
  }
  for (size_t i = 0; i < a->size(); ++i) {
    for (size_t j = 0; j < a->dims(); ++j) {
      EXPECT_EQ(a->row_f32(i)[j], b->row_f32(i)[j]);
      EXPECT_EQ(a->row_i8(i)[j], b->row_i8(i)[j]);
    }
  }
}

}  // namespace
}  // namespace qse
