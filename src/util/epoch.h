#ifndef QSE_UTIL_EPOCH_H_
#define QSE_UTIL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/logging.h"

namespace qse {

/// Epoch-based reclamation: the synchronization backbone of concurrent
/// mutation.  Readers Pin() before dereferencing a published pointer and
/// let the Guard unpin when done; writers publish a replacement pointer,
/// then Retire() the old object with a deleter.  A retired object is
/// physically reclaimed only once every reader pinned early enough to
/// have seen it has unpinned — readers never block, never retry, and
/// never observe freed memory.
///
/// Protocol (all key atomics are seq_cst, so the reasoning below is in
/// the single total order S over them — deliberately: standalone fences
/// would be cheaper on the reader side but are not modeled by
/// ThreadSanitizer, and this repo's CI runs the whole concurrency suite
/// under TSan):
///
///  * Pin: claim a slot by CAS'ing the current epoch E into it, then
///    load the published pointer.  If the CAS lands after a writer's
///    slot scan in S, the subsequent pointer load also lands after the
///    writer's publish in S and reads the replacement — the classic
///    "writer missed the reader" race resolves to "reader missed the
///    old object", which is safe.
///  * Retire: stamp the object with the current epoch R, bump the epoch,
///    append to the retire list.  Any reader that could have loaded the
///    object pinned at an epoch <= R.
///  * Reclaim: free retired objects whose stamp is below the minimum
///    epoch currently pinned (below the current epoch when nothing is
///    pinned).
///
/// Writers are expected to be serialized by the owning data structure
/// (Retire/Reclaim are nonetheless thread-safe); readers are wait-free
/// except when more than kMaxReaders pins are simultaneously live, where
/// Pin yields until a slot frees up.
class EpochManager {
 public:
  /// Simultaneous pins supported without blocking.  One slot per
  /// in-flight retrieval, not per thread — 256 comfortably covers every
  /// worker pool in the repo.
  static constexpr size_t kMaxReaders = 256;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Runs every pending deleter.  Must not be destroyed while any reader
  /// is pinned (that reader would be left dereferencing freed memory).
  ~EpochManager() {
    QSE_CHECK_MSG(pinned_readers() == 0,
                  "EpochManager destroyed with pinned readers");
    std::vector<Retired> drain;
    {
      std::lock_guard<std::mutex> lock(retired_mu_);
      drain.swap(retired_);
    }
    for (Retired& r : drain) r.deleter();
  }

  /// RAII pin token.  Movable, not copyable; empty guards (moved-from or
  /// default-constructed) unpin nothing.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept
        : manager_(other.manager_), slot_(other.slot_) {
      other.manager_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        slot_ = other.slot_;
        other.manager_ = nullptr;
      }
      return *this;
    }
    ~Guard() { Release(); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    /// True while this guard holds a pin.
    bool pinned() const { return manager_ != nullptr; }

   private:
    friend class EpochManager;
    Guard(EpochManager* manager, size_t slot)
        : manager_(manager), slot_(slot) {}

    void Release() {
      if (manager_ == nullptr) return;
      manager_->slots_[slot_].epoch.store(kIdle, std::memory_order_seq_cst);
      manager_ = nullptr;
    }

    EpochManager* manager_ = nullptr;
    size_t slot_ = 0;
  };

  /// Pins the calling context at the current epoch.  Nesting is fine:
  /// every Pin claims its own slot, so inner guards may outlive or be
  /// released before outer ones in any order.
  Guard Pin() {
    // Spread threads across the slot array so concurrent pins do not
    // all hammer slot 0's cache line.
    size_t start = std::hash<std::thread::id>{}(std::this_thread::get_id()) %
                   kMaxReaders;
    for (;;) {
      uint64_t epoch = epoch_.load(std::memory_order_seq_cst);
      for (size_t probe = 0; probe < kMaxReaders; ++probe) {
        size_t s = (start + probe) % kMaxReaders;
        uint64_t idle = kIdle;
        if (slots_[s].epoch.compare_exchange_strong(
                idle, epoch, std::memory_order_seq_cst)) {
          return Guard(this, s);
        }
      }
      // All slots busy: extremely oversubscribed.  Yield and retry;
      // progress is guaranteed because pinned sections are short.
      std::this_thread::yield();
    }
  }

  /// Registers `deleter` to run once every reader that could still hold
  /// the retired object has unpinned, and advances the epoch so future
  /// pins are distinguishable from those readers.  Opportunistically
  /// reclaims whatever has already drained.
  void Retire(std::function<void()> deleter) {
    uint64_t stamp = epoch_.fetch_add(1, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(retired_mu_);
      retired_.push_back({stamp, std::move(deleter)});
    }
    ReclaimDrained();
  }

  /// Frees every retired object whose epoch stamp has drained (no reader
  /// is pinned at or before it).  Called by Retire; also callable
  /// directly to bound memory while no mutations are happening.
  void ReclaimDrained() {
    uint64_t min_pinned = MinPinnedEpoch();
    std::vector<Retired> ready;
    {
      std::lock_guard<std::mutex> lock(retired_mu_);
      size_t keep = 0;
      for (size_t i = 0; i < retired_.size(); ++i) {
        if (retired_[i].stamp < min_pinned) {
          ready.push_back(std::move(retired_[i]));
        } else {
          retired_[keep++] = std::move(retired_[i]);
        }
      }
      retired_.resize(keep);
    }
    // Deleters run outside the lock: they may be arbitrarily heavy
    // (freeing a multi-hundred-MB database version).
    for (Retired& r : ready) r.deleter();
  }

  /// Momentary count of pinned readers (diagnostics and tests).
  size_t pinned_readers() const {
    size_t count = 0;
    for (const Slot& slot : slots_) {
      if (slot.epoch.load(std::memory_order_seq_cst) != kIdle) ++count;
    }
    return count;
  }

  /// Retired-but-not-yet-reclaimed objects (tests).
  size_t retired_count() const {
    std::lock_guard<std::mutex> lock(retired_mu_);
    return retired_.size();
  }

  /// Current epoch (tests; advanced by Retire).
  uint64_t epoch() const { return epoch_.load(std::memory_order_seq_cst); }

 private:
  static constexpr uint64_t kIdle = 0;

  struct Retired {
    uint64_t stamp = 0;
    std::function<void()> deleter;
  };

  /// One cache line per slot: a pin/unpin must not invalidate its
  /// neighbors' lines.
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  /// Smallest epoch any reader is pinned at; the current epoch when no
  /// reader is pinned (everything retired earlier has drained).
  uint64_t MinPinnedEpoch() const {
    uint64_t min_pinned = epoch_.load(std::memory_order_seq_cst);
    for (const Slot& slot : slots_) {
      uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e != kIdle && e < min_pinned) min_pinned = e;
    }
    return min_pinned;
  }

  /// Epochs start at 1 so kIdle (0) can never collide with a pin stamp.
  std::atomic<uint64_t> epoch_{1};
  std::vector<Slot> slots_{kMaxReaders};
  mutable std::mutex retired_mu_;
  std::vector<Retired> retired_;
};

}  // namespace qse

#endif  // QSE_UTIL_EPOCH_H_
