#ifndef QSE_UTIL_FUTURE_H_
#define QSE_UTIL_FUTURE_H_

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace qse {

namespace internal {

/// Shared state behind one Promise/Future pair: the one-shot value, the
/// waiters' condition variable, and an optional ready-callback.
template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
  std::function<void(const T&)> callback;
};

}  // namespace internal

template <typename T>
class Promise;

/// Read side of a one-shot Promise/Future pair, the async serving layer's
/// completion handle.  Unlike std::future, the value stays readable after
/// Get() (any number of threads may Wait/Get the same future), and a
/// callback can be attached with OnReady for completion-driven callers.
///
/// The producer must eventually call Promise::Set exactly once; a future
/// whose promise is dropped without Set never becomes ready.
template <typename T>
class Future {
 public:
  /// An invalid future (no shared state); valid() distinguishes it.
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the value is set; never reverts.
  bool ready() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->value.has_value();
  }

  /// Blocks until the value is set.
  void Wait() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->value.has_value(); });
  }

  /// Blocks up to `timeout`; true when the value is ready.
  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> timeout) const {
    std::unique_lock<std::mutex> lock(state_->mu);
    return state_->cv.wait_for(
        lock, timeout, [this] { return state_->value.has_value(); });
  }

  /// Blocks until ready and returns the value.  The reference stays valid
  /// for the lifetime of the last Promise/Future handle to this state.
  const T& Get() const {
    Wait();
    // Safe without the lock: Wait() established happens-before with the
    // Set(), and the value never changes once set.
    return *state_->value;
  }

  /// Runs `callback` with the value exactly once: immediately on the
  /// calling thread when already ready, otherwise on the thread that calls
  /// Promise::Set.  At most one callback per future chain.
  void OnReady(std::function<void(const T&)> callback) {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (state_->value.has_value()) {
      lock.unlock();
      callback(*state_->value);
      return;
    }
    assert(!state_->callback);
    state_->callback = std::move(callback);
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Write side: hands out futures() and fulfils them with Set.  Copyable —
/// copies share the same state (so a request can carry the promise while
/// the submitter keeps a fallback handle) — but Set must be called exactly
/// once across all copies.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  Future<T> future() const { return Future<T>(state_); }

  /// Publishes the value, wakes all waiters, and runs a pending OnReady
  /// callback (on this thread, outside the state lock).
  void Set(T value) {
    std::function<void(const T&)> callback;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      assert(!state_->value.has_value());
      state_->value.emplace(std::move(value));
      callback = std::move(state_->callback);
      state_->callback = nullptr;
    }
    state_->cv.notify_all();
    if (callback) callback(*state_->value);
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

}  // namespace qse

#endif  // QSE_UTIL_FUTURE_H_
