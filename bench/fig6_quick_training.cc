// Reproduces Figure 6: the "Quick Se-QS" experiment.  The paper trains
// Se-QS with drastically reduced preprocessing (|C| = |Xtr| = 200 instead
// of 5,000, and 10,000 triples instead of 300,000 — 80,000 precomputed
// distances instead of 50,000,000) and shows the result is worse than the
// fully-trained Se-QS but still clearly better than FastMap at 95%
// accuracy.
//
// Here "Regular" uses the repo's default training scale and "Quick" cuts
// |C| = |Xtr| and the triple budget by the paper's ratio (25x fewer
// precomputed distances).
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace qse;
  bench::Flags flags(argc, argv);

  bench::WorkloadScale wscale;
  wscale.db_size = flags.GetSize("db", 1200);
  wscale.num_queries = flags.GetSize("queries", 120);
  wscale.seed = flags.GetSize("seed", 2005);

  bench::TrainingScale regular;
  regular.num_cand = flags.GetSize("cand", 400);
  regular.num_train = flags.GetSize("train", 400);
  regular.num_triples = flags.GetSize("triples", 30000);
  regular.rounds = flags.GetSize("rounds", 128);
  regular.embeddings_per_round = flags.GetSize("epr", 48);
  regular.k1 = 5;
  regular.seed = flags.GetSize("train_seed", 7);

  bench::TrainingScale quick = regular;
  quick.num_cand = flags.GetSize("quick_cand", 40);
  quick.num_train = flags.GetSize("quick_train", 40);
  quick.num_triples = flags.GetSize("quick_triples", 2000);
  quick.k1 = 3;  // k1 must stay below |Xtr| - 1 at the reduced scale.

  size_t kmax = flags.GetSize("kmax", 50);
  bench::Workload workload = bench::MakeDigitsWorkload(wscale);
  GroundTruth gt = bench::ComputeWorkloadGroundTruth(workload, kmax);
  workload.SaveCache();

  std::vector<bench::MethodLadder> methods;
  methods.push_back(bench::RunFastMap(workload, gt, regular.rounds, regular));
  methods.push_back(bench::RunBoostMapVariant(
      workload, gt, "Quick Se-QS", TripleSampling::kSelective, true, quick));
  methods.push_back(bench::RunBoostMapVariant(workload, gt, "Regular Se-QS",
                                              TripleSampling::kSelective,
                                              true, regular));
  workload.SaveCache();

  bench::ReportAccuracyTable(
      "Figure 6 — Quick vs Regular Se-QS vs FastMap (digits, Shape Context)",
      "fig6_quick_training", methods, {1, 2, 5, 10, 20, 30, 40, 50}, 0.95,
      workload.db_ids.size());
  bench::WriteSeriesCsv("fig6_quick_training_series", methods, kmax, 0.95,
                        workload.db_ids.size());
  std::printf(
      "\nShape check (paper): FastMap >= Quick Se-QS >= Regular Se-QS at "
      "most k;\nQuick preprocessing pays ~%zu distances vs ~%zu for "
      "Regular.\n",
      quick.num_cand * quick.num_cand + quick.num_cand * quick.num_train,
      regular.num_cand * regular.num_cand +
          regular.num_cand * regular.num_train);
  return 0;
}
