#ifndef QSE_UTIL_PARALLEL_H_
#define QSE_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace qse {

/// Runs body(i) for i in [begin, end), splitting the range across
/// `num_threads` worker threads (hardware concurrency when 0).  Falls back
/// to a plain serial loop when the range is small or only one core is
/// available, so there is no overhead on single-core boxes.
///
/// The body must be safe to invoke concurrently for distinct i; iteration
/// order across threads is unspecified.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 size_t num_threads = 0);

/// ParallelFor with an explicit serial cutoff: ranges shorter than
/// `grain` items run serially, anything else is split across threads.
/// ParallelFor uses a cutoff of 256, tuned for cheap per-item bodies;
/// pass grain = 2 for expensive bodies (a whole retrieval per item, a
/// query embedding, an exact DTW) where even a handful of items is worth
/// the thread startup.
void ParallelForGrain(size_t begin, size_t end, size_t grain,
                      const std::function<void(size_t)>& body,
                      size_t num_threads = 0);

/// Number of worker threads ParallelFor would use for `num_threads == 0`.
size_t DefaultParallelism();

}  // namespace qse

#endif  // QSE_UTIL_PARALLEL_H_
