#ifndef QSE_CORE_ADABOOST_H_
#define QSE_CORE_ADABOOST_H_

#include <vector>

#include "src/core/triple.h"
#include "src/core/weak_classifier.h"
#include "src/util/random.h"

namespace qse {

/// Options for the adapted AdaBoost training loop (Sec. 5.2 / Fig. 2).
struct AdaBoostOptions {
  /// Number of boosting rounds J.  Each round adds one weak classifier;
  /// the output embedding has at most `rounds` distinct coordinates.
  size_t rounds = 100;

  /// Number of candidate 1D embeddings sampled per round.  Together with
  /// the interval grid below this plays the role of the paper's parameter
  /// m ("the number of weak classifiers to evaluate at each training
  /// round"): m ≈ embeddings_per_round * interval_grid^2 / 2.
  size_t embeddings_per_round = 64;

  /// Number of quantile cut points of the query-projection distribution
  /// used to enumerate candidate intervals V; all O(grid^2) contiguous
  /// quantile ranges are scored.  Ignored in query-insensitive mode.
  size_t interval_grid = 16;

  /// Fraction of sampled 1D embeddings of pivot type F^{x1,x2}; the rest
  /// are reference type F^r.
  double pivot_fraction = 0.5;

  /// How candidate intervals V are scored during the weak-learner search.
  ///
  /// kCorrelation (default) picks the interval maximizing the total
  /// weighted margin correlation |sum_{i in V} w_i y_i ghat_i| — the
  /// Schapire-Singer Z <= sqrt(1 - r^2) criterion applied to the cropped
  /// classifier.  Because triples outside V contribute nothing to r, a
  /// cropped interval only wins when the discarded region is genuinely
  /// anti-correlated, so splitters *modulate* coordinates per query
  /// instead of sparsifying them (queries keep most coordinates active,
  /// which the ranking quality of D_out depends on).
  ///
  /// kZBound picks the interval minimizing the exact two-part bound
  /// W_out + sqrt(W_in^2 - r^2).  It is tighter for triple
  /// *classification* but systematically prefers narrow, near-perfect
  /// intervals; with small training sets those overfit and starve D_out
  /// of active coordinates (see EXPERIMENTS.md ablation).
  enum class IntervalSelection { kCorrelation, kZBound };
  IntervalSelection interval_selection = IntervalSelection::kCorrelation;

  /// Fraction of each round's candidate 1D embeddings drawn from the
  /// embeddings already chosen in earlier rounds (the rest are fresh
  /// random samples).  Re-picking an embedding with a different interval
  /// V gives that coordinate several weighted interval terms, which is
  /// how Eq. 10's A_i(q) becomes a graded (rather than on/off) function
  /// of the query — the paper explicitly allows "a particular 1D
  /// embedding F [to] be equal to multiple F'_j".  Only applies in
  /// query-sensitive mode.
  double reuse_fraction = 0.33;

  /// true  -> learn query-sensitive classifiers Q̃_{F,V} (this paper);
  /// false -> learn plain F̃ classifiers (original BoostMap); every
  ///          classifier has V = R.
  bool query_sensitive = true;

  /// Minimum fraction of total triple weight a splitter must accept; very
  /// narrow intervals overfit single triples.
  double min_split_mass = 0.02;

  /// Stop early when the best attainable Z of a round exceeds this (no
  /// classifier helps any more; Z >= 1 means no progress, Sec. 5.3).
  double z_stop_threshold = 0.99999;

  /// RNG seed for the weak-learner sampling.
  uint64_t seed = 7;

  /// Log per-round progress.
  bool verbose = false;
};

/// Per-round training telemetry.
struct RoundInfo {
  size_t round = 0;
  WeakClassifier chosen;
  double z = 1.0;               // Z_j of the chosen (h_j, α_j) (Eq. 8).
  double weighted_error = 0.0;  // Weighted misclassification of h_j alone.
  double training_error = 0.0;  // Ensemble H error on the training triples.
};

/// Result of training: the chosen weak classifiers in round order plus
/// telemetry.  Feed into QuerySensitiveEmbedding::FromTraining.
struct AdaBoostResult {
  std::vector<WeakClassifier> rounds;
  std::vector<RoundInfo> history;
  /// Final ensemble error on the training triples.
  double final_training_error = 1.0;
};

/// Runs the adapted AdaBoost of Sec. 5 on precomputed training data.
///
/// The weak learner of each round:
///  1. samples `embeddings_per_round` random 1D embeddings from the
///     candidate set (reference and pivot types, Sec. 5.3),
///  2. for each, scores every interval V of a quantile grid over the
///     query projections F(q_i) using the Schapire-Singer bound
///     Z <= W_out + sqrt(W_in^2 - r^2) computed in O(1) from prefix sums,
///  3. picks the overall best (F, V), then minimizes the exact
///     Z_j(Q̃, α) = Σ_i w_i exp(-α y_i Q̃(q_i,a_i,b_i))  (Eq. 8)
///     over α by safeguarded bisection on dZ/dα,
///  4. re-weights triples per Eq. 6.
AdaBoostResult TrainAdaBoost(const TrainingContext& ctx,
                             const std::vector<Triple>& triples,
                             const AdaBoostOptions& options);

/// Exact minimization of Z(α) = Σ w_i exp(-α s_i) + const for the margins
/// s_i = y_i * Q̃_i restricted to accepted triples.  Exposed for tests.
/// Returns the minimizing α (possibly negative) and sets *z_min to the
/// attained total Z (including the rejected-triple mass `passive_mass`).
double MinimizeZ(const std::vector<double>& weights,
                 const std::vector<double>& margins, double passive_mass,
                 double* z_min);

}  // namespace qse

#endif  // QSE_CORE_ADABOOST_H_
