// Load generator for the async serving front end: how does adaptive
// micro-batching behave under traffic, against one-request-per-call
// serving and against the caller-batched ceiling — and how do the
// strict-priority admission lanes and per-tenant quotas carve up an
// overloaded queue?
//
// Three generators over both backends (monolithic + sharded):
//
//  * Closed loop: C client threads, each submits one request and blocks
//    on its future before the next (classic concurrency-limited load).
//    Modes: "async_adaptive" (micro-batching server), "async_b1" (same
//    server, max_batch = 1 — one-request-per-call serving), "direct"
//    (clients call backend->Retrieve themselves, no server at all), and
//    a "caller_batch" reference (one RetrieveBatch over everything — the
//    pre-async serving mode, the throughput ceiling).
//
//  * Open loop: requests arrive on a Poisson process at an offered QPS
//    regardless of completions (the arrival pattern a public endpoint
//    actually sees), swept over fractions of the measured closed-loop
//    capacity.  Reports achieved QPS, shed/expired counts, and sojourn
//    percentiles.
//
//  * Priority lanes: a mixed-priority, multi-tenant burst saturates a
//    small admission queue.  Strict priority must hand the high lane a
//    far lower p99 sojourn with zero sheds while the low lane absorbs
//    the shedding, and a tenant capped at a sliver of the queue must be
//    refused (kResourceExhausted) while the others keep admitting.
//
// Output: a human table plus a google-benchmark-shaped JSON artifact
// (bench_results/server_load.json by default, --out to override) with
// p50/p95/p99 tail latency per configuration;
// tools/check_bench_regressions.py gates on the adaptive-vs-b1 mean and
// p99 ratios and on the high-vs-low lane p99 ratio.
//
// Run: ./build/bench/server_load [--n=20000] [--clients=8]
//        [--requests=2000] [--open_seconds=1.0] [--out=path.json]
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/drift_scenarios.h"
#include "bench/harness.h"
#include "src/data/dataset.h"
#include "src/data/drift_generator.h"
#include "src/obs/exposition.h"
#include "src/obs/quality_monitor.h"
#include "src/obs/trace.h"
#include "src/distance/lp.h"
#include "src/embedding/fastmap.h"
#include "src/net/hedged_backend.h"
#include "src/net/remote_backend.h"
#include "src/net/retrieval_server.h"
#include "src/net/socket_transport.h"
#include "src/persist/durability.h"
#include "src/persist/durable_backend.h"
#include "src/retrieval/filter_refine.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/server/async_retrieval_server.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/random.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace qse {
namespace {

using bench::BenchJsonEntry;
using bench::ComputeLatencyPercentiles;
using bench::LatencyPercentiles;

struct LoadStack {
  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  std::unique_ptr<RetrievalEngine> mono;
  std::unique_ptr<ShardedRetrievalEngine> sharded;
  std::vector<DxToDatabaseFn> queries;

  LoadStack(size_t n, size_t num_queries, size_t dims, uint64_t seed)
      : oracle(MakeOracle(n + num_queries, seed)),
        db_ids(Iota(n)),
        model(BuildModel(oracle, db_ids, dims, seed)),
        db(EmbedDatabase(model, oracle, db_ids)) {
    mono = std::make_unique<RetrievalEngine>(&model, &scorer, &db, db_ids);
    ShardedEngineOptions options;
    options.num_shards = std::max<size_t>(DefaultParallelism(), 2);
    sharded = std::make_unique<ShardedRetrievalEngine>(&model, &scorer, db,
                                                       db_ids, options);
    for (size_t q = n; q < n + num_queries; ++q) {
      queries.push_back(
          [this, q](size_t id) { return oracle.Distance(q, id); });
    }
  }

  static ObjectOracle<Vector> MakeOracle(size_t total, uint64_t seed) {
    Rng rng(seed);
    std::vector<Vector> points;
    points.reserve(total);
    for (size_t i = 0; i < total; ++i) {
      points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
    }
    return ObjectOracle<Vector>(std::move(points), L2Distance);
  }

  static FastMapModel BuildModel(const ObjectOracle<Vector>& oracle,
                                 const std::vector<size_t>& db_ids,
                                 size_t dims, uint64_t seed) {
    FastMapOptions options;
    options.dims = dims;
    options.seed = seed + 1;
    return BuildFastMap(oracle, db_ids, options);
  }

  static std::vector<size_t> Iota(size_t n) {
    std::vector<size_t> ids(n);
    std::iota(ids.begin(), ids.end(), 0);
    return ids;
  }
};

struct RunResult {
  double seconds = 0;
  double qps = 0;
  double mean_ns = 0;
  LatencyPercentiles percentiles;  // ns
  size_t completed = 0;
  size_t rejected = 0;
  size_t expired = 0;
};

RunResult Summarize(const std::vector<double>& latencies_ns, double seconds,
                    size_t rejected, size_t expired) {
  RunResult r;
  r.seconds = seconds;
  r.completed = latencies_ns.size();
  r.qps = seconds > 0 ? r.completed / seconds : 0;
  r.mean_ns = Mean(latencies_ns);
  r.percentiles = ComputeLatencyPercentiles(latencies_ns);
  r.rejected = rejected;
  r.expired = expired;
  return r;
}

/// Closed loop against a submit-and-wait function: `clients` threads each
/// issue `requests / clients` sequential requests over the query set.
template <typename SubmitWaitFn>
RunResult RunClosedLoop(size_t clients, size_t requests,
                        const std::vector<DxToDatabaseFn>& queries,
                        const SubmitWaitFn& submit_and_wait) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  size_t per_client = requests / clients;
  Timer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (size_t i = 0; i < per_client; ++i) {
        const DxToDatabaseFn& dx =
            queries[(c * per_client + i) % queries.size()];
        Timer t;
        submit_and_wait(dx);
        latencies[c].push_back(t.Seconds() * 1e9);
      }
    });
  }
  for (auto& t : threads) t.join();
  double seconds = wall.Seconds();
  std::vector<double> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  return Summarize(all, seconds, 0, 0);
}

/// Open loop: Poisson arrivals at `offered_qps` for `seconds`, submitted
/// from one pacing thread; latencies recorded by completion callbacks.
RunResult RunOpenLoop(AsyncRetrievalServer* server, size_t k, size_t p,
                      const std::vector<DxToDatabaseFn>& queries,
                      double offered_qps, double seconds, uint64_t seed,
                      std::chrono::microseconds deadline_budget) {
  struct Completion {
    std::mutex mu;
    std::vector<double> latencies_ns;
    std::atomic<size_t> rejected{0};
    std::atomic<size_t> expired{0};
    std::atomic<size_t> outstanding{0};
  };
  auto state = std::make_shared<Completion>();
  Rng rng(seed);
  Timer wall;
  double next_arrival = 0;  // Seconds since wall start.
  size_t submitted = 0;
  while (next_arrival < seconds) {
    double now = wall.Seconds();
    if (now < next_arrival) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(next_arrival - now, 0.001)));
      continue;
    }
    RetrievalOptions ro(k, p);
    if (deadline_budget.count() > 0) {
      ro.deadline = RetrievalOptions::DeadlineIn(deadline_budget);
    }
    auto submit_time = RetrievalClock::now();
    state->outstanding.fetch_add(1);
    server->Submit({queries[submitted % queries.size()], ro})
        .OnReady([state, submit_time](const StatusOr<RetrievalResponse>& r) {
          double ns = std::chrono::duration<double, std::nano>(
                          RetrievalClock::now() - submit_time)
                          .count();
          if (r.ok()) {
            std::lock_guard<std::mutex> lock(state->mu);
            state->latencies_ns.push_back(ns);
          } else if (r.status().code() == StatusCode::kResourceExhausted) {
            state->rejected.fetch_add(1);
          } else if (r.status().code() == StatusCode::kDeadlineExceeded) {
            state->expired.fetch_add(1);
          }
          state->outstanding.fetch_sub(1);
        });
    ++submitted;
    // Poisson process: exponential inter-arrival at rate offered_qps.
    next_arrival += -std::log(1.0 - rng.Uniform(0, 1)) / offered_qps;
  }
  while (state->outstanding.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  double elapsed = wall.Seconds();
  std::lock_guard<std::mutex> lock(state->mu);
  return Summarize(state->latencies_ns, elapsed, state->rejected.load(),
                   state->expired.load());
}

void Report(const std::string& name, const RunResult& r,
            std::vector<BenchJsonEntry>* json,
            std::vector<std::pair<std::string, double>> extra_fields = {},
            bool has_percentiles = true) {
  if (has_percentiles) {
    std::printf(
        "%-36s %9.0f qps   mean %8.1f us   p50 %8.1f  p95 %8.1f  p99 %8.1f "
        "us   completed %6zu  shed %5zu  expired %5zu\n",
        name.c_str(), r.qps, r.mean_ns / 1e3, r.percentiles.p50 / 1e3,
        r.percentiles.p95 / 1e3, r.percentiles.p99 / 1e3, r.completed,
        r.rejected, r.expired);
  } else {
    std::printf("%-36s %9.0f qps   mean %8.1f us (amortized)   "
                "completed %6zu\n",
                name.c_str(), r.qps, r.mean_ns / 1e3, r.completed);
  }
  BenchJsonEntry entry;
  entry.name = name;
  entry.real_time_ns = r.mean_ns;
  if (has_percentiles) entry.AddPercentiles(r.percentiles);
  entry.extras.emplace_back("qps", r.qps);
  entry.extras.emplace_back("completed", static_cast<double>(r.completed));
  entry.extras.emplace_back("shed", static_cast<double>(r.rejected));
  entry.extras.emplace_back("expired", static_cast<double>(r.expired));
  for (auto& kv : extra_fields) entry.extras.push_back(std::move(kv));
  json->push_back(std::move(entry));
}

/// The priority-lane / tenant-quota configuration: burst-submit a mixed
/// workload from one thread per lane through a deliberately small
/// admission queue over one worker, so the queue saturates and the
/// admission policy — not the backend — decides who waits and who is
/// shed.  A fourth thread floods a tenant capped at a sliver of the
/// queue to exercise over-quota refusal.
void RunPriorityLanes(const RetrievalBackend* backend, size_t k, size_t p,
                      const std::vector<DxToDatabaseFn>& queries,
                      size_t per_lane,
                      std::vector<BenchJsonEntry>* json) {
  AsyncServerOptions options;
  options.queue_capacity = 128;
  options.max_batch = 16;
  options.num_workers = 1;
  options.tenant_quotas = {
      {"interactive", 0.75},  // The high/normal lanes' tenant.
      {"analytics", 0.25},    // The low lane's tenant.
      {"greedy", 0.02},       // Quota-capped flooder (~2 slots of 128).
  };
  AsyncRetrievalServer server(backend, options);

  struct LaneCompletion {
    std::mutex mu;
    std::vector<double> latencies_ns;
    std::atomic<size_t> shed_or_rejected{0};
  };
  std::array<LaneCompletion, kNumPriorityLanes> lanes;
  std::atomic<size_t> outstanding{0};
  std::atomic<size_t> greedy_rejected{0};

  auto submit = [&](RequestPriority priority, const std::string& tenant,
                    size_t i, std::atomic<size_t>* rejected_counter) {
    RetrievalOptions ro(k, p);
    ro.priority = priority;
    ro.tenant_id = tenant;
    size_t lane = static_cast<size_t>(priority);
    auto submit_time = RetrievalClock::now();
    outstanding.fetch_add(1);
    server.Submit({queries[i % queries.size()], ro})
        .OnReady([&, lane, submit_time,
                  rejected_counter](const StatusOr<RetrievalResponse>& r) {
          if (r.ok()) {
            double ns = std::chrono::duration<double, std::nano>(
                            RetrievalClock::now() - submit_time)
                            .count();
            std::lock_guard<std::mutex> lock(lanes[lane].mu);
            lanes[lane].latencies_ns.push_back(ns);
          } else if (r.status().code() == StatusCode::kResourceExhausted) {
            lanes[lane].shed_or_rejected.fetch_add(1);
            if (rejected_counter != nullptr) rejected_counter->fetch_add(1);
          }
          outstanding.fetch_sub(1);
        });
  };

  Timer wall;
  std::vector<std::thread> submitters;
  const struct {
    RequestPriority priority;
    const char* tenant;
  } lanes_cfg[] = {{RequestPriority::kHigh, "interactive"},
                   {RequestPriority::kNormal, "interactive"},
                   {RequestPriority::kLow, "analytics"}};
  for (const auto& cfg : lanes_cfg) {
    submitters.emplace_back([&, cfg] {
      for (size_t i = 0; i < per_lane; ++i) {
        submit(cfg.priority, cfg.tenant, i, nullptr);
      }
    });
  }
  submitters.emplace_back([&] {
    for (size_t i = 0; i < per_lane; ++i) {
      submit(RequestPriority::kNormal, "greedy", i, &greedy_rejected);
    }
  });
  for (auto& t : submitters) t.join();
  while (outstanding.load() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  double seconds = wall.Seconds();
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  ServerStats stats = server.stats();

  for (size_t l = 0; l < kNumPriorityLanes; ++l) {
    RunResult r = Summarize(lanes[l].latencies_ns, seconds,
                            lanes[l].shed_or_rejected.load(), 0);
    std::string name = std::string("SL_Lanes/mono/") +
                       RequestPriorityName(static_cast<RequestPriority>(l));
    Report(name, r, json,
           {{"lane_shed", static_cast<double>(stats.lanes[l].shed)},
            {"lane_admitted", static_cast<double>(stats.lanes[l].admitted)}});
  }
  const TenantStats* greedy = nullptr;
  for (const TenantStats& t : stats.tenants) {
    if (t.tenant_id == "greedy") greedy = &t;
  }
  QSE_CHECK(greedy != nullptr);
  std::printf("lanes: high shed %zu (must be 0), low shed %zu; greedy "
              "tenant: %zu/%zu over-quota rejections (limit %zu slots)\n",
              stats.lanes[0].shed, stats.lanes[2].shed, greedy->rejected,
              greedy->submitted, greedy->limit);
  BenchJsonEntry tenants;
  tenants.name = "SL_Lanes/mono/tenants";
  tenants.real_time_ns = 0;
  tenants.extras.emplace_back("greedy_rejected",
                              static_cast<double>(greedy->rejected));
  tenants.extras.emplace_back("greedy_admitted",
                              static_cast<double>(greedy->admitted));
  tenants.extras.emplace_back("high_shed",
                              static_cast<double>(stats.lanes[0].shed));
  tenants.extras.emplace_back("low_shed",
                              static_cast<double>(stats.lanes[2].shed));
  json->push_back(std::move(tenants));
}

/// The drift workload: a small database whose TRUE distances drift on a
/// schedule while its embeddings stay frozen at step 0 — the frozen-
/// model staleness a production retrieval system actually suffers.
/// Shared by the abrupt-drift alarm-latency run and the p = n
/// no-drift verification run.
struct DriftStack {
  DriftingPointOracle oracle;
  std::vector<size_t> db_ids;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  std::unique_ptr<RetrievalEngine> mono;
  std::unique_ptr<ShardedRetrievalEngine> sharded;
  std::vector<DxToDatabaseFn> queries;

  DriftStack(size_t n, size_t num_queries, size_t dims,
             DriftSchedule schedule, uint64_t seed)
      : oracle(n + num_queries, /*point dims=*/2, schedule, seed),
        db_ids(LoadStack::Iota(n)),
        model([&] {
          FastMapOptions options;
          options.dims = dims;
          options.seed = seed + 1;
          return BuildFastMap(oracle, db_ids, options);
        }()),
        db(EmbedDatabase(model, oracle, db_ids)) {
    mono = std::make_unique<RetrievalEngine>(&model, &scorer, &db, db_ids);
    ShardedEngineOptions options;
    options.num_shards = 4;
    sharded = std::make_unique<ShardedRetrievalEngine>(&model, &scorer, db,
                                                       db_ids, options);
    for (size_t q = n; q < n + num_queries; ++q) {
      queries.push_back(
          [this, q](size_t id) { return oracle.Distance(q, id); });
    }
  }
};

// --- SL_Remote: the multi-process shard cluster ---------------------
//
// The bench binary doubles as its own shard server: the parent
// fork/execs itself with --shard_server=1, and each child rebuilds the
// identical deterministic stack (same flags, same seed), carves out its
// shard by the engine's own hash partition, and serves it over TCP
// until the parent kills the process.

/// Child mode.  Never returns normally — serves until SIGKILLed.
int RunShardServer(const bench::Flags& flags) {
  const size_t n = flags.GetSize("n", 20000);
  const size_t dims = flags.GetSize("dims", 8);
  const size_t num_queries = flags.GetSize("queries", 256);
  const size_t shard = flags.GetSize("shard", 0);
  const size_t num_shards = flags.GetSize("num_shards", 2);
  const uint16_t port = static_cast<uint16_t>(flags.GetSize("port", 0));

  auto oracle = LoadStack::MakeOracle(n + num_queries, 2005);
  std::vector<size_t> db_ids = LoadStack::Iota(n);
  FastMapModel model = LoadStack::BuildModel(oracle, db_ids, dims, 2005);
  std::vector<size_t> shard_ids;
  for (size_t id : db_ids) {
    if (HashShardOf(id, num_shards) == shard) shard_ids.push_back(id);
  }
  EmbeddedDatabase shard_db = EmbedDatabase(model, oracle, shard_ids);
  L2Scorer scorer;
  RetrievalEngine engine(&model, &scorer, &shard_db, shard_ids);

  net::RetrievalServerOptions options;
  options.debug_delay_every_n = flags.GetSize("slow_every", 0);
  options.debug_delay = std::chrono::milliseconds(flags.GetSize("slow_ms", 0));
  net::RetrievalServer server(&engine, options);
  Status s = server.Start(port);
  QSE_CHECK_MSG(s.ok(), s.ToString());
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
}

/// Picks a currently-free loopback port by binding an ephemeral one and
/// closing it — a bind race the single-host cluster tolerates.
uint16_t PickFreePort() {
  auto listener = net::ServerSocket::Listen(0, {});
  QSE_CHECK_MSG(listener.ok(), listener.status().ToString());
  return listener.value().port();
}

pid_t SpawnShardServer(const char* self, size_t shard, size_t num_shards,
                       uint16_t port, size_t n, size_t dims,
                       size_t num_queries, size_t slow_every,
                       size_t slow_ms) {
  std::vector<std::string> args = {
      self,
      "--shard_server=1",
      "--shard=" + std::to_string(shard),
      "--num_shards=" + std::to_string(num_shards),
      "--port=" + std::to_string(port),
      "--n=" + std::to_string(n),
      "--dims=" + std::to_string(dims),
      "--queries=" + std::to_string(num_queries),
      "--slow_every=" + std::to_string(slow_every),
      "--slow_ms=" + std::to_string(slow_ms),
  };
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  pid_t pid = fork();
  QSE_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    execv(self, argv.data());
    _exit(127);  // exec failed; async-signal-safe exit only
  }
  return pid;
}

/// Polls until the child's server accepts connections (it first has to
/// rebuild the embedding model, which takes a moment).
bool WaitForServer(uint16_t port, double timeout_seconds) {
  net::TransportOptions options;
  options.connect_timeout = std::chrono::milliseconds(250);
  Timer t;
  while (t.Seconds() < timeout_seconds) {
    if (net::Socket::Connect("127.0.0.1", port, options).ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

}  // namespace
}  // namespace qse

int main(int argc, char** argv) {
  using namespace qse;
  bench::Flags flags(argc, argv);
  if (flags.GetSize("shard_server", 0) != 0) return RunShardServer(flags);
  const size_t n = flags.GetSize("n", 20000);
  const size_t dims = flags.GetSize("dims", 8);
  const size_t num_queries = flags.GetSize("queries", 256);
  const size_t k = flags.GetSize("k", 3);
  const size_t p = flags.GetSize("p", 200);
  const size_t clients = flags.GetSize("clients", 8);
  const size_t requests = flags.GetSize("requests", 2000);
  const size_t max_batch = flags.GetSize("max_batch", 64);
  const double open_seconds = flags.GetDouble("open_seconds", 1.0);
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    // ResultsPath ensures bench_results/ exists; swap the extension.
    out = bench::ResultsPath("server_load");
    out.replace(out.size() - 4, 4, ".json");
  }

  std::printf("server_load: n=%zu dims=%zu k=%zu p=%zu clients=%zu "
              "requests=%zu cores=%zu\n\n",
              n, dims, k, p, clients, requests, DefaultParallelism());
  LoadStack stack(n, num_queries, dims, 2005);
  const RetrievalOptions base_options(k, p);

  std::vector<BenchJsonEntry> json;
  double adaptive_capacity_qps = 0;

  struct Backend {
    const char* name;
    const RetrievalBackend* backend;
  };
  const Backend backends[] = {{"mono", stack.mono.get()},
                              {"sharded", stack.sharded.get()}};

  for (const Backend& b : backends) {
    std::printf("--- backend: %s ---\n", b.name);

    // Caller-batched ceiling: the pre-async serving mode, one big
    // RetrieveBatch across all cores.
    {
      Timer t;
      size_t done = 0;
      while (done < requests) {
        size_t chunk = std::min(requests - done, stack.queries.size());
        std::vector<DxToDatabaseFn> batch(stack.queries.begin(),
                                          stack.queries.begin() + chunk);
        auto r = b.backend->RetrieveBatch(batch, base_options);
        QSE_CHECK_MSG(r.ok(), r.status().ToString());
        done += chunk;
      }
      double seconds = t.Seconds();
      RunResult res;
      res.seconds = seconds;
      res.completed = requests;
      res.qps = requests / seconds;
      res.mean_ns = seconds / requests * 1e9;  // Amortized, not sojourn.
      Report(std::string("SL_CallerBatch/") + b.name, res, &json, {},
             /*has_percentiles=*/false);
    }

    // Closed loop, direct: clients call the backend themselves.
    {
      RunResult res = RunClosedLoop(
          clients, requests, stack.queries, [&](const DxToDatabaseFn& dx) {
            auto r = b.backend->Retrieve({dx, base_options});
            QSE_CHECK_MSG(r.ok(), r.status().ToString());
          });
      Report(std::string("SL_Closed/") + b.name + "/direct", res, &json);
    }

    // Closed loop through the server: one-request-per-call (max_batch=1)
    // vs adaptive micro-batching, same worker layout.
    for (bool adaptive : {false, true}) {
      AsyncServerOptions options;
      options.queue_capacity = 4096;
      options.max_batch = adaptive ? max_batch : 1;
      options.num_workers = 1;
      options.retrieve_threads = 0;  // Batch parallelism = the core count.
      AsyncRetrievalServer server(b.backend, options);
      RunResult res = RunClosedLoop(
          clients, requests, stack.queries, [&](const DxToDatabaseFn& dx) {
            // Keep the future alive across Get(): its shared state owns
            // the result the reference points into.
            Future<StatusOr<RetrievalResponse>> f =
                server.Submit({dx, base_options});
            const auto& r = f.Get();
            QSE_CHECK_MSG(r.ok(), r.status().ToString());
          });
      server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
      ServerStats stats = server.stats();
      double mean_batch = 0;
      size_t batches = 0, weighted = 0;
      for (size_t i = 0; i < stats.batch_size_histogram.size(); ++i) {
        batches += stats.batch_size_histogram[i];
        weighted += (i + 1) * stats.batch_size_histogram[i];
      }
      if (batches > 0) mean_batch = double(weighted) / double(batches);
      Report(std::string("SL_Closed/") + b.name +
                 (adaptive ? "/async_adaptive" : "/async_b1"),
             res, &json, {{"mean_batch", mean_batch}});
      if (adaptive && std::string(b.name) == "mono") {
        adaptive_capacity_qps = res.qps;
      }
    }

    // Observability overhead: the identical adaptive configuration with
    // 1-in-64 trace sampling and metrics flowing into the global
    // registry (the exported snapshot below).  The regression gate
    // compares this run's p99 against the untraced adaptive run —
    // sampling must not buy visibility with a tail blowup.  With
    // QSE_DISABLE_TRACING the sampling block compiles out and this
    // measures the bare instrumented server.
    if (std::string(b.name) == "mono") {
      AsyncServerOptions options;
      options.queue_capacity = 4096;
      options.max_batch = max_batch;
      options.num_workers = 1;
      options.retrieve_threads = 0;
      options.trace_every_n = 64;
      options.registry = &obs::MetricRegistry::Global();
      AsyncRetrievalServer server(b.backend, options);
      RunResult res = RunClosedLoop(
          clients, requests, stack.queries, [&](const DxToDatabaseFn& dx) {
            Future<StatusOr<RetrievalResponse>> f =
                server.Submit({dx, base_options});
            const auto& r = f.Get();
            QSE_CHECK_MSG(r.ok(), r.status().ToString());
          });
      server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
      server.metrics();  // Refresh the queue-depth gauges for export.
      Report("SL_Closed/mono/async_traced", res, &json);
    }
  }

  // Open loop over the monolithic backend: sweep offered load as
  // fractions of the measured adaptive closed-loop capacity, with a
  // deadline so overload sheds instead of queueing without bound.
  std::printf("--- open loop (mono, adaptive, deadline 50ms) ---\n");
  for (double fraction : {0.5, 0.9, 1.2}) {
    double offered = std::max(adaptive_capacity_qps * fraction, 50.0);
    AsyncServerOptions options;
    options.queue_capacity = 1024;
    options.max_batch = max_batch;
    options.num_workers = 1;
    AsyncRetrievalServer server(stack.mono.get(), options);
    RunResult res =
        RunOpenLoop(&server, k, p, stack.queries, offered, open_seconds,
                    7 + size_t(fraction * 10),
                    std::chrono::milliseconds(50));
    server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
    char name[64];
    std::snprintf(name, sizeof(name), "SL_Open/mono/load%02d",
                  int(fraction * 100));
    Report(name, res, &json, {{"offered_qps", offered}});
  }

  // Priority lanes + tenant quotas under a saturating burst (mono).
  std::printf("--- priority lanes (mono, queue 128, 1 worker) ---\n");
  RunPriorityLanes(stack.mono.get(), k, p, stack.queries,
                   std::max<size_t>(requests / 4, 64), &json);

  // Mutation under load: the same closed-loop adaptive configuration as
  // SL_Closed/mono/async_adaptive, with a background thread removing and
  // re-inserting database objects through the server at a fixed rate —
  // the epoch/RCU concurrent-mutation path.  The regression gate
  // compares this run's p99 against the mutation-free closed loop:
  // mutation must not blow the query tail.
  {
    const auto mutate_interval = std::chrono::microseconds(
        flags.GetSize("mutate_interval_us", 5000));
    std::printf("--- mutation under load (mono, adaptive, one remove+insert "
                "per %lld us) ---\n",
                static_cast<long long>(mutate_interval.count()));
    AsyncServerOptions options;
    options.queue_capacity = 4096;
    options.max_batch = max_batch;
    options.num_workers = 1;
    options.retrieve_threads = 0;
    AsyncRetrievalServer server(stack.mono.get(), options);

    std::atomic<bool> stop{false};
    std::atomic<size_t> mutations{0};
    std::thread mutator([&] {
      Rng rng(909);
      while (!stop.load(std::memory_order_relaxed)) {
        // Remove a random object and re-insert it (re-embedding is
        // deterministic, so the quiescent content is unchanged; the
        // interior remove exercises the copy-on-write path).
        size_t id = rng.Index(n);
        if (server.Remove(id).ok()) {
          mutations.fetch_add(1, std::memory_order_relaxed);
          auto dx = [&stack, id](size_t other) {
            return id == other ? 0.0 : stack.oracle.Distance(id, other);
          };
          Status st = server.Insert(id, dx);
          QSE_CHECK_MSG(st.ok(), st.ToString());
          mutations.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(mutate_interval);
      }
    });
    RunResult res = RunClosedLoop(
        clients, requests, stack.queries, [&](const DxToDatabaseFn& dx) {
          Future<StatusOr<RetrievalResponse>> f =
              server.Submit({dx, base_options});
          const auto& r = f.Get();
          QSE_CHECK_MSG(r.ok(), r.status().ToString());
        });
    stop.store(true, std::memory_order_relaxed);
    mutator.join();
    server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
    QSE_CHECK_MSG(stack.mono->size() == n,
                  "mutation loop did not restore the database");
    Report("SL_Mutate/mono/async_adaptive", res, &json,
           {{"mutations", static_cast<double>(mutations.load())}});
  }

  // --- SL_Remote: 2-shard x 2-replica multi-process serving ---------
  //
  // Four child processes (fork/exec of this binary in --shard_server
  // mode) serve the hash-partitioned database over TCP; the parent
  // composes ShardedRetrievalEngine over two HedgedReplicaBackends,
  // each over two RemoteRetrievalBackends.  Replica (shard 0, replica
  // 1) injects a 40ms delay on every 32nd scan it serves — rare enough
  // (~3% of that server's scans) to keep its latency-quantile hedge
  // estimate fast, frequent enough (~1.6% of caller requests) to own
  // the no-hedging p99.
  //
  // Phases, each gated by tools/check_bench_regressions.py:
  //  * parity: the cluster answers bit-identically to the in-process
  //    2-shard engine (zero mismatches);
  //  * nohedge/hedged closed loops: hedging must cut the p99 the slow
  //    replica inflates, and win at least one race;
  //  * killed: SIGKILL the slow replica mid-cluster; failover must
  //    leave zero caller-visible failures.
  {
    constexpr size_t kRemoteShards = 2;
    constexpr size_t kReplicas = 2;
    const size_t remote_requests = flags.GetSize("remote_requests", 600);
    const size_t parity_queries = std::min<size_t>(64, stack.queries.size());
    std::printf("--- remote cluster (%zu shards x %zu replicas, "
                "multi-process) ---\n",
                kRemoteShards, kReplicas);

    uint16_t ports[kRemoteShards][kReplicas];
    pid_t pids[kRemoteShards][kReplicas];
    for (size_t s = 0; s < kRemoteShards; ++s) {
      for (size_t r = 0; r < kReplicas; ++r) {
        ports[s][r] = PickFreePort();
        const bool slow = s == 0 && r == 1;
        pids[s][r] =
            SpawnShardServer(argv[0], s, kRemoteShards, ports[s][r], n, dims,
                             num_queries, slow ? 32 : 0, slow ? 40 : 0);
      }
    }
    for (size_t s = 0; s < kRemoteShards; ++s) {
      for (size_t r = 0; r < kReplicas; ++r) {
        QSE_CHECK_MSG(WaitForServer(ports[s][r], 120.0),
                      "shard server did not come up");
      }
    }

    std::vector<std::shared_ptr<RetrievalBackend>> hedged_shards;
    std::vector<std::shared_ptr<RetrievalBackend>> nohedge_shards;
    for (size_t s = 0; s < kRemoteShards; ++s) {
      std::vector<std::shared_ptr<RetrievalBackend>> replicas;
      for (size_t r = 0; r < kReplicas; ++r) {
        replicas.push_back(std::make_shared<net::RemoteRetrievalBackend>(
            &stack.model, "127.0.0.1", ports[s][r]));
      }
      hedged_shards.push_back(std::make_shared<net::HedgedReplicaBackend>(
          replicas, net::HedgedBackendOptions{}));
      net::HedgedBackendOptions hedge_off;
      hedge_off.enable_hedging = false;
      nohedge_shards.push_back(std::make_shared<net::HedgedReplicaBackend>(
          std::move(replicas), hedge_off));
    }
    ShardedRetrievalEngine hedged_cluster(&stack.model, hedged_shards);
    ShardedRetrievalEngine nohedge_cluster(&stack.model, nohedge_shards);

    // Parity against an in-process engine with the same shard count
    // (and therefore, via the shared hash partition, the same shards).
    // Embed a fresh database rather than reusing stack.db: SL_Mutate's
    // remove/re-insert churn permutes the physical row order, and the
    // partitioning constructor pairs db_ids[row] with row(row)
    // positionally — it needs a database whose row order matches
    // db_ids, exactly as the shard servers rebuilt theirs.
    EmbeddedDatabase pristine_db =
        EmbedDatabase(stack.model, stack.oracle, stack.db_ids);
    ShardedEngineOptions ref_options;
    ref_options.num_shards = kRemoteShards;
    ShardedRetrievalEngine reference(&stack.model, &stack.scorer, pristine_db,
                                     stack.db_ids, ref_options);
    size_t mismatches = 0;
    for (size_t q = 0; q < parity_queries; ++q) {
      auto want = reference.Retrieve({stack.queries[q], base_options});
      auto got = hedged_cluster.Retrieve({stack.queries[q], base_options});
      QSE_CHECK_MSG(want.ok(), want.status().ToString());
      QSE_CHECK_MSG(got.ok(), got.status().ToString());
      bool same = want->neighbors.size() == got->neighbors.size();
      for (size_t i = 0; same && i < want->neighbors.size(); ++i) {
        same = want->neighbors[i].index == got->neighbors[i].index &&
               want->neighbors[i].score == got->neighbors[i].score;
      }
      if (!same) ++mismatches;
    }
    std::printf("parity: %zu/%zu queries bit-identical to the in-process "
                "2-shard engine\n",
                parity_queries - mismatches, parity_queries);
    BenchJsonEntry parity;
    parity.name = "SL_Remote/parity";
    parity.real_time_ns = 0;
    parity.extras.emplace_back("parity_queries",
                               static_cast<double>(parity_queries));
    parity.extras.emplace_back("parity_mismatches",
                               static_cast<double>(mismatches));
    json.push_back(std::move(parity));

    // Closed loops: no-hedging first — it doubles as the warmup that
    // populates the replica latency histograms the hedge timer
    // estimates its delays from.
    RunResult nohedge =
        RunClosedLoop(clients, remote_requests, stack.queries,
                      [&](const DxToDatabaseFn& dx) {
                        auto r = nohedge_cluster.Retrieve({dx, base_options});
                        QSE_CHECK_MSG(r.ok(), r.status().ToString());
                      });
    Report("SL_Remote/cluster/nohedge", nohedge, &json);

    auto& registry = obs::MetricRegistry::Global();
    obs::Counter* fired = registry.GetCounter("qse_hedged_fired_total");
    obs::Counter* wins = registry.GetCounter("qse_hedged_wins_total");
    const uint64_t fired_before = fired->Value();
    const uint64_t wins_before = wins->Value();
    RunResult hedged =
        RunClosedLoop(clients, remote_requests, stack.queries,
                      [&](const DxToDatabaseFn& dx) {
                        auto r = hedged_cluster.Retrieve({dx, base_options});
                        QSE_CHECK_MSG(r.ok(), r.status().ToString());
                      });
    const double hedges_fired =
        static_cast<double>(fired->Value() - fired_before);
    const double hedge_wins = static_cast<double>(wins->Value() - wins_before);
    Report("SL_Remote/cluster/hedged", hedged, &json,
           {{"hedges_fired", hedges_fired}, {"hedge_wins", hedge_wins}});
    std::printf("hedging: %.0f fired, %.0f won their race\n", hedges_fired,
                hedge_wins);

    // Kill the slow replica outright.  Failover (immediate on error, no
    // hedge delay spent) must keep every request succeeding; the cost is
    // at most one refused reconnect per affected call.
    QSE_CHECK(kill(pids[0][1], SIGKILL) == 0);
    int wstatus = 0;
    waitpid(pids[0][1], &wstatus, 0);
    std::atomic<size_t> failed{0};
    RunResult killed =
        RunClosedLoop(clients, remote_requests, stack.queries,
                      [&](const DxToDatabaseFn& dx) {
                        auto r = hedged_cluster.Retrieve({dx, base_options});
                        if (!r.ok()) failed.fetch_add(1);
                      });
    Report("SL_Remote/cluster/killed", killed, &json,
           {{"failed_requests", static_cast<double>(failed.load())}});
    std::printf("killed replica (shard 0, replica 1): %zu/%zu requests "
                "failed (must be 0)\n",
                failed.load(), remote_requests);

    for (size_t s = 0; s < kRemoteShards; ++s) {
      for (size_t r = 0; r < kReplicas; ++r) {
        if (s == 0 && r == 1) continue;  // already reaped
        kill(pids[s][r], SIGKILL);
        waitpid(pids[s][r], &wstatus, 0);
      }
    }
  }

  const std::string stem =
      out.size() > 5 && out.compare(out.size() - 5, 5, ".json") == 0
          ? out.substr(0, out.size() - 5)
          : out;

#ifndef QSE_DISABLE_TRACING
  // The observability acceptance path: one explicitly traced request
  // over the SHARDED server, its spans written as Chrome trace_event
  // JSON (load in Perfetto / chrome://tracing) and its span coverage —
  // the fraction of admit-to-completion wall-clock the spans account
  // for — gated at >= 0.95 by tools/check_bench_regressions.py.  A
  // sub-millisecond request can lose more than 5% to one unlucky OS
  // preemption between stamps, so take the best of a few attempts.
  {
    AsyncServerOptions options;
    options.registry = &obs::MetricRegistry::Global();
    AsyncRetrievalServer server(stack.sharded.get(), options);
    double best_coverage = 0;
    size_t num_spans = 0;
    std::string chrome_json;
    for (int attempt = 0; attempt < 5 && best_coverage < 0.95; ++attempt) {
      RetrievalRequest req{stack.queries[attempt % stack.queries.size()],
                           base_options};
      req.trace = std::make_shared<obs::RequestTrace>();
      Future<StatusOr<RetrievalResponse>> f = server.Submit(std::move(req));
      const auto& r = f.Get();
      QSE_CHECK_MSG(r.ok(), r.status().ToString());
      QSE_CHECK_MSG(r.value().trace != nullptr,
                    "traced request lost its trace");
      std::vector<obs::TraceSpan> spans = r.value().trace->spans();
      double coverage = obs::SpanCoverage(spans);
      if (coverage > best_coverage || chrome_json.empty()) {
        best_coverage = coverage;
        num_spans = spans.size();
        chrome_json = r.value().trace->ChromeTraceJson();
      }
    }
    server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);

    const std::string trace_path = stem + "_trace.json";
    std::ofstream trace_out(trace_path);
    QSE_CHECK_MSG(trace_out.good(), "cannot open " + trace_path);
    trace_out << chrome_json;
    trace_out.flush();
    QSE_CHECK_MSG(trace_out.good(), "failed writing " + trace_path);
    std::printf("--- trace (sharded, 1 sampled request) ---\n"
                "spans %zu, coverage %.3f of admit-to-completion; wrote %s\n",
                num_spans, best_coverage, trace_path.c_str());
    BenchJsonEntry entry;
    entry.name = "SL_Trace/sharded";
    entry.real_time_ns = 0;
    entry.extras.emplace_back("trace_coverage", best_coverage);
    entry.extras.emplace_back("trace_spans", static_cast<double>(num_spans));
    json.push_back(std::move(entry));
  }
#endif  // QSE_DISABLE_TRACING

  // --- SL_Drift: background quality auditing + drift detection ------
  //
  // (a) Control: the adaptive closed loop again, now with a
  // QualityMonitor sampling 1-in-16 completed responses into background
  // exact-kNN audits.  Gates: audit overhead keeps p99 within a small
  // factor of the audit-free adaptive run, ZERO false drift alarms on
  // this stationary workload, and the shed ratio stays bounded.  The
  // monitor publishes into the global registry, so the exported
  // server_load_metrics.{json,prom} carry the qse_quality_* series.
  std::printf("--- quality audits + drift (control: no drift) ---\n");
  {
    obs::QualityMonitorOptions qopts;
    qopts.sample_every_n = 16;
    qopts.registry = &obs::MetricRegistry::Global();
    obs::QualityMonitor monitor(qopts);
    AsyncServerOptions options;
    options.queue_capacity = 4096;
    options.max_batch = max_batch;
    options.num_workers = 1;
    options.retrieve_threads = 0;
    options.quality_monitor = &monitor;
    AsyncRetrievalServer server(stack.mono.get(), options);
    RunResult res = RunClosedLoop(
        clients, requests, stack.queries, [&](const DxToDatabaseFn& dx) {
          Future<StatusOr<RetrievalResponse>> f =
              server.Submit({dx, base_options});
          const auto& r = f.Get();
          QSE_CHECK_MSG(r.ok(), r.status().ToString());
        });
    server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
    monitor.Flush();
    obs::QualityMonitorStats ms = monitor.stats();
    monitor.Shutdown();
    const double shed_ratio =
        ms.sampled > 0 ? double(ms.shed) / double(ms.sampled) : 0.0;
    std::printf("audits: sampled %llu completed %llu shed %llu "
                "(ratio %.3f); recall@k %.3f; false alarms %llu\n",
                static_cast<unsigned long long>(ms.sampled),
                static_cast<unsigned long long>(ms.completed),
                static_cast<unsigned long long>(ms.shed), shed_ratio,
                ms.recall_at_k,
                static_cast<unsigned long long>(ms.alarms));
    Report("SL_Drift/mono/control", res, &json,
           {{"audits_completed", static_cast<double>(ms.completed)},
            {"audits_shed", static_cast<double>(ms.shed)},
            {"audit_shed_ratio", shed_ratio},
            {"false_alarms", static_cast<double>(ms.alarms)},
            {"audited_recall", ms.recall_at_k}});
  }

  // (b) Abrupt drift: a small frozen-embedding stack whose true
  // distances step-change at a known onset, audited on EVERY query so
  // alarm latency is measured in audits deterministically.  Gates:
  // the alarm must raise, within a bounded number of audits past the
  // onset, and the audited recall must actually have degraded (the
  // alarm fired for a real reason).  Metrics go to a private registry
  // exported as <stem>_drift_metrics.{json,prom}.
  {
    const size_t drift_n = flags.GetSize("drift_n", 4000);
    const size_t drift_onset = 64;
    const size_t drift_max_steps = 512;
    obs::MetricRegistry drift_registry;
    DriftStack drift(drift_n, 128, dims,
                     bench::AbruptDrift(drift_onset), 1907);
    obs::QualityMonitorOptions qopts;
    qopts.sample_every_n = 1;  // Audit everything: deterministic latency.
    qopts.window = 16;
    qopts.registry = &drift_registry;
    obs::QualityMonitor monitor(qopts);
    RetrievalOptions dro(/*k=*/10, /*p=*/50);
    dro.audit_monitor = &monitor;

    double recall_before = 0.0, recall_after = 0.0;
    size_t audits_to_alarm = 0;
    bool alarm_raised = false;
    for (size_t step = 0; step < drift_max_steps; ++step) {
      drift.oracle.SetStep(step);
      auto r = drift.mono->Retrieve(
          {drift.queries[step % drift.queries.size()], dro});
      QSE_CHECK_MSG(r.ok(), r.status().ToString());
      monitor.Flush();
      obs::QualityMonitorStats ms = monitor.stats();
      if (step + 1 == drift_onset) recall_before = ms.recall_at_k;
      if (!alarm_raised && ms.drift_alarm) {
        alarm_raised = true;
        audits_to_alarm =
            ms.completed > drift_onset ? ms.completed - drift_onset : 0;
        recall_after = ms.recall_at_k;
        break;
      }
    }
    monitor.Shutdown();
    std::printf("--- drift (abrupt at audit %zu, mono, audit-every-query) "
                "---\nalarm %s after %zu post-onset audits; recall %.3f -> "
                "%.3f\n",
                drift_onset, alarm_raised ? "RAISED" : "missed",
                audits_to_alarm, recall_before, recall_after);
    BenchJsonEntry entry;
    entry.name = "SL_Drift/mono/abrupt";
    entry.real_time_ns = 0;
    entry.extras.emplace_back("alarm_raised", alarm_raised ? 1.0 : 0.0);
    entry.extras.emplace_back("audits_to_alarm",
                              static_cast<double>(audits_to_alarm));
    entry.extras.emplace_back("recall_before", recall_before);
    entry.extras.emplace_back("recall_after", recall_after);
    entry.extras.emplace_back("recall_degradation",
                              recall_before - recall_after);
    json.push_back(std::move(entry));

    Status ds = bench::WriteMetricsJson(stem + "_drift_metrics.json",
                                        drift_registry);
    QSE_CHECK_MSG(ds.ok(), ds.ToString());
    ds = bench::WriteMetricsPrometheus(stem + "_drift_metrics.prom",
                                       drift_registry);
    QSE_CHECK_MSG(ds.ok(), ds.ToString());
  }

  // (c) p = n, no drift: the degenerate-to-brute-force configuration in
  // which filter-and-refine provably returns the exact answer — every
  // audit must find a bit-identical neighbor set (zero mismatches,
  // recall exactly 1).  Runs over the SHARDED engine so the scatter/
  // gather audit path is the one verified.
  {
    const size_t verify_n = 1500;
    obs::MetricRegistry verify_registry;
    DriftStack verify(verify_n, 32, dims, DriftSchedule{}, 2317);
    obs::QualityMonitorOptions qopts;
    qopts.sample_every_n = 1;
    qopts.registry = &verify_registry;
    obs::QualityMonitor monitor(qopts);
    RetrievalOptions vro(/*k=*/10, /*p=*/verify_n);
    vro.audit_monitor = &monitor;
    for (size_t i = 0; i < verify.queries.size(); ++i) {
      auto r = verify.sharded->Retrieve({verify.queries[i], vro});
      QSE_CHECK_MSG(r.ok(), r.status().ToString());
    }
    monitor.Flush();
    obs::QualityMonitorStats ms = monitor.stats();
    monitor.Shutdown();
    std::printf("--- verify (sharded, p = n, no drift) ---\n"
                "%llu audits, %llu mismatches (must be 0), recall %.3f\n",
                static_cast<unsigned long long>(ms.completed),
                static_cast<unsigned long long>(ms.mismatches),
                ms.recall_at_k);
    BenchJsonEntry entry;
    entry.name = "SL_Drift/sharded/verify_pn";
    entry.real_time_ns = 0;
    entry.extras.emplace_back("audits_completed",
                              static_cast<double>(ms.completed));
    entry.extras.emplace_back("audit_mismatches",
                              static_cast<double>(ms.mismatches));
    entry.extras.emplace_back("exact_recall", ms.recall_at_k);
    json.push_back(std::move(entry));
  }

  // --- SL_Recover: durability — WAL tail cost + warm restart --------
  //
  // The same closed-loop-with-background-mutator workload as SL_Mutate,
  // run twice over two identically-built engines: once bare (WAL off,
  // the baseline) and once behind the DurableBackend with fsync-every-N
  // and auto-snapshots (WAL on).  Then a warm restart: recover a THIRD
  // engine from the directory the WAL-on run left behind and verify it
  // bit-identical (memcmp over rows + ids) and answer-identical to the
  // live engine.  Gates in tools/check_bench_regressions.py: zero
  // parity mismatches, at least one record actually replayed, and the
  // WAL-on p99 within a host-adaptive factor of WAL-off.
  {
    const size_t recover_n =
        flags.GetSize("recover_n", std::min<size_t>(n, 4000));
    const std::string dur_dir = stem + "_durability";
    ::mkdir(dur_dir.c_str(), 0755);
    for (const char* f : {"/wal.qse", "/snapshot.qse", "/snapshot.qse.tmp"}) {
      std::remove((dur_dir + f).c_str());
    }
    std::printf("--- durability (mono, n=%zu, fsync every 64, dir %s) ---\n",
                recover_n, dur_dir.c_str());

    const auto dx_of = [&](size_t id) {
      return [&stack, id](size_t other) {
        return id == other ? 0.0 : stack.oracle.Distance(id, other);
      };
    };
    // Closed loop + mutator over any backend, SL_Mutate's shape.
    const auto run_mutating_loop = [&](RetrievalBackend* backend) {
      AsyncServerOptions options;
      options.queue_capacity = 4096;
      options.max_batch = max_batch;
      options.num_workers = 1;
      options.retrieve_threads = 0;
      AsyncRetrievalServer server(backend, options);
      std::atomic<bool> stop{false};
      std::thread mutator([&] {
        Rng rng(911);
        while (!stop.load(std::memory_order_relaxed)) {
          size_t id = rng.Index(recover_n);
          if (server.Remove(id).ok()) {
            Status st = server.Insert(id, dx_of(id));
            QSE_CHECK_MSG(st.ok(), st.ToString());
          }
          std::this_thread::sleep_for(std::chrono::microseconds(5000));
        }
      });
      RunResult res = RunClosedLoop(
          clients, requests, stack.queries, [&](const DxToDatabaseFn& dx) {
            Future<StatusOr<RetrievalResponse>> f =
                server.Submit({dx, base_options});
            const auto& r = f.Get();
            QSE_CHECK_MSG(r.ok(), r.status().ToString());
          });
      stop.store(true, std::memory_order_relaxed);
      mutator.join();
      server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
      return res;
    };

    // (a) WAL off: bare engine, same content, same churn.
    EmbeddedDatabase off_db(dims);
    RetrievalEngine off_engine(&stack.model, &stack.scorer, &off_db, {});
    for (size_t id = 0; id < recover_n; ++id) {
      QSE_CHECK(off_engine.Insert(id, dx_of(id)).ok());
    }
    RunResult res_off = run_mutating_loop(&off_engine);
    Report("SL_Recover/mono/wal_off", res_off, &json);

    // (b) WAL on: every mutation logged, snapshots compacting mid-run.
    persist::DurabilityOptions dopts;
    dopts.dir = dur_dir;
    dopts.fsync = persist::FsyncPolicy::kEveryN;
    dopts.fsync_every_n = 64;
    dopts.snapshot_every_records = recover_n / 2;
    auto opened = persist::DurabilityManager::Open(dopts);
    QSE_CHECK_MSG(opened.ok(), opened.status().ToString());
    persist::DurabilityManager* manager = opened.value().get();
    EmbeddedDatabase wal_db(dims);
    RetrievalEngine wal_engine(&stack.model, &stack.scorer, &wal_db, {});
    persist::DurableBackend durable(&wal_engine, &stack.model, manager,
                                    {&wal_db});
    for (size_t id = 0; id < recover_n; ++id) {
      QSE_CHECK(durable.Insert(id, dx_of(id)).ok());
    }
    RunResult res_on = run_mutating_loop(&durable);
    // Two more logged mutations so the WAL always has a live tail past
    // the last auto-snapshot — recovery below must have records to
    // replay even if a snapshot happened to fire on the loop's final
    // mutation.
    QSE_CHECK(durable.Remove(0).ok());
    QSE_CHECK(durable.Insert(0, dx_of(0)).ok());
    const uint64_t wal_last_seq = manager->last_seq();
    Report("SL_Recover/mono/wal_on", res_on, &json,
           {{"wal_last_seq", static_cast<double>(wal_last_seq)}});

    // (c) Warm restart: recover a fresh engine from the directory the
    // WAL-on run just left (snapshot + live tail; the process conveniently
    // did not crash, but recovery cannot tell).
    Timer recover_timer;
    auto reopened = persist::DurabilityManager::Open(dopts);
    QSE_CHECK_MSG(reopened.ok(), reopened.status().ToString());
    persist::DurabilityManager* rec_manager = reopened.value().get();
    EmbeddedDatabase rec_db(dims);
    RetrievalEngine rec_engine(&stack.model, &stack.scorer, &rec_db, {});
    QSE_CHECK(rec_manager->InstallSnapshot({&rec_db}).ok());
    rec_engine.RebuildIdIndex();
    auto replayed = rec_manager->Replay(&rec_engine);
    QSE_CHECK_MSG(replayed.ok(), replayed.status().ToString());
    const double recovery_ms = recover_timer.Seconds() * 1e3;

    // Parity: the recovered database must be memcmp-identical to the
    // live one (the WAL is the exact successful mutation sequence), and
    // answer-identically on queries.
    size_t parity_mismatches = 0;
    {
      EmbeddedDatabase::Snapshot live_pin = wal_db.snapshot();
      EmbeddedDatabase::Snapshot rec_pin = rec_db.snapshot();
      const EmbeddedDatabase::View& lv = live_pin.view();
      const EmbeddedDatabase::View& rv = rec_pin.view();
      if (lv.size() != rv.size() ||
          std::memcmp(lv.data(), rv.data(),
                      lv.size() * lv.dims() * sizeof(double)) != 0 ||
          std::memcmp(lv.ids(), rv.ids(), lv.size() * sizeof(size_t)) != 0) {
        ++parity_mismatches;
      }
    }
    const size_t parity_queries = std::min<size_t>(64, stack.queries.size());
    for (size_t q = 0; q < parity_queries; ++q) {
      auto want = wal_engine.Retrieve({stack.queries[q], base_options});
      auto got = rec_engine.Retrieve({stack.queries[q], base_options});
      QSE_CHECK_MSG(want.ok(), want.status().ToString());
      QSE_CHECK_MSG(got.ok(), got.status().ToString());
      bool same = want->neighbors.size() == got->neighbors.size();
      for (size_t i = 0; same && i < want->neighbors.size(); ++i) {
        same = want->neighbors[i].index == got->neighbors[i].index &&
               want->neighbors[i].score == got->neighbors[i].score;
      }
      if (!same) ++parity_mismatches;
    }
    std::printf("recovery: %.1f ms to warm-restart (%llu records replayed "
                "over a snapshot at seq %llu); %zu parity mismatches "
                "(must be 0)\n",
                recovery_ms,
                static_cast<unsigned long long>(replayed.value()),
                static_cast<unsigned long long>(
                    rec_manager->recovery().snapshot_cut_seq),
                parity_mismatches);
    BenchJsonEntry recover;
    recover.name = "SL_Recover/mono/recovery";
    recover.real_time_ns = recovery_ms * 1e6;
    recover.extras.emplace_back("recovery_ms", recovery_ms);
    recover.extras.emplace_back("replayed_records",
                                static_cast<double>(replayed.value()));
    recover.extras.emplace_back(
        "snapshot_cut_seq",
        static_cast<double>(rec_manager->recovery().snapshot_cut_seq));
    recover.extras.emplace_back("parity_mismatches",
                                static_cast<double>(parity_mismatches));
    json.push_back(std::move(recover));
  }

  Status s = bench::WriteBenchJson(out, json);
  QSE_CHECK_MSG(s.ok(), s.ToString());

  // The metrics snapshot artifact: every engine counter/histogram plus
  // the servers that ran against the global registry, as machine-
  // diffable JSON (presence floors in check_bench_regressions.py) and
  // Prometheus text exposition.
  s = bench::WriteMetricsJson(stem + "_metrics.json",
                              obs::MetricRegistry::Global());
  QSE_CHECK_MSG(s.ok(), s.ToString());
  s = bench::WriteMetricsPrometheus(stem + "_metrics.prom",
                                    obs::MetricRegistry::Global());
  QSE_CHECK_MSG(s.ok(), s.ToString());
  std::printf("\nwrote %s (%zu benchmark entries), %s_metrics.{json,prom}\n",
              out.c_str(), json.size(), stem.c_str());
  return 0;
}
