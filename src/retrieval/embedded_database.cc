#include "src/retrieval/embedded_database.h"

#include <algorithm>
#include <cstdint>
#include <functional>

#ifdef __linux__
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "src/util/logging.h"

namespace qse {

namespace {
/// Buffers below this size are not worth a madvise syscall.
constexpr size_t kHugePageAdviseBytes = 8u << 20;
}  // namespace

void EmbeddedDatabase::MaybeAdviseHugePages() {
#ifdef __linux__
  if (data_.data() == advised_) return;
  if (data_.capacity() * sizeof(double) < kHugePageAdviseBytes) return;
  // madvise wants page-aligned addresses; round the buffer inward.  Ask
  // the OS for the page size — arm64 kernels commonly run 16K/64K pages
  // and a hardcoded 4096 would make every madvise fail with EINVAL.
  static const uintptr_t kPage =
      static_cast<uintptr_t>(sysconf(_SC_PAGESIZE));
  uintptr_t begin = reinterpret_cast<uintptr_t>(data_.data());
  uintptr_t end = begin + data_.capacity() * sizeof(double);
  uintptr_t aligned_begin = (begin + kPage - 1) & ~(kPage - 1);
  uintptr_t aligned_end = end & ~(kPage - 1);
  if (aligned_end > aligned_begin) {
    // Best effort: kernels without THP simply refuse.
    (void)madvise(reinterpret_cast<void*>(aligned_begin),
                  aligned_end - aligned_begin, MADV_HUGEPAGE);
  }
  advised_ = data_.data();
#endif
}

void EmbeddedDatabase::Reserve(size_t rows) {
  if (dims_ == 0) return;
  if (rows * dims_ <= data_.capacity()) return;
  data_.reserve(rows * dims_);
  MaybeAdviseHugePages();
}

Vector EmbeddedDatabase::RowVector(size_t i) const {
  QSE_CHECK(i < size_);
  const double* r = row(i);
  return Vector(r, r + dims_);
}

void EmbeddedDatabase::Resize(size_t rows) {
  // Advise between allocation and first touch: MADV_HUGEPAGE only
  // affects pages not yet faulted in, and resize's value-initialization
  // touches everything.
  if (rows * dims_ > data_.capacity()) {
    data_.reserve(rows * dims_);
    MaybeAdviseHugePages();
  }
  data_.resize(rows * dims_, 0.0);
  size_ = rows;
}

size_t EmbeddedDatabase::Append(const Vector& row) {
  QSE_CHECK_MSG(row.size() == dims_,
                "row has " << row.size() << " dims, database has " << dims_);
  return Append(row.data());
}

size_t EmbeddedDatabase::Append(const double* row) {
  // The borrowed row may point into this database's own buffer (e.g.
  // duplicating a row); growth would invalidate it mid-copy, so in that
  // case reallocate first — preserving amortized doubling — and rebase
  // the pointer onto the new buffer.
  std::less<const double*> lt;
  bool aliases_self = !data_.empty() && !lt(row, data_.data()) &&
                      lt(row, data_.data() + data_.size());
  if (aliases_self && data_.size() + dims_ > data_.capacity()) {
    size_t offset = static_cast<size_t>(row - data_.data());
    data_.reserve(std::max(data_.capacity() * 2, data_.size() + dims_));
    row = data_.data() + offset;
  }
  data_.insert(data_.end(), row, row + dims_);
  MaybeAdviseHugePages();  // Re-advise only after a reallocation.
  return size_++;
}

void EmbeddedDatabase::SetRow(size_t i, const Vector& row) {
  QSE_CHECK(i < size_);
  QSE_CHECK_MSG(row.size() == dims_,
                "row has " << row.size() << " dims, database has " << dims_);
  std::copy(row.begin(), row.end(), mutable_row(i));
}

size_t EmbeddedDatabase::SwapRemove(size_t i) {
  QSE_CHECK(i < size_);
  size_t last = size_ - 1;
  if (i != last) {
    std::copy(row(last), row(last) + dims_, mutable_row(i));
  }
  data_.resize(last * dims_);
  size_ = last;
  return last;
}

EmbeddedDatabase EmbeddedDatabase::FromRows(const std::vector<Vector>& rows) {
  EmbeddedDatabase db(rows.empty() ? 0 : rows[0].size());
  db.Reserve(rows.size());
  for (const Vector& r : rows) db.Append(r);
  return db;
}

}  // namespace qse
