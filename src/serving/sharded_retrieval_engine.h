#ifndef QSE_SERVING_SHARDED_RETRIEVAL_ENGINE_H_
#define QSE_SERVING_SHARDED_RETRIEVAL_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/obs/metric_registry.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_backend.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/util/statusor.h"

namespace qse {

/// How Insert routes a database id to a shard.
enum class ShardAssignment {
  /// shard = mix64(db_id) % S.  Stateless and deterministic: two engines
  /// built over the same ids always agree, so shard layouts are
  /// reproducible across processes (and, later, across nodes).
  kHashId,
  /// The currently smallest shard (ties broken by lowest shard index).
  /// Keeps shard sizes within one row of each other whatever the id
  /// distribution, at the cost of a layout that depends on insert order.
  kLeastLoaded,
};

/// The kHashId partition function, exposed so out-of-process shard
/// builders (a remote shard server populating its slice of the database)
/// can reproduce the exact partition a composed ShardedRetrievalEngine
/// will route against.
size_t HashShardOf(size_t db_id, size_t num_shards);

struct ShardedEngineOptions {
  /// Number of shards S.  0 means one shard per hardware core.
  size_t num_shards = 0;
  ShardAssignment assignment = ShardAssignment::kHashId;
  /// Threads used to scatter ONE query's filter step across shards
  /// (Retrieve).  0 means hardware concurrency.  RetrieveBatch ignores
  /// this and parallelizes across queries instead, scanning each query's
  /// shards serially — one level of parallelism, never nested.
  size_t scatter_threads = 0;
  /// Filter shadow matrices (kShadowFloat32 | kShadowInt8) every shard
  /// database carries, enabling reduced-precision requests
  /// (RetrievalOptions::filter_precision).  0 = exact-only, no shadow
  /// memory.
  uint32_t filter_shadows = 0;
};

/// Scatter/gather retrieval over S per-shard engines — the serving layer's
/// answer to the filter step's linear scan growing with n: each shard owns
/// an EmbeddedDatabase + RetrievalEngine over a disjoint subset of the
/// database, one query's filter scan fans out across shards in parallel,
/// per-shard top-p candidate lists are gathered through a k-way heap merge
/// (MergeSortedTopK), and a single global refine re-ranks the merged top p
/// by exact distance.  A request with want_stats receives per-shard
/// scan/candidate counters in RetrievalResponse::shard_stats.
///
/// Exactness: results are bit-identical to an unsharded RetrievalEngine at
/// equal p over the same data — every row's filter score is computed by the
/// same kernel regardless of which shard holds it, and the merge keeps the
/// globally smallest p under the same (score, id) total order.  Without
/// exact filter-score ties the guarantee is unconditional.  Under ties the
/// top-p boundary is resolved by row position — globally in the unsharded
/// engine, locally in each shard — so exact tie-for-tie parity additionally
/// assumes rows ascend with ids both in the unsharded engine and within
/// every shard.  That holds for partition construction and insert-only
/// workloads with increasing ids; Remove's swap-with-last can scramble it,
/// after which a tie at the p boundary may keep a different (equally
/// correct) tied candidate.
///
/// Neighbor indices in results are database ids, not rows: shard-local row
/// positions are meaningless to callers, so db_id_of() is the identity.
///
/// Thread-safety matches RetrievalEngine: Retrieve/RetrieveBatch are const
/// and safe concurrently; Insert/Remove are serialized internally and may
/// run concurrently with retrievals.  Each retrieval pins one epoch
/// snapshot per shard it scans, so per-shard results are each consistent;
/// a mutation only ever touches one shard, and a retrieval observes every
/// mutation that completed before it started, never one that started
/// after it finished, and any subset of concurrent ones.
class ShardedRetrievalEngine : public RetrievalBackend {
 public:
  /// An empty engine with S empty shards of dimensionality
  /// embedder->dims(); fill it through Insert.
  ShardedRetrievalEngine(const Embedder* embedder, const FilterScorer* scorer,
                         ShardedEngineOptions options = {});

  /// Partitions an already-embedded database across shards by the
  /// assignment policy, copying rows — no re-embedding.  `db_ids[i]` is
  /// the database id of row i of `db`; ids must be unique.  `db` is only
  /// read during construction and not retained.
  ShardedRetrievalEngine(const Embedder* embedder, const FilterScorer* scorer,
                         const EmbeddedDatabase& db,
                         const std::vector<size_t>& db_ids,
                         ShardedEngineOptions options = {});

  /// Composes over pre-built shard backends instead of owning local
  /// engines — the multi-node topology: each backend is typically a
  /// RemoteRetrievalBackend (or a HedgedReplicaBackend over several),
  /// and the scatter step calls its ScanCandidates over the wire while
  /// everything else (embed once, merge, single global refine) runs
  /// unchanged.  shard_backends[s] serves shard s; with kHashId
  /// assignment the backends must hold the same id partition this
  /// engine's own constructors would build, or Insert routing and
  /// retrieval parity break.  options.num_shards is taken from the
  /// backend count; options.filter_shadows is ignored (the backends own
  /// their shadow setup).  size() is the construction-time sum plus
  /// mutations routed through this engine; quality audits are disabled
  /// (the pinned snapshots live in other processes).
  ShardedRetrievalEngine(
      const Embedder* embedder,
      std::vector<std::shared_ptr<RetrievalBackend>> shard_backends,
      ShardedEngineOptions options = {});

  /// Scatter/gather retrieval; neighbor indices are database ids.  Same
  /// validation contract as RetrievalEngine::Retrieve.
  StatusOr<RetrievalResponse> Retrieve(
      const RetrievalRequest& request) const override;

  /// Thread-parallel over queries (each query's scatter runs serially);
  /// results[i] is bit-identical to Retrieve({queries[i], options}).
  StatusOr<std::vector<RetrievalResponse>> RetrieveBatch(
      const std::vector<DxToDatabaseFn>& queries,
      const RetrievalOptions& options) const override;

  /// Embeds the new object once and appends it to the shard chosen by the
  /// assignment policy.  InvalidArgument on a duplicate id.  Safe
  /// concurrently with retrievals.
  Status Insert(size_t db_id, const DxToDatabaseFn& dx) override;

  /// Removes from whichever shard holds the id.  NotFound when absent.
  /// Safe concurrently with retrievals.
  Status Remove(size_t db_id) override;

  /// Filter-only scan: scatter across shards, merge to the global top-p,
  /// skip the refine — what this engine contributes when it is itself a
  /// shard of a larger (hierarchical or multi-node) deployment.
  StatusOr<ScanCandidatesResult> ScanCandidates(
      const Vector& embedded_query,
      const RetrievalOptions& options) const override;

  /// Routes an already-embedded row to the shard the assignment policy
  /// picks (the remote Insert path).  InvalidArgument on duplicate id.
  Status InsertEmbedded(size_t db_id, const Vector& embedded_row) override;

  /// Total objects across all shards.
  size_t size() const override {
    return total_size_.load(std::memory_order_acquire);
  }

  /// Sharded results already carry database ids; identity.
  size_t db_id_of(size_t neighbor_index) const override {
    return neighbor_index;
  }

  size_t num_shards() const { return shards_.size(); }
  /// Current per-shard sizes (the static half of the load picture).
  std::vector<size_t> shard_sizes() const;
  /// Shard an id would route to under kHashId, or currently lives in.
  /// Serialized with mutations (it reads the routing table).
  StatusOr<size_t> ShardOf(size_t db_id) const;
  /// The local engine of shard `s`; only valid for locally-owned shards
  /// (engines constructed by the first two constructors, never the
  /// backend-composing one).
  const RetrievalEngine& shard(size_t s) const { return *shards_[s].engine; }

  /// Shard s's database, mutable — the durability subsystem's restore
  /// target (RestoreVersion installs the snapshot contents verbatim,
  /// then RebuildAfterRestore() re-derives the routing state).  Only
  /// valid for locally-owned shards.  Quiescent API.
  EmbeddedDatabase* mutable_shard_db(size_t s) { return shards_[s].db.get(); }

  /// Re-derives every piece of state the constructors normally build —
  /// each local engine's id -> row index, the id -> shard routing table
  /// and the total size — from the shard databases' current contents.
  /// Call after restoring shard databases via mutable_shard_db() +
  /// RestoreVersion.  Quiescent API; local shards only.
  void RebuildAfterRestore();

 private:
  struct Shard {
    // unique_ptr keeps addresses stable under vector growth and engine
    // moves: each engine holds a raw pointer to its shard's database.
    std::unique_ptr<EmbeddedDatabase> db;
    std::unique_ptr<RetrievalEngine> engine;
    /// Non-null for composed (typically remote) shards; db/engine are
    /// null then and every operation goes through this interface.
    std::shared_ptr<RetrievalBackend> backend;
  };

  /// Shard that Insert would place `db_id` in right now.
  size_t AssignShard(size_t db_id) const;

  /// Rows shard `s` holds right now, whichever kind it is.
  size_t ShardSize(size_t s) const;

  /// The scatter phase shared by ScatterGather and ScanCandidates: runs
  /// every shard's filter-only scan (locally over a pinned snapshot, or
  /// through the shard's composed backend) and fills the per-shard
  /// (score, id)-sorted candidate lists plus scan accounting.  `p` must
  /// already be clamped to size().  audit_snaps is null when no audit
  /// will run (always, for composed shards).
  Status ScatterScan(
      const Vector& fq, const RetrievalOptions& options, size_t p,
      size_t scatter_threads, obs::RequestTrace* trace,
      std::vector<std::vector<ScoredIndex>>* per_shard,
      std::vector<size_t>* rows_scanned, size_t* rows_pruned_out,
      std::vector<std::optional<EmbeddedDatabase::Snapshot>>* audit_snaps)
      const;

  /// The scatter/gather pipeline behind both Retrieve entry points,
  /// taking the envelope pieces by reference so the batch loop never
  /// copies a query functor or the options per query.  A non-null
  /// `trace` gets embed / per-shard shard_scan / merge / refine spans
  /// (sampled requests coming through Retrieve; RetrieveBatch runs
  /// untraced).  Shared ownership so a sampled quality audit can carry
  /// the trace along.
  StatusOr<RetrievalResponse> ScatterGather(
      const DxToDatabaseFn& dx, const RetrievalOptions& options,
      size_t scatter_threads,
      const std::shared_ptr<obs::RequestTrace>& trace) const;

  const Embedder* embedder_;
  const FilterScorer* scorer_;
  ShardedEngineOptions options_;
  std::vector<Shard> shards_;
  /// True when built over composed shard backends (third constructor):
  /// disables quality audits (no local snapshots to pin).
  bool composed_ = false;
  /// Global-registry metrics, resolved once at construction (in-class
  /// so both constructors share the list); the hot path only touches
  /// the striped cells behind these pointers.
  obs::Counter* retrievals_total_ = obs::MetricRegistry::Global().GetCounter(
      "qse_sharded_retrievals_total");
  obs::Counter* exact_distances_total_ =
      obs::MetricRegistry::Global().GetCounter(
          "qse_sharded_exact_distances_total");
  obs::Counter* filter_rows_visited_total_ =
      obs::MetricRegistry::Global().GetCounter(
          "qse_sharded_filter_rows_visited_total");
  obs::Counter* filter_rows_pruned_total_ =
      obs::MetricRegistry::Global().GetCounter(
          "qse_sharded_filter_rows_pruned_total");
  obs::Histogram* embed_ns_ = obs::MetricRegistry::Global().GetHistogram(
      "qse_sharded_embed_latency_ns", obs::DefaultLatencyBoundariesNs());
  obs::Histogram* scatter_ns_ = obs::MetricRegistry::Global().GetHistogram(
      "qse_sharded_scatter_latency_ns", obs::DefaultLatencyBoundariesNs());
  obs::Histogram* merge_ns_ = obs::MetricRegistry::Global().GetHistogram(
      "qse_sharded_merge_latency_ns", obs::DefaultLatencyBoundariesNs());
  obs::Histogram* refine_ns_ = obs::MetricRegistry::Global().GetHistogram(
      "qse_sharded_refine_latency_ns", obs::DefaultLatencyBoundariesNs());
  /// Serializes Insert/Remove (and ShardOf's routing-table read) against
  /// each other; retrievals never take it — they pin shard snapshots.
  mutable std::mutex mutation_mu_;
  /// database id -> shard, maintained only under mutation_mu_; the
  /// retrieval path resolves shard attribution from its own per-shard
  /// candidate lists instead.
  std::unordered_map<size_t, size_t> shard_of_;
  /// Total objects across shards; read lock-free by the retrieval path.
  std::atomic<size_t> total_size_{0};
};

}  // namespace qse

#endif  // QSE_SERVING_SHARDED_RETRIEVAL_ENGINE_H_
