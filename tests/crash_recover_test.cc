// The headline durability test: SIGKILL a process mid-mutation, recover
// from snapshot + WAL, and assert the recovered database is BIT-IDENTICAL
// (float64 matrix, id column, both filter shadows, int8 scales) to a
// reference built by serially replaying the same operation prefix —
// the crashed process's durable history — from scratch.
//
// Mechanism: this binary is both the gtest suite and the crash child.
// Invoked with --crash_child=<dir> --mode=mono|sharded it recovers
// whatever the directory holds, then applies a DETERMINISTIC op sequence
// (fixed seed; op k gets WAL seq k+1 because every op succeeds by
// construction) through a DurableBackend until it is killed.  The parent
// forks/execs itself, waits until a snapshot exists AND a WAL tail has
// grown past it, SIGKILLs the child mid-stream, recovers, reads
// last_seq() = L, and replays ops[0..L) serially into the reference.
// A second generation (kill, restart the child so IT recovers, kill
// again, recover) checks that recovery composes with itself.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/persist/durability.h"
#include "src/persist/durable_backend.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_precision.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/logging.h"
#include "tests/line_universe.h"

namespace qse {
namespace persist {

using test::DxOfObject;
using test::kLineDims;
using test::LineEmbedder;
using test::MakeDx;
using test::Mix64;

namespace {

constexpr uint64_t kCrashSeed = 0x9a7e5c0ffeeull;
constexpr size_t kMaxOps = 500000;
constexpr uint32_t kShadows = kShadowFloat32 | kShadowInt8;
constexpr size_t kShards = 3;

struct CrashOp {
  bool insert;
  size_t id;
};

/// The deterministic op sequence both the child and the reference replay.
/// Every op is valid by construction (fresh ids for inserts, live ids for
/// removes), so the op at index k is exactly the mutation that got WAL
/// sequence k + 1 — the key that lets the parent reconstruct the durable
/// prefix from last_seq() alone.
std::vector<CrashOp> MakeCrashOps(uint64_t seed, size_t count) {
  std::vector<CrashOp> ops;
  ops.reserve(count);
  std::vector<size_t> live;
  size_t next_id = 0;
  uint64_t state = seed;
  auto rnd = [&state]() {
    state = Mix64(state + 0x632be59bd9b4e019ull);
    return state;
  };
  for (size_t i = 0; i < count; ++i) {
    const bool insert =
        live.size() < 64 || (live.size() < 4096 && (rnd() & 1) != 0);
    if (insert) {
      const size_t id = next_id++;
      live.push_back(id);
      ops.push_back({true, id});
    } else {
      const size_t pick = rnd() % live.size();
      const size_t id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      ops.push_back({false, id});
    }
  }
  return ops;
}

DurabilityOptions CrashOptions(const std::string& dir, bool sharded) {
  DurabilityOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kEveryN;
  options.fsync_every_n = 8;
  // Different cadences so the two modes cut snapshots at different seqs.
  options.snapshot_every_records = sharded ? 97 : 64;
  return options;
}

struct MonoStack {
  LineEmbedder embedder;
  L2Scorer scorer;
  EmbeddedDatabase db{kLineDims};
  RetrievalEngine engine{&embedder, &scorer, &db, {}};
};

struct ShardedStack {
  ShardedStack() {
    ShardedEngineOptions options;
    options.num_shards = kShards;
    options.filter_shadows = kShadows;
    engine = std::make_unique<ShardedRetrievalEngine>(&embedder, &scorer,
                                                      options);
  }
  LineEmbedder embedder;
  L2Scorer scorer;
  std::unique_ptr<ShardedRetrievalEngine> engine;
};

Status ApplyOp(RetrievalBackend* backend, const CrashOp& op) {
  return op.insert ? backend->Insert(op.id, DxOfObject(op.id))
                   : backend->Remove(op.id);
}

}  // namespace

/// The crash child: recover the directory, then apply the deterministic
/// op stream from wherever the durable history ends, until killed.
/// Returns nonzero only on a genuine failure (the parent expects to
/// SIGKILL us, never to see a clean exit).
int RunCrashChild(const std::string& dir, const std::string& mode) {
  const bool sharded = (mode == "sharded");
  const DurabilityOptions options = CrashOptions(dir, sharded);
  StatusOr<std::unique_ptr<DurabilityManager>> opened =
      DurabilityManager::Open(options);
  QSE_CHECK_MSG(opened.ok(), "child open failed: " << opened.status());
  DurabilityManager* manager = opened.value().get();

  MonoStack mono;
  ShardedStack shard_stack;
  RetrievalBackend* inner = nullptr;
  const Embedder* embedder = nullptr;
  std::vector<const EmbeddedDatabase*> snapshot_dbs;
  std::vector<EmbeddedDatabase*> restore_dbs;
  if (sharded) {
    inner = shard_stack.engine.get();
    embedder = &shard_stack.embedder;
    for (size_t s = 0; s < kShards; ++s) {
      EmbeddedDatabase* db = shard_stack.engine->mutable_shard_db(s);
      snapshot_dbs.push_back(db);
      restore_dbs.push_back(db);
    }
  } else {
    mono.db.EnableFilterShadows(kShadows);
    inner = &mono.engine;
    embedder = &mono.embedder;
    snapshot_dbs.push_back(&mono.db);
    restore_dbs.push_back(&mono.db);
  }

  Status installed = manager->InstallSnapshot(restore_dbs);
  QSE_CHECK_MSG(installed.ok(), "child install failed: " << installed);
  if (sharded) {
    shard_stack.engine->RebuildAfterRestore();
  } else {
    mono.engine.RebuildIdIndex();
  }
  StatusOr<uint64_t> replayed = manager->Replay(inner);
  QSE_CHECK_MSG(replayed.ok(), "child replay failed: " << replayed.status());

  DurableBackend durable(inner, embedder, manager, snapshot_dbs);
  const std::vector<CrashOp> ops =
      MakeCrashOps(kCrashSeed + (sharded ? 1 : 0), kMaxOps);
  const uint64_t start = manager->last_seq();
  QSE_CHECK(start <= ops.size());

  // Recovery done: tell the parent we are live, then mutate until killed.
  { std::ofstream ready(dir + "/ready"); ready << start; }
  for (size_t i = static_cast<size_t>(start); i < ops.size(); ++i) {
    Status status = ApplyOp(&durable, ops[i]);
    QSE_CHECK_MSG(status.ok(),
                  "child op " << i << " failed: " << status.ToString());
  }
  return 0;
}

namespace {

uint64_t FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/wal.qse").c_str());
  std::remove((dir + "/snapshot.qse").c_str());
  std::remove((dir + "/snapshot.qse.tmp").c_str());
  std::remove((dir + "/ready").c_str());
  return dir;
}

pid_t SpawnChild(const std::string& dir, const std::string& mode) {
  std::remove((dir + "/ready").c_str());
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  QSE_CHECK_MSG(n > 0, "readlink /proc/self/exe failed");
  exe[n] = '\0';
  const pid_t pid = ::fork();
  QSE_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    std::string child_flag = "--crash_child=" + dir;
    std::string mode_flag = "--mode=" + mode;
    char* argv[] = {exe, child_flag.data(), mode_flag.data(), nullptr};
    ::execv(exe, argv);
    _exit(127);  // execv only returns on failure.
  }
  return pid;
}

/// Polls until `done` holds, failing the test (and reaping the child) if
/// the child dies early or the deadline passes.
template <typename Predicate>
bool WaitUntil(pid_t pid, const Predicate& done, const char* what) {
  for (int spins = 0; spins < 30000; ++spins) {  // ~30s at 1ms.
    if (done()) return true;
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, WNOHANG) == pid) {
      ADD_FAILURE() << "crash child exited early while waiting for " << what
                    << " (status " << wstatus << ")";
      return false;
    }
    ::usleep(1000);
  }
  ADD_FAILURE() << "timed out waiting for " << what;
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return false;
}

void KillAndReap(pid_t pid) {
  ASSERT_EQ(0, ::kill(pid, SIGKILL));
  int wstatus = 0;
  ASSERT_EQ(pid, ::waitpid(pid, &wstatus, 0));
  ASSERT_TRUE(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL)
      << "child did not die by SIGKILL: status " << wstatus;
}

void ExpectDbsIdentical(const EmbeddedDatabase& a, const EmbeddedDatabase& b,
                        const std::string& what) {
  SCOPED_TRACE(what);
  EmbeddedDatabase::Snapshot sa = a.snapshot();
  EmbeddedDatabase::Snapshot sb = b.snapshot();
  const EmbeddedDatabase::View& va = sa.view();
  const EmbeddedDatabase::View& vb = sb.view();
  ASSERT_EQ(va.size(), vb.size());
  ASSERT_EQ(va.dims(), vb.dims());
  const size_t cells = va.size() * va.dims();
  EXPECT_EQ(0, std::memcmp(va.data(), vb.data(), cells * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(va.ids(), vb.ids(), va.size() * sizeof(size_t)));
  ASSERT_EQ(va.shadows(), vb.shadows());
  if (va.has_f32()) {
    EXPECT_EQ(0, std::memcmp(va.data_f32(), vb.data_f32(),
                             cells * sizeof(float)));
  }
  if (va.has_i8()) {
    EXPECT_EQ(0, std::memcmp(va.data_i8(), vb.data_i8(), cells));
    EXPECT_EQ(0, std::memcmp(va.i8_scales(), vb.i8_scales(),
                             va.dims() * sizeof(float)));
  }
}

/// Exact answer parity between two same-shaped backends.
void ExpectSameAnswers(const RetrievalBackend& a, const RetrievalBackend& b) {
  for (size_t q = 0; q < 24; ++q) {
    const double xq =
        static_cast<double>(Mix64(kCrashSeed + q) >> 11) * 0x1p-53;
    RetrievalOptions options(8, SIZE_MAX);
    StatusOr<RetrievalResponse> ra = a.Retrieve({MakeDx(xq), options});
    StatusOr<RetrievalResponse> rb = b.Retrieve({MakeDx(xq), options});
    ASSERT_TRUE(ra.ok()) << ra.status();
    ASSERT_TRUE(rb.ok()) << rb.status();
    ASSERT_EQ(ra->neighbors.size(), rb->neighbors.size());
    for (size_t i = 0; i < ra->neighbors.size(); ++i) {
      EXPECT_EQ(ra->neighbors[i].index, rb->neighbors[i].index);
      EXPECT_EQ(ra->neighbors[i].score, rb->neighbors[i].score);
    }
  }
}

/// Kill-window controller: wait until the durability dir shows a
/// published snapshot AND a WAL tail beyond it, linger a moment so the
/// kill lands mid-stream, then SIGKILL.
void KillAfterSnapshotAndTail(pid_t pid, const std::string& dir,
                              unsigned linger_ms) {
  const bool reached = WaitUntil(
      pid,
      [&] {
        return FileExists(dir + "/snapshot.qse") &&
               FileSize(dir + "/wal.qse") > kWalFileHeaderBytes + 256;
      },
      "snapshot + WAL tail");
  if (!reached) return;
  ::usleep(linger_ms * 1000);
  KillAndReap(pid);
}

/// Recovery + golden-parity assertion for one mode.  `generations` is
/// how many kill cycles to run; each restart makes the CHILD recover
/// before continuing the op stream.
void RunCrashRecoverTest(const std::string& mode, int generations) {
  const bool sharded = (mode == "sharded");
  const std::string dir = FreshDir("crash_recover_" + mode);
  const DurabilityOptions options = CrashOptions(dir, sharded);

  for (int gen = 0; gen < generations; ++gen) {
    const pid_t pid = SpawnChild(dir, mode);
    if (gen == 0) {
      KillAfterSnapshotAndTail(pid, dir, 5 + 4 * static_cast<unsigned>(gen));
    } else {
      // Later generations: wait for the child to finish ITS recovery and
      // make fresh progress, then kill again.
      const uint64_t size_at_spawn = FileSize(dir + "/wal.qse");
      const bool reached = WaitUntil(
          pid,
          [&] {
            return FileExists(dir + "/ready") &&
                   FileSize(dir + "/wal.qse") != size_at_spawn;
          },
          "second-generation progress");
      if (!reached) return;
      ::usleep(20000);
      KillAndReap(pid);
    }
    if (::testing::Test::HasFailure()) return;
  }

  // Recover in-process.
  StatusOr<std::unique_ptr<DurabilityManager>> opened =
      DurabilityManager::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  DurabilityManager* manager = opened.value().get();
  EXPECT_TRUE(manager->recovery().loaded_snapshot);
  const uint64_t kills_left_torn_tail = manager->recovery().repaired_bytes;
  std::printf("[ crash ] %s: snapshot cut %llu, wal tail %llu records, "
              "repaired %llu torn bytes\n",
              mode.c_str(),
              static_cast<unsigned long long>(
                  manager->recovery().snapshot_cut_seq),
              static_cast<unsigned long long>(manager->recovery().wal_records),
              static_cast<unsigned long long>(kills_left_torn_tail));

  MonoStack mono;
  ShardedStack shard_stack;
  RetrievalBackend* recovered = nullptr;
  if (sharded) {
    std::vector<EmbeddedDatabase*> dbs;
    for (size_t s = 0; s < kShards; ++s) {
      dbs.push_back(shard_stack.engine->mutable_shard_db(s));
    }
    ASSERT_TRUE(manager->InstallSnapshot(dbs).ok());
    shard_stack.engine->RebuildAfterRestore();
    recovered = shard_stack.engine.get();
  } else {
    mono.db.EnableFilterShadows(kShadows);
    ASSERT_TRUE(manager->InstallSnapshot({&mono.db}).ok());
    mono.engine.RebuildIdIndex();
    recovered = &mono.engine;
  }
  StatusOr<uint64_t> replayed = manager->Replay(recovered);
  ASSERT_TRUE(replayed.ok()) << replayed.status();

  // The durable history is exactly ops[0..L): rebuild it serially.
  const uint64_t L = manager->last_seq();
  ASSERT_GT(L, 0u);
  const std::vector<CrashOp> ops =
      MakeCrashOps(kCrashSeed + (sharded ? 1 : 0), kMaxOps);
  ASSERT_LE(L, ops.size());

  MonoStack ref_mono;
  ShardedStack ref_shard;
  RetrievalBackend* reference = nullptr;
  if (sharded) {
    reference = ref_shard.engine.get();
  } else {
    ref_mono.db.EnableFilterShadows(kShadows);
    reference = &ref_mono.engine;
  }
  for (uint64_t i = 0; i < L; ++i) {
    Status status = ApplyOp(reference, ops[static_cast<size_t>(i)]);
    ASSERT_TRUE(status.ok()) << "reference op " << i << ": " << status;
  }

  if (sharded) {
    for (size_t s = 0; s < kShards; ++s) {
      ExpectDbsIdentical(ref_shard.engine->shard(s).db(),
                         shard_stack.engine->shard(s).db(),
                         mode + " shard " + std::to_string(s));
    }
  } else {
    ExpectDbsIdentical(ref_mono.db, mono.db, "mono recovered db");
  }
  ExpectSameAnswers(*reference, *recovered);
}

TEST(CrashRecover, MonoKillRecoverBitIdentical) {
  RunCrashRecoverTest("mono", 1);
}

TEST(CrashRecover, ShardedKillRecoverBitIdentical) {
  RunCrashRecoverTest("sharded", 1);
}

TEST(CrashRecover, MonoTwoGenerationsOfKills) {
  RunCrashRecoverTest("mono", 2);
}

TEST(CrashRecover, ShardedTwoGenerationsOfKills) {
  RunCrashRecoverTest("sharded", 2);
}

}  // namespace
}  // namespace persist
}  // namespace qse

int main(int argc, char** argv) {
  std::string dir, mode;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--crash_child=", 14) == 0) {
      dir = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode = argv[i] + 7;
    }
  }
  if (!dir.empty()) return qse::persist::RunCrashChild(dir, mode);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
