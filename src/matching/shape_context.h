#ifndef QSE_MATCHING_SHAPE_CONTEXT_H_
#define QSE_MATCHING_SHAPE_CONTEXT_H_

#include <vector>

#include "src/distance/distance.h"
#include "src/distance/point_set.h"
#include "src/util/matrix.h"

namespace qse {

/// Parameters of the log-polar shape context descriptor [4, 5].
struct ShapeContextParams {
  /// Number of radial (log-spaced) bins.
  size_t radial_bins = 5;
  /// Number of angular bins over [0, 2*pi).
  size_t angular_bins = 12;
  /// Inner/outer radii of the log-polar grid, in units of the mean
  /// pairwise distance of the point set (the scale normalizer from [5]).
  double r_inner = 0.125;
  double r_outer = 2.0;

  size_t descriptor_size() const { return radial_bins * angular_bins; }
};

/// Computes the shape context descriptor of every point of `ps`: for point
/// i, a histogram of the positions of all other points in a log-polar grid
/// centred at i, normalized to sum to 1.  Radii are measured relative to
/// the set's mean pairwise distance, making descriptors scale-invariant.
std::vector<Vector> ComputeShapeContexts(const PointSet& ps,
                                         const ShapeContextParams& params);

/// Chi-squared histogram distance 0.5 * sum (h1-h2)^2 / (h1+h2), the
/// matching cost between two shape context descriptors [5].  In [0, 1] for
/// normalized histograms.
double ChiSquareCost(const Vector& h1, const Vector& h2);

/// Builds the full n x m chi-squared cost matrix between the descriptors
/// of two point sets.
Matrix ShapeContextCostMatrix(const std::vector<Vector>& a,
                              const std::vector<Vector>& b);

}  // namespace qse

#endif  // QSE_MATCHING_SHAPE_CONTEXT_H_
