#ifndef QSE_RETRIEVAL_EVALUATION_H_
#define QSE_RETRIEVAL_EVALUATION_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/retrieval/filter_refine.h"

namespace qse {

/// Exact k-nearest-neighbor ground truth for a query workload: for each
/// query, the positions (into the db-ids vector) of its kmax true nearest
/// neighbors, ascending by (exact distance, position).
struct GroundTruth {
  size_t kmax = 0;
  std::vector<std::vector<uint32_t>> knn;  // [query][0..kmax)
};

/// Brute-force computation of the ground truth (|queries| * |db| exact
/// distances; cache-friendly to wrap `oracle` in a CachingOracle).
GroundTruth ComputeGroundTruth(const DistanceOracle& oracle,
                               const std::vector<size_t>& db_ids,
                               const std::vector<size_t>& query_ids,
                               size_t kmax);

/// Evaluation of one embedding configuration (one point of the paper's
/// dimensionality sweep): for every query and every k <= kmax, the
/// smallest filter-candidate count p such that all k true nearest
/// neighbors appear among the top p filter results.
struct LadderPoint {
  /// Caller-defined sweep parameter (boosting-round prefix for BoostMap
  /// models, dimensionality for FastMap/Lipschitz).
  size_t param = 0;
  /// Dimensionality of the embedding at this point.
  size_t dims = 0;
  /// Exact distances needed to embed a query (the embedding step cost).
  size_t query_cost = 0;
  /// required_p[q][k-1], for k = 1..kmax.
  std::vector<std::vector<uint32_t>> required_p;
};

/// Runs the filter step for every query and records the required-p
/// statistics against the ground truth.  `oracle` supplies the query ->
/// database exact distances consumed by the embedding step (they are not
/// counted here; LadderPoint::query_cost reports the per-query count).
LadderPoint EvaluateLadderPoint(const Embedder& embedder,
                                const FilterScorer& scorer,
                                const EmbeddedDatabase& db,
                                const DistanceOracle& oracle,
                                const std::vector<size_t>& db_ids,
                                const std::vector<size_t>& query_ids,
                                const GroundTruth& gt, size_t param);

/// The paper's cost metric (Sec. 9): the minimum, over the evaluated
/// configurations, of
///
///     embedding cost + p(B)
///
/// where p(B) is the nearest-rank B-quantile over queries of required_p
/// for the given k — i.e. the fewest exact distance computations per
/// query under which a fraction >= B of queries retrieve all k true
/// nearest neighbors.  Capped at |db| (brute force needs no embedding).
size_t OptimalCost(const std::vector<LadderPoint>& ladder, size_t k,
                   double accuracy_fraction, size_t db_size);

/// The (param, p) setting attaining OptimalCost; exposed so benches can
/// report the chosen dimensionality/p like the paper's discussion does.
struct OptimalSetting {
  size_t param = 0;
  size_t dims = 0;
  size_t p = 0;
  size_t total_cost = 0;
  bool brute_force = false;  // True when no setting beats scanning.
};
OptimalSetting OptimalCostSetting(const std::vector<LadderPoint>& ladder,
                                  size_t k, double accuracy_fraction,
                                  size_t db_size);

}  // namespace qse

#endif  // QSE_RETRIEVAL_EVALUATION_H_
