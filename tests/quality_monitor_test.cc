// Tests for the background quality monitor: Page-Hinkley drift detector
// behavior (stationary / abrupt / gradual / hysteresis clear / recurrent
// re-alarm), exact audit math at p = n, queue shedding under a stalled
// worker, engine and server integration, end-to-end drift detection on a
// drifting oracle, and audits racing concurrent mutation (TSan target).
#include "src/obs/quality_monitor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/drift_scenarios.h"
#include "src/data/drift_generator.h"
#include "src/embedding/fastmap.h"
#include "src/retrieval/filter_refine.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/server/async_retrieval_server.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "tests/test_util.h"

namespace qse {
namespace obs {
namespace {

// --- PageHinkleyDetector ------------------------------------------------

TEST(PageHinkleyTest, StationarySignalNeverAlarms) {
  PageHinkleyDetector detector;
  // Deterministic small oscillation around 0.9: the delta tolerance must
  // absorb it indefinitely.
  for (int i = 0; i < 2000; ++i) {
    detector.Update(0.9 + (i % 2 == 0 ? 0.005 : -0.005));
    ASSERT_FALSE(detector.alarmed()) << "sample " << i;
  }
}

TEST(PageHinkleyTest, NotArmedBeforeMinSamples) {
  PageHinkleyOptions options;
  options.min_samples = 16;
  PageHinkleyDetector detector(options);
  // A catastrophic drop right away: the cumulative gap blows past lambda
  // immediately, but the test must stay unarmed until min_samples.
  for (int i = 0; i < 8; ++i) detector.Update(1.0);
  for (int i = 8; i < 15; ++i) {
    detector.Update(0.0);
    EXPECT_FALSE(detector.alarmed()) << "sample " << i;
  }
  detector.Update(0.0);  // 16th sample: armed, and the gap is huge.
  EXPECT_TRUE(detector.alarmed());
}

TEST(PageHinkleyTest, AbruptDropAlarmsWithinExpectedLatency) {
  PageHinkleyDetector detector;  // delta 0.01, lambda 1.0
  for (int i = 0; i < 64; ++i) {
    detector.Update(0.95);
    ASSERT_FALSE(detector.alarmed());
  }
  // Drop of ~0.4: lambda / drop ~ 3 samples.  Update must return true
  // exactly once, on the raising sample.
  int state_changes = 0;
  int samples_to_alarm = 0;
  for (int i = 0; i < 10 && !detector.alarmed(); ++i) {
    if (detector.Update(0.55)) ++state_changes;
    ++samples_to_alarm;
  }
  EXPECT_TRUE(detector.alarmed());
  EXPECT_EQ(state_changes, 1);
  EXPECT_LE(samples_to_alarm, 5);
}

TEST(PageHinkleyTest, GradualRampAlarmsBeforeBottomingOut) {
  PageHinkleyDetector detector;
  for (int i = 0; i < 64; ++i) detector.Update(0.9);
  // 0.9 -> 0.5 over 200 steps (0.002/step): slower than abrupt but the
  // deficit still accumulates past lambda well before the ramp ends.
  bool alarmed_mid_ramp = false;
  for (int i = 0; i < 200; ++i) {
    detector.Update(0.9 - 0.002 * (i + 1));
    if (detector.alarmed()) {
      alarmed_mid_ramp = true;
      break;
    }
  }
  EXPECT_TRUE(alarmed_mid_ramp);
}

TEST(PageHinkleyTest, ClearsAfterStabilizingAndRealarmsOnNextShift) {
  PageHinkleyOptions options;
  options.clear_after = 32;
  options.mean_window = 32;
  PageHinkleyDetector detector(options);
  for (int i = 0; i < 64; ++i) detector.Update(0.95);
  while (!detector.alarmed()) detector.Update(0.55);

  // The signal stabilizes at the new level: the running mean re-converges
  // (time constant mean_window) and clear_after healthy samples clear the
  // alarm, re-baselining the detector.
  bool cleared = false;
  for (int i = 0; i < 300 && !cleared; ++i) {
    if (detector.Update(0.55) && !detector.alarmed()) cleared = true;
  }
  ASSERT_TRUE(cleared);
  EXPECT_EQ(detector.samples(), 0u);  // fully re-baselined

  // Recurrent drift: a second shift below the NEW baseline must alarm
  // again — the detector compares against 0.55 now, not 0.95.
  for (int i = 0; i < 64; ++i) {
    detector.Update(0.55);
    ASSERT_FALSE(detector.alarmed());
  }
  for (int i = 0; i < 20 && !detector.alarmed(); ++i) detector.Update(0.15);
  EXPECT_TRUE(detector.alarmed());
}

// --- QualityMonitor audit math ------------------------------------------

struct MonitorStack {
  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  std::unique_ptr<RetrievalEngine> mono;
  std::unique_ptr<ShardedRetrievalEngine> sharded;

  MonitorStack(size_t n, size_t num_queries, size_t dims, uint64_t seed)
      : oracle(test::MakePlaneOracle(n + num_queries, seed)),
        db_ids(test::Iota(n)),
        model([&] {
          FastMapOptions options;
          options.dims = dims;
          options.seed = seed + 1;
          return BuildFastMap(oracle, db_ids, options);
        }()),
        db(EmbedDatabase(model, oracle, db_ids)) {
    mono = std::make_unique<RetrievalEngine>(&model, &scorer, &db, db_ids);
    ShardedEngineOptions options;
    options.num_shards = 3;
    sharded = std::make_unique<ShardedRetrievalEngine>(&model, &scorer, db,
                                                       db_ids, options);
  }

  DxToDatabaseFn Query(size_t q) {
    return [this, q](size_t id) { return oracle.Distance(q, id); };
  }
};

TEST(QualityMonitorTest, ShouldSampleHonorsCadence) {
  MetricRegistry registry;
  QualityMonitorOptions options;
  options.sample_every_n = 4;
  options.registry = &registry;
  QualityMonitor monitor(options);
  std::vector<bool> decisions;
  for (int i = 0; i < 12; ++i) decisions.push_back(monitor.ShouldSample());
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(decisions[i], i % 4 == 0) << "tick " << i;
  }
}

TEST(QualityMonitorTest, ExactServingAuditsPerfectlyAtPEqualsN) {
  // p = n degenerates filter-and-refine to exact brute force, so every
  // audit must find recall 1, zero displacement, zero score error, and —
  // the bit-identity acceptance — zero mismatches.
  constexpr size_t kN = 60;
  MonitorStack stack(kN, 10, 4, 11);
  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.sample_every_n = 1;
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);
  RetrievalOptions options = test::Opts(5, kN);
  options.audit_monitor = &monitor;
  for (size_t q = kN; q < kN + 10; ++q) {
    auto r = stack.mono->Retrieve({stack.Query(q), options});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  monitor.Flush();
  QualityMonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.sampled, 10u);
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.mismatches, 0u);
  EXPECT_EQ(stats.alarms, 0u);
  EXPECT_FALSE(stats.drift_alarm);
  EXPECT_DOUBLE_EQ(stats.recall_at_k, 1.0);
  EXPECT_DOUBLE_EQ(stats.rank_displacement, 0.0);
  EXPECT_DOUBLE_EQ(stats.score_error, 0.0);
}

TEST(QualityMonitorTest, ShardedEngineAuditsPerfectlyAtPEqualsN) {
  constexpr size_t kN = 90;
  MonitorStack stack(kN, 8, 4, 13);
  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.sample_every_n = 1;
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);
  RetrievalOptions options = test::Opts(5, kN);
  options.audit_monitor = &monitor;
  for (size_t q = kN; q < kN + 8; ++q) {
    auto r = stack.sharded->Retrieve({stack.Query(q), options});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  monitor.Flush();
  QualityMonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.mismatches, 0u);
  EXPECT_DOUBLE_EQ(stats.recall_at_k, 1.0);
  EXPECT_DOUBLE_EQ(stats.score_error, 0.0);
}

TEST(QualityMonitorTest, AttachingMonitorDoesNotChangeResults) {
  constexpr size_t kN = 80;
  MonitorStack stack(kN, 6, 4, 17);
  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.sample_every_n = 1;
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);
  RetrievalOptions plain = test::Opts(5, 20);
  RetrievalOptions audited = plain;
  audited.audit_monitor = &monitor;
  for (size_t q = kN; q < kN + 6; ++q) {
    auto a = stack.mono->Retrieve({stack.Query(q), plain});
    auto b = stack.mono->Retrieve({stack.Query(q), audited});
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.value().neighbors.size(), b.value().neighbors.size());
    for (size_t i = 0; i < a.value().neighbors.size(); ++i) {
      EXPECT_EQ(a.value().neighbors[i].index, b.value().neighbors[i].index);
      EXPECT_EQ(a.value().neighbors[i].score, b.value().neighbors[i].score);
    }
  }
  monitor.Flush();
  EXPECT_EQ(monitor.stats().completed, 6u);
}

TEST(QualityMonitorTest, NarrowFilterShowsUpInQualityMetrics) {
  // A 1-d embedding of the plane with p = k leaves the filter plenty of
  // room to miss true neighbors: across enough queries the audits must
  // record imperfection (that imperfection is the signal the monitor
  // exists to measure).
  constexpr size_t kN = 200;
  MonitorStack stack(kN, 24, 1, 19);
  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.sample_every_n = 1;
  qopts.window = 64;
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);
  RetrievalOptions options = test::Opts(10, 10);
  options.audit_monitor = &monitor;
  for (size_t q = kN; q < kN + 24; ++q) {
    auto r = stack.mono->Retrieve({stack.Query(q), options});
    ASSERT_TRUE(r.ok());
  }
  monitor.Flush();
  QualityMonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.completed, 24u);
  EXPECT_GT(stats.mismatches, 0u);
  EXPECT_LT(stats.recall_at_k, 1.0);
  EXPECT_GT(stats.recall_at_k, 0.0);
  EXPECT_GT(stats.rank_displacement, 0.0);
}

TEST(QualityMonitorTest, FullQueueShedsInsteadOfBlocking) {
  MonitorStack stack(8, 1, 2, 23);
  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.queue_capacity = 1;
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);

  // A dx that parks the worker until released, so the queue state is
  // deterministic: task 1 occupies the worker, task 2 the only slot, and
  // tasks 3 and 4 must shed without blocking this thread.
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  auto make_task = [&](bool blocking) {
    AuditTask task;
    task.k = 1;
    task.served = {{0, 0.0}};
    task.snapshots.push_back(stack.db.snapshot());
    if (blocking) {
      task.dx = [&](size_t) {
        entered.fetch_add(1);
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return 0.0;
      };
    } else {
      task.dx = [](size_t) { return 0.0; };
    }
    return task;
  };
  monitor.SubmitAudit(make_task(true));
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  monitor.SubmitAudit(make_task(false));  // fills the single slot
  monitor.SubmitAudit(make_task(false));  // shed
  monitor.SubmitAudit(make_task(false));  // shed
  QualityMonitorStats mid = monitor.stats();
  EXPECT_EQ(mid.sampled, 4u);
  EXPECT_EQ(mid.shed, 2u);
  release.store(true);
  monitor.Flush();
  QualityMonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.shed, 2u);
}

TEST(QualityMonitorTest, SubmitAfterShutdownShedsCleanly) {
  MonitorStack stack(8, 1, 2, 29);
  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);
  monitor.Shutdown();
  AuditTask task;
  task.k = 1;
  task.served = {{0, 0.0}};
  task.snapshots.push_back(stack.db.snapshot());
  task.dx = [](size_t) { return 0.0; };
  monitor.SubmitAudit(std::move(task));
  QualityMonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.sampled, 1u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(QualityMonitorTest, EmptySnapshotAuditIsANoOpCompletion) {
  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);
  AuditTask task;  // no snapshots: nothing to audit against
  task.k = 3;
  task.dx = [](size_t) { return 0.0; };
  monitor.SubmitAudit(std::move(task));
  monitor.Flush();
  QualityMonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.mismatches, 0u);
}

// --- server integration -------------------------------------------------

TEST(QualityMonitorTest, ServerOffersMonitorToEveryRequest) {
  constexpr size_t kN = 80;
  MonitorStack stack(kN, 16, 4, 31);
  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.sample_every_n = 2;
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);
  AsyncServerOptions options;
  options.quality_monitor = &monitor;
  AsyncRetrievalServer server(stack.mono.get(), options);
  std::vector<Future<StatusOr<RetrievalResponse>>> futures;
  for (size_t q = kN; q < kN + 16; ++q) {
    futures.push_back(server.Submit({stack.Query(q), test::Opts(5, kN)}));
  }
  for (auto& f : futures) ASSERT_TRUE(f.Get().ok());
  server.Shutdown(AsyncRetrievalServer::DrainMode::kDrain);
  monitor.Flush();
  QualityMonitorStats stats = monitor.stats();
  // 1-in-2 sampling over 16 requests: exactly 8 ticks fire (the tick
  // counter is the monitor's own, shared across workers).
  EXPECT_EQ(stats.sampled, 8u);
  EXPECT_EQ(stats.completed + stats.shed, stats.sampled);
  EXPECT_EQ(stats.mismatches, 0u);  // p = n
}

// --- end-to-end drift detection -----------------------------------------

TEST(QualityDriftTest, FrozenEmbeddingAlarmsOnAbruptDrift) {
  // The tentpole scenario end to end: embed at step 0, let the true
  // distances step-change at the onset, audit every query — the alarm
  // must raise within a bounded number of post-onset audits, and the
  // windowed recall must actually have degraded.
  constexpr size_t kN = 500;
  constexpr size_t kQueries = 32;
  constexpr size_t kOnset = 24;
  DriftingPointOracle oracle(kN + kQueries, 2,
                             bench::AbruptDrift(kOnset, 0.35), 37);
  std::vector<size_t> db_ids = test::Iota(kN);
  FastMapOptions fopts;
  fopts.dims = 4;
  fopts.seed = 38;
  FastMapModel model = BuildFastMap(oracle, db_ids, fopts);
  L2Scorer scorer;
  EmbeddedDatabase db = EmbedDatabase(model, oracle, db_ids);
  RetrievalEngine engine(&model, &scorer, &db, db_ids);

  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.sample_every_n = 1;
  qopts.window = 8;
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);
  RetrievalOptions options = test::Opts(5, 25);
  options.audit_monitor = &monitor;

  double recall_before = 0.0;
  size_t alarm_step = 0;
  for (size_t step = 0; step < 200; ++step) {
    oracle.SetStep(step);
    size_t q = kN + step % kQueries;
    auto r = engine.Retrieve(
        {[&oracle, q](size_t id) { return oracle.Distance(q, id); },
         options});
    ASSERT_TRUE(r.ok());
    monitor.Flush();
    if (step + 1 == kOnset) recall_before = monitor.stats().recall_at_k;
    if (monitor.drift_alarmed()) {
      alarm_step = step;
      break;
    }
  }
  QualityMonitorStats stats = monitor.stats();
  ASSERT_TRUE(stats.drift_alarm) << "no alarm within 200 audited queries";
  EXPECT_EQ(stats.alarms, 1u);
  EXPECT_GE(alarm_step, kOnset);
  EXPECT_LE(alarm_step - kOnset, 64u);
  EXPECT_LT(stats.recall_at_k, recall_before);
}

// --- audits under concurrent mutation (TSan target) ---------------------

TEST(QualityMonitorConcurrencyTest, AuditsRaceMutationsSafely) {
  // Query threads sample audits (pinning snapshots) while a mutator
  // removes and re-inserts rows: the audits score the pinned views, so
  // every completed audit at p = n must still be exact, and TSan must
  // see no races between worker, queriers and mutator.
  constexpr size_t kN = 120;
  MonitorStack stack(kN, 16, 4, 41);
  MetricRegistry registry;
  QualityMonitorOptions qopts;
  qopts.sample_every_n = 1;
  qopts.queue_capacity = 8;  // small on purpose: shedding races too
  qopts.registry = &registry;
  QualityMonitor monitor(qopts);

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    size_t id = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (stack.mono->Remove(id).ok()) {
        auto dx = [&stack, id](size_t other) {
          return id == other ? 0.0 : stack.oracle.Distance(id, other);
        };
        ASSERT_TRUE(stack.mono->Insert(id, dx).ok());
      }
      id = (id + 7) % kN;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> queriers;
  for (int t = 0; t < 2; ++t) {
    queriers.emplace_back([&, t] {
      RetrievalOptions options = test::Opts(5, kN);
      options.audit_monitor = &monitor;
      for (size_t i = 0; i < 60; ++i) {
        size_t q = kN + (t * 60 + i) % 16;
        auto r = stack.mono->Retrieve({stack.Query(q), options});
        ASSERT_TRUE(r.ok());
      }
    });
  }
  for (auto& t : queriers) t.join();
  stop.store(true, std::memory_order_relaxed);
  mutator.join();
  monitor.Flush();
  monitor.Shutdown();
  QualityMonitorStats stats = monitor.stats();
  EXPECT_EQ(stats.sampled, 120u);
  EXPECT_EQ(stats.completed + stats.shed, stats.sampled);
  // Audits run against the snapshots the serving path pinned, so
  // mutation concurrency must not manufacture mismatches at p = n.
  EXPECT_EQ(stats.mismatches, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace qse
