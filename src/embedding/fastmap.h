#ifndef QSE_EMBEDDING_FASTMAP_H_
#define QSE_EMBEDDING_FASTMAP_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/embedding/embedder.h"
#include "src/util/random.h"
#include "src/util/statusor.h"

namespace qse {

/// Options for building a FastMap embedding [12].
struct FastMapOptions {
  /// Output dimensionality (number of pivot pairs / recursion depth).
  size_t dims = 32;
  /// Iterations of the "choose-distant-objects" heuristic per level.
  size_t pivot_iterations = 5;
  /// Seed for the initial random object of the pivot heuristic.
  uint64_t seed = 3;
};

/// A trained FastMap model: a sequence of pivot pairs, one per output
/// dimension.  Level l projects objects onto the "line" through its two
/// pivots (Eq. 2 of the paper) in the *residual* space where the first
/// l-1 projections have been subtracted:
///
///   D_l(x,y)^2 = max(0, D_{l-1}(x,y)^2 - (x_{l-1} - y_{l-1})^2).
///
/// The max(0, .) clamp is required because the paper's distance measures
/// are non-metric, so residual squared distances can go negative — the
/// standard FastMap behaviour in that regime.
///
/// Distances between FastMap vectors are Euclidean (L2), as in [12].
class FastMapModel : public Embedder {
 public:
  struct Level {
    uint32_t pivot_a = 0;     // Database id.
    uint32_t pivot_b = 0;     // Database id.
    double dist_ab = 0.0;     // Residual distance between pivots at l.
    Vector coords_a;          // Pivot a's coordinates for levels < l.
    Vector coords_b;
  };

  FastMapModel() = default;
  explicit FastMapModel(std::vector<Level> levels)
      : levels_(std::move(levels)) {}

  size_t dims() const override { return levels_.size(); }
  Vector Embed(const DxToDatabaseFn& dx,
               size_t* num_exact = nullptr) const override;
  size_t EmbeddingCost() const override;

  /// The model truncated to its first `d` levels (FastMap's coordinates
  /// are naturally nested, so prefixes are exactly lower-dimensional
  /// FastMap embeddings).
  FastMapModel Prefix(size_t d) const;

  /// Binary model persistence (pivot ids, residual distances and pivot
  /// coordinate prefixes; applying a loaded model only needs the oracle).
  Status Save(const std::string& path) const;
  static StatusOr<FastMapModel> Load(const std::string& path);

  const std::vector<Level>& levels() const { return levels_; }

 private:
  std::vector<Level> levels_;
};

/// Builds a FastMap model on a database sample.  `sample_ids` are the
/// objects the pivot-selection heuristic may scan (the paper runs FastMap
/// "on a subset of the database, containing 5,000 objects").
FastMapModel BuildFastMap(const DistanceOracle& oracle,
                          const std::vector<size_t>& sample_ids,
                          const FastMapOptions& options);

}  // namespace qse

#endif  // QSE_EMBEDDING_FASTMAP_H_
