#ifndef QSE_SERVER_ADMISSION_QUEUE_H_
#define QSE_SERVER_ADMISSION_QUEUE_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/retrieval/retrieval_backend.h"

namespace qse {

/// Sentinel tenant slot: not subject to any per-tenant limit.  A
/// namespace-level constant so callers can use it while their item type
/// is still incomplete.
inline constexpr size_t kNoTenantSlot = ~size_t{0};

/// Why a push was refused (or what it displaced) — decided under the
/// queue lock, so a caller can map every outcome to the right status
/// without racing a concurrent Close().
enum class AdmitResult {
  /// Queued; no side effects.
  kAdmitted,
  /// Queued by evicting a strictly lower-priority entry; the caller
  /// receives the victim and must complete its promise (shed).
  kAdmittedEvicting,
  /// Full and nothing strictly lower-priority to shed.
  kQueueFull,
  /// The pushing tenant is at its per-tenant occupancy limit; other
  /// tenants' requests still admit.
  kTenantOverQuota,
  /// Closed for shutdown.
  kClosed,
};

/// Bounded multi-lane admission queue — the strict-priority, tenant-quota
/// front door of the async serving layer.  One FIFO lane per
/// RequestPriority shares a single capacity; Pop always drains the
/// highest-priority non-empty lane, and a push that finds the queue full
/// sheds from the back of the lowest-priority lane strictly below the
/// incoming request (high-priority traffic displaces low, never the
/// reverse).  Per-tenant occupancy limits cap how much of the shared
/// capacity one tenant can hold at once.
///
/// Safe for any number of producers and consumers; the server uses it
/// MPSC (many submitters, one batcher).  Close() makes it
/// drainable-but-terminal exactly like BoundedQueue: pushes fail, pops
/// keep returning queued items and then nullopt, and every blocked
/// thread is woken.
///
/// A refused push does not consume the value: `v` is only moved from on
/// kAdmitted/kAdmittedEvicting, so the caller can still complete the
/// request's promise with the refusal status.
template <typename T>
class PriorityAdmissionQueue {
 public:
  /// Sentinel tenant slot: not subject to any per-tenant limit.
  static constexpr size_t kNoTenant = kNoTenantSlot;

  /// `tenant_limits[slot]` is the max entries tenant `slot` may occupy
  /// at once; resolving tenant ids to slots is the caller's job.
  explicit PriorityAdmissionQueue(size_t capacity,
                                  std::vector<size_t> tenant_limits = {})
      : capacity_(capacity == 0 ? 1 : capacity),
        tenant_limits_(std::move(tenant_limits)),
        tenant_counts_(tenant_limits_.size(), 0) {}

  PriorityAdmissionQueue(const PriorityAdmissionQueue&) = delete;
  PriorityAdmissionQueue& operator=(const PriorityAdmissionQueue&) = delete;

  struct PushOutcome {
    AdmitResult result = AdmitResult::kQueueFull;
    /// The shed entry and its lane, set iff result == kAdmittedEvicting.
    std::optional<T> evicted;
    size_t evicted_lane = 0;
  };

  /// Non-blocking push into `lane` on behalf of `tenant_slot` (kNoTenant
  /// for untracked).  Never blocks: overflow either sheds a lower-lane
  /// victim or refuses the push.
  PushOutcome TryPush(T&& v, size_t lane, size_t tenant_slot = kNoTenant) {
    PushOutcome outcome;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        outcome.result = AdmitResult::kClosed;
        return outcome;
      }
      if (tenant_slot != kNoTenant &&
          tenant_counts_[tenant_slot] >= tenant_limits_[tenant_slot]) {
        outcome.result = AdmitResult::kTenantOverQuota;
        return outcome;
      }
      if (size_ >= capacity_) {
        // Shed the youngest entry of the lowest-priority lane strictly
        // below the incoming one (the youngest is furthest from being
        // served, so the shed wastes the least queueing already paid).
        size_t victim_lane = lanes_.size();
        for (size_t l = lanes_.size(); l-- > lane + 1;) {
          if (!lanes_[l].empty()) {
            victim_lane = l;
            break;
          }
        }
        if (victim_lane == lanes_.size()) {
          outcome.result = AdmitResult::kQueueFull;
          return outcome;
        }
        Entry victim = std::move(lanes_[victim_lane].back());
        lanes_[victim_lane].pop_back();
        --size_;
        if (victim.tenant_slot != kNoTenant) {
          --tenant_counts_[victim.tenant_slot];
        }
        outcome.result = AdmitResult::kAdmittedEvicting;
        outcome.evicted = std::move(victim.value);
        outcome.evicted_lane = victim_lane;
      } else {
        outcome.result = AdmitResult::kAdmitted;
      }
      lanes_[lane].push_back(Entry{std::move(v), tenant_slot});
      ++size_;
      if (tenant_slot != kNoTenant) ++tenant_counts_[tenant_slot];
    }
    not_empty_.notify_one();
    return outcome;
  }

  /// Non-blocking pop; nullopt when momentarily empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    return PopLocked();
  }

  /// Blocks until an item arrives; nullopt only once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
    return PopLocked();
  }

  /// Blocks up to `timeout` (non-positive behaves like TryPop); nullopt
  /// on timeout or once closed and drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || size_ > 0; });
    return PopLocked();
  }

  /// Rejects future pushes, lets pops drain, wakes all blocked threads.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Momentary total queued items across lanes.
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  /// Momentary per-lane depths (the server's per-lane queue-depth stat).
  std::array<size_t, kNumPriorityLanes> lane_sizes() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::array<size_t, kNumPriorityLanes> sizes{};
    for (size_t l = 0; l < lanes_.size(); ++l) sizes[l] = lanes_[l].size();
    return sizes;
  }

  /// Momentary per-tenant occupancy (index = tenant slot).
  std::vector<size_t> tenant_counts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tenant_counts_;
  }

  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    T value;
    size_t tenant_slot;
  };

  /// Strict priority: always the front of the first non-empty lane.
  std::optional<T> PopLocked() {
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      Entry e = std::move(lane.front());
      lane.pop_front();
      --size_;
      if (e.tenant_slot != kNoTenant) --tenant_counts_[e.tenant_slot];
      return std::move(e.value);
    }
    return std::nullopt;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::array<std::deque<Entry>, kNumPriorityLanes> lanes_;
  const size_t capacity_;
  std::vector<size_t> tenant_limits_;
  std::vector<size_t> tenant_counts_;
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace qse

#endif  // QSE_SERVER_ADMISSION_QUEUE_H_
