#ifndef QSE_DATA_DRIFT_GENERATOR_H_
#define QSE_DATA_DRIFT_GENERATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/distance/distance.h"

namespace qse {

/// How the underlying distance structure changes over workload time.
/// The classic concept-drift taxonomy: an abrupt step change, a gradual
/// ramp, or a recurrent alternation between the original and drifted
/// regimes.
enum class DriftKind {
  kNone = 0,
  kAbrupt,
  kGradual,
  kRecurrent,
};

/// Stable lower-case name ("none", "abrupt", ...); "invalid" out of
/// range.
const char* DriftKindName(DriftKind kind);

/// When and how strongly drift applies, as a pure function of a
/// monotone workload step counter (one step per query, typically).
struct DriftSchedule {
  DriftKind kind = DriftKind::kNone;
  /// First drifted step; everything before it is the clean regime.
  size_t onset = 0;
  /// kGradual: steps from onset to full magnitude.
  size_t ramp = 1;
  /// kRecurrent: block length — after onset the regime alternates
  /// between fully drifted and clean every `period` steps.
  size_t period = 1;
  /// Displacement scale at full drift, in the units of the point
  /// coordinates (points live in [0,1]^d, so 0.25 rearranges the
  /// neighborhood structure substantially).
  double magnitude = 0.25;
};

/// Fraction of `schedule.magnitude` in effect at `step`, in [0, 1].
/// Pure and branch-cheap; kNone (and any schedule before its onset)
/// is 0.
double DriftFactor(const DriftSchedule& schedule, size_t step);

/// A point-set distance oracle whose TRUE distances drift over workload
/// time while any embeddings computed from it go stale.
///
/// Each object is a point in [0,1]^dims plus a fixed random unit
/// displacement direction (both seeded).  At step t, object i sits at
///   base_i + DriftFactor(schedule, t) * magnitude * dir_i
/// and Distance is L2 between the displaced positions.  Embed the
/// database at step 0, advance SetStep as queries flow, and the filter
/// step keeps ranking by the stale geometry while refine and ground
/// truth see the current one — recall degrades exactly the way a real
/// drifting corpus degrades a frozen embedding, which is the signal the
/// QualityMonitor's drift detector must catch.
///
/// Thread-safety: Distance reads the step once (relaxed atomic) per
/// call and touches only immutable arrays, so any number of query
/// threads may race SetStep; each distance evaluation is consistent
/// with some step at or near the current one.
class DriftingPointOracle : public DistanceOracle {
 public:
  DriftingPointOracle(size_t n, size_t dims, DriftSchedule schedule,
                      uint64_t seed);

  size_t size() const override { return base_.size(); }
  double Distance(size_t i, size_t j) const override;

  /// Advances (or rewinds) the workload clock.  Typically bumped once
  /// per issued query by the load generator.
  void SetStep(size_t step) {
    step_.store(step, std::memory_order_relaxed);
  }
  size_t step() const { return step_.load(std::memory_order_relaxed); }

  /// Current displacement scale: DriftFactor(schedule, step()) *
  /// magnitude.
  double CurrentDisplacement() const;

  const DriftSchedule& schedule() const { return schedule_; }

  /// Object i's position at the CURRENT step (tests and plots).
  Vector PositionAt(size_t i) const;

 private:
  std::vector<Vector> base_;
  std::vector<Vector> dir_;  // unit-norm, fixed per object
  DriftSchedule schedule_;
  std::atomic<size_t> step_{0};
};

}  // namespace qse

#endif  // QSE_DATA_DRIFT_GENERATOR_H_
