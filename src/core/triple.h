#ifndef QSE_CORE_TRIPLE_H_
#define QSE_CORE_TRIPLE_H_

#include <cstdint>

namespace qse {

/// A training triple (q, a, b) of indices into the training-object set
/// Xtr, with its class label (Sec. 5.2):
///   y = +1  if q is closer to a than to b,
///   y = -1  if q is closer to b than to a.
/// Triples where q is equidistant ("type 0") are not used for training.
struct Triple {
  uint32_t q = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  int8_t y = 1;

  friend bool operator==(const Triple& lhs, const Triple& rhs) {
    return lhs.q == rhs.q && lhs.a == rhs.a && lhs.b == rhs.b &&
           lhs.y == rhs.y;
  }
};

}  // namespace qse

#endif  // QSE_CORE_TRIPLE_H_
