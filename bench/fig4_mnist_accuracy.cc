// Reproduces Figure 4: number of exact Shape Context distance
// computations needed per query to retrieve all k nearest neighbors
// (k = 1..50) for 90% / 95% / 99% of the queries, comparing FastMap, the
// original BoostMap (Ra-QI), the intermediate Se-QI, and the proposed
// Se-QS, on the MNIST-substitute digits workload.
//
// Scale note: the paper uses the 60,000-image MNIST database with 10,000
// queries, |C| = |Xtr| = 5,000 and 300,000 training triples; defaults
// here are sized for a single-core box (see EXPERIMENTS.md).  The shape
// to verify is the method ordering Se-QS <= Se-QI <= Ra-QI << FastMap
// and the growth of all curves with k and with the accuracy target.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace qse;
  bench::Flags flags(argc, argv);

  bench::WorkloadScale wscale;
  wscale.db_size = flags.GetSize("db", 1200);
  wscale.num_queries = flags.GetSize("queries", 120);
  wscale.seed = flags.GetSize("seed", 2005);

  bench::TrainingScale tscale;
  tscale.num_cand = flags.GetSize("cand", 400);
  tscale.num_train = flags.GetSize("train", 400);
  tscale.num_triples = flags.GetSize("triples", 30000);
  tscale.rounds = flags.GetSize("rounds", 128);
  tscale.embeddings_per_round = flags.GetSize("epr", 48);
  tscale.k1 = flags.GetSize("k1", 5);  // Paper value for MNIST.
  tscale.seed = flags.GetSize("train_seed", 7);

  size_t kmax = flags.GetSize("kmax", 50);
  bench::Workload workload = bench::MakeDigitsWorkload(wscale);
  bench::RunAccuracyFigure(workload, tscale, "fig4_mnist",
                           {0.90, 0.95, 0.99},
                           {1, 2, 5, 10, 20, 30, 40, 50}, kmax,
                           /*include_ra_qs=*/false);
  return 0;
}
