// Microbenchmark of the filter step (google-benchmark).
//
// Backs the paper's Sec. 8 observation: "with embeddings of up to 1,000
// dimensions, the filter step always takes negligible time; retrieval
// time is dominated by the few exact distance computations" — and checks
// that the engine's layout and batching decisions actually buy time:
//
//   * AoS vs SoA: the old rows-of-vectors layout (one heap allocation per
//     row) against the flat row-major EmbeddedDatabase scan, same kernel,
//     at up to n = 100k, d = 256.
//   * full scan + SmallestK vs the fused early-abandon ScoreTopP pass.
//   * one-query-at-a-time Retrieve vs thread-parallel RetrieveBatch.
//   * the monolithic single-query scan vs the sharded scatter/gather
//     engine (S shards x 1 query): does sharding speed up ONE query, not
//     just a batch?
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/distance/simd/dispatch.h"
#include "src/distance/weighted_l1.h"
#include "src/retrieval/filter_refine.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/top_k.h"

namespace qse {
namespace {

/// The pre-refactor AoS layout, kept here as the benchmark baseline.
struct AosDatabase {
  std::vector<Vector> rows;
};

/// The pre-refactor scan kernel (single running sum), kept verbatim so
/// the AoS benchmark measures the old code path, not the old layout with
/// the new four-lane kernel.
double SeedWeightedL1(const Vector& a, const Vector& b, const Vector& w) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += w[i] * std::fabs(a[i] - b[i]);
  }
  return sum;
}

AosDatabase MakeAosDb(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  AosDatabase db;
  db.rows.resize(n);
  for (auto& row : db.rows) {
    row.resize(d);
    for (double& v : row) v = rng.Uniform(0, 1);
  }
  return db;
}

EmbeddedDatabase MakeSoaDb(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  EmbeddedDatabase db(d);
  db.Resize(n);
  for (size_t i = 0; i < n; ++i) {
    double* row = db.mutable_row(i);
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform(0, 1);
  }
  return db;
}

void FillQueryAndWeights(size_t d, Vector* q, Vector* w) {
  Rng rng(2);
  q->resize(d);
  w->resize(d);
  for (size_t i = 0; i < d; ++i) {
    (*q)[i] = rng.Uniform(0, 1);
    (*w)[i] = rng.Uniform(0, 1);
  }
}

// --- Layout comparison: identical weighted-L1 kernel, AoS vs SoA. -------

void BM_FilterScanWeightedL1_AoS(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t d = static_cast<size_t>(state.range(1));
  AosDatabase db = MakeAosDb(n, d, 1);
  Vector q, w;
  FillQueryAndWeights(d, &q, &w);
  std::vector<double> scores(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      scores[i] = SeedWeightedL1(q, db.rows[i], w);
    }
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FilterScanWeightedL1_AoS)
    ->Args({1000, 10})
    ->Args({1000, 100})
    ->Args({1000, 1000})
    ->Args({10000, 100})
    ->Args({100000, 100})
    ->Args({100000, 256})
    ->Unit(benchmark::kMicrosecond);

void BM_FilterScanWeightedL1_SoA(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t d = static_cast<size_t>(state.range(1));
  EmbeddedDatabase db = MakeSoaDb(n, d, 1);
  Vector q, w;
  FillQueryAndWeights(d, &q, &w);
  std::vector<double> scores(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      scores[i] = WeightedL1DistanceSpan(q.data(), db.row(i), w.data(), d);
    }
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FilterScanWeightedL1_SoA)
    ->Args({1000, 10})
    ->Args({1000, 100})
    ->Args({1000, 1000})
    ->Args({10000, 100})
    ->Args({100000, 100})
    ->Args({100000, 256})
    ->Unit(benchmark::kMicrosecond);

// --- Selection: full scan + SmallestK vs fused early-abandon TopP. ------

void BM_TopPSelection(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t p = static_cast<size_t>(state.range(1));
  Rng rng(3);
  std::vector<double> scores(n);
  for (double& s : scores) s = rng.Uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SmallestK(scores, p));
  }
}
BENCHMARK(BM_TopPSelection)
    ->Args({10000, 100})
    ->Args({100000, 500})
    ->Unit(benchmark::kMicrosecond);

void BM_ScoreTopP_FullScan(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t d = static_cast<size_t>(state.range(1));
  size_t p = static_cast<size_t>(state.range(2));
  EmbeddedDatabase db = MakeSoaDb(n, d, 1);
  Vector q, w;
  FillQueryAndWeights(d, &q, &w);
  L2Scorer scorer;
  std::vector<double> scores;
  for (auto _ : state) {
    scorer.Score(q, db, &scores);
    benchmark::DoNotOptimize(SmallestK(scores, p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ScoreTopP_FullScan)
    ->Args({100000, 100, 500})
    ->Args({100000, 256, 500})
    ->Unit(benchmark::kMicrosecond);

void BM_ScoreTopP_EarlyAbandon(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t d = static_cast<size_t>(state.range(1));
  size_t p = static_cast<size_t>(state.range(2));
  EmbeddedDatabase db = MakeSoaDb(n, d, 1);
  Vector q, w;
  FillQueryAndWeights(d, &q, &w);
  L2Scorer scorer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.ScoreTopP(q, db, p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ScoreTopP_EarlyAbandon)
    ->Args({100000, 100, 500})
    ->Args({100000, 256, 500})
    ->Unit(benchmark::kMicrosecond);

// --- Single-query loop vs batched, thread-parallel retrieval. -----------

/// Embedder stub with zero exact-distance cost: the benchmark isolates
/// the engine's filter/refine machinery from any real embedding.
class FixedEmbedder : public Embedder {
 public:
  explicit FixedEmbedder(Vector v) : v_(std::move(v)) {}
  size_t dims() const override { return v_.size(); }
  size_t EmbeddingCost() const override { return 0; }
  Vector Embed(const DxToDatabaseFn&, size_t* num_exact) const override {
    if (num_exact != nullptr) *num_exact = 0;
    return v_;
  }

 private:
  Vector v_;
};

struct EngineFixture {
  EmbeddedDatabase db;
  std::vector<size_t> db_ids;
  FixedEmbedder embedder;
  L2Scorer scorer;
  std::unique_ptr<RetrievalEngine> engine;
  std::vector<DxToDatabaseFn> queries;

  EngineFixture(size_t n, size_t d, size_t num_queries)
      : db(MakeSoaDb(n, d, 1)), embedder([&] {
          Vector q, w;
          FillQueryAndWeights(d, &q, &w);
          return q;
        }()) {
    db_ids.resize(n);
    for (size_t i = 0; i < n; ++i) db_ids[i] = i;
    engine =
        std::make_unique<RetrievalEngine>(&embedder, &scorer, &db, db_ids);
    for (size_t i = 0; i < num_queries; ++i) {
      queries.push_back([](size_t) { return 0.0; });
    }
  }
};

void BM_RetrieveSingleLoop(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t d = static_cast<size_t>(state.range(1));
  size_t q = static_cast<size_t>(state.range(2));
  EngineFixture f(n, d, q);
  for (auto _ : state) {
    for (const auto& dx : f.queries) {
      auto r = f.engine->Retrieve({dx, RetrievalOptions(10, 100)});
      QSE_CHECK(r.ok());
      benchmark::DoNotOptimize(r.value());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(q));
}
BENCHMARK(BM_RetrieveSingleLoop)
    ->Args({100000, 64, 32})
    ->Unit(benchmark::kMillisecond);

void BM_RetrieveBatchParallel(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t d = static_cast<size_t>(state.range(1));
  size_t q = static_cast<size_t>(state.range(2));
  EngineFixture f(n, d, q);
  for (auto _ : state) {
    auto r = f.engine->RetrieveBatch(f.queries, RetrievalOptions(10, 100));
    QSE_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(q));
}
BENCHMARK(BM_RetrieveBatchParallel)
    ->Args({100000, 64, 32})
    ->Unit(benchmark::kMillisecond);

// --- Sharded scatter/gather: S shards x ONE query. ----------------------
//
// The monolithic filter step is a serial scan over all n rows; the
// sharded engine splits the same scan across S per-shard engines and
// merges the per-shard top-p lists.  Same k, p and data as the
// monolithic baseline below, so time(monolithic) / time(sharded) is the
// single-query speedup the serving layer buys.  The CI threshold check
// (tools/check_bench_regressions.py) keys on these two benchmark names.

constexpr size_t kShardedK = 10;
constexpr size_t kShardedP = 500;

void BM_RetrieveMonolithicSingleQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t d = static_cast<size_t>(state.range(1));
  EngineFixture f(n, d, 1);
  for (auto _ : state) {
    auto r = f.engine->Retrieve(
        {f.queries[0], RetrievalOptions(kShardedK, kShardedP)});
    QSE_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RetrieveMonolithicSingleQuery)
    ->Args({100000, 256})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void BM_RetrieveShardedSingleQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t d = static_cast<size_t>(state.range(1));
  size_t num_shards = static_cast<size_t>(state.range(2));
  // Built without EngineFixture: the monolithic engine (and its
  // 100k-entry id map) would be pure setup waste here.
  EmbeddedDatabase db = MakeSoaDb(n, d, 1);
  std::vector<size_t> db_ids(n);
  for (size_t i = 0; i < n; ++i) db_ids[i] = i;
  Vector q, w;
  FillQueryAndWeights(d, &q, &w);
  FixedEmbedder embedder(q);
  L2Scorer scorer;
  ShardedEngineOptions options;
  options.num_shards = num_shards;
  ShardedRetrievalEngine sharded(&embedder, &scorer, db, db_ids, options);
  DxToDatabaseFn dx = [](size_t) { return 0.0; };
  for (auto _ : state) {
    auto r = sharded.Retrieve({dx, RetrievalOptions(kShardedK, kShardedP)});
    QSE_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RetrieveShardedSingleQuery)
    ->Args({100000, 256, 1})
    ->Args({100000, 256, 2})
    ->Args({100000, 256, 4})
    ->Args({100000, 256, 8})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// --- Mixed-precision filter scan: the SIMD-dispatch PR's gate. ----------
//
// One fixed workload — n = 1M rows, d = 256, top p = 500 — scanned four
// ways: the seed's scalar float64 path (via the scalar kernel table,
// which is bit-identical to the pre-dispatch code), the dispatched
// float64 path, and the float32 / int8 shadow paths.  The CI threshold
// check (tools/check_bench_regressions.py) gates int8 at >= 3x the
// scalar seed throughput, and gates each reduced mode's recall counters:
// recall_at_k = |true top-k  (by exact float64 filter score)  kept by
// the reduced top-p cut| / k, the only quantity reduced precision can
// degrade (refine re-scores exactly).

constexpr size_t kPrecN = 1000000;
constexpr size_t kPrecD = 256;
constexpr size_t kPrecP = 500;

struct PrecisionFixture {
  EmbeddedDatabase db;
  Vector q, w;
  L2Scorer scorer;
  // True top-100 rows by exact float64 filter score, ascending.
  std::vector<ScoredIndex> truth;

  static const PrecisionFixture& Get() {
    static PrecisionFixture f;
    return f;
  }

  PrecisionFixture() : db(MakeSoaDb(kPrecN, kPrecD, 1)) {
    FillQueryAndWeights(kPrecD, &q, &w);
    db.EnableFilterShadows(kShadowFloat32 | kShadowInt8);
    std::vector<double> scores;
    scorer.Score(q, db, &scores);
    truth = SmallestK(scores, 100);
  }

  /// Fraction of the true top-k that survives this candidate cut.
  double RecallAtK(const std::vector<ScoredIndex>& candidates,
                   size_t k) const {
    size_t hit = 0;
    for (size_t i = 0; i < k; ++i) {
      for (const ScoredIndex& c : candidates) {
        if (c.index == truth[i].index) {
          ++hit;
          break;
        }
      }
    }
    return static_cast<double>(hit) / static_cast<double>(k);
  }
};

void ReportRecall(benchmark::State& state, const PrecisionFixture& f,
                  const std::vector<ScoredIndex>& candidates) {
  state.counters["recall_at_1"] = f.RecallAtK(candidates, 1);
  state.counters["recall_at_10"] = f.RecallAtK(candidates, 10);
  state.counters["recall_at_100"] = f.RecallAtK(candidates, 100);
}

/// The seed's filter scan, reproduced through the scalar kernel table
/// (bit-identical to the pre-dispatch four-lane code): the denominator
/// of the PR's speedup gate.
void BM_FilterScanPrecision_SeedScalar(benchmark::State& state) {
  const PrecisionFixture& f = PrecisionFixture::Get();
  const EmbeddedDatabase::View view = f.db;
  const simd::KernelTable* k = simd::ScalarKernels();
  std::vector<ScoredIndex> out;
  for (auto _ : state) {
    BoundedTopK top(kPrecP);
    for (size_t i = 0; i < view.size(); ++i) {
      top.Offer({i, k->l2_f64(f.q.data(), view.row(i), kPrecD,
                              top.threshold())});
    }
    out = top.TakeSortedAscending();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPrecN));
  ReportRecall(state, f, out);
}
BENCHMARK(BM_FilterScanPrecision_SeedScalar)->Unit(benchmark::kMillisecond);

void RunPrecisionScan(benchmark::State& state, FilterPrecision precision) {
  const PrecisionFixture& f = PrecisionFixture::Get();
  const EmbeddedDatabase::View view = f.db;
  std::vector<ScoredIndex> out;
  for (auto _ : state) {
    out = f.scorer.ScoreTopP(f.q, view, kPrecP, precision);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kPrecN));
  ReportRecall(state, f, out);
}

void BM_FilterScanPrecision_Exact64(benchmark::State& state) {
  RunPrecisionScan(state, FilterPrecision::kExact64);
}
BENCHMARK(BM_FilterScanPrecision_Exact64)->Unit(benchmark::kMillisecond);

void BM_FilterScanPrecision_Filter32(benchmark::State& state) {
  RunPrecisionScan(state, FilterPrecision::kFilter32);
}
BENCHMARK(BM_FilterScanPrecision_Filter32)->Unit(benchmark::kMillisecond);

void BM_FilterScanPrecision_Filter8(benchmark::State& state) {
  RunPrecisionScan(state, FilterPrecision::kFilter8);
}
BENCHMARK(BM_FilterScanPrecision_Filter8)->Unit(benchmark::kMillisecond);

// --- A_i(q) evaluation cost (unchanged from the seed). ------------------

void BM_QueryWeightsEvaluation(benchmark::State& state) {
  // A_i(q) evaluation cost for a model with many terms per coordinate.
  size_t d = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Vector fq(d);
  for (double& v : fq) v = rng.Uniform(0, 1);
  // Simulate 4 interval terms per coordinate.
  struct Term {
    double lo, hi, alpha;
  };
  std::vector<std::vector<Term>> terms(d);
  for (auto& t : terms) {
    for (int j = 0; j < 4; ++j) {
      double lo = rng.Uniform(0, 1), hi = lo + rng.Uniform(0, 0.5);
      t.push_back({lo, hi, rng.Uniform(0, 1)});
    }
  }
  Vector weights(d);
  for (auto _ : state) {
    for (size_t i = 0; i < d; ++i) {
      double a = 0.0;
      for (const Term& t : terms[i]) {
        if (fq[i] >= t.lo && fq[i] <= t.hi) a += t.alpha;
      }
      weights[i] = a;
    }
    benchmark::DoNotOptimize(weights.data());
  }
}
BENCHMARK(BM_QueryWeightsEvaluation)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace qse

BENCHMARK_MAIN();
