// Reproduces Table 1: for both datasets (digits + Shape Context, time
// series + constrained DTW), the number of exact distance computations
// required by FastMap, Ra-QI, Ra-QS, Se-QI and Se-QS for k in {1, 10, 50}
// and accuracy in {90, 95, 99, 100}%.
//
// Paper shape to verify: Se-QS is the cheapest column almost everywhere;
// the intermediates Ra-QS / Se-QI fall between Ra-QI and Se-QS; the 100%
// rows are dominated by worst-case queries and approach brute force for
// large k (the paper notes this explicitly).
#include <cstdio>

#include "bench/harness.h"

namespace qse {
namespace {

void EmitTable1(const std::string& dataset_title, const std::string& stem,
                const std::vector<bench::MethodLadder>& methods,
                size_t db_size) {
  std::vector<std::string> header = {"k", "pct"};
  for (const auto& m : methods) header.push_back(m.name);
  Table table(header);
  for (size_t k : {1u, 10u, 50u}) {
    for (double pct : {0.90, 0.95, 0.99, 1.00}) {
      std::vector<std::string> row = {Table::Fmt(k),
                                      Table::Fmt(static_cast<size_t>(
                                          pct * 100.0))};
      for (const auto& m : methods) {
        row.push_back(Table::Fmt(OptimalCost(m.ladder, k, pct, db_size)));
      }
      table.AddRow(std::move(row));
    }
  }
  std::printf("\nTable 1 — %s (brute force = %zu distances)\n%s",
              dataset_title.c_str(), db_size, table.ToPretty().c_str());
  Status s = table.WriteCsv(bench::ResultsPath(stem));
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
}

}  // namespace
}  // namespace qse

int main(int argc, char** argv) {
  using namespace qse;
  bench::Flags flags(argc, argv);

  size_t kmax = flags.GetSize("kmax", 50);

  {
    bench::WorkloadScale wscale;
    wscale.db_size = flags.GetSize("db", 1200);
    wscale.num_queries = flags.GetSize("queries", 120);
    wscale.seed = flags.GetSize("seed", 2005);
    bench::TrainingScale tscale;
    tscale.num_cand = flags.GetSize("cand", 400);
    tscale.num_train = flags.GetSize("train", 400);
    tscale.num_triples = flags.GetSize("triples", 30000);
    tscale.rounds = flags.GetSize("rounds", 128);
    tscale.embeddings_per_round = flags.GetSize("epr", 48);
    tscale.k1 = 5;
    tscale.seed = flags.GetSize("train_seed", 7);
    bench::Workload digits = bench::MakeDigitsWorkload(wscale);
    // No printed per-accuracy panels here; Table 1 summarizes directly.
    auto methods = bench::RunAccuracyFigure(
        digits, tscale, "table1_mnist", {}, {}, kmax,
        /*include_ra_qs=*/true);
    EmitTable1("digits database with Shape Context", "table1_mnist",
               methods, digits.db_ids.size());
  }

  {
    bench::WorkloadScale wscale;
    wscale.db_size = flags.GetSize("ts_db", 2000);
    wscale.num_queries = flags.GetSize("ts_queries", 150);
    wscale.seed = flags.GetSize("ts_seed", 32);
    bench::TrainingScale tscale;
    tscale.num_cand = flags.GetSize("cand", 400);
    tscale.num_train = flags.GetSize("train", 400);
    tscale.num_triples = flags.GetSize("triples", 30000);
    tscale.rounds = flags.GetSize("rounds", 128);
    tscale.embeddings_per_round = flags.GetSize("epr", 48);
    tscale.k1 = 9;
    tscale.seed = flags.GetSize("train_seed", 11);
    bench::Workload series = bench::MakeTimeSeriesWorkload(wscale);
    auto methods = bench::RunAccuracyFigure(
        series, tscale, "table1_timeseries", {}, {}, kmax,
        /*include_ra_qs=*/true);
    EmitTable1("time series dataset with constrained DTW",
               "table1_timeseries", methods, series.db_ids.size());
  }
  return 0;
}
