// Dynamic datasets (paper Sec. 7.1): adding objects online and monitoring
// embedding drift.
//
// The paper notes that as long as the underlying distribution is stable,
// adding an object only costs its embedding (<= 2d exact distances), and
// that drift can be detected by re-measuring the embedding's triple
// classification error on freshly sampled triples — retraining when it
// degrades.  This example demonstrates the RetrievalEngine's incremental
// Insert/Remove: it grows the database online, shifts the data
// distribution to trip the error monitor, retrains, and finally shows
// that dropping the shifted objects (Remove) also restores the monitor.
//
// Build: cmake --build build && ./build/examples/dynamic_dataset
#include <cstdio>
#include <numeric>

#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/distance/lp.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/filter_refine.h"
#include "src/util/logging.h"
#include "src/util/random.h"
#include "src/util/top_k.h"

namespace {

/// Triple classification error of the model on triples sampled "the same
/// way we would choose training triples" (Sec. 7.1's drift monitor):
/// a is one of q's 5 nearest neighbors, b has rank in (5, 50] — the
/// fine-grained discrimination that k-NN retrieval depends on.  Random
/// q-a-b triples would be dominated by easy far-apart comparisons and
/// mask the drift.  Objects are drawn from the engine's *current* rows,
/// so the monitor follows inserts and removes automatically.
double TripleError(const qse::QuerySensitiveEmbedding& model,
                   const qse::ObjectOracle<qse::Vector>& oracle,
                   const qse::RetrievalEngine& engine, qse::Rng* rng,
                   int trials = 400) {
  size_t n = engine.size();
  size_t wrong = 0, total = 0;
  std::vector<qse::ScoredIndex> ranked;
  for (int t = 0; t < trials; ++t) {
    size_t qrow = rng->Index(n);
    size_t q = engine.db_id_of(qrow);
    std::vector<double> dist(n);
    for (size_t row = 0; row < n; ++row) {
      dist[row] =
          row == qrow ? 1e300 : oracle.Distance(q, engine.db_id_of(row));
    }
    ranked = qse::SmallestK(dist, 50);
    size_t arow = ranked[rng->Index(5)].index;
    size_t brow = ranked[5 + rng->Index(45)].index;
    double da = oracle.Distance(q, engine.db_id_of(arow));
    double db = oracle.Distance(q, engine.db_id_of(brow));
    if (da == db) continue;
    double margin = model.TripleMargin(engine.db().RowVector(qrow),
                                       engine.db().RowVector(arow),
                                       engine.db().RowVector(brow));
    bool correct = (margin > 0) == (da < db);
    if (!correct) ++wrong;
    ++total;
  }
  return static_cast<double>(wrong) / static_cast<double>(total);
}

}  // namespace

int main() {
  using namespace qse;

  // Initial database: points clustered in the lower-left quadrant.
  Rng rng(7);
  std::vector<Vector> points;
  for (int i = 0; i < 600; ++i) {
    points.push_back({rng.Uniform(0, 0.5), rng.Uniform(0, 0.5)});
  }
  // Reserve capacity: the oracle object container is fixed, so build it
  // with all objects we may ever add; "online" ids are revealed later.
  for (int i = 0; i < 300; ++i) {  // Same-distribution additions.
    points.push_back({rng.Uniform(0, 0.5), rng.Uniform(0, 0.5)});
  }
  // Distribution-shifted additions: a tight, far-away cluster.  Within
  // that cluster the original reference objects barely discriminate
  // (their distances are dominated by the cluster offset), so triples
  // drawn among the new objects are frequently misclassified.
  for (int i = 0; i < 600; ++i) {
    points.push_back({rng.Uniform(2.0, 2.15), rng.Uniform(2.0, 2.15)});
  }
  ObjectOracle<Vector> oracle(std::move(points), L2Distance);

  size_t live = 600;  // Objects currently in the database.
  std::vector<size_t> db_ids(live);
  std::iota(db_ids.begin(), db_ids.end(), 0);

  BoostMapConfig config;
  config.sampling = TripleSampling::kSelective;
  config.num_triples = 3000;
  config.k1 = 5;
  config.boost.rounds = 24;
  config.boost.embeddings_per_round = 24;
  std::vector<size_t> sample(db_ids.begin(), db_ids.begin() + 150);
  auto artifacts = TrainBoostMap(oracle, sample, sample, config);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "%s\n", artifacts.status().ToString().c_str());
    return 1;
  }
  const QuerySensitiveEmbedding& model = artifacts->model;
  QseEmbedderAdapter embedder(&model);

  // Embed the initial database (parallel across cores) and stand up the
  // engine; every later addition goes through engine.Insert.
  EmbeddedDatabase embedded = EmbedDatabase(embedder, oracle, db_ids);
  QuerySensitiveScorer scorer(&model);
  RetrievalEngine engine(&embedder, &scorer, &embedded, db_ids);

  auto insert = [&](size_t id) {
    Status s = engine.Insert(id, [&](size_t o) {
      return o == id ? 0.0 : oracle.Distance(id, o);
    });
    QSE_CHECK_MSG(s.ok(), s.ToString());
  };

  Rng monitor_rng(99);
  std::printf("initial error on random triples: %.3f\n",
              TripleError(model, oracle, engine, &monitor_rng));

  // --- Phase 1: add 300 same-distribution objects online.  Each insert
  // costs one embedding: at most 2d exact distances (model.EmbeddingCost).
  for (size_t id = live; id < live + 300; ++id) insert(id);
  live += 300;
  double err_same = TripleError(model, oracle, engine, &monitor_rng);
  std::printf("after adding 300 in-distribution objects (%zu exact "
              "distances each): error %.3f\n",
              model.EmbeddingCost(), err_same);

  // --- Phase 2: add 600 distribution-shifted objects.
  for (size_t id = live; id < live + 600; ++id) insert(id);
  live += 600;
  double err_shift = TripleError(model, oracle, engine, &monitor_rng);
  std::printf("after adding 600 distribution-SHIFTED objects: error %.3f\n",
              err_shift);

  if (err_shift > err_same * 1.3) {
    std::printf("\ndrift detected (error grew %.1fx) -> retraining, as "
                "Sec. 7.1 prescribes\n",
                err_shift / err_same);
    std::vector<size_t> all_ids(live);
    std::iota(all_ids.begin(), all_ids.end(), 0);
    Rng resample(5);
    auto picks = resample.SampleWithoutReplacement(live, 150);
    std::vector<size_t> new_sample;
    for (size_t p : picks) new_sample.push_back(all_ids[p]);
    auto retrained = TrainBoostMap(oracle, new_sample, new_sample, config);
    if (retrained.ok()) {
      QseEmbedderAdapter re_embedder(&retrained->model);
      EmbeddedDatabase re_embedded =
          EmbedDatabase(re_embedder, oracle, all_ids);
      QuerySensitiveScorer re_scorer(&retrained->model);
      RetrievalEngine re_engine(&re_embedder, &re_scorer, &re_embedded,
                                all_ids);
      std::printf("retrained model error: %.3f\n",
                  TripleError(retrained->model, oracle, re_engine,
                              &monitor_rng));
    }

    // When the shifted objects are transient (a bad ingest batch, an
    // expired tenant), dropping them is cheaper than retraining: Remove
    // is O(d) per object and the old model is valid again.
    for (size_t id = 900; id < 1500; ++id) {
      Status s = engine.Remove(id);
      QSE_CHECK_MSG(s.ok(), s.ToString());
    }
    std::printf("after removing the 600 shifted objects instead: error "
                "%.3f (engine back to %zu objects)\n",
                TripleError(model, oracle, engine, &monitor_rng),
                engine.size());
  } else {
    std::printf("no significant drift detected\n");
  }
  return 0;
}
