// AVX-512 backend (compiled with -mavx512f/dq/bw/vl and
// -ffp-contract=off on this file alone; body guarded by
// QSE_BUILD_AVX512 so the getter links as nullptr elsewhere).
//
// The float64 kernels stay bit-identical to the four-lane scalar
// reference despite consuming eight dims per step: each 8-term vector is
// folded into a single 4-wide accumulator low half first, high half
// second, so accumulator lane j receives terms i+j then i+4+j — exactly
// the order scalar lane j sees them.  float32/int8 kernels hold the
// sixteen-lane discipline in one zmm register directly.  All reductions
// perform the lanes.h trees' additions verbatim — in registers on the
// hot paths (ReduceF64Acc/ReduceF32Acc), through the shared scalar
// helpers only when a d % 4 / d % 16 tail folds into lane 0.
#include "src/distance/simd/kernels.h"

#if defined(QSE_BUILD_AVX512)

#include <immintrin.h>

#include <cmath>

#include "src/distance/simd/lanes.h"

namespace qse {
namespace simd {
namespace {

inline __m512d AbsPd512(__m512d v) {
  return _mm512_abs_pd(v);
}
inline __m256d AbsPd(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

/// In-register ReduceF64Lanes: every vector add below performs the same
/// IEEE additions lane-for-lane as lanes.h's (l0+l1)+(l2+l3), so the
/// abandon-check path never round-trips the accumulator through the
/// stack (the store-to-load forwarding stall on that round trip
/// dominated per-row cost at d=256).
inline double ReduceF64Acc(__m256d acc) {
  __m128d lo = _mm256_castpd256_pd128(acc);    // [l0, l1]
  __m128d hi = _mm256_extractf128_pd(acc, 1);  // [l2, l3]
  __m128d pairs =
      _mm_add_pd(_mm_unpacklo_pd(lo, hi), _mm_unpackhi_pd(lo, hi));
  return _mm_cvtsd_f64(_mm_add_sd(pairs, _mm_unpackhi_pd(pairs, pairs)));
}

/// In-register ReduceF32Lanes: the identical 16->8->4->2->1 fold-halves
/// tree, one vector add per level.
inline float ReduceF32Acc(__m512 acc) {
  __m256 r8 = _mm256_add_ps(_mm512_castps512_ps256(acc),
                            _mm512_extractf32x8_ps(acc, 1));
  __m128 r4 = _mm_add_ps(_mm256_castps256_ps128(r8),
                         _mm256_extractf128_ps(r8, 1));
  __m128 r2 = _mm_add_ps(r4, _mm_movehl_ps(r4, r4));
  return _mm_cvtss_f32(_mm_add_ss(r2, _mm_movehdup_ps(r2)));
}

/// Four-lane float64 driver, eight dims per step.  `vterm8(i)` yields
/// terms i..i+7; `vterm4(i)` terms i..i+3 for the post-block 4-step
/// loop; `sterm(i)` the scalar tail term.
template <typename VecTerm8, typename VecTerm4, typename ScalTerm>
double RunF64(size_t d, double abandon, const VecTerm8& vterm8,
              const VecTerm4& vterm4, const ScalTerm& sterm) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  while (i + kAbandonBlock <= d) {
    for (size_t hi = i + kAbandonBlock; i < hi; i += 8) {
      __m512d t = vterm8(i);
      acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(t));
      acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(t, 1));
    }
    double partial = ReduceF64Acc(acc);
    if (partial > abandon) return partial;
  }
  for (; i + 8 <= d; i += 8) {
    __m512d t = vterm8(i);
    acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(t));
    acc = _mm256_add_pd(acc, _mm512_extractf64x4_pd(t, 1));
  }
  for (; i + 4 <= d; i += 4) {
    acc = _mm256_add_pd(acc, vterm4(i));
  }
  if (i == d) return ReduceF64Acc(acc);
  alignas(32) double l[kF64Lanes];
  _mm256_store_pd(l, acc);
  for (; i < d; ++i) l[0] += sterm(i);
  return ReduceF64Lanes(l);
}

/// Sixteen-lane float32 driver: one zmm accumulator IS the sixteen
/// lanes.  `vterm(i)` yields terms i..i+15.
template <typename VecTerm, typename ScalTerm>
float RunF32(size_t d, float abandon, const VecTerm& vterm,
             const ScalTerm& sterm) {
  __m512 acc = _mm512_setzero_ps();
  size_t i = 0;
  while (i + kAbandonBlock <= d) {
    for (size_t hi = i + kAbandonBlock; i < hi; i += 16) {
      acc = _mm512_add_ps(acc, vterm(i));
    }
    float partial = ReduceF32Acc(acc);
    if (partial > abandon) return partial;
  }
  for (; i + 16 <= d; i += 16) {
    acc = _mm512_add_ps(acc, vterm(i));
  }
  if (i == d) return ReduceF32Acc(acc);
  alignas(64) float l[kF32Lanes];
  _mm512_store_ps(l, acc);
  for (; i < d; ++i) l[0] += sterm(i);
  return ReduceF32Lanes(l);
}

/// Sixteen int8 dims starting at i as exact float32 absolute
/// differences.
inline __m512 AbsDiffI8x16(const int8_t* q, const int8_t* x, size_t i) {
  __m128i qb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
  __m128i xb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
  __m512i diff = _mm512_sub_epi32(_mm512_cvtepi8_epi32(qb),
                                  _mm512_cvtepi8_epi32(xb));
  return _mm512_cvtepi32_ps(_mm512_abs_epi32(diff));
}

inline float AbsDiffI8(int8_t a, int8_t b) {
  int diff = static_cast<int>(a) - static_cast<int>(b);
  return static_cast<float>(diff < 0 ? -diff : diff);
}

/// Group G (dims 16*G..16*G+15) of a vector of 64 unsigned-byte absolute
/// differences, widened to exact float32.
template <int G>
inline __m512 WidenU8Group(__m512i diff) {
  return _mm512_cvtepi32_ps(
      _mm512_cvtepu8_epi32(_mm512_extracti32x4_epi32(diff, G)));
}

/// int8 driver holding the sixteen-lane float32 discipline while
/// computing one abandon block's 64 absolute differences in a single
/// byte-wide max/min/sub (|a-b| on signed bytes is exact as an unsigned
/// byte, range 0..255).  The four sixteen-dim groups are widened and
/// accumulated in dim order, so lane j still receives terms i+j,
/// i+16+j, ... exactly like AbsDiffI8x16 and the scalar reference.
/// `term(fd, i)` maps the exact float differences for dims i..i+15 to
/// terms; `sterm(i)` is the scalar tail term.
template <typename Term, typename ScalTerm>
float RunI8(const int8_t* q, const int8_t* x, size_t d, float abandon,
            const Term& term, const ScalTerm& sterm) {
  static_assert(kAbandonBlock == 64, "one zmm of int8 dims per block");
  __m512 acc = _mm512_setzero_ps();
  size_t i = 0;
  while (i + kAbandonBlock <= d) {
    __m512i qb = _mm512_loadu_si512(q + i);
    __m512i xb = _mm512_loadu_si512(x + i);
    __m512i diff = _mm512_sub_epi8(_mm512_max_epi8(qb, xb),
                                   _mm512_min_epi8(qb, xb));
    acc = _mm512_add_ps(acc, term(WidenU8Group<0>(diff), i));
    acc = _mm512_add_ps(acc, term(WidenU8Group<1>(diff), i + 16));
    acc = _mm512_add_ps(acc, term(WidenU8Group<2>(diff), i + 32));
    acc = _mm512_add_ps(acc, term(WidenU8Group<3>(diff), i + 48));
    i += kAbandonBlock;
    float partial = ReduceF32Acc(acc);
    if (partial > abandon) return partial;
  }
  for (; i + 16 <= d; i += 16) {
    acc = _mm512_add_ps(acc, term(AbsDiffI8x16(q, x, i), i));
  }
  if (i == d) return ReduceF32Acc(acc);
  alignas(64) float l[kF32Lanes];
  _mm512_store_ps(l, acc);
  for (; i < d; ++i) l[0] += sterm(i);
  return ReduceF32Lanes(l);
}

double L1F64(const double* q, const double* x, size_t d, double abandon) {
  return RunF64(
      d, abandon,
      [&](size_t i) {
        return AbsPd512(_mm512_sub_pd(_mm512_loadu_pd(q + i),
                                      _mm512_loadu_pd(x + i)));
      },
      [&](size_t i) {
        return AbsPd(_mm256_sub_pd(_mm256_loadu_pd(q + i),
                                   _mm256_loadu_pd(x + i)));
      },
      [&](size_t i) { return std::fabs(q[i] - x[i]); });
}

double L2F64(const double* q, const double* x, size_t d, double abandon) {
  return RunF64(
      d, abandon,
      [&](size_t i) {
        __m512d diff =
            _mm512_sub_pd(_mm512_loadu_pd(q + i), _mm512_loadu_pd(x + i));
        return _mm512_mul_pd(diff, diff);
      },
      [&](size_t i) {
        __m256d diff =
            _mm256_sub_pd(_mm256_loadu_pd(q + i), _mm256_loadu_pd(x + i));
        return _mm256_mul_pd(diff, diff);
      },
      [&](size_t i) {
        double diff = q[i] - x[i];
        return diff * diff;
      });
}

double Wl1F64(const double* q, const double* x, const double* w, size_t d,
              double abandon) {
  return RunF64(
      d, abandon,
      [&](size_t i) {
        return _mm512_mul_pd(_mm512_loadu_pd(w + i),
                             AbsPd512(_mm512_sub_pd(_mm512_loadu_pd(q + i),
                                                    _mm512_loadu_pd(x + i))));
      },
      [&](size_t i) {
        return _mm256_mul_pd(_mm256_loadu_pd(w + i),
                             AbsPd(_mm256_sub_pd(_mm256_loadu_pd(q + i),
                                                 _mm256_loadu_pd(x + i))));
      },
      [&](size_t i) { return w[i] * std::fabs(q[i] - x[i]); });
}

float L1F32(const float* q, const float* x, size_t d, float abandon) {
  return RunF32(
      d, abandon,
      [&](size_t i) {
        return _mm512_abs_ps(_mm512_sub_ps(_mm512_loadu_ps(q + i),
                                           _mm512_loadu_ps(x + i)));
      },
      [&](size_t i) { return std::fabs(q[i] - x[i]); });
}

float L2F32(const float* q, const float* x, size_t d, float abandon) {
  return RunF32(
      d, abandon,
      [&](size_t i) {
        __m512 diff =
            _mm512_sub_ps(_mm512_loadu_ps(q + i), _mm512_loadu_ps(x + i));
        return _mm512_mul_ps(diff, diff);
      },
      [&](size_t i) {
        float diff = q[i] - x[i];
        return diff * diff;
      });
}

float Wl1F32(const float* q, const float* x, const float* w, size_t d,
             float abandon) {
  return RunF32(
      d, abandon,
      [&](size_t i) {
        return _mm512_mul_ps(
            _mm512_loadu_ps(w + i),
            _mm512_abs_ps(_mm512_sub_ps(_mm512_loadu_ps(q + i),
                                        _mm512_loadu_ps(x + i))));
      },
      [&](size_t i) { return w[i] * std::fabs(q[i] - x[i]); });
}

float Wl1I8(const int8_t* q, const int8_t* x, const float* c, size_t d,
            float abandon) {
  return RunI8(
      q, x, d, abandon,
      [&](__m512 fd, size_t i) {
        return _mm512_mul_ps(_mm512_loadu_ps(c + i), fd);
      },
      [&](size_t i) { return c[i] * AbsDiffI8(q[i], x[i]); });
}

float Wl2I8(const int8_t* q, const int8_t* x, const float* c, size_t d,
            float abandon) {
  return RunI8(
      q, x, d, abandon,
      [&](__m512 fd, size_t i) {
        return _mm512_mul_ps(_mm512_mul_ps(_mm512_loadu_ps(c + i), fd), fd);
      },
      [&](size_t i) {
        float fd = AbsDiffI8(q[i], x[i]);
        return (c[i] * fd) * fd;
      });
}

const KernelTable kAvx512Table = {
    L1F64, L2F64, Wl1F64, L1F32, L2F32, Wl1F32, Wl1I8, Wl2I8,
};

}  // namespace

const KernelTable* Avx512Kernels() { return &kAvx512Table; }

}  // namespace simd
}  // namespace qse

#else  // !QSE_BUILD_AVX512

namespace qse {
namespace simd {

const KernelTable* Avx512Kernels() { return nullptr; }

}  // namespace simd
}  // namespace qse

#endif  // QSE_BUILD_AVX512
