#include "src/distance/dtw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace qse {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// L1 ground cost between sample i of a and sample j of b.
inline double PointCost(const Series& a, size_t i, const Series& b, size_t j) {
  double c = 0.0;
  size_t dims = a.dims();
  const double* pa = a.values().data() + i * dims;
  const double* pb = b.values().data() + j * dims;
  for (size_t d = 0; d < dims; ++d) c += std::fabs(pa[d] - pb[d]);
  return c;
}

}  // namespace

double ConstrainedDtwWindow(const Series& a, const Series& b, long window) {
  if (a.empty() || b.empty()) return kInf;
  assert(a.dims() == b.dims());
  const long n = static_cast<long>(a.length());
  const long m = static_cast<long>(b.length());
  if (window < 0) window = 0;
  // The band is centred on the scaled diagonal so paths exist even for
  // unequal lengths; widen by 1 to guarantee connectivity after rounding.
  const double slope = static_cast<double>(m) / static_cast<double>(n);
  const long w = window + 1;

  std::vector<double> prev(static_cast<size_t>(m) + 1, kInf);
  std::vector<double> curr(static_cast<size_t>(m) + 1, kInf);
  // DP over (i, j) in 1-based coordinates; row 0 is the virtual start.
  prev[0] = 0.0;
  for (long i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    long centre = static_cast<long>(std::llround(slope * (i - 1))) + 1;
    long jlo = std::max<long>(1, centre - w);
    long jhi = std::min<long>(m, centre + w);
    for (long j = jlo; j <= jhi; ++j) {
      double best = prev[static_cast<size_t>(j - 1)];       // diagonal
      best = std::min(best, prev[static_cast<size_t>(j)]);  // insertion
      best = std::min(best, curr[static_cast<size_t>(j - 1)]);  // deletion
      if (best == kInf) continue;
      curr[static_cast<size_t>(j)] =
          best + PointCost(a, static_cast<size_t>(i - 1), b,
                           static_cast<size_t>(j - 1));
    }
    std::swap(prev, curr);
  }
  return prev[static_cast<size_t>(m)];
}

double ConstrainedDtw(const Series& a, const Series& b,
                      double band_fraction) {
  if (a.empty() || b.empty()) return kInf;
  size_t shorter = std::min(a.length(), b.length());
  long window = static_cast<long>(
      std::ceil(band_fraction * static_cast<double>(shorter)));
  return ConstrainedDtwWindow(a, b, window);
}

double Dtw(const Series& a, const Series& b) {
  long window = static_cast<long>(std::max(a.length(), b.length()));
  return ConstrainedDtwWindow(a, b, window);
}

DtwEnvelope BuildEnvelope(const Series& s, long window) {
  DtwEnvelope env;
  env.dims = s.dims();
  const long n = static_cast<long>(s.length());
  env.lower.assign(s.values().size(), 0.0);
  env.upper.assign(s.values().size(), 0.0);
  if (window < 0) window = 0;
  // The DP in ConstrainedDtwWindow widens the band by 1 for connectivity;
  // the envelope must cover at least that reach to stay a lower bound.
  const long w = window + 1;
  for (long t = 0; t < n; ++t) {
    long lo = std::max<long>(0, t - w);
    long hi = std::min<long>(n - 1, t + w);
    for (size_t d = 0; d < env.dims; ++d) {
      double mn = kInf, mx = -kInf;
      for (long u = lo; u <= hi; ++u) {
        double v = s.at(static_cast<size_t>(u), d);
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
      env.lower[static_cast<size_t>(t) * env.dims + d] = mn;
      env.upper[static_cast<size_t>(t) * env.dims + d] = mx;
    }
  }
  return env;
}

double LbKeogh(const DtwEnvelope& query_envelope, const Series& c) {
  assert(query_envelope.dims == c.dims());
  assert(query_envelope.length() == c.length());
  double lb = 0.0;
  size_t total = c.values().size();
  for (size_t i = 0; i < total; ++i) {
    double v = c.values()[i];
    if (v > query_envelope.upper[i]) {
      lb += v - query_envelope.upper[i];
    } else if (v < query_envelope.lower[i]) {
      lb += query_envelope.lower[i] - v;
    }
  }
  return lb;
}

}  // namespace qse
