#ifndef QSE_DATA_TIMESERIES_GENERATOR_H_
#define QSE_DATA_TIMESERIES_GENERATOR_H_

#include <vector>

#include "src/distance/series.h"
#include "src/util/random.h"

namespace qse {

/// Parameters of the synthetic time-series workload.
///
/// Reproduces the dataset-construction protocol of [32] as described in
/// the paper (Sec. 9): "various real datasets were used as seeds for
/// generating a large number of time-series that are variations of the
/// original sequences. Multiple copies of every real sequence were
/// constructed by incorporating small variations in the original patterns
/// as well as additions of random compression and decompression in time";
/// sequences are multi-dimensional and mean-normalized per dimension.
/// We draw the seeds from four synthetic shape families instead of the
/// (unavailable) real seed recordings — DESIGN.md substitution #2.
struct TimeSeriesGeneratorParams {
  /// Number of distinct seed sequences ("real" patterns).
  size_t num_seeds = 32;
  /// Dimensionality of each sample point.
  size_t dims = 2;
  /// Nominal seed length; variants vary around this.
  size_t base_length = 96;
  /// Variants draw their length in [base*(1-jitter), base*(1+jitter)] —
  /// the "random compression and decompression in time".
  double length_jitter = 0.2;
  /// Std-dev of additive amplitude noise (relative to signal std-dev ~1).
  double amplitude_noise = 0.06;
  /// Strength of the smooth monotone time warp applied to variants
  /// (0 = none, 1 = extremely uneven time flow).
  double warp_strength = 0.35;
  /// When true, every variant is resampled to exactly base_length samples
  /// (required by LB_Keogh-style lower bounding).
  bool fixed_length = false;
};

/// Deterministic (seeded) generator of the [32]-style workload.
class TimeSeriesGenerator {
 public:
  TimeSeriesGenerator(const TimeSeriesGeneratorParams& params, uint64_t seed);

  /// A variant of seed family `seed_index` (modulo num_seeds).  Variants
  /// are mean-normalized per dimension.
  Series MakeVariant(size_t seed_index);

  /// `count` variants cycling round-robin over the seed families (the
  /// database construction of [32]: many variants per seed).
  std::vector<Series> Generate(size_t count);

  /// The undistorted seed sequence of a family; exposed for tests.
  const Series& seed(size_t seed_index) const {
    return seeds_[seed_index % seeds_.size()];
  }
  size_t num_seeds() const { return seeds_.size(); }

 private:
  Series MakeSeed();

  TimeSeriesGeneratorParams params_;
  Rng rng_;
  std::vector<Series> seeds_;
};

}  // namespace qse

#endif  // QSE_DATA_TIMESERIES_GENERATOR_H_
