#include "src/data/digit_generator.h"

#include <set>

#include <gtest/gtest.h>

namespace qse {
namespace {

TEST(DigitGeneratorTest, TemplateHasRequestedPoints) {
  for (int d = 0; d <= 9; ++d) {
    PointSet t = DigitGenerator::Template(d, 24);
    EXPECT_EQ(t.size(), 24u) << "digit " << d;
  }
}

TEST(DigitGeneratorTest, TemplatesStayNearUnitBox) {
  for (int d = 0; d <= 9; ++d) {
    PointSet t = DigitGenerator::Template(d, 32);
    for (const Point2& p : t.points) {
      EXPECT_GE(p.x, -0.1);
      EXPECT_LE(p.x, 1.1);
      EXPECT_GE(p.y, -0.1);
      EXPECT_LE(p.y, 1.1);
    }
  }
}

TEST(DigitGeneratorTest, TemplatesAreDistinctAcrossClasses) {
  // Templates of different digits should not coincide.
  for (int a = 0; a <= 9; ++a) {
    for (int b = a + 1; b <= 9; ++b) {
      PointSet ta = DigitGenerator::Template(a, 16);
      PointSet tb = DigitGenerator::Template(b, 16);
      double diff = 0.0;
      for (size_t i = 0; i < 16; ++i) {
        diff += PointDistance(ta.points[i], tb.points[i]);
      }
      EXPECT_GT(diff, 0.2) << a << " vs " << b;
    }
  }
}

TEST(DigitGeneratorTest, DeterministicBySeed) {
  DigitGeneratorParams params;
  DigitGenerator g1(params, 42), g2(params, 42);
  for (int i = 0; i < 10; ++i) {
    LabeledPointSet a = g1.Sample();
    LabeledPointSet b = g2.Sample();
    EXPECT_EQ(a.label, b.label);
    ASSERT_EQ(a.shape.size(), b.shape.size());
    for (size_t p = 0; p < a.shape.size(); ++p) {
      EXPECT_DOUBLE_EQ(a.shape.points[p].x, b.shape.points[p].x);
      EXPECT_DOUBLE_EQ(a.shape.points[p].y, b.shape.points[p].y);
    }
  }
}

TEST(DigitGeneratorTest, SamplesVaryWithinClass) {
  DigitGenerator gen({}, 7);
  PointSet a = gen.SampleDigit(5).shape;
  PointSet b = gen.SampleDigit(5).shape;
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff += PointDistance(a.points[i], b.points[i]);
  }
  EXPECT_GT(diff, 0.01);  // Distorted differently.
}

TEST(DigitGeneratorTest, SampleDigitSetsLabel) {
  DigitGenerator gen({}, 7);
  for (int d = 0; d <= 9; ++d) {
    EXPECT_EQ(gen.SampleDigit(d).label, d);
  }
}

TEST(DigitGeneratorTest, GenerateIsClassBalanced) {
  DigitGenerator gen({}, 11);
  auto batch = gen.Generate(100);
  ASSERT_EQ(batch.size(), 100u);
  int counts[10] = {0};
  for (const auto& s : batch) {
    ASSERT_GE(s.label, 0);
    ASSERT_LE(s.label, 9);
    counts[s.label]++;
  }
  for (int d = 0; d <= 9; ++d) EXPECT_EQ(counts[d], 10) << "digit " << d;
}

TEST(DigitGeneratorTest, GenerateShufflesClasses) {
  DigitGenerator gen({}, 13);
  auto batch = gen.Generate(50);
  // Not strictly increasing label mod 10 (shuffled).
  bool periodic = true;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].label != static_cast<int>(i % 10)) periodic = false;
  }
  EXPECT_FALSE(periodic);
}

TEST(DigitGeneratorTest, PointCountHonoursParams) {
  DigitGeneratorParams params;
  params.points_per_digit = 40;
  DigitGenerator gen(params, 3);
  EXPECT_EQ(gen.Sample().shape.size(), 40u);
}

TEST(RenderAsciiTest, MarksPoints) {
  PointSet ps;
  ps.points = {{0, 0}, {1, 1}};
  auto rows = RenderAscii(ps, 8, 4);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].size(), 8u);
  // Top-right and bottom-left corners marked ((1,1) maps to row 0).
  EXPECT_EQ(rows[0][7], '#');
  EXPECT_EQ(rows[3][0], '#');
}

TEST(RenderAsciiTest, EmptySetRendersBlank) {
  auto rows = RenderAscii(PointSet{}, 4, 2);
  for (const auto& row : rows) {
    EXPECT_EQ(row, std::string(4, '.'));
  }
}

}  // namespace
}  // namespace qse
