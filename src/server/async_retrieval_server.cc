#include "src/server/async_retrieval_server.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "src/util/logging.h"

namespace qse {

namespace {

AsyncServerOptions Sanitize(AsyncServerOptions o) {
  if (o.max_batch == 0) o.max_batch = 1;
  if (o.num_workers == 0) o.num_workers = 1;
  return o;
}

/// Occupancy slots one quota buys: its share of the capacity, at least
/// one slot so a configured tenant is never locked out entirely.
size_t QuotaSlots(double share, size_t capacity) {
  double slots = std::floor(share * static_cast<double>(capacity));
  if (slots < 1.0) return 1;
  if (slots > static_cast<double>(capacity)) return capacity;
  return static_cast<size_t>(slots);
}

std::vector<size_t> TenantLimits(const AsyncServerOptions& options) {
  std::vector<size_t> limits;
  limits.reserve(options.tenant_quotas.size());
  for (const TenantQuota& q : options.tenant_quotas) {
    limits.push_back(QuotaSlots(q.share, options.queue_capacity));
  }
  return limits;
}

}  // namespace

AsyncRetrievalServer::AsyncRetrievalServer(const RetrievalBackend* backend,
                                           AsyncServerOptions options)
    : backend_(backend),
      options_(Sanitize(options)),
      tenant_limits_(TenantLimits(options_)),
      queue_(options_.queue_capacity, tenant_limits_),
      // One pending batch per worker: backlog accumulates in the bounded
      // admission queue (where overflow is observable), not in an elastic
      // dispatch buffer.
      dispatch_(options_.num_workers),
      batch_size_histogram_(options_.max_batch, 0) {
  tenant_stats_.reserve(options_.tenant_quotas.size());
  for (size_t slot = 0; slot < options_.tenant_quotas.size(); ++slot) {
    const TenantQuota& q = options_.tenant_quotas[slot];
    bool inserted = tenant_slots_.emplace(q.tenant_id, slot).second;
    QSE_CHECK_MSG(inserted, "duplicate tenant quota: '" << q.tenant_id
                                                        << "'");
    TenantStats stats;
    stats.tenant_id = q.tenant_id;
    stats.limit = tenant_limits_[slot];
    tenant_stats_.push_back(std::move(stats));
  }
  batcher_ = std::thread(&AsyncRetrievalServer::BatcherLoop, this);
  workers_.reserve(options_.num_workers);
  for (size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back(&AsyncRetrievalServer::WorkerLoop, this);
  }
}

AsyncRetrievalServer::AsyncRetrievalServer(RetrievalBackend* backend,
                                           AsyncServerOptions options)
    : AsyncRetrievalServer(static_cast<const RetrievalBackend*>(backend),
                           std::move(options)) {
  mutable_backend_ = backend;
}

AsyncRetrievalServer::~AsyncRetrievalServer() { Shutdown(DrainMode::kDrain); }

Status AsyncRetrievalServer::Insert(size_t db_id, const DxToDatabaseFn& dx) {
  if (mutable_backend_ == nullptr) {
    return Status::FailedPrecondition(
        "server was built over a read-only backend");
  }
  return mutable_backend_->Insert(db_id, dx);
}

Status AsyncRetrievalServer::Remove(size_t db_id) {
  if (mutable_backend_ == nullptr) {
    return Status::FailedPrecondition(
        "server was built over a read-only backend");
  }
  return mutable_backend_->Remove(db_id);
}

Future<StatusOr<RetrievalResponse>> AsyncRetrievalServer::Submit(
    RetrievalRequest request) {
  active_submits_.fetch_add(1, std::memory_order_acq_rel);
  struct ActiveSubmitGuard {
    std::atomic<size_t>* count;
    ~ActiveSubmitGuard() { count->fetch_sub(1, std::memory_order_release); }
  } guard{&active_submits_};
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Promise<StatusOr<RetrievalResponse>> promise;
  Future<StatusOr<RetrievalResponse>> future = promise.future();
  Status valid = ValidateRetrievalOptions(request.options);
  if (!valid.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    promise.Set(std::move(valid));
    return future;
  }
  const size_t lane = static_cast<size_t>(request.options.priority);
  size_t tenant_slot = kNoTenantSlot;
  if (!tenant_slots_.empty()) {
    auto it = tenant_slots_.find(request.options.tenant_id);
    if (it == tenant_slots_.end()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      unknown_tenant_rejected_.fetch_add(1, std::memory_order_relaxed);
      promise.Set(Status::InvalidArgument("unknown tenant: '" +
                                          request.options.tenant_id + "'"));
      return future;
    }
    tenant_slot = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(breakdown_mu_);
    ++lane_stats_[lane].submitted;
    if (tenant_slot != kNoTenantSlot) ++tenant_stats_[tenant_slot].submitted;
  }

  Request r{std::move(request), lane, tenant_slot, promise};
  // The refusal reason comes from under the queue lock: a full-queue
  // rejection racing Shutdown still reports load shedding (retryable),
  // not shutdown (terminal).
  auto outcome = queue_.TryPush(std::move(r), lane, tenant_slot);
  switch (outcome.result) {
    case AdmitResult::kAdmitted:
    case AdmitResult::kAdmittedEvicting:
      break;
    case AdmitResult::kQueueFull:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      promise.Set(Status::ResourceExhausted("admission queue full"));
      return future;
    case AdmitResult::kTenantOverQuota: {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(breakdown_mu_);
      ++tenant_stats_[tenant_slot].rejected;
      promise.Set(Status::ResourceExhausted(
          "tenant '" + tenant_stats_[tenant_slot].tenant_id +
          "' over admission quota"));
      return future;
    }
    case AdmitResult::kClosed:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      promise.Set(Status::FailedPrecondition("server is shut down"));
      return future;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(breakdown_mu_);
    ++lane_stats_[lane].admitted;
    if (tenant_slot != kNoTenantSlot) ++tenant_stats_[tenant_slot].admitted;
  }
  if (outcome.evicted.has_value()) CompleteShed(&*outcome.evicted);
  return future;
}

StatusOr<RetrievalResponse> AsyncRetrievalServer::Retrieve(
    RetrievalRequest request) {
  return Submit(std::move(request)).Get();
}

void AsyncRetrievalServer::Shutdown(DrainMode mode) {
  if (shutdown_.exchange(true)) return;
  if (mode == DrainMode::kCancel) {
    cancel_.store(true, std::memory_order_relaxed);
  }
  queue_.Close();  // New submits fail; the batcher drains what is queued.
  if (batcher_.joinable()) batcher_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // A Submit racing this shutdown may still hold an unset promise (its
  // own rejection, or a victim its push evicted between TryPush and
  // CompleteShed); wait it out so every future is ready on return.
  while (active_submits_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void AsyncRetrievalServer::CompleteCancelled(Request* r) {
  cancelled_.fetch_add(1, std::memory_order_relaxed);
  r->promise.Set(Status::FailedPrecondition("server shut down before the "
                                            "request was executed"));
}

void AsyncRetrievalServer::CompleteShed(Request* r) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(breakdown_mu_);
    ++lane_stats_[r->lane].shed;
    if (r->tenant_slot != kNoTenantSlot) ++tenant_stats_[r->tenant_slot].shed;
  }
  r->promise.Set(Status::ResourceExhausted(
      "shed from the admission queue by a higher-priority arrival"));
}

bool AsyncRetrievalServer::AdmitToBatch(Request r, Batch* batch,
                                        RetrievalClock::time_point now) {
  if (cancel_.load(std::memory_order_relaxed)) {
    CompleteCancelled(&r);
    return false;
  }
  // Deadline check #1, at dequeue: a request that died waiting in the
  // admission queue must not take a batch slot.
  if (now > r.req.options.deadline) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(breakdown_mu_);
      ++lane_stats_[r.lane].expired;
    }
    r.promise.Set(
        Status::DeadlineExceeded("deadline expired in the admission queue"));
    return false;
  }
  batch->push_back(std::move(r));
  return true;
}

void AsyncRetrievalServer::BatcherLoop() {
  for (;;) {
    std::optional<Request> first = queue_.Pop();
    if (!first.has_value()) break;  // Closed and fully drained.

    Batch batch;
    // The batching window opens when the batch's first request is
    // dequeued, so the first arrival bounds its own extra latency.
    RetrievalClock::time_point window_end =
        RetrievalClock::now() + options_.max_batch_delay;
    AdmitToBatch(std::move(*first), &batch, RetrievalClock::now());

    // Adaptive growth: keep coalescing while requests are available.
    // With no window this stops the moment the queue is empty (idle =>
    // singleton batches at single-query latency; backlog => full
    // batches); with a window it also waits out the remaining time for
    // stragglers.
    while (!batch.empty() && batch.size() < options_.max_batch) {
      std::optional<Request> next;
      if (options_.max_batch_delay.count() == 0) {
        next = queue_.TryPop();
      } else {
        auto remaining = window_end - RetrievalClock::now();
        if (remaining.count() <= 0) {
          next = queue_.TryPop();
          if (!next.has_value()) break;
        } else {
          next = queue_.PopFor(remaining);
        }
      }
      if (!next.has_value()) break;
      AdmitToBatch(std::move(*next), &batch, RetrievalClock::now());
    }
    if (batch.empty()) continue;  // Everything expired or cancelled.

    RecordBatchSize(batch.size());
    if (!dispatch_.Push(std::move(batch))) {
      // Only possible after the dispatch queue is closed, which this
      // thread does below — defensive: never drop promises.
      for (Request& r : batch) CompleteCancelled(&r);
    }
  }
  dispatch_.Close();  // Workers drain remaining batches, then exit.
}

void AsyncRetrievalServer::WorkerLoop() {
  for (;;) {
    std::optional<Batch> batch = dispatch_.Pop();
    if (!batch.has_value()) break;
    ExecuteBatch(std::move(*batch));
  }
}

void AsyncRetrievalServer::ExecuteBatch(Batch batch) {
  // Deadline check #2, before refine: the last gate before the backend
  // spends exact distances.  A request that expired while its batch sat
  // in the dispatch queue is answered late-but-honestly, not served.
  RetrievalClock::time_point now = RetrievalClock::now();
  Batch live;
  live.reserve(batch.size());
  // Per-lane counts accumulate locally and fold in under one lock per
  // batch: breakdown_mu_ is shared with every concurrent Submit, so the
  // completion path must not take it once per request.
  std::array<size_t, kNumPriorityLanes> lane_expired{};
  std::array<size_t, kNumPriorityLanes> lane_completed{};
  for (Request& r : batch) {
    if (cancel_.load(std::memory_order_relaxed)) {
      CompleteCancelled(&r);
    } else if (now > r.req.options.deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      ++lane_expired[r.lane];
      r.promise.Set(Status::DeadlineExceeded(
          "deadline expired before the refine step"));
    } else {
      live.push_back(std::move(r));
    }
  }

  // All requests sharing a result key — adjacent or not — execute as one
  // RetrieveBatch call; results[i] is bit-identical to
  // Retrieve(requests[i]) by the backend contract.  Group count is tiny
  // (bounded by max_batch), so a linear group scan beats hashing.
  std::vector<std::vector<size_t>> groups;
  for (size_t t = 0; t < live.size(); ++t) {
    std::vector<size_t>* group = nullptr;
    for (std::vector<size_t>& g : groups) {
      if (live[g[0]].req.options.SameResultKey(live[t].req.options)) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
    }
    group->push_back(t);
  }
  for (const std::vector<size_t>& group : groups) {
    std::vector<DxToDatabaseFn> queries;
    queries.reserve(group.size());
    for (size_t t : group) queries.push_back(std::move(live[t].req.dx));
    // The server's worker policy, not the request, decides execution
    // parallelism; num_threads does not affect results.
    RetrievalOptions exec = live[group[0]].req.options;
    exec.num_threads = options_.retrieve_threads;
    StatusOr<std::vector<RetrievalResponse>> results =
        backend_->RetrieveBatch(queries, exec);
    for (size_t i = 0; i < group.size(); ++i) {
      completed_.fetch_add(1, std::memory_order_relaxed);
      ++lane_completed[live[group[i]].lane];
      if (results.ok()) {
        live[group[i]].promise.Set(std::move((*results)[i]));
      } else {
        live[group[i]].promise.Set(results.status());
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(breakdown_mu_);
    for (size_t l = 0; l < kNumPriorityLanes; ++l) {
      lane_stats_[l].expired += lane_expired[l];
      lane_stats_[l].completed += lane_completed[l];
    }
  }
}

void AsyncRetrievalServer::RecordBatchSize(size_t size) {
  std::lock_guard<std::mutex> lock(histogram_mu_);
  batch_size_histogram_[std::min(size, options_.max_batch) - 1] += 1;
}

ServerStats AsyncRetrievalServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  s.unknown_tenant_rejected =
      unknown_tenant_rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(breakdown_mu_);
    s.lanes = lane_stats_;
    s.tenants = tenant_stats_;
  }
  std::array<size_t, kNumPriorityLanes> depths = queue_.lane_sizes();
  for (size_t l = 0; l < kNumPriorityLanes; ++l) {
    s.lanes[l].queue_depth = depths[l];
  }
  {
    std::lock_guard<std::mutex> lock(histogram_mu_);
    s.batch_size_histogram = batch_size_histogram_;
  }
  return s;
}

}  // namespace qse
