#ifndef QSE_UTIL_SERIALIZE_H_
#define QSE_UTIL_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace qse {

/// Little-endian binary writer for model / cache persistence.
/// All multi-byte values are written in host order; files are only intended
/// to be read back on the machine (or architecture family) that wrote them,
/// which is the standard contract for local model/cache files.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteDoubleVec(const std::vector<double>& v);
  void WriteFloatVec(const std::vector<float>& v);
  void WriteU32Vec(const std::vector<uint32_t>& v);

  bool ok() const { return out_ != nullptr && out_->good(); }

 private:
  std::ostream* out_;
};

/// Counterpart reader.  All Read* methods return a Status; on error the
/// output parameter is left unspecified.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadI64(int64_t* v);
  Status ReadDouble(double* v);
  Status ReadString(std::string* s);
  Status ReadDoubleVec(std::vector<double>* v);
  Status ReadFloatVec(std::vector<float>* v);
  Status ReadU32Vec(std::vector<uint32_t>* v);

 private:
  Status ReadRaw(void* dst, size_t n);
  std::istream* in_;
};

}  // namespace qse

#endif  // QSE_UTIL_SERIALIZE_H_
