#ifndef QSE_DISTANCE_SIMD_KERNELS_H_
#define QSE_DISTANCE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace qse {
namespace simd {

/// Dimensions per early-abandon check inside every kernel.  Large enough
/// that the lane reduction + branch is amortized over a cache line's
/// worth of work, small enough that hopeless rows are dropped after a
/// fraction of a high-dimensional scan.  A multiple of every kernel's
/// vector step, so the blocked loop never splits a vector iteration.
inline constexpr size_t kAbandonBlock = 64;

/// One ISA's set of filter-scan kernels.  Every kernel streams one
/// database row against a query, accumulating non-negative per-dimension
/// terms, and may stop early — returning any partial sum strictly
/// greater than `abandon` — once its running sum provably exceeds it
/// (partial sums of non-negative terms are monotone, so the true score
/// also exceeds `abandon`).  Pass +infinity for an exact full-row score.
///
/// Determinism contract (the reason these signatures exist instead of
/// letting the compiler autovectorize freely):
///
///  * float64 kernels accumulate in the four-lane discipline of the
///    original scalar code — lane j sums terms j, j+4, j+8, ... in
///    sequence — and reduce as (l0+l1)+(l2+l3), with the d%4 tail folded
///    into lane 0.  Completed scores are BIT-IDENTICAL across scalar,
///    AVX2 and AVX-512, and to the pre-dispatch code, on any machine.
///  * float32 and int8 kernels use a sixteen-lane discipline (lane j
///    sums terms j, j+16, ...; tail into lane 0) reduced by the
///    fold-halves tree r[j] = l[j] + l[j+8], then + r[j+4], + r[j+2],
///    + r[1].  Again bit-identical across ISAs for the same inputs.
///  * No FMA contraction anywhere (the kernel translation units compile
///    with -ffp-contract=off): a multiply feeding an add is two
///    roundings on every path.
///
/// Abandoned rows may return different partials on different ISAs (the
/// check runs every kAbandonBlock dims on whatever the lanes hold), but
/// every such return exceeds `abandon`, which is all callers use it for.
///
/// int8 kernels score symmetric-quantized rows: `wl1_i8` computes
/// sum_j c[j] * |q[j] - x[j]| and `wl2_i8` computes
/// sum_j (c[j] * d) * d with d = (float)|q[j] - x[j]|, where callers
/// fold dequantization scales (and weights) into the float32
/// coefficient array c.  Integer differences are exact; each term pays
/// only the coefficient multiply roundings, identically on every ISA.
struct KernelTable {
  double (*l1_f64)(const double* q, const double* x, size_t d,
                   double abandon);
  double (*l2_f64)(const double* q, const double* x, size_t d,
                   double abandon);
  double (*wl1_f64)(const double* q, const double* x, const double* w,
                    size_t d, double abandon);

  float (*l1_f32)(const float* q, const float* x, size_t d, float abandon);
  float (*l2_f32)(const float* q, const float* x, size_t d, float abandon);
  float (*wl1_f32)(const float* q, const float* x, const float* w, size_t d,
                   float abandon);

  float (*wl1_i8)(const int8_t* q, const int8_t* x, const float* c,
                  size_t d, float abandon);
  float (*wl2_i8)(const int8_t* q, const int8_t* x, const float* c,
                  size_t d, float abandon);
};

/// The portable reference implementation (plain C++, the bit-exactness
/// baseline).  Always available.
const KernelTable* ScalarKernels();

/// The AVX2 / AVX-512 implementations, or nullptr when the build could
/// not compile them (non-x86 target, QSE_DISABLE_SIMD, or a compiler
/// without the ISA).  Availability here is a BUILD property; whether the
/// running CPU supports the ISA is the dispatcher's job (dispatch.h).
const KernelTable* Avx2Kernels();
const KernelTable* Avx512Kernels();

}  // namespace simd
}  // namespace qse

#endif  // QSE_DISTANCE_SIMD_KERNELS_H_
