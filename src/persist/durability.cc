#include "src/persist/durability.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/obs/metric_registry.h"
#include "src/util/timer.h"

namespace qse {
namespace persist {
namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IOError("mkdir " + dir + ": " + std::strerror(errno));
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityOptions options)
    : options_(std::move(options)),
      replay_records_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_persist_replay_records_total")),
      snapshots_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_persist_snapshots_total")),
      wal_repairs_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_persist_wal_repairs_total")),
      snapshot_duration_ns_(obs::MetricRegistry::Global().GetHistogram(
          "qse_persist_snapshot_duration_ns",
          obs::DefaultLatencyBoundariesNs())) {}

StatusOr<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options) {
  QSE_RETURN_IF_ERROR(EnsureDir(options.dir));
  auto manager =
      std::unique_ptr<DurabilityManager>(new DurabilityManager(options));

  // Scan the log.  ReadWal is byte-level only; sequence hygiene happens
  // in Replay.
  StatusOr<WalReadResult> scanned = ReadWal(manager->wal_path());
  QSE_RETURN_IF_ERROR(scanned.status());
  WalReadResult& wal = scanned.value();
  if (wal.dropped_bytes > 0) {
    if (!manager->options_.repair_wal) {
      return Status::DataLoss(
          "WAL has a corrupt tail (" + std::to_string(wal.dropped_bytes) +
          " bytes) and repair_wal is off: " + wal.tail_status.message());
    }
    manager->recovery_.repaired_bytes = wal.dropped_bytes;
    manager->wal_repairs_total_->Increment();
  }
  manager->recovery_.wal_records = wal.records.size();

  // The snapshot: absent is fine (WAL-only recovery), corrupt is not —
  // a snapshot only ever becomes visible through the atomic publish
  // protocol, so a broken one means storage corruption, not a crash.
  StatusOr<SnapshotContents> snapshot =
      ReadSnapshotFile(manager->snapshot_path());
  if (snapshot.ok()) {
    manager->recovery_.loaded_snapshot = true;
    manager->recovery_.snapshot_cut_seq = snapshot.value().cut_seq;
    manager->recovery_.model_blob = snapshot.value().model_blob;
    manager->pending_snapshot_ = std::move(snapshot.value());
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return snapshot.status();
  }

  // Position the writer after the last valid record.  next_seq continues
  // from whichever is further along: the log's own records, its base, or
  // the snapshot cut (a crash between snapshot publish and WAL truncate
  // leaves the log behind the snapshot).
  // Max over all records, not just the last: duplicated-record
  // corruption can leave an out-of-order tail whose final seq is not
  // the largest one the log ever assigned.
  uint64_t last = wal.base_seq;
  for (const WalRecord& record : wal.records) {
    if (record.seq > last) last = record.seq;
  }
  if (manager->recovery_.snapshot_cut_seq > last) {
    last = manager->recovery_.snapshot_cut_seq;
  }
  StatusOr<std::unique_ptr<WalWriter>> writer = WalWriter::Open(
      manager->wal_path(), manager->options_.fsync,
      manager->options_.fsync_every_n, wal.valid_bytes, wal.base_seq,
      last + 1);
  QSE_RETURN_IF_ERROR(writer.status());
  manager->wal_ = std::move(writer.value());
  manager->pending_replay_ = std::move(wal.records);
  return StatusOr<std::unique_ptr<DurabilityManager>>(std::move(manager));
}

Status DurabilityManager::InstallSnapshot(
    const std::vector<EmbeddedDatabase*>& dbs) {
  if (!recovery_.loaded_snapshot) return Status::OK();
  if (pending_snapshot_.dbs.size() != dbs.size()) {
    return Status::FailedPrecondition(
        "snapshot holds " + std::to_string(pending_snapshot_.dbs.size()) +
        " databases but " + std::to_string(dbs.size()) +
        " were provided for install");
  }
  for (size_t i = 0; i < dbs.size(); ++i) {
    QSE_RETURN_IF_ERROR(InstallSnapshotDb(pending_snapshot_.dbs[i], dbs[i]));
  }
  return Status::OK();
}

StatusOr<uint64_t> DurabilityManager::Replay(RetrievalBackend* backend) {
  uint64_t applied = 0;
  uint64_t last_applied = recovery_.snapshot_cut_seq;
  for (const WalRecord& record : pending_replay_) {
    if (record.seq <= last_applied) continue;  // Snapshot covers it, or dup.
    if (record.seq != last_applied + 1) {
      return Status::DataLoss(
          "WAL sequence gap: expected " + std::to_string(last_applied + 1) +
          ", found " + std::to_string(record.seq));
    }
    Status status;
    switch (record.op) {
      case WalOp::kInsert:
        status = backend->InsertEmbedded(record.db_id, record.row);
        break;
      case WalOp::kRemove:
        status = backend->Remove(record.db_id);
        break;
    }
    if (!status.ok()) {
      // The log records mutations that SUCCEEDED; replaying them against
      // the state the snapshot restored must succeed too.  A failure
      // means log and snapshot contradict each other.
      return Status::DataLoss("WAL replay of seq " +
                              std::to_string(record.seq) +
                              " failed: " + status.ToString());
    }
    last_applied = record.seq;
    ++applied;
    replay_records_total_->Increment();
  }
  pending_replay_.clear();
  pending_replay_.shrink_to_fit();
  return applied;
}

Status DurabilityManager::LogInsert(uint64_t db_id,
                                    const std::vector<double>& embedded_row) {
  WalRecord record;
  record.op = WalOp::kInsert;
  record.db_id = db_id;
  record.row = embedded_row;
  QSE_RETURN_IF_ERROR(wal_->Append(&record));
  ++records_since_snapshot_;
  return Status::OK();
}

Status DurabilityManager::LogRemove(uint64_t db_id) {
  WalRecord record;
  record.op = WalOp::kRemove;
  record.db_id = db_id;
  QSE_RETURN_IF_ERROR(wal_->Append(&record));
  ++records_since_snapshot_;
  return Status::OK();
}

Status DurabilityManager::SyncWal() { return wal_->Sync(); }

bool DurabilityManager::WantsSnapshot() const {
  return options_.snapshot_every_records > 0 &&
         records_since_snapshot_ >= options_.snapshot_every_records;
}

Status DurabilityManager::WriteSnapshot(
    uint64_t cut_seq, const std::vector<EmbeddedDatabase::View>& views) {
  const MonotonicClock::time_point start = MonotonicClock::now();
  // The records the snapshot absorbs must be on disk before the log that
  // holds them can be truncated underneath a later crash.
  QSE_RETURN_IF_ERROR(wal_->Sync());
  std::string bytes = EncodeSnapshot(cut_seq, options_.model_blob, views);
  QSE_RETURN_IF_ERROR(WriteSnapshotFile(snapshot_path(), bytes));
  // Publish succeeded: everything at or below the cut is durable in the
  // snapshot, so compact the log.  A crash before this truncate is safe
  // (replay skips seq <= cut).
  QSE_RETURN_IF_ERROR(wal_->ResetToBase(cut_seq));
  records_since_snapshot_ = 0;
  snapshots_total_->Increment();
  snapshot_duration_ns_->Record(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now() - start)
          .count()));
  return Status::OK();
}

}  // namespace persist
}  // namespace qse
