#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/util/csv.h"
#include "src/util/parallel.h"
#include "src/util/serialize.h"

namespace qse {
namespace {

TEST(SerializeTest, RoundTripScalars) {
  std::stringstream ss;
  BinaryWriter w(&ss);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(1ull << 40);
  w.WriteI64(-42);
  w.WriteDouble(3.14159);
  BinaryReader r(&ss);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
}

TEST(SerializeTest, RoundTripStringsAndVectors) {
  std::stringstream ss;
  BinaryWriter w(&ss);
  w.WriteString("hello world");
  w.WriteString("");
  w.WriteDoubleVec({1.0, -2.5, 1e300});
  w.WriteFloatVec({1.5f, 2.5f});
  w.WriteU32Vec({7, 8, 9});
  BinaryReader r(&ss);
  std::string s1, s2;
  std::vector<double> dv;
  std::vector<float> fv;
  std::vector<uint32_t> uv;
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadString(&s2).ok());
  ASSERT_TRUE(r.ReadDoubleVec(&dv).ok());
  ASSERT_TRUE(r.ReadFloatVec(&fv).ok());
  ASSERT_TRUE(r.ReadU32Vec(&uv).ok());
  EXPECT_EQ(s1, "hello world");
  EXPECT_TRUE(s2.empty());
  EXPECT_EQ(dv, (std::vector<double>{1.0, -2.5, 1e300}));
  EXPECT_EQ(fv, (std::vector<float>{1.5f, 2.5f}));
  EXPECT_EQ(uv, (std::vector<uint32_t>{7, 8, 9}));
}

TEST(SerializeTest, TruncatedReadFails) {
  std::stringstream ss;
  BinaryWriter w(&ss);
  w.WriteU32(5);
  BinaryReader r(&ss);
  uint64_t v = 0;
  Status s = r.ReadU64(&v);  // Only 4 bytes available.
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(SerializeTest, InfinityRoundTrips) {
  std::stringstream ss;
  BinaryWriter w(&ss);
  double inf = std::numeric_limits<double>::infinity();
  w.WriteDouble(inf);
  w.WriteDouble(-inf);
  BinaryReader r(&ss);
  double a = 0, b = 0;
  ASSERT_TRUE(r.ReadDouble(&a).ok());
  ASSERT_TRUE(r.ReadDouble(&b).ok());
  EXPECT_EQ(a, inf);
  EXPECT_EQ(b, -inf);
}

TEST(TableTest, CsvEscaping) {
  Table t({"name", "value"});
  t.AddRow({"plain", "1"});
  t.AddRow({"with,comma", "2"});
  t.AddRow({"with\"quote", "3"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 11), "name,value\n");
}

TEST(TableTest, PrettyAlignsColumns) {
  Table t({"a", "bee"});
  t.AddRow({"xxxx", "1"});
  std::string pretty = t.ToPretty();
  // Header line and separator present.
  EXPECT_NE(pretty.find("a     bee"), std::string::npos);
  EXPECT_NE(pretty.find("----"), std::string::npos);
}

TEST(TableTest, FmtFormats) {
  EXPECT_EQ(Table::Fmt(static_cast<size_t>(42)), "42");
  EXPECT_EQ(Table::Fmt(2.5), "2.5");
  EXPECT_EQ(Table::Fmt(static_cast<long long>(-3)), "-3");
}

TEST(TableTest, WriteCsvToFile) {
  Table t({"x"});
  t.AddRow({"1"});
  std::string path = testing::TempDir() + "/qse_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvBadPathFails) {
  Table t({"x"});
  Status s = t.WriteCsv("/nonexistent-dir-zzz/file.csv");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(ParallelTest, CoversRangeExactlyOnce) {
  std::vector<int> hits(10000, 0);
  ParallelFor(0, hits.size(), [&](size_t i) { hits[i]++; }, 4);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelTest, SerialFallbackSmallRange) {
  std::vector<int> hits(10, 0);
  ParallelFor(0, hits.size(), [&](size_t i) { hits[i]++; }, 8);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelTest, DefaultParallelismPositive) {
  EXPECT_GE(DefaultParallelism(), 1u);
}

}  // namespace
}  // namespace qse
