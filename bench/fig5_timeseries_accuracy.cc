// Reproduces Figure 5: the Figure-4 protocol on the time-series workload
// with constrained Dynamic Time Warping (10% band) as the exact distance,
// comparing FastMap / Ra-QI / Se-QI / Se-QS.
//
// Scale note: the paper's dataset has 31,818 database sequences and 1,000
// queries (built from [32]'s seed-and-variants protocol); defaults here
// regenerate that protocol at single-core scale.  k1 = 9 follows the
// paper's setting for this dataset.
#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace qse;
  bench::Flags flags(argc, argv);

  bench::WorkloadScale wscale;
  wscale.db_size = flags.GetSize("db", 2000);
  wscale.num_queries = flags.GetSize("queries", 150);
  wscale.seed = flags.GetSize("seed", 32);

  bench::TrainingScale tscale;
  tscale.num_cand = flags.GetSize("cand", 400);
  tscale.num_train = flags.GetSize("train", 400);
  tscale.num_triples = flags.GetSize("triples", 30000);
  tscale.rounds = flags.GetSize("rounds", 128);
  tscale.embeddings_per_round = flags.GetSize("epr", 48);
  tscale.k1 = flags.GetSize("k1", 9);  // Paper value for the time series.
  tscale.seed = flags.GetSize("train_seed", 11);

  size_t kmax = flags.GetSize("kmax", 50);
  bench::Workload workload = bench::MakeTimeSeriesWorkload(wscale);
  bench::RunAccuracyFigure(workload, tscale, "fig5_timeseries",
                           {0.90, 0.95, 0.99},
                           {1, 2, 5, 10, 20, 30, 40, 50}, kmax,
                           /*include_ra_qs=*/false);
  return 0;
}
