#ifndef QSE_RETRIEVAL_EMBEDDED_DATABASE_H_
#define QSE_RETRIEVAL_EMBEDDED_DATABASE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/distance/distance.h"
#include "src/retrieval/filter_precision.h"
#include "src/util/aligned.h"
#include "src/util/epoch.h"

namespace qse {

/// The embedded database: one d-dimensional vector per database object, in
/// db-position order, plus the database id of every row.  Computed once
/// offline (the paper's "offline preprocessing step, in which we compute
/// and store vector F(x) for every database object").
///
/// Storage is a single contiguous row-major buffer rather than a
/// vector-of-vectors: the filter step is a linear scan over all rows, and
/// at production scale (n ~ 10^5..10^7, d ~ 10^2..10^3) the scan must
/// stream through memory without chasing one heap pointer per row.  Rows
/// are exposed as raw `const double*` views into the buffer.
///
/// Concurrency model (epoch/RCU — ROADMAP "concurrent mutation"):
/// the (rows, ids, row count) triple lives in an atomically published
/// Version.  Readers take a snapshot() — an epoch-pinned, immutable view —
/// and scan it without locks while mutations proceed:
///
///  * Append writes the new row into a never-published slot of the
///    current version and then publishes the grown row count, so pinned
///    readers either see the whole row or none of it.  When capacity is
///    exhausted (or a freed slot would be reused under a live pin), the
///    version is copied to a larger buffer and republished.
///  * SwapRemove of an interior row copy-on-writes a new version with the
///    last row moved into the gap — it never overwrites a row a pinned
///    reader may be scanning.  Removing the last row just shrinks the
///    published count (O(1)); the vacated slot is not reused in place,
///    so readers pinned at the old count still scan intact data.
///  * Replaced versions are retired to an EpochManager; their memory is
///    physically reused only after every reader pinned early enough to
///    have seen them has unpinned.
///
/// Every (version, count) pair a snapshot can observe equals the database
/// state after some prefix-closed sequence of the applied mutations — a
/// serializable snapshot — because published rows are immutable and the
/// count moves only between states that actually existed.
///
/// Mutations (Append/SwapRemove) must be serialized by the caller (the
/// engines hold a mutation mutex) but run concurrently with any number of
/// snapshot readers.  The quiescent bulk-load API (Resize, SetRow,
/// mutable_row, AssignIds, data(), row()) additionally requires that no
/// reader is active, exactly like the pre-epoch contract.
///
/// Mixed-precision filter shadows: after EnableFilterShadows(mask), each
/// version additionally carries a 64-byte-aligned float32 copy of the
/// rows (kShadowFloat32) and/or an int8 symmetric-quantized copy with
/// per-dimension scales (kShadowInt8), maintained by every mutation path
/// under the same publication rules as the float64 matrix — in-place
/// Append writes the shadow rows before the release-store of the grown
/// count, copy-on-write paths rebuild them into the new version.  The
/// per-dimension scales are immutable within a version: an Append whose
/// value would not quantize within the half-step bound (FitsInt8) forces
/// a copy-on-write re-quantization of the whole matrix with 1.25x
/// headroom, so `|stored| <= 127.5 * scale` holds for every published
/// row and the scorer's error envelope stays sound.  All row buffers
/// (float64 included) start on 64-byte boundaries via AlignedAllocator.
///
/// Enable shadows AFTER bulk-loading: mutable_row() hands out raw
/// float64 storage and cannot maintain them.  EnableFilterShadows
/// rebuilds from the float64 rows, so calling it again refreshes
/// shadows after a quiescent bulk mutation.
class EmbeddedDatabase {
 public:
  /// Borrowed, immutable view of one published version.  Valid while the
  /// originating Snapshot is alive, or — for unpinned peeks via the
  /// implicit conversion — while the database is quiescent.
  class View {
   public:
    View() = default;

    size_t size() const { return rows_; }
    size_t dims() const { return dims_; }
    bool empty() const { return rows_ == 0; }
    /// The flat buffer, row-major, size() * dims() doubles.
    const double* data() const { return data_; }
    /// Row i: dims() contiguous doubles.
    const double* row(size_t i) const { return data_ + i * dims_; }
    /// Database id of row i.
    size_t id_of(size_t i) const { return ids_[i]; }
    /// The whole id column, size() entries (snapshot serialization).
    const size_t* ids() const { return ids_; }

    /// Which filter shadows this view carries (kShadowFloat32 /
    /// kShadowInt8 bits).  Shadows appear only after the database's
    /// EnableFilterShadows; views taken before that have none.
    uint32_t shadows() const { return shadow_mask_; }
    bool has_f32() const { return (shadow_mask_ & kShadowFloat32) != 0; }
    bool has_i8() const { return (shadow_mask_ & kShadowInt8) != 0; }

    /// The float32 shadow, row-major, same shape as data().
    const float* data_f32() const { return f32_; }
    const float* row_f32(size_t i) const { return f32_ + i * dims_; }

    /// The int8 shadow and its per-dimension dequantization scales
    /// (dims() floats; value ~= scale[j] * row_i8(i)[j]).
    const int8_t* data_i8() const { return i8_; }
    const int8_t* row_i8(size_t i) const { return i8_ + i * dims_; }
    const float* i8_scales() const { return i8_scale_; }

   private:
    friend class EmbeddedDatabase;
    View(const double* data, const size_t* ids, size_t rows, size_t dims)
        : data_(data), ids_(ids), rows_(rows), dims_(dims) {}

    const double* data_ = nullptr;
    const size_t* ids_ = nullptr;
    size_t rows_ = 0;
    size_t dims_ = 0;
    const float* f32_ = nullptr;
    const int8_t* i8_ = nullptr;
    const float* i8_scale_ = nullptr;
    uint32_t shadow_mask_ = 0;
  };

  /// An epoch-pinned View: the rows, ids and count it exposes stay valid
  /// and immutable until it is destroyed, whatever mutations land in the
  /// meantime.  Movable; keep it only as long as the scan needs it —
  /// retired versions cannot be reclaimed while pins are live.
  class Snapshot {
   public:
    const View& view() const { return view_; }
    const View* operator->() const { return &view_; }

   private:
    friend class EmbeddedDatabase;
    Snapshot(View view, EpochManager::Guard guard)
        : view_(view), guard_(std::move(guard)) {}

    View view_;
    EpochManager::Guard guard_;
  };

  EmbeddedDatabase() : EmbeddedDatabase(0) {}
  explicit EmbeddedDatabase(size_t dims);
  ~EmbeddedDatabase();

  /// Copying deep-copies the current version (quiescent operation, used
  /// by tests to keep a pre-mutation reference).
  EmbeddedDatabase(const EmbeddedDatabase& other);
  EmbeddedDatabase& operator=(const EmbeddedDatabase& other);
  EmbeddedDatabase(EmbeddedDatabase&& other) noexcept;
  EmbeddedDatabase& operator=(EmbeddedDatabase&& other) noexcept;

  /// Pins the calling context and returns a consistent (rows, ids,
  /// count) view.  Safe to call concurrently with mutations from any
  /// thread; the view never changes underneath the caller.
  Snapshot snapshot() const;

  /// Unpinned peek at the current version, for quiescent callers
  /// (evaluation drivers, tests, benches) that score a database nobody
  /// is mutating.
  operator View() const { return PeekView(); }

  /// Number of rows (database objects).  Safe to read concurrently with
  /// mutations — the count lives outside the versions, so this never
  /// touches memory that deferred reclamation could free.  Under
  /// concurrent mutation it is a momentary value; consistent reads go
  /// through snapshot().
  size_t size() const { return rows_.load(std::memory_order_acquire); }
  /// Dimensionality d of every row.
  size_t dims() const { return dims_; }
  bool empty() const { return size() == 0; }

  /// Borrowed view of row i of the current version.  Quiescent API:
  /// invalidated by mutation.
  const double* row(size_t i) const {
    return current()->data.data() + i * dims_;
  }
  double* mutable_row(size_t i) { return current()->data.data() + i * dims_; }

  /// The whole flat buffer of the current version, row-major,
  /// size() * dims() doubles, 64-byte aligned.  Quiescent API.
  const Aligned64Vector<double>& data() const { return current()->data; }

  /// Builds the requested filter shadows (kShadowFloat32 | kShadowInt8)
  /// from the current float64 rows and keeps them maintained through
  /// every subsequent mutation.  Quiescent API (it rewrites the current
  /// version in place); call after bulk-loading, and again to refresh
  /// after quiescent mutable_row() edits.  Idempotent-and-rebuilding;
  /// bits accumulate across calls.
  void EnableFilterShadows(uint32_t mask);

  /// The shadow bits every published version carries from now on.
  uint32_t filter_shadows() const { return shadow_mask_; }

  /// Database id of row i of the current version.
  size_t id_of(size_t i) const;

  /// Copy of the current version's ids, in row order.
  std::vector<size_t> ids() const;

  /// Copy of row i as an owning Vector (convenience; prefer row() in hot
  /// loops).
  Vector RowVector(size_t i) const;

  /// Pre-allocates capacity for `rows` rows (copy-on-write when the
  /// current version is smaller).  No-op on a dimensionless database
  /// (dims() == 0) and when the capacity already suffices.
  void Reserve(size_t rows);

  /// Grows/shrinks to `rows` rows; new rows are zero-filled with ids
  /// equal to their row index.  Used with mutable_row() to fill the
  /// database in parallel.  Quiescent API.
  void Resize(size_t rows);

  /// Appends a row under database id `id` (`row.size()` must equal
  /// dims()).  Returns the new row's index.  O(d) amortized — the
  /// incremental insert of the dynamic dataset scenario — and safe
  /// against concurrent pinned readers.
  size_t Append(const Vector& row, size_t id);
  /// Appends a row with id defaulting to the new row's index (bulk-load
  /// call sites that assign real ids later via AssignIds).
  size_t Append(const Vector& row);

  /// Appends a borrowed row of dims() contiguous doubles (e.g. a row()
  /// view, even of this database) without materializing a temporary
  /// Vector.
  size_t Append(const double* row, size_t id);
  size_t Append(const double* row);

  /// Overwrites row i.  Quiescent API (mutating a published row under a
  /// live pin would tear a concurrent scan).
  void SetRow(size_t i, const Vector& row);

  /// Installs `ids[i]` as the database id of row i (ids.size() must
  /// equal size()).  Quiescent API; engines call it at construction.
  void AssignIds(const std::vector<size_t>& ids);

  /// Removes row i in O(d) by moving the last row into slot i and
  /// shrinking.  Returns the former index of the row that now occupies
  /// slot i (== i when removing the last row, i.e. nothing moved — that
  /// case only shrinks the published count, no copy at all).  Callers
  /// tracking row -> object-id mappings must apply the same swap; the
  /// internal id column follows it automatically.  Interior removals
  /// copy-on-write the version so concurrent pinned readers keep
  /// scanning the old one.
  size_t SwapRemove(size_t i);

  /// Runs deferred reclamation for versions whose readers have drained.
  /// Mutations do this opportunistically; call directly to bound memory
  /// during read-only phases.
  void ReclaimDrained() const { epoch_.ReclaimDrained(); }

  /// The epoch manager guarding this database's versions (tests).
  EpochManager& epoch_manager() const { return epoch_; }

  /// Installs a complete version VERBATIM — rows, ids, shadow matrices
  /// and int8 scales all copied bit-for-bit — replacing whatever the
  /// database held.  The durability subsystem's restore path: shadow
  /// scales are mutation-history-dependent (requant-on-overflow applies
  /// 1.25x headroom, EnableFilterShadows fits 1.0x), so a recovery that
  /// rebuilt shadows from the float64 rows would NOT be bit-identical to
  /// the database it is restoring; this installs the serialized state
  /// exactly.  `shadow_mask` becomes the database's shadow policy for
  /// all subsequent mutations; f32/i8/i8_scale may be null only when the
  /// matching bit is clear.  Quiescent API.
  void RestoreVersion(size_t rows, const double* data, const size_t* ids,
                      uint32_t shadow_mask, const float* f32,
                      const int8_t* i8, const float* i8_scale);

  /// Builds a flat database from rows-of-vectors (all rows must share one
  /// dimensionality); row i gets id i.  Bridge from AoS call sites and
  /// tests.
  static EmbeddedDatabase FromRows(const std::vector<Vector>& rows);

 private:
  /// One published generation of the database.  `data`/`ids` never
  /// reallocate after construction (capacity is fixed), so raw pointers
  /// handed to readers stay valid for the version's lifetime; `size` is
  /// the published row count.  `high_water` is the largest row count
  /// ever published from this version: slots below it may be visible to
  /// pinned readers and are never rewritten in place.
  struct Version {
    Version(size_t dims, size_t capacity_rows, uint32_t shadow_mask);

    // Row-major, exactly size * dims doubles, 64-byte-aligned base.
    Aligned64Vector<double> data;
    std::vector<size_t> ids;  // ids[i] = database id of row i.
    // Filter shadows (empty unless the matching bit of shadow_mask is
    // set): same row-major shape as `data`, same capacity discipline —
    // reserved up front, never reallocated, slots below high_water never
    // rewritten.  `i8_scale` (dims floats) is immutable once the version
    // is visible to readers; re-quantization always copies-on-write.
    Aligned64Vector<float> f32;
    Aligned64Vector<int8_t> i8;
    std::vector<float> i8_scale;
    uint32_t shadow_mask = 0;
    std::atomic<size_t> size{0};
    size_t high_water = 0;  // Mutator-only.
    size_t capacity_rows = 0;
  };

  Version* current() const {
    return current_.load(std::memory_order_seq_cst);
  }
  View PeekView() const;
  /// A View of `v` at `rows` rows, shadow pointers attached.
  View ViewOf(const Version* v, size_t rows) const;

  /// Allocates a version (reserving shadow capacity per shadow_mask_)
  /// and huge-page-advises its buffer when large.
  Version* NewVersion(size_t capacity_rows) const;
  /// Publishes `next` and retires the previous version to the epoch
  /// manager.
  void PublishAndRetire(Version* next);

  /// Whether `row` quantizes under v's scales within the half-step
  /// bound on every dimension (trivially true without an int8 shadow).
  bool RowFitsI8(const Version* v, const double* row) const;
  /// Converts/quantizes float64 row i of `v` into its shadow matrices
  /// (which must already have space for it).
  void FillShadowRow(Version* v, size_t i, const double* row) const;
  /// Recomputes v's scales from its first n float64 rows (times
  /// `headroom`) and quantizes those rows.  Quiescent/unpublished `v`
  /// only.
  void RequantizeI8(Version* v, size_t n, double headroom) const;

  size_t dims_ = 0;
  /// Shadow bits every version carries; set by EnableFilterShadows
  /// (quiescent), read by mutators.
  uint32_t shadow_mask_ = 0;
  std::atomic<Version*> current_{nullptr};
  /// Mirror of the current version's published row count, kept outside
  /// the versions so size()/empty() peeks are safe under concurrent
  /// mutation (a version pointer chased without a pin could already be
  /// reclaimed).
  std::atomic<size_t> rows_{0};
  mutable EpochManager epoch_;
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_EMBEDDED_DATABASE_H_
