#include "src/matching/shape_context.h"

#include <cassert>
#include <cmath>

namespace qse {

std::vector<Vector> ComputeShapeContexts(const PointSet& ps,
                                         const ShapeContextParams& params) {
  const size_t n = ps.size();
  assert(n >= 2);
  const size_t bins = params.descriptor_size();
  std::vector<Vector> descriptors(n, Vector(bins, 0.0));

  const double scale = ps.MeanPairwiseDistance();
  assert(scale > 0.0);
  const double log_inner = std::log(params.r_inner);
  const double log_outer = std::log(params.r_outer);
  const double log_span = log_outer - log_inner;
  const double two_pi = 2.0 * M_PI;

  for (size_t i = 0; i < n; ++i) {
    Vector& h = descriptors[i];
    size_t counted = 0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      Point2 d = ps.points[j] - ps.points[i];
      double r = Norm(d) / scale;
      if (r <= 0.0) continue;  // Coincident points carry no direction.
      // Log-radial bin; points nearer than r_inner go to bin 0, farther
      // than r_outer to the last bin (standard clamping in [5]).
      double lr = (std::log(r) - log_inner) / log_span;
      long rb = static_cast<long>(
          std::floor(lr * static_cast<double>(params.radial_bins)));
      if (rb < 0) rb = 0;
      if (rb >= static_cast<long>(params.radial_bins)) {
        rb = static_cast<long>(params.radial_bins) - 1;
      }
      double theta = std::atan2(d.y, d.x);
      if (theta < 0) theta += two_pi;
      size_t ab = static_cast<size_t>(
          theta / two_pi * static_cast<double>(params.angular_bins));
      if (ab >= params.angular_bins) ab = params.angular_bins - 1;
      h[static_cast<size_t>(rb) * params.angular_bins + ab] += 1.0;
      ++counted;
    }
    if (counted > 0) {
      for (double& v : h) v /= static_cast<double>(counted);
    }
  }
  return descriptors;
}

double ChiSquareCost(const Vector& h1, const Vector& h2) {
  assert(h1.size() == h2.size());
  double cost = 0.0;
  for (size_t k = 0; k < h1.size(); ++k) {
    double num = h1[k] - h2[k];
    double den = h1[k] + h2[k];
    if (den > 0.0) cost += num * num / den;
  }
  return 0.5 * cost;
}

Matrix ShapeContextCostMatrix(const std::vector<Vector>& a,
                              const std::vector<Vector>& b) {
  Matrix cost(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      cost(i, j) = ChiSquareCost(a[i], b[j]);
    }
  }
  return cost;
}

}  // namespace qse
