#ifndef QSE_UTIL_SERIALIZE_H_
#define QSE_UTIL_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace qse {

/// Little-endian binary writer for model / cache persistence.
/// All multi-byte values are written in host order; files are only intended
/// to be read back on the machine (or architecture family) that wrote them,
/// which is the standard contract for local model/cache files.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteDoubleVec(const std::vector<double>& v);
  void WriteFloatVec(const std::vector<float>& v);
  void WriteU32Vec(const std::vector<uint32_t>& v);
  void WriteU64Vec(const std::vector<uint64_t>& v);
  /// Raw bytes, no length prefix (callers that already framed the size).
  void WriteBytes(const void* data, size_t size);

  bool ok() const { return out_ != nullptr && out_->good(); }

 private:
  std::ostream* out_;
};

/// Counterpart reader.  All Read* methods return a Status; on error the
/// output parameter is left unspecified.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Status ReadU8(uint8_t* v);
  Status ReadU16(uint16_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadI64(int64_t* v);
  Status ReadDouble(double* v);
  Status ReadString(std::string* s);
  Status ReadDoubleVec(std::vector<double>* v);
  Status ReadFloatVec(std::vector<float>* v);
  Status ReadU32Vec(std::vector<uint32_t>* v);

 private:
  Status ReadRaw(void* dst, size_t n);
  std::istream* in_;
};

/// Bounds-checked sequential reader over an in-memory buffer — the decode
/// side of untrusted wire frames, where BinaryReader's stream model is the
/// wrong shape: a frame's total size is known up front, so every length
/// prefix can be validated against the bytes actually remaining BEFORE
/// any allocation.  A hostile length prefix therefore costs nothing; it
/// can never over-allocate.  All failures are kDataLoss (the buffer
/// contradicts its own framing).  Borrows the buffer; does not copy.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::string& buf)
      : ByteReader(buf.data(), buf.size()) {}

  Status ReadU8(uint8_t* v);
  Status ReadU16(uint16_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadI64(int64_t* v);
  Status ReadDouble(double* v);
  /// Length-prefixed (u64 count) reads; the count is validated against
  /// remaining() before the destination is resized, so a corrupt prefix
  /// fails without allocating.  `max_elems` tightens the cap further for
  /// fields with a known plausible bound (0 = remaining-bytes cap only).
  Status ReadString(std::string* s, uint64_t max_elems = 0);
  Status ReadDoubleVec(std::vector<double>* v, uint64_t max_elems = 0);
  Status ReadFloatVec(std::vector<float>* v, uint64_t max_elems = 0);
  Status ReadU64Vec(std::vector<uint64_t>* v, uint64_t max_elems = 0);

  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  /// True when every byte has been consumed (a well-formed frame ends
  /// exactly at its length prefix).
  bool exhausted() const { return pos_ == size_; }

 private:
  Status ReadRaw(void* dst, size_t n);
  /// Validates a length prefix for elements of `elem_size` bytes.
  Status CheckCount(uint64_t count, size_t elem_size, uint64_t max_elems);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace qse

#endif  // QSE_UTIL_SERIALIZE_H_
