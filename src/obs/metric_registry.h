#ifndef QSE_OBS_METRIC_REGISTRY_H_
#define QSE_OBS_METRIC_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qse {
namespace obs {

/// Stripes per counter/histogram.  Each stripe is one cache line, so
/// concurrent writers on different stripes never bounce a line between
/// cores; readers sum all stripes.  16 covers the worker counts this
/// codebase runs (the admission queue caps at a handful of workers) —
/// more threads than stripes still work, they just share.
inline constexpr size_t kMetricStripes = 16;

/// Destination cache line size.  std::hardware_destructive_interference
/// _size is not available on every toolchain this builds with.
inline constexpr size_t kCacheLineBytes = 64;

namespace internal {
/// The stripe this thread writes.  Assigned round-robin on first use so
/// the first kMetricStripes threads get private stripes.
size_t ThisThreadStripe();
}  // namespace internal

/// A monotonically increasing counter.  Add() is wait-free: one relaxed
/// fetch_add on a thread-striped cache-line-private cell (single-digit
/// nanoseconds, no contention between the first kMetricStripes
/// threads).  Value() sums the stripes — a read is O(kMetricStripes)
/// and sees every Add that happened-before it.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    cells_[internal::ThisThreadStripe()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(kCacheLineBytes) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kMetricStripes];
};

/// A value that goes up and down (queue depths, live object counts).
/// Single atomic: gauges are written from few places, never on the
/// per-row hot path, so striping would only slow the read side.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A gauge holding a double (rolling-window recall, error fractions —
/// values the integer Gauge cannot carry).  The double travels as its
/// bit pattern inside an atomic<uint64_t>: no std::atomic<double> needed,
/// and a zero bit pattern is exactly 0.0, so default construction reads
/// as zero.  Same write discipline as Gauge: few writers, off the
/// per-row hot path.
class FloatGauge {
 public:
  FloatGauge() = default;
  FloatGauge(const FloatGauge&) = delete;
  FloatGauge& operator=(const FloatGauge&) = delete;

  void Set(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double Value() const {
    uint64_t bits = bits_.load(std::memory_order_relaxed);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Point-in-time view of a Histogram: per-bucket counts plus count/sum.
/// bucket_counts[i] counts observations <= boundaries[i]; the final
/// entry (bucket_counts[boundaries.size()]) is the +inf overflow bucket.
struct HistogramSnapshot {
  std::vector<double> boundaries;
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank.  Returns 0 for an empty histogram;
  /// the overflow bucket reports its lower boundary (no upper edge to
  /// interpolate toward).
  double Quantile(double q) const;
};

/// A fixed-boundary histogram.  Record() is wait-free like Counter::
/// Add: binary-search the (immutable) boundaries, then one relaxed
/// fetch_add on this thread's stripe; the running sum uses a CAS loop
/// on a packed double (no std::atomic<double>::fetch_add in C++17).
/// Snapshot() merges the stripes.
class Histogram {
 public:
  /// `boundaries` must be strictly ascending; an implicit +inf bucket
  /// is appended.
  explicit Histogram(std::vector<double> boundaries);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  HistogramSnapshot Snapshot() const;

  const std::vector<double>& boundaries() const { return boundaries_; }

 private:
  struct alignas(kCacheLineBytes) Cell {
    /// bucket counts (boundaries_.size() + 1 entries), then count, then
    /// the bit-packed double sum — a flat atomic array so one stripe
    /// stays contiguous.
    std::unique_ptr<std::atomic<uint64_t>[]> slots;
  };

  size_t BucketOf(double value) const;

  std::vector<double> boundaries_;
  size_t num_buckets_;  // boundaries_.size() + 1
  Cell cells_[kMetricStripes];
};

/// `count` boundaries starting at `first`, each `factor` times the
/// previous — the standard shape for latency buckets.
std::vector<double> ExponentialBoundaries(double first, double factor,
                                          size_t count);

/// Nanosecond latency boundaries from 1us to ~4s (22 powers of two).
/// Shared default so every stage latency histogram is merge-compatible.
std::vector<double> DefaultLatencyBoundariesNs();

/// A named collection of metrics.  GetCounter/GetGauge/GetHistogram are
/// idempotent: the first call creates, later calls return the same
/// pointer, which stays valid for the registry's lifetime — resolve
/// once at construction time and keep the raw pointer on the hot path.
/// Metric names follow Prometheus conventions; labels are encoded in
/// the name itself, e.g. `qse_server_lane_admitted_total{lane="high"}`.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  FloatGauge* GetFloatGauge(const std::string& name);
  /// The boundaries of the first call win; a later call with different
  /// boundaries returns the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> boundaries);

  /// Visits every metric in lexicographic name order (deterministic
  /// export).  Exactly one of the pointers is non-null per call.
  void ForEach(const std::function<void(const std::string& name,
                                        const Counter*, const Gauge*,
                                        const FloatGauge*, const Histogram*)>&
                   fn) const;

  /// Process-wide registry for engine-level metrics; leaky singleton
  /// (never destroyed, safe to use from static teardown).  The first
  /// call registers the qse_build_info identity gauge (build_info.h).
  static MetricRegistry& Global();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<FloatGauge> float_gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
};

}  // namespace obs
}  // namespace qse

#endif  // QSE_OBS_METRIC_REGISTRY_H_
