#ifndef QSE_OBS_BUILD_INFO_H_
#define QSE_OBS_BUILD_INFO_H_

#include <string>

#include "src/obs/metric_registry.h"

namespace qse {
namespace obs {

/// Registers the build-identity gauge
///   qse_build_info{version="...",commit="...",simd="...",tracing="..."} 1
/// into `registry` and returns it, so every exported snapshot names the
/// binary (and the SIMD tier it dispatched to) that produced it.
/// version/commit come from the build system (QSE_BUILD_VERSION /
/// QSE_BUILD_COMMIT compile definitions; "unknown" when absent), simd
/// from simd::ResolveSimdLevel via ActiveSimdLevel, tracing from whether
/// the library was built with QSE_DISABLE_TRACING.  Label values go
/// through EscapeLabelValue, so injected build metadata cannot corrupt
/// the exposition.  Idempotent per registry; MetricRegistry::Global()
/// calls it on first use.
Gauge* RegisterBuildInfo(MetricRegistry* registry);

/// The full metric name RegisterBuildInfo registers (for tests and
/// presence checks against private registries).
std::string BuildInfoMetricName();

}  // namespace obs
}  // namespace qse

#endif  // QSE_OBS_BUILD_INFO_H_
