// Reproduces Figure 1 of the paper: a toy example in the unit square
// showing why query-sensitive distance measures help.
//
// Setup (as in the paper): 20 database points, 3 of them also act as
// reference objects r1, r2, r3; 10 query points; embedding
// F(x) = (F^r1(x), F^r2(x), F^r3(x)) compared with L1.
//
// Reported numbers (paper values in parentheses, for the authors' random
// draw): failure rate of F on all 3800 triples (23.5%), failure rates of
// the 1D embeddings F^ri (39.2 / 36.4 / 26.6%), and, for the query
// nearest to each reference object, the per-query comparison showing the
// 1D embedding beating the full embedding (5.8% vs 11.6% for q1) — the
// motivation for query-sensitive weighting.
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "src/distance/lp.h"
#include "src/util/random.h"

namespace qse {
namespace {

struct ToySpace {
  std::vector<Vector> db;       // 20 database points.
  std::vector<Vector> queries;  // 10 query points.
  std::vector<size_t> refs;     // Indices into db of r1, r2, r3.
};

ToySpace MakeToySpace(uint64_t seed) {
  Rng rng(seed);
  ToySpace t;
  for (int i = 0; i < 20; ++i) {
    t.db.push_back({rng.Uniform(0, 1.4), rng.Uniform(0, 1)});
  }
  for (int i = 0; i < 10; ++i) {
    t.queries.push_back({rng.Uniform(0, 1.4), rng.Uniform(0, 1)});
  }
  t.refs = {0, 1, 2};
  return t;
}

/// Embeds x with the three reference objects (Eq. 1 coordinates).
Vector Embed3(const ToySpace& t, const Vector& x) {
  return {L2Distance(x, t.db[t.refs[0]]), L2Distance(x, t.db[t.refs[1]]),
          L2Distance(x, t.db[t.refs[2]])};
}

/// Failure rate of a triple classifier over all (q, a, b) with q from the
/// queries and a != b from the database.  `margin(q, a, b) > 0` must mean
/// "q predicted closer to a".  Ties in the exact distance are skipped
/// (type-0 triples); prediction ties count as failures.
template <typename MarginFn>
double FailureRate(const ToySpace& t, const MarginFn& margin,
                   int only_query = -1) {
  size_t fails = 0, total = 0;
  for (size_t qi = 0; qi < t.queries.size(); ++qi) {
    if (only_query >= 0 && qi != static_cast<size_t>(only_query)) continue;
    for (size_t a = 0; a < t.db.size(); ++a) {
      for (size_t b = 0; b < t.db.size(); ++b) {
        if (a == b) continue;
        double da = L2Distance(t.queries[qi], t.db[a]);
        double db = L2Distance(t.queries[qi], t.db[b]);
        if (da == db) continue;
        double m = margin(qi, a, b);
        bool predicted_a = m > 0;
        bool truth_a = da < db;
        if (predicted_a != truth_a || m == 0) ++fails;
        ++total;
      }
    }
  }
  return 100.0 * static_cast<double>(fails) / static_cast<double>(total);
}

}  // namespace
}  // namespace qse

int main(int argc, char** argv) {
  using namespace qse;
  bench::Flags flags(argc, argv);
  uint64_t seed = flags.GetSize("seed", 1);
  ToySpace t = MakeToySpace(seed);

  // Precompute embeddings.
  std::vector<Vector> fdb, fq;
  for (const Vector& x : t.db) fdb.push_back(Embed3(t, x));
  for (const Vector& x : t.queries) fq.push_back(Embed3(t, x));

  auto full_margin = [&](size_t qi, size_t a, size_t b) {
    return L1Distance(fq[qi], fdb[b]) - L1Distance(fq[qi], fdb[a]);
  };
  auto coord_margin = [&](size_t coord) {
    return [&, coord](size_t qi, size_t a, size_t b) {
      return std::fabs(fq[qi][coord] - fdb[b][coord]) -
             std::fabs(fq[qi][coord] - fdb[a][coord]);
    };
  };
  // The query-sensitive rule of Fig. 1: for each query use only the
  // coordinate of its nearest reference object.
  auto qs_margin = [&](size_t qi, size_t a, size_t b) {
    size_t best = 0;
    for (size_t r = 1; r < 3; ++r) {
      if (fq[qi][r] < fq[qi][best]) best = r;
    }
    return coord_margin(best)(qi, a, b);
  };

  Table overall({"classifier", "failure_rate_pct", "paper_value_pct"});
  overall.AddRow({"F (3D, global L1)", Table::Fmt(FailureRate(t, full_margin)),
                  "23.5"});
  const char* paper_1d[3] = {"39.2", "36.4", "26.6"};
  for (size_t r = 0; r < 3; ++r) {
    overall.AddRow({"F^r" + std::to_string(r + 1),
                    Table::Fmt(FailureRate(t, coord_margin(r))),
                    paper_1d[r]});
  }
  overall.AddRow({"query-sensitive (nearest ref only)",
                  Table::Fmt(FailureRate(t, qs_margin)), "(lower than F)"});
  std::printf(
      "Figure 1 toy example — overall failure rates on all triples\n%s",
              overall.ToPretty().c_str());

  // Per-query rows: for the query nearest to each reference object,
  // compare the full embedding with that reference's 1D embedding.
  Table per_query({"reference", "query", "F^ri_fail_pct", "F_fail_pct",
                   "paper_F^ri", "paper_F"});
  const char* paper_ri[3] = {"5.8", "(n/a)", "(n/a)"};
  const char* paper_f[3] = {"11.6", "(n/a)", "(n/a)"};
  bool qs_wins_somewhere = false;
  for (size_t r = 0; r < 3; ++r) {
    // Query whose projection onto F^r is smallest = nearest to r.
    size_t qi = 0;
    for (size_t i = 1; i < t.queries.size(); ++i) {
      if (fq[i][r] < fq[qi][r]) qi = i;
    }
    double rate_1d = FailureRate(t, coord_margin(r), static_cast<int>(qi));
    double rate_f = FailureRate(t, full_margin, static_cast<int>(qi));
    if (rate_1d < rate_f) qs_wins_somewhere = true;
    per_query.AddRow({"r" + std::to_string(r + 1),
                      "q" + std::to_string(qi), Table::Fmt(rate_1d),
                      Table::Fmt(rate_f), paper_ri[r], paper_f[r]});
  }
  std::printf(
      "\nPer-query comparison (queries nearest to each reference object)\n%s",
      per_query.ToPretty().c_str());
  std::printf(
      "\nShape check: the 1D embedding of the nearest reference beats the "
      "full 3D embedding\nfor at least one such query: %s (paper: true for "
      "q1, q2, q3)\n",
      qs_wins_somewhere ? "YES" : "NO");

  Status s = overall.WriteCsv(bench::ResultsPath("fig1_toy_example"));
  if (!s.ok()) std::fprintf(stderr, "%s\n", s.ToString().c_str());
  return 0;
}
