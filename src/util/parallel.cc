#include "src/util/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace qse {

size_t DefaultParallelism() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 size_t num_threads) {
  // Below this size thread startup dominates for cheap bodies.
  ParallelForGrain(begin, end, 256, body, num_threads);
}

void ParallelForGrain(size_t begin, size_t end, size_t grain,
                      const std::function<void(size_t)>& body,
                      size_t num_threads) {
  if (begin >= end) return;
  if (num_threads == 0) num_threads = DefaultParallelism();
  size_t n = end - begin;
  if (num_threads <= 1 || n < grain) {
    for (size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<size_t> next(begin);
  // Chunked dynamic scheduling: balances uneven per-item cost (e.g. DTW on
  // variable-length series) without per-item atomic traffic.
  size_t chunk = n / (num_threads * 8);
  if (chunk == 0) chunk = 1;
  auto worker = [&]() {
    for (;;) {
      size_t lo = next.fetch_add(chunk);
      if (lo >= end) return;
      size_t hi = lo + chunk < end ? lo + chunk : end;
      for (size_t i = lo; i < hi; ++i) body(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (size_t t = 1; t < num_threads; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
}

}  // namespace qse
