#include "src/retrieval/filter_scorer.h"

#include <algorithm>
#include <cmath>

#include "src/distance/lp.h"
#include "src/distance/simd/dispatch.h"
#include "src/distance/weighted_l1.h"
#include "src/util/logging.h"

namespace qse {
namespace {

/// One streaming pass over the flat float64 buffer keeping the p
/// smallest rows.  `row_score(x, d, threshold)` scores one row with the
/// scorer's kernel and may stop early — returning any value strictly
/// greater than `threshold` — once its running partial sum provably
/// exceeds it.  Partial sums are monotone non-decreasing (non-negative
/// terms), so an abandoned row's true score also exceeds the threshold
/// and Offer() rejects it; completed rows return scores bit-identical
/// to Score()'s (the dispatched kernels hold the span kernels' lane
/// discipline, see src/distance/simd/kernels.h), and BoundedTopK breaks
/// ties by row index exactly like SmallestK.
template <typename RowScoreFn>
std::vector<ScoredIndex> TopPScan(const EmbeddedDatabase::View& db, size_t p,
                                  const RowScoreFn& row_score,
                                  FilterScanStats* scan_stats) {
  const size_t n = db.size();
  const size_t d = db.dims();
  BoundedTopK top(std::min(p, n));
  size_t pruned = 0;
  for (size_t i = 0; i < n; ++i) {
    pruned += !top.Offer({i, row_score(db.row(i), d, top.threshold())});
  }
  if (scan_stats != nullptr) *scan_stats = FilterScanStats{n, pruned};
  return top.TakeSortedAscending();
}

/// The reduced-precision counterpart: `row_score(i, widened)` scans a
/// shadow row against the threshold already widened by the quantization
/// error envelope, so abandonment stays sound relative to the exact
/// scores (see ScoreTopP's contract in the header).
template <typename RowScoreFn>
std::vector<ScoredIndex> TopPScanReduced(const EmbeddedDatabase::View& db,
                                         size_t p,
                                         const ReducedPrecisionBound& bound,
                                         const RowScoreFn& row_score,
                                         FilterScanStats* scan_stats) {
  const size_t n = db.size();
  BoundedTopK top(std::min(p, n));
  size_t pruned = 0;
  // Widening costs a divide; the threshold only moves when an Offer is
  // accepted (at most p times once the heap is warm), so cache the
  // widened value until it does.  +inf != +inf is false, so the initial
  // unbounded threshold takes the cached path too.
  double cached_threshold = top.threshold();
  float widened =
      FloatAtLeast(WidenedAbandonThreshold(cached_threshold, bound));
  for (size_t i = 0; i < n; ++i) {
    double t = top.threshold();
    if (t != cached_threshold) {
      cached_threshold = t;
      widened = FloatAtLeast(WidenedAbandonThreshold(t, bound));
    }
    pruned += !top.Offer({i, static_cast<double>(row_score(i, widened))});
  }
  if (scan_stats != nullptr) *scan_stats = FilterScanStats{n, pruned};
  return top.TakeSortedAscending();
}

/// int8 shadow rows are only d bytes — a few cachelines — and the scan
/// touches just one or two of them before abandoning most rows, too
/// little demand pressure to keep the hardware stream prefetcher ahead
/// of a DRAM-resident matrix.  Fetching a handful of rows ahead
/// explicitly recovers ~35% of scan time at n=1M, d=256 (measured; the
/// float32/float64 paths stream whole kilobytes per row and need no
/// help).
constexpr size_t kI8PrefetchRowsAhead = 8;

inline void PrefetchI8Row(const int8_t* row, size_t d) {
  for (size_t b = 0; b < d; b += 64) {
    __builtin_prefetch(row + b, /*rw=*/0, /*locality=*/0);
  }
}

std::vector<float> ToFloat(const double* v, size_t d) {
  std::vector<float> out(d);
  for (size_t j = 0; j < d; ++j) out[j] = static_cast<float>(v[j]);
  return out;
}

std::vector<int8_t> QuantizeQuery(const double* q, const float* scales,
                                  size_t d) {
  std::vector<int8_t> out(d);
  for (size_t j = 0; j < d; ++j) out[j] = QuantizeToInt8(q[j], scales[j]);
  return out;
}

}  // namespace

std::vector<ScoredIndex> FilterScorer::ScoreTopP(
    const Vector& embedded_query, const EmbeddedDatabase::View& db, size_t p,
    FilterPrecision precision, FilterScanStats* scan_stats) const {
  QSE_CHECK_MSG(precision == FilterPrecision::kExact64,
                "the fallback ScoreTopP only implements kExact64; scorers "
                "with reduced-precision support override it");
  std::vector<double> scores;
  Score(embedded_query, db, &scores);
  std::vector<ScoredIndex> best = SmallestK(scores, p);
  if (scan_stats != nullptr) {
    *scan_stats = FilterScanStats{db.size(), db.size() - best.size()};
  }
  return best;
}

void QuerySensitiveScorer::ScoreWithWeights(const Vector& weights,
                                            const Vector& embedded_query,
                                            const EmbeddedDatabase::View& db,
                                            std::vector<double>* scores) {
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  scores->resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    (*scores)[i] = WeightedL1DistanceSpan(embedded_query.data(), db.row(i),
                                          weights.data(), d);
  }
}

void QuerySensitiveScorer::Score(const Vector& embedded_query,
                                 const EmbeddedDatabase::View& db,
                                 std::vector<double>* scores) const {
  ScoreWithWeights(model_->QueryWeights(embedded_query), embedded_query, db,
                   scores);
}

std::vector<ScoredIndex> QuerySensitiveScorer::ScoreTopP(
    const Vector& embedded_query, const EmbeddedDatabase::View& db, size_t p,
    FilterPrecision precision, FilterScanStats* scan_stats) const {
  Vector weights = model_->QueryWeights(embedded_query);
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  // A_i(q) sums AdaBoost alphas, which MinimizeZ may in principle drive
  // negative; early abandon (and the reduced-precision envelopes) are
  // only sound for non-negative terms, so verify once per query and
  // fall back to the unpruned exact scan otherwise.
  bool nonnegative = true;
  for (double w : weights) {
    if (w < 0.0) {
      nonnegative = false;
      break;
    }
  }
  if (!nonnegative) {
    // Unpruned fallback, reusing the weights computed above instead of
    // paying a second A_i(q) evaluation inside Score().
    std::vector<double> scores;
    ScoreWithWeights(weights, embedded_query, db, &scores);
    std::vector<ScoredIndex> best = SmallestK(scores, p);
    if (scan_stats != nullptr) {
      *scan_stats = FilterScanStats{db.size(), db.size() - best.size()};
    }
    return best;
  }
  const double* q = embedded_query.data();
  const double* w = weights.data();
  const simd::KernelTable* k = simd::ActiveKernels();
  if (precision == FilterPrecision::kFilter32) {
    QSE_CHECK_MSG(db.has_f32(), "kFilter32 scan on a view without a float32 "
                                "shadow (EnableFilterShadows)");
    std::vector<float> qf = ToFloat(q, d);
    std::vector<float> wf = ToFloat(w, d);
    ReducedPrecisionBound bound = F32BoundWeightedL1(w, q, d);
    return TopPScanReduced(db, p, bound, [&](size_t i, float widened) {
      return k->wl1_f32(qf.data(), db.row_f32(i), wf.data(), d, widened);
    }, scan_stats);
  }
  if (precision == FilterPrecision::kFilter8) {
    QSE_CHECK_MSG(db.has_i8(), "kFilter8 scan on a view without an int8 "
                               "shadow (EnableFilterShadows)");
    const float* s = db.i8_scales();
    std::vector<int8_t> qq = QuantizeQuery(q, s, d);
    // Coefficients fold weight and dequantization scale: the kernel's
    // c_j * |qq_j - rq_j| then approximates w_j * |q_j - r_j|.
    std::vector<float> c(d);
    for (size_t j = 0; j < d; ++j) {
      c[j] = static_cast<float>(w[j] * static_cast<double>(s[j]));
    }
    ReducedPrecisionBound bound = I8BoundWeightedL1(w, q, qq.data(), s, d);
    return TopPScanReduced(db, p, bound, [&](size_t i, float widened) {
      if (i + kI8PrefetchRowsAhead < db.size()) {
        PrefetchI8Row(db.row_i8(i + kI8PrefetchRowsAhead), d);
      }
      return k->wl1_i8(qq.data(), db.row_i8(i), c.data(), d, widened);
    }, scan_stats);
  }
  return TopPScan(db, p, [q, w, k](const double* x, size_t dd, double t) {
    return k->wl1_f64(q, x, w, dd, t);
  }, scan_stats);
}

void L2Scorer::Score(const Vector& embedded_query,
                     const EmbeddedDatabase::View& db,
                     std::vector<double>* scores) const {
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  scores->resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    (*scores)[i] = SquaredL2DistanceSpan(embedded_query.data(), db.row(i), d);
  }
}

std::vector<ScoredIndex> L2Scorer::ScoreTopP(const Vector& embedded_query,
                                             const EmbeddedDatabase::View& db,
                                             size_t p,
                                             FilterPrecision precision,
                                             FilterScanStats* scan_stats)
    const {
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  const double* q = embedded_query.data();
  const simd::KernelTable* k = simd::ActiveKernels();
  if (precision == FilterPrecision::kFilter32) {
    QSE_CHECK_MSG(db.has_f32(), "kFilter32 scan on a view without a float32 "
                                "shadow (EnableFilterShadows)");
    std::vector<float> qf = ToFloat(q, d);
    ReducedPrecisionBound bound = F32BoundSquaredL2(q, d);
    return TopPScanReduced(db, p, bound, [&](size_t i, float widened) {
      return k->l2_f32(qf.data(), db.row_f32(i), d, widened);
    }, scan_stats);
  }
  if (precision == FilterPrecision::kFilter8) {
    QSE_CHECK_MSG(db.has_i8(), "kFilter8 scan on a view without an int8 "
                               "shadow (EnableFilterShadows)");
    const float* s = db.i8_scales();
    std::vector<int8_t> qq = QuantizeQuery(q, s, d);
    // c_j = s_j^2 turns the kernel's (c_j * fd) * fd into
    // (s_j * (qq_j - rq_j))^2, the quantized squared difference.
    std::vector<float> c(d);
    for (size_t j = 0; j < d; ++j) {
      double sd = static_cast<double>(s[j]);
      c[j] = static_cast<float>(sd * sd);
    }
    ReducedPrecisionBound bound = I8BoundSquaredL2(q, qq.data(), s, d);
    return TopPScanReduced(db, p, bound, [&](size_t i, float widened) {
      if (i + kI8PrefetchRowsAhead < db.size()) {
        PrefetchI8Row(db.row_i8(i + kI8PrefetchRowsAhead), d);
      }
      return k->wl2_i8(qq.data(), db.row_i8(i), c.data(), d, widened);
    }, scan_stats);
  }
  return TopPScan(db, p, [q, k](const double* x, size_t dd, double t) {
    return k->l2_f64(q, x, dd, t);
  }, scan_stats);
}

void L1Scorer::Score(const Vector& embedded_query,
                     const EmbeddedDatabase::View& db,
                     std::vector<double>* scores) const {
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  scores->resize(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    (*scores)[i] = L1DistanceSpan(embedded_query.data(), db.row(i), d);
  }
}

std::vector<ScoredIndex> L1Scorer::ScoreTopP(const Vector& embedded_query,
                                             const EmbeddedDatabase::View& db,
                                             size_t p,
                                             FilterPrecision precision,
                                             FilterScanStats* scan_stats)
    const {
  const size_t d = db.dims();
  QSE_CHECK(embedded_query.size() == d);
  const double* q = embedded_query.data();
  const simd::KernelTable* k = simd::ActiveKernels();
  if (precision == FilterPrecision::kFilter32) {
    QSE_CHECK_MSG(db.has_f32(), "kFilter32 scan on a view without a float32 "
                                "shadow (EnableFilterShadows)");
    std::vector<float> qf = ToFloat(q, d);
    ReducedPrecisionBound bound = F32BoundWeightedL1(nullptr, q, d);
    return TopPScanReduced(db, p, bound, [&](size_t i, float widened) {
      return k->l1_f32(qf.data(), db.row_f32(i), d, widened);
    }, scan_stats);
  }
  if (precision == FilterPrecision::kFilter8) {
    QSE_CHECK_MSG(db.has_i8(), "kFilter8 scan on a view without an int8 "
                               "shadow (EnableFilterShadows)");
    const float* s = db.i8_scales();
    std::vector<int8_t> qq = QuantizeQuery(q, s, d);
    ReducedPrecisionBound bound =
        I8BoundWeightedL1(nullptr, q, qq.data(), s, d);
    return TopPScanReduced(db, p, bound, [&](size_t i, float widened) {
      if (i + kI8PrefetchRowsAhead < db.size()) {
        PrefetchI8Row(db.row_i8(i + kI8PrefetchRowsAhead), d);
      }
      return k->wl1_i8(qq.data(), db.row_i8(i), s, d, widened);
    }, scan_stats);
  }
  return TopPScan(db, p, [q, k](const double* x, size_t dd, double t) {
    return k->l1_f64(q, x, dd, t);
  }, scan_stats);
}

}  // namespace qse
