#include "src/matching/shape_context_distance.h"

#include <cassert>
#include <cmath>

#include "src/matching/hungarian.h"

namespace qse {

namespace {

/// Normalizes a copy of `ps`: centroid at origin, mean pairwise distance 1.
/// Makes the alignment residual translation- and scale-free so the two
/// terms of the distance live on comparable scales.
PointSet Normalized(const PointSet& ps) {
  PointSet out = ps;
  out.CenterAtOrigin();
  double scale = out.MeanPairwiseDistance();
  if (scale > 0.0) {
    for (Point2& p : out.points) {
      p.x /= scale;
      p.y /= scale;
    }
  }
  return out;
}

/// Least-squares similarity alignment of paired points (complex-number
/// formulation): find s*e^{i*theta} and translation minimizing
/// sum |T(src_k) - dst_k|^2, return the RMS residual.
double SimilarityAlignmentResidual(const std::vector<Point2>& src,
                                   const std::vector<Point2>& dst) {
  assert(src.size() == dst.size());
  const size_t n = src.size();
  if (n == 0) return 0.0;
  // Center both sides (optimal translation folds into the centroids).
  Point2 cs{0, 0}, cd{0, 0};
  for (size_t k = 0; k < n; ++k) {
    cs = cs + src[k];
    cd = cd + dst[k];
  }
  double inv = 1.0 / static_cast<double>(n);
  cs = inv * cs;
  cd = inv * cd;
  // Treat points as complex numbers: optimal s*e^{i theta} =
  // (sum conj(a_k) b_k) / (sum |a_k|^2).
  double num_re = 0.0, num_im = 0.0, den = 0.0;
  for (size_t k = 0; k < n; ++k) {
    double ax = src[k].x - cs.x, ay = src[k].y - cs.y;
    double bx = dst[k].x - cd.x, by = dst[k].y - cd.y;
    num_re += ax * bx + ay * by;
    num_im += ax * by - ay * bx;
    den += ax * ax + ay * ay;
  }
  double wr = 0.0, wi = 0.0;
  if (den > 0.0) {
    wr = num_re / den;
    wi = num_im / den;
  }
  double ss = 0.0;
  for (size_t k = 0; k < n; ++k) {
    double ax = src[k].x - cs.x, ay = src[k].y - cs.y;
    double bx = dst[k].x - cd.x, by = dst[k].y - cd.y;
    double rx = wr * ax - wi * ay - bx;
    double ry = wr * ay + wi * ax - by;
    ss += rx * rx + ry * ry;
  }
  return std::sqrt(ss * inv);
}

}  // namespace

ShapeContextDistanceResult ShapeContextDistanceDetailed(
    const PointSet& a, const PointSet& b,
    const ShapeContextDistanceParams& params) {
  assert(a.size() >= 2 && b.size() >= 2);
  // Match the smaller set into the larger so the assignment is feasible.
  const PointSet& small = a.size() <= b.size() ? a : b;
  const PointSet& large = a.size() <= b.size() ? b : a;

  PointSet ns = Normalized(small);
  PointSet nl = Normalized(large);

  std::vector<Vector> ds = ComputeShapeContexts(ns, params.descriptor);
  std::vector<Vector> dl = ComputeShapeContexts(nl, params.descriptor);

  Matrix cost = ShapeContextCostMatrix(ds, dl);
  AssignmentResult assignment = SolveAssignment(cost);

  ShapeContextDistanceResult result;
  result.matching_cost =
      assignment.total_cost / static_cast<double>(small.size());

  std::vector<Point2> src(small.size()), dst(small.size());
  for (size_t k = 0; k < small.size(); ++k) {
    src[k] = ns.points[k];
    dst[k] = nl.points[assignment.row_to_col[k]];
  }
  result.alignment_cost = SimilarityAlignmentResidual(src, dst);
  result.total =
      result.matching_cost + params.alignment_weight * result.alignment_cost;
  return result;
}

double ShapeContextDistance(const PointSet& a, const PointSet& b,
                            const ShapeContextDistanceParams& params) {
  return ShapeContextDistanceDetailed(a, b, params).total;
}

}  // namespace qse
