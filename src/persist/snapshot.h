#ifndef QSE_PERSIST_SNAPSHOT_H_
#define QSE_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/retrieval/embedded_database.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace qse {
namespace persist {

/// Compacted snapshots: a point-in-time image of the embedding model blob
/// plus every shard's embedded matrix — float64 rows, ids, filter-shadow
/// matrices and int8 scales, all VERBATIM — taken from epoch-pinned views
/// at a WAL sequence cut-point.  Restoring a snapshot and replaying the
/// WAL records with seq > cut_seq reproduces the crashed process
/// bit-for-bit; shadows are serialized rather than rebuilt because int8
/// scales are mutation-history-dependent (requant-on-overflow headroom).
///
/// Payload layout (host-order little-endian, util/serialize contract):
///
///     u32 magic "QSES" | u16 version | u16 reserved | u64 cut_seq |
///     string model_blob | u64 num_dbs | num_dbs x {
///       u64 dims | u64 rows | u32 shadow_mask |
///       f64vec data (rows*dims) | u64vec ids (rows) |
///       [f32 bit]  f32vec f32 (rows*dims) |
///       [i8 bit]   string i8 (rows*dims bytes) | f32vec i8_scale (dims)
///     }
///
/// followed by a trailing u32 CRC32 over the whole payload.  Decode runs
/// through the bounds-checked ByteReader, validates every count against
/// the declared shape, and only after the CRC has vouched for the bytes —
/// a torn or tampered snapshot fails kDataLoss, it never crashes and
/// never silently restores wrong rows.
///
/// Publication is atomic: encode in memory, write `<path>.tmp`, fsync,
/// rename over `<path>`.  Recovery reads only `<path>`, so a crash at any
/// point of the protocol leaves either the old snapshot or the new one
/// visible — never a torn hybrid.
inline constexpr uint32_t kSnapshotMagic = 0x53455351u;  // "QSES"
inline constexpr uint16_t kSnapshotVersion = 1;
/// Same dims plausibility cap as the WAL and the wire codec.
inline constexpr uint64_t kMaxSnapshotDims = 1u << 20;

/// A decoded snapshot, shaped for EmbeddedDatabase::RestoreVersion.
struct SnapshotContents {
  struct Db {
    uint64_t dims = 0;
    uint64_t rows = 0;
    uint32_t shadow_mask = 0;
    std::vector<double> data;       // rows * dims.
    std::vector<uint64_t> ids;      // rows.
    std::vector<float> f32;         // rows * dims when the f32 bit is set.
    std::string i8;                 // rows * dims bytes when the i8 bit is set.
    std::vector<float> i8_scale;    // dims when the i8 bit is set.
  };

  uint64_t cut_seq = 0;
  std::string model_blob;
  std::vector<Db> dbs;
};

/// Encodes (model blob, epoch-pinned db views) into snapshot bytes,
/// trailing CRC included.  The views must all be alive (pinned or
/// quiescent) for the duration of the call; nothing else is required —
/// published versions are immutable, so encoding runs outside any
/// mutation lock.
std::string EncodeSnapshot(uint64_t cut_seq, const std::string& model_blob,
                           const std::vector<EmbeddedDatabase::View>& dbs);

/// Decodes and fully validates snapshot bytes.  kDataLoss on any
/// structural violation (bad magic/version, CRC mismatch, count that
/// contradicts the declared shape, trailing bytes).
StatusOr<SnapshotContents> DecodeSnapshot(const std::string& bytes);

/// Installs one decoded db image into `out` verbatim (RestoreVersion).
/// kFailedPrecondition when the dimensionalities disagree on a non-empty
/// image; an empty image restores an empty database regardless.
Status InstallSnapshotDb(const SnapshotContents::Db& db,
                         EmbeddedDatabase* out);

/// Atomically publishes `bytes` at `path` via write-temp / fsync /
/// rename (+ directory fsync).  On any failure the previous snapshot at
/// `path`, if one exists, is untouched and still valid.
Status WriteSnapshotFile(const std::string& path, const std::string& bytes);

/// Reads and decodes the snapshot at `path`.  kNotFound when the file
/// does not exist (fresh directory — recovery proceeds WAL-only);
/// kDataLoss when it exists but fails validation.
StatusOr<SnapshotContents> ReadSnapshotFile(const std::string& path);

namespace testing {

/// Fault-injection points for the snapshot-publish protocol.  Setting a
/// point makes the NEXT matching I/O step fail with kIOError, consumed
/// once — the fsync-policy matrix test drives every point and asserts a
/// torn snapshot is never visible to recovery.
enum class FaultPoint {
  kNone = 0,
  kSnapshotWrite,
  kSnapshotFsync,
  kSnapshotRename,
};

void SetFaultPoint(FaultPoint point);

}  // namespace testing

}  // namespace persist
}  // namespace qse

#endif  // QSE_PERSIST_SNAPSHOT_H_
