#ifndef QSE_RETRIEVAL_FILTER_REFINE_H_
#define QSE_RETRIEVAL_FILTER_REFINE_H_

// Umbrella header for the filter-and-refine retrieval stack.  The
// subsystem lives in three pieces:
//
//   embedded_database.h  - flat SoA storage of the embedded vectors
//   filter_scorer.h      - the filter step's scan kernels
//   retrieval_engine.h   - the batched filter-and-refine pipeline
//
// plus EmbedDatabase() below, the offline preprocessing step that fills
// the database.

#include <memory>
#include <vector>

#include "src/core/qs_embedding.h"
#include "src/data/dataset.h"
#include "src/embedding/embedder.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/util/top_k.h"

namespace qse {

/// Embeds every database object with `embedder`, in parallel across
/// `num_threads` workers (hardware concurrency when 0).  The exact
/// distances this consumes are offline preprocessing, not part of the
/// per-query cost.  `embedder` and `oracle` must be safe for concurrent
/// const use (CachingOracle is; plain ObjectOracle with a pure distance
/// function is too).
EmbeddedDatabase EmbedDatabase(const Embedder& embedder,
                               const DistanceOracle& oracle,
                               const std::vector<size_t>& db_ids,
                               size_t num_threads = 0);

}  // namespace qse

#endif  // QSE_RETRIEVAL_FILTER_REFINE_H_
