#ifndef QSE_OBS_EXPOSITION_H_
#define QSE_OBS_EXPOSITION_H_

#include <string>

#include "src/obs/metric_registry.h"

namespace qse {
namespace obs {

/// Escapes one label VALUE per the Prometheus text format 0.0.4:
/// backslash -> \\, double-quote -> \", newline -> \n.  Use when
/// building labeled metric names from runtime strings (tenant ids,
/// build metadata) so a hostile or accidental quote cannot break the
/// exposition.
std::string EscapeLabelValue(const std::string& value);

/// One `key="escaped value"` label pair ready to join into a metric
/// name's `{...}` body (EscapeLabelValue applied to `value`).
std::string PromLabel(const std::string& key, const std::string& value);

/// Prometheus text exposition (version 0.0.4) of every metric in the
/// registry, in lexicographic name order.  Counters get `# TYPE x
/// counter`, gauges (integer and float) `gauge`, histograms the
/// cumulative `_bucket{le=}` / `_sum` / `_count` triple.  Labels encoded
/// in metric names (`name{k="v"}`) are folded into the series labels;
/// the # TYPE line uses the base name and is emitted once per base name.
/// Label values must already be escaped at metric-name construction
/// (EscapeLabelValue/PromLabel) — the exporter cannot distinguish an
/// escape sequence from literal text after the fact.
std::string PrometheusText(const MetricRegistry& registry);

/// The same registry as one JSON object:
/// {"counters":{name:value,...},"gauges":{...},
///  "histograms":{name:{"count":n,"sum":s,"p50":...,"p99":...},...}}.
/// Machine-diffable dump for bench artifacts and the regression checker.
std::string MetricsJson(const MetricRegistry& registry);

}  // namespace obs
}  // namespace qse

#endif  // QSE_OBS_EXPOSITION_H_
