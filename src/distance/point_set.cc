#include "src/distance/point_set.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace qse {

double Norm(Point2 p) { return std::sqrt(p.x * p.x + p.y * p.y); }

double PointDistance(Point2 a, Point2 b) { return Norm(a - b); }

Point2 PointSet::Centroid() const {
  assert(!points.empty());
  Point2 c;
  for (const Point2& p : points) {
    c.x += p.x;
    c.y += p.y;
  }
  c.x /= static_cast<double>(points.size());
  c.y /= static_cast<double>(points.size());
  return c;
}

double PointSet::MeanPairwiseDistance() const {
  if (points.size() < 2) return 0.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      total += PointDistance(points[i], points[j]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

void PointSet::CenterAtOrigin() {
  if (points.empty()) return;
  Point2 c = Centroid();
  for (Point2& p : points) {
    p.x -= c.x;
    p.y -= c.y;
  }
}

double DirectedChamfer(const PointSet& a, const PointSet& b) {
  assert(!a.empty() && !b.empty());
  double total = 0.0;
  for (const Point2& pa : a.points) {
    double best = std::numeric_limits<double>::infinity();
    for (const Point2& pb : b.points) {
      best = std::min(best, PointDistance(pa, pb));
    }
    total += best;
  }
  return total / static_cast<double>(a.size());
}

double ChamferDistance(const PointSet& a, const PointSet& b) {
  return DirectedChamfer(a, b) + DirectedChamfer(b, a);
}

}  // namespace qse
