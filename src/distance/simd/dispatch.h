#ifndef QSE_DISTANCE_SIMD_DISPATCH_H_
#define QSE_DISTANCE_SIMD_DISPATCH_H_

#include "src/distance/simd/kernels.h"

namespace qse {
namespace simd {

/// The ISA tiers a kernel table can be built for, in preference order.
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Human-readable tier name ("scalar", "avx2", "avx512").
const char* SimdLevelName(SimdLevel level);

/// The tier this process dispatches to, resolved exactly once (first
/// call) from, in order:
///   1. QSE_FORCE_SCALAR set to anything non-empty  -> kScalar;
///   2. QSE_SIMD_LEVEL in {scalar, avx2, avx512}    -> that tier,
///      clamped down to what the build and the CPU support (the
///      override can lower the tier, never raise it past the hardware);
///   3. otherwise the best tier the build compiled AND the running CPU
///      reports via CPUID.
SimdLevel ActiveSimdLevel();

/// The kernel table for ActiveSimdLevel().  Never nullptr.  Callers
/// fetch it once per scan, not per row.
const KernelTable* ActiveKernels();

/// The kernel table for an explicit tier, or nullptr when that tier was
/// not compiled into this binary.  Running a table on a CPU without the
/// ISA is the caller's risk — this is for the parity test suite, which
/// probes availability first.
const KernelTable* KernelsFor(SimdLevel level);

/// The resolution logic behind ActiveSimdLevel(), side-effect free and
/// unit-testable: `best` is the highest tier both compiled and
/// CPU-supported; `force_scalar` / `level_override` are the raw
/// environment values (nullptr when unset).
SimdLevel ResolveSimdLevel(SimdLevel best, const char* force_scalar,
                           const char* level_override);

}  // namespace simd
}  // namespace qse

#endif  // QSE_DISTANCE_SIMD_DISPATCH_H_
