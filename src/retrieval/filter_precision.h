#ifndef QSE_RETRIEVAL_FILTER_PRECISION_H_
#define QSE_RETRIEVAL_FILTER_PRECISION_H_

#include <cstddef>
#include <cstdint>

namespace qse {

/// What the filter scan streams.  Refine always re-scores its
/// candidates from the float64 rows of the same snapshot, so reduced
/// precision here can only perturb WHICH top-p candidates are kept —
/// never the final reported distances.
enum class FilterPrecision : int {
  /// Scan the float64 rows.  Bit-identical to the pre-dispatch engine.
  kExact64 = 0,
  /// Scan the float32 shadow matrix: half the bytes.
  kFilter32 = 1,
  /// Scan the int8 symmetric-quantized shadow: an eighth of the bytes.
  kFilter8 = 2,
};

inline constexpr int kNumFilterPrecisions = 3;

const char* FilterPrecisionName(FilterPrecision p);

/// Shadow-matrix bits for EmbeddedDatabase::EnableFilterShadows and
/// ShardedEngineOptions::filter_shadows.
inline constexpr uint32_t kShadowFloat32 = 1u << 0;
inline constexpr uint32_t kShadowInt8 = 1u << 1;

/// The shadow bit a precision needs (0 for kExact64).
uint32_t ShadowMaskFor(FilterPrecision p);

/// Symmetric int8 quantization: round(x / scale) clamped to ±127.
/// A non-positive scale marks an all-zero dimension; anything lands on 0.
int8_t QuantizeToInt8(double x, float scale);

/// Whether `x` quantizes under `scale` without clamping error beyond
/// the half-step bound, i.e. |x| <= 127.5 * scale (or x == 0 for a dead
/// dimension).  The database keeps this true for every stored value by
/// re-quantizing the whole version when an insert would violate it.
bool FitsInt8(double x, float scale);

/// A two-parameter error envelope for a reduced-precision scan:
///
///     |approx - exact| <= additive + relative * (exact + approx)
///
/// where `exact` is the float64 score and `approx` the reduced-precision
/// one (both non-negative sums).  The lopsided `(exact + approx)` form
/// lets the widening below avoid needing either side alone.
struct ReducedPrecisionBound {
  double additive = 0.0;
  double relative = 0.0;
};

/// The early-abandon threshold to hand a reduced-precision kernel so
/// that abandonment stays sound: if the approx partial exceeds the
/// widened threshold W, the EXACT score provably exceeds the caller's
/// threshold T.  Derivation from the envelope:
///     exact >= (approx * (1 - rel) - add) / (1 + rel)
/// so requiring approx > W with W = (T * (1 + rel) + add) / (1 - rel)
/// forces exact > T.  Returns +infinity (never abandon) when the
/// envelope is too loose to widen (rel >= 1) or T is infinite.
double WidenedAbandonThreshold(double threshold,
                               const ReducedPrecisionBound& bound);

/// Envelope for scanning the float32 shadow with weighted-L1 terms
/// sum_j w_j |q_j - r_j| (pass w == nullptr for unit weights).  Only
/// query-side quantities appear — the row-side input rounding is folded
/// through |r_j| <= |q_j| + |q_j - r_j| into the relative part — so the
/// bound holds for every row without a per-version statistic that
/// in-place appends would race against.
ReducedPrecisionBound F32BoundWeightedL1(const double* w, const double* q,
                                         size_t d);

/// Envelope for the float32 squared-L2 scan sum_j (q_j - r_j)^2.
ReducedPrecisionBound F32BoundSquaredL2(const double* q, size_t d);

/// Envelope for the int8 weighted-L1 scan, where the kernel computes
/// sum_j c_j |qq_j - rq_j| with c_j = w_j * s_j.  `qq` is the quantized
/// query and `scales` the per-dimension scales; the dominant additive
/// term sums w_j * (|q_j - s_j * qq_j| + 0.5 * s_j): the query's exact
/// quantization residual plus the rows' half-step bound (guaranteed by
/// FitsInt8 maintenance).  Pass w == nullptr for unit weights.
ReducedPrecisionBound I8BoundWeightedL1(const double* w, const double* q,
                                        const int8_t* qq, const float* scales,
                                        size_t d);

/// Envelope for the int8 squared-L2 scan (kernel term (c_j * fd) * fd
/// with c_j = s_j^2).  Per dimension, with e_j the combined query + row
/// quantization error, |u^2 - v^2| <= e_j * (2 * (|q_j| + 127.5 * s_j)
/// + e_j) since |q_j - r_j| <= |q_j| + 127.5 * s_j.
ReducedPrecisionBound I8BoundSquaredL2(const double* q, const int8_t* qq,
                                       const float* scales, size_t d);

/// The smallest float that is >= x (a plain cast rounds to nearest and
/// can land BELOW x, which would under-widen a float threshold).
float FloatAtLeast(double x);

}  // namespace qse

#endif  // QSE_RETRIEVAL_FILTER_PRECISION_H_
