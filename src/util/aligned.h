#ifndef QSE_UTIL_ALIGNED_H_
#define QSE_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace qse {

/// Minimal C++17 aligned allocator: every allocation starts on an
/// `Alignment`-byte boundary.  The embedded database's version buffers
/// use it at 64 bytes so SIMD kernels can stream the float64 matrix and
/// its reduced-precision shadows from cache-line-aligned bases (and so a
/// row never straddles a cache line it did not have to).
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not be weaker than alignof(T)");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// A std::vector whose buffer is 64-byte aligned (one x86 cache line,
/// one AVX-512 register width).
template <typename T>
using Aligned64Vector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace qse

#endif  // QSE_UTIL_ALIGNED_H_
