#include "src/persist/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/retrieval/filter_precision.h"
#include "src/util/crc32.h"
#include "src/util/serialize.h"

namespace qse {
namespace persist {
namespace {

static_assert(sizeof(size_t) == sizeof(uint64_t),
              "snapshot id columns assume 64-bit size_t");

std::atomic<int> g_fault_point{0};

/// True exactly once after SetFaultPoint(point): the matching I/O step
/// consumes the fault.
bool ConsumeFault(testing::FaultPoint point) {
  int want = static_cast<int>(point);
  int cur = g_fault_point.load(std::memory_order_relaxed);
  return cur == want &&
         g_fault_point.compare_exchange_strong(cur, 0,
                                               std::memory_order_relaxed);
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

Status WriteFully(int fd, const void* data, size_t size,
                  const std::string& path) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write snapshot", path);
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Validates a decoded db image's internal shape.
Status ValidateDb(const SnapshotContents::Db& db) {
  if (db.dims > kMaxSnapshotDims) {
    return Status::DataLoss("snapshot dims " + std::to_string(db.dims) +
                            " exceeds plausibility cap");
  }
  constexpr uint32_t kKnownShadows = kShadowFloat32 | kShadowInt8;
  if ((db.shadow_mask & ~kKnownShadows) != 0) {
    return Status::DataLoss("snapshot shadow mask has unknown bits");
  }
  const uint64_t cells = db.rows * db.dims;
  if (db.dims != 0 && db.rows != cells / db.dims) {
    return Status::DataLoss("snapshot rows*dims overflows");
  }
  if (db.data.size() != cells) {
    return Status::DataLoss("snapshot data count contradicts rows*dims");
  }
  if (db.ids.size() != db.rows) {
    return Status::DataLoss("snapshot id count contradicts rows");
  }
  if ((db.shadow_mask & kShadowFloat32) != 0 && db.f32.size() != cells) {
    return Status::DataLoss("snapshot f32 shadow count contradicts rows*dims");
  }
  if ((db.shadow_mask & kShadowInt8) != 0) {
    if (db.i8.size() != cells) {
      return Status::DataLoss("snapshot i8 shadow count contradicts rows*dims");
    }
    if (db.i8_scale.size() != db.dims) {
      return Status::DataLoss("snapshot i8 scale count contradicts dims");
    }
  }
  return Status::OK();
}

}  // namespace

std::string EncodeSnapshot(uint64_t cut_seq, const std::string& model_blob,
                           const std::vector<EmbeddedDatabase::View>& dbs) {
  std::ostringstream body;
  BinaryWriter writer(&body);
  writer.WriteU32(kSnapshotMagic);
  writer.WriteU16(kSnapshotVersion);
  writer.WriteU16(0);
  writer.WriteU64(cut_seq);
  writer.WriteString(model_blob);
  writer.WriteU64(dbs.size());
  for (const EmbeddedDatabase::View& view : dbs) {
    const uint64_t rows = view.size();
    const uint64_t dims = view.dims();
    const uint64_t cells = rows * dims;
    writer.WriteU64(dims);
    writer.WriteU64(rows);
    writer.WriteU32(view.shadows());
    // Vector fields are written as (u64 count + raw bytes) directly from
    // the pinned buffers — the exact frame WriteDoubleVec/ReadDoubleVec
    // use, without materializing an owning copy first.
    writer.WriteU64(cells);
    writer.WriteBytes(view.data(), cells * sizeof(double));
    writer.WriteU64(rows);
    writer.WriteBytes(view.ids(), rows * sizeof(uint64_t));
    if (view.has_f32()) {
      writer.WriteU64(cells);
      writer.WriteBytes(view.data_f32(), cells * sizeof(float));
    }
    if (view.has_i8()) {
      writer.WriteU64(cells);
      writer.WriteBytes(view.data_i8(), cells);
      writer.WriteU64(dims);
      writer.WriteBytes(view.i8_scales(), dims * sizeof(float));
    }
  }
  std::string payload = body.str();
  const uint32_t crc = Crc32(payload);

  std::ostringstream tail;
  BinaryWriter crc_writer(&tail);
  crc_writer.WriteU32(crc);
  payload += tail.str();
  return payload;
}

StatusOr<SnapshotContents> DecodeSnapshot(const std::string& bytes) {
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::DataLoss("snapshot shorter than its CRC trailer");
  }
  const size_t payload_size = bytes.size() - sizeof(uint32_t);
  ByteReader crc_reader(bytes.data() + payload_size, sizeof(uint32_t));
  uint32_t stored_crc = 0;
  QSE_RETURN_IF_ERROR(crc_reader.ReadU32(&stored_crc));
  if (Crc32(bytes.data(), payload_size) != stored_crc) {
    return Status::DataLoss("snapshot CRC mismatch");
  }

  ByteReader reader(bytes.data(), payload_size);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t reserved = 0;
  QSE_RETURN_IF_ERROR(reader.ReadU32(&magic));
  if (magic != kSnapshotMagic) return Status::DataLoss("bad snapshot magic");
  QSE_RETURN_IF_ERROR(reader.ReadU16(&version));
  if (version != kSnapshotVersion) {
    return Status::DataLoss("unknown snapshot version " +
                            std::to_string(version));
  }
  QSE_RETURN_IF_ERROR(reader.ReadU16(&reserved));

  SnapshotContents contents;
  QSE_RETURN_IF_ERROR(reader.ReadU64(&contents.cut_seq));
  QSE_RETURN_IF_ERROR(reader.ReadString(&contents.model_blob));
  uint64_t num_dbs = 0;
  QSE_RETURN_IF_ERROR(reader.ReadU64(&num_dbs));
  // Each db costs at least its shape header; cap the count before
  // reserving anything.
  if (num_dbs > reader.remaining()) {
    return Status::DataLoss("snapshot db count contradicts remaining bytes");
  }
  contents.dbs.reserve(num_dbs);
  for (uint64_t d = 0; d < num_dbs; ++d) {
    SnapshotContents::Db db;
    QSE_RETURN_IF_ERROR(reader.ReadU64(&db.dims));
    QSE_RETURN_IF_ERROR(reader.ReadU64(&db.rows));
    QSE_RETURN_IF_ERROR(reader.ReadU32(&db.shadow_mask));
    QSE_RETURN_IF_ERROR(reader.ReadDoubleVec(&db.data));
    QSE_RETURN_IF_ERROR(reader.ReadU64Vec(&db.ids));
    if ((db.shadow_mask & kShadowFloat32) != 0) {
      QSE_RETURN_IF_ERROR(reader.ReadFloatVec(&db.f32));
    }
    if ((db.shadow_mask & kShadowInt8) != 0) {
      QSE_RETURN_IF_ERROR(reader.ReadString(&db.i8));
      QSE_RETURN_IF_ERROR(reader.ReadFloatVec(&db.i8_scale));
    }
    QSE_RETURN_IF_ERROR(ValidateDb(db));
    contents.dbs.push_back(std::move(db));
  }
  if (!reader.exhausted()) {
    return Status::DataLoss("snapshot payload has trailing bytes");
  }
  return contents;
}

Status InstallSnapshotDb(const SnapshotContents::Db& db,
                         EmbeddedDatabase* out) {
  QSE_RETURN_IF_ERROR(ValidateDb(db));
  // Dimensionalities must agree except for the one harmless case: an
  // empty, shadowless image clears any database.  An empty image WITH
  // shadows still carries per-dimension i8 scales that must line up.
  if (db.dims != out->dims() && !(db.rows == 0 && db.shadow_mask == 0)) {
    return Status::FailedPrecondition(
        "snapshot dims " + std::to_string(db.dims) +
        " do not match database dims " + std::to_string(out->dims()));
  }
  const bool has_f32 = (db.shadow_mask & kShadowFloat32) != 0;
  const bool has_i8 = (db.shadow_mask & kShadowInt8) != 0;
  out->RestoreVersion(
      db.rows, db.data.data(),
      reinterpret_cast<const size_t*>(db.ids.data()), db.shadow_mask,
      has_f32 ? db.f32.data() : nullptr,
      has_i8 ? reinterpret_cast<const int8_t*>(db.i8.data()) : nullptr,
      has_i8 ? db.i8_scale.data() : nullptr);
  return Status::OK();
}

Status WriteSnapshotFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return ErrnoStatus("open snapshot temp", tmp);

  Status status;
  if (ConsumeFault(testing::FaultPoint::kSnapshotWrite)) {
    status = Status::IOError("injected fault: snapshot write " + tmp);
  } else {
    status = WriteFully(fd, bytes.data(), bytes.size(), tmp);
  }
  if (status.ok()) {
    if (ConsumeFault(testing::FaultPoint::kSnapshotFsync)) {
      status = Status::IOError("injected fault: snapshot fsync " + tmp);
    } else if (::fsync(fd) != 0) {
      status = ErrnoStatus("fsync snapshot temp", tmp);
    }
  }
  ::close(fd);
  if (!status.ok()) return status;  // The temp file is never read back.

  if (ConsumeFault(testing::FaultPoint::kSnapshotRename)) {
    return Status::IOError("injected fault: snapshot rename " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoStatus("rename snapshot", path);
  }

  // Make the rename itself durable: fsync the containing directory.
  std::string dir = path;
  size_t slash = dir.find_last_of('/');
  dir = (slash == std::string::npos) ? std::string(".") : dir.substr(0, slash);
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

StatusOr<SnapshotContents> ReadSnapshotFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("no snapshot at " + path);
  }
  std::ostringstream into;
  into << file.rdbuf();
  return DecodeSnapshot(into.str());
}

namespace testing {

void SetFaultPoint(FaultPoint point) {
  g_fault_point.store(static_cast<int>(point), std::memory_order_relaxed);
}

}  // namespace testing

}  // namespace persist
}  // namespace qse
