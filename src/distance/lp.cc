#include "src/distance/lp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/distance/simd/dispatch.h"

namespace qse {

// The span kernels accumulate in four independent lanes (i % 4) and
// combine as (l0 + l1) + (l2 + l3); since the SIMD-dispatch PR they
// forward to the runtime-selected kernel table, whose every backend
// (scalar, AVX2, AVX-512) holds exactly that lane discipline — see
// src/distance/simd/kernels.h for the bit-identity contract.  The
// early-abandon scan (filter_scorer.cc) uses the same kernels, so kept
// scores stay bit-identical to these full scans.

double L1DistanceSpan(const double* a, const double* b, size_t n) {
  return simd::ActiveKernels()->l1_f64(
      a, b, n, std::numeric_limits<double>::infinity());
}

double SquaredL2DistanceSpan(const double* a, const double* b, size_t n) {
  return simd::ActiveKernels()->l2_f64(
      a, b, n, std::numeric_limits<double>::infinity());
}

double L1Distance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  return L1DistanceSpan(a.data(), b.data(), a.size());
}

double SquaredL2Distance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  return SquaredL2DistanceSpan(a.data(), b.data(), a.size());
}

double L2Distance(const Vector& a, const Vector& b) {
  return std::sqrt(SquaredL2Distance(a, b));
}

double LInfDistance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  // Four-lane discipline like the other kernels.  max carries no
  // rounding, so lane order cannot change the result — the unroll is
  // purely to break the serial compare dependence and open the loop to
  // vectorization.
  const size_t n = a.size();
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::max(m0, std::fabs(a[i] - b[i]));
    m1 = std::max(m1, std::fabs(a[i + 1] - b[i + 1]));
    m2 = std::max(m2, std::fabs(a[i + 2] - b[i + 2]));
    m3 = std::max(m3, std::fabs(a[i + 3] - b[i + 3]));
  }
  for (; i < n; ++i) m0 = std::max(m0, std::fabs(a[i] - b[i]));
  return std::max(std::max(m0, m1), std::max(m2, m3));
}

double LpDistance(const Vector& a, const Vector& b, double p) {
  assert(a.size() == b.size());
  assert(p >= 1.0);
  // Four-lane accumulation with the (l0+l1)+(l2+l3) reduction of the
  // other kernels.  std::pow dominates the cost, but the serial
  // sum dependence used to stall even that; independent lanes let the
  // pow calls pipeline.
  const size_t n = a.size();
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += std::pow(std::fabs(a[i] - b[i]), p);
    l1 += std::pow(std::fabs(a[i + 1] - b[i + 1]), p);
    l2 += std::pow(std::fabs(a[i + 2] - b[i + 2]), p);
    l3 += std::pow(std::fabs(a[i + 3] - b[i + 3]), p);
  }
  for (; i < n; ++i) l0 += std::pow(std::fabs(a[i] - b[i]), p);
  return std::pow((l0 + l1) + (l2 + l3), 1.0 / p);
}

}  // namespace qse
