#ifndef QSE_CORE_EMBEDDING1D_H_
#define QSE_CORE_EMBEDDING1D_H_

#include <cstdint>

#include "src/core/training_context.h"

namespace qse {

/// A one-dimensional embedding F : X -> R built from candidate objects
/// (Sec. 3.1):
///  * kReference — F^r(x) = DX(x, r)                                (Eq. 1)
///  * kPivot     — F^{x1,x2}(x) = (DX(x,x1)^2 + DX(x1,x2)^2
///                                 - DX(x,x2)^2) / (2 DX(x1,x2))    (Eq. 2)
/// c1/c2 are *local* candidate indices into a TrainingContext; the final
/// model resolves them to database ids (see ModelCoordinate).
struct Embedding1DSpec {
  enum class Type : uint8_t { kReference = 0, kPivot = 1 };

  Type type = Type::kReference;
  uint32_t c1 = 0;
  uint32_t c2 = 0;  // Only used by kPivot.

  friend bool operator==(const Embedding1DSpec& a, const Embedding1DSpec& b) {
    if (a.type != b.type || a.c1 != b.c1) return false;
    return a.type == Type::kReference || a.c2 == b.c2;
  }
};

/// Value of the pivot ("line projection") embedding given the raw
/// distances d1 = DX(x, x1), d2 = DX(x, x2) and d12 = DX(x1, x2) > 0.
double PivotProjection(double d1, double d2, double d12);

/// F(x) for training object `o` (local index), reading the precomputed
/// matrices of `ctx`.
double Eval1DOnTrainObject(const Embedding1DSpec& spec,
                           const TrainingContext& ctx, size_t o);

/// Fills values[o] = F(o) for every training object.  `values` must have
/// size ctx.num_train_objects().
void Eval1DOnAllTrainObjects(const Embedding1DSpec& spec,
                             const TrainingContext& ctx, double* values);

}  // namespace qse

#endif  // QSE_CORE_EMBEDDING1D_H_
