#include "src/obs/quality_monitor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/util/logging.h"
#include "src/util/top_k.h"

namespace qse {
namespace obs {

PageHinkleyDetector::PageHinkleyDetector(PageHinkleyOptions options)
    : options_(options) {
  QSE_CHECK_MSG(options_.lambda > 0 && options_.mean_window > 0,
                "PageHinkleyDetector needs lambda > 0 and mean_window > 0");
}

void PageHinkleyDetector::Reset() {
  n_ = 0;
  mean_ = 0.0;
  mh_ = 0.0;
  max_mh_ = 0.0;
  alarmed_ = false;
  healthy_streak_ = 0;
}

bool PageHinkleyDetector::Update(double x) {
  ++n_;
  // Running mean with a capped effective count: adapts to a sustained
  // shift with time constant ~mean_window instead of remembering the
  // whole pre-shift history forever.
  const double weight =
      static_cast<double>(std::min(n_, options_.mean_window));
  mean_ += (x - mean_) / weight;
  mh_ += x - mean_ + options_.delta;
  max_mh_ = std::max(max_mh_, mh_);

  if (!alarmed_) {
    if (n_ >= options_.min_samples && max_mh_ - mh_ > options_.lambda) {
      alarmed_ = true;
      healthy_streak_ = 0;
      return true;
    }
    return false;
  }
  // Alarmed: hysteresis.  A sample back within delta of the
  // (re-converging) mean is healthy; clear_after of them in a row
  // clears the alarm and re-baselines the whole detector.
  if (x + options_.delta >= mean_) {
    ++healthy_streak_;
    if (healthy_streak_ >= options_.clear_after) {
      Reset();
      return true;
    }
  } else {
    healthy_streak_ = 0;
  }
  return false;
}

QualityMonitor::QualityMonitor(QualityMonitorOptions options)
    : options_(options),
      queue_(options.queue_capacity),
      detector_(options.detector) {
  if (options_.sample_every_n == 0) options_.sample_every_n = 1;
  if (options_.window == 0) options_.window = 1;
  MetricRegistry& reg =
      options_.registry != nullptr ? *options_.registry
                                   : MetricRegistry::Global();
  audits_sampled_ = reg.GetCounter("qse_quality_audits_sampled_total");
  audits_completed_ = reg.GetCounter("qse_quality_audits_completed_total");
  audits_shed_ = reg.GetCounter("qse_quality_audits_shed_total");
  audit_mismatches_ = reg.GetCounter("qse_quality_audit_mismatches_total");
  drift_alarms_ = reg.GetCounter("qse_quality_drift_alarms_total");
  drift_alarm_ = reg.GetGauge("qse_quality_drift_alarm");
  recall_gauge_ = reg.GetFloatGauge("qse_quality_recall_at_k");
  displacement_gauge_ = reg.GetFloatGauge("qse_quality_rank_displacement");
  score_error_gauge_ = reg.GetFloatGauge("qse_quality_score_error");
  recall_window_.assign(options_.window, 0.0);
  displacement_window_.assign(options_.window, 0.0);
  score_error_window_.assign(options_.window, 0.0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

QualityMonitor::~QualityMonitor() { Shutdown(); }

bool QualityMonitor::ShouldSample() {
  return tick_.fetch_add(1, std::memory_order_relaxed) %
             options_.sample_every_n ==
         0;
}

void QualityMonitor::SubmitAudit(AuditTask task) {
  // Shed, never block: the audit queue backs up exactly when the
  // serving path is saturated, which is the worst moment to add work.
  if (queue_.TryPush(std::move(task))) {
    accepted_.fetch_add(1, std::memory_order_release);
    audits_sampled_->Increment();
  } else {
    audits_sampled_->Increment();
    audits_shed_->Increment();
  }
}

void QualityMonitor::Flush() {
  // Every accepted audit is eventually processed — Close() drains, it
  // does not drop — so waiting on the done_ watermark always terminates.
  const uint64_t target = accepted_.load(std::memory_order_acquire);
  while (done_.load(std::memory_order_acquire) < target) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

void QualityMonitor::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) {
    if (worker_.joinable()) worker_.join();
    return;
  }
  queue_.Close();  // worker drains what is queued, then exits
  if (worker_.joinable()) worker_.join();
}

QualityMonitorStats QualityMonitor::stats() const {
  QualityMonitorStats s;
  s.sampled = audits_sampled_->Value();
  s.completed = audits_completed_->Value();
  s.shed = audits_shed_->Value();
  s.mismatches = audit_mismatches_->Value();
  s.alarms = drift_alarms_->Value();
  s.drift_alarm = drift_alarm_->Value() != 0;
  s.recall_at_k = recall_gauge_->Value();
  s.rank_displacement = displacement_gauge_->Value();
  s.score_error = score_error_gauge_->Value();
  return s;
}

void QualityMonitor::WorkerLoop() {
  for (;;) {
    std::optional<AuditTask> task = queue_.Pop();
    if (!task.has_value()) return;  // closed and drained
    ProcessAudit(*task);
    // Snapshots die here, before the done_ bump: by the time Flush
    // returns, every audited pin has been released.
    task.reset();
    done_.fetch_add(1, std::memory_order_release);
  }
}

void QualityMonitor::ProcessAudit(AuditTask& task) {
  // Ground truth: exact DX to every row of the pinned views the serving
  // path scanned, sorted ascending by (score, id) — the deterministic
  // ordering the repo uses everywhere.
  std::vector<ScoredIndex> universe;
  for (const EmbeddedDatabase::Snapshot& snap : task.snapshots) {
    const EmbeddedDatabase::View& view = snap.view();
    universe.reserve(universe.size() + view.size());
    for (size_t i = 0; i < view.size(); ++i) {
      size_t id = view.id_of(i);
      universe.push_back({id, task.dx(id)});
    }
  }
  std::sort(universe.begin(), universe.end());
  const size_t true_k = std::min(task.k, universe.size());
  if (true_k == 0) {
    audits_completed_->Increment();
    return;
  }

  std::unordered_set<size_t> true_ids;
  true_ids.reserve(true_k);
  for (size_t i = 0; i < true_k; ++i) true_ids.insert(universe[i].index);
  std::unordered_map<size_t, size_t> rank_of;
  rank_of.reserve(universe.size());
  for (size_t r = 0; r < universe.size(); ++r) {
    rank_of.emplace(universe[r].index, r);
  }

  // Recall@k: fraction of the exact top-k the filter step kept.
  size_t hits = 0;
  for (const AuditNeighbor& nb : task.served) {
    if (true_ids.count(nb.db_id) != 0) ++hits;
  }
  const double recall =
      static_cast<double>(hits) / static_cast<double>(true_k);

  // Rank displacement: how far each served position sits below where
  // the exact ranking would put it (0 for a perfect answer).
  double displacement = 0.0;
  for (size_t i = 0; i < task.served.size(); ++i) {
    auto it = rank_of.find(task.served[i].db_id);
    const size_t rank =
        it != rank_of.end() ? it->second : universe.size();
    if (rank > i) displacement += static_cast<double>(rank - i);
  }
  displacement /=
      static_cast<double>(std::max<size_t>(task.served.size(), 1));

  // Relative score error against the exact top-k distances, positionwise.
  double abs_err = 0.0, abs_true = 0.0;
  const size_t compare = std::min(task.served.size(), true_k);
  for (size_t i = 0; i < compare; ++i) {
    abs_err += std::fabs(task.served[i].score - universe[i].score);
    abs_true += std::fabs(universe[i].score);
  }
  const double score_error = abs_err / std::max(abs_true, 1e-12);

  // Mismatch: the served answer is not bit-identical to exact kNN —
  // different id sets or different distances.  Expected nonzero when
  // p < n (filter misses are the approximation); must be zero when
  // p = n and nothing drifted, which is what the CI verify gate pins.
  bool mismatch = task.served.size() != true_k || hits != true_k;
  if (!mismatch) {
    for (size_t i = 0; i < true_k; ++i) {
      if (task.served[i].score != universe[i].score) {
        mismatch = true;
        break;
      }
    }
  }
  if (mismatch) audit_mismatches_->Increment();

  // Rolling-window means behind the published gauges.
  recall_window_[window_next_] = recall;
  displacement_window_[window_next_] = displacement;
  score_error_window_[window_next_] = score_error;
  window_next_ = (window_next_ + 1) % options_.window;
  window_filled_ = std::min(window_filled_ + 1, options_.window);
  double recall_sum = 0, disp_sum = 0, err_sum = 0;
  for (size_t i = 0; i < window_filled_; ++i) {
    recall_sum += recall_window_[i];
    disp_sum += displacement_window_[i];
    err_sum += score_error_window_[i];
  }
  const double denom = static_cast<double>(window_filled_);
  recall_gauge_->Set(recall_sum / denom);
  displacement_gauge_->Set(disp_sum / denom);
  score_error_gauge_->Set(err_sum / denom);

  // Drift detection on per-audit recall.
  uint64_t mark_start = TraceNowNs(task.trace.get());
  if (detector_.Update(recall)) {
    if (detector_.alarmed()) {
      drift_alarm_->Set(1);
      drift_alarms_->Increment();
      QSE_LOG_WARN("quality drift alarm RAISED: windowed recall@k "
                   << recall_gauge_->Value() << ", detector mean "
                   << detector_.mean() << " after "
                   << audits_completed_->Value() + 1 << " audits");
      TraceMark(task.trace.get(), "quality_drift_alarm", mark_start);
    } else {
      drift_alarm_->Set(0);
      QSE_LOG("quality drift alarm cleared: recall stabilized at "
              << recall_gauge_->Value());
    }
  }

  audits_completed_->Increment();
}

}  // namespace obs
}  // namespace qse
