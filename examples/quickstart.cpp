// Quickstart: train a query-sensitive embedding on a toy 2D dataset and
// use it for filter-and-refine nearest neighbor retrieval.
//
//   1. Wrap your objects + distance measure in an ObjectOracle.
//   2. TrainBoostMap -> QuerySensitiveEmbedding (the paper's F_out/D_out).
//   3. EmbedDatabase once offline (parallel across cores).
//   4. RetrievalEngine answers query batches with a handful of exact
//      distance computations per query instead of a full scan.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/distance/lp.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/exact_knn.h"
#include "src/retrieval/filter_refine.h"
#include "src/util/random.h"

int main() {
  using namespace qse;

  // --- 1. The "database": 2,000 random points in the unit square, with
  // Euclidean distance standing in for an expensive black-box DX.
  Rng rng(42);
  std::vector<Vector> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  ObjectOracle<Vector> oracle(std::move(points), L2Distance);

  std::vector<size_t> db_ids(1900);
  std::iota(db_ids.begin(), db_ids.end(), 0);  // Objects 0..1899 = db.
  // Objects 1900..1999 act as previously-unseen queries.

  // --- 2. Train the proposed method (Se-QS): selective triples +
  // query-sensitive distance.
  BoostMapConfig config;
  config.sampling = TripleSampling::kSelective;
  config.num_triples = 5000;
  config.k1 = 5;
  config.boost.rounds = 32;
  config.boost.embeddings_per_round = 24;
  config.boost.query_sensitive = true;

  // C and Xtr: a 200-object sample of the database.
  std::vector<size_t> sample(db_ids.begin(), db_ids.begin() + 200);
  auto artifacts = TrainBoostMap(oracle, sample, sample, config);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }
  const QuerySensitiveEmbedding& model = artifacts->model;
  std::printf("trained Se-QS model: %zu dims, %zu boosting rounds, "
              "embedding a query costs %zu exact distances\n",
              model.dims(), model.num_rounds(), model.EmbeddingCost());

  // --- 3. Offline: embed the database.
  QseEmbedderAdapter embedder(&model);
  EmbeddedDatabase embedded = EmbedDatabase(embedder, oracle, db_ids);

  // --- 4. Online: batched filter-and-refine retrieval for unseen
  // queries.  RetrieveBatch fans the queries out across all cores; each
  // query still costs only an embedding plus p exact distances.
  QuerySensitiveScorer scorer(&model);
  RetrievalEngine engine(&embedder, &scorer, &embedded, db_ids);

  const size_t k = 3, p = 60;
  std::vector<DxToDatabaseFn> queries;
  for (size_t query_id = 1900; query_id < 2000; ++query_id) {
    queries.push_back([&oracle, query_id](size_t id) {
      return oracle.Distance(query_id, id);
    });
  }
  auto batch = engine.RetrieveBatch(queries, RetrievalOptions(k, p));
  if (!batch.ok()) {
    std::fprintf(stderr, "retrieval failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  size_t correct = 0, total_cost = 0;
  for (size_t qi = 0; qi < batch->size(); ++qi) {
    const RetrievalResponse& result = (*batch)[qi];
    total_cost += result.exact_distances;
    // Compare against brute force.
    auto exact = ExactKnn(oracle, 1900 + qi, db_ids, k);
    bool all_found = true;
    for (size_t i = 0; i < k; ++i) {
      if (result.neighbors[i].index != exact[i].index) all_found = false;
    }
    if (all_found) ++correct;
  }
  std::printf("retrieved all %zu nearest neighbors correctly for %zu/100 "
              "queries\n",
              k, correct);
  std::printf("average exact distances per query: %zu (brute force: %zu)\n",
              total_cost / 100, db_ids.size());
  std::printf("=> speed-up factor ~%.1fx\n",
              static_cast<double>(db_ids.size()) /
                  (static_cast<double>(total_cost) / 100.0));
  return 0;
}
