#ifndef QSE_PERSIST_DURABLE_BACKEND_H_
#define QSE_PERSIST_DURABLE_BACKEND_H_

#include <mutex>
#include <vector>

#include "src/persist/durability.h"
#include "src/retrieval/retrieval_backend.h"

namespace qse {
namespace persist {

/// RetrievalBackend decorator that makes an engine's mutations durable:
/// retrievals pass straight through (epoch-pinned snapshots need no help
/// from this layer), mutations apply to the inner backend and are then
/// logged to the WAL under one mutex, so the log is the exact successful
/// mutation sequence in apply order — the property replay depends on.
///
/// Apply-then-log: a mutation that fails application is never logged; a
/// crash between apply and log loses only that one unacknowledged
/// mutation (the caller never saw OK).  A log failure after a successful
/// apply is returned to the caller as the mutation's status — the state
/// diverged from the log by one record the caller knows was not made
/// durable.
///
/// Insert embeds ONCE here (the engine's Insert would embed internally,
/// leaving nothing to log), then routes the row through InsertEmbedded —
/// the same closure-free form the WAL records and replay re-applies.
///
/// Snapshots (auto via DurabilityOptions::snapshot_every_records, or
/// WriteSnapshotNow) run under the same mutex: mutations stall for the
/// snapshot's duration while retrievals continue against their pinned
/// versions.  The cut-point is therefore exactly last_seq(), and the
/// WAL truncation that follows the publish cannot race a concurrent
/// append.  (ROADMAP: incremental snapshots move the encode off the
/// mutation path.)
class DurableBackend : public RetrievalBackend {
 public:
  /// All pointers are borrowed and must outlive the backend.
  /// `snapshot_dbs` are the databases a snapshot serializes, in a FIXED
  /// order that recovery must reproduce when installing: the monolithic
  /// engine's single db, or the sharded engine's shard dbs in shard
  /// order.
  DurableBackend(RetrievalBackend* inner, const Embedder* embedder,
                 DurabilityManager* manager,
                 std::vector<const EmbeddedDatabase*> snapshot_dbs);

  StatusOr<RetrievalResponse> Retrieve(
      const RetrievalRequest& request) const override {
    return inner_->Retrieve(request);
  }
  StatusOr<std::vector<RetrievalResponse>> RetrieveBatch(
      const std::vector<DxToDatabaseFn>& queries,
      const RetrievalOptions& options) const override {
    return inner_->RetrieveBatch(queries, options);
  }
  StatusOr<ScanCandidatesResult> ScanCandidates(
      const Vector& embedded_query,
      const RetrievalOptions& options) const override {
    return inner_->ScanCandidates(embedded_query, options);
  }

  Status Insert(size_t db_id, const DxToDatabaseFn& dx) override;
  Status InsertEmbedded(size_t db_id, const Vector& embedded_row) override;
  Status Remove(size_t db_id) override;

  size_t size() const override { return inner_->size(); }
  size_t db_id_of(size_t neighbor_index) const override {
    return inner_->db_id_of(neighbor_index);
  }

  /// Takes a compacted snapshot now, at cut point last_seq().  Serialized
  /// against mutations; safe concurrently with retrievals.
  Status WriteSnapshotNow();

  DurabilityManager* manager() const { return manager_; }

 private:
  /// Logs one applied mutation and auto-snapshots when the manager says
  /// the WAL has grown enough.  Caller holds mu_.
  Status LogAppliedLocked(bool is_insert, size_t db_id, const Vector* row);
  Status SnapshotLocked();

  RetrievalBackend* inner_;
  const Embedder* embedder_;
  DurabilityManager* manager_;
  std::vector<const EmbeddedDatabase*> snapshot_dbs_;
  std::mutex mu_;
};

}  // namespace persist
}  // namespace qse

#endif  // QSE_PERSIST_DURABLE_BACKEND_H_
