#ifndef QSE_UTIL_TIMER_H_
#define QSE_UTIL_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace qse {

class FakeClock;

namespace internal {
/// The installed FakeClock, or nullptr when real time flows.  One
/// acquire load on the hot path; writes only happen in tests.
std::atomic<FakeClock*>& ClockOverrideSlot();
}  // namespace internal

/// The one monotonic time source of the codebase: deadlines, trace
/// spans, stage latency metrics, and Timer all read it, so timestamps
/// from different layers are directly comparable.  Backed by
/// std::chrono::steady_clock (immune to wall-clock jumps); tests
/// install a FakeClock via ScopedFakeClock to advance time explicitly
/// instead of sleeping.  Satisfies the Clock named requirements, so it
/// drops in wherever steady_clock did.
struct MonotonicClock {
  using rep = std::chrono::steady_clock::rep;
  using period = std::chrono::steady_clock::period;
  using duration = std::chrono::steady_clock::duration;
  using time_point = std::chrono::steady_clock::time_point;
  static constexpr bool is_steady = true;

  static time_point now();
};

/// A manually advanced monotonic clock for deterministic tests: time
/// stands still until Advance() moves it, so deadline and span tests
/// assert exact orderings instead of sleeping and hoping.  Thread-safe:
/// Now/Advance are atomic, and readers on other threads observe an
/// advance immediately.
class FakeClock {
 public:
  /// Starts at the real clock's current time so absolute timestamps
  /// stay plausible (and monotone against times taken before install).
  FakeClock()
      : now_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count()) {}

  MonotonicClock::time_point Now() const {
    return MonotonicClock::time_point(std::chrono::duration_cast<
                                      MonotonicClock::duration>(
        std::chrono::nanoseconds(now_ns_.load(std::memory_order_acquire))));
  }

  template <typename Rep, typename Period>
  void Advance(std::chrono::duration<Rep, Period> d) {
    int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    now_ns_.fetch_add(ns, std::memory_order_acq_rel);
  }

 private:
  std::atomic<int64_t> now_ns_;
};

/// Installs a FakeClock into MonotonicClock for the enclosing scope.
/// Not nestable and not safe to construct concurrently from two
/// threads (tests install one clock at a time); reads from any thread
/// are fine while it is installed.
class ScopedFakeClock {
 public:
  ScopedFakeClock() {
    internal::ClockOverrideSlot().store(&clock_, std::memory_order_release);
  }
  ~ScopedFakeClock() {
    internal::ClockOverrideSlot().store(nullptr, std::memory_order_release);
  }
  ScopedFakeClock(const ScopedFakeClock&) = delete;
  ScopedFakeClock& operator=(const ScopedFakeClock&) = delete;

  FakeClock& clock() { return clock_; }

 private:
  FakeClock clock_;
};

inline MonotonicClock::time_point MonotonicClock::now() {
  FakeClock* fake =
      internal::ClockOverrideSlot().load(std::memory_order_acquire);
  if (fake != nullptr) return fake->Now();
  return std::chrono::steady_clock::now();
}

/// Wall-clock stopwatch used by benches and experiment harnesses.
class Timer {
 public:
  Timer() : start_(MonotonicClock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = MonotonicClock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(MonotonicClock::now() - start_)
        .count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  MonotonicClock::time_point start_;
};

}  // namespace qse

#endif  // QSE_UTIL_TIMER_H_
