#ifndef QSE_DISTANCE_POINT_SET_H_
#define QSE_DISTANCE_POINT_SET_H_

#include <cstddef>
#include <vector>

namespace qse {

/// A 2D point.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Point2 operator*(double s, Point2 p) { return {s * p.x, s * p.y}; }
};

/// Euclidean norm helpers.
double Norm(Point2 p);
double PointDistance(Point2 a, Point2 b);

/// An unordered 2D point set — the object representation for shape-like
/// data (our MNIST substitute samples each digit as a point set, exactly
/// the input representation that shape context [4] consumes).
struct PointSet {
  std::vector<Point2> points;

  size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }

  Point2 Centroid() const;

  /// Mean pairwise Euclidean distance; the scale normalizer used by shape
  /// context descriptors.  Returns 0 for sets with fewer than 2 points.
  double MeanPairwiseDistance() const;

  /// Translates so the centroid is at the origin.
  void CenterAtOrigin();
};

/// Directed chamfer distance: mean over a of min_b ||a - b||.
double DirectedChamfer(const PointSet& a, const PointSet& b);

/// Symmetric chamfer distance [3]: DirectedChamfer(a,b) +
/// DirectedChamfer(b,a).  Non-metric (fails the triangle inequality), cited
/// by the paper as another common non-metric measure.
double ChamferDistance(const PointSet& a, const PointSet& b);

}  // namespace qse

#endif  // QSE_DISTANCE_POINT_SET_H_
