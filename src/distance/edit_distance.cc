#include "src/distance/edit_distance.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace qse {

size_t EditDistance(const std::string& a, const std::string& b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t del = prev[j] + 1;
      size_t ins = curr[j - 1] + 1;
      curr[j] = std::min({sub, del, ins});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double WeightedEditDistance(const std::string& a, const std::string& b,
                            double insert_cost, double delete_cost,
                            double substitute_cost) {
  assert(insert_cost >= 0 && delete_cost >= 0 && substitute_cost >= 0);
  const size_t n = a.size(), m = b.size();
  std::vector<double> prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) {
    prev[j] = static_cast<double>(j) * insert_cost;
  }
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<double>(i) * delete_cost;
    for (size_t j = 1; j <= m; ++j) {
      double sub =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0.0 : substitute_cost);
      double del = prev[j] + delete_cost;
      double ins = curr[j - 1] + insert_cost;
      curr[j] = std::min({sub, del, ins});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

size_t BandedEditDistance(const std::string& a, const std::string& b,
                          size_t band) {
  const size_t n = a.size(), m = b.size();
  const size_t kBig = std::numeric_limits<size_t>::max() / 2;
  // Degenerate band: if the length difference exceeds the band there is no
  // in-band alignment; report the cheapest out-of-band completion bound.
  std::vector<size_t> prev(m + 1, kBig), curr(m + 1, kBig);
  for (size_t j = 0; j <= std::min(m, band); ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kBig);
    size_t jlo = i > band ? i - band : 0;
    size_t jhi = std::min(m, i + band);
    if (jlo == 0) curr[0] = i;
    for (size_t j = std::max<size_t>(1, jlo); j <= jhi; ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      size_t del = prev[j] == kBig ? kBig : prev[j] + 1;
      size_t ins = curr[j - 1] == kBig ? kBig : curr[j - 1] + 1;
      curr[j] = std::min({sub, del, ins});
    }
    std::swap(prev, curr);
  }
  return std::min(prev[m], std::max(n, m));
}

}  // namespace qse
