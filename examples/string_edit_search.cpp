// Approximate nearest-neighbor search over strings with edit distance —
// the "biological sequence" use case from the paper's introduction
// ("a common way of estimating the properties of a biological sequence
// ... is by identifying its closest matches in a large database of known
// sequences").
//
// The database is a synthetic family of DNA-like sequences: a set of
// ancestor sequences plus mutated descendants.  Edit distance is metric
// but expensive (O(len^2)); the embedding pipeline applies unchanged.
//
// Build: cmake --build build && ./build/examples/string_edit_search
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/distance/edit_distance.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/exact_knn.h"
#include "src/retrieval/filter_refine.h"
#include "src/util/random.h"

namespace {

std::string RandomDna(qse::Rng* rng, size_t len) {
  static const char kBases[] = "ACGT";
  std::string s;
  for (size_t i = 0; i < len; ++i) s += kBases[rng->Index(4)];
  return s;
}

std::string Mutate(qse::Rng* rng, std::string s, size_t edits) {
  static const char kBases[] = "ACGT";
  for (size_t e = 0; e < edits && !s.empty(); ++e) {
    size_t pos = rng->Index(s.size());
    switch (rng->Index(3)) {
      case 0:  // Substitution.
        s[pos] = kBases[rng->Index(4)];
        break;
      case 1:  // Deletion.
        s.erase(pos, 1);
        break;
      default:  // Insertion.
        s.insert(pos, 1, kBases[rng->Index(4)]);
        break;
    }
  }
  return s;
}

}  // namespace

int main() {
  using namespace qse;

  // --- Database: 24 ancestor sequences, ~33 descendants each.
  Rng rng(1234);
  const size_t kAncestors = 24, kDbSize = 800, kNumQueries = 40;
  std::vector<std::string> ancestors;
  for (size_t a = 0; a < kAncestors; ++a) {
    ancestors.push_back(RandomDna(&rng, 120));
  }
  std::vector<std::string> sequences;
  for (size_t i = 0; i < kDbSize + kNumQueries; ++i) {
    const std::string& base = ancestors[i % kAncestors];
    sequences.push_back(Mutate(&rng, base, 4 + rng.Index(10)));
  }
  ObjectOracle<std::string> oracle(
      std::move(sequences), [](const std::string& a, const std::string& b) {
        return static_cast<double>(EditDistance(a, b));
      });
  std::vector<size_t> db_ids(kDbSize);
  std::iota(db_ids.begin(), db_ids.end(), 0);

  // --- Train Se-QS on a database sample.
  BoostMapConfig config;
  config.sampling = TripleSampling::kSelective;
  config.num_triples = 4000;
  config.k1 = 5;
  config.boost.rounds = 32;
  config.boost.embeddings_per_round = 24;
  config.boost.query_sensitive = true;
  std::vector<size_t> sample(db_ids.begin(), db_ids.begin() + 150);
  auto artifacts = TrainBoostMap(oracle, sample, sample, config);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 artifacts.status().ToString().c_str());
    return 1;
  }
  std::printf("Se-QS over edit distance: %zu dims, %zu exact distances to "
              "embed a query\n\n",
              artifacts->model.dims(), artifacts->model.EmbeddingCost());

  QseEmbedderAdapter embedder(&artifacts->model);
  EmbeddedDatabase embedded = EmbedDatabase(embedder, oracle, db_ids);
  QuerySensitiveScorer scorer(&artifacts->model);
  RetrievalEngine retriever(&embedder, &scorer, &embedded, db_ids);

  size_t hit = 0, family_hit = 0, total_cost = 0;
  const size_t p = 40;
  for (size_t q = kDbSize; q < kDbSize + kNumQueries; ++q) {
    auto dx = [&](size_t id) { return oracle.Distance(q, id); };
    auto r_or = retriever.Retrieve({dx, RetrievalOptions(1, p)});
    if (!r_or.ok()) {
      std::fprintf(stderr, "retrieval failed: %s\n",
                   r_or.status().ToString().c_str());
      return 1;
    }
    RetrievalResponse r = std::move(r_or).value();
    total_cost += r.exact_distances;
    auto exact = ExactKnn(oracle, q, db_ids, 1);
    if (r.neighbors[0].index == exact[0].index) ++hit;
    // Family identification: does the match share the query's ancestor?
    if (r.neighbors[0].index % kAncestors == q % kAncestors) ++family_hit;
  }
  std::printf("true nearest neighbor found: %zu/%zu queries\n", hit,
              kNumQueries);
  std::printf("ancestor family identified:  %zu/%zu queries\n", family_hit,
              kNumQueries);
  std::printf("avg edit-distance evaluations per query: %zu (brute force: "
              "%zu) => ~%.1fx speed-up\n",
              total_cost / kNumQueries, kDbSize,
              static_cast<double>(kDbSize) /
                  (static_cast<double>(total_cost) / kNumQueries));
  return 0;
}
