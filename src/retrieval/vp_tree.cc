#include "src/retrieval/vp_tree.h"

#include <algorithm>

#include "src/util/logging.h"

namespace qse {

VpTree::VpTree(const DistanceOracle* oracle, std::vector<size_t> db_ids,
               size_t leaf_size, uint64_t seed)
    : oracle_(oracle),
      db_ids_(std::move(db_ids)),
      leaf_size_(leaf_size < 1 ? 1 : leaf_size) {
  QSE_CHECK(!db_ids_.empty());
  Rng rng(seed);
  std::vector<size_t> positions(db_ids_.size());
  for (size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  root_ = Build(std::move(positions), &rng);
}

std::unique_ptr<VpTree::Node> VpTree::Build(std::vector<size_t> positions,
                                            Rng* rng) {
  auto node = std::make_unique<Node>();
  if (positions.size() <= leaf_size_) {
    node->is_leaf = true;
    node->leaf_positions = std::move(positions);
    return node;
  }
  // Random vantage point (Yianilos suggests sampling for spread; random
  // choice keeps construction cost low and is standard practice).
  size_t vp_at = rng->Index(positions.size());
  std::swap(positions[vp_at], positions.back());
  node->vantage_position = positions.back();
  positions.pop_back();

  std::vector<ScoredIndex> scored(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    double d = oracle_->Distance(db_ids_[node->vantage_position],
                                 db_ids_[positions[i]]);
    ++build_evaluations_;
    scored[i] = {positions[i], d};
  }
  size_t mid = scored.size() / 2;
  std::nth_element(scored.begin(), scored.begin() + static_cast<long>(mid),
                   scored.end());
  node->radius = scored[mid].score;

  std::vector<size_t> inside, outside;
  for (const ScoredIndex& s : scored) {
    if (s.score < node->radius) {
      inside.push_back(s.index);
    } else {
      outside.push_back(s.index);
    }
  }
  // Degenerate split (all-equal distances): fall back to a leaf.
  if (inside.empty() || outside.empty()) {
    node->is_leaf = true;
    node->leaf_positions.push_back(node->vantage_position);
    for (size_t p : inside) node->leaf_positions.push_back(p);
    for (size_t p : outside) node->leaf_positions.push_back(p);
    return node;
  }
  node->inside = Build(std::move(inside), rng);
  node->outside = Build(std::move(outside), rng);
  return node;
}

namespace {

/// Inserts (position, distance) into the sorted top-k buffer.
void Consider(std::vector<ScoredIndex>* best, size_t k, size_t position,
              double distance) {
  ScoredIndex entry{position, distance};
  if (best->size() == k && !(entry < best->back())) return;
  auto it = std::lower_bound(best->begin(), best->end(), entry);
  best->insert(it, entry);
  if (best->size() > k) best->pop_back();
}

}  // namespace

void VpTree::SearchNode(const Node* node, const DxToDatabaseFn& dx, size_t k,
                        std::vector<ScoredIndex>* best,
                        size_t* evaluations) const {
  if (node->is_leaf) {
    for (size_t p : node->leaf_positions) {
      ++*evaluations;
      Consider(best, k, p, dx(db_ids_[p]));
    }
    return;
  }
  ++*evaluations;
  double dv = dx(db_ids_[node->vantage_position]);
  Consider(best, k, node->vantage_position, dv);

  // tau = current k-th best (infinite until the buffer fills).
  auto tau = [&]() {
    return best->size() == k ? best->back().score
                             : std::numeric_limits<double>::infinity();
  };
  // Visit the more promising side first, prune the other by the triangle
  // inequality: an object inside the ball can be no farther from q than
  // dv + radius, no closer than dv - radius (ONLY if DX is metric).
  const Node* first = dv < node->radius ? node->inside.get()
                                        : node->outside.get();
  const Node* second = dv < node->radius ? node->outside.get()
                                         : node->inside.get();
  SearchNode(first, dx, k, best, evaluations);
  bool second_is_outside = second == node->outside.get();
  if (second_is_outside) {
    if (dv + tau() >= node->radius) {
      SearchNode(second, dx, k, best, evaluations);
    }
  } else {
    if (dv - tau() <= node->radius) {
      SearchNode(second, dx, k, best, evaluations);
    }
  }
}

VpTree::Result VpTree::Search(const DxToDatabaseFn& dx, size_t k) const {
  QSE_CHECK(k >= 1);
  k = std::min(k, db_ids_.size());
  Result result;
  SearchNode(root_.get(), dx, k, &result.neighbors,
             &result.distance_evaluations);
  return result;
}

}  // namespace qse
