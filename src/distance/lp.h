#ifndef QSE_DISTANCE_LP_H_
#define QSE_DISTANCE_LP_H_

#include <cstddef>

#include "src/distance/distance.h"

namespace qse {

/// L1 (Manhattan) distance.  Requires equal dimensionality.
double L1Distance(const Vector& a, const Vector& b);

/// L2 (Euclidean) distance.
double L2Distance(const Vector& a, const Vector& b);

/// Squared Euclidean distance (avoids the sqrt; used in hot loops).
double SquaredL2Distance(const Vector& a, const Vector& b);

/// Span variants over raw contiguous buffers of n doubles — the kernels
/// the SoA filter scan is built on (src/retrieval/filter_scorer.cc).
/// Four-lane accumulation (see lp.cc); the Vector functions above
/// delegate here, so both spellings agree bit for bit.  Distinct names
/// (not overloads) so the Vector versions keep working as
/// DistanceFn<Vector> values.
double L1DistanceSpan(const double* a, const double* b, size_t n);
double SquaredL2DistanceSpan(const double* a, const double* b, size_t n);

/// L-infinity (Chebyshev) distance.
double LInfDistance(const Vector& a, const Vector& b);

/// General Minkowski Lp distance for p >= 1.
double LpDistance(const Vector& a, const Vector& b, double p);

}  // namespace qse

#endif  // QSE_DISTANCE_LP_H_
