#ifndef QSE_DATA_DISTANCE_CACHE_H_
#define QSE_DATA_DISTANCE_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace qse {

/// Memoizing decorator around a DistanceOracle with optional disk
/// persistence.
///
/// The paper's preprocessing (Sec. 7) computes up to |C|^2 + |C|*|Xtr|
/// exact distances; for expensive DX (shape context runs at ~15 distances
/// per second on the paper's hardware) recomputing them across bench
/// binaries would dominate runtime.  The cache treats DX as symmetric —
/// callers with asymmetric DX should not use it.
///
/// A fingerprint (dataset name + parameters) is stored in the cache file;
/// Load refuses to deserialize entries produced under a different
/// fingerprint, which protects benches from silently reusing distances of
/// a differently-parameterized dataset.
///
/// Distance() is thread-safe (a mutex guards the memo table) so the
/// parallel EmbedDatabase/evaluation paths can share one cache; for
/// expensive DX the lock is noise next to the distance itself.  The inner
/// oracle must itself be safe for concurrent const calls.
class CachingOracle : public DistanceOracle {
 public:
  CachingOracle(const DistanceOracle* inner, std::string fingerprint)
      : inner_(inner), fingerprint_(std::move(fingerprint)) {}

  size_t size() const override { return inner_->size(); }

  /// Returns the cached value when present, otherwise evaluates the inner
  /// oracle once and memoizes (under the symmetric key).
  double Distance(size_t i, size_t j) const override;

  /// Number of memoized pairs.
  size_t cached_pairs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

  /// Persists all memoized pairs to `path`.
  Status Save(const std::string& path) const;

  /// Loads previously saved pairs; fails with FailedPrecondition if the
  /// file's fingerprint does not match this oracle's.
  Status Load(const std::string& path);

 private:
  static uint64_t Key(size_t i, size_t j) {
    uint64_t lo = i < j ? i : j;
    uint64_t hi = i < j ? j : i;
    return (lo << 32) | hi;
  }

  const DistanceOracle* inner_;
  std::string fingerprint_;
  mutable std::mutex mu_;
  mutable std::unordered_map<uint64_t, double> cache_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace qse

#endif  // QSE_DATA_DISTANCE_CACHE_H_
