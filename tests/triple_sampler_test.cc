#include "src/core/triple_sampler.h"

#include <gtest/gtest.h>

#include "src/core/training_context.h"
#include "tests/test_util.h"

namespace qse {
namespace {

Matrix TrainMatrix(size_t n, uint64_t seed) {
  auto oracle = test::MakePlaneOracle(n, seed);
  TrainingContext ctx =
      TrainingContext::Build(oracle, {0}, test::Iota(n));
  return ctx.train_train_matrix();
}

TEST(NeighborOrderingTest, SortedByDistance) {
  Matrix dist = TrainMatrix(15, 1);
  auto order = NeighborOrdering(dist);
  ASSERT_EQ(order.size(), 15u);
  for (size_t i = 0; i < 15; ++i) {
    ASSERT_EQ(order[i].size(), 14u);
    for (size_t r = 1; r < order[i].size(); ++r) {
      EXPECT_LE(dist(i, order[i][r - 1]), dist(i, order[i][r]));
    }
    // Self never appears.
    for (uint32_t j : order[i]) EXPECT_NE(j, i);
  }
}

TEST(RandomTriplesTest, CountAndDistinctness) {
  Matrix dist = TrainMatrix(20, 2);
  Rng rng(3);
  auto triples = SampleRandomTriples(dist, 200, &rng);
  ASSERT_EQ(triples.size(), 200u);
  for (const Triple& t : triples) {
    EXPECT_NE(t.q, t.a);
    EXPECT_NE(t.q, t.b);
    EXPECT_NE(t.a, t.b);
    EXPECT_LT(t.q, 20u);
  }
}

TEST(RandomTriplesTest, LabelsAreConsistent) {
  Matrix dist = TrainMatrix(20, 4);
  Rng rng(5);
  auto triples = SampleRandomTriples(dist, 300, &rng);
  for (const Triple& t : triples) {
    EXPECT_EQ(t.y, 1);
    EXPECT_LT(dist(t.q, t.a), dist(t.q, t.b));
  }
}

TEST(RandomTriplesTest, DeterministicGivenRng) {
  Matrix dist = TrainMatrix(20, 6);
  Rng r1(7), r2(7);
  auto t1 = SampleRandomTriples(dist, 50, &r1);
  auto t2 = SampleRandomTriples(dist, 50, &r2);
  EXPECT_EQ(t1.size(), t2.size());
  for (size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i], t2[i]);
}

TEST(SelectiveTriplesTest, RespectsK1Structure) {
  // Sec. 6: a must be among q's k1 nearest neighbors in Xtr, b outside.
  Matrix dist = TrainMatrix(30, 8);
  auto order = NeighborOrdering(dist);
  Rng rng(9);
  const size_t k1 = 4;
  auto triples = SampleSelectiveTriples(dist, 400, k1, &rng);
  ASSERT_EQ(triples.size(), 400u);
  for (const Triple& t : triples) {
    // Rank of a (1-based) among q's neighbors must be <= k1.
    size_t rank_a = 0, rank_b = 0;
    for (size_t r = 0; r < order[t.q].size(); ++r) {
      if (order[t.q][r] == t.a) rank_a = r + 1;
      if (order[t.q][r] == t.b) rank_b = r + 1;
    }
    EXPECT_GE(rank_a, 1u);
    EXPECT_LE(rank_a, k1);
    EXPECT_GT(rank_b, k1);
  }
}

TEST(SelectiveTriplesTest, LabelsAlwaysPositive) {
  Matrix dist = TrainMatrix(25, 10);
  Rng rng(11);
  auto triples = SampleSelectiveTriples(dist, 200, 5, &rng);
  for (const Triple& t : triples) {
    EXPECT_EQ(t.y, 1);
    EXPECT_LT(dist(t.q, t.a), dist(t.q, t.b));
  }
}

TEST(SelectiveTriplesTest, NearPairsOverrepresentedVsRandom) {
  // The selective sampler should produce a's that are much nearer to q
  // than random sampling does — that is its entire purpose.
  Matrix dist = TrainMatrix(40, 12);
  Rng rng1(13), rng2(13);
  auto selective = SampleSelectiveTriples(dist, 500, 3, &rng1);
  auto random = SampleRandomTriples(dist, 500, &rng2);
  double sel_mean = 0.0, ran_mean = 0.0;
  for (const Triple& t : selective) sel_mean += dist(t.q, t.a);
  for (const Triple& t : random) ran_mean += dist(t.q, t.a);
  EXPECT_LT(sel_mean, 0.7 * ran_mean);
}

TEST(SelectiveTriplesTest, K1BoundaryValues) {
  Matrix dist = TrainMatrix(10, 14);
  Rng rng(15);
  // Smallest legal k1.
  auto t1 = SampleSelectiveTriples(dist, 50, 1, &rng);
  EXPECT_EQ(t1.size(), 50u);
  // Largest legal k1 = |Xtr| - 2 = 8.
  auto t2 = SampleSelectiveTriples(dist, 50, 8, &rng);
  EXPECT_EQ(t2.size(), 50u);
}

}  // namespace
}  // namespace qse
