#ifndef QSE_PERSIST_DURABILITY_H_
#define QSE_PERSIST_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/persist/snapshot.h"
#include "src/persist/wal.h"
#include "src/retrieval/retrieval_backend.h"
#include "src/util/status.h"
#include "src/util/statusor.h"

namespace qse {
namespace obs {
class Counter;
class Histogram;
}  // namespace obs

namespace persist {

/// Configuration of the durability subsystem.
struct DurabilityOptions {
  /// Directory holding the WAL ("wal.qse") and the current snapshot
  /// ("snapshot.qse").  Created if missing.
  std::string dir;
  /// WAL fsync policy; see FsyncPolicy.
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  /// N for FsyncPolicy::kEveryN.
  size_t fsync_every_n = 64;
  /// Auto-snapshot (compact the WAL) after this many logged records;
  /// 0 = snapshots only when the owner asks (WriteSnapshotNow).
  size_t snapshot_every_records = 0;
  /// Opaque embedding-model blob stored inside every snapshot this
  /// manager writes (e.g. the bytes of a FastMapModel::Save file).  The
  /// blob recovered from an existing snapshot is surfaced through
  /// RecoveryInfo so the owner can verify or reload the model.
  std::string model_blob;
  /// What to do with a corrupt WAL tail: true truncates the log to its
  /// last valid prefix (crash-consistent recovery — a torn tail is the
  /// expected shape of a kill); false refuses with kDataLoss (strict
  /// mode for storage where torn writes should be impossible).  A WAL
  /// whose HEADER is unreadable is kDataLoss under either setting.
  bool repair_wal = true;
};

/// What Open() found on disk.
struct RecoveryInfo {
  /// A snapshot was present and validated; its contents await
  /// InstallSnapshot.
  bool loaded_snapshot = false;
  /// The snapshot's WAL cut-point (0 without a snapshot): replay applies
  /// only records with seq greater than this.
  uint64_t snapshot_cut_seq = 0;
  /// Valid WAL records scanned (pre-filtering; Replay reports how many
  /// it actually applied).
  uint64_t wal_records = 0;
  /// Bytes of corrupt WAL tail dropped by repair (0 on a clean log).
  uint64_t repaired_bytes = 0;
  /// Model blob from the snapshot; empty without one.
  std::string model_blob;
};

/// Owner of one durability directory: scans and repairs the WAL, loads
/// the snapshot, replays the tail, then logs every subsequent mutation
/// and periodically compacts the log into a fresh snapshot.
///
/// Recovery sequencing (the owner drives it, because engine construction
/// is theirs):
///
///   1. Open(options)                    — scan WAL, read snapshot.
///   2. InstallSnapshot({db, ...})       — RestoreVersion into the dbs.
///   3. engine->RebuildIdIndex() /
///      sharded->RebuildAfterRestore()   — re-point the id indexes.
///   4. Replay(backend)                  — apply the WAL tail.
///
/// After step 4 the backend is bit-identical to the crashed process at
/// its last durable record, and the manager is ready to log.
///
/// Logging and snapshotting are NOT thread-safe; DurableBackend
/// serializes them under its mutation mutex.
class DurabilityManager {
 public:
  /// Opens (creating if needed) the durability directory, scans the WAL,
  /// repairs or rejects a corrupt tail per options.repair_wal, reads the
  /// snapshot, and positions the writer after the last valid record.
  static StatusOr<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options);

  /// What recovery found (valid immediately after Open).
  const RecoveryInfo& recovery() const { return recovery_; }

  /// Installs the recovered snapshot into `dbs` (shard order must match
  /// the order the snapshot was taken in; count must match).  No-op
  /// without a snapshot.  Quiescent: no readers, no mutators.
  Status InstallSnapshot(const std::vector<EmbeddedDatabase*>& dbs);

  /// Applies every WAL record with seq > snapshot cut through `backend`
  /// (InsertEmbedded / Remove), skipping duplicates (seq <= the last
  /// applied) and failing kDataLoss on a forward sequence gap or an
  /// application error — a log that contradicts the state it claims to
  /// reproduce is data loss, not something to paper over.  Returns the
  /// number of records applied.
  StatusOr<uint64_t> Replay(RetrievalBackend* backend);

  /// Logs one applied insert (the EMBEDDED row) / remove.  Call order
  /// must equal apply order — DurableBackend guarantees this by holding
  /// its mutation mutex across apply+log.
  Status LogInsert(uint64_t db_id, const std::vector<double>& embedded_row);
  Status LogRemove(uint64_t db_id);

  /// Forces the WAL to disk regardless of policy (checkpoint points).
  Status SyncWal();

  /// Sequence number of the last logged (or compacted-away) record.
  uint64_t last_seq() const { return wal_->last_seq(); }

  /// True once records-since-last-snapshot has reached
  /// options.snapshot_every_records (and that option is non-zero).
  bool WantsSnapshot() const;

  /// Takes a compacted snapshot of `views` at cut point `cut_seq` (the
  /// seq of the last record `views` reflect — with the mutation mutex
  /// held that is last_seq()), publishes it atomically, then truncates
  /// the WAL to base_seq = cut_seq.  A crash between publish and
  /// truncate is safe: replay skips records at or below the cut.
  Status WriteSnapshot(uint64_t cut_seq,
                       const std::vector<EmbeddedDatabase::View>& views);

  const DurabilityOptions& options() const { return options_; }
  std::string wal_path() const { return options_.dir + "/wal.qse"; }
  std::string snapshot_path() const { return options_.dir + "/snapshot.qse"; }

 private:
  explicit DurabilityManager(DurabilityOptions options);

  DurabilityOptions options_;
  RecoveryInfo recovery_;
  /// Records recovered by Open, consumed by Replay.
  std::vector<WalRecord> pending_replay_;
  SnapshotContents pending_snapshot_;
  std::unique_ptr<WalWriter> wal_;
  /// Records logged since the last snapshot (or since Open).
  uint64_t records_since_snapshot_ = 0;

  obs::Counter* replay_records_total_;
  obs::Counter* snapshots_total_;
  obs::Counter* wal_repairs_total_;
  obs::Histogram* snapshot_duration_ns_;
};

}  // namespace persist
}  // namespace qse

#endif  // QSE_PERSIST_DURABILITY_H_
