#include "src/embedding/fastmap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <unordered_map>

#include "src/util/logging.h"
#include "src/util/serialize.h"

namespace qse {

namespace {

/// Residual squared distance at the current level given the raw distance
/// and the two objects' coordinates so far.
double ResidualSquared(double raw, const Vector& xa, const Vector& xb,
                       size_t levels) {
  double r = raw * raw;
  for (size_t l = 0; l < levels; ++l) {
    double d = xa[l] - xb[l];
    r -= d * d;
  }
  return r > 0.0 ? r : 0.0;
}

}  // namespace

FastMapModel BuildFastMap(const DistanceOracle& oracle,
                          const std::vector<size_t>& sample_ids,
                          const FastMapOptions& options) {
  QSE_CHECK_MSG(sample_ids.size() >= 2, "FastMap needs at least 2 objects");
  const size_t n = sample_ids.size();
  Rng rng(options.seed);

  // proj[i] = coordinates assigned so far to sample object i.
  std::vector<Vector> proj(n);
  std::vector<FastMapModel::Level> levels;
  levels.reserve(options.dims);

  // Raw-distance row cache for the current pivots.
  std::vector<double> dist_to_a(n), dist_to_b(n);

  for (size_t level = 0; level < options.dims; ++level) {
    // Choose-distant-objects heuristic [12]: start from a random object,
    // alternately jump to the farthest object in the residual space.
    size_t b = rng.Index(n);
    size_t a = b;
    std::vector<double> dist_row(n);
    for (size_t iter = 0; iter < options.pivot_iterations; ++iter) {
      for (size_t i = 0; i < n; ++i) {
        dist_row[i] = i == b ? 0.0
                             : oracle.Distance(sample_ids[b], sample_ids[i]);
      }
      size_t farthest = b;
      double best = -1.0;
      for (size_t i = 0; i < n; ++i) {
        double r = ResidualSquared(dist_row[i], proj[b], proj[i], level);
        if (r > best) {
          best = r;
          farthest = i;
        }
      }
      a = b;
      b = farthest;
      if (a == b) break;
    }
    if (a == b) break;  // Degenerate: all residual distances are zero.

    for (size_t i = 0; i < n; ++i) {
      dist_to_a[i] =
          i == a ? 0.0 : oracle.Distance(sample_ids[a], sample_ids[i]);
      dist_to_b[i] =
          i == b ? 0.0 : oracle.Distance(sample_ids[b], sample_ids[i]);
    }
    double dab2 = ResidualSquared(dist_to_a[b], proj[a], proj[b], level);
    double dab = std::sqrt(dab2);
    if (dab <= 1e-12) break;  // No spread left to project on.

    FastMapModel::Level lv;
    lv.pivot_a = static_cast<uint32_t>(sample_ids[a]);
    lv.pivot_b = static_cast<uint32_t>(sample_ids[b]);
    lv.dist_ab = dab;
    lv.coords_a = proj[a];
    lv.coords_b = proj[b];

    for (size_t i = 0; i < n; ++i) {
      double dia2 = ResidualSquared(dist_to_a[i], proj[a], proj[i], level);
      double dib2 = ResidualSquared(dist_to_b[i], proj[b], proj[i], level);
      double x = (dia2 + dab2 - dib2) / (2.0 * dab);
      proj[i].push_back(x);
    }
    levels.push_back(std::move(lv));
  }
  return FastMapModel(std::move(levels));
}

Vector FastMapModel::Embed(const DxToDatabaseFn& dx,
                           size_t* num_exact) const {
  std::unordered_map<uint32_t, double> raw;  // Dedup raw pivot distances.
  auto lookup = [&](uint32_t db_id) {
    auto it = raw.find(db_id);
    if (it != raw.end()) return it->second;
    double d = dx(db_id);
    raw.emplace(db_id, d);
    return d;
  };

  Vector coords;
  coords.reserve(levels_.size());
  for (const Level& lv : levels_) {
    size_t l = coords.size();
    double da = lookup(lv.pivot_a);
    double db = lookup(lv.pivot_b);
    double da2 = ResidualSquared(da, coords, lv.coords_a, l);
    double db2 = ResidualSquared(db, coords, lv.coords_b, l);
    double dab2 = lv.dist_ab * lv.dist_ab;
    coords.push_back((da2 + dab2 - db2) / (2.0 * lv.dist_ab));
  }
  if (num_exact != nullptr) *num_exact = raw.size();
  return coords;
}

size_t FastMapModel::EmbeddingCost() const {
  std::unordered_map<uint32_t, bool> seen;
  for (const Level& lv : levels_) {
    seen.emplace(lv.pivot_a, true);
    seen.emplace(lv.pivot_b, true);
  }
  return seen.size();
}

FastMapModel FastMapModel::Prefix(size_t d) const {
  size_t take = d < levels_.size() ? d : levels_.size();
  std::vector<Level> prefix(levels_.begin(),
                            levels_.begin() + static_cast<long>(take));
  // Truncate the stored pivot coordinates to the prefix depth (they are
  // only ever read up to the level index, so this is cosmetic but keeps
  // the invariant coords_*.size() == level index).
  return FastMapModel(std::move(prefix));
}

namespace {
constexpr uint32_t kFastMapMagic = 0x51464D31;  // "QFM1"
}  // namespace

Status FastMapModel::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  BinaryWriter w(&out);
  w.WriteU32(kFastMapMagic);
  w.WriteU64(levels_.size());
  for (const Level& lv : levels_) {
    w.WriteU32(lv.pivot_a);
    w.WriteU32(lv.pivot_b);
    w.WriteDouble(lv.dist_ab);
    w.WriteDoubleVec(lv.coords_a);
    w.WriteDoubleVec(lv.coords_b);
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<FastMapModel> FastMapModel::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("model file not found: " + path);
  BinaryReader r(&in);
  uint32_t magic = 0;
  QSE_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kFastMapMagic) {
    return Status::IOError("bad magic in FastMap model file: " + path);
  }
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(r.ReadU64(&n));
  if (n > (1ull << 20)) return Status::IOError("level count implausible");
  std::vector<Level> levels(n);
  for (uint64_t i = 0; i < n; ++i) {
    QSE_RETURN_IF_ERROR(r.ReadU32(&levels[i].pivot_a));
    QSE_RETURN_IF_ERROR(r.ReadU32(&levels[i].pivot_b));
    QSE_RETURN_IF_ERROR(r.ReadDouble(&levels[i].dist_ab));
    QSE_RETURN_IF_ERROR(r.ReadDoubleVec(&levels[i].coords_a));
    QSE_RETURN_IF_ERROR(r.ReadDoubleVec(&levels[i].coords_b));
  }
  return FastMapModel(std::move(levels));
}

}  // namespace qse
