// Tests of the top-k selection utilities, centered on MergeSortedTopK —
// the gather half of scatter/gather retrieval must keep exactly the same
// entries, in the same (score, index) order, as selecting over the
// concatenation of its inputs.
#include "src/util/top_k.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace qse {
namespace {

std::vector<ScoredIndex> Sorted(std::vector<ScoredIndex> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Reference: concatenate every list, sort, truncate to k.
std::vector<ScoredIndex> MergeByConcat(
    const std::vector<std::vector<ScoredIndex>>& lists, size_t k) {
  std::vector<ScoredIndex> all;
  for (const auto& list : lists) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(MergeSortedTopKTest, MergesTwoListsInOrder) {
  std::vector<std::vector<ScoredIndex>> lists = {
      {{0, 0.1}, {2, 0.5}, {4, 0.9}},
      {{1, 0.2}, {3, 0.6}},
  };
  std::vector<ScoredIndex> merged = MergeSortedTopK(lists, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0], (ScoredIndex{0, 0.1}));
  EXPECT_EQ(merged[1], (ScoredIndex{1, 0.2}));
  EXPECT_EQ(merged[2], (ScoredIndex{2, 0.5}));
  EXPECT_EQ(merged[3], (ScoredIndex{3, 0.6}));
}

TEST(MergeSortedTopKTest, KClampedToTotalEntries) {
  std::vector<std::vector<ScoredIndex>> lists = {{{0, 1.0}}, {{1, 2.0}}};
  EXPECT_EQ(MergeSortedTopK(lists, 100).size(), 2u);
  EXPECT_EQ(MergeSortedTopK(lists, 0).size(), 0u);
}

TEST(MergeSortedTopKTest, IgnoresEmptyLists) {
  std::vector<std::vector<ScoredIndex>> lists = {
      {}, {{7, 0.5}}, {}, {{3, 0.25}}, {}};
  std::vector<ScoredIndex> merged = MergeSortedTopK(lists, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].index, 3u);
  EXPECT_EQ(merged[1].index, 7u);
  EXPECT_TRUE(MergeSortedTopK({}, 5).empty());
  EXPECT_TRUE(MergeSortedTopK({{}, {}}, 5).empty());
}

TEST(MergeSortedTopKTest, TiedScoresOrderedByIndexAcrossLists) {
  // Equal scores everywhere: the merge must fall back to index order,
  // exactly like SmallestK's (score, index) tie-breaking.
  std::vector<std::vector<ScoredIndex>> lists = {
      {{1, 1.0}, {4, 1.0}},
      {{0, 1.0}, {2, 1.0}, {5, 1.0}},
      {{3, 1.0}},
  };
  std::vector<ScoredIndex> merged = MergeSortedTopK(lists, 4);
  ASSERT_EQ(merged.size(), 4u);
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].index, i);
  }
}

TEST(MergeSortedTopKTest, MatchesConcatenationReferenceRandomized) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    size_t num_lists = 1 + rng.Index(8);
    std::vector<std::vector<ScoredIndex>> lists(num_lists);
    size_t next_index = 0;
    for (auto& list : lists) {
      size_t len = rng.Index(20);
      for (size_t i = 0; i < len; ++i) {
        // Coarse scores force frequent cross-list ties.
        double score = static_cast<double>(rng.Index(5));
        list.push_back({next_index++, score});
      }
      list = Sorted(std::move(list));
    }
    for (size_t k : {0u, 1u, 3u, 10u, 1000u}) {
      EXPECT_EQ(MergeSortedTopK(lists, k), MergeByConcat(lists, k))
          << "trial=" << trial << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace qse
