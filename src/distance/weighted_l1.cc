#include "src/distance/weighted_l1.h"

#include <cassert>
#include <cmath>

namespace qse {

double WeightedL1Distance(const Vector& a, const Vector& b, const Vector& w) {
  assert(a.size() == b.size());
  assert(a.size() == w.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += w[i] * std::fabs(a[i] - b[i]);
  }
  return sum;
}

}  // namespace qse
