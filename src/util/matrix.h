#ifndef QSE_UTIL_MATRIX_H_
#define QSE_UTIL_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace qse {

/// Minimal dense row-major matrix of doubles.  Used for assignment-problem
/// cost matrices and for the precomputed distance matrices that drive
/// BoostMap training (Sec. 5.2: "a matrix of distances between any two
/// objects in C, and ... from each c in C to each qi, ai and bi").
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() long).
  const double* Row(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  double* Row(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace qse

#endif  // QSE_UTIL_MATRIX_H_
