// Multi-node serving: a 2-shard x 2-replica cluster over TCP.
//
// The sharded engine composes over any RetrievalBackend, and
// RemoteRetrievalBackend is a backend whose filter scan happens in
// another process: the embedded query ships over a length-prefixed
// binary protocol, the server scans its shard and returns the sorted
// top-p (db id, filter score) list, and the caller merges and refines
// exactly as it would over local shards — bit-identical answers to the
// in-process engine at equal p.
//
// Each shard is served by N replicas of the same data behind a
// HedgedReplicaBackend: reads go to one replica round-robin and are
// raced against a backup when the first is slow (the hedge delay is the
// replica's own observed p95 latency), and a replica that dies is
// failed over transparently.
//
// This example wires the full topology inside one process — four
// RetrievalServers on ephemeral ports with real sockets between them —
// so it runs anywhere without fork/exec.  The multi-process version of
// the same topology (child servers spawned via fork/exec, replica
// killed with SIGKILL mid-run) is the SL_Remote scenario in
// bench/server_load.cc.
//
// Build: cmake --build build && ./build/examples/remote_serving
#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "src/data/dataset.h"
#include "src/distance/lp.h"
#include "src/embedding/fastmap.h"
#include "src/net/hedged_backend.h"
#include "src/net/remote_backend.h"
#include "src/net/retrieval_server.h"
#include "src/obs/metric_registry.h"
#include "src/retrieval/filter_refine.h"
#include "src/retrieval/retrieval_engine.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/random.h"

int main() {
  using namespace qse;
  const size_t n = 20000, num_queries = 64, k = 3, p = 200;
  const size_t kShards = 2, kReplicas = 2;

  // --- Data: random points in the unit square, embedded with FastMap.
  Rng rng(7);
  std::vector<Vector> points;
  for (size_t i = 0; i < n + num_queries; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  ObjectOracle<Vector> oracle(std::move(points), L2Distance);
  std::vector<size_t> db_ids(n);
  std::iota(db_ids.begin(), db_ids.end(), 0);
  FastMapOptions fm;
  fm.dims = 8;
  FastMapModel model = BuildFastMap(oracle, db_ids, fm);
  L2Scorer scorer;

  // --- Partition by id hash.  HashShardOf is a free function so any
  // process sharding these ids — here, the "servers" — agrees with the
  // router without coordination.
  std::vector<std::vector<size_t>> shard_ids(kShards);
  for (size_t id : db_ids) shard_ids[HashShardOf(id, kShards)].push_back(id);

  // --- Servers: per shard, kReplicas engines over the same shard data,
  // each behind its own RetrievalServer on an ephemeral port.  Replica 1
  // of shard 0 is degraded (every 8th scan sleeps 50 ms) so hedging has
  // something to race.
  std::vector<std::unique_ptr<EmbeddedDatabase>> dbs;
  std::vector<std::unique_ptr<RetrievalEngine>> engines;
  std::vector<std::unique_ptr<net::RetrievalServer>> servers;
  std::vector<std::shared_ptr<RetrievalBackend>> shards;
  for (size_t s = 0; s < kShards; ++s) {
    std::vector<std::shared_ptr<RetrievalBackend>> replicas;
    for (size_t r = 0; r < kReplicas; ++r) {
      dbs.push_back(std::make_unique<EmbeddedDatabase>(
          EmbedDatabase(model, oracle, shard_ids[s])));
      engines.push_back(std::make_unique<RetrievalEngine>(
          &model, &scorer, dbs.back().get(), shard_ids[s]));
      net::RetrievalServerOptions options;
      if (s == 0 && r == 1) {
        options.debug_delay_every_n = 8;
        options.debug_delay = std::chrono::milliseconds(50);
      }
      servers.push_back(std::make_unique<net::RetrievalServer>(
          engines.back().get(), options));
      Status st = servers.back()->Start(0);  // 0: pick an ephemeral port.
      if (!st.ok()) {
        std::fprintf(stderr, "server start: %s\n", st.ToString().c_str());
        return 1;
      }
      // Client stub: embeds queries locally, ships them over TCP.
      replicas.push_back(std::make_shared<net::RemoteRetrievalBackend>(
          &model, "127.0.0.1", servers.back()->port()));
      std::printf("shard %zu replica %zu: 127.0.0.1:%u (%zu rows)%s\n", s, r,
                  servers.back()->port(), shard_ids[s].size(),
                  s == 0 && r == 1 ? "  [degraded]" : "");
    }
    shards.push_back(std::make_shared<net::HedgedReplicaBackend>(
        replicas, net::HedgedBackendOptions{}));
  }

  // --- The router: the same sharded engine used for in-process
  // serving, composed over remote shards instead of local ones.
  ShardedRetrievalEngine cluster(&model, shards);

  // --- Parity: the cluster answers bit-identically to an in-process
  // sharded engine over the same data at equal p.
  EmbeddedDatabase full = EmbedDatabase(model, oracle, db_ids);
  ShardedEngineOptions ref_options;
  ref_options.num_shards = kShards;
  ShardedRetrievalEngine reference(&model, &scorer, full, db_ids, ref_options);

  auto& registry = obs::MetricRegistry::Global();
  uint64_t fired0 = registry.GetCounter("qse_hedged_fired_total")->Value();
  uint64_t wins0 = registry.GetCounter("qse_hedged_wins_total")->Value();

  size_t identical = 0;
  RetrievalOptions options(k, p);
  for (size_t q = n; q < n + num_queries; ++q) {
    DxToDatabaseFn dx = [&oracle, q](size_t id) {
      return oracle.Distance(q, id);
    };
    auto want = reference.Retrieve({dx, options});
    auto got = cluster.Retrieve({dx, options});
    if (!want.ok() || !got.ok()) {
      std::fprintf(stderr, "retrieve failed\n");
      return 1;
    }
    bool same = want->neighbors.size() == got->neighbors.size();
    for (size_t i = 0; same && i < want->neighbors.size(); ++i) {
      same = want->neighbors[i].index == got->neighbors[i].index &&
             want->neighbors[i].score == got->neighbors[i].score;
    }
    identical += same;
  }
  std::printf("parity: %zu/%zu queries bit-identical to the in-process "
              "sharded engine\n",
              identical, num_queries);
  std::printf("hedging: %llu backup attempts fired, %llu won their race\n",
              static_cast<unsigned long long>(
                  registry.GetCounter("qse_hedged_fired_total")->Value() -
                  fired0),
              static_cast<unsigned long long>(
                  registry.GetCounter("qse_hedged_wins_total")->Value() -
                  wins0));

  // --- Kill a replica: stop shard 0's degraded replica outright.  The
  // hedged backend fails over to the survivor, so every request still
  // succeeds.
  servers[1]->Stop();
  size_t succeeded = 0;
  for (size_t q = n; q < n + num_queries; ++q) {
    DxToDatabaseFn dx = [&oracle, q](size_t id) {
      return oracle.Distance(q, id);
    };
    succeeded += cluster.Retrieve({dx, options}).ok();
  }
  std::printf("after killing shard 0 replica 1: %zu/%zu requests "
              "succeeded\n",
              succeeded, num_queries);
  return 0;
}
