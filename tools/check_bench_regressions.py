#!/usr/bin/env python3
"""Threshold check over the benchmark JSON artifacts.

Reads one or more benchmark JSON files (google-benchmark output and the
compatible files bench/harness's WriteBenchJson emits, e.g. server_load)
and enforces relative performance invariants between benchmarks of the
same run.  Comparing within one run sidesteps cross-machine noise: CI
hosts vary wildly run to run, but "the SoA scan must not be slower than
the AoS scan it replaced" holds on any host.  The raw JSON is uploaded
as a CI artifact so absolute history is still inspectable.

Rules gate on a metric: "real_time" (the mean) by default, or a tail
percentile ("p50"/"p95"/"p99") when the benchmark emits one — the async
serving rules gate p99 so a batching change cannot buy mean throughput
with a tail-latency blowup.

Usage: check_bench_regressions.py <benchmark_json> [more_json...] [--strict]

Exit code 1 when any rule fails.  --strict additionally fails when a
rule's benchmarks are missing from the JSON (CI uses it; local runs of a
benchmark subset stay usable without it).
"""

import argparse
import json
import os
import sys


def _cpu_flags():
    """The host's CPUID feature flags (Linux); empty elsewhere."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("flags"):
                    return set(line.split(":", 1)[1].split())
    except OSError:
        pass
    return set()


def filter8_speedup_bound():
    """Max allowed time ratio, int8 filter scan vs the seed scalar
    float64 scan (n=1M, d=256, p=500).

    The SIMD-dispatch acceptance gate: >= 3x single-thread filter-scan
    throughput on AVX-512 hosts (measured ~3.7x).  AVX2 hosts run
    half-width vectors, so demand 2x; hosts with neither dispatch the
    scalar tier, where int8's only edge is 8x smaller memory traffic —
    demand "not slower" plus noise."""
    flags = _cpu_flags()
    if "avx512f" in flags:
        return 1.0 / 3.0
    if "avx2" in flags:
        return 0.50
    return 1.05


def filter32_speedup_bound():
    """Max allowed time ratio, float32 filter scan vs the seed scalar
    float64 scan.  The float32 path is DRAM-bandwidth bound at half the
    traffic of float64; on any SIMD tier it must clear 1.8x (measured
    ~2.3x), and scalar hosts must at least not lose."""
    flags = _cpu_flags()
    if "avx512f" in flags or "avx2" in flags:
        return 0.55
    return 1.05


def sharded_speedup_bound():
    """Max allowed time ratio for the sharded S=8 single-query config.

    On >= 4 cores (every GitHub-hosted runner) demand a real speedup:
    ratio <= 0.80, i.e. >= 1.25x — a lax regression guard under the
    1.5x the scatter typically measures there, so a throttled runner
    does not flap the build.  On 2-3 cores only demand "not slower".
    On one core the scatter runs serially and pays the weaker per-shard
    early-abandon threshold; allow its measured ~1.2x overhead.
    """
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 0.80
    if cores >= 2:
        return 1.00
    return 1.30


def micro_batching_bound():
    """Max allowed mean-latency ratio, adaptive micro-batching vs
    one-request-per-call serving (closed loop, same worker layout).

    Batching parallelizes each dispatched batch across cores via
    RetrieveBatch, so with >= 4 cores it must be a real win (the measured
    gap is ~Cx; demand a lax 1.2x).  On 2-3 cores demand "not slower";
    on one core batching only amortizes dispatch overhead, so allow
    noise-level slack.
    """
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 0.85
    if cores >= 2:
        return 1.05
    return 1.15


def mutation_tail_bound():
    """Max allowed p99 ratio, closed-loop serving with a background
    Insert/Remove stream vs the same configuration mutation-free.

    Epoch-based concurrent mutation never blocks readers (they keep
    scanning their pinned snapshot), but interior removals copy-on-write
    the database version, so the mutating run pays memcpy bandwidth and
    allocator churn.  The tail must stay the same order of magnitude:
    p99 is the noisiest statistic and CI hosts vary, so the bound is a
    blowup guard, not a parity assertion."""
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 1.80
    if cores >= 2:
        return 2.20
    return 2.60


def trace_sampling_tail_bound():
    """Max allowed p99 ratio, the adaptive closed loop with 1-in-64
    trace sampling vs the identical untraced configuration (same run,
    same binary).

    An un-sampled request pays one null-check branch per span site; a
    sampled one adds ~15 clock reads and mutex-guarded span pushes to a
    multi-hundred-microsecond request.  Neither should be visible above
    p99 noise, which scales with how contended the host is."""
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 1.05
    if cores >= 2:
        return 1.15
    return 1.30


def tracing_overhead_bound():
    """Max allowed p99 ratio between the instrumented build and a
    -DQSE_DISABLE_TRACING build of the same configuration (the
    --overhead-pair mode, two separate binaries).

    The observability acceptance budget: with tracing compiled in but
    requests un-sampled, the hot path differs by dead branches only, so
    on a quiet multi-core host the tails must agree within 2%.  Smaller
    hosts time-share the serving threads and p99 noise swamps a 2%
    budget; loosen rather than flap."""
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 1.02
    if cores >= 2:
        return 1.15
    return 1.30


def audit_sampling_tail_bound():
    """Max allowed p99 ratio, the adaptive closed loop with 1-in-16
    quality-audit sampling vs the identical audit-free configuration.

    The hot path pays one relaxed fetch_add per response plus, on
    sampled requests, moving a snapshot pin and k neighbor ids into the
    audit queue.  The brute-force re-scans themselves run on the single
    background worker, which time-shares a core with the serving
    threads — cheap on a multi-core host, visible on small ones."""
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 1.50
    if cores >= 2:
        return 2.00
    return 2.50


def remote_overhead_bound():
    """Max allowed p99 ratio, the hedged multi-process remote cluster vs
    in-process direct sharded serving.

    Remote serving pays two loopback RPCs (framing, serialization, one
    kernel round trip each) plus the hedge-delay waits its degraded
    replica forces, on top of the same scan the in-process engine runs —
    a constant-factor tax, not a scaling change.  This is a blowup
    guard: it catches a hedging or transport regression that turns
    milliseconds into hundreds, while staying insensitive to how
    contended the host is (smaller hosts time-share four extra server
    processes, so the tax grows as cores shrink)."""
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 8.0
    if cores >= 2:
        return 12.0
    return 20.0


def wal_tail_bound():
    """Max allowed p99 ratio, the closed-loop-with-mutation workload
    over the DurableBackend (WAL on, fsync every 64, auto-snapshots)
    vs the identical workload over the bare engine.

    Queries never touch the WAL (retrievals pass through the decorator
    untouched), so the tail cost comes only from mutations holding the
    log mutex across apply+append and from the occasional snapshot
    stalling the mutator — both invisible to readers on their pinned
    epochs.  The bound is a blowup guard sized to how contended the
    host is, not a parity assertion."""
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 2.0
    if cores >= 2:
        return 2.5
    return 3.0


def micro_batching_tail_bound():
    """Max allowed p99 ratio for the same pair.  Under closed-loop load,
    coalescing strictly reduces queueing, so the tail must not regress
    either — but p99 is the noisiest statistic, so every tier gets extra
    headroom over the mean bound."""
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 1.00
    if cores >= 2:
        return 1.20
    return 1.35


# (numerator benchmark, denominator benchmark, max allowed ratio, label,
#  metric).  Ratios are metric(numerator) / metric(denominator); a rule
# fails when the ratio exceeds the bound.  The bound may be a callable
# (resolved at check time, e.g. to adapt to the host's core count).
# Metric "real_time" is the google-benchmark mean; "p99" gates tail
# latency and only applies to benchmarks that emit percentiles.
RULES = [
    # The flat SoA layout exists to beat the AoS scan it replaced; allow
    # 10% noise headroom.
    (
        "BM_FilterScanWeightedL1_SoA/100000/256",
        "BM_FilterScanWeightedL1_AoS/100000/256",
        1.10,
        "SoA filter scan vs AoS baseline (n=100k, d=256)",
        "real_time",
    ),
    # Early abandon prunes work; it must never lose to the full scan by
    # more than noise.
    (
        "BM_ScoreTopP_EarlyAbandon/100000/256/500",
        "BM_ScoreTopP_FullScan/100000/256/500",
        1.10,
        "early-abandon top-p vs full scan + select (n=100k, d=256)",
        "real_time",
    ),
    # One shard through the scatter/gather path must stay within 15% of
    # the monolithic engine: the merge + translation overhead is bounded.
    (
        "BM_RetrieveShardedSingleQuery/100000/256/1/real_time",
        "BM_RetrieveMonolithicSingleQuery/100000/256/real_time",
        1.15,
        "sharded S=1 overhead vs monolithic single query",
        "real_time",
    ),
    # 8 shards must make ONE query faster, not slower — but the speedup
    # comes from scattering the scan across cores, so the enforceable
    # bound depends on the host.  sharded_speedup_bound() picks it.
    (
        "BM_RetrieveShardedSingleQuery/100000/256/8/real_time",
        "BM_RetrieveMonolithicSingleQuery/100000/256/real_time",
        sharded_speedup_bound,
        "sharded S=8 single-query speedup vs monolithic",
        "real_time",
    ),
    # The async serving acceptance gate: adaptive micro-batching must
    # sustain higher closed-loop throughput (= lower mean latency at
    # equal concurrency) than one-request-per-call serving...
    (
        "SL_Closed/mono/async_adaptive",
        "SL_Closed/mono/async_b1",
        micro_batching_bound,
        "adaptive micro-batching vs one-request-per-call (mean)",
        "real_time",
    ),
    # ...without trading the tail away for it.
    (
        "SL_Closed/mono/async_adaptive",
        "SL_Closed/mono/async_b1",
        micro_batching_tail_bound,
        "adaptive micro-batching vs one-request-per-call (p99 tail)",
        "p99",
    ),
    # Observability: the adaptive closed loop with 1-in-64 trace
    # sampling vs the identical untraced configuration — sampling must
    # not buy visibility with a tail blowup.
    (
        "SL_Closed/mono/async_traced",
        "SL_Closed/mono/async_adaptive",
        trace_sampling_tail_bound,
        "trace sampling (1/64) vs untraced adaptive loop (p99 tail)",
        "p99",
    ),
    # Concurrent mutation: a background Insert/Remove stream through the
    # server (epoch/RCU path) must not blow the closed-loop query tail
    # relative to the identical mutation-free configuration.
    (
        "SL_Mutate/mono/async_adaptive",
        "SL_Closed/mono/async_adaptive",
        mutation_tail_bound,
        "background mutation vs mutation-free closed loop (p99 tail)",
        "p99",
    ),
    # Strict-priority admission: under the saturating mixed-priority
    # burst, completed high-lane requests must see a clearly lower p99
    # sojourn than the low lane they preempt.  Queueing-order driven, so
    # the bound holds on any core count.
    (
        "SL_Lanes/mono/high",
        "SL_Lanes/mono/low",
        0.90,
        "priority lanes: high-lane p99 under saturation vs low lane",
        "p99",
    ),
    # Quality auditing: sampling 1-in-16 responses into background
    # exact-kNN audits must not buy drift visibility with a serving-tail
    # blowup.
    (
        "SL_Drift/mono/control",
        "SL_Closed/mono/async_adaptive",
        audit_sampling_tail_bound,
        "quality audits (1/16) vs audit-free adaptive loop (p99 tail)",
        "p99",
    ),
    # The hedged-read acceptance gate: over the degraded multi-process
    # cluster (one replica injects a 40ms delay on every 32nd scan),
    # hedging must measurably cut the p99 that the no-hedging arm eats
    # in full.  The injected delay dwarfs host noise on any core count,
    # so the bound is flat.
    (
        "SL_Remote/cluster/hedged",
        "SL_Remote/cluster/nohedge",
        0.90,
        "hedged reads vs no-hedging over the degraded cluster (p99 tail)",
        "p99",
    ),
    # Crossing a process boundary is a constant-factor tax, not a
    # blowup: the remote cluster's tail must stay within a bounded
    # multiple of in-process sharded serving.
    (
        "SL_Remote/cluster/hedged",
        "SL_Closed/sharded/direct",
        remote_overhead_bound,
        "remote hedged cluster vs in-process sharded serving (p99 tail)",
        "p99",
    ),
    # Durability: write-ahead logging must price mutations, not the
    # serving tail — WAL-on p99 stays within a bounded multiple of the
    # identical WAL-off run.
    (
        "SL_Recover/mono/wal_on",
        "SL_Recover/mono/wal_off",
        wal_tail_bound,
        "WAL-on mutating closed loop vs WAL-off (p99 tail)",
        "p99",
    ),
    # Runtime dispatch on the exact path must never lose to the seed
    # scalar scan it replaced (same math, same bits, wider registers).
    (
        "BM_FilterScanPrecision_Exact64",
        "BM_FilterScanPrecision_SeedScalar",
        1.10,
        "dispatched exact64 scan vs seed scalar scan (n=1M, d=256)",
        "real_time",
    ),
    # The mixed-precision acceptance gates (host-tier adaptive).
    (
        "BM_FilterScanPrecision_Filter32",
        "BM_FilterScanPrecision_SeedScalar",
        filter32_speedup_bound,
        "float32 filter scan speedup vs seed scalar (n=1M, d=256)",
        "real_time",
    ),
    (
        "BM_FilterScanPrecision_Filter8",
        "BM_FilterScanPrecision_SeedScalar",
        filter8_speedup_bound,
        "int8 filter scan speedup vs seed scalar (n=1M, d=256)",
        "real_time",
    ),
]

# (benchmark, counter, min value, label).  google-benchmark user
# counters (e.g. the recall_at_k counters the precision scans emit)
# appear as top-level fields of a benchmark entry; a floor fails when
# the value drops below the minimum.  Recall here is deterministic —
# the reduced kernels are bit-identical across ISA tiers and the
# widened abandon threshold is rounding-safe — so the floors are tight
# (both modes measure recall 1.0 at p=500 over the true top-100).
FLOOR_RULES = [
    # The observability acceptance bar: the sampled sharded-server
    # request's spans must account for >= 95% of the wall-clock between
    # admit and completion — no invisible pipeline stage.  (The entry is
    # absent from -DQSE_DISABLE_TRACING builds; --strict CI runs the
    # default build, where it is mandatory.)
    (
        "SL_Trace/sharded",
        "trace_coverage",
        0.95,
        "sampled sharded request: span coverage of admit-to-completion",
    ),
    (
        "SL_Trace/sharded",
        "trace_spans",
        10,
        "sampled sharded request: span count (server + engine stages)",
    ),
    (
        "BM_FilterScanPrecision_Filter32",
        "recall_at_10",
        0.995,
        "float32 filter recall@10 (n=1M, d=256, p=500)",
    ),
    (
        "BM_FilterScanPrecision_Filter32",
        "recall_at_100",
        0.99,
        "float32 filter recall@100 (n=1M, d=256, p=500)",
    ),
    (
        "BM_FilterScanPrecision_Filter8",
        "recall_at_10",
        0.995,
        "int8 filter recall@10 (n=1M, d=256, p=500)",
    ),
    (
        "BM_FilterScanPrecision_Filter8",
        "recall_at_100",
        0.99,
        "int8 filter recall@100 (n=1M, d=256, p=500)",
    ),
    # The drift-detection acceptance gates.  Injected abrupt drift MUST
    # raise the alarm (the whole monitor exists for this signal), and the
    # alarm must be about a real degradation of audited recall.
    (
        "SL_Drift/mono/abrupt",
        "alarm_raised",
        1,
        "injected abrupt drift raises qse_quality_drift_alarm",
    ),
    (
        "SL_Drift/mono/abrupt",
        "recall_degradation",
        0.02,
        "audited recall actually degraded when the alarm fired",
    ),
    # p = n degenerates to exact brute force: every audited answer is
    # bit-identical to ground truth, so windowed recall is exactly 1.
    (
        "SL_Drift/sharded/verify_pn",
        "exact_recall",
        1.0,
        "p = n verify run: audited recall exactly 1",
    ),
    (
        "SL_Drift/sharded/verify_pn",
        "audits_completed",
        1,
        "p = n verify run actually audited something",
    ),
    (
        "SL_Drift/mono/control",
        "audits_completed",
        1,
        "control run: background audits completed under load",
    ),
    # Hedging must actually race and win against the injected-delay
    # replica — a hedge path that silently stopped firing would pass the
    # ratio rule on a healthy-enough cluster.
    (
        "SL_Remote/cluster/hedged",
        "hedge_wins",
        1,
        "hedged cluster run: at least one hedge won its race",
    ),
    # Warm restart must actually replay a WAL tail over the snapshot —
    # a recovery that found nothing to replay exercised only half the
    # path (the bench appends tail records after its last snapshot to
    # guarantee this has something to chew on).
    (
        "SL_Recover/mono/recovery",
        "replayed_records",
        1,
        "warm restart replayed a WAL tail over the snapshot",
    ),
]

# (benchmark, counter, max value, label).  The inverse of FLOOR_RULES:
# absolute ceilings on user counters.  A ceiling of 0 means "never".
CEILING_RULES = [
    # A stationary workload must not alarm — a drift detector that cries
    # wolf gets ignored, which is worse than no detector.
    (
        "SL_Drift/mono/control",
        "false_alarms",
        0,
        "no-drift control run raises zero drift alarms",
    ),
    # Auditing sheds under pressure by design, but the control load must
    # leave the worker mostly keeping up.
    (
        "SL_Drift/mono/control",
        "audit_shed_ratio",
        0.5,
        "control run: audit shed ratio bounded",
    ),
    # Alarm latency: audit-every-query means post-onset audits == queries
    # after the change; Page-Hinkley needs only ~lambda/drop of them
    # (measured: 2-3).
    (
        "SL_Drift/mono/abrupt",
        "audits_to_alarm",
        64,
        "abrupt drift alarm latency (audited queries past onset)",
    ),
    # The bit-identity acceptance: p = n and nothing drifting, so every
    # served answer equals exact kNN over the same pinned snapshots.
    (
        "SL_Drift/sharded/verify_pn",
        "audit_mismatches",
        0,
        "p = n verify run: zero served-vs-exact mismatches",
    ),
    # The multi-node acceptance pair: the composed remote cluster must
    # answer bit-identically to the in-process sharded engine, and a
    # SIGKILLed replica must be invisible to callers (failover, not
    # failures).
    (
        "SL_Remote/parity",
        "parity_mismatches",
        0,
        "remote cluster bit-identical to in-process sharded engine",
    ),
    (
        "SL_Remote/cluster/killed",
        "failed_requests",
        0,
        "replica kill: zero caller-visible request failures",
    ),
    # The durability acceptance pair: the engine recovered from
    # snapshot + WAL replay answers bit-identically to the live engine
    # it mirrors (memcmp over rows and ids, plus query answer parity),
    # and the warm restart finishes in interactive time — the ceiling is
    # a blowup guard over the ~millisecond restart the bench measures.
    (
        "SL_Recover/mono/recovery",
        "parity_mismatches",
        0,
        "recovered engine bit-identical to the live WAL-on engine",
    ),
    (
        "SL_Recover/mono/recovery",
        "recovery_ms",
        30000,
        "warm restart (snapshot load + WAL replay) bounded",
    ),
]


# (section, metric name, min value, label).  Presence floors over the
# server_load metrics snapshot (--metrics server_load_metrics.json): one
# run must register and bump the counters of every instrumented layer —
# an instrumentation point silently falling out of the build fails here,
# not in a dashboard weeks later.  Histogram floors check the merged
# observation count.  A name ending in "*" matches any metric with that
# prefix (labeled series whose label values vary run to run, e.g. the
# commit in qse_build_info).
METRIC_FLOORS = [
    ("counters", "qse_engine_retrievals_total", 1,
     "monolithic engine retrievals recorded"),
    ("counters", "qse_engine_filter_rows_visited_total", 1,
     "monolithic filter scan row accounting"),
    ("counters", "qse_sharded_retrievals_total", 1,
     "sharded engine retrievals recorded"),
    ("counters", "qse_sharded_filter_rows_visited_total", 1,
     "sharded filter scan row accounting"),
    ("counters", "qse_server_submitted_total", 1,
     "server admission accounting (submitted)"),
    ("counters", "qse_server_completed_total", 1,
     "server admission accounting (completed)"),
    ("histograms", "qse_server_batch_size", 1,
     "server batch-size histogram populated"),
    ("histograms", "qse_sharded_scatter_latency_ns", 1,
     "sharded scatter stage latency recorded"),
    ("histograms", "qse_engine_filter_latency_ns", 1,
     "monolithic filter stage latency recorded"),
    # The quality monitor's instruments, bumped by the control run.
    ("counters", "qse_quality_audits_sampled_total", 1,
     "quality audits sampled off the hot path"),
    ("counters", "qse_quality_audits_completed_total", 1,
     "quality audits completed by the background worker"),
    # Windowed audited recall: a float gauge in [0, 1].  0.5 is a
    # sanity floor, not a target — the control run audits an exact-ish
    # p/n configuration and measures ~1.0.
    ("gauges", "qse_quality_recall_at_k", 0.5,
     "audited recall gauge populated and sane"),
    # Identity gauge: labels carry the commit, so prefix-match.
    ("gauges", "qse_build_info*", 1,
     "build identity gauge registered at startup"),
    # The remote cluster's client-side instruments (server-side twins
    # live in the child processes and are not exported here).  Replica
    # series carry labels-in-name, so prefix-match.
    ("counters", "qse_remote_rpcs_total", 1,
     "remote RPCs issued by the cluster phases"),
    ("counters", "qse_replica_attempts_total*", 1,
     "hedged replica attempt accounting"),
    ("histograms", "qse_remote_rpc_latency_ns", 1,
     "remote RPC latency recorded"),
    # The durability subsystem's instruments, bumped by SL_Recover.
    ("counters", "qse_persist_wal_records_total", 1,
     "WAL records appended by the WAL-on run"),
    ("counters", "qse_persist_wal_bytes_total", 1,
     "WAL byte accounting"),
    ("counters", "qse_persist_fsyncs_total", 1,
     "WAL fsyncs issued under the every-N policy"),
    ("counters", "qse_persist_snapshots_total", 1,
     "compacted snapshots published"),
    ("counters", "qse_persist_replay_records_total", 1,
     "warm restart replayed records through the engine"),
    ("histograms", "qse_persist_snapshot_duration_ns", 1,
     "snapshot encode+publish duration recorded"),
    ("histograms", "qse_persist_fsync_latency_ns", 1,
     "WAL fsync latency recorded"),
]

# Benchmarks compared across the two builds of --overhead-pair mode
# (instrumented vs -DQSE_DISABLE_TRACING): metrics/span sites compiled
# to dead branches must leave the serving tail within the budget.
OVERHEAD_PAIR_BENCHMARKS = [
    "SL_Closed/mono/async_adaptive",
    "SL_Closed/mono/async_b1",
]


def check_metric_floors(path, failures):
    """Applies METRIC_FLOORS to one obs::MetricsJson snapshot."""
    with open(path) as f:
        doc = json.load(f)
    for section, name, minimum, label in METRIC_FLOORS:
        table = doc.get(section, {})
        if name.endswith("*"):
            prefix = name[:-1]
            matches = [v for k, v in table.items() if k.startswith(prefix)]
            entry = matches[0] if matches else None
        else:
            entry = table.get(name)
        value = None
        if section == "histograms":
            if entry is not None:
                value = entry.get("count")
        else:
            value = entry
        if value is None:
            msg = f"MISSING  {label}: {section}/{name} absent from {path}"
            print(msg)
            failures.append(msg)
            continue
        status = "FAIL" if float(value) < minimum else "ok"
        print(f"{status:7}  {label}: {name} = {value} (floor {minimum})")
        if float(value) < minimum:
            failures.append(label)


def check_overhead_pair(instrumented_path, disabled_path, failures):
    """The observability overhead gate: p99 of the instrumented build vs
    the -DQSE_DISABLE_TRACING build, same configurations, two runs."""
    instrumented = load_benchmarks([instrumented_path])
    disabled = load_benchmarks([disabled_path])
    bound = tracing_overhead_bound()
    for name in OVERHEAD_PAIR_BENCHMARKS:
        num = metric_value(instrumented, name, "p99")
        den = metric_value(disabled, name, "p99")
        label = f"tracing overhead budget: {name} p99, instrumented vs off"
        if num is None or den is None:
            msg = f"MISSING  {label}: needs p99 in both runs"
            print(msg)
            failures.append(msg)
            continue
        if num <= 0 or den <= 0:
            msg = f"DEGENERATE  {label}: p99 {num} vs {den} (must be > 0)"
            print(msg)
            failures.append(msg)
            continue
        ratio = num / den
        status = "FAIL" if ratio > bound else "ok"
        print(f"{status:7}  {label}: ratio {ratio:.3f} (bound {bound:.2f})")
        if ratio > bound:
            failures.append(label)


def load_benchmarks(paths):
    benchmarks = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            benchmarks[bench["name"]] = bench
    return benchmarks


def metric_value(benchmarks, name, metric):
    """The metric for one benchmark, or None when absent — a rule whose
    metric a benchmark does not emit (e.g. p99 on a mean-only entry) is
    reported missing rather than silently passed."""
    bench = benchmarks.get(name)
    if bench is None or metric not in bench:
        return None
    return float(bench[metric])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark_json", nargs="*")
    parser.add_argument("--strict", action="store_true",
                        help="fail when a rule's benchmarks are missing")
    parser.add_argument("--metrics", metavar="METRICS_JSON",
                        help="obs::MetricsJson snapshot (server_load "
                             "--out stem + _metrics.json) to apply "
                             "instrumentation presence floors to")
    parser.add_argument("--overhead-pair", nargs=2,
                        metavar=("INSTRUMENTED_JSON", "DISABLED_JSON"),
                        help="server_load outputs from the default build "
                             "and a -DQSE_DISABLE_TRACING build; gates "
                             "the p99 cost of compiled-in observability")
    args = parser.parse_args()
    if not args.benchmark_json and not args.metrics and not args.overhead_pair:
        parser.error("nothing to check: give benchmark JSON files, "
                     "--metrics, or --overhead-pair")

    failures = []
    if args.overhead_pair:
        check_overhead_pair(args.overhead_pair[0], args.overhead_pair[1],
                            failures)
    if args.metrics:
        check_metric_floors(args.metrics, failures)
    if not args.benchmark_json:
        if failures:
            print(f"\n{len(failures)} benchmark threshold(s) violated:",
                  file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("\nall benchmark thresholds satisfied")
        return 0

    benchmarks = load_benchmarks(args.benchmark_json)
    for numerator, denominator, bound, label, metric in RULES:
        if callable(bound):
            bound = bound()
        num = metric_value(benchmarks, numerator, metric)
        den = metric_value(benchmarks, denominator, metric)
        if num is None or den is None:
            msg = (f"MISSING  {label}: needs {metric} of {numerator} "
                   f"and {denominator}")
            print(msg)
            if args.strict:
                failures.append(msg)
            continue
        if num <= 0 or den <= 0:
            # A zero metric is a broken benchmark, not a passing ratio —
            # e.g. a lane that completed nothing emits p99 = 0.  Fail
            # loudly instead of dividing by zero or silently passing.
            msg = (f"DEGENERATE  {label}: {metric} of {numerator} = {num}, "
                   f"{denominator} = {den} (must be > 0)")
            print(msg)
            failures.append(msg)
            continue
        ratio = num / den
        status = "FAIL" if ratio > bound else "ok"
        print(f"{status:7}  {label}: ratio {ratio:.3f} (bound {bound:.2f}, "
              f"speedup {1.0 / ratio:.2f}x)")
        if ratio > bound:
            failures.append(label)

    for name, counter, floor, label in FLOOR_RULES:
        val = metric_value(benchmarks, name, counter)
        if val is None:
            msg = f"MISSING  {label}: needs {counter} of {name}"
            print(msg)
            if args.strict:
                failures.append(msg)
            continue
        status = "FAIL" if val < floor else "ok"
        print(f"{status:7}  {label}: {val:.4f} (floor {floor:.3f})")
        if val < floor:
            failures.append(label)

    for name, counter, ceiling, label in CEILING_RULES:
        val = metric_value(benchmarks, name, counter)
        if val is None:
            msg = f"MISSING  {label}: needs {counter} of {name}"
            print(msg)
            if args.strict:
                failures.append(msg)
            continue
        status = "FAIL" if val > ceiling else "ok"
        print(f"{status:7}  {label}: {val:.4f} (ceiling {ceiling:.3f})")
        if val > ceiling:
            failures.append(label)

    if failures:
        print(f"\n{len(failures)} benchmark threshold(s) violated:",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall benchmark thresholds satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
