#ifndef QSE_UTIL_TOP_K_H_
#define QSE_UTIL_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace qse {

/// An (index, score) pair ordered by ascending score; ties broken by index
/// so that results are fully deterministic.
struct ScoredIndex {
  size_t index = 0;
  double score = 0.0;

  friend bool operator<(const ScoredIndex& a, const ScoredIndex& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.index < b.index;
  }
  friend bool operator==(const ScoredIndex& a, const ScoredIndex& b) {
    return a.index == b.index && a.score == b.score;
  }
};

/// Returns the k smallest (index, score) pairs of `scores`, sorted
/// ascending.  k is clamped to scores.size().  O(n + k log k) via
/// nth_element.
std::vector<ScoredIndex> SmallestK(const std::vector<double>& scores,
                                   size_t k);

/// Returns indices of `scores` sorted by ascending score (full argsort with
/// deterministic tie-breaking by index).
std::vector<size_t> ArgsortAscending(const std::vector<double>& scores);

/// Rank (1-based) that `target_index` would take when all entries are sorted
/// ascending by (score, index).  Used by the evaluation protocol to compute
/// the filter-step rank of a true nearest neighbor.
size_t RankOf(const std::vector<double>& scores, size_t target_index);

/// Merges several lists, each sorted ascending by (score, index), into the
/// k smallest entries overall, sorted ascending.  The gather half of
/// scatter/gather retrieval: per-shard top-p candidate lists funnel through
/// this to form the global top-p.  A k-way heap merge, O(S + k log S) for S
/// lists — it never touches the tails the merged prefix cannot reach.
/// Entries must be unique across lists under the (score, index) order
/// (shards hold disjoint ids); k is clamped to the total entry count.
std::vector<ScoredIndex> MergeSortedTopK(
    const std::vector<std::vector<ScoredIndex>>& lists, size_t k);

/// Streaming bounded selection of the k smallest ScoredIndex entries, with
/// the same (score, index) total order — and therefore the same results —
/// as SmallestK.  Backs the filter step's early-abandon scan: threshold()
/// exposes the current k-th best score so a scorer can abandon a row as
/// soon as its partial sum provably exceeds it.
class BoundedTopK {
 public:
  explicit BoundedTopK(size_t k) : k_(k) { heap_.reserve(k); }

  /// True once k entries are held (the threshold is then meaningful).
  bool full() const { return heap_.size() >= k_; }

  /// Score of the current k-th smallest entry; +infinity while not full
  /// (nothing can be abandoned yet), -infinity when k == 0.
  double threshold() const;

  /// Inserts `cand` if it is among the k smallest seen so far; returns
  /// whether it was kept.
  bool Offer(ScoredIndex cand);

  /// Extracts the kept entries sorted ascending by (score, index),
  /// leaving the container empty.
  std::vector<ScoredIndex> TakeSortedAscending();

  size_t size() const { return heap_.size(); }

 private:
  size_t k_;
  std::vector<ScoredIndex> heap_;  // Max-heap: heap_[0] is the k-th best.
};

}  // namespace qse

#endif  // QSE_UTIL_TOP_K_H_
