// Microbenchmark of the filter step (google-benchmark).
//
// Backs the paper's Sec. 8 observation: "with embeddings of up to 1,000
// dimensions, the filter step always takes negligible time; retrieval
// time is dominated by the few exact distance computations".  The
// benchmarks scan an embedded database of n d-dimensional vectors with
// the query-sensitive weighted L1, plus the top-p selection.
#include <benchmark/benchmark.h>

#include "src/distance/weighted_l1.h"
#include "src/retrieval/filter_refine.h"
#include "src/util/random.h"
#include "src/util/top_k.h"

namespace qse {
namespace {

EmbeddedDatabase MakeDb(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  EmbeddedDatabase db;
  db.rows.resize(n);
  for (auto& row : db.rows) {
    row.resize(d);
    for (double& v : row) v = rng.Uniform(0, 1);
  }
  return db;
}

void BM_FilterScanWeightedL1(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t d = static_cast<size_t>(state.range(1));
  EmbeddedDatabase db = MakeDb(n, d, 1);
  Rng rng(2);
  Vector q(d), w(d);
  for (size_t i = 0; i < d; ++i) {
    q[i] = rng.Uniform(0, 1);
    w[i] = rng.Uniform(0, 1);
  }
  std::vector<double> scores(n);
  for (auto _ : state) {
    for (size_t i = 0; i < n; ++i) {
      scores[i] = WeightedL1Distance(q, db.rows[i], w);
    }
    benchmark::DoNotOptimize(scores.data());
  }
  // vectors scanned per second; compare against exact-DX rates from
  // micro_distances to see the filter/refine cost gap.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FilterScanWeightedL1)
    ->Args({1000, 10})
    ->Args({1000, 100})
    ->Args({1000, 1000})
    ->Args({10000, 100})
    ->Args({100000, 100})
    ->Unit(benchmark::kMicrosecond);

void BM_TopPSelection(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t p = static_cast<size_t>(state.range(1));
  Rng rng(3);
  std::vector<double> scores(n);
  for (double& s : scores) s = rng.Uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SmallestK(scores, p));
  }
}
BENCHMARK(BM_TopPSelection)
    ->Args({10000, 100})
    ->Args({100000, 500})
    ->Unit(benchmark::kMicrosecond);

void BM_QueryWeightsEvaluation(benchmark::State& state) {
  // A_i(q) evaluation cost for a model with many terms per coordinate.
  size_t d = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Vector fq(d);
  for (double& v : fq) v = rng.Uniform(0, 1);
  // Simulate 4 interval terms per coordinate.
  struct Term {
    double lo, hi, alpha;
  };
  std::vector<std::vector<Term>> terms(d);
  for (auto& t : terms) {
    for (int j = 0; j < 4; ++j) {
      double lo = rng.Uniform(0, 1), hi = lo + rng.Uniform(0, 0.5);
      t.push_back({lo, hi, rng.Uniform(0, 1)});
    }
  }
  Vector weights(d);
  for (auto _ : state) {
    for (size_t i = 0; i < d; ++i) {
      double a = 0.0;
      for (const Term& t : terms[i]) {
        if (fq[i] >= t.lo && fq[i] <= t.hi) a += t.alpha;
      }
      weights[i] = a;
    }
    benchmark::DoNotOptimize(weights.data());
  }
}
BENCHMARK(BM_QueryWeightsEvaluation)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace qse

BENCHMARK_MAIN();
