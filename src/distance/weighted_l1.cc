#include "src/distance/weighted_l1.h"

#include <cassert>
#include <limits>

#include "src/distance/simd/dispatch.h"

namespace qse {

// Four-lane accumulation via the runtime-dispatched kernel table; every
// backend holds the (l0+l1)+(l2+l3) lane discipline bit for bit — see
// src/distance/simd/kernels.h and the note in lp.cc.
double WeightedL1DistanceSpan(const double* a, const double* b,
                              const double* w, size_t n) {
  return simd::ActiveKernels()->wl1_f64(
      a, b, w, n, std::numeric_limits<double>::infinity());
}

double WeightedL1Distance(const Vector& a, const Vector& b, const Vector& w) {
  assert(a.size() == b.size());
  assert(a.size() == w.size());
  return WeightedL1DistanceSpan(a.data(), b.data(), w.data(), a.size());
}

}  // namespace qse
