#ifndef QSE_UTIL_LOGGING_H_
#define QSE_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace qse {

/// Log severities, ascending.  The process-wide threshold filters lines
/// below it; it defaults to kInfo and is overridable with the
/// QSE_LOG_LEVEL environment variable ("debug", "info", "warn",
/// "error", or 0-3), read once at first use.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Stable lower-case level name ("debug", ..., "error").
const char* LogLevelName(LogLevel level);

/// Parses a QSE_LOG_LEVEL value; `def` for nullptr/empty/unrecognized.
/// Pure — unit-testable without touching the environment.
LogLevel ParseLogLevel(const char* value, LogLevel def);

/// The current threshold (first call resolves QSE_LOG_LEVEL).
LogLevel MinLogLevel();

/// Overrides the threshold at runtime (tests, embedding applications).
void SetMinLogLevel(LogLevel level);

namespace internal {

/// Terminates the process after printing `msg`; used by QSE_CHECK.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

/// Formats and emits one timestamped log line.  Thread-safe: the whole
/// line (including the trailing newline) is issued as a single write to
/// stderr under an internal lock, so concurrent loggers never
/// interleave within a line.  Lines below MinLogLevel() are dropped.
void LogLine(LogLevel level, const std::string& msg);

/// Stream-style collector so call sites can write
/// QSE_LOG("built model: " << d << " dims").
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace qse

/// Leveled log line to stderr; filtered by MinLogLevel().  The message
/// expression is only evaluated when the level passes the filter.
#define QSE_LOG_AT(level, msg_expr)                                   \
  do {                                                                \
    if ((level) >= ::qse::MinLogLevel()) {                            \
      ::qse::internal::MessageStream _qse_ms;                         \
      _qse_ms << msg_expr;                                            \
      ::qse::internal::LogLine((level), _qse_ms.str());               \
    }                                                                 \
  } while (0)

/// Informational log line to stderr (filtered by QSE_LOG_LEVEL).
#define QSE_LOG(msg_expr) QSE_LOG_AT(::qse::LogLevel::kInfo, msg_expr)
#define QSE_DLOG(msg_expr) QSE_LOG_AT(::qse::LogLevel::kDebug, msg_expr)
#define QSE_LOG_WARN(msg_expr) QSE_LOG_AT(::qse::LogLevel::kWarn, msg_expr)
#define QSE_LOG_ERROR(msg_expr) QSE_LOG_AT(::qse::LogLevel::kError, msg_expr)

/// Fatal invariant check; always on (used for programming errors, not for
/// recoverable conditions — those return Status).
#define QSE_CHECK(cond)                                               \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::qse::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                 \
  } while (0)

#define QSE_CHECK_MSG(cond, msg_expr)                                 \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::qse::internal::MessageStream _qse_ms;                         \
      _qse_ms << msg_expr;                                            \
      ::qse::internal::CheckFailed(__FILE__, __LINE__, #cond,         \
                                   _qse_ms.str());                    \
    }                                                                 \
  } while (0)

/// Debug-build-only invariant check: compiled out (condition not
/// evaluated) under NDEBUG, a full QSE_CHECK otherwise.  For internal
/// consistency assertions too hot or too stateful for release builds —
/// e.g. the server's admission accounting invariant at shutdown.
#ifdef NDEBUG
#define QSE_DCHECK(cond) \
  do {                   \
  } while (0)
#define QSE_DCHECK_MSG(cond, msg_expr) \
  do {                                 \
  } while (0)
#else
#define QSE_DCHECK(cond) QSE_CHECK(cond)
#define QSE_DCHECK_MSG(cond, msg_expr) QSE_CHECK_MSG(cond, msg_expr)
#endif

#endif  // QSE_UTIL_LOGGING_H_
