#ifndef QSE_SERVER_ASYNC_RETRIEVAL_SERVER_H_
#define QSE_SERVER_ASYNC_RETRIEVAL_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/obs/metric_registry.h"
#include "src/obs/trace.h"
#include "src/retrieval/retrieval_backend.h"
#include "src/server/admission_queue.h"
#include "src/util/bounded_queue.h"
#include "src/util/future.h"
#include "src/util/statusor.h"

namespace qse {

/// One tenant's share of the admission queue.  A tenant may occupy at
/// most max(1, floor(share * queue_capacity)) slots at once; a Submit
/// beyond that is refused with kResourceExhausted while other tenants
/// still admit.
struct TenantQuota {
  std::string tenant_id;
  double share = 1.0;
};

struct AsyncServerOptions {
  /// Admission queue bound, shared by all priority lanes.  A Submit that
  /// finds it full either sheds a strictly lower-priority queued request
  /// (which is answered kResourceExhausted) or is itself rejected with
  /// kResourceExhausted — load shedding, not unbounded buffering.  A
  /// handful of further requests beyond this live in the batcher/worker
  /// pipeline.
  size_t queue_capacity = 1024;
  /// Largest micro-batch the batcher will coalesce (also the resolution
  /// of the batch-size histogram).
  size_t max_batch = 64;
  /// Batching window measured from the first request of a batch: with 0
  /// (default) the batcher dispatches as soon as the queue is momentarily
  /// empty — an idle system answers at ~single-query latency, a loaded
  /// one grows batches naturally from backlog.  A positive window keeps
  /// the batch open up to this long waiting for more arrivals, trading
  /// idle latency for larger batches under light open-loop load.
  std::chrono::microseconds max_batch_delay{0};
  /// Worker threads executing dispatched batches (0 means 1).  More
  /// workers pipeline batches; within one batch, parallelism comes from
  /// RetrieveBatch itself.
  size_t num_workers = 1;
  /// num_threads the server substitutes into each executed batch's
  /// options (a request does not choose the server's parallelism);
  /// 0 = hardware concurrency.  Keep num_workers * retrieve_threads near
  /// the core count to avoid oversubscription.
  size_t retrieve_threads = 0;
  /// Per-tenant admission quotas.  Empty (default): tenant_id is ignored
  /// and nothing is tenant-limited.  Non-empty: listed tenants are
  /// capped at their share of queue_capacity, and a request from an
  /// unlisted tenant is rejected with kInvalidArgument ("" is a tenant
  /// like any other — list it to admit anonymous traffic).
  std::vector<TenantQuota> tenant_quotas;
  /// Trace every Nth valid Submit that does not already carry a trace
  /// (0 = never): the sampled request gets a RequestTrace recording
  /// admit/queue/batch/execute spans plus the backend's per-stage
  /// spans, returned on RetrievalResponse::trace.  Sampled requests run
  /// as singleton backend calls (bit-identical results by the backend
  /// contract), so keep N large under load.  No-op when the library is
  /// built with QSE_DISABLE_TRACING.
  size_t trace_every_n = 0;
  /// Registry receiving the server's metrics.  Null (default): the
  /// server owns a private registry, exposed via metrics() — private
  /// registries keep concurrently running servers (tests, benches) from
  /// summing into each other.  Non-null: must outlive the server.
  obs::MetricRegistry* registry = nullptr;
  /// Quality monitor offered to the backend on every request that does
  /// not already carry one (RetrievalOptions::audit_monitor): the
  /// backend samples 1-in-N completed responses into background
  /// exact-kNN audits (quality_monitor.h) feeding the qse_quality_*
  /// instruments and the drift alarm.  Null (default): no auditing.
  /// Borrowed; must outlive the server.
  obs::QualityMonitor* quality_monitor = nullptr;
};

/// Per-priority-lane counter slice of ServerStats.
///
/// Lane invariant (once all futures are ready, e.g. after Shutdown):
///   admitted == completed + expired + cancelled + shed
struct LaneStats {
  size_t submitted = 0;  ///< Valid submits carrying this priority.
  size_t admitted = 0;   ///< Entered this admission lane.
  size_t shed = 0;       ///< Evicted from the queue by a higher-priority
                         ///< arrival (answered kResourceExhausted).
  size_t expired = 0;    ///< Answered kDeadlineExceeded.
  size_t cancelled = 0;  ///< Answered at Shutdown(kCancel) without
                         ///< reaching the backend.
  size_t completed = 0;  ///< Backend answered.
  size_t queue_depth = 0;  ///< Momentary lane length.
};

/// Per-tenant counter slice of ServerStats (quota-configured servers).
struct TenantStats {
  std::string tenant_id;
  size_t limit = 0;      ///< Occupancy slots (share * queue_capacity).
  size_t submitted = 0;  ///< Valid submits naming this tenant.
  size_t admitted = 0;
  size_t rejected = 0;  ///< Refused over-quota with kResourceExhausted.
  size_t shed = 0;      ///< Admitted, then evicted by priority shedding.
};

/// Counter snapshot from AsyncRetrievalServer::stats().
///
/// Invariants (once all futures are ready, e.g. after Shutdown):
///   submitted == admitted + rejected
///   admitted  == completed + expired + cancelled + shed
struct ServerStats {
  size_t submitted = 0;  ///< All Submit calls.
  size_t admitted = 0;   ///< Entered the admission queue.
  size_t rejected = 0;   ///< Never queued: overflow, over-quota, invalid
                         ///< options, unknown tenant, or submitted after
                         ///< shutdown.
  size_t shed = 0;      ///< Admitted, then evicted by a higher-priority
                        ///< arrival under overflow.
  size_t expired = 0;   ///< Answered kDeadlineExceeded at dequeue or
                        ///< just before refine.
  size_t cancelled = 0;  ///< Answered at Shutdown(kCancel) without
                         ///< reaching the backend.
  size_t completed = 0;  ///< Backend answered (OK or a backend error).
  size_t queue_depth = 0;  ///< Momentary admission-queue length.
  /// Of `rejected`, submits naming a tenant absent from tenant_quotas.
  size_t unknown_tenant_rejected = 0;
  /// Indexed by RequestPriority (kHigh = 0, kNormal = 1, kLow = 2).
  std::array<LaneStats, kNumPriorityLanes> lanes;
  /// One entry per configured TenantQuota, in configuration order.
  std::vector<TenantStats> tenants;
  /// batch_size_histogram[i] = dispatched micro-batches of size i + 1.
  std::vector<size_t> batch_size_histogram;
};

/// True iff the admission accounting invariants hold for a quiescent
/// snapshot (every submitted future ready, e.g. after Shutdown):
///   submitted == admitted + rejected
///   admitted  == completed + expired + cancelled + shed
/// and, per lane, admitted == completed + expired + cancelled + shed.
/// The one place the invariant is spelled out: tests assert it, and a
/// debug build QSE_DCHECKs it at the end of Shutdown.
bool CheckServerStatsInvariant(const ServerStats& stats);

/// The async serving front end: owns any RetrievalBackend (monolithic or
/// sharded) behind a Submit -> Future pipeline.
///
///   submitters -> bounded multi-lane admission queue -> batcher thread
///   -> bounded batch queue -> worker pool -> RetrieveBatch -> promise
///   completion
///
/// Admission is strict-priority with per-tenant quotas: the batcher
/// always dequeues kHigh before kNormal before kLow, an overflowing
/// queue sheds the lowest-priority queued work first (never the
/// incoming request, unless nothing below it is queued), and a tenant
/// over its configured share of queue_capacity is refused while other
/// tenants still admit.
///
/// The batcher coalesces queued requests into adaptive micro-batches: it
/// keeps growing a batch while the queue is non-empty (up to max_batch),
/// capped by the max_batch_delay window, so batch size tracks load — an
/// idle server dispatches singletons immediately, a saturated one ships
/// full batches.  Requests in one micro-batch that share a result key
/// (RetrievalOptions::SameResultKey: equal k, p, want_stats and
/// filter_precision) run as a
/// single RetrieveBatch call; each admitted, non-expired request's
/// result is bit-identical to a direct RetrievalBackend::Retrieve.
///
/// Every submitted request's future becomes ready exactly once, whatever
/// happens: backend result, kResourceExhausted (admission overflow,
/// priority shed, or tenant over quota), kDeadlineExceeded (expired in
/// queue or just before refine), kInvalidArgument (bad options or
/// unknown tenant), or kFailedPrecondition (shutdown).
///
/// Thread-safety: Submit/Retrieve/stats are safe from any thread.
/// Shutdown is idempotent but must not race itself from two threads.  The
/// backend must stay alive while the server is running.  Mutation under
/// serving is supported: a server built over a mutable backend forwards
/// Insert/Remove to it, and the engines' epoch snapshots keep every
/// concurrently executing retrieval consistent (RetrievalBackend's
/// concurrency contract) — Submit traffic keeps flowing while the
/// database changes.
class AsyncRetrievalServer {
 public:
  enum class DrainMode {
    kDrain,   ///< Execute everything already admitted, then stop.
    kCancel,  ///< Answer everything not yet executing with
              ///< kFailedPrecondition, then stop.  In-flight batches
              ///< still finish normally.
  };

  /// Read-only server: retrieval only, Insert/Remove refused.
  explicit AsyncRetrievalServer(const RetrievalBackend* backend,
                                AsyncServerOptions options = {});
  /// Mutable server: additionally forwards Insert/Remove to `backend`
  /// while Submit traffic keeps being served.
  explicit AsyncRetrievalServer(RetrievalBackend* backend,
                                AsyncServerOptions options = {});
  /// Shutdown(kDrain) if still running.
  ~AsyncRetrievalServer();

  AsyncRetrievalServer(const AsyncRetrievalServer&) = delete;
  AsyncRetrievalServer& operator=(const AsyncRetrievalServer&) = delete;

  /// Enqueues one retrieval.  Never blocks: on overflow (or invalid
  /// options, over-quota tenant, or after shutdown) the returned future
  /// is already ready with the rejection status.  `request.dx` may be
  /// invoked on a worker thread any time before the future is ready;
  /// captured state must outlive that.
  Future<StatusOr<RetrievalResponse>> Submit(RetrievalRequest request);

  /// Blocking convenience: Submit + Get.
  StatusOr<RetrievalResponse> Retrieve(RetrievalRequest request);

  /// Inserts a new object into the backing database while the server
  /// keeps serving: concurrently executing retrievals each observe a
  /// consistent pre- or post-insert snapshot.  FailedPrecondition when
  /// the server was built over a read-only backend; otherwise forwards
  /// the backend's status.  Mutations are serialized by the backend.
  Status Insert(size_t db_id, const DxToDatabaseFn& dx);

  /// Removes an object while the server keeps serving; same contract as
  /// Insert.
  Status Remove(size_t db_id);

  /// Stops the server: closes admission, drains or cancels queued work,
  /// joins all threads.  On return every submitted future is ready.
  void Shutdown(DrainMode mode = DrainMode::kDrain);

  ServerStats stats() const;
  /// The registry holding this server's metrics (the injected one or
  /// the private default), with the momentary queue-depth gauges
  /// refreshed — ready for PrometheusText / MetricsJson export.
  obs::MetricRegistry& metrics() const;
  const RetrievalBackend& backend() const { return *backend_; }
  const AsyncServerOptions& options() const { return options_; }

 private:
  struct Request {
    RetrievalRequest req;
    size_t lane = static_cast<size_t>(RequestPriority::kNormal);
    size_t tenant_slot = kNoTenantSlot;
    Promise<StatusOr<RetrievalResponse>> promise;
    /// Trace stamps (ns since the request's trace epoch), carried along
    /// the pipeline so each stage's span starts where the previous one
    /// ended.  Unused (0) for untraced requests.
    uint64_t queue_start_ns = 0;
    uint64_t dequeue_ns = 0;
    uint64_t dispatch_ns = 0;
  };
  using Batch = std::vector<Request>;

  void BatcherLoop();
  void WorkerLoop();
  /// Deadline/cancel gate when a request leaves the admission queue:
  /// appends it to `batch` or completes its promise.  Returns whether it
  /// joined the batch.
  bool AdmitToBatch(Request r, Batch* batch, RetrievalClock::time_point now);
  /// Re-gates each request (the check "before refine"), groups survivors
  /// by result key, runs RetrieveBatch per group, completes every
  /// promise.
  void ExecuteBatch(Batch batch);
  void CompleteCancelled(Request* r);
  /// Completes an eviction victim with kResourceExhausted and counts the
  /// shed against its lane and tenant.
  void CompleteShed(Request* r);

  const RetrievalBackend* backend_;
  /// Non-null iff constructed over a mutable backend; the Insert/Remove
  /// forwarding target.
  RetrievalBackend* mutable_backend_ = nullptr;
  AsyncServerOptions options_;
  std::unordered_map<std::string, size_t> tenant_slots_;  // id -> slot
  /// tenant_limits_[slot] — the one place quota shares become slots;
  /// both the queue's enforcement and TenantStats::limit read it.
  std::vector<size_t> tenant_limits_;
  PriorityAdmissionQueue<Request> queue_;  // admission (MPSC)
  BoundedQueue<Batch> dispatch_;           // batcher -> workers (SPMC)
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> cancel_{false};
  /// Submit calls currently executing.  Shutdown waits for this to hit
  /// zero before returning: a Submit may still be completing a promise
  /// it owns — its own rejection, or a victim evicted by its push —
  /// after the queue has drained, and "every submitted future is ready"
  /// must cover those too.
  std::atomic<size_t> active_submits_{0};
  /// Submit ticks behind trace_every_n sampling.  Separate from the
  /// submitted counter: reading a striped Counter sums all its stripes,
  /// too much work for a per-Submit decision.
  std::atomic<uint64_t> trace_tick_{0};

  /// All counters below live in *registry_ (the injected registry or
  /// the private owned_registry_); the members are pointers resolved
  /// once at construction.  Every per-request accounting step is one
  /// wait-free striped Add — the old breakdown/histogram mutexes are
  /// gone, and stats() reconstructs ServerStats from the same storage
  /// the exporters read, so the two can never disagree.
  std::unique_ptr<obs::MetricRegistry> owned_registry_;
  obs::MetricRegistry* registry_;

  obs::Counter* submitted_;
  obs::Counter* admitted_;
  obs::Counter* rejected_;
  obs::Counter* shed_;
  obs::Counter* expired_;
  obs::Counter* cancelled_;
  obs::Counter* completed_;
  obs::Counter* unknown_tenant_rejected_;
  obs::Gauge* queue_depth_;
  obs::Histogram* batch_size_hist_;

  struct LaneCounters {
    obs::Counter* submitted;
    obs::Counter* admitted;
    obs::Counter* shed;
    obs::Counter* expired;
    obs::Counter* cancelled;
    obs::Counter* completed;
    obs::Gauge* queue_depth;
  };
  std::array<LaneCounters, kNumPriorityLanes> lane_counters_;

  struct TenantCounters {
    obs::Counter* submitted;
    obs::Counter* admitted;
    obs::Counter* rejected;
    obs::Counter* shed;
  };
  /// Indexed by tenant slot (configuration order of tenant_quotas).
  std::vector<TenantCounters> tenant_counters_;

  std::thread batcher_;
  std::vector<std::thread> workers_;
};

}  // namespace qse

#endif  // QSE_SERVER_ASYNC_RETRIEVAL_SERVER_H_
