#include "src/core/adaboost.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace qse {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Samples a random 1D embedding spec from the candidate pool.  Pivot
/// pairs with near-zero inter-pivot distance are rejected (Eq. 2 divides
/// by DX(x1, x2)).
Embedding1DSpec SampleSpec(const TrainingContext& ctx, double pivot_fraction,
                           Rng* rng) {
  const size_t nc = ctx.num_candidates();
  Embedding1DSpec spec;
  if (nc >= 2 && rng->Bernoulli(pivot_fraction)) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      uint32_t c1 = static_cast<uint32_t>(rng->Index(nc));
      uint32_t c2 = static_cast<uint32_t>(rng->Index(nc));
      if (c1 == c2) continue;
      if (ctx.CandCand(c1, c2) <= 1e-12) continue;
      spec.type = Embedding1DSpec::Type::kPivot;
      spec.c1 = c1;
      spec.c2 = c2;
      return spec;
    }
  }
  spec.type = Embedding1DSpec::Type::kReference;
  spec.c1 = static_cast<uint32_t>(rng->Index(nc));
  return spec;
}

/// A scored candidate weak classifier (before exact α fitting).
struct ScoredCandidate {
  Embedding1DSpec spec;
  double lo = -kInf;
  double hi = kInf;
  double z_bound = kInf;
};

}  // namespace

double MinimizeZ(const std::vector<double>& weights,
                 const std::vector<double>& margins, double passive_mass,
                 double* z_min) {
  assert(weights.size() == margins.size());
  double total_active = 0.0;
  double max_abs = 0.0;
  for (size_t i = 0; i < margins.size(); ++i) {
    total_active += weights[i];
    max_abs = std::max(max_abs, std::fabs(margins[i]));
  }
  if (max_abs == 0.0 || weights.empty()) {
    if (z_min != nullptr) *z_min = passive_mass + total_active;
    return 0.0;
  }
  const double inv_scale = 1.0 / max_abs;

  // Z(beta) with normalized margins s_i in [-1, 1]; alpha = beta / max_abs.
  auto z_at = [&](double beta) {
    double z = passive_mass;
    for (size_t i = 0; i < margins.size(); ++i) {
      z += weights[i] * std::exp(-beta * margins[i] * inv_scale);
    }
    return z;
  };
  auto dz_at = [&](double beta) {
    double d = 0.0;
    for (size_t i = 0; i < margins.size(); ++i) {
      double s = margins[i] * inv_scale;
      d -= weights[i] * s * std::exp(-beta * s);
    }
    return d;
  };

  // Z is strictly convex in beta; locate the sign change of dZ/dbeta with
  // a capped bracket, then bisect.
  constexpr double kBetaCap = 35.0;  // exp stays within double range.
  double d0 = dz_at(0.0);
  double lo_b, hi_b;
  if (d0 < 0.0) {
    lo_b = 0.0;
    hi_b = kBetaCap;
    if (dz_at(hi_b) < 0.0) {
      // Perfect (or near-perfect) classifier on the active mass: the cap
      // is the minimizer within our numeric budget.
      if (z_min != nullptr) *z_min = z_at(hi_b);
      return hi_b * inv_scale;
    }
  } else if (d0 > 0.0) {
    lo_b = -kBetaCap;
    hi_b = 0.0;
    if (dz_at(lo_b) > 0.0) {
      if (z_min != nullptr) *z_min = z_at(lo_b);
      return lo_b * inv_scale;
    }
  } else {
    if (z_min != nullptr) *z_min = z_at(0.0);
    return 0.0;
  }
  for (int iter = 0; iter < 64; ++iter) {
    double mid = 0.5 * (lo_b + hi_b);
    if (dz_at(mid) < 0.0) {
      lo_b = mid;
    } else {
      hi_b = mid;
    }
  }
  double beta = 0.5 * (lo_b + hi_b);
  if (z_min != nullptr) *z_min = z_at(beta);
  return beta * inv_scale;
}

AdaBoostResult TrainAdaBoost(const TrainingContext& ctx,
                             const std::vector<Triple>& triples,
                             const AdaBoostOptions& options) {
  const size_t t = triples.size();
  QSE_CHECK_MSG(t >= 2, "need at least 2 training triples");
  const size_t nt = ctx.num_train_objects();
  for (const Triple& tr : triples) {
    QSE_CHECK_MSG(tr.q < nt && tr.a < nt && tr.b < nt,
                  "triple index out of range of the training set");
    QSE_CHECK_MSG(tr.y == 1 || tr.y == -1, "triple label must be +-1");
  }

  Rng rng(options.seed);
  AdaBoostResult result;
  std::vector<double> w(t, 1.0 / static_cast<double>(t));
  std::vector<double> ensemble_margin(t, 0.0);  // y_i * H(q_i,a_i,b_i).

  // Scratch buffers reused across rounds.
  std::vector<double> values(nt);
  std::vector<double> proj_q(t), margin(t);  // F(q_i), y_i * F̃_i.
  std::vector<uint32_t> order(t);
  std::vector<double> prefix_w(t + 1), prefix_r(t + 1);
  std::vector<size_t> cuts;

  for (size_t round = 0; round < options.rounds; ++round) {
    ScoredCandidate best;

    for (size_t e = 0; e < options.embeddings_per_round; ++e) {
      Embedding1DSpec spec;
      if (options.query_sensitive && !result.rounds.empty() &&
          rng.Bernoulli(options.reuse_fraction)) {
        spec = result.rounds[rng.Index(result.rounds.size())].spec;
      } else {
        spec = SampleSpec(ctx, options.pivot_fraction, &rng);
      }
      Eval1DOnAllTrainObjects(spec, ctx, values.data());

      double max_abs = 0.0;
      for (size_t i = 0; i < t; ++i) {
        const Triple& tr = triples[i];
        double fq = values[tr.q];
        double ga = std::fabs(fq - values[tr.a]);
        double gb = std::fabs(fq - values[tr.b]);
        proj_q[i] = fq;
        margin[i] = static_cast<double>(tr.y) * (gb - ga);
        max_abs = std::max(max_abs, std::fabs(margin[i]));
      }
      if (max_abs == 0.0) continue;  // Degenerate embedding.
      const double inv_scale = 1.0 / max_abs;

      if (!options.query_sensitive) {
        // Original BoostMap: V = R; Schapire-Singer bound with W_out = 0.
        double r = 0.0;
        for (size_t i = 0; i < t; ++i) r += w[i] * margin[i] * inv_scale;
        double zb = std::sqrt(std::max(0.0, 1.0 - r * r));
        if (zb < best.z_bound) {
          best = {spec, -kInf, kInf, zb};
        }
        continue;
      }

      // Query-sensitive: score every interval of a quantile grid over the
      // query projections, in O(1) each via prefix sums.
      for (size_t i = 0; i < t; ++i) order[i] = static_cast<uint32_t>(i);
      std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
        return proj_q[x] < proj_q[y];
      });
      prefix_w[0] = 0.0;
      prefix_r[0] = 0.0;
      for (size_t i = 0; i < t; ++i) {
        uint32_t idx = order[i];
        prefix_w[i + 1] = prefix_w[i] + w[idx];
        prefix_r[i + 1] = prefix_r[i] + w[idx] * margin[idx] * inv_scale;
      }

      // Cut positions: quantiles of the sorted projections, snapped to
      // value boundaries so every scored range maps to a clean interval
      // [lo, hi] of R.
      cuts.clear();
      cuts.push_back(0);
      const size_t grid = std::max<size_t>(2, options.interval_grid);
      for (size_t g = 1; g < grid; ++g) {
        size_t pos = g * t / grid;
        while (pos > 0 && pos < t &&
               proj_q[order[pos - 1]] == proj_q[order[pos]]) {
          ++pos;
        }
        if (pos > cuts.back() && pos < t) cuts.push_back(pos);
      }
      cuts.push_back(t);

      const double total_w = prefix_w[t];
      const bool by_correlation =
          options.interval_selection ==
          AdaBoostOptions::IntervalSelection::kCorrelation;
      for (size_t u = 0; u + 1 < cuts.size(); ++u) {
        for (size_t v = u + 1; v < cuts.size(); ++v) {
          double w_in = prefix_w[cuts[v]] - prefix_w[cuts[u]];
          if (w_in < options.min_split_mass * total_w) continue;
          double r = prefix_r[cuts[v]] - prefix_r[cuts[u]];
          // Both criteria are expressed as a Z bound so they compare on
          // one scale: kCorrelation uses Z <= sqrt(1 - r^2) (margins
          // outside V contribute 0 to r), kZBound the tighter two-part
          // form.  Lower is better in both cases.
          double zb;
          if (by_correlation) {
            double rr = std::min(std::fabs(r), 1.0);
            zb = std::sqrt(1.0 - rr * rr);
          } else {
            double w_out = total_w - w_in;
            zb = w_out + std::sqrt(std::max(0.0, w_in * w_in - r * r));
          }
          if (zb >= best.z_bound) continue;
          double lo = cuts[u] == 0
                          ? -kInf
                          : 0.5 * (proj_q[order[cuts[u] - 1]] +
                                   proj_q[order[cuts[u]]]);
          double hi = cuts[v] == t
                          ? kInf
                          : 0.5 * (proj_q[order[cuts[v] - 1]] +
                                   proj_q[order[cuts[v]]]);
          best = {spec, lo, hi, zb};
        }
      }
    }

    if (best.z_bound >= options.z_stop_threshold) {
      if (options.verbose) {
        QSE_LOG("adaboost: stopping at round " << round
                                               << ", best Z bound "
                                               << best.z_bound);
      }
      break;
    }

    // Exact alpha for the winning classifier (Eq. 8 minimized in alpha).
    WeakClassifier chosen;
    chosen.spec = best.spec;
    chosen.lo = best.lo;
    chosen.hi = best.hi;
    Eval1DOnAllTrainObjects(chosen.spec, ctx, values.data());

    std::vector<double> active_w, active_margin;
    std::vector<double> h(t, 0.0);  // Q̃ value per triple.
    double passive = 0.0;
    double wrong_active = 0.0, total_active = 0.0;
    for (size_t i = 0; i < t; ++i) {
      const Triple& tr = triples[i];
      double fq = values[tr.q];
      double q_tilde = chosen.Evaluate(fq, values[tr.a], values[tr.b]);
      h[i] = q_tilde;
      double s = static_cast<double>(tr.y) * q_tilde;
      if (chosen.Accepts(fq)) {
        active_w.push_back(w[i]);
        active_margin.push_back(s);
        total_active += w[i];
        if (s < 0.0) wrong_active += w[i];
      } else {
        passive += w[i];
      }
    }
    double z = 1.0;
    chosen.alpha = MinimizeZ(active_w, active_margin, passive, &z);
    if (z >= options.z_stop_threshold || chosen.alpha == 0.0) {
      if (options.verbose) {
        QSE_LOG("adaboost: stopping at round " << round << ", exact Z " << z);
      }
      break;
    }

    // Weight update (Eq. 6), normalized so the weights remain a
    // distribution.
    double norm = 0.0;
    for (size_t i = 0; i < t; ++i) {
      w[i] *= std::exp(-chosen.alpha * static_cast<double>(triples[i].y) *
                       h[i]);
      norm += w[i];
    }
    QSE_CHECK(norm > 0.0);
    for (size_t i = 0; i < t; ++i) w[i] /= norm;

    // Telemetry.
    size_t train_wrong = 0;
    for (size_t i = 0; i < t; ++i) {
      ensemble_margin[i] +=
          chosen.alpha * static_cast<double>(triples[i].y) * h[i];
      if (ensemble_margin[i] <= 0.0) ++train_wrong;
    }
    RoundInfo info;
    info.round = round;
    info.chosen = chosen;
    info.z = z;
    info.weighted_error =
        total_active > 0.0 ? wrong_active / total_active : 0.5;
    info.training_error =
        static_cast<double>(train_wrong) / static_cast<double>(t);
    result.history.push_back(info);
    result.rounds.push_back(chosen);
    result.final_training_error = info.training_error;

    if (options.verbose && (round % 10 == 0 || round + 1 == options.rounds)) {
      QSE_LOG("adaboost round " << round << ": Z=" << z
                                << " alpha=" << chosen.alpha
                                << " train_err=" << info.training_error);
    }
  }
  return result;
}

}  // namespace qse
