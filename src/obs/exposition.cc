#include "src/obs/exposition.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace qse {
namespace obs {
namespace {

/// "name{k=\"v\"}" -> {"name", "k=\"v\""}; no-brace names get "".
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  // Keep the label body without the braces; drop a trailing '}'.
  size_t end = name.rfind('}');
  *labels = name.substr(brace + 1,
                        end == std::string::npos ? std::string::npos
                                                 : end - brace - 1);
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  // %.17g round-trips doubles; trim the common integer case for
  // readability.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// JSON has no NaN/Inf literals; a non-finite value would corrupt the
/// whole document for every downstream parser, so it degrades to 0.
std::string FormatJsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  return FormatDouble(v);
}

std::string SeriesName(const std::string& base, const std::string& suffix,
                       const std::string& labels,
                       const std::string& extra_label) {
  std::string out = base + suffix;
  std::string body = labels;
  if (!extra_label.empty()) {
    if (!body.empty()) body += ",";
    body += extra_label;
  }
  if (!body.empty()) out += "{" + body + "}";
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromLabel(const std::string& key, const std::string& value) {
  return key + "=\"" + EscapeLabelValue(value) + "\"";
}

std::string PrometheusText(const MetricRegistry& registry) {
  std::ostringstream out;
  std::set<std::string> typed;  // base names that already got a # TYPE line
  registry.ForEach([&](const std::string& name, const Counter* counter,
                       const Gauge* gauge, const FloatGauge* float_gauge,
                       const Histogram* histogram) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (counter != nullptr) {
      if (typed.insert(base).second) {
        out << "# TYPE " << base << " counter\n";
      }
      out << SeriesName(base, "", labels, "") << " " << counter->Value()
          << "\n";
    } else if (gauge != nullptr) {
      if (typed.insert(base).second) {
        out << "# TYPE " << base << " gauge\n";
      }
      out << SeriesName(base, "", labels, "") << " " << gauge->Value()
          << "\n";
    } else if (float_gauge != nullptr) {
      if (typed.insert(base).second) {
        out << "# TYPE " << base << " gauge\n";
      }
      out << SeriesName(base, "", labels, "") << " "
          << FormatDouble(float_gauge->Value()) << "\n";
    } else if (histogram != nullptr) {
      if (typed.insert(base).second) {
        out << "# TYPE " << base << " histogram\n";
      }
      HistogramSnapshot snap = histogram->Snapshot();
      uint64_t cumulative = 0;
      for (size_t b = 0; b < snap.bucket_counts.size(); ++b) {
        cumulative += snap.bucket_counts[b];
        std::string le =
            b < snap.boundaries.size()
                ? "le=\"" + FormatDouble(snap.boundaries[b]) + "\""
                : std::string("le=\"+Inf\"");
        out << SeriesName(base, "_bucket", labels, le) << " " << cumulative
            << "\n";
      }
      out << SeriesName(base, "_sum", labels, "") << " "
          << FormatDouble(snap.sum) << "\n";
      out << SeriesName(base, "_count", labels, "") << " " << snap.count
          << "\n";
    }
  });
  return out.str();
}

std::string MetricsJson(const MetricRegistry& registry) {
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  registry.ForEach([&](const std::string& name, const Counter* counter,
                       const Gauge* gauge, const FloatGauge* float_gauge,
                       const Histogram* histogram) {
    if (counter != nullptr) {
      counters << (first_c ? "" : ",") << "\n    \"" << JsonEscape(name)
               << "\": " << counter->Value();
      first_c = false;
    } else if (gauge != nullptr) {
      gauges << (first_g ? "" : ",") << "\n    \"" << JsonEscape(name)
             << "\": " << gauge->Value();
      first_g = false;
    } else if (float_gauge != nullptr) {
      gauges << (first_g ? "" : ",") << "\n    \"" << JsonEscape(name)
             << "\": " << FormatJsonDouble(float_gauge->Value());
      first_g = false;
    } else if (histogram != nullptr) {
      HistogramSnapshot snap = histogram->Snapshot();
      histograms << (first_h ? "" : ",") << "\n    \"" << JsonEscape(name)
                 << "\": {\"count\": " << snap.count
                 << ", \"sum\": " << FormatJsonDouble(snap.sum)
                 << ", \"p50\": " << FormatJsonDouble(snap.Quantile(0.50))
                 << ", \"p95\": " << FormatJsonDouble(snap.Quantile(0.95))
                 << ", \"p99\": " << FormatJsonDouble(snap.Quantile(0.99))
                 << "}";
      first_h = false;
    }
  });
  std::ostringstream out;
  out << "{\n  \"counters\": {" << counters.str() << "\n  },\n"
      << "  \"gauges\": {" << gauges.str() << "\n  },\n"
      << "  \"histograms\": {" << histograms.str() << "\n  }\n}\n";
  return out.str();
}

}  // namespace obs
}  // namespace qse
