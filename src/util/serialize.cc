#include "src/util/serialize.h"

#include <limits>

namespace qse {

void BinaryWriter::WriteU32(uint32_t v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteU64(uint64_t v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteI64(int64_t v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteDouble(double v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
}
void BinaryWriter::WriteDoubleVec(const std::vector<double>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(double)));
}
void BinaryWriter::WriteFloatVec(const std::vector<float>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
}
void BinaryWriter::WriteU32Vec(const std::vector<uint32_t>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(uint32_t)));
}

Status BinaryReader::ReadRaw(void* dst, size_t n) {
  if (in_ == nullptr || !in_->good()) {
    return Status::IOError("stream not readable");
  }
  in_->read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_->gcount()) != n) {
    return Status::IOError("truncated read");
  }
  return Status::OK();
}

Status BinaryReader::ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
Status BinaryReader::ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
Status BinaryReader::ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
Status BinaryReader::ReadDouble(double* v) { return ReadRaw(v, sizeof(*v)); }

Status BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > (1ull << 32)) return Status::IOError("string length implausible");
  s->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(s->data(), n);
}

namespace {
constexpr uint64_t kMaxVecElems = 1ull << 33;
}  // namespace

Status BinaryReader::ReadDoubleVec(std::vector<double>* v) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxVecElems) return Status::IOError("vector length implausible");
  v->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(v->data(), n * sizeof(double));
}
Status BinaryReader::ReadFloatVec(std::vector<float>* v) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxVecElems) return Status::IOError("vector length implausible");
  v->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(v->data(), n * sizeof(float));
}
Status BinaryReader::ReadU32Vec(std::vector<uint32_t>* v) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxVecElems) return Status::IOError("vector length implausible");
  v->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(v->data(), n * sizeof(uint32_t));
}

}  // namespace qse
