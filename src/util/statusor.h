#ifndef QSE_UTIL_STATUSOR_H_
#define QSE_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace qse {

/// Either a value of type T or an error Status.  Mirrors absl::StatusOr.
///
/// Usage:
///   StatusOr<Model> m = LoadModel(path);
///   if (!m.ok()) return m.status();
///   Use(m.value());
template <typename T>
class StatusOr {
 public:
  /// Error state.  `status` must not be OK (an OK status with no value is a
  /// programming error and is converted to kInternal).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal(
          "StatusOr constructed with OK status but no value");
    }
  }

  /// Value state.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }

  /// OK when a value is held, otherwise the stored error.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, else `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or early-returns the
/// error.  `lhs` may be a declaration, e.g.
///   QSE_ASSIGN_OR_RETURN(auto model, LoadModel(path));
#define QSE_ASSIGN_OR_RETURN(lhs, expr)            \
  auto QSE_CONCAT_(_qse_sor_, __LINE__) = (expr);  \
  if (!QSE_CONCAT_(_qse_sor_, __LINE__).ok())      \
    return QSE_CONCAT_(_qse_sor_, __LINE__).status(); \
  lhs = std::move(QSE_CONCAT_(_qse_sor_, __LINE__)).value()

#define QSE_CONCAT_INNER_(a, b) a##b
#define QSE_CONCAT_(a, b) QSE_CONCAT_INNER_(a, b)

}  // namespace qse

#endif  // QSE_UTIL_STATUSOR_H_
