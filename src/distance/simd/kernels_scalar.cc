// The portable reference kernels: plain C++, no intrinsics, compiled
// with -ffp-contract=off wherever the compiler supports it.  The float64
// kernels reproduce the original four-lane span kernels (lp.cc /
// weighted_l1.cc history) operation for operation — they ARE the
// bit-exactness baseline every SIMD backend is tested against — and the
// float32/int8 kernels define the sixteen-lane reference the reduced
// precision backends must match.  See kernels.h for the full contract.
#include <cmath>
#include <cstdlib>

#include "src/distance/simd/kernels.h"
#include "src/distance/simd/lanes.h"

namespace qse {
namespace simd {
namespace {

/// Blocked four-lane float64 scan.  `term(i)` is the non-negative
/// per-dimension term; all accumulators are locals so the compiler can
/// keep the four independent chains in registers.
template <typename TermFn>
double RunF64(size_t d, double abandon, const TermFn& term) {
  double l[kF64Lanes] = {0.0, 0.0, 0.0, 0.0};
  size_t i = 0;
  while (i + kAbandonBlock <= d) {
    for (size_t hi = i + kAbandonBlock; i < hi; i += 4) {
      l[0] += term(i);
      l[1] += term(i + 1);
      l[2] += term(i + 2);
      l[3] += term(i + 3);
    }
    double partial = ReduceF64Lanes(l);
    if (partial > abandon) return partial;
  }
  for (; i + 4 <= d; i += 4) {
    l[0] += term(i);
    l[1] += term(i + 1);
    l[2] += term(i + 2);
    l[3] += term(i + 3);
  }
  for (; i < d; ++i) l[0] += term(i);
  return ReduceF64Lanes(l);
}

/// Blocked sixteen-lane float32 scan, same shape one level wider.
template <typename TermFn>
float RunF32(size_t d, float abandon, const TermFn& term) {
  float l[kF32Lanes] = {};
  size_t i = 0;
  while (i + kAbandonBlock <= d) {
    for (size_t hi = i + kAbandonBlock; i < hi; i += 16) {
      for (size_t j = 0; j < 16; ++j) l[j] += term(i + j);
    }
    float partial = ReduceF32Lanes(l);
    if (partial > abandon) return partial;
  }
  for (; i + 16 <= d; i += 16) {
    for (size_t j = 0; j < 16; ++j) l[j] += term(i + j);
  }
  for (; i < d; ++i) l[0] += term(i);
  return ReduceF32Lanes(l);
}

double L1F64(const double* q, const double* x, size_t d, double abandon) {
  return RunF64(d, abandon,
                [&](size_t i) { return std::fabs(q[i] - x[i]); });
}

double L2F64(const double* q, const double* x, size_t d, double abandon) {
  return RunF64(d, abandon, [&](size_t i) {
    double diff = q[i] - x[i];
    return diff * diff;
  });
}

double Wl1F64(const double* q, const double* x, const double* w, size_t d,
              double abandon) {
  return RunF64(d, abandon,
                [&](size_t i) { return w[i] * std::fabs(q[i] - x[i]); });
}

float L1F32(const float* q, const float* x, size_t d, float abandon) {
  return RunF32(d, abandon,
                [&](size_t i) { return std::fabs(q[i] - x[i]); });
}

float L2F32(const float* q, const float* x, size_t d, float abandon) {
  return RunF32(d, abandon, [&](size_t i) {
    float diff = q[i] - x[i];
    return diff * diff;
  });
}

float Wl1F32(const float* q, const float* x, const float* w, size_t d,
             float abandon) {
  return RunF32(d, abandon,
                [&](size_t i) { return w[i] * std::fabs(q[i] - x[i]); });
}

/// Exact integer |q - x| (range [0, 254]) as a float32 — the shared
/// first half of both int8 terms.
inline float AbsDiffI8(int8_t a, int8_t b) {
  int diff = static_cast<int>(a) - static_cast<int>(b);
  return static_cast<float>(diff < 0 ? -diff : diff);
}

float Wl1I8(const int8_t* q, const int8_t* x, const float* c, size_t d,
            float abandon) {
  return RunF32(d, abandon,
                [&](size_t i) { return c[i] * AbsDiffI8(q[i], x[i]); });
}

float Wl2I8(const int8_t* q, const int8_t* x, const float* c, size_t d,
            float abandon) {
  return RunF32(d, abandon, [&](size_t i) {
    float fd = AbsDiffI8(q[i], x[i]);
    return (c[i] * fd) * fd;
  });
}

const KernelTable kScalarTable = {
    L1F64, L2F64, Wl1F64, L1F32, L2F32, Wl1F32, Wl1I8, Wl2I8,
};

}  // namespace

const KernelTable* ScalarKernels() { return &kScalarTable; }

}  // namespace simd
}  // namespace qse
