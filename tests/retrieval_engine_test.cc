// Tests of the RetrievalEngine subsystem: batch/single parity across all
// three filter scorers and thread counts, early-abandon ScoreTopP
// equivalence with the full scan, parameter validation, and incremental
// Insert/Remove.
#include "src/retrieval/retrieval_engine.h"

#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "src/embedding/fastmap.h"
#include "src/embedding/lipschitz.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/exact_knn.h"
#include "src/retrieval/filter_refine.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace qse {
namespace {

// --- ScoreTopP vs Score + SmallestK parity ------------------------------

EmbeddedDatabase RandomDb(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  EmbeddedDatabase db(d);
  db.Resize(n);
  for (size_t i = 0; i < n; ++i) {
    double* row = db.mutable_row(i);
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform(0, 1);
  }
  return db;
}

void ExpectTopPMatchesFullScan(const FilterScorer& scorer,
                               const EmbeddedDatabase& db, const Vector& q,
                               size_t p) {
  std::vector<double> scores;
  scorer.Score(q, db, &scores);
  std::vector<ScoredIndex> expected = SmallestK(scores, p);
  std::vector<ScoredIndex> got = scorer.ScoreTopP(q, db, p);
  ASSERT_EQ(got.size(), expected.size()) << "p=" << p;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, expected[i].index) << "p=" << p << " i=" << i;
    // Bit-identical: the fused kernel accumulates in the same order.
    EXPECT_EQ(got[i].score, expected[i].score) << "p=" << p << " i=" << i;
  }
}

TEST(ScoreTopPTest, L2MatchesFullScanAcrossP) {
  EmbeddedDatabase db = RandomDb(200, 37, 1);  // d not a block multiple.
  Rng rng(2);
  Vector q(37);
  for (double& v : q) v = rng.Uniform(0, 1);
  L2Scorer scorer;
  for (size_t p : {1u, 2u, 7u, 50u, 200u, 500u}) {
    ExpectTopPMatchesFullScan(scorer, db, q, p);
  }
}

TEST(ScoreTopPTest, L1MatchesFullScanAcrossP) {
  EmbeddedDatabase db = RandomDb(150, 16, 3);
  Rng rng(4);
  Vector q(16);
  for (double& v : q) v = rng.Uniform(0, 1);
  L1Scorer scorer;
  for (size_t p : {1u, 10u, 150u}) {
    ExpectTopPMatchesFullScan(scorer, db, q, p);
  }
}

TEST(ScoreTopPTest, ExactUnderTiedScores) {
  // Duplicated rows force exact score ties; the early-abandon pass must
  // break them by row index exactly like SmallestK.
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(
      {{1, 1}, {0, 0}, {1, 1}, {0, 0}, {2, 2}, {0, 0}});
  L1Scorer scorer;
  Vector q = {0, 0};
  std::vector<ScoredIndex> top = scorer.ScoreTopP(q, db, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].index, 1u);
  EXPECT_EQ(top[1].index, 3u);
  EXPECT_EQ(top[2].index, 5u);
  ExpectTopPMatchesFullScan(scorer, db, q, 3);
  ExpectTopPMatchesFullScan(scorer, db, q, 4);
}

TEST(ScoreTopPTest, QuerySensitiveMatchesFullScan) {
  auto oracle = test::MakePlaneOracle(80, 7);
  BoostMapConfig config;
  config.num_triples = 500;
  config.k1 = 3;
  config.boost.rounds = 16;
  config.boost.embeddings_per_round = 12;
  auto artifacts = TrainBoostMap(oracle, test::Iota(20), test::Iota(30, 20),
                                 config);
  ASSERT_TRUE(artifacts.ok());
  QseEmbedderAdapter adapter(&artifacts->model);
  std::vector<size_t> db_ids = test::Iota(60);
  EmbeddedDatabase db = EmbedDatabase(adapter, oracle, db_ids);
  QuerySensitiveScorer scorer(&artifacts->model);
  for (size_t query_id : {70u, 71u, 75u}) {
    Vector fq = artifacts->model.Embed(
        [&](size_t o) { return oracle.Distance(query_id, o); });
    for (size_t p : {1u, 5u, 20u, 60u}) {
      ExpectTopPMatchesFullScan(scorer, db, fq, p);
    }
  }
}

// --- Batch / single parity across scorers and thread counts -------------

struct Stack {
  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  std::vector<size_t> query_ids;
};

Stack MakeStack(size_t n_db, size_t n_query, uint64_t seed) {
  auto oracle = test::MakePlaneOracle(n_db + n_query, seed);
  return {std::move(oracle), test::Iota(n_db), test::Iota(n_query, n_db)};
}

/// Checks RetrieveBatch == per-query Retrieve for one embedder/scorer
/// pair, across thread counts, comparing neighbors and cost accounting
/// exactly.
void ExpectBatchMatchesSingle(const Stack& s, const Embedder& embedder,
                              const FilterScorer& scorer, size_t k,
                              size_t p) {
  EmbeddedDatabase db = EmbedDatabase(embedder, s.oracle, s.db_ids);
  RetrievalEngine engine(&embedder, &scorer, &db, s.db_ids);

  std::vector<DxToDatabaseFn> queries;
  for (size_t query_id : s.query_ids) {
    queries.push_back([&oracle = s.oracle, query_id](size_t id) {
      return oracle.Distance(query_id, id);
    });
  }

  std::vector<RetrievalResponse> singles;
  for (const auto& dx : queries) {
    auto r = engine.Retrieve({dx, RetrievalOptions(k, p)});
    ASSERT_TRUE(r.ok()) << r.status();
    singles.push_back(std::move(r).value());
  }

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    auto batch = engine.RetrieveBatch(queries, test::Opts(k, p, threads));
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_EQ(batch->size(), singles.size());
    for (size_t qi = 0; qi < singles.size(); ++qi) {
      const RetrievalResponse& a = singles[qi];
      const RetrievalResponse& b = (*batch)[qi];
      EXPECT_EQ(a.exact_distances, b.exact_distances)
          << "threads=" << threads << " qi=" << qi;
      EXPECT_EQ(a.embedding_distances, b.embedding_distances);
      ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
      for (size_t i = 0; i < a.neighbors.size(); ++i) {
        EXPECT_EQ(a.neighbors[i].index, b.neighbors[i].index);
        EXPECT_EQ(a.neighbors[i].score, b.neighbors[i].score);
      }
    }
  }
}

TEST(RetrieveBatchParityTest, QuerySensitiveScorer) {
  Stack s = MakeStack(80, 12, 11);
  BoostMapConfig config;
  config.num_triples = 600;
  config.k1 = 3;
  config.boost.rounds = 16;
  config.boost.embeddings_per_round = 12;
  std::vector<size_t> sample(s.db_ids.begin(), s.db_ids.begin() + 30);
  auto artifacts = TrainBoostMap(s.oracle, sample, sample, config);
  ASSERT_TRUE(artifacts.ok());
  QseEmbedderAdapter adapter(&artifacts->model);
  QuerySensitiveScorer scorer(&artifacts->model);
  ExpectBatchMatchesSingle(s, adapter, scorer, 3, 15);
}

TEST(RetrieveBatchParityTest, L2ScorerWithFastMap) {
  Stack s = MakeStack(70, 10, 12);
  FastMapOptions options;
  options.dims = 3;
  FastMapModel model = BuildFastMap(s.oracle, s.db_ids, options);
  L2Scorer scorer;
  ExpectBatchMatchesSingle(s, model, scorer, 2, 12);
}

TEST(RetrieveBatchParityTest, L1ScorerWithLipschitz) {
  Stack s = MakeStack(70, 10, 13);
  LipschitzOptions options;
  options.dims = 4;
  LipschitzModel model = BuildLipschitz(s.db_ids, options);
  L1Scorer scorer;
  ExpectBatchMatchesSingle(s, model, scorer, 2, 12);
}

// Parameter validation (k = 0, p = 0, empty database, oversized p,
// invalid priority) lives in the cross-surface parameterized suite:
// tests/request_validation_test.cc.

struct EngineFixture {
  Stack s = MakeStack(40, 4, 21);
  FastMapOptions options;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  RetrievalEngine engine;

  EngineFixture()
      : options([] {
          FastMapOptions o;
          o.dims = 2;
          return o;
        }()),
        model(BuildFastMap(s.oracle, s.db_ids, options)),
        db(EmbedDatabase(model, s.oracle, s.db_ids)),
        engine(&model, &scorer, &db, s.db_ids) {}

  DxToDatabaseFn QueryDx(size_t query_id) const {
    return [&oracle = s.oracle, query_id](size_t id) {
      return oracle.Distance(query_id, id);
    };
  }
};

// --- Incremental Insert / Remove ----------------------------------------

TEST(RetrievalEngineTest, InsertMatchesOfflineEmbedding) {
  // Build the engine over the first 30 objects, insert 10 more online:
  // the result must equal embedding all 40 offline.
  Stack s = MakeStack(40, 4, 22);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(s.oracle, s.db_ids, options);
  L2Scorer scorer;

  std::vector<size_t> first(s.db_ids.begin(), s.db_ids.begin() + 30);
  EmbeddedDatabase db = EmbedDatabase(model, s.oracle, first);
  RetrievalEngine engine(&model, &scorer, &db, first);
  for (size_t id = 30; id < 40; ++id) {
    ASSERT_TRUE(engine
                    .Insert(id,
                            [&](size_t o) {
                              return o == id ? 0.0
                                             : s.oracle.Distance(id, o);
                            })
                    .ok());
  }
  EXPECT_EQ(engine.size(), 40u);

  EmbeddedDatabase offline = EmbedDatabase(model, s.oracle, s.db_ids);
  for (size_t row = 0; row < 40; ++row) {
    EXPECT_EQ(db.RowVector(row), offline.RowVector(row)) << "row " << row;
  }

  // Retrieval over the grown engine equals exact k-NN at p = n.
  auto r = engine.Retrieve(
      {[&](size_t id) { return s.oracle.Distance(42, id); },
       RetrievalOptions(3, engine.size())});
  ASSERT_TRUE(r.ok());
  auto exact = ExactKnn(s.oracle, 42, s.db_ids, 3);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r->neighbors[i].index, exact[i].index);
  }
}

TEST(RetrievalEngineTest, DuplicateInsertRejected) {
  EngineFixture f;
  Status s = f.engine.Insert(0, f.QueryDx(40));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RetrievalEngineTest, RemoveUnknownIdIsNotFound) {
  EngineFixture f;
  Status s = f.engine.Remove(999);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(RetrievalEngineTest, RemoveKeepsMappingConsistent) {
  Stack s = MakeStack(20, 2, 23);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(s.oracle, s.db_ids, options);
  L2Scorer scorer;
  EmbeddedDatabase db = EmbedDatabase(model, s.oracle, s.db_ids);
  EmbeddedDatabase reference = db;  // Copy before mutation.
  RetrievalEngine engine(&model, &scorer, &db, s.db_ids);

  // Remove a middle id and the last id.
  ASSERT_TRUE(engine.Remove(5).ok());
  ASSERT_TRUE(engine.Remove(19).ok());
  EXPECT_EQ(engine.size(), 18u);

  // Every surviving row must still carry its own embedding.
  for (size_t row = 0; row < engine.size(); ++row) {
    size_t id = engine.db_id_of(row);
    EXPECT_NE(id, 5u);
    EXPECT_NE(id, 19u);
    EXPECT_EQ(db.RowVector(row), reference.RowVector(id))
        << "row " << row << " id " << id;
  }

  // Retrieval at p = n equals exact k-NN over the surviving ids.
  std::vector<size_t> live_ids = engine.db_ids();
  auto r = engine.Retrieve(
      {[&](size_t id) { return s.oracle.Distance(20, id); },
       RetrievalOptions(1, engine.size())});
  ASSERT_TRUE(r.ok());
  auto exact = ExactKnnExternal(
      [&](size_t id) { return s.oracle.Distance(20, id); }, live_ids, 1);
  EXPECT_EQ(engine.db_id_of(r->neighbors[0].index),
            live_ids[exact[0].index]);
}

// --- Remove's swap-with-last bookkeeping edge cases ---------------------

/// Asserts row <-> id maps are mutually consistent and every row still
/// carries the embedding of its id.
void ExpectConsistentMapping(const RetrievalEngine& engine,
                             const EmbeddedDatabase& reference) {
  for (size_t row = 0; row < engine.size(); ++row) {
    size_t id = engine.db_id_of(row);
    EXPECT_EQ(engine.db().RowVector(row), reference.RowVector(id))
        << "row " << row << " id " << id;
  }
}

TEST(RetrievalEngineTest, RemoveLastRowMovesNothing) {
  Stack s = MakeStack(10, 1, 24);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(s.oracle, s.db_ids, options);
  L2Scorer scorer;
  EmbeddedDatabase db = EmbedDatabase(model, s.oracle, s.db_ids);
  EmbeddedDatabase reference = db;
  RetrievalEngine engine(&model, &scorer, &db, s.db_ids);

  // Id 9 occupies the last row; SwapRemove's "moved" row is the removed
  // row itself and no other mapping may change.
  ASSERT_TRUE(engine.Remove(9).ok());
  EXPECT_EQ(engine.size(), 9u);
  for (size_t row = 0; row < engine.size(); ++row) {
    EXPECT_EQ(engine.db_id_of(row), row);  // Untouched prefix.
  }
  ExpectConsistentMapping(engine, reference);
}

TEST(RetrievalEngineTest, RemoveUntilEmptyThenFailsCleanly) {
  Stack s = MakeStack(6, 1, 25);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(s.oracle, s.db_ids, options);
  L2Scorer scorer;
  EmbeddedDatabase db = EmbedDatabase(model, s.oracle, s.db_ids);
  EmbeddedDatabase reference = db;
  RetrievalEngine engine(&model, &scorer, &db, s.db_ids);

  // Drain in an order that exercises both branches repeatedly: middle
  // (swap happens), then last (no swap), until nothing is left.
  for (size_t id : {2u, 5u, 0u, 4u, 1u, 3u}) {
    ASSERT_TRUE(engine.Remove(id).ok()) << id;
    ExpectConsistentMapping(engine, reference);
  }
  EXPECT_EQ(engine.size(), 0u);
  EXPECT_TRUE(engine.db_ids().empty());

  auto r = engine.Retrieve(
      {[&](size_t id) { return s.oracle.Distance(6, id); },
       RetrievalOptions(1, 1)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  Status again = engine.Remove(2);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kNotFound);
}

TEST(RetrievalEngineTest, ReinsertingRemovedIdWorks) {
  Stack s = MakeStack(12, 2, 26);
  FastMapOptions options;
  options.dims = 2;
  FastMapModel model = BuildFastMap(s.oracle, s.db_ids, options);
  L2Scorer scorer;
  EmbeddedDatabase db = EmbedDatabase(model, s.oracle, s.db_ids);
  EmbeddedDatabase reference = db;
  RetrievalEngine engine(&model, &scorer, &db, s.db_ids);

  // Remove an id whose row gets recycled by the swap, then re-insert it:
  // it must land in a fresh row with its original embedding, and the id
  // must be unique again (a second insert is rejected).
  ASSERT_TRUE(engine.Remove(3).ok());
  EXPECT_EQ(engine.size(), 11u);
  auto dx = [&](size_t o) { return o == 3 ? 0.0 : s.oracle.Distance(3, o); };
  ASSERT_TRUE(engine.Insert(3, dx).ok());
  EXPECT_EQ(engine.size(), 12u);
  ExpectConsistentMapping(engine, reference);
  Status dup = engine.Insert(3, dx);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);

  // Remove/re-insert cycling through the *last* row too.
  size_t last_id = engine.db_id_of(engine.size() - 1);
  ASSERT_TRUE(engine.Remove(last_id).ok());
  auto dx_last = [&](size_t o) {
    return o == last_id ? 0.0 : s.oracle.Distance(last_id, o);
  };
  ASSERT_TRUE(engine.Insert(last_id, dx_last).ok());
  ExpectConsistentMapping(engine, reference);
}

}  // namespace
}  // namespace qse
