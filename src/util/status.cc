#include "src/util/status.h"

namespace qse {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace qse
