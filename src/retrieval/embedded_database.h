#ifndef QSE_RETRIEVAL_EMBEDDED_DATABASE_H_
#define QSE_RETRIEVAL_EMBEDDED_DATABASE_H_

#include <cstddef>
#include <vector>

#include "src/distance/distance.h"

namespace qse {

/// The embedded database: one d-dimensional vector per database object, in
/// db-position order.  Computed once offline (the paper's "offline
/// preprocessing step, in which we compute and store vector F(x) for every
/// database object").
///
/// Storage is a single contiguous row-major buffer rather than a
/// vector-of-vectors: the filter step is a linear scan over all rows, and
/// at production scale (n ~ 10^5..10^7, d ~ 10^2..10^3) the scan must
/// stream through memory without chasing one heap pointer per row.  Rows
/// are exposed as raw `const double*` views into the buffer.
///
/// Supports incremental Append/SwapRemove so dynamic datasets (paper
/// Sec. 7.1: adding an object online costs only its embedding) can grow
/// and shrink without re-embedding everything.  Mutation is not
/// thread-safe against concurrent scans.
class EmbeddedDatabase {
 public:
  EmbeddedDatabase() = default;
  explicit EmbeddedDatabase(size_t dims) : dims_(dims) {}

  /// Number of rows (database objects).
  size_t size() const { return size_; }
  /// Dimensionality d of every row.
  size_t dims() const { return dims_; }
  bool empty() const { return size_ == 0; }

  /// Borrowed view of row i: `dims()` contiguous doubles.  Invalidated by
  /// any mutation.
  const double* row(size_t i) const { return data_.data() + i * dims_; }
  double* mutable_row(size_t i) { return data_.data() + i * dims_; }

  /// The whole flat buffer, row-major, size() * dims() doubles.
  const std::vector<double>& data() const { return data_; }

  /// Copy of row i as an owning Vector (convenience; prefer row() in hot
  /// loops).
  Vector RowVector(size_t i) const;

  /// Pre-allocates capacity for `rows` rows.  No-op on a dimensionless
  /// database (dims() == 0: rows * 0 doubles is nothing to reserve, and
  /// advising the kernel about an empty buffer is pointless) and when the
  /// current capacity already suffices.
  void Reserve(size_t rows);

  /// Grows/shrinks to `rows` rows; new rows are zero-filled.  Used with
  /// mutable_row() to fill the database in parallel.
  void Resize(size_t rows);

  /// Appends a row; `row.size()` must equal dims().  Returns the new row's
  /// index.  O(d) amortized — the incremental insert of the dynamic
  /// dataset scenario.
  size_t Append(const Vector& row);

  /// Appends a borrowed row of dims() contiguous doubles (e.g. a row()
  /// view, even of this database) without materializing a temporary
  /// Vector.
  size_t Append(const double* row);

  /// Overwrites row i.
  void SetRow(size_t i, const Vector& row);

  /// Removes row i in O(d) by moving the last row into slot i and
  /// shrinking.  Returns the former index of the row that now occupies
  /// slot i (== i when removing the last row, i.e. nothing moved).
  /// Callers tracking row -> object-id mappings must apply the same swap.
  size_t SwapRemove(size_t i);

  /// Builds a flat database from rows-of-vectors (all rows must share one
  /// dimensionality).  Bridge from AoS call sites and tests.
  static EmbeddedDatabase FromRows(const std::vector<Vector>& rows);

 private:
  /// Asks the kernel to back the buffer with transparent huge pages once
  /// it is large enough to care (Linux, THP=madvise systems; no-op
  /// elsewhere).  A multi-hundred-MB scan through 4 KiB pages pays a TLB
  /// walk every two rows at d = 256 — measured ~8% of the whole filter
  /// step — so re-advise whenever the buffer moves or grows.
  void MaybeAdviseHugePages();

  size_t dims_ = 0;
  size_t size_ = 0;
  std::vector<double> data_;  // Row-major, size_ * dims_ doubles.
  const double* advised_ = nullptr;  // data_.data() at last madvise.
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_EMBEDDED_DATABASE_H_
