#include "src/distance/simd/dispatch.h"

#include <cstdlib>
#include <cstring>

namespace qse {
namespace simd {
namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  // Everything the kernels use: foundation plus DQ/BW/VL, the Skylake-SP
  // baseline every AVX-512 server part ships.
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0;
#else
  return false;
#endif
}

/// Highest tier that is both compiled into this binary and supported by
/// the running CPU.
SimdLevel BestAvailableLevel() {
  if (Avx512Kernels() != nullptr && CpuHasAvx512()) return SimdLevel::kAvx512;
  if (Avx2Kernels() != nullptr && CpuHasAvx2()) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdLevel ResolveSimdLevel(SimdLevel best, const char* force_scalar,
                           const char* level_override) {
  if (force_scalar != nullptr && force_scalar[0] != '\0') {
    return SimdLevel::kScalar;
  }
  if (level_override != nullptr) {
    SimdLevel requested = best;
    if (std::strcmp(level_override, "scalar") == 0) {
      requested = SimdLevel::kScalar;
    } else if (std::strcmp(level_override, "avx2") == 0) {
      requested = SimdLevel::kAvx2;
    } else if (std::strcmp(level_override, "avx512") == 0) {
      requested = SimdLevel::kAvx512;
    }
    // The override can only lower the tier: requesting more than the
    // build + CPU offer silently clamps to `best` rather than crashing
    // on an illegal instruction.
    if (requested < best) return requested;
  }
  return best;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = ResolveSimdLevel(
      BestAvailableLevel(), std::getenv("QSE_FORCE_SCALAR"),
      std::getenv("QSE_SIMD_LEVEL"));
  return level;
}

const KernelTable* KernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return ScalarKernels();
    case SimdLevel::kAvx2:
      return Avx2Kernels();
    case SimdLevel::kAvx512:
      return Avx512Kernels();
  }
  return nullptr;
}

const KernelTable* ActiveKernels() {
  static const KernelTable* table = KernelsFor(ActiveSimdLevel());
  return table;
}

}  // namespace simd
}  // namespace qse
