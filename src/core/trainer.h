#ifndef QSE_CORE_TRAINER_H_
#define QSE_CORE_TRAINER_H_

#include <vector>

#include "src/core/qs_embedding.h"
#include "src/data/dataset.h"
#include "src/util/statusor.h"

namespace qse {

/// How training triples are drawn (paper Sec. 6 / experiment tags).
enum class TripleSampling {
  kRandom,     // "Ra": uniform over X^3, as in the original BoostMap.
  kSelective,  // "Se": near/far neighbor heuristic of Sec. 6.
};

/// End-to-end configuration for training a (query-sensitive) BoostMap
/// embedding.  The four paper variants map to:
///   Ra-QI: {kRandom,    query_sensitive=false}   (original BoostMap)
///   Ra-QS: {kRandom,    query_sensitive=true}
///   Se-QI: {kSelective, query_sensitive=false}
///   Se-QS: {kSelective, query_sensitive=true}    (the proposed method)
struct BoostMapConfig {
  TripleSampling sampling = TripleSampling::kSelective;

  /// Number of training triples (the paper uses 300k at full scale, 10k
  /// in the "Quick" variant of Fig. 6).
  size_t num_triples = 20000;

  /// Sec. 6 parameter: a is drawn from q's k1 nearest neighbors in Xtr.
  /// Set from kmax * |Xtr| / |database| (paper: 5 for MNIST, 9 for the
  /// time-series data).  Ignored for kRandom sampling.
  size_t k1 = 5;

  /// Seed for triple sampling (AdaBoost has its own in `boost.seed`).
  uint64_t sampling_seed = 11;

  /// The boosting loop configuration; `boost.query_sensitive` selects
  /// QI vs QS.
  AdaBoostOptions boost;
};

/// Everything produced by a training run.
struct BoostMapArtifacts {
  QuerySensitiveEmbedding model;
  std::vector<RoundInfo> history;
  double final_training_error = 1.0;
  /// Number of exact distances evaluated for the precomputed matrices
  /// (the one-time preprocessing cost of Sec. 7).
  size_t preprocessing_distances = 0;
};

/// Trains a BoostMap/QSE model.
///
/// `candidate_ids` is the set C of candidate reference/pivot objects and
/// `train_ids` the set Xtr that triples are drawn from; both index into
/// `oracle`'s universe (typically: random samples of the database).
/// Fails with InvalidArgument on inconsistent configuration.
StatusOr<BoostMapArtifacts> TrainBoostMap(
    const DistanceOracle& oracle, const std::vector<size_t>& candidate_ids,
    const std::vector<size_t>& train_ids, const BoostMapConfig& config);

}  // namespace qse

#endif  // QSE_CORE_TRAINER_H_
