// Tests for the thread-safe logger: ParseLogLevel is pure and
// unit-testable, SetMinLogLevel filters below the threshold, and —
// the regression this file exists for — concurrent loggers never
// interleave within a line because every line goes out as one write.

#include "src/util/logging.h"

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace qse {
namespace {

TEST(ParseLogLevelTest, NamesAndDigitsParse) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kDebug), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("0", LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("1", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("2", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("3", LogLevel::kDebug), LogLevel::kError);
}

TEST(ParseLogLevelTest, UnrecognizedFallsBackToDefault) {
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("verbose", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("DEBUG", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("4", LogLevel::kInfo), LogLevel::kInfo);
}

TEST(LogLevelNameTest, RoundTripsThroughParse) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError}) {
    EXPECT_EQ(ParseLogLevel(LogLevelName(level), LogLevel::kInfo), level);
  }
}

/// Redirects stderr (fd 2) into a temp file for the enclosing scope, so
/// the test can read back exactly what the logger emitted.  The temp
/// file lives in the working directory (the build tree under ctest).
class CapturedStderr {
 public:
  CapturedStderr() {
    char path[] = "qse_logging_test_capture.XXXXXX";
    capture_fd_ = mkstemp(path);
    path_ = path;
    saved_stderr_ = dup(STDERR_FILENO);
    fflush(stderr);
    dup2(capture_fd_, STDERR_FILENO);
  }

  ~CapturedStderr() {
    Restore();
    close(capture_fd_);
    std::remove(path_.c_str());
  }

  void Restore() {
    if (saved_stderr_ < 0) return;
    fflush(stderr);
    dup2(saved_stderr_, STDERR_FILENO);
    close(saved_stderr_);
    saved_stderr_ = -1;
  }

  std::string Contents() {
    Restore();
    std::ifstream in(path_);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

 private:
  int capture_fd_ = -1;
  int saved_stderr_ = -1;
  std::string path_;
};

/// Restores the global threshold on scope exit so a failing test cannot
/// leak a filter level into later tests.
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : saved_(MinLogLevel()) {
    SetMinLogLevel(level);
  }
  ~ScopedLogLevel() { SetMinLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LinesBelowThresholdAreDropped) {
  ScopedLogLevel scoped(LogLevel::kWarn);
  CapturedStderr capture;
  QSE_DLOG("dropped debug");
  QSE_LOG("dropped info");
  QSE_LOG_WARN("kept warn");
  QSE_LOG_ERROR("kept error");
  std::string got = capture.Contents();
  EXPECT_EQ(got.find("dropped"), std::string::npos);
  EXPECT_NE(got.find("[warn"), std::string::npos);
  EXPECT_NE(got.find("kept warn"), std::string::npos);
  EXPECT_NE(got.find("kept error"), std::string::npos);
}

TEST(LoggingTest, MessageExpressionNotEvaluatedWhenFiltered) {
  ScopedLogLevel scoped(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  QSE_LOG(count());
  EXPECT_EQ(evaluations, 0);
  QSE_LOG_ERROR(count());
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, ConcurrentLoggersNeverInterleaveWithinALine) {
  // 8 threads x 200 lines, each line a thread-unique repeated token.
  // Every captured line must consist of exactly one thread's token —
  // a single torn write anywhere fails the parse below.
  ScopedLogLevel scoped(LogLevel::kInfo);
  constexpr size_t kThreads = 8;
  constexpr size_t kLines = 200;
  CapturedStderr capture;
  std::vector<std::thread> loggers;
  for (size_t t = 0; t < kThreads; ++t) {
    loggers.emplace_back([t] {
      std::string token(20, static_cast<char>('A' + t));
      for (size_t i = 0; i < kLines; ++i) {
        QSE_LOG("line " << token << " " << i);
      }
    });
  }
  for (auto& th : loggers) th.join();

  std::istringstream lines(capture.Contents());
  std::string line;
  std::vector<size_t> per_thread(kThreads, 0);
  size_t total = 0;
  while (std::getline(lines, line)) {
    ++total;
    // "[info <ts>] line <token> <i>" — intact prefix, intact token.
    ASSERT_EQ(line.rfind("[info ", 0), 0u) << "torn line: " << line;
    size_t at = line.find("line ");
    ASSERT_NE(at, std::string::npos) << "torn line: " << line;
    std::string token = line.substr(at + 5, 20);
    char c = token[0];
    ASSERT_GE(c, 'A');
    ASSERT_LT(c, static_cast<char>('A' + kThreads));
    EXPECT_EQ(token, std::string(20, c)) << "torn token: " << line;
    ++per_thread[static_cast<size_t>(c - 'A')];
  }
  EXPECT_EQ(total, kThreads * kLines);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kLines) << "thread " << t;
  }
}

}  // namespace
}  // namespace qse
