#!/usr/bin/env python3
"""Offline-friendly format gate for the C++ tree.

clang-format is the authoritative style (see .clang-format); CI runs it
with --dry-run --Werror.  This script enforces the objective subset that
needs no LLVM install — useful on build boxes without clang-format and
as a fast pre-commit check:

  * no lines over 80 columns (counted in characters, so UTF-8 prose in
    comments is not penalized for its byte length)
  * no tab characters, no trailing whitespace, no CRLF line endings
  * every file ends with exactly one newline

Usage: check_format.py [file...]   (default: every tracked .h/.cc/.cpp
under src/, tests/, bench/, examples/ of the repo root containing this
script)

Exit code 1 when any check fails, listing file:line for each violation.
"""

import pathlib
import sys

COLUMN_LIMIT = 80
EXTENSIONS = {".h", ".cc", ".cpp", ".inc"}
ROOTS = ["src", "tests", "bench", "examples"]


def default_files():
    repo = pathlib.Path(__file__).resolve().parent.parent
    files = []
    for root in ROOTS:
        for path in sorted((repo / root).rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                files.append(path)
    return files


def check_file(path):
    violations = []
    data = path.read_bytes()
    if b"\r" in data:
        violations.append(f"{path}: CRLF line endings")
    if data and not data.endswith(b"\n"):
        violations.append(f"{path}: missing final newline")
    if data.endswith(b"\n\n"):
        violations.append(f"{path}: trailing blank line at EOF")
    text = data.decode("utf-8")
    formatting_on = True  # Honor clang-format off/on markers (e.g. the
    # generated golden tables), matching what clang-format itself skips.
    for i, line in enumerate(text.split("\n")[:-1], start=1):
        if "clang-format off" in line:
            formatting_on = False
        elif "clang-format on" in line:
            formatting_on = True
        if "\t" in line:
            violations.append(f"{path}:{i}: tab character")
        if line != line.rstrip():
            violations.append(f"{path}:{i}: trailing whitespace")
        if formatting_on and len(line) > COLUMN_LIMIT:
            violations.append(
                f"{path}:{i}: {len(line)} columns (limit {COLUMN_LIMIT})")
    return violations


def main():
    files = [pathlib.Path(a) for a in sys.argv[1:]] or default_files()
    violations = []
    for path in files:
        violations.extend(check_file(path))
    for v in violations:
        print(v)
    if violations:
        print(f"\n{len(violations)} format violation(s)", file=sys.stderr)
        return 1
    print(f"{len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
