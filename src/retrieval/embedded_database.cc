#include "src/retrieval/embedded_database.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#ifdef __linux__
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "src/util/logging.h"

namespace qse {

namespace {
/// Buffers below this size are not worth a madvise syscall.
constexpr size_t kHugePageAdviseBytes = 8u << 20;
/// Smallest row capacity a copy-on-write growth allocates.
constexpr size_t kMinCapacityRows = 4;

/// Asks the kernel to back `bytes` at `p` with transparent huge pages
/// once the buffer is large enough to care (Linux, THP=madvise systems;
/// no-op elsewhere).  A multi-hundred-MB scan through 4 KiB pages pays a
/// TLB walk every two rows at d = 256 — measured ~8% of the whole filter
/// step.  Version buffers never move after allocation, so advising once
/// at construction covers their lifetime.
void MaybeAdviseHugePages(const void* p, size_t bytes) {
#ifdef __linux__
  if (bytes < kHugePageAdviseBytes) return;
  // madvise wants page-aligned addresses; round the buffer inward.  Ask
  // the OS for the page size — arm64 kernels commonly run 16K/64K pages
  // and a hardcoded 4096 would make every madvise fail with EINVAL.
  static const uintptr_t kPage =
      static_cast<uintptr_t>(sysconf(_SC_PAGESIZE));
  uintptr_t begin = reinterpret_cast<uintptr_t>(p);
  uintptr_t end = begin + bytes;
  uintptr_t aligned_begin = (begin + kPage - 1) & ~(kPage - 1);
  uintptr_t aligned_end = end & ~(kPage - 1);
  if (aligned_end > aligned_begin) {
    // Best effort: kernels without THP simply refuse.
    (void)madvise(reinterpret_cast<void*>(aligned_begin),
                  aligned_end - aligned_begin, MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}
}  // namespace

EmbeddedDatabase::Version::Version(size_t dims, size_t capacity,
                                   uint32_t shadows)
    : shadow_mask(shadows), capacity_rows(capacity) {
  // Capacity is reserved up front and never exceeded, so data()/ids()
  // pointers handed to pinned readers stay stable for the version's
  // whole lifetime.  The shadow matrices follow the same discipline.
  data.reserve(capacity * dims);
  ids.reserve(capacity);
  if (shadow_mask & kShadowFloat32) f32.reserve(capacity * dims);
  if (shadow_mask & kShadowInt8) i8.reserve(capacity * dims);
}

EmbeddedDatabase::EmbeddedDatabase(size_t dims) : dims_(dims) {
  current_.store(NewVersion(0), std::memory_order_relaxed);
}

EmbeddedDatabase::~EmbeddedDatabase() {
  delete current_.load(std::memory_order_relaxed);
  // epoch_'s destructor drains retired versions (and checks that no
  // reader is still pinned).
}

EmbeddedDatabase::EmbeddedDatabase(const EmbeddedDatabase& other)
    : dims_(other.dims_), shadow_mask_(other.shadow_mask_) {
  View view = other.PeekView();
  size_t n = view.size();
  Version* v = NewVersion(n);
  v->data.assign(view.data(), view.data() + n * dims_);
  v->ids.assign(view.ids_, view.ids_ + n);
  // Shadows copy verbatim (scales included) so a copy scores reduced
  // precision bit-identically to its source.
  if (shadow_mask_ & kShadowFloat32) {
    v->f32.assign(view.data_f32(), view.data_f32() + n * dims_);
  }
  if (shadow_mask_ & kShadowInt8) {
    v->i8.assign(view.data_i8(), view.data_i8() + n * dims_);
    v->i8_scale.assign(view.i8_scales(), view.i8_scales() + dims_);
  }
  v->size.store(n, std::memory_order_relaxed);
  v->high_water = n;
  current_.store(v, std::memory_order_relaxed);
  rows_.store(n, std::memory_order_relaxed);
}

EmbeddedDatabase& EmbeddedDatabase::operator=(const EmbeddedDatabase& other) {
  if (this == &other) return *this;
  EmbeddedDatabase copy(other);
  return *this = std::move(copy);
}

EmbeddedDatabase::EmbeddedDatabase(EmbeddedDatabase&& other) noexcept
    : dims_(other.dims_), shadow_mask_(other.shadow_mask_) {
  current_.store(other.current_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  rows_.store(other.rows_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  // Leave the source valid (and destructible): fresh empty version.
  // Versions it already retired stay in its own epoch manager.
  other.current_.store(other.NewVersion(0), std::memory_order_relaxed);
  other.rows_.store(0, std::memory_order_relaxed);
}

EmbeddedDatabase& EmbeddedDatabase::operator=(
    EmbeddedDatabase&& other) noexcept {
  if (this == &other) return *this;
  dims_ = other.dims_;
  shadow_mask_ = other.shadow_mask_;
  PublishAndRetire(other.current_.load(std::memory_order_relaxed));
  rows_.store(other.rows_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  other.current_.store(other.NewVersion(0), std::memory_order_relaxed);
  other.rows_.store(0, std::memory_order_relaxed);
  epoch_.ReclaimDrained();
  return *this;
}

EmbeddedDatabase::Snapshot EmbeddedDatabase::snapshot() const {
  // Pin first, then load: a version observed after the pin cannot be
  // reclaimed until the guard is released (see EpochManager's protocol
  // note for why the writer cannot miss this pin and free early).
  EpochManager::Guard guard = epoch_.Pin();
  const Version* v = current();
  size_t rows = v->size.load(std::memory_order_acquire);
  return Snapshot(ViewOf(v, rows), std::move(guard));
}

EmbeddedDatabase::View EmbeddedDatabase::PeekView() const {
  const Version* v = current();
  return ViewOf(v, v->size.load(std::memory_order_acquire));
}

EmbeddedDatabase::View EmbeddedDatabase::ViewOf(const Version* v,
                                                size_t rows) const {
  View view(v->data.data(), v->ids.data(), rows, dims_);
  view.shadow_mask_ = v->shadow_mask;
  if (v->shadow_mask & kShadowFloat32) view.f32_ = v->f32.data();
  if (v->shadow_mask & kShadowInt8) {
    view.i8_ = v->i8.data();
    view.i8_scale_ = v->i8_scale.data();
  }
  return view;
}

EmbeddedDatabase::Version* EmbeddedDatabase::NewVersion(
    size_t capacity_rows) const {
  Version* v = new Version(dims_, capacity_rows, shadow_mask_);
  MaybeAdviseHugePages(v->data.data(),
                       capacity_rows * dims_ * sizeof(double));
  return v;
}

void EmbeddedDatabase::PublishAndRetire(Version* next) {
  Version* old = current_.load(std::memory_order_relaxed);
  current_.store(next, std::memory_order_seq_cst);
  epoch_.Retire([old] { delete old; });
}

Vector EmbeddedDatabase::RowVector(size_t i) const {
  QSE_CHECK(i < size());
  const double* r = row(i);
  return Vector(r, r + dims_);
}

size_t EmbeddedDatabase::id_of(size_t i) const {
  QSE_CHECK(i < size());
  return current()->ids[i];
}

std::vector<size_t> EmbeddedDatabase::ids() const {
  const Version* v = current();
  return v->ids;
}

bool EmbeddedDatabase::RowFitsI8(const Version* v, const double* row) const {
  if ((v->shadow_mask & kShadowInt8) == 0) return true;
  for (size_t j = 0; j < dims_; ++j) {
    if (!FitsInt8(row[j], v->i8_scale[j])) return false;
  }
  return true;
}

void EmbeddedDatabase::FillShadowRow(Version* v, size_t i,
                                     const double* row) const {
  if (v->shadow_mask & kShadowFloat32) {
    float* dst = v->f32.data() + i * dims_;
    for (size_t j = 0; j < dims_; ++j) dst[j] = static_cast<float>(row[j]);
  }
  if (v->shadow_mask & kShadowInt8) {
    int8_t* dst = v->i8.data() + i * dims_;
    for (size_t j = 0; j < dims_; ++j) {
      dst[j] = QuantizeToInt8(row[j], v->i8_scale[j]);
    }
  }
}

void EmbeddedDatabase::RequantizeI8(Version* v, size_t n,
                                    double headroom) const {
  std::vector<double> maxabs(dims_, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* r = v->data.data() + i * dims_;
    for (size_t j = 0; j < dims_; ++j) {
      double a = std::fabs(r[j]);
      if (a > maxabs[j]) maxabs[j] = a;
    }
  }
  v->i8_scale.assign(dims_, 0.0f);
  for (size_t j = 0; j < dims_; ++j) {
    if (maxabs[j] > 0.0) {
      // maxabs/127 as float can round below the real quotient, but the
      // half-step slack of FitsInt8 (127.5 vs 127) dwarfs that half-ulp.
      v->i8_scale[j] = static_cast<float>(maxabs[j] * headroom / 127.0);
    }
  }
  v->i8.resize(n * dims_);
  for (size_t i = 0; i < n; ++i) {
    const double* r = v->data.data() + i * dims_;
    int8_t* dst = v->i8.data() + i * dims_;
    for (size_t j = 0; j < dims_; ++j) {
      dst[j] = QuantizeToInt8(r[j], v->i8_scale[j]);
    }
  }
}

void EmbeddedDatabase::EnableFilterShadows(uint32_t mask) {
  QSE_CHECK_MSG((mask & ~(kShadowFloat32 | kShadowInt8)) == 0,
                "unknown shadow bits in mask " << mask);
  shadow_mask_ |= mask;
  Version* v = current();
  size_t n = v->size.load(std::memory_order_relaxed);
  // Rebuild in place (quiescent): reserve to the version's capacity so
  // subsequent in-place Appends never reallocate the shadow buffers.
  if (shadow_mask_ & kShadowFloat32) {
    v->f32.reserve(v->capacity_rows * dims_);
    v->f32.resize(n * dims_);
    for (size_t i = 0; i < n * dims_; ++i) {
      v->f32[i] = static_cast<float>(v->data[i]);
    }
  }
  if (shadow_mask_ & kShadowInt8) {
    v->i8.reserve(v->capacity_rows * dims_);
    RequantizeI8(v, n, 1.0);
  }
  v->shadow_mask = shadow_mask_;
}

void EmbeddedDatabase::Reserve(size_t rows) {
  if (dims_ == 0) return;
  Version* v = current();
  if (rows <= v->capacity_rows) return;
  size_t n = v->size.load(std::memory_order_relaxed);
  Version* next = NewVersion(rows);
  next->data.assign(v->data.begin(), v->data.end());
  next->ids.assign(v->ids.begin(), v->ids.end());
  if (shadow_mask_ & kShadowFloat32) {
    next->f32.assign(v->f32.begin(), v->f32.end());
  }
  if (shadow_mask_ & kShadowInt8) {
    next->i8.assign(v->i8.begin(), v->i8.end());
    next->i8_scale = v->i8_scale;
  }
  next->size.store(n, std::memory_order_relaxed);
  next->high_water = n;
  PublishAndRetire(next);
}

void EmbeddedDatabase::Resize(size_t rows) {
  Version* v = current();
  size_t n = v->size.load(std::memory_order_relaxed);
  if (rows > v->capacity_rows) {
    Version* next = NewVersion(rows);
    next->data.assign(v->data.begin(), v->data.end());
    next->data.resize(rows * dims_, 0.0);
    next->ids.assign(v->ids.begin(), v->ids.end());
    for (size_t i = n; i < rows; ++i) next->ids.push_back(i);
    // New rows are all-zero: they convert to 0.0f and quantize to 0
    // under any scale, so extending the shadows with zeros keeps them
    // consistent without touching the scales.
    if (shadow_mask_ & kShadowFloat32) {
      next->f32.assign(v->f32.begin(), v->f32.end());
      next->f32.resize(rows * dims_, 0.0f);
    }
    if (shadow_mask_ & kShadowInt8) {
      next->i8.assign(v->i8.begin(), v->i8.end());
      next->i8.resize(rows * dims_, 0);
      next->i8_scale = v->i8_scale;
    }
    next->size.store(rows, std::memory_order_relaxed);
    next->high_water = rows;
    PublishAndRetire(next);
    rows_.store(rows, std::memory_order_release);
    return;
  }
  // Quiescent in-place resize within capacity: shrink, or grow into
  // slots no pinned reader can be scanning (the API contract).
  v->data.resize(rows * dims_, 0.0);
  size_t old_ids = v->ids.size();
  v->ids.resize(rows);
  for (size_t i = old_ids; i < rows; ++i) v->ids[i] = i;
  if (v->shadow_mask & kShadowFloat32) v->f32.resize(rows * dims_, 0.0f);
  if (v->shadow_mask & kShadowInt8) v->i8.resize(rows * dims_, 0);
  v->size.store(rows, std::memory_order_release);
  v->high_water = std::max(v->high_water, rows);
  rows_.store(rows, std::memory_order_release);
}

size_t EmbeddedDatabase::Append(const Vector& row, size_t id) {
  QSE_CHECK_MSG(row.size() == dims_,
                "row has " << row.size() << " dims, database has " << dims_);
  return Append(row.data(), id);
}

size_t EmbeddedDatabase::Append(const Vector& row) {
  QSE_CHECK_MSG(row.size() == dims_,
                "row has " << row.size() << " dims, database has " << dims_);
  return Append(row.data(), size());
}

size_t EmbeddedDatabase::Append(const double* row) {
  return Append(row, size());
}

size_t EmbeddedDatabase::Append(const double* row, size_t id) {
  Version* v = current();
  size_t n = v->size.load(std::memory_order_relaxed);
  // In-place fast path: the target slot has never been published from
  // this version (n == high_water) and capacity remains.  A slot below
  // high_water may still be visible to a reader pinned at the old count
  // — SwapRemove defers that physical reuse to a fresh version instead
  // of overwriting under the reader.  A row the int8 scales cannot
  // absorb takes the copy-on-write path below instead, because scales
  // are immutable while a version is visible.
  if (n < v->capacity_rows && n == v->high_water && RowFitsI8(v, row)) {
    v->data.resize((n + 1) * dims_);  // Within capacity: never moves.
    std::copy(row, row + dims_, v->data.data() + n * dims_);
    if (v->shadow_mask & kShadowFloat32) v->f32.resize((n + 1) * dims_);
    if (v->shadow_mask & kShadowInt8) v->i8.resize((n + 1) * dims_);
    // Shadow rows land before the release below, so a reader that
    // acquires the grown count sees them whole too.
    FillShadowRow(v, n, v->data.data() + n * dims_);
    v->ids.push_back(id);
    // Release: a reader that acquires the grown count sees the whole
    // row; one that reads the old count ignores the slot entirely.
    v->size.store(n + 1, std::memory_order_release);
    v->high_water = n + 1;
    rows_.store(n + 1, std::memory_order_release);
    return n;
  }
  // Copy-on-write growth (amortized doubling).  `row` may point into
  // the current version's own buffer (duplicating a row); that buffer
  // stays intact until retirement, so the copy below is safe.
  size_t capacity = std::max(
      {v->capacity_rows * 2, n + 1, kMinCapacityRows});
  Version* next = NewVersion(capacity);
  next->data.resize((n + 1) * dims_);
  std::copy(v->data.data(), v->data.data() + n * dims_, next->data.data());
  std::copy(row, row + dims_, next->data.data() + n * dims_);
  next->ids.assign(v->ids.begin(), v->ids.begin() + n);
  next->ids.push_back(id);
  if (shadow_mask_ & kShadowFloat32) {
    next->f32.resize((n + 1) * dims_);
    std::copy(v->f32.data(), v->f32.data() + n * dims_, next->f32.data());
    const double* r = next->data.data() + n * dims_;
    float* dst = next->f32.data() + n * dims_;
    for (size_t j = 0; j < dims_; ++j) dst[j] = static_cast<float>(r[j]);
  }
  if (shadow_mask_ & kShadowInt8) {
    if (RowFitsI8(v, next->data.data() + n * dims_)) {
      next->i8_scale = v->i8_scale;
      next->i8.resize((n + 1) * dims_);
      std::copy(v->i8.data(), v->i8.data() + n * dims_, next->i8.data());
      const double* r = next->data.data() + n * dims_;
      int8_t* dst = next->i8.data() + n * dims_;
      for (size_t j = 0; j < dims_; ++j) {
        dst[j] = QuantizeToInt8(r[j], next->i8_scale[j]);
      }
    } else {
      // The new row falls outside the quantization range: re-quantize
      // the whole matrix into the unpublished version with headroom, so
      // a drifting value distribution does not requant on every insert.
      RequantizeI8(next, n + 1, 1.25);
    }
  }
  next->size.store(n + 1, std::memory_order_relaxed);
  next->high_water = n + 1;
  PublishAndRetire(next);
  rows_.store(n + 1, std::memory_order_release);
  return n;
}

void EmbeddedDatabase::SetRow(size_t i, const Vector& row) {
  QSE_CHECK(i < size());
  QSE_CHECK_MSG(row.size() == dims_,
                "row has " << row.size() << " dims, database has " << dims_);
  std::copy(row.begin(), row.end(), mutable_row(i));
  Version* v = current();
  if (v->shadow_mask == 0) return;
  // Quiescent API, so rewriting shadows (and scales) in place is fine.
  if ((v->shadow_mask & kShadowInt8) && !RowFitsI8(v, row.data())) {
    RequantizeI8(v, v->size.load(std::memory_order_relaxed), 1.25);
  }
  FillShadowRow(v, i, v->data.data() + i * dims_);
}

void EmbeddedDatabase::AssignIds(const std::vector<size_t>& ids) {
  Version* v = current();
  QSE_CHECK_MSG(ids.size() == v->size.load(std::memory_order_relaxed),
                "got " << ids.size() << " ids for " << size() << " rows");
  std::copy(ids.begin(), ids.end(), v->ids.begin());
}

size_t EmbeddedDatabase::SwapRemove(size_t i) {
  Version* v = current();
  size_t n = v->size.load(std::memory_order_relaxed);
  QSE_CHECK(i < n);
  size_t last = n - 1;
  if (i == last) {
    // Removing the last row moves nothing: shrink the published count
    // and stop.  The vacated slot stays below high_water, so it is
    // never rewritten in place while a reader pinned at the old count
    // could still be scanning it.
    v->size.store(last, std::memory_order_release);
    v->data.resize(last * dims_);
    v->ids.resize(last);
    if (v->shadow_mask & kShadowFloat32) v->f32.resize(last * dims_);
    if (v->shadow_mask & kShadowInt8) v->i8.resize(last * dims_);
    rows_.store(last, std::memory_order_release);
    return last;
  }
  // Interior removal: copy-on-write with the last row moved into the
  // gap — same layout an in-place swap would produce, but readers
  // pinned on the old version keep scanning untouched memory.
  Version* next = NewVersion(std::max(v->capacity_rows, last));
  next->data.resize(last * dims_);
  std::copy(v->data.data(), v->data.data() + last * dims_,
            next->data.data());
  std::copy(v->data.data() + last * dims_, v->data.data() + n * dims_,
            next->data.data() + i * dims_);
  next->ids.assign(v->ids.begin(), v->ids.begin() + last);
  next->ids[i] = v->ids[last];
  if (shadow_mask_ & kShadowFloat32) {
    next->f32.resize(last * dims_);
    std::copy(v->f32.data(), v->f32.data() + last * dims_,
              next->f32.data());
    std::copy(v->f32.data() + last * dims_, v->f32.data() + n * dims_,
              next->f32.data() + i * dims_);
  }
  if (shadow_mask_ & kShadowInt8) {
    // Removal never violates the scale invariant; scales may merely end
    // up looser than a fresh fit, which only widens the error bound.
    next->i8_scale = v->i8_scale;
    next->i8.resize(last * dims_);
    std::copy(v->i8.data(), v->i8.data() + last * dims_, next->i8.data());
    std::copy(v->i8.data() + last * dims_, v->i8.data() + n * dims_,
              next->i8.data() + i * dims_);
  }
  next->size.store(last, std::memory_order_relaxed);
  next->high_water = last;
  PublishAndRetire(next);
  rows_.store(last, std::memory_order_release);
  return last;
}

void EmbeddedDatabase::RestoreVersion(size_t rows, const double* data,
                                      const size_t* ids, uint32_t shadow_mask,
                                      const float* f32, const int8_t* i8,
                                      const float* i8_scale) {
  QSE_CHECK_MSG((shadow_mask & ~(kShadowFloat32 | kShadowInt8)) == 0,
                "unknown shadow bits in mask " << shadow_mask);
  QSE_CHECK((shadow_mask & kShadowFloat32) == 0 || f32 != nullptr ||
            rows == 0);
  QSE_CHECK((shadow_mask & kShadowInt8) == 0 ||
            ((i8 != nullptr || rows == 0) && i8_scale != nullptr) ||
            dims_ == 0);
  shadow_mask_ = shadow_mask;
  Version* next = NewVersion(rows);
  next->shadow_mask = shadow_mask;
  next->data.assign(data, data + rows * dims_);
  next->ids.assign(ids, ids + rows);
  if (shadow_mask & kShadowFloat32) {
    next->f32.assign(f32, f32 + rows * dims_);
  }
  if (shadow_mask & kShadowInt8) {
    next->i8.assign(i8, i8 + rows * dims_);
    next->i8_scale.assign(i8_scale, i8_scale + dims_);
  }
  next->size.store(rows, std::memory_order_relaxed);
  next->high_water = rows;
  PublishAndRetire(next);
  rows_.store(rows, std::memory_order_release);
  epoch_.ReclaimDrained();
}

EmbeddedDatabase EmbeddedDatabase::FromRows(const std::vector<Vector>& rows) {
  EmbeddedDatabase db(rows.empty() ? 0 : rows[0].size());
  db.Reserve(rows.size());
  for (const Vector& r : rows) db.Append(r);
  return db;
}

}  // namespace qse
