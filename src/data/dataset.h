#ifndef QSE_DATA_DATASET_H_
#define QSE_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/distance/distance.h"

namespace qse {

/// The core library's view of the paper's "arbitrary space X with distance
/// DX": a universe of objects addressed by index, behind an opaque distance
/// oracle.  Everything above this interface (BoostMap training, FastMap,
/// filter-and-refine, evaluation) is independent of the object type.
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Number of objects in the universe.
  virtual size_t size() const = 0;

  /// DX between objects i and j.  Implementations may be asymmetric (the
  /// paper's setting allows non-metric DX); callers must not assume
  /// Distance(i, j) == Distance(j, i) unless they know the measure.
  virtual double Distance(size_t i, size_t j) const = 0;
};

/// Binds a concrete object container and a DistanceFn into an oracle.
template <typename T>
class ObjectOracle : public DistanceOracle {
 public:
  ObjectOracle(std::vector<T> objects, DistanceFn<T> distance)
      : objects_(std::move(objects)), distance_(std::move(distance)) {}

  size_t size() const override { return objects_.size(); }
  double Distance(size_t i, size_t j) const override {
    return distance_(objects_[i], objects_[j]);
  }

  const std::vector<T>& objects() const { return objects_; }
  const T& object(size_t i) const { return objects_[i]; }

  /// Distance from an out-of-universe query object to database object j;
  /// used to embed previously unseen queries (paper Sec. 8, embedding
  /// step).
  double DistanceToObject(const T& query, size_t j) const {
    return distance_(query, objects_[j]);
  }

 private:
  std::vector<T> objects_;
  DistanceFn<T> distance_;
};

/// Decorator that counts every exact-distance evaluation.  The paper's
/// efficiency metric is precisely "number of exact distance computations
/// per query" (Sec. 9); benches wrap their oracles in this.
class CountingOracle : public DistanceOracle {
 public:
  explicit CountingOracle(const DistanceOracle* inner) : inner_(inner) {}

  size_t size() const override { return inner_->size(); }
  double Distance(size_t i, size_t j) const override {
    ++count_;
    return inner_->Distance(i, j);
  }

  uint64_t count() const { return count_; }
  void ResetCount() { count_ = 0; }

 private:
  const DistanceOracle* inner_;
  mutable uint64_t count_ = 0;
};

/// Oracle defined by a plain function; convenient in tests.
class FunctionOracle : public DistanceOracle {
 public:
  using Fn = std::function<double(size_t, size_t)>;
  FunctionOracle(size_t n, Fn fn) : n_(n), fn_(std::move(fn)) {}

  size_t size() const override { return n_; }
  double Distance(size_t i, size_t j) const override { return fn_(i, j); }

 private:
  size_t n_;
  Fn fn_;
};

}  // namespace qse

#endif  // QSE_DATA_DATASET_H_
