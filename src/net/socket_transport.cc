#include "src/net/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace qse {
namespace net {
namespace {

Status SetTimeoutOpt(int fd, int opt, std::chrono::nanoseconds timeout) {
  // 0 would mean "block forever" to the kernel; clamp to the smallest
  // representable timeout instead so a spent deadline still errors out.
  if (timeout.count() <= 0) timeout = std::chrono::microseconds(1);
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(
      std::chrono::duration_cast<std::chrono::seconds>(timeout).count());
  tv.tv_usec = static_cast<suseconds_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(timeout).count() %
      1000000);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  if (setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv)) != 0) {
    return StatusFromErrno("setsockopt", errno);
  }
  return Status::OK();
}

Status SetNonBlocking(int fd, bool enable) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return StatusFromErrno("fcntl(F_GETFL)", errno);
  flags = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd, F_SETFL, flags) < 0) {
    return StatusFromErrno("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

}  // namespace

Status StatusFromErrno(const std::string& context, int err) {
  const std::string msg = context + ": " + strerror(err);
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case EPIPE:
    case ENETUNREACH:
    case EHOSTUNREACH:
    case ENOTCONN:
    case ESHUTDOWN:
      return Status::Unavailable(msg);
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ETIMEDOUT:
      return Status::DeadlineExceeded(msg);
    default:
      return Status::IOError(msg);
  }
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    options_ = other.options_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<Socket> Socket::Connect(const std::string& host, uint16_t port,
                                 const TransportOptions& options) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 literal: " + host);
  }

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return StatusFromErrno("socket", errno);
  Socket sock(fd, options);  // RAII from here on

  // Non-blocking connect bounded by connect_timeout: a plain connect()
  // would block for the kernel's SYN retry schedule (minutes).
  QSE_RETURN_IF_ERROR(SetNonBlocking(fd, true));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS) return StatusFromErrno("connect", errno);
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int ready =
        poll(&pfd, 1, static_cast<int>(options.connect_timeout.count()));
    if (ready < 0) return StatusFromErrno("poll(connect)", errno);
    if (ready == 0) {
      return Status::DeadlineExceeded("connect to " + host + ":" +
                                      std::to_string(port) + " timed out");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
      return StatusFromErrno("getsockopt(SO_ERROR)", errno);
    }
    if (soerr != 0) return StatusFromErrno("connect", soerr);
  }
  QSE_RETURN_IF_ERROR(SetNonBlocking(fd, false));

  QSE_RETURN_IF_ERROR(SetTimeoutOpt(fd, SO_RCVTIMEO, options.read_timeout));
  QSE_RETURN_IF_ERROR(SetTimeoutOpt(fd, SO_SNDTIMEO, options.write_timeout));
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status Socket::SendFrame(const std::string& payload) {
  if (fd_ < 0) return Status::Unavailable("socket is closed");
  if (payload.size() > options_.max_frame_bytes) {
    return Status::InvalidArgument("frame too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  QSE_RETURN_IF_ERROR(SendAll(&len, sizeof(len)));
  return SendAll(payload.data(), payload.size());
}

StatusOr<std::string> Socket::RecvFrame() {
  if (fd_ < 0) return Status::Unavailable("socket is closed");
  uint32_t len = 0;
  QSE_RETURN_IF_ERROR(RecvAll(&len, sizeof(len), /*at_frame_start=*/true));
  if (len > options_.max_frame_bytes) {
    return Status::DataLoss("incoming frame claims " + std::to_string(len) +
                            " bytes, cap is " +
                            std::to_string(options_.max_frame_bytes));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    QSE_RETURN_IF_ERROR(RecvAll(&payload[0], len, /*at_frame_start=*/false));
  }
  return payload;
}

Status Socket::SetReadTimeout(std::chrono::nanoseconds timeout) {
  if (fd_ < 0) return Status::Unavailable("socket is closed");
  return SetTimeoutOpt(fd_, SO_RCVTIMEO, timeout);
}

bool Socket::StaleWhileIdle() const {
  if (fd_ < 0) return true;
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  // Readable / HUP / error / poll failure: anything but a quiet socket.
  return ::poll(&pfd, 1, 0) != 0;
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SendAll(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-killing
    // SIGPIPE — mandatory in a multi-replica client where peers die.
    ssize_t r = send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return StatusFromErrno("send", errno);
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t n, bool at_frame_start) {
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < n) {
    ssize_t r = recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return StatusFromErrno("recv", errno);
    }
    if (r == 0) {
      // Clean FIN.  Between frames that's a normal close; inside a
      // frame the stream lied about its own length.
      if (at_frame_start && got == 0) {
        return Status::Unavailable("peer closed connection");
      }
      return Status::DataLoss("peer closed mid-frame (" + std::to_string(got) +
                              " of " + std::to_string(n) + " bytes)");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

ServerSocket& ServerSocket::operator=(ServerSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    options_ = other.options_;
    shutdown_ = std::move(other.shutdown_);
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

StatusOr<ServerSocket> ServerSocket::Listen(uint16_t port,
                                            const TransportOptions& options) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return StatusFromErrno("socket", errno);
  ServerSocket server(fd, port, options);

  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    return StatusFromErrno("bind", errno);
  }
  if (listen(fd, 128) != 0) return StatusFromErrno("listen", errno);

  // Ephemeral bind: read back the kernel's pick.
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    return StatusFromErrno("getsockname", errno);
  }
  server.port_ = ntohs(addr.sin_port);

  // Non-blocking accept + poll so Shutdown from another thread is
  // noticed within one poll tick rather than at the next connection.
  QSE_RETURN_IF_ERROR(SetNonBlocking(fd, true));
  return server;
}

StatusOr<Socket> ServerSocket::Accept() {
  if (fd_ < 0 || shutdown_ == nullptr) {
    return Status::Unavailable("listener is closed");
  }
  while (!shutdown_->load(std::memory_order_acquire)) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return StatusFromErrno("poll(accept)", errno);
    }
    if (ready == 0) continue;  // tick: re-check the shutdown flag
    int conn = accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      return StatusFromErrno("accept", errno);
    }
    Socket sock(conn, options_);
    Status status = SetTimeoutOpt(conn, SO_RCVTIMEO, options_.read_timeout);
    if (status.ok()) {
      status = SetTimeoutOpt(conn, SO_SNDTIMEO, options_.write_timeout);
    }
    if (!status.ok()) return status;
    int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
  }
  return Status::Unavailable("listener shut down");
}

void ServerSocket::Shutdown() {
  if (shutdown_ != nullptr) {
    shutdown_->store(true, std::memory_order_release);
  }
}

void ServerSocket::Close() {
  Shutdown();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace qse
