#include "src/net/remote_backend.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/obs/trace.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace qse {
namespace net {
namespace {

uint64_t NsSince(MonotonicClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now() - start)
          .count());
}

bool IsReadOp(WireOp op) {
  return op == WireOp::kScan || op == WireOp::kRetrieve || op == WireOp::kInfo;
}

/// Transport faults where a second attempt over a fresh connection can
/// honestly succeed.  Deadline expiry is excluded: retrying a spent
/// budget only spends more of it.
bool IsRetryableTransportError(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDataLoss;
}

}  // namespace

RemoteRetrievalBackend::RemoteRetrievalBackend(const Embedder* embedder,
                                               std::string host, uint16_t port,
                                               RemoteBackendOptions options)
    : embedder_(embedder),
      host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      rpcs_total_(
          obs::MetricRegistry::Global().GetCounter("qse_remote_rpcs_total")),
      rpc_errors_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_remote_rpc_errors_total")),
      rpc_retries_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_remote_rpc_retries_total")),
      reconnects_total_(obs::MetricRegistry::Global().GetCounter(
          "qse_remote_reconnects_total")),
      rpc_latency_ns_(obs::MetricRegistry::Global().GetHistogram(
          "qse_remote_rpc_latency_ns", obs::DefaultLatencyBoundariesNs())) {}

StatusOr<Socket> RemoteRetrievalBackend::Dial(uint64_t deadline_budget_ns)
    const {
  // Dial with doubling backoff: a restarted peer (kill, WAL recovery,
  // re-listen) comes back within a few backoff periods, and since
  // nothing has been sent yet this is safe for every op, mutations
  // included.  The loop respects the deadline budget — waiting out a
  // backoff the request cannot afford just fails it later.
  const size_t attempts =
      options_.reconnect_attempts == 0 ? 1 : options_.reconnect_attempts;
  std::chrono::nanoseconds backoff = options_.reconnect_backoff;
  const MonotonicClock::time_point dial_start = MonotonicClock::now();
  for (size_t attempt = 0;; ++attempt) {
    StatusOr<Socket> dialed = Socket::Connect(host_, port_, options_.transport);
    if (dialed.ok()) return dialed;
    const bool budget_left =
        deadline_budget_ns == 0 ||
        NsSince(dial_start) + static_cast<uint64_t>(backoff.count()) <
            deadline_budget_ns;
    if (attempt + 1 >= attempts ||
        !IsRetryableTransportError(dialed.status()) || !budget_left) {
      return dialed.status();
    }
    reconnects_total_->Increment();
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
}

StatusOr<WireResponse> RemoteRetrievalBackend::CallOnce(
    const WireRequest& request, const std::string& payload) const {
  // Up to two SEND attempts: a pooled connection may have died while
  // idle (the peer restarted between requests).  A send failure on a
  // pooled socket is pre-delivery — the request never reached a live
  // connection — so retrying it over a fresh dial is safe for every op,
  // mutations included.  Failures AFTER a successful send are never
  // retried here; Call's read-only retry policy owns those.
  for (int attempt = 0;; ++attempt) {
    Socket sock;
    bool pooled = false;
    {
      // Checkout with a health check: a pooled connection whose peer died
      // while it sat idle (restart between requests) shows a pending EOF
      // — discard it instead of sending into it, so even a MUTATION's
      // first attempt after a peer restart lands on a fresh dial rather
      // than a socket known to be dead.
      std::lock_guard<std::mutex> lock(pool_mu_);
      while (!pool_.empty()) {
        Socket candidate = std::move(pool_.back());
        pool_.pop_back();
        if (!candidate.StaleWhileIdle()) {
          sock = std::move(candidate);
          pooled = true;
          break;
        }
        reconnects_total_->Increment();
      }
    }
    if (!sock.valid()) {
      StatusOr<Socket> dialed = Dial(request.deadline_budget_ns);
      QSE_RETURN_IF_ERROR(dialed.status());
      sock = std::move(dialed).value();
    }

    // Bound the response wait by the remaining deadline budget, so a
    // slow peer fails this call at the deadline instead of the full
    // transport timeout.
    std::chrono::nanoseconds read_timeout = options_.transport.read_timeout;
    if (request.deadline_budget_ns > 0) {
      read_timeout = std::min(
          read_timeout,
          std::chrono::nanoseconds(request.deadline_budget_ns));
    }
    Status status = sock.SetReadTimeout(read_timeout);
    if (status.ok()) status = sock.SendFrame(payload);
    if (!status.ok()) {
      if (pooled && attempt == 0 && IsRetryableTransportError(status)) {
        continue;  // stale pooled socket: redial and resend
      }
      return status;
    }
    StatusOr<std::string> frame = sock.RecvFrame();
    if (!frame.ok()) return frame.status();  // dead socket stays out of pool

    WireResponse response;
    Status decoded = DecodeResponse(frame.value(), &response);
    if (!decoded.ok()) return decoded;  // framing broken: drop the socket

    std::lock_guard<std::mutex> lock(pool_mu_);
    pool_.push_back(std::move(sock));
    return response;
  }
}

StatusOr<WireResponse> RemoteRetrievalBackend::Call(WireRequest request) const {
  rpcs_total_->Increment();
  const MonotonicClock::time_point start = MonotonicClock::now();

  // Deadline -> remaining budget, computed as late as possible so queue
  // and embed time already spent is reflected.
  if (request.options.deadline != RetrievalClock::time_point::max()) {
    auto remaining = request.options.deadline - MonotonicClock::now();
    if (remaining.count() <= 0) {
      rpc_errors_total_->Increment();
      return Status::DeadlineExceeded("deadline expired before RPC send");
    }
    request.deadline_budget_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(remaining)
            .count());
  }

  StatusOr<WireResponse> result = CallOnce(request, EncodeRequest(request));
  if (!result.ok() && options_.retry_reads && IsReadOp(request.op) &&
      IsRetryableTransportError(result.status())) {
    rpc_retries_total_->Increment();
    result = CallOnce(request, EncodeRequest(request));
  }
  if (!result.ok()) {
    rpc_errors_total_->Increment();
    return result.status();
  }
  rpc_latency_ns_->Record(NsSince(start));
  const WireResponse& response = result.value();
  if (response.code != StatusCode::kOk) {
    // An application-level error the server answered with; surface it
    // as-is — it is the backend's own contract (InvalidArgument,
    // FailedPrecondition, NotFound, ...) speaking through the wire.
    rpc_errors_total_->Increment();
    return Status(response.code, response.message);
  }
  return result;
}

StatusOr<ScanCandidatesResult> RemoteRetrievalBackend::ScanCandidates(
    const Vector& embedded_query, const RetrievalOptions& options) const {
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  WireRequest request;
  request.op = WireOp::kScan;
  request.options = options;
  request.options.audit_monitor = nullptr;  // client-side only
  request.query = embedded_query;
  auto response = Call(std::move(request));
  QSE_RETURN_IF_ERROR(response.status());
  ScanCandidatesResult result;
  result.candidates = std::move(response.value().neighbors);
  result.rows = static_cast<size_t>(response.value().rows);
  result.rows_pruned = static_cast<size_t>(response.value().rows_pruned);
  return result;
}

StatusOr<RetrievalResponse> RemoteRetrievalBackend::Retrieve(
    const RetrievalRequest& request) const {
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(request.options));
  obs::RequestTrace* trace = request.trace.get();

  // Embed client-side (the dx closure stays home), exactly the
  // monolithic engine's first step.
  size_t embed_cost = 0;
  uint64_t span_start = obs::TraceNowNs(trace);
  Vector fq = embedder_->Embed(request.dx, &embed_cost);
  obs::TraceMark(trace, "embed", span_start);

  WireRequest rpc;
  rpc.op = WireOp::kScan;
  rpc.options = request.options;
  rpc.options.audit_monitor = nullptr;
  rpc.want_trace = trace != nullptr;
  rpc.query = std::move(fq);

  span_start = obs::TraceNowNs(trace);
  auto call = Call(std::move(rpc));
  obs::TraceMark(trace, "rpc_scan", span_start);
  QSE_RETURN_IF_ERROR(call.status());
  WireResponse& scan = call.value();

  if (trace != nullptr) {
    // Graft server-side spans: their times are relative to the server's
    // receipt of the request, which from this trace's view is no earlier
    // than the RPC span's start.  Clocks of two processes are never
    // compared — only the server's own durations ride on our anchor.
    for (const WireSpan& span : scan.spans) {
      obs::TraceSpan grafted;
      grafted.name = obs::InternString("remote:" + span.name);
      grafted.start_ns = span_start + span.start_ns;
      grafted.dur_ns = span.dur_ns;
      grafted.tid = span.tid;
      trace->AddSpan(std::move(grafted));
    }
  }

  if (scan.rows == 0 && scan.neighbors.empty()) {
    // The remote scan contract is OK-empty (a shard in a scatter must
    // not fail the query); a STANDALONE retrieval against an empty
    // database keeps the engines' FailedPrecondition contract.
    return Status::FailedPrecondition("embedded database is empty");
  }

  // Refine with the caller's dx — identical to the engines' refine step.
  RetrievalResponse result;
  span_start = obs::TraceNowNs(trace);
  std::vector<ScoredIndex>& candidates = scan.neighbors;
  std::vector<ScoredIndex> refined;
  refined.reserve(candidates.size());
  for (const ScoredIndex& c : candidates) {
    refined.push_back({c.index, request.dx(c.index)});
  }
  std::sort(refined.begin(), refined.end());
  if (refined.size() > request.options.k) refined.resize(request.options.k);
  obs::TraceMark(trace, "refine", span_start,
                 {obs::TraceArg{"candidates",
                                static_cast<int64_t>(candidates.size()),
                                nullptr}});
  result.exact_distances = embed_cost + candidates.size();
  result.embedding_distances = embed_cost;
  if (request.options.want_stats) {
    // The remote database is one pseudo-shard, mirroring the monolithic
    // engine's want_stats shape.
    result.shard_stats = {
        {static_cast<size_t>(scan.rows), candidates.size()}};
  }
  result.neighbors = std::move(refined);
  result.trace = request.trace;
  return result;
}

StatusOr<std::vector<RetrievalResponse>> RemoteRetrievalBackend::RetrieveBatch(
    const std::vector<DxToDatabaseFn>& queries,
    const RetrievalOptions& options) const {
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  std::vector<RetrievalResponse> results(queries.size());
  std::mutex error_mu;
  Status first_error = Status::OK();
  ParallelForGrain(
      0, queries.size(), 2,
      [&](size_t i) {
        RetrievalRequest one;
        one.dx = queries[i];
        one.options = options;
        StatusOr<RetrievalResponse> r = Retrieve(one);
        if (!r.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = r.status();
          return;
        }
        results[i] = std::move(r).value();
      },
      options.num_threads);
  QSE_RETURN_IF_ERROR(first_error);
  return results;
}

StatusOr<RetrievalResponse> RemoteRetrievalBackend::RetrieveRaw(
    const std::vector<double>& raw_query,
    const RetrievalOptions& options) const {
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  WireRequest request;
  request.op = WireOp::kRetrieve;
  request.options = options;
  request.options.audit_monitor = nullptr;
  request.query = raw_query;
  auto call = Call(std::move(request));
  QSE_RETURN_IF_ERROR(call.status());
  WireResponse& wire = call.value();
  RetrievalResponse result;
  result.neighbors = std::move(wire.neighbors);
  result.exact_distances = static_cast<size_t>(wire.exact_distances);
  result.embedding_distances = static_cast<size_t>(wire.embedding_distances);
  result.shard_stats = std::move(wire.shard_stats);
  return result;
}

Status RemoteRetrievalBackend::Insert(size_t db_id, const DxToDatabaseFn& dx) {
  Vector row = embedder_->Embed(dx);
  return InsertEmbedded(db_id, row);
}

Status RemoteRetrievalBackend::InsertEmbedded(size_t db_id,
                                              const Vector& embedded_row) {
  WireRequest request;
  request.op = WireOp::kInsert;
  request.db_id = db_id;
  request.query = embedded_row;
  return Call(std::move(request)).status();
}

Status RemoteRetrievalBackend::Remove(size_t db_id) {
  WireRequest request;
  request.op = WireOp::kRemove;
  request.db_id = db_id;
  return Call(std::move(request)).status();
}

size_t RemoteRetrievalBackend::size() const {
  WireRequest request;
  request.op = WireOp::kInfo;
  // size() feeds load hints and routing, not correctness; an
  // unreachable peer reads as empty rather than erroring.
  auto call = Call(std::move(request));
  if (!call.ok()) return 0;
  return static_cast<size_t>(call.value().db_size);
}

}  // namespace net
}  // namespace qse
