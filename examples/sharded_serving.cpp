// Sharded serving: scatter/gather retrieval over per-shard engines.
//
// One RetrievalEngine scans all n embedded vectors serially, so
// single-query latency grows with the database.  The serving layer
// partitions the database across S shards, fans one query's filter step
// out across them in parallel, merges the per-shard top-p lists with a
// k-way heap merge, and refines the merged candidates once — bit-identical
// results to the monolithic engine at equal p, at a fraction of the
// single-query latency on multi-core hardware.
//
// Both engines implement RetrievalBackend, so serving code is written
// once and the engine is swapped behind the interface.
//
// Build: cmake --build build && ./build/examples/sharded_serving
#include <cstdio>
#include <numeric>
#include <vector>

#include "src/data/dataset.h"
#include "src/distance/lp.h"
#include "src/embedding/fastmap.h"
#include "src/retrieval/filter_refine.h"
#include "src/serving/sharded_retrieval_engine.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace {

/// Serving code written once against the interface: retrieve every query,
/// return (db id of best neighbor, total exact-distance cost).
std::pair<std::vector<size_t>, size_t> Serve(
    const qse::RetrievalBackend& backend,
    const std::vector<qse::DxToDatabaseFn>& queries, size_t k, size_t p) {
  auto batch = backend.RetrieveBatch(queries, qse::RetrievalOptions(k, p));
  if (!batch.ok()) {
    std::fprintf(stderr, "retrieval failed: %s\n",
                 batch.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<size_t> best;
  size_t cost = 0;
  for (const qse::RetrievalResponse& r : *batch) {
    best.push_back(backend.db_id_of(r.neighbors[0].index));
    cost += r.exact_distances;
  }
  return {std::move(best), cost};
}

}  // namespace

int main() {
  using namespace qse;

  // --- Data: 30,000 random points in the unit square, embedded with
  // FastMap into 8 dims (any Embedder/FilterScorer pair works the same).
  const size_t n = 30000, num_queries = 64, k = 3, p = 300;
  Rng rng(42);
  std::vector<Vector> points;
  for (size_t i = 0; i < n + num_queries; ++i) {
    points.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  ObjectOracle<Vector> oracle(std::move(points), L2Distance);
  std::vector<size_t> db_ids(n);
  std::iota(db_ids.begin(), db_ids.end(), 0);

  FastMapOptions fm;
  fm.dims = 8;
  FastMapModel model = BuildFastMap(oracle, db_ids, fm);
  EmbeddedDatabase embedded = EmbedDatabase(model, oracle, db_ids);
  L2Scorer scorer;

  std::vector<DxToDatabaseFn> queries;
  for (size_t q = n; q < n + num_queries; ++q) {
    queries.push_back(
        [&oracle, q](size_t id) { return oracle.Distance(q, id); });
  }

  // --- Backend 1: the monolithic engine.
  RetrievalEngine mono(&model, &scorer, &embedded, db_ids);

  // --- Backend 2: the same database partitioned across 8 shards by id
  // hash (deterministic: any process sharding these ids agrees).
  ShardedEngineOptions options;
  options.num_shards = 8;
  ShardedRetrievalEngine sharded(&model, &scorer, embedded, db_ids, options);

  std::printf("database: n=%zu, d=%zu, %zu shards, sizes:", n,
              embedded.dims(), sharded.num_shards());
  for (size_t s : sharded.shard_sizes()) std::printf(" %zu", s);
  std::printf("\n");

  // --- Same serving code, either backend, identical answers.
  Timer t_mono;
  auto [mono_best, mono_cost] = Serve(mono, queries, k, p);
  double ms_mono = t_mono.Millis();
  Timer t_sharded;
  auto [sharded_best, sharded_cost] = Serve(sharded, queries, k, p);
  double ms_sharded = t_sharded.Millis();

  size_t agree = 0;
  for (size_t i = 0; i < mono_best.size(); ++i) {
    if (mono_best[i] == sharded_best[i]) ++agree;
  }
  std::printf("parity: %zu/%zu identical nearest neighbors, identical cost: "
              "%s (%zu exact distances)\n",
              agree, mono_best.size(),
              mono_cost == sharded_cost ? "yes" : "NO", sharded_cost);
  std::printf("batch of %zu queries: monolithic %.1f ms, sharded %.1f ms\n",
              num_queries, ms_mono, ms_sharded);

  // --- Per-shard scan stats: the load-balancing signal.  A shard that
  // keeps winning most of the merged top-p holds a hot region.  Stats
  // ride on the one request envelope: set want_stats, read shard_stats.
  RetrievalOptions with_stats(k, p);
  with_stats.want_stats = true;
  auto one = sharded.Retrieve({queries[0], with_stats});
  if (one.ok()) {
    std::printf("per-shard top-%zu contributions for one query:", p);
    for (const ShardScanStats& s : one->shard_stats) {
      std::printf(" %zu/%zu", s.candidates, s.rows);
    }
    std::printf("\n");
  }

  // --- Mutations route through the same interface: inserts land on a
  // shard chosen by the assignment policy, removes find their shard.
  RetrievalBackend& backend = sharded;
  Status st = backend.Remove(7);
  std::printf("Remove(7) through the interface: %s; size now %zu\n",
              st.ok() ? "ok" : st.ToString().c_str(), backend.size());
  return 0;
}
