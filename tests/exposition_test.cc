// Exporter edge cases: label-value escaping (the malformed-label
// regression), float gauges in both formats, empty and counter-only
// registries, the zero-observation histogram that must not leak NaN into
// JSON, and the qse_build_info identity gauge.
#include "src/obs/exposition.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/build_info.h"
#include "src/obs/metric_registry.h"

namespace qse {
namespace obs {
namespace {

TEST(LabelEscapingTest, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("line1\nline2"), "line1\\nline2");
  // Backslash first, so an input that already looks escaped is escaped
  // again rather than passed through.
  EXPECT_EQ(EscapeLabelValue("\\n"), "\\\\n");
}

TEST(LabelEscapingTest, PromLabelBuildsQuotedEscapedPair) {
  EXPECT_EQ(PromLabel("tenant", "acme"), "tenant=\"acme\"");
  EXPECT_EQ(PromLabel("tenant", "a\"b\\c\nd"),
            "tenant=\"a\\\"b\\\\c\\nd\"");
}

TEST(LabelEscapingTest, MalformedTenantCannotBreakExposition) {
  // The regression this satellite exists for: a tenant id carrying a
  // quote and a newline must reach the text format as ONE well-formed
  // series line, not as an unterminated label plus a stray line.
  MetricRegistry registry;
  const std::string hostile = "evil\"} 999\nqse_fake_total 1";
  registry
      .GetCounter("qse_tenant_total{" + PromLabel("tenant", hostile) + "}")
      ->Add(3);
  std::string text = PrometheusText(registry);
  EXPECT_NE(
      text.find("qse_tenant_total{tenant=\"evil\\\"} 999\\nqse_fake_total "
                "1\"} 3"),
      std::string::npos);
  // The injected payload did not become its own series.
  EXPECT_EQ(text.find("\nqse_fake_total"), std::string::npos);
  // Exactly one non-comment line: no label value opened a second line.
  size_t series_lines = 0;
  for (size_t pos = 0; pos < text.size();) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (eol > pos && text[pos] != '#') ++series_lines;
    pos = eol + 1;
  }
  EXPECT_EQ(series_lines, 1u);
}

TEST(ExpositionEdgeTest, EmptyRegistryProducesValidOutputs) {
  MetricRegistry registry;
  EXPECT_EQ(PrometheusText(registry), "");
  std::string json = MetricsJson(registry);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(json.find("NaN"), std::string::npos);
}

TEST(ExpositionEdgeTest, CounterOnlyRegistryExportsJustCounters) {
  MetricRegistry registry;
  registry.GetCounter("qse_only_total")->Add(4);
  std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE qse_only_total counter"), std::string::npos);
  EXPECT_NE(text.find("qse_only_total 4"), std::string::npos);
  EXPECT_EQ(text.find("gauge"), std::string::npos);
  EXPECT_EQ(text.find("histogram"), std::string::npos);
  std::string json = MetricsJson(registry);
  EXPECT_NE(json.find("\"qse_only_total\": 4"), std::string::npos);
}

TEST(ExpositionEdgeTest, ZeroObservationHistogramEmitsNoNaNJson) {
  // An empty histogram has no defensible quantile; the JSON exporter
  // must write finite placeholders — JSON has no NaN literal, and one
  // would corrupt the whole bench artifact for every downstream parser.
  MetricRegistry registry;
  registry.GetHistogram("qse_idle_lat", {10.0, 20.0});
  std::string json = MetricsJson(registry);
  EXPECT_EQ(json.find("NaN"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"qse_idle_lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  // Prometheus text MAY say NaN (the format allows it); the series
  // structure itself must still be complete.
  std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("qse_idle_lat_count 0"), std::string::npos);
  EXPECT_NE(text.find("qse_idle_lat_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
}

TEST(ExpositionEdgeTest, FloatGaugeExportsInBothFormats) {
  MetricRegistry registry;
  registry.GetFloatGauge("qse_quality_recall_at_k")->Set(0.875);
  registry.GetFloatGauge("qse_quality_zero")->Set(0.0);
  std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE qse_quality_recall_at_k gauge"),
            std::string::npos);
  EXPECT_NE(text.find("qse_quality_recall_at_k 0.875"), std::string::npos);
  EXPECT_NE(text.find("qse_quality_zero 0"), std::string::npos);
  std::string json = MetricsJson(registry);
  EXPECT_NE(json.find("\"qse_quality_recall_at_k\": 0.875"),
            std::string::npos);
}

TEST(BuildInfoTest, RegistersLabeledGaugeSetToOne) {
  MetricRegistry registry;
  Gauge* gauge = RegisterBuildInfo(&registry);
  EXPECT_EQ(gauge->Value(), 1);
  // Idempotent: same gauge back.
  EXPECT_EQ(RegisterBuildInfo(&registry), gauge);
  std::string name = BuildInfoMetricName();
  EXPECT_EQ(name.rfind("qse_build_info{", 0), 0u);
  EXPECT_NE(name.find("version=\""), std::string::npos);
  EXPECT_NE(name.find("commit=\""), std::string::npos);
  EXPECT_NE(name.find("simd=\""), std::string::npos);
  EXPECT_NE(name.find("tracing=\""), std::string::npos);
  std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE qse_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find(name + " 1"), std::string::npos);
}

TEST(BuildInfoTest, GlobalRegistryCarriesBuildInfoAtStartup) {
  // MetricRegistry::Global() self-registers the identity gauge on first
  // use, so every exported snapshot names the binary that produced it.
  std::string text = PrometheusText(MetricRegistry::Global());
  EXPECT_NE(text.find("qse_build_info{"), std::string::npos);
  EXPECT_NE(text.find(BuildInfoMetricName() + " 1"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace qse
