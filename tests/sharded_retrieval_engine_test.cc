// Tests of the sharded serving layer: scatter/gather retrieval must be
// bit-identical to the monolithic RetrievalEngine at equal p — same
// database ids, same exact-distance scores, same cost accounting — across
// shard counts, scatter thread counts, both assignment policies, and
// after interleaved Insert/Remove.
#include "src/serving/sharded_retrieval_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>

#include "src/core/trainer.h"
#include "src/embedding/fastmap.h"
#include "src/retrieval/embedder_adapters.h"
#include "src/retrieval/filter_refine.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace qse {
namespace {

struct Stack {
  ObjectOracle<Vector> oracle;
  std::vector<size_t> db_ids;
  std::vector<size_t> query_ids;
};

Stack MakeStack(size_t n_db, size_t n_query, uint64_t seed) {
  auto oracle = test::MakePlaneOracle(n_db + n_query, seed);
  return {std::move(oracle), test::Iota(n_db), test::Iota(n_query, n_db)};
}

DxToDatabaseFn QueryDx(const Stack& s, size_t query_id) {
  return [&oracle = s.oracle, query_id](size_t id) {
    return oracle.Distance(query_id, id);
  };
}

/// Asserts that a sharded result (neighbor indices = database ids) equals
/// a monolithic result (neighbor indices = rows) on ids, scores and costs.
void ExpectSameResult(const RetrievalEngine& mono,
                      const RetrievalResponse& expected,
                      const RetrievalResponse& sharded, const char* context) {
  EXPECT_EQ(expected.exact_distances, sharded.exact_distances) << context;
  EXPECT_EQ(expected.embedding_distances, sharded.embedding_distances)
      << context;
  ASSERT_EQ(expected.neighbors.size(), sharded.neighbors.size()) << context;
  for (size_t i = 0; i < expected.neighbors.size(); ++i) {
    EXPECT_EQ(mono.db_id_of(expected.neighbors[i].index),
              sharded.neighbors[i].index)
        << context << " i=" << i;
    // Bit-identical: both refine steps evaluate the same dx on the same
    // candidate set.
    EXPECT_EQ(expected.neighbors[i].score, sharded.neighbors[i].score)
        << context << " i=" << i;
  }
}

/// Full parity sweep of one embedder/scorer pair: shard counts x scatter
/// thread counts x p values, Retrieve and RetrieveBatch.
void ExpectShardedMatchesMono(const Stack& s, const Embedder& embedder,
                              const FilterScorer& scorer, size_t k) {
  EmbeddedDatabase db = EmbedDatabase(embedder, s.oracle, s.db_ids);
  RetrievalEngine mono(&embedder, &scorer, &db, s.db_ids);

  std::vector<DxToDatabaseFn> queries;
  for (size_t query_id : s.query_ids) queries.push_back(QueryDx(s, query_id));

  for (size_t num_shards : {1u, 2u, 7u}) {
    for (size_t threads : {1u, 2u, 4u}) {
      ShardedEngineOptions options;
      options.num_shards = num_shards;
      options.scatter_threads = threads;
      ShardedRetrievalEngine sharded(&embedder, &scorer, db, s.db_ids,
                                     options);
      ASSERT_EQ(sharded.size(), mono.size());
      ASSERT_EQ(sharded.num_shards(), num_shards);

      for (size_t p : {size_t{1}, size_t{5}, size_t{20}, s.db_ids.size()}) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          auto want = mono.Retrieve({queries[qi], RetrievalOptions(k, p)});
          auto got = sharded.Retrieve({queries[qi], RetrievalOptions(k, p)});
          ASSERT_TRUE(want.ok() && got.ok());
          std::string context = "S=" + std::to_string(num_shards) +
                                " threads=" + std::to_string(threads) +
                                " p=" + std::to_string(p) +
                                " q=" + std::to_string(qi);
          ExpectSameResult(mono, *want, *got, context.c_str());
        }
        // Batch parity: each entry bit-identical to its single Retrieve.
        auto batch = sharded.RetrieveBatch(queries, test::Opts(k, p, threads));
        ASSERT_TRUE(batch.ok());
        ASSERT_EQ(batch->size(), queries.size());
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          auto want = mono.Retrieve({queries[qi], RetrievalOptions(k, p)});
          ASSERT_TRUE(want.ok());
          ExpectSameResult(mono, *want, (*batch)[qi], "batch");
        }
      }
    }
  }
}

TEST(ShardedParityTest, L2ScorerWithFastMap) {
  Stack s = MakeStack(70, 8, 31);
  FastMapOptions options;
  options.dims = 3;
  FastMapModel model = BuildFastMap(s.oracle, s.db_ids, options);
  L2Scorer scorer;
  ExpectShardedMatchesMono(s, model, scorer, 3);
}

TEST(ShardedParityTest, QuerySensitiveScorer) {
  Stack s = MakeStack(60, 6, 32);
  BoostMapConfig config;
  config.num_triples = 500;
  config.k1 = 3;
  config.boost.rounds = 16;
  config.boost.embeddings_per_round = 12;
  std::vector<size_t> sample(s.db_ids.begin(), s.db_ids.begin() + 25);
  auto artifacts = TrainBoostMap(s.oracle, sample, sample, config);
  ASSERT_TRUE(artifacts.ok());
  QseEmbedderAdapter adapter(&artifacts->model);
  QuerySensitiveScorer scorer(&artifacts->model);
  ExpectShardedMatchesMono(s, adapter, scorer, 3);
}

TEST(ShardedParityTest, LeastLoadedAssignmentAlsoExact) {
  Stack s = MakeStack(50, 5, 33);
  FastMapOptions fm;
  fm.dims = 2;
  FastMapModel model = BuildFastMap(s.oracle, s.db_ids, fm);
  L2Scorer scorer;
  EmbeddedDatabase db = EmbedDatabase(model, s.oracle, s.db_ids);
  RetrievalEngine mono(&model, &scorer, &db, s.db_ids);

  ShardedEngineOptions options;
  options.num_shards = 3;
  options.assignment = ShardAssignment::kLeastLoaded;
  ShardedRetrievalEngine sharded(&model, &scorer, db, s.db_ids, options);
  // Balanced by construction: sizes within one row of each other.
  std::vector<size_t> sizes = sharded.shard_sizes();
  size_t lo = *std::min_element(sizes.begin(), sizes.end());
  size_t hi = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_LE(hi - lo, 1u);

  for (size_t p : {1u, 10u, 50u}) {
    auto want = mono.Retrieve({QueryDx(s, 50), RetrievalOptions(2, p)});
    auto got = sharded.Retrieve({QueryDx(s, 50), RetrievalOptions(2, p)});
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSameResult(mono, *want, *got, "least-loaded");
  }
}

TEST(ShardedParityTest, ExactUnderTiedFilterScores) {
  // Duplicated rows force exact filter-score ties; with the monolithic
  // engine's rows in ascending-id order, the merge must break ties by id
  // exactly like the monolithic scan breaks them by row.
  std::vector<Vector> rows = {{0, 0}, {1, 1}, {0, 0}, {1, 1},
                              {0, 0}, {2, 2}, {1, 1}, {0, 0}};
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(rows);
  std::vector<size_t> ids = test::Iota(rows.size());

  // An embedder that maps any query to the origin: every duplicate row
  // also ties in the refine step (dx below is constant per id bucket).
  struct OriginEmbedder : Embedder {
    size_t dims() const override { return 2; }
    size_t EmbeddingCost() const override { return 0; }
    Vector Embed(const DxToDatabaseFn&, size_t* n) const override {
      if (n != nullptr) *n = 0;
      return {0.0, 0.0};
    }
  } embedder;
  L1Scorer scorer;
  RetrievalEngine mono(&embedder, &scorer, &db, ids);
  DxToDatabaseFn dx = [&](size_t id) { return rows[id][0]; };

  for (size_t num_shards : {2u, 3u, 7u}) {
    ShardedEngineOptions options;
    options.num_shards = num_shards;
    ShardedRetrievalEngine sharded(&embedder, &scorer, db, ids, options);
    for (size_t p : {1u, 3u, 4u, 8u}) {
      auto want = mono.Retrieve({dx, RetrievalOptions(p, p)});
      auto got = sharded.Retrieve({dx, RetrievalOptions(p, p)});
      ASSERT_TRUE(want.ok() && got.ok());
      std::string context =
          "S=" + std::to_string(num_shards) + " p=" + std::to_string(p);
      ExpectSameResult(mono, *want, *got, context.c_str());
    }
  }
}

// --- Parity after interleaved Insert / Remove ---------------------------

TEST(ShardedParityTest, InterleavedInsertRemoveKeepsParity) {
  Stack s = MakeStack(60, 6, 34);
  FastMapOptions fm;
  fm.dims = 3;
  FastMapModel model = BuildFastMap(s.oracle, s.db_ids, fm);
  L2Scorer scorer;

  // Both engines start from the first 40 objects.
  std::vector<size_t> first(s.db_ids.begin(), s.db_ids.begin() + 40);
  EmbeddedDatabase db = EmbedDatabase(model, s.oracle, first);
  RetrievalEngine mono(&model, &scorer, &db, first);
  ShardedEngineOptions options;
  options.num_shards = 7;
  ShardedRetrievalEngine sharded(&model, &scorer, db, first, options);

  // Apply the same interleaved mutation sequence to both.
  auto dx_for = [&](size_t id) {
    return [&oracle = s.oracle, id](size_t o) {
      return o == id ? 0.0 : oracle.Distance(id, o);
    };
  };
  std::vector<std::pair<bool, size_t>> ops = {
      {true, 40}, {true, 41}, {false, 5},  {true, 42}, {false, 41},
      {false, 0}, {true, 43}, {true, 44},  {false, 39}, {true, 45},
  };
  for (const auto& [is_insert, id] : ops) {
    if (is_insert) {
      ASSERT_TRUE(mono.Insert(id, dx_for(id)).ok()) << id;
      ASSERT_TRUE(sharded.Insert(id, dx_for(id)).ok()) << id;
    } else {
      ASSERT_TRUE(mono.Remove(id).ok()) << id;
      ASSERT_TRUE(sharded.Remove(id).ok()) << id;
    }
    ASSERT_EQ(mono.size(), sharded.size());
  }

  // Distinct plane points: no exact-score ties, so parity holds even
  // though the monolithic engine's row order is now scrambled.
  for (size_t query_id : s.query_ids) {
    for (size_t p : {size_t{1}, size_t{7}, size_t{20}, mono.size()}) {
      auto want = mono.Retrieve({QueryDx(s, query_id), RetrievalOptions(3, p)});
      auto got =
          sharded.Retrieve({QueryDx(s, query_id), RetrievalOptions(3, p)});
      ASSERT_TRUE(want.ok() && got.ok());
      std::string context =
          "q=" + std::to_string(query_id) + " p=" + std::to_string(p);
      ExpectSameResult(mono, *want, *got, context.c_str());
    }
  }
}

// --- Routing, validation and stats --------------------------------------

struct ShardedFixture {
  Stack s = MakeStack(40, 4, 35);
  FastMapOptions fm;
  FastMapModel model;
  L2Scorer scorer;
  EmbeddedDatabase db;
  ShardedRetrievalEngine engine;

  explicit ShardedFixture(ShardedEngineOptions options = MakeOptions())
      : fm([] {
          FastMapOptions o;
          o.dims = 2;
          return o;
        }()),
        model(BuildFastMap(s.oracle, s.db_ids, fm)),
        db(EmbedDatabase(model, s.oracle, s.db_ids)),
        engine(&model, &scorer, db, s.db_ids, options) {}

  static ShardedEngineOptions MakeOptions() {
    ShardedEngineOptions o;
    o.num_shards = 4;
    return o;
  }
};

TEST(ShardedRetrievalEngineTest, HashRoutingIsDeterministic) {
  ShardedFixture a;
  ShardedFixture b;
  for (size_t id : a.s.db_ids) {
    auto sa = a.engine.ShardOf(id);
    auto sb = b.engine.ShardOf(id);
    ASSERT_TRUE(sa.ok() && sb.ok());
    EXPECT_EQ(*sa, *sb) << id;
    EXPECT_LT(*sa, a.engine.num_shards());
  }
  // Every id lives where ShardOf says it does even for ids never seen:
  // the hash route is a pure function of the id.
  auto unseen = a.engine.ShardOf(12345);
  ASSERT_TRUE(unseen.ok());
  EXPECT_LT(*unseen, a.engine.num_shards());
}

// Option validation and p clamping for both engines live in the
// cross-surface parameterized suite: tests/request_validation_test.cc.

TEST(ShardedRetrievalEngineTest, EmptyEngineFailsRetrieveAndDrainsEmpty) {
  ShardedFixture f;
  ShardedEngineOptions options;
  options.num_shards = 3;
  ShardedRetrievalEngine empty(&f.model, &f.scorer, options);
  EXPECT_EQ(empty.size(), 0u);
  auto r = empty.Retrieve({QueryDx(f.s, 40), RetrievalOptions(1, 5)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);

  // Fill through Insert, drain through Remove, fail again.
  for (size_t id : {1u, 2u, 3u}) {
    ASSERT_TRUE(empty
                    .Insert(id,
                            [&](size_t o) {
                              return o == id
                                         ? 0.0
                                         : f.s.oracle.Distance(id, o);
                            })
                    .ok());
  }
  EXPECT_EQ(empty.size(), 3u);
  for (size_t id : {1u, 2u, 3u}) ASSERT_TRUE(empty.Remove(id).ok());
  EXPECT_EQ(empty.size(), 0u);
  r = empty.Retrieve({QueryDx(f.s, 40), RetrievalOptions(1, 5)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardedRetrievalEngineTest, DuplicateInsertAndUnknownRemove) {
  ShardedFixture f;
  Status dup = f.engine.Insert(0, QueryDx(f.s, 40));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  Status gone = f.engine.Remove(999);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.code(), StatusCode::kNotFound);
}

TEST(ShardedRetrievalEngineTest, StatsCoverEveryShardAndSumToP) {
  ShardedFixture f;
  const size_t p = 15;
  RetrievalOptions with_stats(3, p);
  with_stats.want_stats = true;
  auto r = f.engine.Retrieve({QueryDx(f.s, 41), with_stats});
  ASSERT_TRUE(r.ok());
  const std::vector<ShardScanStats>& stats = r->shard_stats;
  ASSERT_EQ(stats.size(), f.engine.num_shards());
  size_t rows = 0, candidates = 0;
  std::vector<size_t> sizes = f.engine.shard_sizes();
  for (size_t s = 0; s < stats.size(); ++s) {
    EXPECT_EQ(stats[s].rows, sizes[s]);
    EXPECT_LE(stats[s].candidates, p);
    rows += stats[s].rows;
    candidates += stats[s].candidates;
  }
  EXPECT_EQ(rows, f.engine.size());
  // The merged top-p has exactly min(p, n) entries, each owned by one
  // shard.
  EXPECT_EQ(candidates, std::min(p, f.engine.size()));
  EXPECT_EQ(r->exact_distances - r->embedding_distances, candidates);
}

TEST(ShardedRetrievalEngineTest, BackendInterfaceServesBothEngines) {
  // The polymorphic swap the serving layer is built for: the same driver
  // code runs against either backend and returns the same database ids.
  ShardedFixture f;
  RetrievalEngine mono(&f.model, &f.scorer, &f.db, f.s.db_ids);
  auto serve = [&](const RetrievalBackend& backend) {
    auto r = backend.Retrieve({QueryDx(f.s, 42), RetrievalOptions(3, 10)});
    EXPECT_TRUE(r.ok());
    std::vector<size_t> ids;
    for (const ScoredIndex& n : r->neighbors) {
      ids.push_back(backend.db_id_of(n.index));
    }
    return ids;
  };
  EXPECT_EQ(serve(mono), serve(f.engine));
}

}  // namespace
}  // namespace qse
