#ifndef QSE_RETRIEVAL_RETRIEVAL_ENGINE_H_
#define QSE_RETRIEVAL_RETRIEVAL_ENGINE_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/obs/metric_registry.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_backend.h"
#include "src/util/statusor.h"
#include "src/util/top_k.h"

namespace qse {

/// The retrieval engine: the three-step filter-and-refine pipeline of
/// Sec. 8 (embed the query, keep the p most similar vectors, re-rank
/// those p by exact distance), served batched and thread-parallel on top
/// of the flat SoA embedded database.
///
/// Also owns the row <-> database-id bookkeeping needed for dynamic
/// datasets (Sec. 7.1): Insert embeds and appends a new object in O(d)
/// exact distances, Remove drops one via the database's swap-with-last.
///
/// Thread-safety: Retrieve/RetrieveBatch are const and safe to call
/// concurrently as long as the embedder, scorer and `dx` callbacks are.
/// Insert/Remove are serialized internally and may run concurrently with
/// retrievals: each retrieval pins one epoch snapshot of the database
/// (rows + ids + count) and serves it consistently, while mutations
/// publish new versions the next retrieval picks up.  A retrieval
/// observes every mutation that completed before it started, never one
/// that started after it finished, and any subset of concurrent ones.
class RetrievalEngine : public RetrievalBackend {
 public:
  /// Does not own its arguments; `db_ids[i]` is the database id of row i
  /// of `db` (installed into the database's id column).  The engine
  /// mutates `db` only through Insert/Remove.
  RetrievalEngine(const Embedder* embedder, const FilterScorer* scorer,
                  EmbeddedDatabase* db, std::vector<size_t> db_ids);

  /// Retrieves the k best matches among the top-p filter candidates;
  /// neighbor indices are db positions (rows of the snapshot served,
  /// which is the current layout once the engine is quiescent).
  ///
  /// Options are validated by ValidateRetrievalOptions; an empty
  /// database is FailedPrecondition.  p is clamped to the database size
  /// (p = n degenerates to brute force, as in the paper).  want_stats
  /// reports the whole database as a single pseudo-shard.
  StatusOr<RetrievalResponse> Retrieve(
      const RetrievalRequest& request) const override;

  /// Retrieves a batch of queries in parallel via qse::ParallelFor.
  /// results[i] corresponds to queries[i] and is bit-identical to
  /// Retrieve({queries[i], options}) — each query runs the exact same
  /// single-query code path, whatever options.num_threads is.
  StatusOr<std::vector<RetrievalResponse>> RetrieveBatch(
      const std::vector<DxToDatabaseFn>& queries,
      const RetrievalOptions& options) const override;

  /// Embeds a new object (<= 2d exact distances via `dx`) and appends it
  /// to the database under `db_id`.  Fails with InvalidArgument when the
  /// id is already present.  Safe concurrently with retrievals.
  Status Insert(size_t db_id, const DxToDatabaseFn& dx) override;

  /// Removes the object with id `db_id` (swap-with-last).  Row positions
  /// of the swapped row change; neighbors are always reported against
  /// the snapshot a retrieval pinned.  Fails with NotFound for unknown
  /// ids.  Safe concurrently with retrievals.
  Status Remove(size_t db_id) override;

  /// Filter-only scan over one pinned snapshot; candidates carry
  /// database ids in (score, id) order — the same list a shard of the
  /// sharded engine contributes to its merge, so a RetrievalServer
  /// wrapping this engine is a drop-in remote shard.
  StatusOr<ScanCandidatesResult> ScanCandidates(
      const Vector& embedded_query,
      const RetrievalOptions& options) const override;

  /// Appends an already-embedded row (the remote Insert path; the
  /// embedding step ran client-side).  InvalidArgument on duplicate id
  /// or wrong dimensionality.  Safe concurrently with retrievals.
  Status InsertEmbedded(size_t db_id, const Vector& embedded_row) override;

  /// Number of database objects currently live.
  size_t size() const override { return db_->size(); }

  /// Rebuilds the id -> row index from the database's current id column
  /// — required after the durability subsystem restores the database
  /// contents underneath a constructed engine (RestoreVersion replaces
  /// rows and ids wholesale, leaving the construction-time index stale).
  /// Quiescent API; duplicate ids abort.
  void RebuildIdIndex();

  /// Database id of row `row` in the current version (quiescent peek;
  /// concurrent retrievals resolve ids against their own snapshot).
  size_t db_id_of(size_t row) const override { return db_->id_of(row); }
  /// Copy of the current row -> id mapping, in row order.
  std::vector<size_t> db_ids() const { return db_->ids(); }
  const EmbeddedDatabase& db() const { return *db_; }

 private:
  /// The single-query pipeline behind both entry points, taking the
  /// envelope pieces by reference so the batch loop never copies a
  /// query functor or the options (tenant_id) per query.  A non-null
  /// `trace` gets embed / filter_scan / refine spans (sampled requests
  /// coming through Retrieve; RetrieveBatch runs untraced).  Shared
  /// ownership so a sampled quality audit can carry the trace along.
  StatusOr<RetrievalResponse> RetrieveOne(
      const DxToDatabaseFn& dx, const RetrievalOptions& options,
      const std::shared_ptr<obs::RequestTrace>& trace) const;

  const Embedder* embedder_;
  const FilterScorer* scorer_;
  EmbeddedDatabase* db_;
  /// Global-registry metrics, resolved once at construction (pointers
  /// are stable for the registry's lifetime) so the hot path never
  /// takes the registry lock.  Shared across engine instances by name.
  obs::Counter* retrievals_total_;
  obs::Counter* exact_distances_total_;
  obs::Counter* filter_rows_visited_total_;
  obs::Counter* filter_rows_pruned_total_;
  obs::Histogram* embed_ns_;
  obs::Histogram* filter_ns_;
  obs::Histogram* refine_ns_;
  /// Serializes Insert/Remove against each other (retrievals never take
  /// it — they pin snapshots instead).
  std::mutex mutation_mu_;
  /// database id -> row, maintained only under mutation_mu_; readers
  /// resolve ids through their snapshot's id column instead.
  std::unordered_map<size_t, size_t> row_of_;
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_RETRIEVAL_ENGINE_H_
