#include "src/util/status.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/util/statusor.h"

namespace qse {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, EveryEnumeratorRoundTripsThroughFactoryAndName) {
  // One row per enumerator: keep this table in sync with StatusCode so a
  // new code cannot land without a factory and a stable name.
  const struct {
    Status status;
    StatusCode code;
    const char* name;
  } kCases[] = {
      {Status::OK(), StatusCode::kOk, "OK"},
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "INVALID_ARGUMENT"},
      {Status::NotFound("m"), StatusCode::kNotFound, "NOT_FOUND"},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange, "OUT_OF_RANGE"},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition,
       "FAILED_PRECONDITION"},
      {Status::Internal("m"), StatusCode::kInternal, "INTERNAL"},
      {Status::IOError("m"), StatusCode::kIOError, "IO_ERROR"},
      {Status::Unimplemented("m"), StatusCode::kUnimplemented,
       "UNIMPLEMENTED"},
      {Status::DeadlineExceeded("m"), StatusCode::kDeadlineExceeded,
       "DEADLINE_EXCEEDED"},
      {Status::ResourceExhausted("m"), StatusCode::kResourceExhausted,
       "RESOURCE_EXHAUSTED"},
      {Status::Unavailable("m"), StatusCode::kUnavailable, "UNAVAILABLE"},
      {Status::DataLoss("m"), StatusCode::kDataLoss, "DATA_LOSS"},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(c.status.code(), c.code) << c.name;
    EXPECT_STREQ(StatusCodeToString(c.code), c.name);
    if (c.status.ok()) {
      EXPECT_EQ(c.status.ToString(), "OK");
    } else {
      EXPECT_EQ(c.status.message(), "m") << c.name;
      EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
    }
  }
  // Names are pairwise distinct: ToString never aliases two codes.
  for (const auto& a : kCases) {
    for (const auto& b : kCases) {
      if (a.code != b.code) EXPECT_STRNE(a.name, b.name);
    }
  }
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("missing file");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing file");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "INTERNAL: boom");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO_ERROR");
}

Status FailsThenPropagates(bool fail) {
  QSE_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::NotFound("outer");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusWithoutValueBecomesInternal) {
  StatusOr<int> v = Status::OK();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, ValueOrFallsBack) {
  StatusOr<int> bad = Status::Internal("x");
  EXPECT_EQ(bad.value_or(-1), -1);
  StatusOr<int> good = 7;
  EXPECT_EQ(good.value_or(-1), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> s = std::string("hello");
  std::string moved = std::move(s).value();
  EXPECT_EQ(moved, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> s = std::string("hello");
  EXPECT_EQ(s->size(), 5u);
}

StatusOr<int> MaybeDouble(StatusOr<int> in) {
  QSE_ASSIGN_OR_RETURN(int v, in);
  return 2 * v;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  StatusOr<int> ok = MaybeDouble(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> bad = MaybeDouble(Status::OutOfRange("x"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace qse
