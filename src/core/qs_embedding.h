#ifndef QSE_CORE_QS_EMBEDDING_H_
#define QSE_CORE_QS_EMBEDDING_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/adaboost.h"
#include "src/core/training_context.h"
#include "src/distance/distance.h"
#include "src/util/statusor.h"

namespace qse {

/// Resolves DX(x, o) from the object being embedded to the database object
/// with id `o`.  This is the only thing the model needs to embed an
/// arbitrary (possibly previously unseen) object — the "embedding step" of
/// filter-and-refine retrieval (Sec. 8).
using QueryDistanceFn = std::function<double(size_t db_id)>;

/// The trained output of the paper's algorithm (Sec. 5.4): a
/// d-dimensional embedding F_out = (F_1, ..., F_d) together with the
/// query-sensitive weighted-L1 distance D_out of Eq. 11,
///
///   D_out(F(q), F(x)) = Σ_i A_i(q) |F_i(q) - F_i(x)|,
///
/// where A_i(q) (Eq. 10) sums the AdaBoost weights α_j of every weak
/// classifier using coordinate i whose splitter accepts q.  By
/// Proposition 1 the induced triple classifier equals the boosted
/// ensemble H; the test suite checks that identity numerically.
///
/// Models built with query_sensitive = false (original BoostMap) are the
/// degenerate case where every term's interval is all of R, making A_i(q)
/// constant: D_out reduces to a global weighted L1.
class QuerySensitiveEmbedding {
 public:
  /// One coordinate F_i of F_out with the weighted intervals attached to
  /// it.  Candidate objects are resolved to database ids so the model is
  /// self-contained.
  struct Coordinate {
    Embedding1DSpec::Type type = Embedding1DSpec::Type::kReference;
    uint32_t db_id1 = 0;
    uint32_t db_id2 = 0;        // Pivot only.
    double pivot_distance = 0;  // DX(x1, x2), pivot only.

    struct Term {
      double lo = 0, hi = 0, alpha = 0;
    };
    std::vector<Term> terms;

    /// F_i(x) given distances to the coordinate's defining objects.
    double Value(double d1, double d2) const;

    /// A_i(q) given this coordinate's value for q.
    double Weight(double fq) const;
  };

  QuerySensitiveEmbedding() = default;

  /// Assembles the model from AdaBoost output: collapses the J weak
  /// classifiers to the set of unique 1D embeddings (Sec. 5.4) and
  /// resolves candidate indices to database ids via `ctx`.
  static QuerySensitiveEmbedding FromTraining(
      const TrainingContext& ctx, const std::vector<WeakClassifier>& rounds,
      bool query_sensitive);

  /// Number of coordinates d of F_out.
  size_t dims() const { return coords_.size(); }

  /// Number of weak-classifier rounds the model was built from.
  size_t num_rounds() const { return rounds_.size(); }

  bool query_sensitive() const { return query_sensitive_; }

  const std::vector<Coordinate>& coordinates() const { return coords_; }

  /// Embeds an object.  Calls `dx` once per *unique* database object among
  /// the coordinates' reference/pivot objects (Sec. 7: "computing F_out(x)
  /// requires computing at most 2d distances DX").  If `num_exact` is
  /// non-null it receives that count.
  Vector Embed(const QueryDistanceFn& dx, size_t* num_exact = nullptr) const;

  /// Exact-distance cost of Embed (the number of unique database objects
  /// referenced); this is the per-query embedding cost of the paper's
  /// cost model.
  size_t EmbeddingCost() const;

  /// A_i(q) for an embedded query (Eq. 10).
  Vector QueryWeights(const Vector& embedded_query) const;

  /// D_out(F(q), F(x)) (Eq. 11).  Asymmetric: the first argument must be
  /// the query.
  double QuerySensitiveDistance(const Vector& embedded_query,
                                const Vector& embedded_x) const;

  /// Same with precomputed weights (faster when scanning a database).
  static double WeightedDistance(const Vector& weights,
                                 const Vector& embedded_query,
                                 const Vector& embedded_x);

  /// H(q, a, b) = D_out(F(q), F(b)) - D_out(F(q), F(a)); positive when the
  /// model predicts q closer to a (triple type 1).
  double TripleMargin(const Vector& fq, const Vector& fa,
                      const Vector& fb) const;

  /// The model truncated to its first `j` boosting rounds — the paper's
  /// mechanism for sweeping embedding dimensionality (Sec. 9 evaluates
  /// "embeddings of various dimensions" from one training run's prefixes).
  QuerySensitiveEmbedding Prefix(size_t j) const;

  /// Binary model persistence.
  Status Save(const std::string& path) const;
  static StatusOr<QuerySensitiveEmbedding> Load(const std::string& path);

 private:
  /// One weak classifier with candidate ids resolved; kept in round order
  /// so Prefix() can rebuild any truncation.
  struct StoredRound {
    Embedding1DSpec::Type type = Embedding1DSpec::Type::kReference;
    uint32_t db_id1 = 0;
    uint32_t db_id2 = 0;
    double pivot_distance = 0;
    double lo = 0, hi = 0, alpha = 0;
  };

  void RebuildCoordinates();

  std::vector<StoredRound> rounds_;
  std::vector<Coordinate> coords_;
  bool query_sensitive_ = true;
};

}  // namespace qse

#endif  // QSE_CORE_QS_EMBEDDING_H_
