#include "src/retrieval/embedded_database.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace qse {
namespace {

TEST(EmbeddedDatabaseTest, StartsEmpty) {
  EmbeddedDatabase db(4);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.dims(), 4u);
  EXPECT_TRUE(db.empty());
}

TEST(EmbeddedDatabaseTest, AppendStoresRowsContiguously) {
  EmbeddedDatabase db(3);
  EXPECT_EQ(db.Append({1, 2, 3}), 0u);
  EXPECT_EQ(db.Append({4, 5, 6}), 1u);
  EXPECT_EQ(db.size(), 2u);
  // One flat buffer, row-major.
  EXPECT_EQ(db.data(), (std::vector<double>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(db.row(1)[0], 4.0);
  EXPECT_EQ(db.row(1) - db.row(0), 3);  // Adjacent rows, no gaps.
}

TEST(EmbeddedDatabaseTest, FromRowsRoundTripsThroughRowVector) {
  std::vector<Vector> rows = {{0.5, -1}, {2, 3}, {4, 5}};
  EmbeddedDatabase db = EmbeddedDatabase::FromRows(rows);
  ASSERT_EQ(db.size(), 3u);
  ASSERT_EQ(db.dims(), 2u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(db.RowVector(i), rows[i]);
  }
}

TEST(EmbeddedDatabaseTest, SetRowOverwritesInPlace) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{1, 1}, {2, 2}});
  db.SetRow(0, {9, 8});
  EXPECT_EQ(db.RowVector(0), (Vector{9, 8}));
  EXPECT_EQ(db.RowVector(1), (Vector{2, 2}));
}

TEST(EmbeddedDatabaseTest, SwapRemoveMiddleMovesLastRow) {
  EmbeddedDatabase db =
      EmbeddedDatabase::FromRows({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  size_t moved_from = db.SwapRemove(1);
  EXPECT_EQ(moved_from, 3u);  // Former last row now lives at slot 1.
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.RowVector(1), (Vector{3, 3}));
  EXPECT_EQ(db.RowVector(2), (Vector{2, 2}));
}

TEST(EmbeddedDatabaseTest, SwapRemoveLastMovesNothing) {
  EmbeddedDatabase db = EmbeddedDatabase::FromRows({{0, 0}, {1, 1}});
  size_t moved_from = db.SwapRemove(1);
  EXPECT_EQ(moved_from, 1u);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.RowVector(0), (Vector{0, 0}));
}

TEST(EmbeddedDatabaseTest, ResizeZeroFillsNewRows) {
  EmbeddedDatabase db(2);
  db.Resize(3);
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.RowVector(2), (Vector{0, 0}));
  db.mutable_row(1)[0] = 7;
  EXPECT_EQ(db.RowVector(1), (Vector{7, 0}));
}

TEST(EmbeddedDatabaseTest, AppendBorrowedRowMayAliasOwnBuffer) {
  // Append(const double*) must survive a source pointing into this
  // database's own buffer even when the append forces a reallocation.
  EmbeddedDatabase db(2);
  db.Append({1, 2});
  for (int i = 0; i < 100; ++i) {
    size_t row = db.Append(db.row(db.size() - 1));
    EXPECT_EQ(row, static_cast<size_t>(i) + 1);
  }
  ASSERT_EQ(db.size(), 101u);
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db.RowVector(i), (Vector{1, 2})) << i;
  }
}

TEST(EmbeddedDatabaseTest, ReserveOnDimensionlessDatabaseIsSafeNoOp) {
  // Regression: Reserve on a dims() == 0 database used to reserve zero
  // bytes and still walk the hugepage-advise path.  It must be a true
  // no-op: no allocation, and the database stays fully usable.
  EmbeddedDatabase db;
  ASSERT_EQ(db.dims(), 0u);
  db.Reserve(1u << 20);
  EXPECT_EQ(db.data().capacity(), 0u);
  EXPECT_TRUE(db.empty());
  // FromRows({}) funnels through the same path (dims 0, Reserve(0)).
  EmbeddedDatabase empty = EmbeddedDatabase::FromRows({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.dims(), 0u);
}

TEST(EmbeddedDatabaseTest, ReserveGrowsCapacityOnce) {
  EmbeddedDatabase db(3);
  db.Reserve(100);
  size_t cap = db.data().capacity();
  EXPECT_GE(cap, 300u);
  // A smaller (or equal) reservation must not touch the buffer again.
  db.Reserve(50);
  EXPECT_EQ(db.data().capacity(), cap);
  db.Append({1, 2, 3});
  EXPECT_EQ(db.RowVector(0), (Vector{1, 2, 3}));
}

TEST(EmbeddedDatabaseTest, AppendAfterResizeKeepsData) {
  EmbeddedDatabase db(2);
  db.Resize(1);
  db.SetRow(0, {1, 2});
  EXPECT_EQ(db.Append({3, 4}), 1u);
  EXPECT_EQ(db.data(), (std::vector<double>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace qse
