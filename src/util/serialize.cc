#include "src/util/serialize.h"

#include <cstring>
#include <limits>

namespace qse {

void BinaryWriter::WriteU8(uint8_t v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteU16(uint16_t v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteU32(uint32_t v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteU64(uint64_t v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteI64(int64_t v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteDouble(double v) {
  out_->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
}
void BinaryWriter::WriteDoubleVec(const std::vector<double>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(double)));
}
void BinaryWriter::WriteFloatVec(const std::vector<float>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(float)));
}
void BinaryWriter::WriteU32Vec(const std::vector<uint32_t>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(uint32_t)));
}
void BinaryWriter::WriteU64Vec(const std::vector<uint64_t>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(uint64_t)));
}
void BinaryWriter::WriteBytes(const void* data, size_t size) {
  out_->write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
}

Status BinaryReader::ReadRaw(void* dst, size_t n) {
  if (in_ == nullptr || !in_->good()) {
    return Status::IOError("stream not readable");
  }
  in_->read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_->gcount()) != n) {
    return Status::IOError("truncated read");
  }
  return Status::OK();
}

Status BinaryReader::ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
Status BinaryReader::ReadU16(uint16_t* v) { return ReadRaw(v, sizeof(*v)); }
Status BinaryReader::ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
Status BinaryReader::ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
Status BinaryReader::ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
Status BinaryReader::ReadDouble(double* v) { return ReadRaw(v, sizeof(*v)); }

Status BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > (1ull << 32)) return Status::IOError("string length implausible");
  s->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(s->data(), n);
}

namespace {
constexpr uint64_t kMaxVecElems = 1ull << 33;
}  // namespace

Status BinaryReader::ReadDoubleVec(std::vector<double>* v) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxVecElems) return Status::IOError("vector length implausible");
  v->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(v->data(), n * sizeof(double));
}
Status BinaryReader::ReadFloatVec(std::vector<float>* v) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxVecElems) return Status::IOError("vector length implausible");
  v->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(v->data(), n * sizeof(float));
}
Status BinaryReader::ReadU32Vec(std::vector<uint32_t>* v) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxVecElems) return Status::IOError("vector length implausible");
  v->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(v->data(), n * sizeof(uint32_t));
}

Status ByteReader::ReadRaw(void* dst, size_t n) {
  if (n > size_ - pos_) {
    return Status::DataLoss("truncated buffer: need " + std::to_string(n) +
                            " bytes, have " + std::to_string(size_ - pos_));
  }
  std::memcpy(dst, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::CheckCount(uint64_t count, size_t elem_size,
                              uint64_t max_elems) {
  // remaining() bounds the count unconditionally: the elements must be
  // physically present behind the prefix, so a hostile count can demand
  // at most the bytes the caller already holds.
  if (count > remaining() / elem_size) {
    return Status::DataLoss("length prefix exceeds remaining bytes: " +
                            std::to_string(count) + " elements of " +
                            std::to_string(elem_size) + " bytes, " +
                            std::to_string(remaining()) + " bytes left");
  }
  if (max_elems != 0 && count > max_elems) {
    return Status::DataLoss("length prefix exceeds field cap: " +
                            std::to_string(count) + " > " +
                            std::to_string(max_elems));
  }
  return Status::OK();
}

Status ByteReader::ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
Status ByteReader::ReadU16(uint16_t* v) { return ReadRaw(v, sizeof(*v)); }
Status ByteReader::ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
Status ByteReader::ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
Status ByteReader::ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
Status ByteReader::ReadDouble(double* v) { return ReadRaw(v, sizeof(*v)); }

Status ByteReader::ReadString(std::string* s, uint64_t max_elems) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  QSE_RETURN_IF_ERROR(CheckCount(n, 1, max_elems));
  s->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(&(*s)[0], n);
}

Status ByteReader::ReadDoubleVec(std::vector<double>* v, uint64_t max_elems) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  QSE_RETURN_IF_ERROR(CheckCount(n, sizeof(double), max_elems));
  v->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(v->data(), n * sizeof(double));
}

Status ByteReader::ReadFloatVec(std::vector<float>* v, uint64_t max_elems) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  QSE_RETURN_IF_ERROR(CheckCount(n, sizeof(float), max_elems));
  v->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(v->data(), n * sizeof(float));
}

Status ByteReader::ReadU64Vec(std::vector<uint64_t>* v, uint64_t max_elems) {
  uint64_t n = 0;
  QSE_RETURN_IF_ERROR(ReadU64(&n));
  QSE_RETURN_IF_ERROR(CheckCount(n, sizeof(uint64_t), max_elems));
  v->resize(n);
  return n == 0 ? Status::OK() : ReadRaw(v->data(), n * sizeof(uint64_t));
}

}  // namespace qse
