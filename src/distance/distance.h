#ifndef QSE_DISTANCE_DISTANCE_H_
#define QSE_DISTANCE_DISTANCE_H_

#include <functional>
#include <vector>

namespace qse {

/// Dense real vector, the codomain of all embeddings (Sec. 3.1 of the
/// paper: F : X -> R^d).
using Vector = std::vector<double>;

/// A distance measure over an arbitrary object type T.  The paper's DX can
/// be any such function — non-Euclidean and non-metric measures included —
/// which is why the whole library is parameterized on this signature.
template <typename T>
using DistanceFn = std::function<double(const T&, const T&)>;

}  // namespace qse

#endif  // QSE_DISTANCE_DISTANCE_H_
