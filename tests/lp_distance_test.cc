#include <cmath>

#include <gtest/gtest.h>

#include "src/distance/kl_divergence.h"
#include "src/distance/lp.h"
#include "src/distance/point_set.h"
#include "src/distance/weighted_l1.h"
#include "src/util/random.h"

namespace qse {
namespace {

TEST(LpTest, KnownValues) {
  Vector a = {0, 0}, b = {3, 4};
  EXPECT_DOUBLE_EQ(L1Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(L2Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredL2Distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(LInfDistance(a, b), 4.0);
}

TEST(LpTest, LpGeneralizes) {
  Vector a = {0, 0}, b = {3, 4};
  EXPECT_NEAR(LpDistance(a, b, 1.0), L1Distance(a, b), 1e-12);
  EXPECT_NEAR(LpDistance(a, b, 2.0), L2Distance(a, b), 1e-12);
}

TEST(LpTest, LpConvergesToLInf) {
  Vector a = {0, 0, 0}, b = {1, 2, 5};
  EXPECT_NEAR(LpDistance(a, b, 64.0), LInfDistance(a, b), 0.2);
}

class LpMetricAxioms : public testing::TestWithParam<double> {};

TEST_P(LpMetricAxioms, SatisfiedOnRandomVectors) {
  double p = GetParam();
  Rng rng(42);
  auto random_vec = [&](size_t d) {
    Vector v(d);
    for (double& x : v) x = rng.Uniform(-10, 10);
    return v;
  };
  auto dist = [&](const Vector& a, const Vector& b) {
    return LpDistance(a, b, p);
  };
  for (int trial = 0; trial < 40; ++trial) {
    Vector a = random_vec(8), b = random_vec(8), c = random_vec(8);
    // Non-negativity + identity.
    EXPECT_GE(dist(a, b), 0.0);
    EXPECT_NEAR(dist(a, a), 0.0, 1e-12);
    // Symmetry.
    EXPECT_NEAR(dist(a, b), dist(b, a), 1e-12);
    // Triangle inequality (the property non-metric DX like DTW lack).
    EXPECT_LE(dist(a, c), dist(a, b) + dist(b, c) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllP, LpMetricAxioms,
                         testing::Values(1.0, 1.5, 2.0, 3.0, 8.0));

TEST(WeightedL1Test, MatchesManualComputation) {
  Vector a = {1, 2, 3}, b = {2, 0, 3}, w = {0.5, 2.0, 10.0};
  EXPECT_DOUBLE_EQ(WeightedL1Distance(a, b, w), 0.5 * 1 + 2.0 * 2 + 0.0);
}

TEST(WeightedL1Test, UnitWeightsReduceToL1) {
  Rng rng(1);
  Vector a(16), b(16), w(16, 1.0);
  for (size_t i = 0; i < 16; ++i) {
    a[i] = rng.Uniform(-5, 5);
    b[i] = rng.Uniform(-5, 5);
  }
  EXPECT_NEAR(WeightedL1Distance(a, b, w), L1Distance(a, b), 1e-12);
}

TEST(WeightedL1Test, ZeroWeightIgnoresCoordinate) {
  Vector a = {0, 100}, b = {0, -100}, w = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(WeightedL1Distance(a, b, w), 0.0);
}

TEST(WeightedL1Test, ScalesLinearlyInWeights) {
  Vector a = {1, 4}, b = {3, 1}, w = {2.0, 3.0};
  Vector w2 = {4.0, 6.0};
  EXPECT_NEAR(WeightedL1Distance(a, b, w2),
              2.0 * WeightedL1Distance(a, b, w), 1e-12);
}

TEST(KlTest, ZeroForIdenticalDistributions) {
  Vector p = {0.25, 0.25, 0.5};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-9);
}

TEST(KlTest, PositiveForDifferentDistributions) {
  EXPECT_GT(KlDivergence({0.9, 0.1}, {0.1, 0.9}), 0.1);
}

TEST(KlTest, AsymmetricInGeneral) {
  Vector p = {0.8, 0.15, 0.05}, q = {0.2, 0.3, 0.5};
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

TEST(KlTest, HandlesUnnormalizedAndZeroBins) {
  // Counts rather than probabilities, with a zero bin in q.
  double v = KlDivergence({10, 5, 1}, {8, 0, 8});
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

TEST(KlTest, SymmetricVersionIsSymmetric) {
  Vector p = {0.7, 0.2, 0.1}, q = {0.1, 0.6, 0.3};
  EXPECT_NEAR(SymmetricKlDivergence(p, q), SymmetricKlDivergence(q, p),
              1e-12);
}

TEST(KlTest, JensenShannonBounded) {
  // JS divergence is bounded by ln 2.
  double v = JensenShannonDivergence({1, 0, 0}, {0, 0, 1});
  EXPECT_GT(v, 0.0);
  EXPECT_LE(v, std::log(2.0) + 1e-9);
}

TEST(ChamferTest, ZeroForIdenticalSets) {
  PointSet a;
  a.points = {{0, 0}, {1, 1}, {2, 0}};
  EXPECT_DOUBLE_EQ(ChamferDistance(a, a), 0.0);
}

TEST(ChamferTest, DirectedIsAsymmetric) {
  PointSet a, b;
  a.points = {{0, 0}};
  b.points = {{0, 0}, {10, 0}};
  // Every point of a has a 0-distance match in b, but not vice versa.
  EXPECT_DOUBLE_EQ(DirectedChamfer(a, b), 0.0);
  EXPECT_GT(DirectedChamfer(b, a), 0.0);
}

TEST(ChamferTest, ViolatesTriangleInequality) {
  // The paper cites chamfer distance as a common non-metric measure; this
  // witnesses a concrete triangle violation.
  PointSet a, b, c;
  a.points = {{0, 0}, {2, 0}};
  b.points = {{0, 0}, {2, 0}, {1, 0}};
  c.points = {{1, 0}};
  double ab = ChamferDistance(a, b);
  double bc = ChamferDistance(b, c);
  double ac = ChamferDistance(a, c);
  EXPECT_GT(ac, ab + bc);
}

TEST(PointSetTest, CentroidAndNormalization) {
  PointSet ps;
  ps.points = {{0, 0}, {2, 0}, {1, 3}};
  Point2 c = ps.Centroid();
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
  ps.CenterAtOrigin();
  Point2 c2 = ps.Centroid();
  EXPECT_NEAR(c2.x, 0.0, 1e-12);
  EXPECT_NEAR(c2.y, 0.0, 1e-12);
}

TEST(PointSetTest, MeanPairwiseDistance) {
  PointSet ps;
  ps.points = {{0, 0}, {2, 0}};
  EXPECT_DOUBLE_EQ(ps.MeanPairwiseDistance(), 2.0);
  PointSet single;
  single.points = {{1, 1}};
  EXPECT_DOUBLE_EQ(single.MeanPairwiseDistance(), 0.0);
}

}  // namespace
}  // namespace qse
