#ifndef QSE_SERVER_ASYNC_RETRIEVAL_SERVER_H_
#define QSE_SERVER_ASYNC_RETRIEVAL_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "src/retrieval/retrieval_backend.h"
#include "src/util/bounded_queue.h"
#include "src/util/future.h"
#include "src/util/statusor.h"

namespace qse {

/// Clock used for request deadlines (steady: immune to wall-clock jumps).
using ServerClock = std::chrono::steady_clock;

/// Per-request options for AsyncRetrievalServer::Submit.
struct SubmitOptions {
  /// Neighbors to return / filter candidates to refine; the same k and p
  /// as RetrievalBackend::Retrieve.
  size_t k = 1;
  size_t p = 1;
  /// Absolute completion deadline.  A request past its deadline is
  /// answered with kDeadlineExceeded — checked when it leaves the
  /// admission queue and again just before the backend spends exact
  /// distances on it — never silently dropped or served late.  Default:
  /// no deadline.
  ServerClock::time_point deadline = ServerClock::time_point::max();

  /// Convenience: an absolute deadline `budget` from now.
  template <typename Rep, typename Period>
  static ServerClock::time_point DeadlineIn(
      std::chrono::duration<Rep, Period> budget) {
    return ServerClock::now() +
           std::chrono::duration_cast<ServerClock::duration>(budget);
  }
};

struct AsyncServerOptions {
  /// Admission queue bound; a Submit that finds it full is rejected
  /// immediately with kResourceExhausted (load shedding, not unbounded
  /// buffering).  A handful of further requests beyond this live in the
  /// batcher/worker pipeline.
  size_t queue_capacity = 1024;
  /// Largest micro-batch the batcher will coalesce (also the resolution
  /// of the batch-size histogram).
  size_t max_batch = 64;
  /// Batching window measured from the first request of a batch: with 0
  /// (default) the batcher dispatches as soon as the queue is momentarily
  /// empty — an idle system answers at ~single-query latency, a loaded
  /// one grows batches naturally from backlog.  A positive window keeps
  /// the batch open up to this long waiting for more arrivals, trading
  /// idle latency for larger batches under light open-loop load.
  std::chrono::microseconds max_batch_delay{0};
  /// Worker threads executing dispatched batches (0 means 1).  More
  /// workers pipeline batches; within one batch, parallelism comes from
  /// RetrieveBatch itself.
  size_t num_workers = 1;
  /// `num_threads` handed to RetrievalBackend::RetrieveBatch per batch;
  /// 0 = hardware concurrency.  Keep num_workers * retrieve_threads near
  /// the core count to avoid oversubscription.
  size_t retrieve_threads = 0;
};

/// Counter snapshot from AsyncRetrievalServer::stats().
///
/// Invariants (once all futures are ready, e.g. after Shutdown):
///   submitted == admitted + rejected
///   admitted  == completed + expired + cancelled
struct ServerStats {
  size_t submitted = 0;  ///< All Submit calls.
  size_t admitted = 0;   ///< Entered the admission queue.
  size_t rejected = 0;   ///< Never queued: overflow, invalid k/p, or
                         ///< submitted after shutdown.
  size_t expired = 0;    ///< Answered kDeadlineExceeded at dequeue or
                         ///< just before refine.
  size_t cancelled = 0;  ///< Answered at Shutdown(kCancel) without
                         ///< reaching the backend.
  size_t completed = 0;  ///< Backend answered (OK or a backend error).
  size_t queue_depth = 0;  ///< Momentary admission-queue length.
  /// batch_size_histogram[i] = dispatched micro-batches of size i + 1.
  std::vector<size_t> batch_size_histogram;
};

/// The async serving front end: owns any RetrievalBackend (monolithic or
/// sharded) behind a Submit -> Future pipeline.
///
///   submitters -> bounded admission queue -> batcher thread -> bounded
///   batch queue -> worker pool -> RetrieveBatch -> promise completion
///
/// The batcher coalesces queued requests into adaptive micro-batches: it
/// keeps growing a batch while the queue is non-empty (up to max_batch),
/// capped by the max_batch_delay window, so batch size tracks load — an
/// idle server dispatches singletons immediately, a saturated one ships
/// full batches.  Requests in one micro-batch that share (k, p) run as a
/// single RetrieveBatch call; each admitted, non-expired request's result
/// is bit-identical to a direct RetrievalBackend::Retrieve.
///
/// Every submitted request's future becomes ready exactly once, whatever
/// happens: backend result, kResourceExhausted (admission overflow),
/// kDeadlineExceeded (expired in queue or just before refine),
/// kInvalidArgument (k or p == 0), or kFailedPrecondition (shutdown).
///
/// Thread-safety: Submit/Retrieve/stats are safe from any thread.
/// Shutdown is idempotent but must not race itself from two threads.  The
/// backend must stay alive and unmutated (no Insert/Remove) while the
/// server is running, matching RetrievalBackend's concurrency contract.
class AsyncRetrievalServer {
 public:
  enum class DrainMode {
    kDrain,   ///< Execute everything already admitted, then stop.
    kCancel,  ///< Answer everything not yet executing with
              ///< kFailedPrecondition, then stop.  In-flight batches
              ///< still finish normally.
  };

  explicit AsyncRetrievalServer(const RetrievalBackend* backend,
                                AsyncServerOptions options = {});
  /// Shutdown(kDrain) if still running.
  ~AsyncRetrievalServer();

  AsyncRetrievalServer(const AsyncRetrievalServer&) = delete;
  AsyncRetrievalServer& operator=(const AsyncRetrievalServer&) = delete;

  /// Enqueues one retrieval.  Never blocks: on overflow (or invalid
  /// options, or after shutdown) the returned future is already ready
  /// with the rejection status.  `dx` may be invoked on a worker thread
  /// any time before the future is ready; captured state must outlive
  /// that.
  Future<StatusOr<RetrievalResult>> Submit(DxToDatabaseFn dx,
                                           SubmitOptions options);

  /// Blocking convenience: Submit + Get.
  StatusOr<RetrievalResult> Retrieve(
      DxToDatabaseFn dx, size_t k, size_t p,
      ServerClock::time_point deadline = ServerClock::time_point::max());

  /// Stops the server: closes admission, drains or cancels queued work,
  /// joins all threads.  On return every submitted future is ready.
  void Shutdown(DrainMode mode = DrainMode::kDrain);

  ServerStats stats() const;
  const RetrievalBackend& backend() const { return *backend_; }
  const AsyncServerOptions& options() const { return options_; }

 private:
  struct Request {
    DxToDatabaseFn dx;
    size_t k = 0;
    size_t p = 0;
    ServerClock::time_point deadline;
    Promise<StatusOr<RetrievalResult>> promise;
  };
  using Batch = std::vector<Request>;

  void BatcherLoop();
  void WorkerLoop();
  /// Deadline/cancel gate when a request leaves the admission queue:
  /// appends it to `batch` or completes its promise.  Returns whether it
  /// joined the batch.
  bool AdmitToBatch(Request r, Batch* batch, ServerClock::time_point now);
  /// Re-gates each request (the check "before refine"), groups survivors
  /// by (k, p), runs RetrieveBatch per group, completes every promise.
  void ExecuteBatch(Batch batch);
  void RecordBatchSize(size_t size);
  void CompleteCancelled(Request* r);

  const RetrievalBackend* backend_;
  AsyncServerOptions options_;
  BoundedQueue<Request> queue_;    // admission (MPSC)
  BoundedQueue<Batch> dispatch_;   // batcher -> workers (SPMC)
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> cancel_{false};

  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> admitted_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> expired_{0};
  std::atomic<size_t> cancelled_{0};
  std::atomic<size_t> completed_{0};
  mutable std::mutex histogram_mu_;
  std::vector<size_t> batch_size_histogram_;

  std::thread batcher_;
  std::vector<std::thread> workers_;
};

}  // namespace qse

#endif  // QSE_SERVER_ASYNC_RETRIEVAL_SERVER_H_
