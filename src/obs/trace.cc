#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace qse {
namespace obs {

void RequestTrace::AddSpan(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

void RequestTrace::CloseSpan(const char* name, uint64_t start_ns,
                             std::vector<TraceArg> args) {
  TraceSpan span;
  span.name = name;
  span.start_ns = start_ns;
  uint64_t now = NowNs();
  span.dur_ns = now >= start_ns ? now - start_ns : 0;
  span.tid = ThisThreadId();
  span.args = std::move(args);
  AddSpan(std::move(span));
}

std::vector<TraceSpan> RequestTrace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

uint32_t RequestTrace::ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* InternString(const std::string& s) {
  // Leaky by design (like the global metric registry): interned names
  // must outlive every trace that references them, including traces
  // still draining during static teardown.
  static std::mutex* mu = new std::mutex;
  static std::unordered_set<std::string>* pool =
      new std::unordered_set<std::string>;
  std::lock_guard<std::mutex> lock(*mu);
  auto it = pool->find(s);
  if (it != pool->end()) return it->c_str();
  if (pool->size() >= kInternPoolCap) return "<intern-pool-full>";
  return pool->insert(s).first->c_str();
}

std::string RequestTrace::ChromeTraceJson() const {
  std::vector<TraceSpan> all = spans();
  // Stable viewer layout: order by start time.
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : all) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << span.name
        << "\",\"cat\":\"qse\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.tid
        << ",\"ts\":" << (span.start_ns / 1000.0)
        << ",\"dur\":" << (span.dur_ns / 1000.0);
    if (!span.args.empty()) {
      out << ",\"args\":{";
      for (size_t i = 0; i < span.args.size(); ++i) {
        const TraceArg& arg = span.args[i];
        if (i > 0) out << ",";
        out << "\"" << arg.key << "\":";
        if (arg.str_value != nullptr) {
          out << "\"" << arg.str_value << "\"";
        } else {
          out << arg.int_value;
        }
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

double SpanCoverage(const std::vector<TraceSpan>& spans,
                    const char* denominator_name) {
  const TraceSpan* denom = nullptr;
  for (const TraceSpan& span : spans) {
    if (std::string(span.name) == denominator_name) {
      denom = &span;
      break;
    }
  }
  if (denom == nullptr || denom->dur_ns == 0) return 0.0;
  const uint64_t lo = denom->start_ns;
  const uint64_t hi = denom->start_ns + denom->dur_ns;
  // Union of all other spans clipped to [lo, hi).
  std::vector<std::pair<uint64_t, uint64_t>> intervals;
  for (const TraceSpan& span : spans) {
    if (&span == denom) continue;
    uint64_t s = std::max(span.start_ns, lo);
    uint64_t e = std::min(span.start_ns + span.dur_ns, hi);
    if (e > s) intervals.emplace_back(s, e);
  }
  std::sort(intervals.begin(), intervals.end());
  uint64_t covered = 0;
  uint64_t cursor = lo;
  for (const auto& iv : intervals) {
    uint64_t s = std::max(iv.first, cursor);
    if (iv.second > s) {
      covered += iv.second - s;
      cursor = iv.second;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(hi - lo);
}

}  // namespace obs
}  // namespace qse
