#ifndef QSE_RETRIEVAL_RETRIEVAL_ENGINE_H_
#define QSE_RETRIEVAL_RETRIEVAL_ENGINE_H_

#include <unordered_map>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_backend.h"
#include "src/util/statusor.h"
#include "src/util/top_k.h"

namespace qse {

/// The retrieval engine: the three-step filter-and-refine pipeline of
/// Sec. 8 (embed the query, keep the p most similar vectors, re-rank
/// those p by exact distance), served batched and thread-parallel on top
/// of the flat SoA embedded database.
///
/// Also owns the row <-> database-id bookkeeping needed for dynamic
/// datasets (Sec. 7.1): Insert embeds and appends a new object in O(d)
/// exact distances, Remove drops one in O(d) memory traffic.
///
/// Thread-safety: Retrieve/RetrieveBatch are const and safe to call
/// concurrently as long as the embedder, scorer and `dx` callbacks are;
/// Insert/Remove must not run concurrently with anything else.
class RetrievalEngine : public RetrievalBackend {
 public:
  /// Does not own its arguments; `db_ids[i]` is the database id of row i
  /// of `db`.  The engine mutates `db` only through Insert/Remove.
  RetrievalEngine(const Embedder* embedder, const FilterScorer* scorer,
                  EmbeddedDatabase* db, std::vector<size_t> db_ids);

  /// Retrieves the k best matches among the top-p filter candidates;
  /// neighbor indices are db positions (rows of the embedded database).
  ///
  /// Options are validated by ValidateRetrievalOptions; an empty
  /// database is FailedPrecondition.  p is clamped to the database size
  /// (p = n degenerates to brute force, as in the paper).  want_stats
  /// reports the whole database as a single pseudo-shard.
  StatusOr<RetrievalResponse> Retrieve(
      const RetrievalRequest& request) const override;

  /// Retrieves a batch of queries in parallel via qse::ParallelFor.
  /// results[i] corresponds to queries[i] and is bit-identical to
  /// Retrieve({queries[i], options}) — each query runs the exact same
  /// single-query code path, whatever options.num_threads is.
  StatusOr<std::vector<RetrievalResponse>> RetrieveBatch(
      const std::vector<DxToDatabaseFn>& queries,
      const RetrievalOptions& options) const override;

  /// Embeds a new object (<= 2d exact distances via `dx`) and appends it
  /// to the database under `db_id`.  Fails with InvalidArgument when the
  /// id is already present.
  Status Insert(size_t db_id, const DxToDatabaseFn& dx) override;

  /// Removes the object with id `db_id` (swap-with-last, O(d)).  Row
  /// positions of the swapped row change; neighbors are always reported
  /// against the current layout.  Fails with NotFound for unknown ids.
  Status Remove(size_t db_id) override;

  /// Number of database objects currently live.
  size_t size() const override { return db_->size(); }

  /// Database id of row `row`.
  size_t db_id_of(size_t row) const override { return db_ids_[row]; }
  const std::vector<size_t>& db_ids() const { return db_ids_; }
  const EmbeddedDatabase& db() const { return *db_; }

 private:
  /// The single-query pipeline behind both entry points, taking the
  /// envelope pieces by reference so the batch loop never copies a
  /// query functor or the options (tenant_id) per query.
  StatusOr<RetrievalResponse> RetrieveOne(
      const DxToDatabaseFn& dx, const RetrievalOptions& options) const;

  const Embedder* embedder_;
  const FilterScorer* scorer_;
  EmbeddedDatabase* db_;
  std::vector<size_t> db_ids_;                 // row -> database id
  std::unordered_map<size_t, size_t> row_of_;  // database id -> row
};

}  // namespace qse

#endif  // QSE_RETRIEVAL_RETRIEVAL_ENGINE_H_
