#ifndef QSE_TESTS_TEST_UTIL_H_
#define QSE_TESTS_TEST_UTIL_H_

#include <numeric>
#include <vector>

#include "src/data/dataset.h"
#include "src/distance/lp.h"
#include "src/retrieval/retrieval_backend.h"
#include "src/util/random.h"

namespace qse {
namespace test {

/// Shorthand for the common k/p/num_threads envelope in tests.
inline RetrievalOptions Opts(size_t k, size_t p, size_t num_threads = 0) {
  RetrievalOptions options(k, p);
  options.num_threads = num_threads;
  return options;
}

/// Uniform random points in the unit square under L2 — the toy space of
/// the paper's Fig. 1, used across the core test suites.
inline ObjectOracle<Vector> MakePlaneOracle(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vector> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  return ObjectOracle<Vector>(std::move(pts), L2Distance);
}

/// [0, n) as ids.
inline std::vector<size_t> Iota(size_t n, size_t start = 0) {
  std::vector<size_t> ids(n);
  std::iota(ids.begin(), ids.end(), start);
  return ids;
}

}  // namespace test
}  // namespace qse

#endif  // QSE_TESTS_TEST_UTIL_H_
