#include "src/util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace qse {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(7);
  std::set<size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformInHalfOpenRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(1.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(29);
  std::vector<double> w = {0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.25, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  // The child stream should not mirror the parent stream.
  bool differs = false;
  Rng parent_copy(31);
  parent_copy.Fork();
  for (int i = 0; i < 10; ++i) {
    if (child.UniformInt(0, 1 << 30) != a.UniformInt(0, 1 << 30)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace qse
