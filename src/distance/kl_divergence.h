#ifndef QSE_DISTANCE_KL_DIVERGENCE_H_
#define QSE_DISTANCE_KL_DIVERGENCE_H_

#include "src/distance/distance.h"

namespace qse {

/// Kullback-Leibler divergence KL(p || q) over discrete distributions.
/// Inputs are treated as unnormalized non-negative histograms and are
/// normalized internally; `epsilon` smoothing keeps the value finite when q
/// has zero bins.  KL is asymmetric and non-metric — one of the distance
/// measures the paper's introduction names as motivating this work.
double KlDivergence(const Vector& p, const Vector& q, double epsilon = 1e-10);

/// Symmetrized KL: KL(p||q) + KL(q||p).  Still non-metric (no triangle
/// inequality) but symmetric; convenient as a DX for tests and examples.
double SymmetricKlDivergence(const Vector& p, const Vector& q,
                             double epsilon = 1e-10);

/// Jensen-Shannon divergence; bounded, symmetric smoothing of KL.
double JensenShannonDivergence(const Vector& p, const Vector& q);

}  // namespace qse

#endif  // QSE_DISTANCE_KL_DIVERGENCE_H_
