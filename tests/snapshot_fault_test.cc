// The atomic-publish matrix: every snapshot fault point (write / fsync /
// rename) crossed with every WAL fsync policy.  The invariant under
// test: a failed snapshot publish NEVER leaves a torn snapshot visible —
// recovery after the failure sees either the previous snapshot (plus the
// untruncated WAL tail) or no snapshot at all, and in both cases
// reproduces the live state bit for bit.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/persist/durability.h"
#include "src/persist/durable_backend.h"
#include "src/persist/snapshot.h"
#include "src/retrieval/embedded_database.h"
#include "src/retrieval/filter_scorer.h"
#include "src/retrieval/retrieval_engine.h"
#include "tests/line_universe.h"

namespace qse {
namespace persist {
namespace {

using test::DxOfObject;
using test::kLineDims;
using test::LineEmbedder;

struct MonoStack {
  LineEmbedder embedder;
  L2Scorer scorer;
  EmbeddedDatabase db{kLineDims};
  RetrievalEngine engine{&embedder, &scorer, &db, {}};
};

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove((dir + "/wal.qse").c_str());
  std::remove((dir + "/snapshot.qse").c_str());
  std::remove((dir + "/snapshot.qse.tmp").c_str());
  return dir;
}

void ExpectDbsIdentical(const EmbeddedDatabase& a, const EmbeddedDatabase& b,
                        const std::string& what) {
  SCOPED_TRACE(what);
  EmbeddedDatabase::Snapshot sa = a.snapshot();
  EmbeddedDatabase::Snapshot sb = b.snapshot();
  const EmbeddedDatabase::View& va = sa.view();
  const EmbeddedDatabase::View& vb = sb.view();
  ASSERT_EQ(va.size(), vb.size());
  ASSERT_EQ(va.dims(), vb.dims());
  EXPECT_EQ(0, std::memcmp(va.data(), vb.data(),
                           va.size() * va.dims() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(va.ids(), vb.ids(), va.size() * sizeof(size_t)));
}

/// Recovers the durability directory into a fresh stack and asserts bit
/// identity with `live`.
void ExpectRecoversTo(const DurabilityOptions& opts,
                      const EmbeddedDatabase& live, const std::string& what) {
  SCOPED_TRACE(what);
  MonoStack recovered;
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE(manager.value()->InstallSnapshot({&recovered.db}).ok());
  recovered.engine.RebuildIdIndex();
  StatusOr<uint64_t> replayed = manager.value()->Replay(&recovered.engine);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  ExpectDbsIdentical(live, recovered.db, what);
}

struct FaultCase {
  testing::FaultPoint point;
  const char* name;
};

class SnapshotFaultMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

constexpr FaultCase kFaults[] = {
    {testing::FaultPoint::kSnapshotWrite, "write"},
    {testing::FaultPoint::kSnapshotFsync, "fsync"},
    {testing::FaultPoint::kSnapshotRename, "rename"},
};
constexpr FsyncPolicy kPolicies[] = {
    FsyncPolicy::kEveryRecord, FsyncPolicy::kEveryN, FsyncPolicy::kOff};

TEST_P(SnapshotFaultMatrix, FailedPublishNeverTearsTheVisibleSnapshot) {
  const FaultCase fault = kFaults[std::get<0>(GetParam())];
  const FsyncPolicy policy = kPolicies[std::get<1>(GetParam())];
  const std::string dir = FreshDir(
      std::string("snapshot_fault_") + fault.name + "_" +
      std::to_string(static_cast<int>(policy)));

  DurabilityOptions opts;
  opts.dir = dir;
  opts.fsync = policy;
  opts.fsync_every_n = 4;

  MonoStack live;
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok()) << manager.status();
  DurableBackend durable(&live.engine, &live.embedder, manager.value().get(),
                         {&live.db});

  // A good first snapshot, so the fault later has a previous image to
  // (not) destroy.
  for (size_t id = 0; id < 12; ++id) {
    ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
  }
  ASSERT_TRUE(durable.WriteSnapshotNow().ok());
  for (size_t id = 12; id < 20; ++id) {
    ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
  }
  ASSERT_TRUE(durable.Remove(14).ok());

  // Inject: the publish must fail and report it (fault consumed once).
  testing::SetFaultPoint(fault.point);
  Status failed = durable.WriteSnapshotNow();
  ASSERT_FALSE(failed.ok()) << "fault point " << fault.name
                            << " did not fire";
  EXPECT_EQ(StatusCode::kIOError, failed.code());

  // The failed publish left the OLD snapshot + the full WAL tail: the
  // WAL must not have been truncated (that only happens after a
  // successful publish), and recovery must still reach the live state.
  StatusOr<WalReadResult> wal = ReadWal(dir + "/wal.qse");
  ASSERT_TRUE(wal.ok());
  EXPECT_GT(wal->records.size(), 0u)
      << "WAL was compacted despite the failed snapshot publish";
  ExpectRecoversTo(opts, live.db, "recovery after failed publish");

  // The fault was consumed: the retry publishes cleanly, compacts the
  // WAL, and recovery still agrees.
  ASSERT_TRUE(durable.WriteSnapshotNow().ok());
  StatusOr<WalReadResult> compacted = ReadWal(dir + "/wal.qse");
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(0u, compacted->records.size());
  ExpectRecoversTo(opts, live.db, "recovery after retried publish");
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllPolicies, SnapshotFaultMatrix,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 3)));

TEST(SnapshotFault, FreshDirectoryFaultLeavesWalOnlyRecovery) {
  // No previous snapshot at all: a failed first publish must leave the
  // directory in the WAL-only state (a *.tmp leftover is ignored).
  const std::string dir = FreshDir("snapshot_fault_fresh");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.fsync = FsyncPolicy::kEveryRecord;

  MonoStack live;
  StatusOr<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(opts);
  ASSERT_TRUE(manager.ok());
  DurableBackend durable(&live.engine, &live.embedder, manager.value().get(),
                         {&live.db});
  for (size_t id = 0; id < 9; ++id) {
    ASSERT_TRUE(durable.Insert(id, DxOfObject(id)).ok());
  }
  testing::SetFaultPoint(testing::FaultPoint::kSnapshotRename);
  ASSERT_FALSE(durable.WriteSnapshotNow().ok());

  struct stat st;
  EXPECT_NE(0, ::stat((dir + "/snapshot.qse").c_str(), &st))
      << "a failed first publish must not materialize snapshot.qse";
  ExpectRecoversTo(opts, live.db, "wal-only recovery after failed publish");
}

}  // namespace
}  // namespace persist
}  // namespace qse
