#include "src/distance/lp.h"

#include <cassert>
#include <cmath>

namespace qse {

// The span kernels accumulate in four independent lanes (i % 4) and
// combine as (l0 + l1) + (l2 + l3).  A single running sum serializes on
// the ~4-cycle FP add latency — at d = 256 that is ~1024 stall cycles per
// row, slower than the memory stream itself; four lanes keep the adders
// busy and let the compiler use SIMD.  The early-abandon scan
// (filter_scorer.cc) replicates exactly this lane discipline so its kept
// scores are bit-identical to these kernels'.

double L1DistanceSpan(const double* a, const double* b, size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += std::fabs(a[i] - b[i]);
    l1 += std::fabs(a[i + 1] - b[i + 1]);
    l2 += std::fabs(a[i + 2] - b[i + 2]);
    l3 += std::fabs(a[i + 3] - b[i + 3]);
  }
  for (; i < n; ++i) l0 += std::fabs(a[i] - b[i]);
  return (l0 + l1) + (l2 + l3);
}

double SquaredL2DistanceSpan(const double* a, const double* b, size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    double d0 = a[i] - b[i];
    double d1 = a[i + 1] - b[i + 1];
    double d2 = a[i + 2] - b[i + 2];
    double d3 = a[i + 3] - b[i + 3];
    l0 += d0 * d0;
    l1 += d1 * d1;
    l2 += d2 * d2;
    l3 += d3 * d3;
  }
  for (; i < n; ++i) {
    double d = a[i] - b[i];
    l0 += d * d;
  }
  return (l0 + l1) + (l2 + l3);
}

double L1Distance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  return L1DistanceSpan(a.data(), b.data(), a.size());
}

double SquaredL2Distance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  return SquaredL2DistanceSpan(a.data(), b.data(), a.size());
}

double L2Distance(const Vector& a, const Vector& b) {
  return std::sqrt(SquaredL2Distance(a, b));
}

double LInfDistance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = std::fabs(a[i] - b[i]);
    if (d > worst) worst = d;
  }
  return worst;
}

double LpDistance(const Vector& a, const Vector& b, double p) {
  assert(a.size() == b.size());
  assert(p >= 1.0);
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::pow(std::fabs(a[i] - b[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

}  // namespace qse
