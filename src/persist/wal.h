#ifndef QSE_PERSIST_WAL_H_
#define QSE_PERSIST_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/statusor.h"

namespace qse {
namespace persist {

/// The write-ahead log of the durability subsystem: one append-only file
/// of length-prefixed, versioned, CRC-guarded mutation records — the
/// wire_codec framing discipline applied to disk, where the adversary is
/// a power cut instead of a hostile peer.
///
/// File layout:
///
///     header:  u32 magic "QSEL" | u16 version | u16 reserved |
///              u64 base_seq
///     record:  u32 magic "QSER" | u32 payload_len | u32 crc32(payload) |
///              payload
///     payload: u16 version | u16 op | u64 seq | u64 db_id |
///              (kInsert) u64 dims + dims raw float64
///
/// All integers and doubles are host-order little-endian, the same
/// contract as util/serialize and the wire codec.  `base_seq` is the
/// sequence number of the last record compacted OUT of this file: after
/// a snapshot at cut C is durably published, the log is rewritten empty
/// with base_seq = C, so replay never needs records a snapshot already
/// holds.  Record sequence numbers are assigned contiguously by the
/// writer (base_seq + 1, base_seq + 2, ...).
///
/// Reading is defensive end to end: every length prefix is validated
/// against the bytes actually remaining BEFORE any allocation, the CRC
/// is checked before any payload field is trusted, and decode runs
/// through the bounds-checked ByteReader.  A record that fails any of
/// these checks ends the valid prefix — in an append-only log, nothing
/// after the first corruption can be trusted, so the reader reports the
/// clean prefix plus how many bytes it refused, and the recovery policy
/// (DurabilityOptions::repair_wal) decides between truncating to the
/// prefix and failing kDataLoss.  The reader never crashes and never
/// allocates more than the file it was handed.
inline constexpr uint32_t kWalFileMagic = 0x4C455351u;    // "QSEL"
inline constexpr uint32_t kWalRecordMagic = 0x52455351u;  // "QSER"
inline constexpr uint16_t kWalVersion = 1;
/// Plausibility cap on one record's payload (dims cap times
/// sizeof(double) plus headers, rounded way up).
inline constexpr uint32_t kMaxWalRecordBytes = 16u << 20;
/// Same dims plausibility cap as the wire codec.
inline constexpr uint64_t kMaxWalDims = 1u << 20;
/// Bytes of the file header and of each record's frame header.
inline constexpr size_t kWalFileHeaderBytes = 16;
inline constexpr size_t kWalRecordHeaderBytes = 12;

enum class WalOp : uint16_t {
  kInsert = 1,  // row carries the EMBEDDED vector (replay needs no dx).
  kRemove = 2,
};

/// One logged mutation.  Inserts log the embedded row, not the raw
/// object: replay is then closure-free and deterministic — applying the
/// records in order through the engine API reproduces the exact same
/// Append/SwapRemove sequence, which is what makes recovery bit-identical
/// to the crashed process (the PR 5 serializable-snapshot guarantee).
struct WalRecord {
  WalOp op = WalOp::kInsert;
  uint64_t seq = 0;
  uint64_t db_id = 0;
  std::vector<double> row;  // kInsert only.
};

/// How often the WAL writer fsyncs.
enum class FsyncPolicy {
  /// fsync after every record: an acknowledged mutation survives power
  /// loss.  The strongest and slowest policy.
  kEveryRecord,
  /// fsync every fsync_every_n records: bounds the loss window to N
  /// acknowledged mutations while amortizing the sync cost.
  kEveryN,
  /// Never fsync (the OS flushes when it pleases): survives process
  /// crashes (the page cache persists) but not power loss.
  kOff,
};

/// Encodes one record as its on-disk bytes (frame header + payload).
std::string EncodeWalRecord(const WalRecord& record);

/// Result of scanning a WAL file.
struct WalReadResult {
  /// The records of the valid prefix, in file order.  Sequence-number
  /// hygiene (duplicates, gaps) is the replay layer's job — byte-level
  /// integrity is this layer's.
  std::vector<WalRecord> records;
  uint64_t base_seq = 0;
  /// File offset where the valid prefix ends (== file size when clean).
  uint64_t valid_bytes = 0;
  /// Bytes after the valid prefix the reader refused to trust.
  uint64_t dropped_bytes = 0;
  /// Why the prefix ended early (kDataLoss describing the first broken
  /// record); OK when the whole file parsed.
  Status tail_status = Status::OK();
};

/// Scans `path` and returns its valid prefix.  A missing file reads as
/// empty (base_seq 0, no records) — a fresh directory is not an error.
/// kDataLoss only for a file whose HEADER is unreadable: with no valid
/// header there is no valid prefix to repair to.
StatusOr<WalReadResult> ReadWal(const std::string& path);

/// Appends records to a WAL file under an fsync policy.  Not
/// thread-safe; the durability manager serializes callers.
class WalWriter {
 public:
  /// Opens `path` for appending at `offset` (the valid-prefix length —
  /// anything after it is truncated away first, discarding a torn tail),
  /// writing a fresh header with `base_seq` when the file is empty.
  /// `next_seq` is the sequence number the first appended record gets.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                   FsyncPolicy policy,
                                                   size_t fsync_every_n,
                                                   uint64_t offset,
                                                   uint64_t base_seq,
                                                   uint64_t next_seq);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record, assigning it the next sequence number (returned
  /// through record->seq), then applies the fsync policy.
  Status Append(WalRecord* record);

  /// Forces an fsync now (manual checkpoints; policy-independent).
  Status Sync();

  /// Truncates the log to an empty file with a new base_seq — the
  /// compaction step after a snapshot at cut `base_seq` is durably
  /// published.  Subsequent records continue at base_seq + 1.
  Status ResetToBase(uint64_t base_seq);

  /// Sequence number of the last appended (or compacted-away) record.
  uint64_t last_seq() const { return next_seq_ - 1; }

 private:
  WalWriter(int fd, std::string path, FsyncPolicy policy,
            size_t fsync_every_n, uint64_t next_seq);

  Status WriteFully(const void* data, size_t size);
  Status MaybeSync();

  int fd_ = -1;
  std::string path_;
  FsyncPolicy policy_;
  size_t fsync_every_n_;
  uint64_t next_seq_;
  size_t unsynced_records_ = 0;
};

}  // namespace persist
}  // namespace qse

#endif  // QSE_PERSIST_WAL_H_
