#include "src/net/wire_codec.h"

#include <sstream>

#include "src/util/serialize.h"

namespace qse {
namespace net {
namespace {

/// Writes the shared preamble.
void WritePreamble(BinaryWriter* w, uint16_t tag) {
  w->WriteU32(kWireMagic);
  w->WriteU16(kWireVersion);
  w->WriteU16(tag);
}

/// Checks magic and version, returns the tag.  Bad magic / version are
/// kInvalidArgument: the frame arrived intact (framing said so), its
/// content is what we refuse.
Status ReadPreamble(ByteReader* r, uint16_t* tag) {
  uint32_t magic = 0;
  uint16_t version = 0;
  QSE_RETURN_IF_ERROR(r->ReadU32(&magic));
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad wire magic");
  }
  QSE_RETURN_IF_ERROR(r->ReadU16(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version) + " (speaking " +
                                   std::to_string(kWireVersion) + ")");
  }
  return r->ReadU16(tag);
}

/// A well-formed frame ends exactly where its fields do.
Status RequireExhausted(const ByteReader& r) {
  if (!r.exhausted()) {
    return Status::DataLoss(std::to_string(r.remaining()) +
                            " trailing bytes in frame");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeRequest(const WireRequest& request) {
  std::ostringstream out;
  BinaryWriter w(&out);
  WritePreamble(&w, static_cast<uint16_t>(request.op));
  w.WriteU64(request.deadline_budget_ns);
  w.WriteU8(request.want_trace ? 1 : 0);
  w.WriteU64(request.options.k);
  w.WriteU64(request.options.p);
  w.WriteU64(request.options.num_threads);
  w.WriteU8(request.options.want_stats ? 1 : 0);
  w.WriteU8(static_cast<uint8_t>(request.options.priority));
  w.WriteU8(static_cast<uint8_t>(request.options.filter_precision));
  w.WriteString(request.options.tenant_id);
  w.WriteU64(request.db_id);
  w.WriteDoubleVec(request.query);
  return out.str();
}

Status DecodeRequest(const std::string& payload, WireRequest* out) {
  ByteReader r(payload);
  uint16_t tag = 0;
  QSE_RETURN_IF_ERROR(ReadPreamble(&r, &tag));
  if (tag < static_cast<uint16_t>(WireOp::kScan) ||
      tag > static_cast<uint16_t>(WireOp::kInfo)) {
    return Status::InvalidArgument("unknown wire op " + std::to_string(tag));
  }
  out->op = static_cast<WireOp>(tag);
  QSE_RETURN_IF_ERROR(r.ReadU64(&out->deadline_budget_ns));
  uint8_t want_trace = 0;
  QSE_RETURN_IF_ERROR(r.ReadU8(&want_trace));
  if (want_trace > 1) {
    return Status::InvalidArgument("want_trace flag out of range");
  }
  out->want_trace = want_trace != 0;
  uint64_t k = 0, p = 0, num_threads = 0;
  QSE_RETURN_IF_ERROR(r.ReadU64(&k));
  QSE_RETURN_IF_ERROR(r.ReadU64(&p));
  QSE_RETURN_IF_ERROR(r.ReadU64(&num_threads));
  out->options.k = static_cast<size_t>(k);
  out->options.p = static_cast<size_t>(p);
  out->options.num_threads = static_cast<size_t>(num_threads);
  uint8_t want_stats = 0, priority = 0, precision = 0;
  QSE_RETURN_IF_ERROR(r.ReadU8(&want_stats));
  if (want_stats > 1) {
    return Status::InvalidArgument("want_stats flag out of range");
  }
  out->options.want_stats = want_stats != 0;
  QSE_RETURN_IF_ERROR(r.ReadU8(&priority));
  if (priority >= kNumPriorityLanes) {
    return Status::InvalidArgument("priority out of range: " +
                                   std::to_string(priority));
  }
  out->options.priority = static_cast<RequestPriority>(priority);
  QSE_RETURN_IF_ERROR(r.ReadU8(&precision));
  if (precision >= kNumFilterPrecisions) {
    return Status::InvalidArgument("filter precision out of range: " +
                                   std::to_string(precision));
  }
  out->options.filter_precision = static_cast<FilterPrecision>(precision);
  QSE_RETURN_IF_ERROR(r.ReadString(&out->options.tenant_id, kMaxWireTenantId));
  QSE_RETURN_IF_ERROR(r.ReadU64(&out->db_id));
  QSE_RETURN_IF_ERROR(r.ReadDoubleVec(&out->query, kMaxWireDims));
  return RequireExhausted(r);
}

std::string EncodeResponse(const WireResponse& response) {
  std::ostringstream out;
  BinaryWriter w(&out);
  WritePreamble(&w, kResponseTag);
  w.WriteU8(static_cast<uint8_t>(response.code));
  w.WriteString(response.message);
  w.WriteU64(response.exact_distances);
  w.WriteU64(response.embedding_distances);
  w.WriteU64(response.rows);
  w.WriteU64(response.rows_pruned);
  w.WriteU64(response.db_size);
  w.WriteU64(response.neighbors.size());
  for (const ScoredIndex& n : response.neighbors) {
    w.WriteU64(n.index);
    w.WriteDouble(n.score);
  }
  w.WriteU64(response.shard_stats.size());
  for (const ShardScanStats& s : response.shard_stats) {
    w.WriteU64(s.rows);
    w.WriteU64(s.candidates);
  }
  w.WriteU64(response.spans.size());
  for (const WireSpan& s : response.spans) {
    w.WriteString(s.name);
    w.WriteU64(s.start_ns);
    w.WriteU64(s.dur_ns);
    w.WriteU32(s.tid);
  }
  return out.str();
}

Status DecodeResponse(const std::string& payload, WireResponse* out) {
  ByteReader r(payload);
  uint16_t tag = 0;
  QSE_RETURN_IF_ERROR(ReadPreamble(&r, &tag));
  if (tag != kResponseTag) {
    return Status::InvalidArgument("frame is not a response (tag " +
                                   std::to_string(tag) + ")");
  }
  uint8_t code = 0;
  QSE_RETURN_IF_ERROR(r.ReadU8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  out->code = static_cast<StatusCode>(code);
  QSE_RETURN_IF_ERROR(r.ReadString(&out->message, kMaxWireMessage));
  QSE_RETURN_IF_ERROR(r.ReadU64(&out->exact_distances));
  QSE_RETURN_IF_ERROR(r.ReadU64(&out->embedding_distances));
  QSE_RETURN_IF_ERROR(r.ReadU64(&out->rows));
  QSE_RETURN_IF_ERROR(r.ReadU64(&out->rows_pruned));
  QSE_RETURN_IF_ERROR(r.ReadU64(&out->db_size));

  // Repeated groups: validate each count against both its plausibility
  // cap and the bytes still in the frame before reserving anything.
  uint64_t num_neighbors = 0;
  QSE_RETURN_IF_ERROR(r.ReadU64(&num_neighbors));
  if (num_neighbors > kMaxWireNeighbors ||
      num_neighbors > r.remaining() / 16) {
    return Status::DataLoss("neighbor count implausible: " +
                            std::to_string(num_neighbors));
  }
  out->neighbors.clear();
  out->neighbors.reserve(num_neighbors);
  for (uint64_t i = 0; i < num_neighbors; ++i) {
    uint64_t index = 0;
    double score = 0;
    QSE_RETURN_IF_ERROR(r.ReadU64(&index));
    QSE_RETURN_IF_ERROR(r.ReadDouble(&score));
    out->neighbors.push_back({static_cast<size_t>(index), score});
  }

  uint64_t num_stats = 0;
  QSE_RETURN_IF_ERROR(r.ReadU64(&num_stats));
  if (num_stats > kMaxWireShardStats || num_stats > r.remaining() / 16) {
    return Status::DataLoss("shard stat count implausible: " +
                            std::to_string(num_stats));
  }
  out->shard_stats.clear();
  out->shard_stats.reserve(num_stats);
  for (uint64_t i = 0; i < num_stats; ++i) {
    uint64_t rows = 0, candidates = 0;
    QSE_RETURN_IF_ERROR(r.ReadU64(&rows));
    QSE_RETURN_IF_ERROR(r.ReadU64(&candidates));
    out->shard_stats.push_back(
        {static_cast<size_t>(rows), static_cast<size_t>(candidates)});
  }

  uint64_t num_spans = 0;
  QSE_RETURN_IF_ERROR(r.ReadU64(&num_spans));
  // A span is at least 28 bytes (8-byte name length + 8 + 8 + 4).
  if (num_spans > kMaxWireSpans || num_spans > r.remaining() / 28) {
    return Status::DataLoss("span count implausible: " +
                            std::to_string(num_spans));
  }
  out->spans.clear();
  out->spans.reserve(num_spans);
  for (uint64_t i = 0; i < num_spans; ++i) {
    WireSpan span;
    QSE_RETURN_IF_ERROR(r.ReadString(&span.name, kMaxWireSpanName));
    QSE_RETURN_IF_ERROR(r.ReadU64(&span.start_ns));
    QSE_RETURN_IF_ERROR(r.ReadU64(&span.dur_ns));
    QSE_RETURN_IF_ERROR(r.ReadU32(&span.tid));
    out->spans.push_back(std::move(span));
  }
  return RequireExhausted(r);
}

}  // namespace net
}  // namespace qse
