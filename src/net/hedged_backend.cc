#include "src/net/hedged_backend.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <thread>
#include <utility>

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace qse {
namespace net {
namespace {

uint64_t NsSince(MonotonicClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          MonotonicClock::now() - start)
          .count());
}

}  // namespace

HedgedReplicaBackend::HedgedReplicaBackend(
    std::vector<std::shared_ptr<RetrievalBackend>> replicas,
    HedgedBackendOptions options)
    : replicas_(std::move(replicas)), options_(options) {
  QSE_CHECK_MSG(!replicas_.empty(), "a replica set needs at least 1 replica");
  auto& registry = obs::MetricRegistry::Global();
  replica_metrics_.reserve(replicas_.size());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    const std::string label = "{replica=\"" + std::to_string(r) + "\"}";
    ReplicaMetrics m;
    m.attempts = registry.GetCounter("qse_replica_attempts_total" + label);
    m.errors = registry.GetCounter("qse_replica_errors_total" + label);
    m.hedges = registry.GetCounter("qse_replica_hedges_total" + label);
    m.wins = registry.GetCounter("qse_replica_wins_total" + label);
    m.latency_ns = registry.GetHistogram("qse_replica_latency_ns" + label,
                                         obs::DefaultLatencyBoundariesNs());
    replica_metrics_.push_back(m);
  }
  hedged_fired_total_ = registry.GetCounter("qse_hedged_fired_total");
  hedged_wins_total_ = registry.GetCounter("qse_hedged_wins_total");
}

HedgedReplicaBackend::~HedgedReplicaBackend() {
  // Stragglers (losing attempts still in flight on detached threads)
  // touch replica backends and metrics through `this`; hold destruction
  // until the last one signs off.
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

std::chrono::nanoseconds HedgedReplicaBackend::HedgeDelayFor(size_t r) const {
  std::chrono::nanoseconds delay = options_.initial_hedge_delay;
  obs::HistogramSnapshot snap = replica_metrics_[r].latency_ns->Snapshot();
  if (snap.count >= options_.min_samples_for_quantile) {
    delay = std::chrono::nanoseconds(
        static_cast<int64_t>(snap.Quantile(options_.hedge_quantile)));
  }
  return std::clamp<std::chrono::nanoseconds>(
      delay, options_.min_hedge_delay, options_.max_hedge_delay);
}

template <typename T>
struct HedgedReplicaBackend::CallState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;  // first success, whoever produced it
  size_t winner_replica = 0;
  bool winner_was_hedge = false;
  size_t finished = 0;  // attempts that completed, either way
  Status last_error = Status::Internal("no replica attempted");
};

template <typename T>
StatusOr<T> HedgedReplicaBackend::HedgedCall(
    const std::function<StatusOr<T>(size_t)>& attempt) const {
  const size_t n = replicas_.size();
  const size_t primary = next_primary_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<CallState<T>>();
  // Detached attempt threads need the attempt callable to outlive this
  // frame: a losing attempt keeps running after the winner returns.
  auto shared_attempt =
      std::make_shared<std::function<StatusOr<T>(size_t)>>(attempt);

  size_t launched = 0;
  auto launch_next = [&](bool is_hedge) {
    const size_t r = (primary + launched) % n;
    ++launched;
    replica_metrics_[r].attempts->Increment();
    if (is_hedge) {
      replica_metrics_[r].hedges->Increment();
      hedged_fired_total_->Increment();
    }
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      ++inflight_;
    }
    std::thread([this, state, shared_attempt, r, is_hedge] {
      const MonotonicClock::time_point start = MonotonicClock::now();
      StatusOr<T> result = (*shared_attempt)(r);
      if (result.ok()) {
        // Successful latencies only: connect timeouts and refusals from
        // a dead replica must not inflate its hedge delay for later.
        replica_metrics_[r].latency_ns->Record(
            static_cast<double>(NsSince(start)));
      } else {
        replica_metrics_[r].errors->Increment();
      }
      {
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->finished;
        if (result.ok() && !state->value.has_value()) {
          state->value = std::move(result).value();
          state->winner_replica = r;
          state->winner_was_hedge = is_hedge;
        } else if (!result.ok()) {
          state->last_error = result.status();
        }
      }
      state->cv.notify_all();
      {
        std::lock_guard<std::mutex> lock(inflight_mu_);
        --inflight_;
      }
      inflight_cv_.notify_all();
    }).detach();
  };

  launch_next(/*is_hedge=*/false);
  std::unique_lock<std::mutex> lock(state->mu);
  while (true) {
    if (state->value.has_value()) break;
    if (state->finished >= launched) {
      // Everything launched so far has failed.
      if (launched >= n) return state->last_error;
      // Immediate failover: an observed error spends no hedge delay.
      lock.unlock();
      launch_next(/*is_hedge=*/false);
      lock.lock();
      continue;
    }
    // At least one attempt is still in flight.
    if (launched >= n || !options_.enable_hedging) {
      state->cv.wait(lock, [&] {
        return state->value.has_value() || state->finished >= launched;
      });
      continue;
    }
    // Arm the hedge timer against the newest outstanding attempt's own
    // replica history.
    const size_t newest = (primary + launched - 1) % n;
    const std::chrono::nanoseconds delay = HedgeDelayFor(newest);
    const size_t finished_before = state->finished;
    const bool progressed = state->cv.wait_for(lock, delay, [&] {
      return state->value.has_value() || state->finished > finished_before;
    });
    if (!progressed) {
      // Timer fired with the attempt still out: it is presumed slow.
      lock.unlock();
      launch_next(/*is_hedge=*/true);
      lock.lock();
    }
  }

  replica_metrics_[state->winner_replica].wins->Increment();
  if (state->winner_was_hedge) hedged_wins_total_->Increment();
  return std::move(*state->value);
}

StatusOr<RetrievalResponse> HedgedReplicaBackend::Retrieve(
    const RetrievalRequest& request) const {
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(request.options));
  // The attempt callable owns a COPY of the request: a losing attempt
  // may still be evaluating request.dx after this call returned, so the
  // dx closure must be safe for concurrent invocation (every closure in
  // the repo is: they read immutable datasets).
  RetrievalRequest copy = request;
  return HedgedCall<RetrievalResponse>(
      [this, copy](size_t r) { return replicas_[r]->Retrieve(copy); });
}

StatusOr<ScanCandidatesResult> HedgedReplicaBackend::ScanCandidates(
    const Vector& embedded_query, const RetrievalOptions& options) const {
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  Vector query = embedded_query;
  RetrievalOptions opts = options;
  opts.audit_monitor = nullptr;  // audits sample at the top engine only
  return HedgedCall<ScanCandidatesResult>([this, query, opts](size_t r) {
    return replicas_[r]->ScanCandidates(query, opts);
  });
}

StatusOr<std::vector<RetrievalResponse>> HedgedReplicaBackend::RetrieveBatch(
    const std::vector<DxToDatabaseFn>& queries,
    const RetrievalOptions& options) const {
  QSE_RETURN_IF_ERROR(ValidateRetrievalOptions(options));
  std::vector<RetrievalResponse> results(queries.size());
  std::mutex error_mu;
  Status first_error = Status::OK();
  ParallelForGrain(
      0, queries.size(), 2,
      [&](size_t i) {
        RetrievalRequest one;
        one.dx = queries[i];
        one.options = options;
        StatusOr<RetrievalResponse> r = Retrieve(one);
        if (!r.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = r.status();
          return;
        }
        results[i] = std::move(r).value();
      },
      options.num_threads);
  QSE_RETURN_IF_ERROR(first_error);
  return results;
}

Status HedgedReplicaBackend::Insert(size_t db_id, const DxToDatabaseFn& dx) {
  Status first_error = Status::OK();
  for (auto& replica : replicas_) {
    Status status = replica->Insert(db_id, dx);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

Status HedgedReplicaBackend::InsertEmbedded(size_t db_id,
                                            const Vector& embedded_row) {
  Status first_error = Status::OK();
  for (auto& replica : replicas_) {
    Status status = replica->InsertEmbedded(db_id, embedded_row);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

Status HedgedReplicaBackend::Remove(size_t db_id) {
  Status first_error = Status::OK();
  for (auto& replica : replicas_) {
    Status status = replica->Remove(db_id);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

size_t HedgedReplicaBackend::size() const {
  size_t best = 0;
  for (const auto& replica : replicas_) {
    best = std::max(best, replica->size());
  }
  return best;
}

}  // namespace net
}  // namespace qse
