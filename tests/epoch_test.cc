// Unit tests for the epoch-based reclamation manager behind concurrent
// database mutation: pin/unpin nesting, deferred reclamation ordering,
// the no-reclamation-while-pinned guarantee, and destructor draining.
#include "src/util/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace qse {
namespace {

TEST(EpochManagerTest, StartsIdle) {
  EpochManager epoch;
  EXPECT_EQ(epoch.pinned_readers(), 0u);
  EXPECT_EQ(epoch.retired_count(), 0u);
}

TEST(EpochManagerTest, PinUnpinTracksReaderCount) {
  EpochManager epoch;
  {
    EpochManager::Guard g = epoch.Pin();
    EXPECT_TRUE(g.pinned());
    EXPECT_EQ(epoch.pinned_readers(), 1u);
  }
  EXPECT_EQ(epoch.pinned_readers(), 0u);
}

TEST(EpochManagerTest, NestedPinsEachHoldTheirOwnSlot) {
  EpochManager epoch;
  EpochManager::Guard outer = epoch.Pin();
  {
    EpochManager::Guard inner = epoch.Pin();
    EXPECT_EQ(epoch.pinned_readers(), 2u);
    // Inner releases first (normal nesting)...
  }
  EXPECT_EQ(epoch.pinned_readers(), 1u);
  // ...but out-of-order release works too.
  EpochManager::Guard a = epoch.Pin();
  EpochManager::Guard b = epoch.Pin();
  EXPECT_EQ(epoch.pinned_readers(), 3u);
  a = EpochManager::Guard();  // Release the older pin before the newer.
  EXPECT_EQ(epoch.pinned_readers(), 2u);
  b = EpochManager::Guard();
  EXPECT_EQ(epoch.pinned_readers(), 1u);
}

TEST(EpochManagerTest, GuardMoveTransfersThePin) {
  EpochManager epoch;
  EpochManager::Guard g = epoch.Pin();
  EpochManager::Guard moved = std::move(g);
  EXPECT_FALSE(g.pinned());
  EXPECT_TRUE(moved.pinned());
  EXPECT_EQ(epoch.pinned_readers(), 1u);
  moved = EpochManager::Guard();
  EXPECT_EQ(epoch.pinned_readers(), 0u);
}

TEST(EpochManagerTest, RetireWithoutReadersReclaimsImmediately) {
  EpochManager epoch;
  bool freed = false;
  epoch.Retire([&freed] { freed = true; });
  EXPECT_TRUE(freed);
  EXPECT_EQ(epoch.retired_count(), 0u);
}

TEST(EpochManagerTest, NoReclamationWhileAnyReaderIsPinned) {
  EpochManager epoch;
  bool freed = false;
  EpochManager::Guard g = epoch.Pin();
  epoch.Retire([&freed] { freed = true; });
  EXPECT_FALSE(freed);
  EXPECT_EQ(epoch.retired_count(), 1u);
  // Reclaim attempts while pinned are no-ops.
  epoch.ReclaimDrained();
  EXPECT_FALSE(freed);
  g = EpochManager::Guard();  // Unpin.
  epoch.ReclaimDrained();
  EXPECT_TRUE(freed);
  EXPECT_EQ(epoch.retired_count(), 0u);
}

TEST(EpochManagerTest, DeferredReclamationOrdersByPinEpoch) {
  EpochManager epoch;
  bool freed_old = false;
  bool freed_new = false;

  // Reader pinned at the current epoch blocks an object retired now...
  EpochManager::Guard old_reader = epoch.Pin();
  epoch.Retire([&freed_old] { freed_old = true; });
  EXPECT_FALSE(freed_old);

  // ...and a reader pinned AFTER that retirement (newer epoch) cannot
  // hold the old object, but blocks one retired after its own pin.
  EpochManager::Guard new_reader = epoch.Pin();
  epoch.Retire([&freed_new] { freed_new = true; });
  EXPECT_FALSE(freed_new);

  // Releasing the old reader drains the old retirement only: the new
  // reader's pin epoch still covers the newer retirement.
  old_reader = EpochManager::Guard();
  epoch.ReclaimDrained();
  EXPECT_TRUE(freed_old);
  EXPECT_FALSE(freed_new);

  new_reader = EpochManager::Guard();
  epoch.ReclaimDrained();
  EXPECT_TRUE(freed_new);
}

TEST(EpochManagerTest, RetireAdvancesTheEpoch) {
  EpochManager epoch;
  uint64_t before = epoch.epoch();
  epoch.Retire([] {});
  EXPECT_EQ(epoch.epoch(), before + 1);
}

TEST(EpochManagerTest, DestructorDrainsPendingRetirements) {
  auto flags = std::make_shared<std::atomic<int>>(0);
  {
    EpochManager epoch;
    {
      EpochManager::Guard g = epoch.Pin();
      epoch.Retire([flags] { flags->fetch_add(1); });
      epoch.Retire([flags] { flags->fetch_add(1); });
      EXPECT_EQ(flags->load(), 0);
    }
    // Unpinned but never explicitly reclaimed: the destructor must run
    // both deleters.
  }
  EXPECT_EQ(flags->load(), 2);
}

TEST(EpochManagerTest, ConcurrentPinsAndRetiresAllReclaim) {
  EpochManager epoch;
  constexpr size_t kRetires = 200;
  constexpr size_t kReaders = 4;
  std::atomic<size_t> freed{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochManager::Guard g = epoch.Pin();
        std::this_thread::yield();
      }
    });
  }
  for (size_t i = 0; i < kRetires; ++i) {
    epoch.Retire([&freed] { freed.fetch_add(1); });
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  epoch.ReclaimDrained();
  EXPECT_EQ(freed.load(), kRetires);
  EXPECT_EQ(epoch.retired_count(), 0u);
}

}  // namespace
}  // namespace qse
